// Power-grid droop analysis (§V-B of the paper): generate a 3-D RLC power
// grid, build both the second-order NA model and the first-order MNA DAE,
// simulate the NA model with OPM and the MNA model with Gear's method, and
// print the supply droop at the grid center of each layer.
//
//	go run ./examples/powergrid
package main

import (
	"fmt"
	"log"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

func main() {
	cfg := netgen.DefaultPowerGrid()
	cfg.Rows, cfg.Cols, cfg.Layers = 12, 12, 3
	cfg.NumLoads = 24
	grid, err := netgen.PowerGrid3D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	na, err := grid.Netlist.NA()
	if err != nil {
		log.Fatal(err)
	}
	mna, err := grid.Netlist.MNA()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %dx%dx%d: NA model %d states, MNA model %d states\n",
		cfg.Layers, cfg.Rows, cfg.Cols, na.Sys.N(), mna.Sys.N())

	const (
		T = 10e-9
		h = 10e-12
	)
	m := int(T / h)

	start := time.Now()
	opm, err := core.Solve(na.Sys, na.Inputs, m, T, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPM on NA 2nd-order model:  %8v (m=%d columns)\n", time.Since(start).Round(time.Millisecond), m)

	e, a, b, err := mna.DAE()
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	gear, err := transient.Simulate(e, a, b, mna.Inputs, T, h, transient.Gear2, transient.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Gear-2 on MNA DAE model:    %8v (%d steps)\n", time.Since(start).Round(time.Millisecond), m)

	fmt.Println("\nvoltage droop at grid centers (µV, negative = sag below supply):")
	fmt.Println(" t (ns)   layer0 OPM  layer0 Gear  layer2 OPM  layer2 Gear")
	for _, tt := range waveform.UniformTimes(10, T) {
		l0, l2 := grid.ObserveNodes[0]-1, grid.ObserveNodes[2]-1
		fmt.Printf("%7.2f   %10.3f  %11.3f  %10.3f  %11.3f\n",
			tt*1e9,
			opm.StateAt(l0, tt)*1e6, gear.SampleState(l0, []float64{tt})[0]*1e6,
			opm.StateAt(l2, tt)*1e6, gear.SampleState(l2, []float64{tt})[0]*1e6)
	}
	fmt.Println("\nThe NA (OPM) and MNA (Gear) formulations agree on the droop waveform.")
}
