// Supercapacitor charging: a classic fractional-circuit application. A real
// supercapacitor behaves as a constant-phase element (CPE) rather than an
// ideal capacitor; charging it through a resistor follows a Mittag-Leffler
// law instead of a pure exponential. This example builds the circuit from a
// netlist string, simulates it with OPM, and compares against the analytic
// Mittag-Leffler solution and against an ideal-capacitor fit.
//
//	go run ./examples/supercap
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"opmsim/internal/circuit"
	"opmsim/internal/core"
	"opmsim/internal/specfn"
)

const deck = `supercap charging through a resistor
* 1 A charge current into the cell model: R_leak parallel CPE
I1 0 cell STEP 1
Rleak cell 0 1
P1 cell 0 1 0.7
.tran 10m 6
`

func main() {
	d, err := circuit.Parse(strings.NewReader(deck))
	if err != nil {
		log.Fatal(err)
	}
	mna, err := d.Netlist.MNA()
	if err != nil {
		log.Fatal(err)
	}
	const alpha = 0.7
	fmt.Printf("%s\nfractional order α = %g, states = %d\n\n", d.Title, alpha, mna.Sys.N())

	m := int(d.Tran.Stop/d.Tran.Step + 0.5)
	sol, err := core.Solve(mna.Sys, mna.Inputs, m, d.Tran.Stop, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Analytic: dᵅv·C₀ + v/R = 1 → v(t) = R(1 − E_α(−tᵅ/(RC₀))).
	fmt.Println(" t (s)   v OPM      v Mittag-Leffler   ideal-cap exp fit")
	for _, tt := range []float64{0.25, 0.5, 1, 2, 3, 4, 5, 5.9} {
		ml, err := specfn.MittagLeffler(alpha, -math.Pow(tt, alpha))
		if err != nil {
			log.Fatal(err)
		}
		exact := 1 - ml
		expFit := 1 - math.Exp(-tt) // what an ideal capacitor would do
		fmt.Printf("%5.2f   %.6f   %.6f           %.6f\n", tt, sol.StateAt(0, tt), exact, expFit)
	}
	fmt.Println("\nThe fractional cell charges faster early and slower late than any")
	fmt.Println("RC exponential — the signature power-law memory of a CPE.")

	// The same signature in the frequency domain: an AC sweep of the cell
	// impedance shows the constant-phase plateau that gives the CPE its
	// name (an ideal capacitor would sit at −90°, a resistor at 0°).
	omega, err := circuit.LogSpace(10, 1e5, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mna.AC(omega)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAC impedance of the cell (current-driven, so H = Z):")
	fmt.Println("  ω (rad/s)   |Z| dB     phase")
	for k, w := range res.Omega {
		fmt.Printf("  %9.3g   %7.2f   %6.2f°\n", w, res.MagDB(0, 0)[k], res.PhaseDeg(0, 0)[k])
	}
	fmt.Printf("\nphase pins to −α·90° = %.0f° across the sweep — the constant-phase element.\n", -alpha*90)
}
