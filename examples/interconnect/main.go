// Signal integrity on an RC interconnect tree: drive a clock-distribution
// tree with a PRBS pattern, simulate with OPM, and measure the worst-case
// eye opening at the leaves plus the 50%-crossing delay of an isolated step.
//
//	go run ./examples/interconnect
package main

import (
	"fmt"
	"log"
	"math"

	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

func main() {
	const (
		depth = 4
		rDrv  = 150.0  // driver output resistance, Ω
		rSeg  = 80.0   // per-segment wire resistance, Ω
		cNode = 25e-15 // per-node load, F
		rise  = 20e-12
	)
	// Step-response delay first (classic Elmore-style characterization).
	step, err := netgen.RCTree(depth, rDrv, rSeg, cNode, waveform.Step(1, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary RC tree depth %d: %d states, %d leaves\n",
		depth, step.Sys.N(), step.Sys.Outputs())
	const Tstep = 2e-9
	sol, err := core.Solve(step.Sys, step.Inputs, 4096, Tstep, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	leaf := func(tt float64) float64 { return sol.OutputAt(tt)[0] }
	t50, err := waveform.CrossTime(leaf, 0.5, 0, Tstep, true, 512)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := waveform.RiseTime(leaf, 1, 0, Tstep, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("50%% step delay at the leaves: %.1f ps; 10–90%% rise: %.1f ps\n\n", t50*1e12, tr*1e12)

	// PRBS eye sweep: sample every leaf at the bit centers over 32 bits;
	// the gap between the worst sampled high and the worst sampled low is
	// the (center-sampled) eye opening. ISI closes the eye as the bit time
	// approaches the tree's RC tail.
	fmt.Println("bit time   worst high   worst low   eye opening")
	for _, bitTime := range []float64{800e-12, 400e-12, 250e-12, 150e-12} {
		prbs, err := waveform.PRBS(0, 1, bitTime, rise, 29)
		if err != nil {
			log.Fatal(err)
		}
		mna, err := netgen.RCTree(depth, rDrv, rSeg, cNode, prbs)
		if err != nil {
			log.Fatal(err)
		}
		T := 32 * bitTime
		prbsSol, err := core.Solve(mna.Sys, mna.Inputs, 8192, T, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		// Measure the worst eye across all leaves (skip 4 fill-in bits).
		bitAt := func(k int) bool { return prbs((float64(k)+0.5)*bitTime) > 0.5 }
		worst := &waveform.EyeMetrics{Opening: math.Inf(1)}
		for leaf := 0; leaf < mna.Sys.Outputs(); leaf++ {
			y := func(t float64) float64 { return prbsSol.OutputAt(t)[leaf] }
			m, err := waveform.Eye(y, bitAt, bitTime, 4, 32)
			if err != nil {
				log.Fatal(err)
			}
			if m.Opening < worst.Opening {
				worst = m
			}
		}
		verdict := fmt.Sprintf("%+.3f V", worst.Opening)
		if worst.Opening <= 0 {
			verdict += "  (CLOSED)"
		}
		fmt.Printf("%6.0f ps   %8.3f V   %7.3f V   %s\n",
			bitTime*1e12, worst.WorstHigh, worst.WorstLow, verdict)
	}
	fmt.Println("\nThe eye closes as the bit time approaches the tree's RC settling tail —")
	fmt.Println("the ISI picture every link designer draws, straight from the OPM solver.")
}
