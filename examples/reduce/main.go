// Model order reduction workflow: build a large current-driven RC
// interconnect line, reduce it with block-Arnoldi moment matching, simulate
// the reduced model with OPM, and lift the answer back to full-order node
// voltages.
//
// The line is driven by a current source on purpose: that keeps the MNA
// matrices symmetric definite, for which the one-sided Galerkin projection
// provably preserves stability (see internal/mor docs).
//
//	go run ./examples/reduce
package main

import (
	"fmt"
	"log"
	"time"

	"opmsim/internal/circuit"
	"opmsim/internal/core"
	"opmsim/internal/mor"
	"opmsim/internal/waveform"
)

func main() {
	// A 400-node on-chip RC line: 50 Ω segments, 10 fF per node, driven by
	// a 1 mA step into the head node.
	const sections = 400
	n := circuit.New()
	nodes := make([]int, sections)
	for i := range nodes {
		nodes[i] = n.Node(fmt.Sprintf("n%d", i+1))
	}
	if err := n.AddI("Idrv", 0, nodes[0], waveform.Step(1e-3, 0)); err != nil {
		log.Fatal(err)
	}
	prev := nodes[0]
	for i := 1; i < sections; i++ {
		if err := n.AddR(fmt.Sprintf("R%d", i), prev, nodes[i], 50); err != nil {
			log.Fatal(err)
		}
		prev = nodes[i]
	}
	// Far-end termination to ground gives a DC path for every node.
	if err := n.AddR("Rterm", nodes[sections-1], 0, 50); err != nil {
		log.Fatal(err)
	}
	for i, nd := range nodes {
		if err := n.AddC(fmt.Sprintf("C%d", i+1), nd, 0, 10e-15); err != nil {
			log.Fatal(err)
		}
	}
	mna, err := n.MNA()
	if err != nil {
		log.Fatal(err)
	}
	e, a, b, err := mna.DAE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full model: %d states\n", mna.Sys.N())

	const (
		T = 2e-9
		m = 2000
	)
	start := time.Now()
	full, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)

	// Reduce to 15 states, expanding around the line's bandwidth.
	start = time.Now()
	rom, err := mor.Reduce(e, a, b, 15, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	redSys, err := rom.System(nil)
	if err != nil {
		log.Fatal(err)
	}
	red, err := core.Solve(redSys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	redTime := time.Since(start)
	abs, err := core.SpectralAbscissa(redSys, 1e12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced model: %d states, spectral abscissa %.3g (stable)\n", rom.Order(), abs)
	fmt.Printf("full solve %v;   reduce+solve %v\n\n", fullTime.Round(time.Microsecond), redTime.Round(time.Microsecond))

	// Lift reduced states back to chosen full-order nodes and compare.
	fmt.Println(" t (ps)   node100 full  node100 ROM   node400 full  node400 ROM")
	for _, tt := range []float64{0.1e-9, 0.3e-9, 0.6e-9, 1.0e-9, 1.8e-9} {
		z := make([]float64, rom.Order())
		for i := range z {
			z[i] = red.StateAt(i, tt)
		}
		x := rom.Lift(z)
		// Node k's voltage is state k−1 in this current-driven MNA.
		fmt.Printf("%7.0f   %11.6f  %11.6f   %11.6f  %11.6f\n",
			tt*1e12, full.StateAt(99, tt), x[99], full.StateAt(399, tt), x[399])
	}
	fmt.Printf("\n%d reduced states reproduce the %d-state line everywhere, not just at ports.\n",
		rom.Order(), mna.Sys.N())
}
