// Basis gallery: the paper's §I notes that OPM "can readily switch to using
// other basis functions, each having its own merits." This example solves the
// same RC system in four bases — block-pulse, Walsh, Haar and shifted
// Legendre — with the same coefficient budget, for a smooth and for a
// switching input, and prints the accuracy of each.
//
//	go run ./examples/basis_gallery
package main

import (
	"fmt"
	"log"
	"math"

	"opmsim/internal/basis"
	"opmsim/internal/core"
	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

func main() {
	const (
		m = 32
		T = 2.0
	)
	e := mat.NewDenseFrom(1, 1, []float64{1})
	a := mat.NewDenseFrom(1, 1, []float64{-1})
	b := mat.NewDenseFrom(1, 1, []float64{1})

	bases := make(map[string]basis.Basis)
	if bp, err := basis.NewBPF(m, T); err == nil {
		bases["block-pulse"] = bp
	}
	if w, err := basis.NewWalsh(m, T); err == nil {
		bases["walsh"] = w
	}
	if h, err := basis.NewHaar(m, T); err == nil {
		bases["haar"] = h
	}
	if l, err := basis.NewLegendre(m, T); err == nil {
		bases["legendre"] = l
	}

	w := 2 * math.Pi * 0.5
	den := 1 + w*w
	scenarios := []struct {
		name  string
		u     waveform.Signal
		exact func(float64) float64
	}{
		{
			name: "smooth sine drive",
			u:    waveform.Sine(1, 0.5, 0),
			exact: func(t float64) float64 {
				return (math.Sin(w*t)-w*math.Cos(w*t))/den + w/den*math.Exp(-t)
			},
		},
		{
			name: "switching pulse drive",
			u:    waveform.Pulse(0, 1, T/4, 1e-6, 1e-6, T/4, 0),
			exact: func(t float64) float64 {
				t0, t1 := T/4, T/2
				switch {
				case t < t0:
					return 0
				case t < t1:
					return 1 - math.Exp(-(t - t0))
				default:
					return (1 - math.Exp(-(t1 - t0))) * math.Exp(-(t - t1))
				}
			},
		},
	}

	probe := waveform.UniformTimes(500, T*0.999)
	for _, sc := range scenarios {
		fmt.Printf("\n%s (m=%d coefficients per basis):\n", sc.name, m)
		for _, name := range []string{"block-pulse", "walsh", "haar", "legendre"} {
			bas := bases[name]
			x, err := core.SolveGeneric(e, a, b, []waveform.Signal{sc.u}, bas)
			if err != nil {
				log.Fatal(err)
			}
			rms := 0.0
			for _, t := range probe {
				d := bas.Reconstruct(x.Row(0), t) - sc.exact(t)
				rms += d * d
			}
			rms = math.Sqrt(rms / float64(len(probe)))
			fmt.Printf("  %-12s RMS error %.3e\n", name, rms)
		}
	}
	fmt.Println("\nLegendre crushes the smooth case (spectral accuracy) but rings at the")
	fmt.Println("switch (Gibbs); the piecewise-constant family is robust either way —")
	fmt.Println("pick the basis to match the waveform, as the paper suggests.")

	// Bonus: the Laguerre basis lives on [0, ∞) and needs no horizon at
	// all for decaying responses — ẋ = −x + e^{−2t} has x = e^{−t} − e^{−2t}.
	lag, err := basis.NewLaguerre(m, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	x, err := core.SolveGeneric(e, a, b,
		[]waveform.Signal{waveform.ExpDecay(1, 0.5)}, lag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLaguerre on [0, ∞) with m=%d, decaying drive e^{−2t}:\n", m)
	fmt.Println("  t      x Laguerre   x exact")
	for _, tt := range []float64{0.5, 1, 2, 4, 8} {
		exact := math.Exp(-tt) - math.Exp(-2*tt)
		fmt.Printf("  %4.1f   %+.6f    %+.6f\n", tt, lag.Reconstruct(x.Row(0), tt), exact)
	}
}
