// Fractional transmission line (§V-A of the paper): simulate the 7-state
// order-1/2 line with OPM and with the FFT frequency-domain baseline at two
// sampling densities, reporting the eq. (30) errors — a miniature Table I.
//
//	go run ./examples/fractional_tline
package main

import (
	"fmt"
	"log"

	"opmsim/internal/core"
	"opmsim/internal/freqdom"
	"opmsim/internal/mat"
	"opmsim/internal/netgen"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

func main() {
	cfg := netgen.DefaultFractionalLine()
	drive := waveform.Pulse(0, 1e-3, 0.1e-9, 0.1e-9, 0.1e-9, 0.8e-9, 0)
	mna, err := netgen.FractionalLine(cfg, drive, waveform.Zero())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fractional line: n=%d states, order α=%g, 2 ports\n", mna.Sys.N(), cfg.Order)

	const T = 2.7e-9 // the paper's time span
	// OPM with the paper's m = 8, and a dense reference.
	coarse, err := core.Solve(mna.Sys, mna.Inputs, 8, T, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dense, err := core.Solve(mna.Sys, mna.Inputs, 1024, T, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// FFT baseline: E dᵅx = A x + B u per frequency.
	var eD, aD, bD = denseTerm(mna.Sys, cfg.Order), denseTerm(mna.Sys, 0).Scale(-1), mna.Sys.B.ToDense()
	fft1, err := freqdom.Solve(eD, aD, bD, mna.Inputs, cfg.Order, T, 8)
	if err != nil {
		log.Fatal(err)
	}
	fft2, err := freqdom.Solve(eD, aD, bD, mna.Inputs, cfg.Order, T, 100)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n t (ns)    OPM m=8       FFT-1 N=8     FFT-2 N=100   OPM m=1024")
	for _, tt := range waveform.UniformTimes(12, T) {
		fmt.Printf("%7.3f   %+.4e   %+.4e   %+.4e   %+.4e\n",
			tt*1e9,
			coarse.OutputAt(tt)[0],
			sampleOut(mna.Sys.C, fft1, tt),
			sampleOut(mna.Sys.C, fft2, tt),
			dense.OutputAt(tt)[0])
	}
	fmt.Println("\nFFT-2 follows the dense reference more closely than FFT-1 — the Table I ordering.")
}

func denseTerm(sys *core.System, order float64) *mat.Dense {
	for _, t := range sys.Terms {
		//lint:ignore floateq exact order value keys the term lookup; orders are set, not computed
		if t.Order == order {
			return t.Coeff.ToDense()
		}
	}
	log.Fatalf("no term of order %g", order)
	return nil
}

// sampleOut maps frequency-domain states to output channel 0 at time t.
func sampleOut(c *sparse.CSR, r *freqdom.Result, t float64) float64 {
	n := c.C
	xv := make([]float64, n)
	for i := 0; i < n; i++ {
		xv[i] = r.SampleState(i, []float64{t})[0]
	}
	return c.MulVec(xv, nil)[0]
}
