// Quickstart: build a 5-section RC ladder, simulate it with OPM, and compare
// the far-end voltage against the trapezoidal baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

func main() {
	// A 5-section RC ladder (1 kΩ / 1 µF per section) driven by a 1 V step.
	mna, err := netgen.RCLadder(5, 1e3, 1e-6, waveform.Step(1, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states: %d (%v)\n", mna.Sys.N(), mna.StateNames)

	// OPM: expand everything in m block-pulse functions over [0, T).
	const (
		T = 60e-3
		m = 1024
	)
	sol, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: trapezoidal rule on the exported descriptor DAE.
	e, a, b, err := mna.DAE()
	if err != nil {
		log.Fatal(err)
	}
	ref, err := transient.Simulate(e, a, b, mna.Inputs, T, T/float64(m), transient.Trapezoidal, transient.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n t (ms)   v_out OPM   v_out trapezoidal")
	h := T / float64(m)
	farEnd := 5 // state index of v(n5): in, n1..n5 → index 5... see StateNames
	for i, name := range mna.StateNames {
		if name == "v(n5)" {
			farEnd = i
		}
	}
	for j := 50; j < m; j += 100 {
		tt := (float64(j) + 0.5) * h
		opm := sol.StateAt(farEnd, tt)
		trap := ref.SampleState(farEnd, []float64{tt})[0]
		fmt.Printf("%7.2f   %9.6f   %9.6f\n", tt*1e3, opm, trap)
	}
	fmt.Println("\nOPM agrees with trapezoidal to the discretization accuracy (~1e-5 here).")
}
