// Nonlinear simulation: a half-wave rectifier with smoothing capacitor,
// solved by OPM with per-column Newton iteration (diode = exponential
// junction). Prints the input sine, the rectified/smoothed output and the
// diode current over two mains cycles, plus the DC operating point solver
// exercising the same Newton machinery.
//
//	go run ./examples/rectifier
package main

import (
	"fmt"
	"log"
	"strings"

	"opmsim/internal/circuit"
	"opmsim/internal/core"
	"opmsim/internal/waveform"
)

const deck = `half-wave rectifier with smoothing
V1 in 0 SIN(0 5 50)
D1 in out 1e-14 0.02585
C1 out 0 47u
RL out 0 2k
.tran 20u 40m
`

func main() {
	d, err := circuit.Parse(strings.NewReader(deck))
	if err != nil {
		log.Fatal(err)
	}
	mna, err := d.Netlist.MNA()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\nstates: %v, diodes: %d\n\n", d.Title, mna.StateNames, mna.Nonlinear.Count())

	m := int(d.Tran.Stop/d.Tran.Step + 0.5)
	sol, err := core.SolveNonlinear(mna.Sys, mna.Nonlinear, mna.Inputs, m, d.Tran.Stop, core.NonlinearOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(" t (ms)   v_in      v_out    ripple vs peak")
	var peak float64
	for _, tt := range waveform.UniformTimes(20, d.Tran.Stop) {
		vin := sol.StateAt(0, tt)
		vout := sol.StateAt(1, tt)
		if vout > peak {
			peak = vout
		}
		fmt.Printf("%7.2f   %+.4f   %+.4f   %+.4f\n", tt*1e3, vin, vout, vout-peak)
	}
	fmt.Printf("\nsmoothed output holds near the %.2f V peak; ripple set by RL·C1 = %.0f ms\n",
		peak, 2e3*47e-6*1e3)

	// The same diode model through the DC path: what does the divider settle
	// to with the input frozen at its initial value (0 V)?
	dc, err := mna.DCOperatingPoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DC operating point at u(0): v_out = %.3g V (diode off)\n", dc[1])
}
