// Adaptive time steps (§III-B of the paper): simulate an RC system hit by a
// short pulse with the on-the-fly error-controlled OPM solver and show how
// the step sizes concentrate around the transient.
//
//	go run ./examples/adaptive_step
package main

import (
	"fmt"
	"log"
	"strings"

	"opmsim/internal/basis"
	"opmsim/internal/core"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

func main() {
	// ẋ = −x + u, a 1-second pulse arriving at t = 2 with 10 ms edges.
	e := scalar(1)
	a := scalar(-1)
	b := scalar(1)
	sys, err := core.NewDAE(e, a, b)
	if err != nil {
		log.Fatal(err)
	}
	u := []waveform.Signal{waveform.Pulse(0, 1, 2, 0.01, 0.01, 1, 0)}
	const T = 8.0

	sol, stats, err := core.SolveAdaptiveAuto(sys, u, T, core.AdaptiveOptions{Tol: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	ab := sol.Basis().(*basis.AdaptiveBPF)
	steps := ab.Steps()
	fmt.Printf("adaptive controller: %d accepted columns, %d rejected trials\n", stats.Accepted*2, stats.Rejected)
	fmt.Printf("step range: min %.4g s, max %.4g s (ratio %.0fx)\n\n", minOf(steps), maxOf(steps), maxOf(steps)/minOf(steps))

	// Histogram of where the columns landed.
	fmt.Println("columns per 0.5 s of simulated time (dense around the t=2..3 pulse):")
	edges := ab.Edges()
	buckets := make([]int, int(T/0.5))
	for j := 0; j < len(steps); j++ {
		mid := (edges[j] + edges[j+1]) / 2
		buckets[int(mid/0.5)]++
	}
	for i, c := range buckets {
		fmt.Printf("%4.1f–%4.1f s  %4d  %s\n", float64(i)*0.5, float64(i+1)*0.5, c, strings.Repeat("#", c/4))
	}

	// Accuracy spot check against a dense uniform solve.
	ref, err := core.Solve(sys, u, 65536, T, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n t       adaptive      dense ref")
	for _, tt := range []float64{1.5, 2.2, 2.8, 3.5, 6.0} {
		fmt.Printf("%4.1f   %+.6f   %+.6f\n", tt, sol.StateAt(0, tt), ref.StateAt(0, tt))
	}
}

func scalar(v float64) *sparse.CSR {
	c := sparse.NewCOO(1, 1)
	c.Add(0, 0, v)
	return c.ToCSR()
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
