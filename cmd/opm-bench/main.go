// Command opm-bench regenerates every table and figure of the paper's
// evaluation (plus the ablations listed in DESIGN.md) and prints them with
// the paper's reference numbers alongside.
//
// Usage:
//
//	opm-bench -experiment table1|table2|waveforms|adaptive|opmatrix|bases|scaling|history|historyfft|batch|all [flags]
//
// The paper-scale Table II instance (NA ≈ 75 K states) is gated behind
// -full; the default grid is laptop-scale. -experiment history sweeps the
// parallel history engine (serial vs blocked vs blocked+parallel) and
// writes a machine-readable BENCH_history.json (see -histout, -workers);
// -experiment historyfft sweeps the FFT fast-convolution tier against the
// naive and exact engines across the auto crossover and writes
// BENCH_history_fft.json (see -histfftout). -history overrides the engine
// mode (auto, exact, fft) used by the history ablation's blocked and
// parallel variants. -experiment batch compares K sequential solves of the
// Table II grid (sharing a factorization cache) against one batched
// SolveBatch call and writes BENCH_batch.json (see -batchout).
// -experiment montecarlo ablates Sherman–Morrison–Woodbury factor updates
// against refactorize-every-scenario on Monte-Carlo parameter sweeps of the
// quickstart RC ladder and the power-grid fixture at N ∈ {1k, 10k, 100k}
// scenarios and writes BENCH_montecarlo.json (see -mcout); it is excluded
// from -experiment all because the measured legs take minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"opmsim/internal/core"
	"opmsim/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: table1, table2, waveforms, adaptive, opmatrix, bases, scaling, mor, fracfit, walshtrend, history, historyfft, batch, montecarlo, all (montecarlo is not part of all)")
		full       = flag.Bool("full", false, "run Table II at paper scale (~75K NA states; needs several GB and minutes)")
		repeat     = flag.Int("repeat", 10, "timing repetitions for Table I")
		gridRows   = flag.Int("grid", 0, "override Table II grid rows/cols (0 = default 16)")
		workers    = flag.Int("workers", 0, "history-engine worker goroutines (0 = GOMAXPROCS)")
		histOut    = flag.String("histout", "BENCH_history.json", "machine-readable output path for -experiment history")
		histFFTOut = flag.String("histfftout", "BENCH_history_fft.json", "machine-readable output path for -experiment historyfft")
		batchOut   = flag.String("batchout", "BENCH_batch.json", "machine-readable output path for -experiment batch")
		mcOut      = flag.String("mcout", "BENCH_montecarlo.json", "machine-readable output path for -experiment montecarlo")
		scaleOut   = flag.String("scaleout", "BENCH_scale.json", "machine-readable output path for -experiment scale")
		scaleSizes = flag.String("scalesizes", "", "comma-separated grid node counts for -experiment scale (default 1000,10000,100000; \"smoke\" = the CI-sized instance)")
		scaleBase  = flag.String("scalebaseline", "", "baseline BENCH_scale.json to guard against: fail when the factorization speedup regresses >25% at any shared size")
		history    = flag.String("history", "", "history engine mode for the history ablation: auto, exact, or fft (default: exact)")
		seed       = flag.Int64("seed", 1, "seed for generated benchmark networks (Table II grid loads, MOR, scaling); same seed, same netlist")
	)
	flag.Parse()
	if err := run(*experiment, *full, *repeat, *gridRows, *workers, *histOut, *histFFTOut, *batchOut, *mcOut, *scaleOut, *scaleSizes, *scaleBase, *history, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "opm-bench:", err)
		os.Exit(1)
	}
}

func run(experiment string, full bool, repeat, gridRows, workers int, histOut, histFFTOut, batchOut, mcOut, scaleOut, scaleSizes, scaleBase, history string, seed int64) error {
	runOne := func(name string) error {
		switch name {
		case "table1":
			cfg := experiments.DefaultTableI()
			cfg.Repeat = repeat
			tbl, _, err := experiments.TableI(cfg)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "table2":
			cfg := experiments.DefaultTableII()
			if full {
				cfg = experiments.FullTableII()
				fmt.Println("running paper-scale grid; this takes minutes and several GB...")
			}
			if gridRows > 0 {
				cfg.Grid.Rows, cfg.Grid.Cols = gridRows, gridRows
			}
			cfg.Grid.Seed = seed
			tbl, _, err := experiments.TableII(cfg)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "waveforms":
			tbl, err := experiments.Waveforms(experiments.DefaultTableI(), 27)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "adaptive":
			tbl, err := experiments.Adaptive(experiments.DefaultAdaptive())
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "opmatrix":
			tbl, err := experiments.OpMatrix()
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "bases":
			tbl, err := experiments.Bases(32, 2)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "scaling":
			tbl, err := experiments.Scaling(seed)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "mor":
			tbl, err := experiments.MOR(seed)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "fracfit":
			tbl, err := experiments.FracFit()
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "walshtrend":
			tbl, err := experiments.WalshTrend()
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
		case "history":
			cfg := experiments.DefaultHistory()
			cfg.Workers = workers
			if repeat > 0 {
				cfg.Repeat = repeat
			}
			if history != "" {
				mode, err := core.ParseHistoryMode(history)
				if err != nil {
					return err
				}
				cfg.Mode = mode
			}
			tbl, rep, err := experiments.History(cfg)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
			if histOut != "" {
				if err := rep.WriteJSON(histOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", histOut)
			}
		case "historyfft":
			cfg := experiments.DefaultHistoryFFT()
			cfg.Workers = workers
			if repeat > 0 {
				cfg.Repeat = repeat
			}
			tbl, rep, err := experiments.HistoryFFT(cfg)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
			if histFFTOut != "" {
				if err := rep.WriteJSON(histFFTOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", histFFTOut)
			}
		case "batch":
			cfg := experiments.DefaultBatch()
			if gridRows > 0 {
				cfg.Grid.Rows, cfg.Grid.Cols = gridRows, gridRows
			}
			cfg.Grid.Seed = seed
			if repeat > 0 {
				cfg.Repeat = repeat
			}
			tbl, rep, err := experiments.Batch(cfg)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
			if batchOut != "" {
				if err := rep.WriteJSON(batchOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", batchOut)
			}
		case "montecarlo":
			cfg := experiments.DefaultMonteCarloBench()
			if gridRows > 0 {
				cfg.Grid.Rows, cfg.Grid.Cols = gridRows, gridRows
			}
			if seed > 0 {
				cfg.Seed = uint64(seed)
			}
			tbl, rep, err := experiments.MonteCarloBench(cfg)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
			if mcOut != "" {
				if err := rep.WriteJSON(mcOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", mcOut)
			}
		case "scale":
			cfg := experiments.DefaultScale()
			cfg.Workers = workers
			if scaleSizes == "smoke" {
				cfg = experiments.SmokeScale()
			} else if scaleSizes != "" {
				var sizes []int
				for _, s := range strings.Split(scaleSizes, ",") {
					v, err := strconv.Atoi(strings.TrimSpace(s))
					if err != nil {
						return fmt.Errorf("bad -scalesizes entry %q: %w", s, err)
					}
					sizes = append(sizes, v)
				}
				cfg.Sizes = sizes
			}
			var base *experiments.ScaleReport
			if scaleBase != "" {
				b, err := experiments.ReadScaleReport(scaleBase)
				if err != nil {
					return err
				}
				base = b
			}
			tbl, rep, err := experiments.ScaleBench(cfg)
			if err != nil {
				return err
			}
			tbl.Fprint(os.Stdout)
			if scaleOut != "" {
				if err := rep.WriteJSON(scaleOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", scaleOut)
			}
			if base != nil {
				if err := experiments.CompareScaleReports(rep, base, 0.25); err != nil {
					return err
				}
				fmt.Printf("scale guard: speedups within 25%% of %s\n", scaleBase)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if experiment == "all" {
		for _, name := range []string{"table1", "table2", "waveforms", "adaptive", "opmatrix", "bases", "scaling", "mor", "fracfit", "walshtrend", "history", "historyfft", "batch"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(experiment)
}
