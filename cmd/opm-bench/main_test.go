package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFastExperiments(t *testing.T) {
	for _, name := range []string{"opmatrix", "bases", "adaptive"} {
		if err := run(name, false, 1, 0, 0, "", "", "", "", "", "", "", "", 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunTableIQuick(t *testing.T) {
	if err := run("table1", false, 1, 0, 0, "", "", "", "", "", "", "", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunTableIISmallGrid(t *testing.T) {
	if err := run("table2", false, 1, 6, 0, "", "", "", "", "", "", "", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunHistoryWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("history sweep solves up to m=4096; skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_history.json")
	if err := run("history", false, 1, 0, 2, out, "", "", "", "", "", "", "", 1); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("history report not written: %v", err)
	}
	for _, key := range []string{"\"gomaxprocs\"", "\"speedup_parallel\"", "\"max_abs_diff\""} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("report missing %s:\n%s", key, buf)
		}
	}
}

func TestRunHistoryFFTWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("historyfft sweep solves up to m=4096; skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_history_fft.json")
	if err := run("historyfft", false, 1, 0, 2, "", out, "", "", "", "", "", "", 1); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("historyfft report not written: %v", err)
	}
	for _, key := range []string{"\"fft_over_exact\"", "\"max_rel_diff\"", "\"history_engine\""} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("report missing %s:\n%s", key, buf)
		}
	}
}

func TestRunBatchWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_batch.json")
	if err := run("batch", false, 1, 6, 0, "", "", out, "", "", "", "", "", 1); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("batch report not written: %v", err)
	}
	for _, key := range []string{"\"speedup\"", "\"seq_cache_hits\"", "\"bitwise\": true"} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("report missing %s:\n%s", key, buf)
		}
	}
}

func TestRunScaleWritesJSONAndGuards(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := run("scale", false, 1, 0, 0, "", "", "", "", out, "2000", "", "", 1); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("scale report not written: %v", err)
	}
	for _, key := range []string{"\"factor_speedup\"", "\"iface_n\"", "\"max_rel_diff\""} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("report missing %s:\n%s", key, buf)
		}
	}
	// A missing baseline is a hard error, not a silent pass.
	if err := run("scale", false, 1, 0, 0, "", "", "", "", filepath.Join(t.TempDir(), "again.json"), "2000", filepath.Join(t.TempDir(), "missing.json"), "", 1); err == nil {
		t.Fatal("guard accepted a missing baseline")
	}
}

func TestRunHistoryRejectsBadMode(t *testing.T) {
	if err := run("history", false, 1, 0, 2, "", "", "", "", "", "", "", "fast", 1); err == nil {
		t.Fatal("accepted unknown -history mode")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false, 1, 0, 0, "", "", "", "", "", "", "", "", 1); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}
