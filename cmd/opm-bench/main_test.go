package main

import "testing"

func TestRunFastExperiments(t *testing.T) {
	for _, name := range []string{"opmatrix", "bases", "adaptive"} {
		if err := run(name, false, 1, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunTableIQuick(t *testing.T) {
	if err := run("table1", false, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTableIISmallGrid(t *testing.T) {
	if err := run("table2", false, 1, 6); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false, 1, 0); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}
