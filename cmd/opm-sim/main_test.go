package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opmsim/internal/core"
)

func writeDeck(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.cir")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const rcDeck = `rc lowpass
V1 in 0 STEP 1
R1 in out 1k
C1 out 0 1u
.tran 10u 5m
`

func TestRunOPM(t *testing.T) {
	path := writeDeck(t, rcDeck)
	if err := run(path, "opm", 0, "", "out", 10, 0, "", 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselines(t *testing.T) {
	path := writeDeck(t, rcDeck)
	for _, m := range []string{"beuler", "trap", "gear", "trbdf2"} {
		if err := run(path, m, 128, "", "out,in", 5, 0, "", 0, false); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestRunFractionalRequiresOPM(t *testing.T) {
	path := writeDeck(t, `frac
I1 0 n1 STEP 1
R1 n1 0 1
P1 n1 0 1 0.5
.tran 1m 1
`)
	if err := run(path, "opm", 0, "", "", 5, 0, "", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "trap", 0, "", "", 5, 0, "", 0, false); err == nil {
		t.Fatal("transient method accepted fractional netlist")
	}
	// The Grünwald–Letnikov stepper handles it.
	if err := run(path, "glet", 0, "", "n1", 5, 0, "", 0, false); err != nil {
		t.Fatalf("glet: %v", err)
	}
}

func TestRunGletRejectsMixedOrders(t *testing.T) {
	// C (order 1) + CPE (order ½) is multi-order: glet must refuse.
	path := writeDeck(t, `mixed
I1 0 n1 STEP 1
R1 n1 0 1
C1 n1 0 1
P1 n1 0 1 0.5
.tran 10m 1
`)
	if err := run(path, "glet", 0, "", "", 5, 0, "", 0, false); err == nil {
		t.Fatal("glet accepted mixed-order netlist")
	}
	// OPM handles the same netlist fine.
	if err := run(path, "opm", 0, "", "", 5, 0, "", 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "opm", 0, "", "", 5, 0, "", 0, false); err == nil {
		t.Fatal("accepted missing netlist")
	}
	if err := run("/nonexistent/file.cir", "opm", 0, "", "", 5, 0, "", 0, false); err == nil {
		t.Fatal("accepted missing file")
	}
	path := writeDeck(t, rcDeck)
	if err := run(path, "wizardry", 0, "", "", 5, 0, "", 0, false); err == nil {
		t.Fatal("accepted unknown method")
	}
	if err := run(path, "opm", 0, "", "nosuchnode", 5, 0, "", 0, false); err == nil {
		t.Fatal("accepted unknown node")
	}
	if err := run(path, "opm", 0, "bogus", "", 5, 0, "", 0, false); err == nil {
		t.Fatal("accepted bad tstop")
	}
	// Deck without .tran and no -tstop.
	noTran := writeDeck(t, "t\nV1 a 0 DC 1\nR1 a 0 1\n")
	if err := run(noTran, "opm", 16, "", "", 5, 0, "", 0, false); err == nil {
		t.Fatal("accepted missing span")
	}
	if err := run(noTran, "opm", 16, "1m", "", 5, 0, "", 0, false); err != nil {
		t.Fatalf("explicit -tstop failed: %v", err)
	}
}

func TestRunHistoryMode(t *testing.T) {
	// Fractional deck so -history actually selects an engine.
	path := writeDeck(t, `frac
I1 0 n1 STEP 1
R1 n1 0 1
P1 n1 0 1 0.5
.tran 10m 1
`)
	for _, mode := range []string{"auto", "exact", "fft"} {
		if err := run(path, "opm", 64, "", "n1", 5, 0, mode, 0, false); err != nil {
			t.Fatalf("-history %s: %v", mode, err)
		}
	}
	if err := run(path, "opm", 64, "", "n1", 5, 0, "fast", 0, false); err == nil {
		t.Fatal("accepted unknown -history mode")
	}
}

func TestRunAC(t *testing.T) {
	path := writeDeck(t, rcDeck)
	if err := runAC(path, "100,1meg,20", "out"); err != nil {
		t.Fatal(err)
	}
	if err := runAC(path, "bogus", "out"); err == nil {
		t.Fatal("accepted malformed -ac spec")
	}
	if err := runAC(path, "1,2", "out"); err == nil {
		t.Fatal("accepted two-field -ac spec")
	}
	if err := runAC("", "1,10,5", ""); err == nil {
		t.Fatal("accepted missing netlist")
	}
	if err := runAC(path, "10,1,5", ""); err == nil {
		t.Fatal("accepted inverted sweep")
	}
}

func TestRunWithInitialConditions(t *testing.T) {
	// RC discharge from .ic: both OPM and trapezoidal honor it.
	path := writeDeck(t, `discharge
I1 0 n1 DC 0
R1 n1 0 1k
C1 n1 0 1u
.ic n1=1
.tran 10u 3m
`)
	for _, m := range []string{"opm", "trap"} {
		if err := run(path, m, 0, "", "n1", 8, 0, "", 0, false); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestRunOP(t *testing.T) {
	path := writeDeck(t, `divider
V1 in 0 DC 2
R1 in out 1k
R2 out 0 1k
`)
	if err := runOP(path); err != nil {
		t.Fatal(err)
	}
	if err := runOP(""); err == nil {
		t.Fatal("accepted missing netlist")
	}
	if err := runOP("/nonexistent.cir"); err == nil {
		t.Fatal("accepted missing file")
	}
	// Nonlinear DC through the same entry point.
	diode := writeDeck(t, `diode op
V1 in 0 DC 5
R1 in d 1k
D1 d 0 0
`)
	if err := runOP(diode); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeoutAndVerbose(t *testing.T) {
	path := writeDeck(t, rcDeck)
	// A nanosecond budget expires before the first column; the run must end
	// with the typed cancellation error, not hang or crash.
	err := run(path, "opm", 4096, "", "out", 5, 0, "", time.Nanosecond, true)
	if !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("errors.Is(err, core.ErrCancelled) is false; err = %v", err)
	}
	// A generous budget with -verbose succeeds.
	if err := run(path, "opm", 0, "", "out", 5, 0, "", time.Minute, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunCorners(t *testing.T) {
	path := writeDeck(t, rcDeck)
	if err := runCorners(path, 0.1, 0, 0, 16, "", "out", 0, "", true); err != nil {
		t.Fatal(err)
	}
	if err := runCorners("", 0.1, 0, 0, 16, "", "", 0, "", false); err == nil {
		t.Fatal("accepted missing netlist")
	}
	// Corners start from rest; .ic decks are rejected.
	ic := writeDeck(t, `discharge
I1 0 n1 DC 0
R1 n1 0 1k
C1 n1 0 1u
.ic n1=1
.tran 10u 3m
`)
	if err := runCorners(ic, 0.1, 0, 0, 16, "", "", 0, "", false); err == nil {
		t.Fatal("accepted an .ic deck")
	}
	// Nonlinear netlists share no pencil factorization across corners.
	diode := writeDeck(t, `diode
V1 in 0 STEP 1
R1 in d 1k
D1 d 0 0
.tran 10u 1m
`)
	if err := runCorners(diode, 0.1, 0, 0, 16, "", "", 0, "", false); err == nil {
		t.Fatal("accepted a nonlinear netlist")
	}
}
