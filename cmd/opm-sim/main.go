// Command opm-sim simulates a SPICE-flavoured netlist with the OPM method
// (or a classical baseline) and prints the requested node voltages as
// tab-separated series.
//
// Usage:
//
//	opm-sim -netlist circuit.cir [-method opm|beuler|trap|gear|glet] \
//	        [-steps 512] [-tstop 1m] [-nodes out,n2] [-points 100] \
//	        [-timeout 30s] [-verbose]
//
// -timeout aborts an OPM solve after a wall-clock budget (the run ends with a
// typed cancellation error); -verbose prints the solver report — which
// factorization tier served the solves, any fallbacks, and retry counters —
// to stderr.
//
// The netlist's ".tran step stop" directive supplies defaults for -steps and
// -tstop. Fractional elements (CPE cards "P<name> a b value alpha") require
// -method opm or -method glet (the Grünwald–Letnikov cross-check).
//
// -montecarlo N fans N component-tolerance scenarios (±-tol on every R, C,
// L, and CPE, counter-seeded by -mcseed) through the parameter-varying batch
// engine — Sherman–Morrison–Woodbury factor updates against the shared
// nominal factorization — and prints per-node waveform envelopes (min, p05,
// mean, p95, max) at quartile probe columns. -mcrank pins or disables the
// SMW/refactorize crossover; -mcelems caps how many elements are perturbed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"opmsim/internal/circuit"
	"opmsim/internal/core"
	"opmsim/internal/experiments"
	"opmsim/internal/glet"
	"opmsim/internal/netgen"
	"opmsim/internal/sparse"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

// interpAt linearly interpolates (ts, vs) at t, clamping outside the range.
func interpAt(ts, vs []float64, t float64) float64 {
	if len(ts) == 0 {
		return 0
	}
	if t <= ts[0] {
		return vs[0]
	}
	last := len(ts) - 1
	if t >= ts[last] {
		return vs[last]
	}
	lo, hi := 0, last
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ts[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - ts[lo]) / (ts[hi] - ts[lo])
	return vs[lo] + frac*(vs[hi]-vs[lo])
}

func main() {
	var (
		netlistPath = flag.String("netlist", "", "netlist file (required)")
		method      = flag.String("method", "opm", "solver: opm, beuler, trap, gear, trbdf2, glet")
		steps       = flag.Int("steps", 0, "number of time steps (default from .tran)")
		tstop       = flag.String("tstop", "", "simulation span, SPICE units (default from .tran)")
		nodes       = flag.String("nodes", "", "comma-separated node names to print (default: all)")
		points      = flag.Int("points", 50, "number of output sample points")
		ac          = flag.String("ac", "", "AC sweep instead of transient: \"wstart,wstop,points\" (rad/s, SPICE units ok)")
		op          = flag.Bool("op", false, "print the DC operating point instead of a transient")
		workers     = flag.Int("workers", 0, "goroutines for the OPM fractional-history engine (0 = GOMAXPROCS; results are identical for any value)")
		history     = flag.String("history", "", "OPM fractional-history engine: auto (default; FFT on large grids), exact, or fft")
		timeout     = flag.Duration("timeout", 0, "abort the solve after this wall-clock duration (0 = no limit; OPM method only)")
		verbose     = flag.Bool("verbose", false, "print the solver report (factorization tiers, fallbacks, retries) to stderr")
		batch       = flag.Int("batch", 0, "simulate this many input-amplitude scenarios as one batched OPM solve (linear netlists only)")
		sweep       = flag.String("sweep", "0.5:1.5", "amplitude scale range \"lo:hi\" swept across the -batch scenarios")
		montecarlo  = flag.Int("montecarlo", 0, "run this many component-tolerance Monte-Carlo scenarios (scenario 0 is nominal) and print waveform envelopes (linear netlists only)")
		tol         = flag.Float64("tol", 0.1, "Monte-Carlo relative tolerance band: each perturbed value is nominal·(1±tol)")
		mcseed      = flag.Uint64("mcseed", 1, "Monte-Carlo RNG seed; same seed, same scenarios, bit-identical envelopes")
		mcelems     = flag.Int("mcelems", 0, "cap on perturbed elements, netlist order (0 = every R, C, L, and CPE)")
		mcrank      = flag.Int("mcrank", 0, "pencil-update rank limit: 0 measures the SMW/refactor crossover, >0 pins it, <0 forces refactorization")
		corners     = flag.Bool("corners", false, "solve the deterministic tolerance corners (each element at ±tol alone, plus all-high/all-low) in one batched sweep and report the worst corner (linear netlists only)")
	)
	flag.Parse()
	if *corners {
		if err := runCorners(*netlistPath, *tol, *mcelems, *mcrank, *steps, *tstop, *nodes, *workers, *history, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "opm-sim:", err)
			os.Exit(1)
		}
		return
	}
	if *montecarlo > 0 {
		if err := runMonteCarlo(*netlistPath, *montecarlo, *tol, *mcseed, *mcelems, *mcrank, *steps, *tstop, *nodes, *workers, *history, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "opm-sim:", err)
			os.Exit(1)
		}
		return
	}
	if *batch > 0 {
		if err := runBatch(*netlistPath, *batch, *sweep, *steps, *tstop, *nodes, *workers, *history, *timeout, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "opm-sim:", err)
			os.Exit(1)
		}
		return
	}
	if *op {
		if err := runOP(*netlistPath); err != nil {
			fmt.Fprintln(os.Stderr, "opm-sim:", err)
			os.Exit(1)
		}
		return
	}
	if *ac != "" {
		if err := runAC(*netlistPath, *ac, *nodes); err != nil {
			fmt.Fprintln(os.Stderr, "opm-sim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*netlistPath, *method, *steps, *tstop, *nodes, *points, *workers, *history, *timeout, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "opm-sim:", err)
		os.Exit(1)
	}
}

// runOP prints the DC operating point (Newton-based for diode netlists).
func runOP(netlistPath string) error {
	if netlistPath == "" {
		return fmt.Errorf("-netlist is required")
	}
	f, err := os.Open(netlistPath)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := circuit.Parse(f)
	if err != nil {
		return err
	}
	mna, err := deck.Netlist.MNA()
	if err != nil {
		return err
	}
	x, err := mna.DCOperatingPoint()
	if err != nil {
		return err
	}
	if deck.Title != "" {
		fmt.Printf("# %s\n", deck.Title)
	}
	fmt.Println("# DC operating point")
	for i, name := range mna.StateNames {
		fmt.Printf("%s\t%.6g\n", name, x[i])
	}
	return nil
}

// runAC performs a small-signal frequency sweep and prints a Bode table for
// the first input channel.
func runAC(netlistPath, spec, nodes string) error {
	if netlistPath == "" {
		return fmt.Errorf("-netlist is required")
	}
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("-ac needs \"wstart,wstop,points\", got %q", spec)
	}
	w0, err := circuit.ParseValue(parts[0])
	if err != nil {
		return fmt.Errorf("bad -ac start: %w", err)
	}
	w1, err := circuit.ParseValue(parts[1])
	if err != nil {
		return fmt.Errorf("bad -ac stop: %w", err)
	}
	var np int
	if _, err := fmt.Sscan(parts[2], &np); err != nil {
		return fmt.Errorf("bad -ac points: %w", err)
	}
	f, err := os.Open(netlistPath)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := circuit.Parse(f)
	if err != nil {
		return err
	}
	mna, err := deck.Netlist.MNA()
	if err != nil {
		return err
	}
	stateIdx, labels, err := selectStates(deck, mna, nodes)
	if err != nil {
		return err
	}
	omega, err := circuit.LogSpace(w0, w1, np)
	if err != nil {
		return err
	}
	res, err := mna.AC(omega)
	if err != nil {
		return err
	}
	fmt.Print("omega")
	for _, l := range labels {
		fmt.Printf("\t|%s| dB\targ %s deg", l, l)
	}
	fmt.Println()
	for k, w := range res.Omega {
		fmt.Printf("%.6g", w)
		for _, s := range stateIdx {
			fmt.Printf("\t%.4f\t%.3f", res.MagDB(s, 0)[k], res.PhaseDeg(s, 0)[k])
		}
		fmt.Println()
	}
	return nil
}

func run(netlistPath, method string, steps int, tstop, nodes string, points, workers int, history string, timeout time.Duration, verbose bool) error {
	if netlistPath == "" {
		return fmt.Errorf("-netlist is required")
	}
	histMode, err := core.ParseHistoryMode(history)
	if err != nil {
		return err
	}
	f, err := os.Open(netlistPath)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := circuit.Parse(f)
	if err != nil {
		return err
	}
	T, m, err := resolveSpan(deck, tstop, steps)
	if err != nil {
		return err
	}
	mna, err := deck.Netlist.MNA()
	if err != nil {
		return err
	}
	stateIdx, labels, err := selectStates(deck, mna, nodes)
	if err != nil {
		return err
	}
	if points < 2 {
		points = 50
	}
	times := waveform.UniformTimes(points, T)
	var x0 []float64
	if len(deck.ICs) > 0 {
		x0, err = mna.InitialState(deck.ICs)
		if err != nil {
			return err
		}
	}

	var series [][]float64
	switch method {
	case "opm":
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		rep := &core.SolveReport{}
		var sol *core.Solution
		var err error
		if mna.Nonlinear != nil {
			if x0 != nil {
				return fmt.Errorf(".ic is not supported for nonlinear netlists")
			}
			sol, err = core.SolveNonlinearCtx(ctx, mna.Sys, mna.Nonlinear, mna.Inputs, m, T,
				core.NonlinearOptions{Options: core.Options{Workers: workers, HistoryMode: histMode, Report: rep}})
		} else {
			sol, err = core.SolveCtx(ctx, mna.Sys, mna.Inputs, m, T,
				core.Options{X0: x0, Workers: workers, HistoryMode: histMode, Report: rep})
		}
		if verbose {
			// Also on failure: the partial report shows how far the run got.
			fmt.Fprintln(os.Stderr, rep.Summary())
		}
		if err != nil {
			return err
		}
		series = make([][]float64, len(stateIdx))
		for i, s := range stateIdx {
			series[i] = make([]float64, len(times))
			for k, t := range times {
				series[i][k] = sol.StateAt(s, t)
			}
		}
	case "glet":
		// Grünwald–Letnikov stepper for single-order fractional netlists.
		if mna.Nonlinear != nil {
			return fmt.Errorf("glet cannot simulate nonlinear netlists (use -method opm)")
		}
		alpha := mna.Sys.MaxOrder()
		var e *sparse.CSR
		var g *sparse.CSR
		for _, term := range mna.Sys.Terms {
			switch term.Order {
			case alpha:
				e = term.Coeff
			case 0:
				g = term.Coeff
			default:
				return fmt.Errorf("glet requires a single differential order, found %g and %g", term.Order, alpha)
			}
		}
		if e == nil || g == nil {
			return fmt.Errorf("glet needs one differential and one conductance term")
		}
		res, err := glet.Solve(e, g.Scale(-1), mna.Sys.B, mna.Inputs, alpha, T, T/float64(m))
		if err != nil {
			return err
		}
		series = make([][]float64, len(stateIdx))
		for i, s := range stateIdx {
			row := res.X.Row(s)
			series[i] = make([]float64, len(times))
			for k, t := range times {
				series[i][k] = interpAt(res.Times, row, t)
			}
		}
	case "beuler", "trap", "gear", "trbdf2":
		e, a, b, err := mna.DAE()
		if err != nil {
			return fmt.Errorf("%s requires an integer-order netlist: %w", method, err)
		}
		tm := map[string]transient.Method{
			"beuler": transient.BackwardEuler,
			"trap":   transient.Trapezoidal,
			"gear":   transient.Gear2,
			"trbdf2": transient.TRBDF2,
		}[method]
		res, err := transient.Simulate(e, a, b, mna.Inputs, T, T/float64(m), tm, transient.Options{X0: x0})
		if err != nil {
			return err
		}
		series = make([][]float64, len(stateIdx))
		for i, s := range stateIdx {
			series[i] = res.SampleState(s, times)
		}
	default:
		return fmt.Errorf("unknown method %q", method)
	}

	if deck.Title != "" {
		fmt.Printf("# %s\n", deck.Title)
	}
	fmt.Printf("# method=%s steps=%d tstop=%g states=%d\n", method, m, T, mna.Sys.N())
	fmt.Print("t")
	for _, l := range labels {
		fmt.Printf("\t%s", l)
	}
	fmt.Println()
	for k, t := range times {
		fmt.Printf("%.6g", t)
		for i := range series {
			fmt.Printf("\t%.6g", series[i][k])
		}
		fmt.Println()
	}
	return nil
}

// runBatch simulates k amplitude-scaled copies of the netlist's inputs as one
// batched OPM solve (shared pencil factorization, panel kernels) and prints a
// per-scenario table of the selected states' final values.
func runBatch(netlistPath string, k int, sweep string, steps int, tstop, nodes string, workers int, history string, timeout time.Duration, verbose bool) error {
	if netlistPath == "" {
		return fmt.Errorf("-netlist is required")
	}
	lo, hi, err := parseSweep(sweep)
	if err != nil {
		return err
	}
	histMode, err := core.ParseHistoryMode(history)
	if err != nil {
		return err
	}
	f, err := os.Open(netlistPath)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := circuit.Parse(f)
	if err != nil {
		return err
	}
	T, m, err := resolveSpan(deck, tstop, steps)
	if err != nil {
		return err
	}
	mna, err := deck.Netlist.MNA()
	if err != nil {
		return err
	}
	if mna.Nonlinear != nil {
		return fmt.Errorf("-batch requires a linear netlist (the batch engine shares one pencil factorization)")
	}
	stateIdx, labels, err := selectStates(deck, mna, nodes)
	if err != nil {
		return err
	}
	var x0 []float64
	if len(deck.ICs) > 0 {
		x0, err = mna.InitialState(deck.ICs)
		if err != nil {
			return err
		}
	}
	scales := make([]float64, k)
	scenarios := make([]core.Scenario, k)
	for s := 0; s < k; s++ {
		scale := lo
		if k > 1 {
			scale = lo + (hi-lo)*float64(s)/float64(k-1)
		}
		scales[s] = scale
		u := make([]waveform.Signal, len(mna.Inputs))
		for i, base := range mna.Inputs {
			base, scale := base, scale
			u[i] = func(t float64) float64 { return scale * base(t) }
		}
		scenarios[s] = core.Scenario{U: u, X0: x0}
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rep := &core.SolveReport{}
	sols, err := core.SolveBatchCtx(ctx, mna.Sys, scenarios, m, T, core.BatchOptions{
		Options: core.Options{
			Workers:     workers,
			HistoryMode: histMode,
			Report:      rep,
			FactorCache: core.NewFactorCache(0),
		},
	})
	if verbose {
		fmt.Fprintln(os.Stderr, rep.Summary())
	}
	if err != nil {
		return err
	}
	if deck.Title != "" {
		fmt.Printf("# %s\n", deck.Title)
	}
	fmt.Printf("# batch=%d sweep=%g:%g steps=%d tstop=%g states=%d\n", k, lo, hi, m, T, mna.Sys.N())
	fmt.Print("scenario\tscale")
	for _, l := range labels {
		fmt.Printf("\t%s(T)", l)
	}
	fmt.Println()
	tEnd := T * (1 - 0.5/float64(m)) // last BPF interval midpoint
	for s, sol := range sols {
		fmt.Printf("%d\t%.6g", s, scales[s])
		for _, idx := range stateIdx {
			fmt.Printf("\t%.6g", sol.StateAt(idx, tEnd))
		}
		fmt.Println()
	}
	return nil
}

// runMonteCarlo fans N component-tolerance scenarios of the netlist through
// the parameter-varying batch engine (Sherman–Morrison–Woodbury factor
// updates below the crossover rank, refactorization above) and prints the
// per-node waveform envelope — min, p05, mean, p95, max — at the envelope's
// quantile probe columns. Scenario 0 is always the unperturbed nominal.
func runMonteCarlo(netlistPath string, n int, tol float64, seed uint64, elems, rankLimit, steps int, tstop, nodes string, workers int, history string, verbose bool) error {
	if netlistPath == "" {
		return fmt.Errorf("-netlist is required")
	}
	histMode, err := core.ParseHistoryMode(history)
	if err != nil {
		return err
	}
	f, err := os.Open(netlistPath)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := circuit.Parse(f)
	if err != nil {
		return err
	}
	T, m, err := resolveSpan(deck, tstop, steps)
	if err != nil {
		return err
	}
	mna, err := deck.Netlist.MNA()
	if err != nil {
		return err
	}
	if mna.Nonlinear != nil {
		return fmt.Errorf("-montecarlo requires a linear netlist (scenarios share one pencil factorization)")
	}
	if len(deck.ICs) > 0 {
		return fmt.Errorf("-montecarlo does not support .ic (scenarios start from rest)")
	}
	stateIdx, labels, err := selectStates(deck, mna, nodes)
	if err != nil {
		return err
	}
	names := netgen.PerturbableElements(deck.Netlist, elems)
	if len(names) == 0 {
		return fmt.Errorf("netlist has no perturbable elements (R, C, L, or CPE)")
	}
	res, err := experiments.MonteCarloSweep(experiments.MonteCarloConfig{
		Netlist: deck.Netlist, Model: mna,
		N: n, Tol: tol, Seed: seed, Elements: names,
		M: m, T: T,
		UpdateRankLimit: rankLimit,
		Options: core.Options{
			Workers:     workers,
			HistoryMode: histMode,
			FactorCache: core.NewFactorCache(0),
		},
	})
	if err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "montecarlo: %d scenarios over %d elements (tol ±%g, seed %d): %d SMW updates, %d refactorizations, crossover rank %d, %d factorizations, %d columns\n",
			res.Scenarios, len(names), tol, seed,
			res.PencilUpdates, res.PencilRefactors, res.CrossoverRank, res.Factorizations, res.Columns)
	}
	if deck.Title != "" {
		fmt.Printf("# %s\n", deck.Title)
	}
	fmt.Printf("# montecarlo=%d tol=%g seed=%d elements=%d steps=%d tstop=%g states=%d\n",
		n, tol, seed, len(names), m, T, mna.Sys.N())
	fmt.Println("node\tt\tmin\tp05\tmean\tp95\tmax")
	env := res.Envelope
	for i, s := range stateIdx {
		for _, j := range env.ProbeColumns() {
			tj := T * (float64(j) + 0.5) / float64(m)
			p05, err := env.Quantile(s, j, 0.05)
			if err != nil {
				return err
			}
			p95, err := env.Quantile(s, j, 0.95)
			if err != nil {
				return err
			}
			fmt.Printf("%s\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\n",
				labels[i], tj, env.Min(s, j), p05, env.Mean(s, j), p95, env.Max(s, j))
		}
	}
	return nil
}

// runCorners solves the deterministic tolerance corners of the netlist —
// scenario 0 nominal, each perturbable element alone at its ±tol extremes,
// and the two global all-high/all-low corners — as one parameter-varying
// batch (the per-element corners are rank-1 pencil deltas served by the SMW
// update path), printing per-corner worst-case deviations and envelope
// bounds at the probe columns.
func runCorners(netlistPath string, tol float64, elems, rankLimit, steps int, tstop, nodes string, workers int, history string, verbose bool) error {
	if netlistPath == "" {
		return fmt.Errorf("-netlist is required")
	}
	histMode, err := core.ParseHistoryMode(history)
	if err != nil {
		return err
	}
	f, err := os.Open(netlistPath)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := circuit.Parse(f)
	if err != nil {
		return err
	}
	T, m, err := resolveSpan(deck, tstop, steps)
	if err != nil {
		return err
	}
	mna, err := deck.Netlist.MNA()
	if err != nil {
		return err
	}
	if mna.Nonlinear != nil {
		return fmt.Errorf("-corners requires a linear netlist (corners share one pencil factorization)")
	}
	if len(deck.ICs) > 0 {
		return fmt.Errorf("-corners does not support .ic (corners start from rest)")
	}
	stateIdx, labels, err := selectStates(deck, mna, nodes)
	if err != nil {
		return err
	}
	names := netgen.PerturbableElements(deck.Netlist, elems)
	if len(names) == 0 {
		return fmt.Errorf("netlist has no perturbable elements (R, C, L, or CPE)")
	}
	res, err := experiments.CornerSweep(experiments.CornerConfig{
		Netlist: deck.Netlist, Model: mna,
		Elements: names, Tol: tol,
		M: m, T: T,
		UpdateRankLimit: rankLimit,
		Options: core.Options{
			Workers:     workers,
			HistoryMode: histMode,
			FactorCache: core.NewFactorCache(0),
		},
	})
	if err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "corners: %d corners over %d elements (tol ±%g): %d SMW updates, %d refactorizations\n",
			len(res.Corners)-1, len(names), tol, res.PencilUpdates, res.PencilRefactors)
	}
	if deck.Title != "" {
		fmt.Printf("# %s\n", deck.Title)
	}
	fmt.Printf("# corners=%d tol=%g elements=%d steps=%d tstop=%g states=%d\n",
		len(res.Corners), tol, len(names), m, T, mna.Sys.N())
	fmt.Println("corner\tmax|dx|\tstate\tcolumn\tworst")
	for c, corner := range res.Corners {
		if c == 0 {
			continue
		}
		mark := ""
		if c == res.Worst {
			mark = "*"
		}
		fmt.Printf("%s\t%.6g\t%s\t%d\t%s\n",
			corner.Label, corner.MaxDeviation, mna.StateNames[corner.AtState], corner.AtColumn, mark)
	}
	env := res.Envelope
	fmt.Println("node\tt\tmin\tmax")
	for i, s := range stateIdx {
		for _, j := range env.ProbeColumns() {
			tj := T * (float64(j) + 0.5) / float64(m)
			fmt.Printf("%s\t%.6g\t%.6g\t%.6g\n", labels[i], tj, env.Min(s, j), env.Max(s, j))
		}
	}
	return nil
}

// parseSweep parses an amplitude range "lo:hi" (a bare "x" means x:x).
func parseSweep(s string) (lo, hi float64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if lo, err = circuit.ParseValue(strings.TrimSpace(parts[0])); err != nil {
		return 0, 0, fmt.Errorf("bad -sweep: %w", err)
	}
	if len(parts) == 1 {
		return lo, lo, nil
	}
	if hi, err = circuit.ParseValue(strings.TrimSpace(parts[1])); err != nil {
		return 0, 0, fmt.Errorf("bad -sweep: %w", err)
	}
	return lo, hi, nil
}

func resolveSpan(deck *circuit.Deck, tstop string, steps int) (T float64, m int, err error) {
	if tstop != "" {
		T, err = circuit.ParseValue(tstop)
		if err != nil {
			return 0, 0, fmt.Errorf("bad -tstop: %w", err)
		}
	} else if deck.Tran != nil {
		T = deck.Tran.Stop
	} else {
		return 0, 0, fmt.Errorf("no -tstop and no .tran directive")
	}
	m = steps
	if m == 0 {
		if deck.Tran != nil {
			m = int(deck.Tran.Stop/deck.Tran.Step + 0.5)
		} else {
			m = 512
		}
	}
	if T <= 0 || m < 1 {
		return 0, 0, fmt.Errorf("invalid span T=%g, steps=%d", T, m)
	}
	return T, m, nil
}

func selectStates(deck *circuit.Deck, mna *circuit.MNA, nodes string) (idx []int, labels []string, err error) {
	if nodes == "" {
		for i, name := range mna.StateNames {
			idx = append(idx, i)
			labels = append(labels, name)
		}
		return idx, labels, nil
	}
	for _, name := range strings.Split(nodes, ",") {
		name = strings.TrimSpace(name)
		want := "v(" + name + ")"
		found := -1
		for i, sn := range mna.StateNames {
			if sn == want {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, nil, fmt.Errorf("node %q not found (known states: %s)", name, strings.Join(mna.StateNames, ", "))
		}
		idx = append(idx, found)
		labels = append(labels, want)
	}
	return idx, labels, nil
}
