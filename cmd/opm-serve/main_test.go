package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opmsim/internal/serve"
)

// TestServerEndToEnd drives the assembled binary handler (as main builds it)
// through a full submit-and-stream round trip plus the probe endpoints.
func TestServerEndToEnd(t *testing.T) {
	srv := newServer(serve.Config{Workers: 2, QueueDepth: 4}, false)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: got %d, want 200", resp.StatusCode)
	}

	body := `{"netlist": "rc lowpass\nV1 in 0 STEP 1\nR1 in out 1k\nC1 out 0 1u\n.tran 0.1m 10m\n", "steps": 64, "sweep": {"count": 2, "lo": 0.5, "hi": 1.5}}`
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: got %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("solve: Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines, columns int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		switch rec["type"] {
		case "column":
			columns++
		case "done":
			sawDone = true
		case "error":
			t.Fatalf("stream ended in error: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if columns != 64 || !sawDone {
		t.Fatalf("got %d column records (want 64), done=%v", columns, sawDone)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Completed != 1 || snap.Submitted != 1 {
		t.Fatalf("metrics: submitted=%d completed=%d, want 1/1", snap.Submitted, snap.Completed)
	}
	if snap.Latency.Count != 1 {
		t.Fatalf("metrics: latency count = %d, want 1", snap.Latency.Count)
	}
}

// TestVerboseHookInstalled checks the -verbose wiring installs a job logger.
func TestVerboseHookInstalled(t *testing.T) {
	if srv := newServer(serve.Config{}, true); srv.OnJobDone == nil {
		t.Fatal("verbose server has no OnJobDone hook")
	}
	if srv := newServer(serve.Config{}, false); srv.OnJobDone != nil {
		t.Fatal("quiet server unexpectedly has an OnJobDone hook")
	}
}

// TestHTTPServerHardening pins the slow-client protections the binary ships
// with: a stalled header must be reaped, idle connections bounded, header
// volume capped, but streaming responses must never be cut by a write timer.
func TestHTTPServerHardening(t *testing.T) {
	hs := newHTTPServer(":0", http.NewServeMux())
	if hs.ReadHeaderTimeout <= 0 {
		t.Fatal("no ReadHeaderTimeout: slowloris headers pin connection goroutines forever")
	}
	if hs.IdleTimeout <= 0 {
		t.Fatal("no IdleTimeout: idle keep-alive connections accumulate unboundedly")
	}
	if hs.MaxHeaderBytes <= 0 || hs.MaxHeaderBytes > 1<<20 {
		t.Fatalf("MaxHeaderBytes = %d, want a modest explicit cap", hs.MaxHeaderBytes)
	}
	if hs.WriteTimeout != 0 || hs.ReadTimeout != 0 {
		t.Fatal("blanket socket timeouts would cut long-lived solve streams; the per-job deadline is the serve layer's")
	}
}

// TestSlowlorisHeaderReaped opens a raw connection, dribbles an incomplete
// header, and requires the server to close the connection once
// ReadHeaderTimeout elapses — the stalled client cannot hold its goroutine.
func TestSlowlorisHeaderReaped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer("", newServer(serve.Config{Workers: 1}, false))
	hs.ReadHeaderTimeout = 150 * time.Millisecond // shorten the production 10s for the test
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Partial request: header section never terminated.
	if _, err := conn.Write([]byte("POST /v1/solve HTTP/1.1\r\nHost: x\r\nX-Slow: dribble")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 512)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server closed (or 408'd then closed) the stalled connection
		}
	}
	if waited := time.Since(start); waited > 4*time.Second {
		t.Fatalf("stalled-header connection survived %s; reap expected shortly after ReadHeaderTimeout", waited)
	}
}

// TestDrainViaBinaryWiring exercises the SIGTERM path's core: Drain on the
// assembled server rejects new work with 503 and unwinds within its bound.
func TestDrainViaBinaryWiring(t *testing.T) {
	srv := newServer(serve.Config{Workers: 1, JournalDir: t.TempDir()}, false)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain on idle server: %v", err)
	}
	body := `{"netlist": "rc\nV1 in 0 STEP 1\nR1 in out 1k\nC1 out 0 1u\n.tran 0.1m 10m\n"}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submission: got %d, want 503", resp.StatusCode)
	}
}
