package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"opmsim/internal/serve"
)

// TestServerEndToEnd drives the assembled binary handler (as main builds it)
// through a full submit-and-stream round trip plus the probe endpoints.
func TestServerEndToEnd(t *testing.T) {
	srv := newServer(serve.Config{Workers: 2, QueueDepth: 4}, false)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: got %d, want 200", resp.StatusCode)
	}

	body := `{"netlist": "rc lowpass\nV1 in 0 STEP 1\nR1 in out 1k\nC1 out 0 1u\n.tran 0.1m 10m\n", "steps": 64, "sweep": {"count": 2, "lo": 0.5, "hi": 1.5}}`
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: got %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("solve: Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines, columns int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		switch rec["type"] {
		case "column":
			columns++
		case "done":
			sawDone = true
		case "error":
			t.Fatalf("stream ended in error: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if columns != 64 || !sawDone {
		t.Fatalf("got %d column records (want 64), done=%v", columns, sawDone)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Completed != 1 || snap.Submitted != 1 {
		t.Fatalf("metrics: submitted=%d completed=%d, want 1/1", snap.Submitted, snap.Completed)
	}
	if snap.Latency.Count != 1 {
		t.Fatalf("metrics: latency count = %d, want 1", snap.Latency.Count)
	}
}

// TestVerboseHookInstalled checks the -verbose wiring installs a job logger.
func TestVerboseHookInstalled(t *testing.T) {
	if srv := newServer(serve.Config{}, true); srv.OnJobDone == nil {
		t.Fatal("verbose server has no OnJobDone hook")
	}
	if srv := newServer(serve.Config{}, false); srv.OnJobDone != nil {
		t.Fatal("quiet server unexpectedly has an OnJobDone hook")
	}
}
