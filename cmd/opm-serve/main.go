// Command opm-serve runs the OPM simulation service: a long-running
// stdlib-only HTTP server that accepts netlist + scenario-sweep submissions
// and streams waveform columns back as the batched operational-matrix solve
// produces them.
//
// Usage:
//
//	opm-serve [-addr :8080] [-workers 8] [-queue 64] [-cache 64] \
//	          [-solve-workers 1] [-max-steps 131072] [-max-scenarios 1024] \
//	          [-verbose]
//
// Endpoints:
//
//	POST /v1/solve  submit a job; the response is application/x-ndjson —
//	                a header record, one record per solved column, and a
//	                done/error trailer. 429 + Retry-After when the queue is
//	                full. See internal/serve for the request schema.
//	GET  /metrics   JSON counters: queue depth, in-flight jobs, factor-cache
//	                hit rate, p50/p99 solve latency.
//	GET  /healthz   liveness probe.
//
// All jobs share one process-wide pencil-factorization cache, so concurrent
// clients sweeping the same circuit reuse a single factorization. SIGINT or
// SIGTERM drains in-flight jobs and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opmsim/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent solve slots (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "admitted jobs that may wait for a slot before 429 (0 = 64)")
		cacheCap     = flag.Int("cache", 0, "process-wide pencil-factorization cache capacity (0 = 64)")
		solveWorkers = flag.Int("solve-workers", 0, "goroutines per solve's history engine (0 = 1; results identical for any value)")
		maxSteps     = flag.Int("max-steps", 0, "per-request BPF column limit (0 = 131072)")
		maxScen      = flag.Int("max-scenarios", 0, "per-request sweep cardinality limit (0 = 1024)")
		verbose      = flag.Bool("verbose", false, "log every finished job (title, priority, columns, duration, cache hits)")
	)
	flag.Parse()

	srv := newServer(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheCap:     *cacheCap,
		SolveWorkers: *solveWorkers,
		MaxSteps:     *maxSteps,
		MaxScenarios: *maxScen,
	}, *verbose)

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("opm-serve: listening on %s", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("opm-serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("opm-serve: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("opm-serve: shutdown: %v", err)
		}
	}
}

// newServer assembles the service, optionally attaching the verbose job log.
func newServer(cfg serve.Config, verbose bool) *serve.Server {
	srv := serve.New(cfg)
	if verbose {
		srv.OnJobDone = func(d serve.Done) {
			status := "ok"
			if d.Err != nil {
				status = d.Err.Error()
			}
			title := d.Title
			if title == "" {
				title = "(untitled)"
			}
			log.Printf("job %q prio=%s scenarios=%d columns=%d cache=%d/%d dur=%s: %s",
				title, d.Priority, d.Scenarios, d.Columns,
				d.Report.FactorCacheHits, d.Report.FactorCacheHits+d.Report.FactorCacheMisses,
				d.Duration.Round(time.Microsecond), status)
		}
	}
	return srv
}
