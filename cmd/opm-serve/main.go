// Command opm-serve runs the OPM simulation service: a long-running
// stdlib-only HTTP server that accepts netlist + scenario-sweep submissions
// and streams waveform columns back as the batched operational-matrix solve
// produces them.
//
// Usage:
//
//	opm-serve [-addr :8080] [-workers 8] [-queue 64] [-cache 64] \
//	          [-solve-workers 1] [-max-steps 131072] [-max-scenarios 1024] \
//	          [-journal DIR] [-deadline 0] [-drain-timeout 15s] \
//	          [-verbose]
//
// Endpoints:
//
//	POST /v1/solve   submit a job; the response is application/x-ndjson —
//	                 a header record (carrying the job's resume ID), one
//	                 record per solved column, and a done/error trailer. 429
//	                 + jittered Retry-After when the queue is full. See
//	                 internal/serve for the request schema.
//	POST /v1/resume  reattach to an interrupted job: {"job": id, "from": n}
//	                 replays columns [n, checkpoint) bit-for-bit and then
//	                 continues the solve from its last checkpoint.
//	GET  /v1/jobs    list running and suspended (resumable) jobs.
//	GET  /metrics    JSON counters: queue depth, in-flight jobs, factor-cache
//	                 hit rate, p50/p99 solve latency, resilience counters
//	                 (resumes, breaker trips, journal failures, ...).
//	GET  /healthz    liveness probe.
//
// All jobs share one process-wide pencil-factorization cache, so concurrent
// clients sweeping the same circuit reuse a single factorization. With
// -journal set, every admitted job appends fsynced checkpoints to its own
// journal file, and a restarted server replays the directory to re-admit
// interrupted jobs. SIGINT or SIGTERM triggers the drain sequence: stop
// admission (503), cancel in-flight solves at their next column boundary
// (each commits a final checkpoint first), then exit — within
// -drain-timeout, worst case.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opmsim/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent solve slots (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "admitted jobs that may wait for a slot before 429 (0 = 64)")
		cacheCap     = flag.Int("cache", 0, "process-wide pencil-factorization cache capacity (0 = 64)")
		solveWorkers = flag.Int("solve-workers", 0, "goroutines per solve's history engine (0 = 1; results identical for any value)")
		maxSteps     = flag.Int("max-steps", 0, "per-request BPF column limit (0 = 131072)")
		maxScen      = flag.Int("max-scenarios", 0, "per-request sweep cardinality limit (0 = 1024)")
		journalDir   = flag.String("journal", "", "directory for durable per-job checkpoint journals (empty = in-memory resume only)")
		deadline     = flag.Duration("deadline", 0, "default per-job wall-clock budget; expired jobs suspend resumably (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "bound on the SIGTERM drain: checkpoint in-flight jobs, then exit")
		verbose      = flag.Bool("verbose", false, "log every finished job (title, priority, columns, duration, cache hits)")
	)
	flag.Parse()

	srv := newServer(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheCap:        *cacheCap,
		SolveWorkers:    *solveWorkers,
		MaxSteps:        *maxSteps,
		MaxScenarios:    *maxScen,
		JournalDir:      *journalDir,
		DefaultDeadline: *deadline,
	}, *verbose)

	hs := newHTTPServer(*addr, srv)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("opm-serve: listening on %s", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("opm-serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("opm-serve: draining (bound %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain first — stop admission, cancel solves at their next column
		// boundary so each commits a final checkpoint — then close the
		// listener and let the error/done trailers flush.
		if err := srv.Drain(dctx); err != nil {
			log.Printf("opm-serve: %v", err)
		}
		if err := hs.Shutdown(dctx); err != nil {
			log.Printf("opm-serve: shutdown: %v", err)
		}
	}
}

// newHTTPServer wraps the service handler in an http.Server hardened against
// slow-client resource pins: a stalled request line or header set is reaped
// by ReadHeaderTimeout instead of holding a connection goroutine forever
// (slowloris), idle keep-alive connections are bounded by IdleTimeout, and
// header volume by MaxHeaderBytes. There is deliberately no WriteTimeout or
// blanket ReadTimeout: solve streams are legitimately long-lived, and the
// per-job protection is the serve layer's deadline ladder, not a socket
// timer.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}
}

// newServer assembles the service, optionally attaching the verbose job log.
func newServer(cfg serve.Config, verbose bool) *serve.Server {
	srv := serve.New(cfg)
	if verbose {
		srv.OnJobDone = func(d serve.Done) {
			status := "ok"
			if d.Err != nil {
				status = d.Err.Error()
			}
			title := d.Title
			if title == "" {
				title = "(untitled)"
			}
			log.Printf("job %q prio=%s scenarios=%d columns=%d cache=%d/%d dur=%s: %s",
				title, d.Priority, d.Scenarios, d.Columns,
				d.Report.FactorCacheHits, d.Report.FactorCacheHits+d.Report.FactorCacheMisses,
				d.Duration.Round(time.Microsecond), status)
		}
	}
	return srv
}
