package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"opmsim/internal/lint"
)

// TestRunCleanPackage lints a real module package that is kept lint-clean;
// exit code 0 and no output is the contract CI's lint job relies on.
func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./internal/poly"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestRunList checks -list prints one row per registered analyzer.
func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(lint.Registry) {
		t.Fatalf("-list printed %d rows, registry has %d", len(lines), len(lint.Registry))
	}
	for i, a := range lint.Registry {
		if !strings.HasPrefix(lines[i], a.Name) {
			t.Errorf("row %d = %q, want analyzer %q", i, lines[i], a.Name)
		}
	}
}

func TestRunRulesSubset(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "floateq,poolput", "./internal/poly"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown rule should exit 2, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr should name the unknown rule, got: %s", errb.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("bad pattern should exit 2, got %d", code)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "xml", "./internal/poly"}, &out, &errb); code != 2 {
		t.Fatalf("unknown format should exit 2, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown format") {
		t.Errorf("stderr should name the unknown format, got: %s", errb.String())
	}
}

// TestRunJSONCleanPackage: a clean package emits no JSON objects, and the
// -json shorthand routes through the same path as -format json.
func TestRunJSONCleanPackage(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "json", "./internal/poly"},
		{"-json", "./internal/poly"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d, stderr: %s", args, code, errb.String())
		}
		if out.Len() != 0 {
			t.Errorf("%v: expected no findings, got:\n%s", args, out.String())
		}
	}
}

// TestJSONDiagShape checks the one-object-per-line wire shape field by field.
func TestJSONDiagShape(t *testing.T) {
	d := lint.Diagnostic{
		Pos:      token.Position{Filename: "internal/core/solve.go", Line: 42, Column: 7},
		Rule:     "lockhold",
		Severity: lint.SeverityError,
		Message:  `e.mu held across "select"`,
	}
	raw, err := json.Marshal(jsonDiag{
		File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
		Rule: d.Rule, Severity: d.Severity.String(), Message: d.Message,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"file": "internal/core/solve.go", "line": 42.0, "col": 7.0,
		"rule": "lockhold", "severity": "error", "message": `e.mu held across "select"`,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("field %q = %v, want %v", k, got[k], v)
		}
	}
}

// TestGithubAnnotation checks the ::error/::warning rendering and the
// workflow-command escaping rules (% CR LF in messages; , : too in props).
func TestGithubAnnotation(t *testing.T) {
	errD := lint.Diagnostic{
		Pos:      token.Position{Filename: "internal/serve/serve.go", Line: 9, Column: 3},
		Rule:     "fsyncorder",
		Severity: lint.SeverityError,
		Message:  "state advance\nat 50% done",
	}
	got := githubAnnotation(errD)
	want := "::error file=internal/serve/serve.go,line=9,col=3::[fsyncorder] state advance%0Aat 50%25 done"
	if got != want {
		t.Errorf("error annotation:\n got %q\nwant %q", got, want)
	}

	advD := lint.Diagnostic{
		Pos:      token.Position{Filename: "a,b:c.go", Line: 1, Column: 2},
		Rule:     "allocsite",
		Severity: lint.SeverityAdvisory,
		Message:  "m",
	}
	got = githubAnnotation(advD)
	want = "::warning file=a%2Cb%3Ac.go,line=1,col=2::[allocsite] m"
	if got != want {
		t.Errorf("advisory annotation:\n got %q\nwant %q", got, want)
	}
}
