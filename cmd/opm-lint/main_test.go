package main

import (
	"bytes"
	"strings"
	"testing"

	"opmsim/internal/lint"
)

// TestRunCleanPackage lints a real module package that is kept lint-clean;
// exit code 0 and no output is the contract CI's lint job relies on.
func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./internal/poly"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestRunList checks -list prints one row per registered analyzer.
func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(lint.Registry) {
		t.Fatalf("-list printed %d rows, registry has %d", len(lines), len(lint.Registry))
	}
	for i, a := range lint.Registry {
		if !strings.HasPrefix(lines[i], a.Name) {
			t.Errorf("row %d = %q, want analyzer %q", i, lines[i], a.Name)
		}
	}
}

func TestRunRulesSubset(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "floateq,poolput", "./internal/poly"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown rule should exit 2, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr should name the unknown rule, got: %s", errb.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("bad pattern should exit 2, got %d", code)
	}
}
