// Command opm-lint runs the project's static-analysis suite (internal/lint)
// over the module's packages and reports findings as
//
//	file:line:col: [rule] message
//
// It exits non-zero when any error-severity finding survives suppression;
// advisory findings print but do not fail the run unless -strict is given.
// Suppress an intentional violation at its line (or the line above) with
//
//	//lint:ignore <rule> <reason>
//
// Usage:
//
//	opm-lint [-tests] [-strict] [-rules floateq,nondet] [-format text|json|github] [packages]
//
// -format json (shorthand: -json) emits one JSON object per finding per line
// for tooling; -format github emits ::error/::warning workflow annotations so
// findings surface inline on pull-request diffs. Packages default to ./...
// resolved against the enclosing module root, so a bare
// `go run ./cmd/opm-lint ./...` from anywhere inside the repo lints the whole
// tree. See DESIGN.md §9 for the rule catalog and suppression policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"opmsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("opm-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tests    = fs.Bool("tests", false, "also lint in-package _test.go files")
		strict   = fs.Bool("strict", false, "treat advisory findings as errors")
		rules    = fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list     = fs.Bool("list", false, "list registered analyzers and exit")
		format   = fs.String("format", "text", "output format: text, json (one object per line), or github (workflow annotations)")
		jsonFlag = fs.Bool("json", false, "shorthand for -format json")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonFlag {
		*format = "json"
	}
	var emit func(lint.Diagnostic)
	switch *format {
	case "text":
		emit = func(d lint.Diagnostic) { fmt.Fprintln(stdout, d) }
	case "json":
		enc := json.NewEncoder(stdout)
		emit = func(d lint.Diagnostic) {
			_ = enc.Encode(jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Severity: d.Severity.String(), Message: d.Message,
			})
		}
	case "github":
		emit = func(d lint.Diagnostic) { fmt.Fprintln(stdout, githubAnnotation(d)) }
	default:
		fmt.Fprintf(stderr, "opm-lint: unknown format %q (want text, json or github)\n", *format)
		return 2
	}
	if *list {
		for _, a := range lint.Registry {
			fmt.Fprintf(stdout, "%-14s %-9s %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0
	}
	analyzers := lint.Registry
	if *rules != "" {
		analyzers = nil
		for _, name := range strings.Split(*rules, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "opm-lint: unknown rule %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "opm-lint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "opm-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "opm-lint:", err)
		return 2
	}
	loader.IncludeTests = *tests
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "opm-lint:", err)
		return 2
	}
	failed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, "opm-lint:", err)
			return 2
		}
		for _, d := range lint.RunPackage(pkg, analyzers) {
			// Print module-relative paths so output is stable across checkouts.
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
			emit(d)
			if d.Severity == lint.SeverityError || *strict {
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

// jsonDiag is the -format json wire shape: one object per finding per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// githubAnnotation renders a finding as a GitHub Actions workflow command
// (::error/::warning) so it surfaces inline on the pull-request diff.
func githubAnnotation(d lint.Diagnostic) string {
	level := "error"
	if d.Severity == lint.SeverityAdvisory {
		level = "warning"
	}
	return fmt.Sprintf("::%s file=%s,line=%d,col=%d::[%s] %s",
		level, githubEscapeProp(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
		d.Rule, githubEscapeData(d.Message))
}

// githubEscapeData escapes a workflow-command message: %, CR and LF.
func githubEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// githubEscapeProp escapes a workflow-command property value, which must also
// hide the , and : delimiters.
func githubEscapeProp(s string) string {
	s = githubEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
