package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Table I shape: FFT-2 (more frequency samples) must be closer to OPM than
// FFT-1 — the central accuracy ordering of the paper's §V-A.
func TestTableIShape(t *testing.T) {
	cfg := DefaultTableI()
	cfg.Repeat = 2
	tbl, res, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrFFT2 >= res.ErrFFT1 {
		t.Fatalf("FFT-2 error %.1f dB not below FFT-1 error %.1f dB", res.ErrFFT2, res.ErrFFT1)
	}
	if res.OPMTime <= 0 || res.FFT1Time <= 0 || res.FFT2Time <= 0 {
		t.Fatal("missing timings")
	}
	// FFT-2 does 100 complex factorizations vs FFT-1's 8: it must be slower.
	if res.FFT2Time <= res.FFT1Time {
		t.Fatalf("FFT-2 (%v) not slower than FFT-1 (%v)", res.FFT2Time, res.FFT1Time)
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Table I", "FFT-1", "FFT-2", "OPM", "dB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed table missing %q:\n%s", want, out)
		}
	}
}

// Table II shape: backward Euler must lose accuracy relative to the
// second-order methods at equal step, and must improve as its step shrinks —
// the ordering Table II demonstrates.
func TestTableIIShape(t *testing.T) {
	cfg := DefaultTableII()
	// Shrink for test runtime: smaller grid, shorter span.
	cfg.Grid.Rows, cfg.Grid.Cols, cfg.Grid.Layers = 6, 6, 2
	cfg.Grid.NumLoads = 5
	cfg.T = 5e-9
	cfg.BEulerSteps = []float64{10e-12, 5e-12, 2e-12}
	tbl, res, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NAStates >= res.MNAStates {
		t.Fatalf("NA states %d should be fewer than MNA states %d", res.NAStates, res.MNAStates)
	}
	// Rows: 3 b-Euler + Gear + trapezoidal.
	if len(res.Baselines) != 5 {
		t.Fatalf("baseline rows = %d", len(res.Baselines))
	}
	be10, be5, be2 := res.Baselines[0], res.Baselines[1], res.Baselines[2]
	gear, trap := res.Baselines[3], res.Baselines[4]
	// b-Euler improves monotonically with smaller steps.
	if !(be2.ErrDB < be5.ErrDB && be5.ErrDB < be10.ErrDB) {
		t.Fatalf("b-Euler errors not monotone: %g %g %g", be10.ErrDB, be5.ErrDB, be2.ErrDB)
	}
	// Second-order methods beat b-Euler at equal step.
	if !(gear.ErrDB < be10.ErrDB && trap.ErrDB < be10.ErrDB) {
		t.Fatalf("2nd-order methods (%g, %g dB) did not beat b-Euler (%g dB)", gear.ErrDB, trap.ErrDB, be10.ErrDB)
	}
	// Trapezoidal at matching step should agree with OPM closely; both are
	// second-order so the residual disagreement is O(h²) on the load rise
	// (~20 steps → ≈−45 dB here).
	if trap.ErrDB > -40 {
		t.Fatalf("trapezoidal vs OPM only %.1f dB — formulations disagree?", trap.ErrDB)
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("printed table missing title")
	}
}

func TestWaveformsRuns(t *testing.T) {
	cfg := DefaultTableI()
	tbl, err := Waveforms(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tbl.Rows))
	}
}

// Adaptive shape: at comparable accuracy the controller must use
// substantially fewer columns than the finest uniform grid.
func TestAdaptiveShape(t *testing.T) {
	tbl, err := Adaptive(AdaptiveConfig{Tols: []float64{1e-4}, T: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), "adaptive tol") {
		t.Fatal("adaptive row missing")
	}
}

func TestOpMatrixChecks(t *testing.T) {
	tbl, err := OpMatrix()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "1 -3 4.5 -5.5") {
		t.Fatalf("eq. (23) row missing:\n%s", out)
	}
}

// Bases shape: Legendre beats the piecewise-constant bases on the smooth
// input and loses on the switching input.
func TestBasesShape(t *testing.T) {
	tbl, err := Bases(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Row order: block-pulse, walsh, haar, legendre; columns: name, smooth, switching.
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	bpfSmooth := parse(tbl.Rows[0][1])
	legSmooth := parse(tbl.Rows[3][1])
	bpfSwitch := parse(tbl.Rows[0][2])
	legSwitch := parse(tbl.Rows[3][2])
	if legSmooth >= bpfSmooth {
		t.Fatalf("Legendre smooth err %g not below BPF %g", legSmooth, bpfSmooth)
	}
	if legSwitch <= bpfSwitch {
		t.Fatalf("Legendre switching err %g not above BPF %g (expected Gibbs)", legSwitch, bpfSwitch)
	}
}

func TestScalingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	tbl, err := Scaling(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtDur(500 * time.Nanosecond); !strings.Contains(got, "ns") {
		t.Fatalf("fmtDur ns: %q", got)
	}
	if got := fmtDur(5 * time.Microsecond); !strings.Contains(got, "µs") {
		t.Fatalf("fmtDur µs: %q", got)
	}
	if got := fmtDur(5 * time.Millisecond); !strings.Contains(got, "ms") {
		t.Fatalf("fmtDur ms: %q", got)
	}
	if got := fmtDur(2 * time.Second); !strings.Contains(got, "s") {
		t.Fatalf("fmtDur s: %q", got)
	}
	if got := fmtStep(10e-12); got != "10 ps" {
		t.Fatalf("fmtStep = %q", got)
	}
}

// MOR shape: error improves monotonically with ROM order and the smallest
// ROM is much faster than the full solve.
func TestMORShape(t *testing.T) {
	tbl, err := MOR(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var prev float64 = 1
	for _, row := range tbl.Rows[1:] {
		var db float64
		if _, err := fmt.Sscan(row[3], &db); err != nil {
			t.Fatalf("parse %q: %v", row[3], err)
		}
		if db >= prev {
			t.Fatalf("ROM error not improving: %v then %v", prev, db)
		}
		prev = db
	}
}

// FracFit shape: the native OPM row must beat every Oustaloup row on
// accuracy, and Oustaloup accuracy must improve (or at least not degrade)
// from the coarsest to the densest fit.
func TestFracFitShape(t *testing.T) {
	tbl, err := FracFit()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	opmErr := parse(tbl.Rows[0][4])
	coarsest := parse(tbl.Rows[1][4])
	densest := parse(tbl.Rows[len(tbl.Rows)-1][4])
	if opmErr >= densest {
		t.Fatalf("OPM err %g not below best Oustaloup err %g", opmErr, densest)
	}
	if densest > coarsest {
		t.Fatalf("denser fit got worse: %g vs %g", densest, coarsest)
	}
}

// WalshTrend shape: at every truncation level below full, the Walsh
// truncation must track the trend far better than the BPF truncation.
func TestWalshTrendShape(t *testing.T) {
	tbl, err := WalshTrend()
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	for _, row := range tbl.Rows[:len(tbl.Rows)-1] { // skip the k=m row
		w, b := parse(row[1]), parse(row[2])
		if w*5 > b {
			t.Fatalf("row %v: Walsh %g not ≪ BPF %g", row[0], w, b)
		}
	}
}
