package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/mat"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

// HistoryConfig parameterizes the history-engine ablation: the §V-A
// fractional line solved at increasing m with the three history
// implementations (serial reference, blocked single-worker engine, blocked
// parallel engine).
type HistoryConfig struct {
	Line netgen.FractionalLineConfig
	T    float64
	// Ms are the block-pulse counts to sweep; the O(nm²) history dominates
	// from m ≈ 512 up.
	Ms []int
	// Repeat re-runs each solve and keeps the minimum time.
	Repeat int
	// Workers for the parallel variant; 0 means runtime.GOMAXPROCS.
	Workers int
	// Mode selects the history engine for the blocked and parallel variants.
	// DefaultHistory pins core.HistoryExact so the ablation's bitwise
	// max|Δ| = 0 claim holds at every m; HistoryAuto would switch large
	// grids to the FFT tier (see the historyfft experiment for that sweep).
	Mode core.HistoryMode
}

// DefaultHistory sweeps the paper's fractional line to m = 4096.
func DefaultHistory() HistoryConfig {
	return HistoryConfig{
		Line:   netgen.DefaultFractionalLine(),
		T:      2.7e-9,
		Ms:     []int{512, 1024, 2048, 4096},
		Repeat: 3,
		Mode:   core.HistoryExact,
	}
}

// HistoryRow is one m-point of the sweep. MaxAbsDiff is the largest
// absolute difference between the parallel and serial coefficient matrices;
// the engine's ordered reduction makes it exactly zero.
type HistoryRow struct {
	M               int     `json:"m"`
	N               int     `json:"n"`
	SerialNS        int64   `json:"serial_ns"`
	BlockedNS       int64   `json:"blocked_ns"`
	ParallelNS      int64   `json:"parallel_ns"`
	SpeedupBlocked  float64 `json:"speedup_blocked"`
	SpeedupParallel float64 `json:"speedup_parallel"`
	MaxAbsDiff      float64 `json:"max_abs_diff"`
}

// HistoryReport is the machine-readable result written to
// BENCH_history.json by cmd/opm-bench.
type HistoryReport struct {
	Fixture    string       `json:"fixture"`
	Alpha      float64      `json:"alpha"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Rows       []HistoryRow `json:"rows"`
}

// WriteJSON writes the report to path.
func (r *HistoryReport) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// History runs the history-engine ablation on the fractional line: for each
// m it times Solve with the serial reference history, the blocked engine on
// one worker, and the blocked engine on the full worker pool, verifying the
// three coefficient matrices agree bitwise.
func History(cfg HistoryConfig) (*Table, *HistoryReport, error) {
	if cfg.Repeat < 1 {
		cfg.Repeat = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	drive := waveform.Pulse(0, 1e-3, 0.1e-9, 0.1e-9, 0.1e-9, 0.8e-9, 0)
	mna, err := netgen.FractionalLine(cfg.Line, drive, waveform.Zero())
	if err != nil {
		return nil, nil, err
	}
	rep := &HistoryReport{
		Fixture:    fmt.Sprintf("fractional line n=%d", mna.Sys.N()),
		Alpha:      cfg.Line.Order,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
	tbl := &Table{
		Title: fmt.Sprintf("History engine — fractional line (n=%d, α=%g, GOMAXPROCS=%d)",
			mna.Sys.N(), cfg.Line.Order, rep.GOMAXPROCS),
		Header: []string{"m", "serial", "blocked", "parallel", "speedup", "max |Δ|"},
	}
	for _, m := range cfg.Ms {
		var serialSol, parSol *core.Solution
		serial, err := minTime(cfg.Repeat, func() error {
			s, err := core.Solve(mna.Sys, mna.Inputs, m, cfg.T, core.Options{HistoryNaive: true})
			serialSol = s
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: serial history m=%d: %w", m, err)
		}
		blocked, err := minTime(cfg.Repeat, func() error {
			_, err := core.Solve(mna.Sys, mna.Inputs, m, cfg.T, core.Options{Workers: 1, HistoryMode: cfg.Mode})
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: blocked history m=%d: %w", m, err)
		}
		parallel, err := minTime(cfg.Repeat, func() error {
			s, err := core.Solve(mna.Sys, mna.Inputs, m, cfg.T, core.Options{Workers: workers, HistoryMode: cfg.Mode})
			parSol = s
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: parallel history m=%d: %w", m, err)
		}
		diff := maxAbsDiff(serialSol.Coefficients(), parSol.Coefficients())
		row := HistoryRow{
			M: m, N: mna.Sys.N(),
			SerialNS: serial.Nanoseconds(), BlockedNS: blocked.Nanoseconds(),
			ParallelNS:      parallel.Nanoseconds(),
			SpeedupBlocked:  float64(serial) / float64(blocked),
			SpeedupParallel: float64(serial) / float64(parallel),
			MaxAbsDiff:      diff,
		}
		rep.Rows = append(rep.Rows, row)
		tbl.AddRow(fmt.Sprintf("%d", m), fmtDur(serial), fmtDur(blocked), fmtDur(parallel),
			fmt.Sprintf("%.2fx", row.SpeedupParallel), fmt.Sprintf("%g", diff))
	}
	deltaNote := "parallel speedup needs GOMAXPROCS > 1; max |Δ| is 0 by the ordered reduction"
	if cfg.Mode == core.HistoryFFT {
		deltaNote = "parallel speedup needs GOMAXPROCS > 1; FFT mode matches the reference to roundoff, not bitwise"
	}
	tbl.Notes = append(tbl.Notes,
		"serial = reference column-by-column history; blocked = cache-tiled engine on 1 worker",
		deltaNote)
	return tbl, rep, nil
}

// minTime runs f repeat times and returns the fastest run (less noisy than
// the mean for ablation ratios).
func minTime(repeat int, f func() error) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < repeat; i++ {
		one, err := timeIt(1, f)
		if err != nil {
			return 0, err
		}
		if one < best {
			best = one
		}
	}
	return best, nil
}

// maxAbsDiff returns max_ij |a_ij − b_ij|.
func maxAbsDiff(a, b *mat.Dense) float64 {
	worst := 0.0
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	return worst
}
