package experiments

import (
	"fmt"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

// TableIIConfig parameterizes the §V-B experiment.
type TableIIConfig struct {
	Grid netgen.PowerGridConfig
	// T is the simulated span; H is the base step (paper: h = 10 ps).
	T, H float64
	// BEulerSteps lists the backward-Euler step sizes (paper: 10/5/1 ps).
	BEulerSteps []float64
}

// DefaultTableII returns the laptop-scale instance: the grid of
// DefaultPowerGrid over 10 ns with h = 10 ps.
func DefaultTableII() TableIIConfig {
	return TableIIConfig{
		Grid:        netgen.DefaultPowerGrid(),
		T:           10e-9,
		H:           10e-12,
		BEulerSteps: []float64{10e-12, 5e-12, 1e-12},
	}
}

// FullTableII returns the paper-scale instance (~75 K NA states / ~125 K MNA
// states). It needs several GB of memory and minutes of CPU; the bench
// harness gates it behind a flag.
func FullTableII() TableIIConfig {
	cfg := DefaultTableII()
	cfg.Grid.Rows, cfg.Grid.Cols, cfg.Grid.Layers = 158, 158, 3
	cfg.Grid.NumLoads = 256
	return cfg
}

// TableIIRow is one method's outcome.
type TableIIRow struct {
	Method  string
	Step    float64
	Runtime time.Duration
	// ErrDB is the eq. (30)-style error versus the OPM solution over the
	// observation nodes ("—" for OPM itself, matching the paper).
	ErrDB float64
}

// TableIIResult carries the structured outcome.
type TableIIResult struct {
	NAStates, MNAStates int
	OPM                 TableIIRow
	Baselines           []TableIIRow
}

// TableII runs the §V-B comparison: OPM on the second-order NA model versus
// backward Euler (several steps), Gear and trapezoidal on the first-order
// MNA model, reporting runtime and average relative error with OPM as the
// reference (the paper reports OPM's own error as "—").
func TableII(cfg TableIIConfig) (*Table, *TableIIResult, error) {
	grid, err := netgen.PowerGrid3D(cfg.Grid)
	if err != nil {
		return nil, nil, err
	}
	na, err := grid.Netlist.NA()
	if err != nil {
		return nil, nil, err
	}
	mna, err := grid.Netlist.MNA()
	if err != nil {
		return nil, nil, err
	}
	e, a, b, err := mna.DAE()
	if err != nil {
		return nil, nil, err
	}
	m := int(cfg.T/cfg.H + 0.5)
	if m < 2 {
		return nil, nil, fmt.Errorf("experiments: T/H = %d steps is too few", m)
	}

	// OPM on the second-order NA model.
	var opmSol *core.Solution
	opmTime, err := timeIt(1, func() error {
		s, err := core.Solve(na.Sys, na.Inputs, m, cfg.T, core.Options{})
		opmSol = s
		return err
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: OPM on NA model: %w", err)
	}
	// Observation grid: OPM interval midpoints; observation states: the
	// per-layer center nodes (node voltages share indices across NA/MNA).
	times := waveform.UniformTimes(m, cfg.T)
	obsStates := make([]int, len(grid.ObserveNodes))
	for i, nd := range grid.ObserveNodes {
		obsStates[i] = nd - 1
	}
	yOPM := sampleSolution(opmSol, obsStates, times)

	result := &TableIIResult{
		NAStates:  na.Sys.N(),
		MNAStates: mna.Sys.N(),
		OPM:       TableIIRow{Method: "OPM (NA 2nd-order)", Step: cfg.H, Runtime: opmTime},
	}
	runBaseline := func(name string, method transient.Method, h float64) error {
		var res *transient.Result
		dur, err := timeIt(1, func() error {
			r, err := transient.Simulate(e, a, b, mna.Inputs, cfg.T, h, method, transient.Options{})
			res = r
			return err
		})
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		y := make([][]float64, len(obsStates))
		for i, s := range obsStates {
			y[i] = res.SampleState(s, times)
		}
		db, err := waveform.RelErrDBVec(y, yOPM)
		if err != nil {
			return err
		}
		result.Baselines = append(result.Baselines, TableIIRow{Method: name, Step: h, Runtime: dur, ErrDB: db})
		return nil
	}
	for _, h := range cfg.BEulerSteps {
		if err := runBaseline("b-Euler (MNA DAE)", transient.BackwardEuler, h); err != nil {
			return nil, nil, err
		}
	}
	if err := runBaseline("Gear (MNA DAE)", transient.Gear2, cfg.H); err != nil {
		return nil, nil, err
	}
	if err := runBaseline("Trapezoidal (MNA DAE)", transient.Trapezoidal, cfg.H); err != nil {
		return nil, nil, err
	}

	tbl := &Table{
		Title: fmt.Sprintf("Table II — 3-D power grid (NA n=%d, MNA n=%d, T=%.3gns)",
			result.NAStates, result.MNAStates, cfg.T*1e9),
		Header: []string{"Method", "Step", "Runtime", "RelErr vs OPM", "Paper runtime", "Paper err"},
	}
	paperRef := map[string][2]string{
		key("b-Euler (MNA DAE)", 10e-12):     {"334.7 s", "-91 dB"},
		key("b-Euler (MNA DAE)", 5e-12):      {"691.7 s", "-92 dB"},
		key("b-Euler (MNA DAE)", 1e-12):      {"3198 s", "-127 dB"},
		key("Gear (MNA DAE)", 10e-12):        {"359.1 s", "-134 dB"},
		key("Trapezoidal (MNA DAE)", 10e-12): {"347.2 s", "-137 dB"},
		key("OPM (NA 2nd-order)", 10e-12):    {"314.6 s", "—"},
	}
	for _, r := range result.Baselines {
		ref := paperRef[key(r.Method, r.Step)]
		tbl.AddRow(r.Method, fmtStep(r.Step), fmtDur(r.Runtime), fmt.Sprintf("%.1f dB", r.ErrDB), ref[0], ref[1])
	}
	refOPM := paperRef[key(result.OPM.Method, cfg.H)]
	tbl.AddRow(result.OPM.Method, fmtStep(cfg.H), fmtDur(opmTime), "—", refOPM[0], refOPM[1])
	tbl.Notes = append(tbl.Notes,
		"paper shape: b-Euler needs h→1ps to approach the 2nd-order methods; Gear/trapezoidal/OPM agree closely at h=10ps",
		"paper scale is NA 75K/MNA 110K; use -full to approach it")
	return tbl, result, nil
}

func key(method string, h float64) string { return fmt.Sprintf("%s@%g", method, h) }

func fmtStep(h float64) string {
	return fmt.Sprintf("%g ps", h*1e12)
}

func sampleSolution(sol *core.Solution, states []int, times []float64) [][]float64 {
	out := make([][]float64, len(states))
	for i, s := range states {
		out[i] = make([]float64, len(times))
		for k, t := range times {
			out[i][k] = sol.StateAt(s, t)
		}
	}
	return out
}
