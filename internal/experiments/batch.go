package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

// BatchConfig parameterizes the batched-solve ablation: K amplitude-scaled
// input corners of the Table II power grid solved first sequentially (K Solve
// calls sharing a factorization cache) and then as one SolveBatch call
// (shared factorization + blocked multi-RHS panel solves).
type BatchConfig struct {
	Grid netgen.PowerGridConfig
	// T and H define the block-pulse grid exactly as in Table II.
	T, H float64
	// Ks are the batch sizes to sweep.
	Ks []int
	// Repeat re-runs each leg and keeps the minimum time.
	Repeat int
}

// DefaultBatch sweeps the laptop-scale Table II grid across the batch sizes
// the acceptance criteria name.
func DefaultBatch() BatchConfig {
	return BatchConfig{
		Grid:   netgen.DefaultPowerGrid(),
		T:      10e-9,
		H:      10e-12,
		Ks:     []int{8, 32, 128},
		Repeat: 1,
	}
}

// BatchRow is one K-point of the sweep. Bitwise reports whether every batch
// waveform matched its sequential counterpart bit for bit — the engine's
// core contract, so anything but true fails the experiment.
type BatchRow struct {
	K            int     `json:"k"`
	N            int     `json:"n"`
	M            int     `json:"m"`
	SequentialNS int64   `json:"sequential_ns"`
	BatchNS      int64   `json:"batch_ns"`
	Speedup      float64 `json:"speedup"` // sequential / batch
	// Factorization-cache counters of the sequential leg: K solves of one
	// pencil through a shared cache give 1 miss and K−1 hits.
	SeqCacheHits   int  `json:"seq_cache_hits"`
	SeqCacheMisses int  `json:"seq_cache_misses"`
	Bitwise        bool `json:"bitwise"`
}

// BatchReport is the machine-readable result written to BENCH_batch.json by
// cmd/opm-bench.
type BatchReport struct {
	Fixture    string     `json:"fixture"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	PanelWidth int        `json:"panel_width"`
	Rows       []BatchRow `json:"rows"`
}

// WriteJSON writes the report to path.
func (r *BatchReport) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// hashSolution folds a solution's coefficient bits into an FNV-1a hash, so
// the sequential leg's K solutions can be compared against the batch leg
// without holding both in memory.
func hashSolution(sol *core.Solution) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range sol.Coefficients().Data() {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// batchScenarios builds K amplitude-scaled corners of the grid's inputs,
// the workload shape SolveBatch exists for: one pencil, K drive corners.
func batchScenarios(inputs []waveform.Signal, k int) []core.Scenario {
	scs := make([]core.Scenario, k)
	for s := 0; s < k; s++ {
		scale := 0.5
		if k > 1 {
			scale = 0.5 + float64(s)/float64(k-1)
		}
		u := make([]waveform.Signal, len(inputs))
		for i, base := range inputs {
			base, scale := base, scale
			u[i] = func(t float64) float64 { return scale * base(t) }
		}
		scs[s] = core.Scenario{U: u}
	}
	return scs
}

// Batch runs the batched-solve ablation: for each K it times K sequential
// Solve calls sharing one factorization cache against one SolveBatch call,
// and verifies the two legs agree bit for bit.
func Batch(cfg BatchConfig) (*Table, *BatchReport, error) {
	if cfg.Repeat < 1 {
		cfg.Repeat = 1
	}
	grid, err := netgen.PowerGrid3D(cfg.Grid)
	if err != nil {
		return nil, nil, err
	}
	na, err := grid.Netlist.NA()
	if err != nil {
		return nil, nil, err
	}
	m := int(cfg.T/cfg.H + 0.5)
	if m < 2 {
		return nil, nil, fmt.Errorf("experiments: T/H = %d steps is too few", m)
	}
	rep := &BatchReport{
		Fixture:    fmt.Sprintf("power grid NA n=%d", na.Sys.N()),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PanelWidth: 32,
	}
	tbl := &Table{
		Title: fmt.Sprintf("Batched multi-scenario solve — power grid (n=%d, m=%d, GOMAXPROCS=%d)",
			na.Sys.N(), m, rep.GOMAXPROCS),
		Header: []string{"K", "sequential", "batch", "speedup", "cache h/m", "bitwise"},
	}
	for _, k := range cfg.Ks {
		scs := batchScenarios(na.Inputs, k)

		// Sequential leg: K independent Solve calls through one shared
		// factorization cache — the pre-batch fast path, and the source of
		// the 1-miss/K−1-hit accounting the row records.
		var seqHashes []uint64
		var seqHits, seqMisses int
		seqTime, err := minTime(cfg.Repeat, func() error {
			cache := core.NewFactorCache(0)
			hashes := make([]uint64, k)
			for s, sc := range scs {
				sol, err := core.Solve(na.Sys, sc.U, m, cfg.T, core.Options{FactorCache: cache})
				if err != nil {
					return fmt.Errorf("sequential scenario %d: %w", s, err)
				}
				hashes[s] = hashSolution(sol)
			}
			seqHashes = hashes
			seqHits, _, seqMisses = cache.Stats()
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: batch K=%d: %w", k, err)
		}

		var batchHashes []uint64
		batchTime, err := minTime(cfg.Repeat, func() error {
			sols, err := core.SolveBatch(na.Sys, scs, m, cfg.T, core.BatchOptions{
				Options: core.Options{FactorCache: core.NewFactorCache(0)},
			})
			if err != nil {
				return err
			}
			hashes := make([]uint64, k)
			for s, sol := range sols {
				hashes[s] = hashSolution(sol)
			}
			batchHashes = hashes
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: batch K=%d: %w", k, err)
		}

		bitwise := true
		for s := range seqHashes {
			if seqHashes[s] != batchHashes[s] {
				bitwise = false
			}
		}
		row := BatchRow{
			K: k, N: na.Sys.N(), M: m,
			SequentialNS: seqTime.Nanoseconds(),
			BatchNS:      batchTime.Nanoseconds(),
			Speedup:      float64(seqTime) / float64(batchTime),
			SeqCacheHits: seqHits, SeqCacheMisses: seqMisses,
			Bitwise: bitwise,
		}
		rep.Rows = append(rep.Rows, row)
		tbl.AddRow(
			fmt.Sprintf("%d", k),
			seqTime.Round(time.Microsecond).String(),
			batchTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d/%d", seqHits, seqMisses),
			fmt.Sprintf("%v", bitwise),
		)
		if !bitwise {
			return nil, nil, fmt.Errorf("experiments: batch K=%d diverged from the sequential solves", k)
		}
	}
	return tbl, rep, nil
}
