package experiments

import (
	"math"
	"testing"

	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

func cornerTestConfig(t *testing.T, limit int) CornerConfig {
	t.Helper()
	lad, _, err := netgen.RCLadderNetlist(8, 100, 1e-9, waveform.Step(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	model, err := lad.MNA()
	if err != nil {
		t.Fatal(err)
	}
	return CornerConfig{
		Netlist: lad, Model: model,
		Elements:        netgen.PerturbableElements(lad, 4),
		Tol:             0.1,
		M:               32,
		T:               5e-7,
		UpdateRankLimit: limit,
	}
}

func TestCornerSweepEnumeratesAllCorners(t *testing.T) {
	cfg := cornerTestConfig(t, 64)
	res, err := CornerSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	L := len(cfg.Elements)
	want := netgen.CornerCount(L)
	if len(res.Corners) != want {
		t.Fatalf("corners = %d, want 2·%d+3 = %d", len(res.Corners), L, want)
	}
	if res.Corners[0].Label != "nominal" || res.Corners[0].MaxDeviation != 0 {
		t.Fatalf("corner 0 = %+v, want zero-deviation nominal", res.Corners[0])
	}
	// Per-element corners alternate +/− per element, then the global pair.
	for e := 0; e < L; e++ {
		if got := res.Corners[1+2*e].Label; got != cfg.Elements[e]+"+" {
			t.Fatalf("corner %d label %q, want %q", 1+2*e, got, cfg.Elements[e]+"+")
		}
		if got := res.Corners[2+2*e].Label; got != cfg.Elements[e]+"-" {
			t.Fatalf("corner %d label %q, want %q", 2+2*e, got, cfg.Elements[e]+"-")
		}
	}
	if res.Corners[want-2].Label != "all+" || res.Corners[want-1].Label != "all-" {
		t.Fatalf("global corners labelled %q, %q", res.Corners[want-2].Label, res.Corners[want-1].Label)
	}
	// Every non-nominal corner of an RC ladder with ±10% must actually move
	// the waveform, and Worst must point at the maximum.
	for c := 1; c < want; c++ {
		if res.Corners[c].MaxDeviation <= 0 {
			t.Fatalf("corner %q shows zero deviation", res.Corners[c].Label)
		}
		if res.Corners[c].MaxDeviation > res.Corners[res.Worst].MaxDeviation {
			t.Fatalf("Worst = %d but corner %d deviates more", res.Worst, c)
		}
	}
	if res.Worst == 0 {
		t.Fatal("Worst points at the nominal corner")
	}
	// Per-element corners are rank-1 deltas: with a generous rank limit all of
	// them (plus the rank-L global corners under limit ≥ L) ride the SMW path.
	if res.PencilUpdates != want-1 || res.PencilRefactors != 0 {
		t.Fatalf("dispatch: %d updates, %d refactors, want %d/0", res.PencilUpdates, res.PencilRefactors, want-1)
	}
	if res.Envelope == nil || res.Envelope.Count() != int64(want) {
		t.Fatalf("envelope folded %d corners, want %d", res.Envelope.Count(), want)
	}
}

// The SMW update path and forced refactorization must tell the same story.
func TestCornerSweepPathsAgree(t *testing.T) {
	smw, err := CornerSweep(cornerTestConfig(t, 64))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CornerSweep(cornerTestConfig(t, -1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.PencilUpdates != 0 || ref.PencilRefactors != len(ref.Corners)-1 {
		t.Fatalf("refactor leg dispatch: %d updates, %d refactors", ref.PencilUpdates, ref.PencilRefactors)
	}
	if len(smw.Corners) != len(ref.Corners) {
		t.Fatalf("corner counts differ: %d vs %d", len(smw.Corners), len(ref.Corners))
	}
	for c := range smw.Corners {
		a, b := smw.Corners[c].MaxDeviation, ref.Corners[c].MaxDeviation
		if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
			t.Fatalf("corner %q: SMW deviation %g, refactor %g", smw.Corners[c].Label, a, b)
		}
	}
	if smw.Worst != ref.Worst {
		t.Fatalf("legs disagree on the worst corner: %d vs %d", smw.Worst, ref.Worst)
	}
}

// Determinism: corner sweeps are sampling-free, so two runs must agree
// bitwise, not just statistically.
func TestCornerSweepBitwiseRepeatable(t *testing.T) {
	a, err := CornerSweep(cornerTestConfig(t, 64))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CornerSweep(cornerTestConfig(t, 64))
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Corners {
		if math.Float64bits(a.Corners[c].MaxDeviation) != math.Float64bits(b.Corners[c].MaxDeviation) {
			t.Fatalf("corner %q deviation differs across runs", a.Corners[c].Label)
		}
	}
}

func TestCornerSweepValidation(t *testing.T) {
	if _, err := CornerSweep(CornerConfig{}); err == nil {
		t.Fatal("accepted an empty config")
	}
	cfg := cornerTestConfig(t, 0)
	cfg.Tol = 1.5
	if _, err := CornerSweep(cfg); err == nil {
		t.Fatal("accepted tol outside [0,1)")
	}
}

func TestCornerTableRenders(t *testing.T) {
	res, err := CornerSweep(cornerTestConfig(t, 64))
	if err != nil {
		t.Fatal(err)
	}
	tbl := CornerTable(res)
	if len(tbl.Rows) != len(res.Corners)-1 {
		t.Fatalf("table rows = %d, want %d (nominal excluded)", len(tbl.Rows), len(res.Corners)-1)
	}
}
