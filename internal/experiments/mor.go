package experiments

import (
	"fmt"

	"opmsim/internal/core"
	"opmsim/internal/mor"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

// MOR runs the model-order-reduction ablation: the power-grid MNA model is
// reduced with PRIMA-style block Arnoldi at several orders, each ROM is
// simulated by OPM, and the droop-waveform error and end-to-end runtime are
// compared against the full model. This extends the paper (its systems are
// exactly the kind MOR front-ends feed) rather than reproducing a figure.
// seed fixes the generated grid's load placement so runs are reproducible.
func MOR(seed int64) (*Table, error) {
	cfg := netgen.DefaultPowerGrid()
	cfg.Rows, cfg.Cols, cfg.Layers = 12, 12, 2
	cfg.NumLoads = 12
	cfg.Seed = seed
	grid, err := netgen.PowerGrid3D(cfg)
	if err != nil {
		return nil, err
	}
	mna, err := grid.Netlist.MNA()
	if err != nil {
		return nil, err
	}
	e, a, b, err := mna.DAE()
	if err != nil {
		return nil, err
	}
	obs, err := mna.VoltageSelector(grid.ObserveNodes...)
	if err != nil {
		return nil, err
	}
	fullSys, err := core.NewDAE(e, a, b)
	if err != nil {
		return nil, err
	}
	fullSys, err = fullSys.WithOutput(obs)
	if err != nil {
		return nil, err
	}
	T, m := 10e-9, 1000
	times := waveform.UniformTimes(200, T)

	var full *core.Solution
	fullTime, err := timeIt(1, func() error {
		s, err := core.Solve(fullSys, mna.Inputs, m, T, core.Options{})
		full = s
		return err
	})
	if err != nil {
		return nil, err
	}
	yFull := full.SampleOutputs(times)

	tbl := &Table{
		Title:  fmt.Sprintf("MOR ablation — power grid MNA n=%d reduced by block Arnoldi, then OPM", fullSys.N()),
		Header: []string{"Model", "States", "Reduce+solve time", "RelErr vs full (dB)"},
	}
	tbl.AddRow("full OPM", fmt.Sprintf("%d", fullSys.N()), fmtDur(fullTime), "—")
	for _, q := range []int{8, 16, 32, 64} {
		var red *core.Solution
		dur, err := timeIt(1, func() error {
			rom, err := mor.Reduce(e, a, b, q, 1e9)
			if err != nil {
				return err
			}
			cHat, err := rom.ProjectOutput(obs)
			if err != nil {
				return err
			}
			redSys, err := rom.System(cHat)
			if err != nil {
				return err
			}
			s, err := core.Solve(redSys, mna.Inputs, m, T, core.Options{})
			red = s
			return err
		})
		if err != nil {
			return nil, err
		}
		db, err := waveform.RelErrDBVec(red.SampleOutputs(times), yFull)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("ROM q=%d", q), fmt.Sprintf("%d", q), fmtDur(dur), fmt.Sprintf("%.1f", db))
	}
	tbl.Notes = append(tbl.Notes,
		"expected: error drops rapidly with q; solve time is dominated by reduction at small n but scales with q·m afterwards")
	return tbl, nil
}
