package experiments

import (
	"fmt"
	"math"

	"opmsim/internal/basis"
	"opmsim/internal/core"
	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

// WalshTrend reproduces the paper's §I remark that "if we are only
// interested in the overall trend of the response waveforms and do not care
// the details in a local time interval, Walsh function is a better choice":
// solve a switching-driven RC system in the Walsh basis, keep only the first
// k low-sequency coefficients, and measure how well the truncation tracks
// the moving-average trend versus how badly a BPF truncation (which is
// local, not spectral) does with the same budget.
func WalshTrend() (*Table, error) {
	const (
		m = 64
		T = 4.0
	)
	e := mat.NewDenseFrom(1, 1, []float64{1})
	a := mat.NewDenseFrom(1, 1, []float64{-1})
	b := mat.NewDenseFrom(1, 1, []float64{1})
	// A fast square-wave drive rides on a slow ramp: the "trend" is the
	// ramp response, the "detail" is the switching ripple.
	fast := waveform.Pulse(0, 1, 0, 1e-3, 1e-3, T/16, T/8)
	u := []waveform.Signal{func(t float64) float64 { return 0.5*fast(t) + t/T }}

	wb, err := basis.NewWalsh(m, T)
	if err != nil {
		return nil, err
	}
	xw, err := core.SolveGeneric(e, a, b, u, wb)
	if err != nil {
		return nil, err
	}
	bb, err := basis.NewBPF(m, T)
	if err != nil {
		return nil, err
	}
	xb, err := core.SolveGeneric(e, a, b, u, bb)
	if err != nil {
		return nil, err
	}

	// Trend reference: centered moving average of the full solution over
	// one switching period.
	probe := waveform.UniformTimes(512, T*0.999)
	full := func(t float64) float64 { return wb.Reconstruct(xw.Row(0), t) }
	win := T / 8
	trend := make([]float64, len(probe))
	for i, t := range probe {
		lo, hi := t-win/2, t+win/2
		if lo < 0 {
			lo, hi = 0, win
		}
		if hi > T {
			lo, hi = T-win, T
		}
		const steps = 64
		s := 0.0
		for k := 0; k < steps; k++ {
			s += full(lo + (hi-lo)*(float64(k)+0.5)/steps)
		}
		trend[i] = s / steps
	}

	rms := func(at func(float64) float64) float64 {
		s := 0.0
		for i, t := range probe {
			d := at(t) - trend[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(probe)))
	}

	tbl := &Table{
		Title:  "Walsh trend extraction (§I) — keep k low-sequency coefficients of a switching response",
		Header: []string{"Coefficients kept", "Walsh trunc RMS vs trend", "BPF trunc RMS vs trend"},
	}
	for _, k := range []int{4, 8, 16, 64} {
		cw := truncate(xw.Row(0), k)
		cb := truncate(xb.Row(0), k)
		tbl.AddRow(fmt.Sprintf("k=%d of %d", k, m),
			fmt.Sprintf("%.3e", rms(func(t float64) float64 { return wb.Reconstruct(cw, t) })),
			fmt.Sprintf("%.3e", rms(func(t float64) float64 { return bb.Reconstruct(cb, t) })))
	}
	tbl.Notes = append(tbl.Notes,
		"Walsh coefficients are ordered low→high sequency, so truncation keeps the global trend;",
		"BPF coefficients are local in time, so the same truncation just erases the end of the record")
	return tbl, nil
}

func truncate(coef []float64, k int) []float64 {
	out := make([]float64, len(coef))
	copy(out[:k], coef[:k])
	return out
}
