package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/sparse"
)

// The large-grid scaling benchmark behind BENCH_scale.json: for power grids
// of growing node count (up to n = 10⁵ and beyond), time the leading-pencil
// factorization through the scalar Gilbert–Peierls sparse LU versus the
// supernodal/domain-decomposed BBD tier, verify the two solutions agree, and
// report the speedup. The committed smoke baseline (BENCH_scale_smoke.json)
// plus CompareScaleReports form the CI regression guard: speedup ratios are
// machine-portable where absolute times are not, so the guard compares
// ratios.

// ScaleConfig parameterizes the sweep.
type ScaleConfig struct {
	// Sizes are the approximate grid node counts to sweep (netgen.PowerGridN).
	Sizes []int
	// M and T fix the BPF grid whose leading pencil is factored (only
	// h = T/M enters the pencil).
	M int
	T float64
	// Workers is handed to the BBD tier; results are bitwise-identical for
	// every value, so it only affects wall-clock on multi-core hosts.
	Workers int
	// Solves is the number of single-vector solves timed per leg after the
	// factorization (default 8).
	Solves int
}

// DefaultScale covers the acceptance sweep: 10³, 10⁴, 10⁵ nodes.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		Sizes: []int{1000, 10000, 100000},
		M:     64,
		T:     10e-9,
	}
}

// SmokeScale is the CI-sized instance: one mid-size grid, bounded to well
// under a minute on a single core.
func SmokeScale() ScaleConfig {
	return ScaleConfig{Sizes: []int{6000}, M: 64, T: 10e-9}
}

// ScaleRow is one grid size's outcome.
type ScaleRow struct {
	// N is the requested node count; States and NNZ describe the assembled
	// NA leading pencil.
	N      int `json:"n"`
	States int `json:"states"`
	NNZ    int `json:"nnz"`
	// Scalar leg: Gilbert–Peierls sparse LU (RCM + threshold pivoting).
	ScalarFactorNS int64 `json:"scalar_factor_ns"`
	ScalarSolveNS  int64 `json:"scalar_solve_ns"`
	ScalarFillNNZ  int   `json:"scalar_fill_nnz"`
	// BBD leg: nested dissection + supernodal domain factors + dense Schur.
	BBDFactorNS int64 `json:"bbd_factor_ns"`
	BBDSolveNS  int64 `json:"bbd_solve_ns"`
	BBDFillNNZ  int   `json:"bbd_fill_nnz"`
	Parts       int   `json:"parts"`
	IfaceN      int   `json:"iface_n"`
	// FactorSpeedup = scalar factor time / BBD factor time; SolveSpeedup
	// likewise for the per-vector solves.
	FactorSpeedup float64 `json:"factor_speedup"`
	SolveSpeedup  float64 `json:"solve_speedup"`
	// MaxRelDiff is the worst relative component difference between the two
	// legs' solutions of the same right-hand side.
	MaxRelDiff float64 `json:"max_rel_diff"`
}

// ScaleReport is the machine-readable result written to BENCH_scale.json.
type ScaleReport struct {
	GOMAXPROCS int        `json:"gomaxprocs"`
	Workers    int        `json:"workers"`
	Rows       []ScaleRow `json:"rows"`
	Notes      []string   `json:"notes"`
}

// WriteJSON writes the report to path.
func (r *ScaleReport) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadScaleReport loads a report written by WriteJSON.
func ReadScaleReport(path string) (*ScaleReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ScaleReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("experiments: scale report %s: %w", path, err)
	}
	return &r, nil
}

// scaleRHS builds the deterministic right-hand side both legs solve: smooth,
// dense, and size-independent in character.
func scaleRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + math.Sin(float64(i)*0.37)
	}
	return b
}

// ScaleBench runs the sweep.
func ScaleBench(cfg ScaleConfig) (*Table, *ScaleReport, error) {
	if len(cfg.Sizes) == 0 {
		return nil, nil, fmt.Errorf("experiments: scale bench needs at least one size")
	}
	if cfg.Solves <= 0 {
		cfg.Solves = 8
	}
	rep := &ScaleReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: cfg.Workers}
	tbl := &Table{
		Title:  "Grid scaling: scalar Gilbert–Peierls LU vs supernodal BBD factorization",
		Header: []string{"n(req)", "states", "nnz", "scalar factor", "BBD factor", "speedup", "parts", "iface", "solve speedup", "rel diff"},
	}
	for _, size := range cfg.Sizes {
		grid, err := netgen.PowerGrid3D(netgen.PowerGridN(size))
		if err != nil {
			return nil, nil, err
		}
		na, err := grid.Netlist.NA()
		if err != nil {
			return nil, nil, err
		}
		pencil, _, err := core.LeadingPencil(na.Sys, cfg.M, cfg.T)
		if err != nil {
			return nil, nil, err
		}
		n := pencil.R
		row := ScaleRow{N: size, States: n, NNZ: pencil.NNZ()}

		var sf *sparse.Factorization
		dur, err := timeIt(1, func() error {
			f, err := sparse.Factor(pencil, sparse.Options{})
			sf = f
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: scale n=%d: scalar factor: %w", size, err)
		}
		row.ScalarFactorNS = dur.Nanoseconds()
		row.ScalarFillNNZ = sf.NNZFactors()

		var bf *sparse.BBD
		dur, err = timeIt(1, func() error {
			f, err := sparse.FactorBBD(pencil, sparse.BBDOptions{Workers: cfg.Workers})
			bf = f
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: scale n=%d: BBD factor: %w", size, err)
		}
		row.BBDFactorNS = dur.Nanoseconds()
		row.BBDFillNNZ = bf.NNZFactors()
		row.Parts = bf.Parts()
		row.IfaceN = bf.IfaceN()

		b := scaleRHS(n)
		//lint:ignore allocsite one solution vector per sweep size, not a per-solve path
		xs := make([]float64, n)
		//lint:ignore allocsite one solution vector per sweep size, not a per-solve path
		xb := make([]float64, n)
		dur, err = timeIt(cfg.Solves, func() error { return sf.SolveInto(xs, b) })
		if err != nil {
			return nil, nil, err
		}
		row.ScalarSolveNS = dur.Nanoseconds() / int64(cfg.Solves)
		dur, err = timeIt(cfg.Solves, func() error { return bf.SolveInto(xb, b) })
		if err != nil {
			return nil, nil, err
		}
		row.BBDSolveNS = dur.Nanoseconds() / int64(cfg.Solves)

		scale := 0.0
		for _, v := range xs {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range xs {
			if d := math.Abs(xs[i]-xb[i]) / (1 + scale); d > row.MaxRelDiff {
				row.MaxRelDiff = d
			}
		}
		if row.MaxRelDiff > 1e-8 {
			return nil, nil, fmt.Errorf("experiments: scale n=%d: BBD and scalar solutions disagree (rel diff %.3g)", size, row.MaxRelDiff)
		}
		row.FactorSpeedup = float64(row.ScalarFactorNS) / float64(row.BBDFactorNS)
		row.SolveSpeedup = float64(row.ScalarSolveNS) / float64(row.BBDSolveNS)
		rep.Rows = append(rep.Rows, row)
		//lint:ignore allocsite results-table rendering, one row per sweep size, not a per-scenario path
		tbl.AddRow(fmt.Sprint(size), fmt.Sprint(n), fmt.Sprint(row.NNZ),
			fmtDur(time.Duration(row.ScalarFactorNS)), fmtDur(time.Duration(row.BBDFactorNS)),
			fmt.Sprintf("%.2fx", row.FactorSpeedup),
			fmt.Sprint(row.Parts), fmt.Sprint(row.IfaceN),
			fmt.Sprintf("%.2fx", row.SolveSpeedup),
			fmt.Sprintf("%.1e", row.MaxRelDiff))
	}
	rep.Notes = append(rep.Notes,
		"scalar leg: Gilbert–Peierls sparse LU with RCM pre-ordering; BBD leg: nested-dissection domain decomposition with supernodal blocked domain factors and a dense Schur interface tier",
		"both legs solve the same deterministic right-hand side; rel diff is the worst relative component difference",
		"speedups are wall-clock on this host; the CI guard compares speedup ratios against the committed smoke baseline, which transfers across machines")
	tbl.Notes = append(tbl.Notes, "factorization speedup = scalar / BBD wall-clock; solutions cross-checked to 1e-8 relative")
	return tbl, rep, nil
}

// CompareScaleReports is the bench-regression guard: every baseline size
// present in the current report must retain at least (1 − tol) of the
// baseline's factorization speedup. With tol = 0.25 a >25 % regression of
// the supernodal tier's advantage fails the comparison. Sizes missing from
// either report are ignored (the smoke run covers a subset of the
// acceptance sweep).
func CompareScaleReports(current, baseline *ScaleReport, tol float64) error {
	if tol <= 0 {
		tol = 0.25
	}
	byN := map[int]ScaleRow{}
	for _, r := range current.Rows {
		byN[r.N] = r
	}
	matched := 0
	for _, base := range baseline.Rows {
		cur, ok := byN[base.N]
		if !ok {
			continue
		}
		matched++
		floor := base.FactorSpeedup * (1 - tol)
		if cur.FactorSpeedup < floor {
			return fmt.Errorf("experiments: scale regression at n=%d: factor speedup %.2fx below %.2fx (baseline %.2fx − %.0f%%)",
				base.N, cur.FactorSpeedup, floor, base.FactorSpeedup, tol*100)
		}
	}
	if matched == 0 {
		return fmt.Errorf("experiments: scale guard matched no sizes between current %v and baseline %v",
			sizesOf(current), sizesOf(baseline))
	}
	return nil
}

func sizesOf(r *ScaleReport) []int {
	var s []int
	for _, row := range r.Rows {
		s = append(s, row.N)
	}
	return s
}
