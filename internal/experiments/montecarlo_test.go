package experiments

import (
	"math"
	"testing"

	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

func mcTestConfig(t *testing.T, n int, limit int) MonteCarloConfig {
	t.Helper()
	lad, _, err := netgen.RCLadderNetlist(12, 100, 1e-9, waveform.Step(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	model, err := lad.MNA()
	if err != nil {
		t.Fatal(err)
	}
	return MonteCarloConfig{
		Netlist: lad, Model: model,
		N: n, Tol: 0.1, Seed: 42,
		Elements: netgen.PerturbableElements(lad, 6),
		M:        32, T: 5e-7,
		Chunk:           16,
		UpdateRankLimit: limit,
	}
}

// The sweep's determinism contract: the same seed produces
// Float64bits-identical envelopes — across runs and across chunk sizes
// (chunking only re-partitions the scenario order, which is preserved).
func TestMonteCarloSweepSeededDeterminism(t *testing.T) {
	base := mcTestConfig(t, 50, 64)
	a, err := MonteCarloSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	chunked := base
	chunked.Chunk = 7
	c, err := MonteCarloSweep(chunked)
	if err != nil {
		t.Fatal(err)
	}
	envs := map[string]*waveform.Envelope{"rerun": b.Envelope, "rechunked": c.Envelope}
	n, m := a.Envelope.States(), a.Envelope.Columns()
	for name, env := range envs {
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				for stat, pair := range map[string][2]float64{
					"min":  {a.Envelope.Min(i, j), env.Min(i, j)},
					"max":  {a.Envelope.Max(i, j), env.Max(i, j)},
					"mean": {a.Envelope.Mean(i, j), env.Mean(i, j)},
				} {
					if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
						t.Fatalf("%s: %s(%d,%d) differs: %.17g vs %.17g", name, stat, i, j, pair[0], pair[1])
					}
				}
			}
		}
	}
	// A different seed must actually change the envelope.
	shifted := base
	shifted.Seed = 43
	d, err := MonteCarloSweep(shifted)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < n && same; i++ {
		for j := 0; j < m && same; j++ {
			if math.Float64bits(a.Envelope.Mean(i, j)) != math.Float64bits(d.Envelope.Mean(i, j)) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seed produced an identical envelope")
	}
}

// The two crossover sides agree on the envelope (≤1e-9 here; the per-column
// SMW contract is 1e-12, envelope folding amplifies nothing) and report
// their dispatch honestly.
func TestMonteCarloSweepPathsAgree(t *testing.T) {
	const N = 40
	smw, err := MonteCarloSweep(mcTestConfig(t, N, 64))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MonteCarloSweep(mcTestConfig(t, N, -1))
	if err != nil {
		t.Fatal(err)
	}
	if got := envelopeRelErr(smw.Envelope, ref.Envelope); got > 1e-9 {
		t.Fatalf("envelope deviation %.3g between SMW and refactor legs", got)
	}
	if smw.PencilUpdates != N-1 || smw.PencilRefactors != 0 {
		t.Fatalf("SMW leg dispatch: updates=%d refactors=%d, want %d/0", smw.PencilUpdates, smw.PencilRefactors, N-1)
	}
	if ref.PencilUpdates != 0 || ref.PencilRefactors != N-1 {
		t.Fatalf("refactor leg dispatch: updates=%d refactors=%d, want 0/%d", ref.PencilUpdates, ref.PencilRefactors, N-1)
	}
	if smw.Envelope.Count() != N || ref.Envelope.Count() != N {
		t.Fatalf("envelope counts %d/%d, want %d", smw.Envelope.Count(), ref.Envelope.Count(), N)
	}
}

// Tiny end-to-end run of the benchmark harness itself (CI-scale Ns).
func TestMonteCarloBenchSmoke(t *testing.T) {
	cfg := DefaultMonteCarloBench()
	cfg.Ns = []int{16, 64}
	cfg.LadderSections = 10
	cfg.Grid.Layers, cfg.Grid.Rows, cfg.Grid.Cols = 1, 4, 4
	cfg.M = 16
	cfg.MeasureCapSMW = 32
	cfg.MeasureCapRefactor = 32
	tbl, rep, err := MonteCarloBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 fixtures × 2 Ns)", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Speedup <= 0 {
			t.Fatalf("row %+v: non-positive speedup", row)
		}
		if row.N == 64 && row.RefactorMeasuredN != 32 {
			t.Fatalf("row %+v: refactor cap not applied", row)
		}
	}
	for name, v := range rep.MaxRelErr {
		if v > 1e-9 {
			t.Fatalf("%s: envelope deviation %.3g between legs", name, v)
		}
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
}
