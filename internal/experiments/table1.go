package experiments

import (
	"fmt"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/freqdom"
	"opmsim/internal/mat"
	"opmsim/internal/netgen"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// TableIConfig parameterizes the §V-A experiment.
type TableIConfig struct {
	// Line is the fractional transmission-line model.
	Line netgen.FractionalLineConfig
	// T is the simulation span (paper: 2.7 ns).
	T float64
	// M is the OPM step count (paper: 8).
	M int
	// FFT1 and FFT2 are the frequency sample counts (paper: 8 and 100).
	FFT1, FFT2 int
	// Repeat re-runs each solver to stabilize the timing measurement.
	Repeat int
}

// DefaultTableI reproduces the paper's parameters.
func DefaultTableI() TableIConfig {
	return TableIConfig{
		Line: netgen.DefaultFractionalLine(),
		T:    2.7e-9, M: 8, FFT1: 8, FFT2: 100, Repeat: 50,
	}
}

// TableIResult carries the structured outcome for tests and benches.
type TableIResult struct {
	OPMTime, FFT1Time, FFT2Time time.Duration
	// ErrFFT1/ErrFFT2 are eq. (30) errors of each FFT variant versus OPM,
	// in dB, matching the paper's metric (which uses OPM as the reference
	// and reports "−" in OPM's own row).
	ErrFFT1, ErrFFT2 float64
}

// TableI runs the §V-A comparison: OPM with m steps versus the
// frequency-domain method at two sampling densities, reporting CPU time and
// the eq. (30) relative error (FFT vs OPM, as in the paper).
func TableI(cfg TableIConfig) (*Table, *TableIResult, error) {
	if cfg.Repeat < 1 {
		cfg.Repeat = 1
	}
	// Drives: a fast pulse into port 1, port 2 idle — a typical signal-
	// integrity stimulus on the paper's 2.7 ns window.
	drive1 := waveform.Pulse(0, 1e-3, 0.1e-9, 0.1e-9, 0.1e-9, 0.8e-9, 0)
	drive2 := waveform.Zero()
	mna, err := netgen.FractionalLine(cfg.Line, drive1, drive2)
	if err != nil {
		return nil, nil, err
	}
	alpha := cfg.Line.Order

	// OPM.
	var opmSol *core.Solution
	opmTime, err := timeIt(cfg.Repeat, func() error {
		s, err := core.Solve(mna.Sys, mna.Inputs, cfg.M, cfg.T, core.Options{})
		opmSol = s
		return err
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: OPM solve: %w", err)
	}

	// FFT baselines need the dense (E, A, B) triple of E·dᵅx = A·x + B·u.
	var eD, aD, bD = termDense(mna.Sys, alpha), termDense(mna.Sys, 0).Scale(-1), mna.Sys.B.ToDense()
	var fft1, fft2 *freqdom.Result
	fft1Time, err := timeIt(cfg.Repeat, func() error {
		r, err := freqdom.Solve(eD, aD, bD, mna.Inputs, alpha, cfg.T, cfg.FFT1)
		fft1 = r
		return err
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: FFT-1 solve: %w", err)
	}
	fft2Time, err := timeIt(cfg.Repeat, func() error {
		r, err := freqdom.Solve(eD, aD, bD, mna.Inputs, alpha, cfg.T, cfg.FFT2)
		fft2 = r
		return err
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: FFT-2 solve: %w", err)
	}

	// Compare the two output ports on the OPM midpoint grid (eq. 30 with
	// OPM as the reference).
	times := waveform.UniformTimes(cfg.M, cfg.T)
	yOPM := opmSol.SampleOutputs(times)
	err1, err := waveform.RelErrDBVec(fdOutputs(mna.Sys.C, fft1, times), yOPM)
	if err != nil {
		return nil, nil, err
	}
	err2, err := waveform.RelErrDBVec(fdOutputs(mna.Sys.C, fft2, times), yOPM)
	if err != nil {
		return nil, nil, err
	}

	res := &TableIResult{
		OPMTime: opmTime, FFT1Time: fft1Time, FFT2Time: fft2Time,
		ErrFFT1: err1, ErrFFT2: err2,
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Table I — fractional line (n=%d, α=%g, T=%.3gns, m=%d)", mna.Sys.N(), alpha, cfg.T*1e9, cfg.M),
		Header: []string{"Method", "CPU time", "RelErr vs OPM", "Paper CPU", "Paper err"},
	}
	tbl.AddRow(fmt.Sprintf("FFT-1 (N=%d)", cfg.FFT1), fmtDur(fft1Time), fmt.Sprintf("%.1f dB", err1), "6.09 ms", "-29.2 dB")
	tbl.AddRow(fmt.Sprintf("FFT-2 (N=%d)", cfg.FFT2), fmtDur(fft2Time), fmt.Sprintf("%.1f dB", err2), "40.7 ms", "-46.5 dB")
	tbl.AddRow(fmt.Sprintf("OPM   (m=%d)", cfg.M), fmtDur(opmTime), "—", "3.56 ms", "—")
	tbl.Notes = append(tbl.Notes,
		"paper shape: OPM fastest; FFT-2 (more samples) closer to OPM than FFT-1",
		"errors follow eq. (30) with OPM as reference, as in the paper")
	return tbl, res, nil
}

// fdOutputs samples a frequency-domain result at the given times and maps
// states to outputs through C (q×n, nil meaning identity).
func fdOutputs(c *sparse.CSR, r *freqdom.Result, times []float64) [][]float64 {
	n := r.X.Rows()
	states := make([][]float64, n)
	for i := 0; i < n; i++ {
		states[i] = r.SampleState(i, times)
	}
	if c == nil {
		return states
	}
	out := make([][]float64, c.R)
	xv := make([]float64, n)
	for q := range out {
		out[q] = make([]float64, len(times))
	}
	for k := range times {
		for i := 0; i < n; i++ {
			xv[i] = states[i][k]
		}
		y := c.MulVec(xv, nil)
		for q := range out {
			out[q][k] = y[q]
		}
	}
	return out
}

// termDense extracts the coefficient matrix of the term with the given
// order as a dense matrix; it panics if absent (internal misuse).
func termDense(sys *core.System, order float64) *mat.Dense {
	for _, t := range sys.Terms {
		//lint:ignore floateq exact order value keys the term lookup; orders are set, not computed
		if t.Order == order {
			return t.Coeff.ToDense()
		}
	}
	panic(fmt.Sprintf("experiments: system has no term of order %g", order))
}

// timeIt runs f repeat times and returns the average duration.
func timeIt(repeat int, f func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < repeat; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(repeat), nil
}

// fmtDur renders a duration compactly.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%d ns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1f µs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2f ms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2f s", d.Seconds())
	}
}
