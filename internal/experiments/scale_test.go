package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

// Tiny end-to-end run of the scale harness (CI-sized grid): both legs must
// factor, agree, and produce a well-formed report.
func TestScaleBenchSmoke(t *testing.T) {
	cfg := ScaleConfig{Sizes: []int{1500}, M: 32, T: 10e-9, Solves: 2}
	tbl, rep, err := ScaleBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d/%d, want 1", len(rep.Rows), len(tbl.Rows))
	}
	row := rep.Rows[0]
	if row.States < 1000 {
		t.Fatalf("grid for n=1500 assembled only %d states", row.States)
	}
	if row.Parts < 2 || row.IfaceN <= 0 {
		t.Fatalf("degenerate BBD leg: parts=%d iface=%d", row.Parts, row.IfaceN)
	}
	if row.ScalarFactorNS <= 0 || row.BBDFactorNS <= 0 {
		t.Fatalf("missing timings: %+v", row)
	}
	if row.MaxRelDiff > 1e-8 {
		t.Fatalf("legs disagree: rel diff %g", row.MaxRelDiff)
	}
	if row.FactorSpeedup <= 0 || row.SolveSpeedup <= 0 {
		t.Fatalf("non-positive speedups: %+v", row)
	}
}

func TestScaleReportRoundTrip(t *testing.T) {
	rep := &ScaleReport{
		GOMAXPROCS: 1,
		Rows: []ScaleRow{
			{N: 1000, States: 1200, FactorSpeedup: 3.5, SolveSpeedup: 1.2, Parts: 4, IfaceN: 80},
		},
		Notes: []string{"test"},
	}
	path := filepath.Join(t.TempDir(), "scale.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScaleReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].FactorSpeedup != 3.5 || got.Rows[0].N != 1000 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if _, err := ReadScaleReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("ReadScaleReport accepted a missing file")
	}
}

// Unit tests of the regression guard on synthetic reports: within tolerance
// passes, a >25% speedup regression fails, and disjoint size sets are a hard
// error rather than a silent pass.
func TestCompareScaleReports(t *testing.T) {
	mk := func(n int, speedup float64) *ScaleReport {
		return &ScaleReport{Rows: []ScaleRow{{N: n, FactorSpeedup: speedup}}}
	}
	if err := CompareScaleReports(mk(6000, 3.0), mk(6000, 3.5), 0.25); err != nil {
		t.Fatalf("14%% drift within the 25%% band failed: %v", err)
	}
	err := CompareScaleReports(mk(6000, 2.0), mk(6000, 3.5), 0.25)
	if err == nil {
		t.Fatal("43% regression passed the guard")
	}
	if !strings.Contains(err.Error(), "regression at n=6000") {
		t.Fatalf("unhelpful regression error: %v", err)
	}
	if err := CompareScaleReports(mk(6000, 3.0), mk(1000, 3.0), 0.25); err == nil {
		t.Fatal("guard matched no sizes but did not error")
	}
	// Extra current sizes are fine as long as the baseline sizes match.
	cur := &ScaleReport{Rows: []ScaleRow{{N: 1000, FactorSpeedup: 9.0}, {N: 6000, FactorSpeedup: 3.4}}}
	if err := CompareScaleReports(cur, mk(6000, 3.5), 0.25); err != nil {
		t.Fatalf("superset comparison failed: %v", err)
	}
}
