package experiments

import (
	"fmt"
	"math"

	"opmsim/internal/basis"
	"opmsim/internal/core"
	"opmsim/internal/freqdom"
	"opmsim/internal/mat"
	"opmsim/internal/netgen"
	"opmsim/internal/poly"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// Waveforms regenerates the §V-A response-waveform panel: the near-port
// output y₁(t) of the fractional line under OPM (paper m), FFT-1, FFT-2 and
// a dense-m OPM reference, printed as aligned series.
func Waveforms(cfg TableIConfig, points int) (*Table, error) {
	if points < 2 {
		points = 27
	}
	drive1 := waveform.Pulse(0, 1e-3, 0.1e-9, 0.1e-9, 0.1e-9, 0.8e-9, 0)
	mna, err := netgen.FractionalLine(cfg.Line, drive1, waveform.Zero())
	if err != nil {
		return nil, err
	}
	alpha := cfg.Line.Order
	coarse, err := core.Solve(mna.Sys, mna.Inputs, cfg.M, cfg.T, core.Options{})
	if err != nil {
		return nil, err
	}
	dense, err := core.Solve(mna.Sys, mna.Inputs, 2048, cfg.T, core.Options{})
	if err != nil {
		return nil, err
	}
	eD, aD, bD := termDense(mna.Sys, alpha), termDense(mna.Sys, 0).Scale(-1), mna.Sys.B.ToDense()
	fft1, err := freqdom.Solve(eD, aD, bD, mna.Inputs, alpha, cfg.T, cfg.FFT1)
	if err != nil {
		return nil, err
	}
	fft2, err := freqdom.Solve(eD, aD, bD, mna.Inputs, alpha, cfg.T, cfg.FFT2)
	if err != nil {
		return nil, err
	}
	times := waveform.UniformTimes(points, cfg.T)
	y1 := fdOutputs(mna.Sys.C, fft1, times)
	y2 := fdOutputs(mna.Sys.C, fft2, times)
	tbl := &Table{
		Title:  fmt.Sprintf("Waveforms — fractional line near-port response y1(t), T=%.3gns", cfg.T*1e9),
		Header: []string{"t (ns)", fmt.Sprintf("OPM m=%d", cfg.M), fmt.Sprintf("FFT-1 N=%d", cfg.FFT1), fmt.Sprintf("FFT-2 N=%d", cfg.FFT2), "OPM m=2048 (ref)"},
	}
	for k, t := range times {
		tbl.AddRow(
			fmt.Sprintf("%.4f", t*1e9),
			fmt.Sprintf("%+.4e", coarse.OutputAt(t)[0]),
			fmt.Sprintf("%+.4e", y1[0][k]),
			fmt.Sprintf("%+.4e", y2[0][k]),
			fmt.Sprintf("%+.4e", dense.OutputAt(t)[0]),
		)
	}
	tbl.Notes = append(tbl.Notes, "FFT-2 should track the dense reference more closely than FFT-1")
	return tbl, nil
}

// AdaptiveConfig parameterizes the adaptive-step demonstration (§III-B).
type AdaptiveConfig struct {
	// Tols are the error-controller tolerances to sweep.
	Tols []float64
	// T is the span; the workload is an RC network hit by a sharp pulse at
	// 1/4 of the span, so a uniform grid wastes steps on the quiet tail.
	T float64
}

// DefaultAdaptive returns the standard sweep.
func DefaultAdaptive() AdaptiveConfig {
	return AdaptiveConfig{Tols: []float64{1e-3, 1e-4, 1e-5}, T: 8}
}

// Adaptive regenerates the adaptive-step claim: for an input with a sharp
// localized transient, the on-the-fly controller reaches uniform-OPM
// accuracy with far fewer columns (and correspondingly lower runtime).
func Adaptive(cfg AdaptiveConfig) (*Table, error) {
	sys, err := rcSystem()
	if err != nil {
		return nil, err
	}
	u := []waveform.Signal{waveform.Pulse(0, 1, cfg.T/4, 0.01, 0.01, 0.4, 0)}
	ref, err := core.Solve(sys, u, 65536, cfg.T, core.Options{})
	if err != nil {
		return nil, err
	}
	probe := []float64{cfg.T * 0.2, cfg.T * 0.27, cfg.T * 0.3, cfg.T * 0.5, cfg.T * 0.9}
	errOf := func(at func(float64) float64) float64 {
		worst := 0.0
		for _, t := range probe {
			if d := math.Abs(at(t) - ref.StateAt(0, t)); d > worst {
				worst = d
			}
		}
		return worst
	}
	tbl := &Table{
		Title:  "Adaptive step (§III-B) — pulse-driven RC, uniform vs error-controlled steps",
		Header: []string{"Method", "Columns", "Runtime", "Max error vs dense ref"},
	}
	for _, m := range []int{256, 1024, 4096} {
		var sol *core.Solution
		dur, err := timeIt(3, func() error {
			s, err := core.Solve(sys, u, m, cfg.T, core.Options{})
			sol = s
			return err
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("uniform m=%d", m), fmt.Sprintf("%d", m),
			fmtDur(dur), fmt.Sprintf("%.2e", errOf(func(t float64) float64 { return sol.StateAt(0, t) })))
	}
	for _, tol := range cfg.Tols {
		var sol *core.Solution
		var stats *core.AdaptiveStats
		dur, err := timeIt(3, func() error {
			s, st, err := core.SolveAdaptiveAuto(sys, u, cfg.T, core.AdaptiveOptions{Tol: tol})
			sol, stats = s, st
			return err
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("adaptive tol=%.0e", tol),
			fmt.Sprintf("%d (rej %d)", sol.Basis().Size(), stats.Rejected),
			fmtDur(dur), fmt.Sprintf("%.2e", errOf(func(t float64) float64 { return sol.StateAt(0, t) })))
	}
	tbl.Notes = append(tbl.Notes, "the controller concentrates steps around the pulse; uniform grids pay everywhere")
	return tbl, nil
}

// rcSystem is a plain scalar relaxation ẋ = −x + u; it keeps the adaptive
// figure easy to read.
func rcSystem() (*core.System, error) {
	return core.NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
}

func scalarCSR(v float64) *sparse.CSR {
	c := sparse.NewCOO(1, 1)
	c.Add(0, 0, v)
	return c.ToCSR()
}

// OpMatrix regenerates the §IV worked example: the ρ_{3/2,4} coefficients of
// eq. (23), the resulting D^{3/2}(4) of eq. (24), and the semigroup identity
// (D^{3/2})² = D³, plus construction cost as m grows.
func OpMatrix() (*Table, error) {
	tbl := &Table{
		Title:  "Operational matrices (§IV) — eq. (23)/(24) check and construction cost",
		Header: []string{"Quantity", "Value"},
	}
	s := poly.Rho(1.5, 2, 4) // h=2 makes the (2/h)^{3/2} prefactor 1
	tbl.AddRow("ρ_{3/2,4} coefficients (eq. 23)", fmt.Sprintf("%.4g %.4g %.4g %.4g", s.Coef[0], s.Coef[1], s.Coef[2], s.Coef[3]))
	tbl.AddRow("paper eq. (23)", "1 -3 4.5 -5.5")
	b4, err := basis.NewBPF(4, 2)
	if err != nil {
		return nil, err
	}
	lhs := mat.Mul(b4.DiffMatrix(1.5), b4.DiffMatrix(1.5))
	rhs := mat.MatPowInt(b4.DiffMatrix(1), 3)
	diff := mat.Sub(lhs, rhs).MaxAbs()
	tbl.AddRow("‖(D^{3/2})² − D³‖_max (semigroup)", fmt.Sprintf("%.2e", diff))
	for _, m := range []int{64, 256, 1024, 4096} {
		bm, err := basis.NewBPF(m, 1)
		if err != nil {
			return nil, err
		}
		dur, err := timeIt(5, func() error {
			_ = bm.DiffCoeffs(0.5)
			return nil
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("build D^{1/2} coefficients, m=%d", m), fmtDur(dur))
	}
	return tbl, nil
}

// Bases regenerates the §I basis-choice discussion: the same RC system
// solved in four bases, for a smooth input (Legendre shines) and a switching
// input (piecewise-constant bases shine).
func Bases(m int, T float64) (*Table, error) {
	if m <= 0 {
		m = 32
	}
	if T <= 0 {
		T = 2
	}
	e := mat.NewDenseFrom(1, 1, []float64{1})
	a := mat.NewDenseFrom(1, 1, []float64{-1})
	b := mat.NewDenseFrom(1, 1, []float64{1})
	smooth := waveform.Sine(1, 0.5, 0)
	sw := waveform.Pulse(0, 1, T/4, 1e-6, 1e-6, T/4, 0)
	w := 2 * math.Pi * 0.5
	den := 1 + w*w
	exactSmooth := func(t float64) float64 {
		return (math.Sin(w*t)-w*math.Cos(w*t))/den + w/den*math.Exp(-t)
	}
	exactSwitch := func(t float64) float64 {
		t0, t1 := T/4, T/2
		switch {
		case t < t0:
			return 0
		case t < t1:
			return 1 - math.Exp(-(t - t0))
		default:
			v1 := 1 - math.Exp(-(t1 - t0))
			return v1 * math.Exp(-(t - t1))
		}
	}
	mk := func(name string) (basis.Basis, error) {
		switch name {
		case "block-pulse":
			return basis.NewBPF(m, T)
		case "walsh":
			return basis.NewWalsh(m, T)
		case "haar":
			return basis.NewHaar(m, T)
		case "legendre":
			return basis.NewLegendre(m, T)
		}
		return nil, fmt.Errorf("experiments: unknown basis %q", name)
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Basis ablation (§I) — RC solved with m=%d coefficients per basis", m),
		Header: []string{"Basis", "RMS err (smooth input)", "RMS err (switching input)"},
	}
	probe := waveform.UniformTimes(400, T*0.999)
	for _, name := range []string{"block-pulse", "walsh", "haar", "legendre"} {
		bas, err := mk(name)
		if err != nil {
			return nil, err
		}
		rms := func(u waveform.Signal, exact func(float64) float64) (float64, error) {
			x, err := core.SolveGeneric(e, a, b, []waveform.Signal{u}, bas)
			if err != nil {
				return 0, err
			}
			s := 0.0
			for _, t := range probe {
				d := bas.Reconstruct(x.Row(0), t) - exact(t)
				s += d * d
			}
			return math.Sqrt(s / float64(len(probe))), nil
		}
		es, err := rms(smooth, exactSmooth)
		if err != nil {
			return nil, err
		}
		ew, err := rms(sw, exactSwitch)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(name, fmt.Sprintf("%.2e", es), fmt.Sprintf("%.2e", ew))
	}
	tbl.Notes = append(tbl.Notes,
		"expected: Legendre wins on the smooth input, loses badly at the switching input (Gibbs)",
		"Walsh/Haar/BPF are related by similarity and give comparable piecewise-constant accuracy")
	return tbl, nil
}

// Scaling regenerates the §IV complexity claim O(nᵝ·m + n·m²): OPM runtime
// versus state count n (DAE grid, m fixed) and versus column count m
// (fractional line, n fixed). seed fixes the generated grids' load placement.
func Scaling(seed int64) (*Table, error) {
	tbl := &Table{
		Title:  "Complexity scaling (§IV) — runtime vs n (order-1, m=200) and vs m (fractional, n=7)",
		Header: []string{"Sweep", "Size", "Runtime"},
	}
	for _, rows := range []int{8, 16, 32} {
		cfg := netgen.DefaultPowerGrid()
		cfg.Rows, cfg.Cols = rows, rows
		cfg.Seed = seed
		grid, err := netgen.PowerGrid3D(cfg)
		if err != nil {
			return nil, err
		}
		mna, err := grid.Netlist.MNA()
		if err != nil {
			return nil, err
		}
		dur, err := timeIt(1, func() error {
			_, err := core.Solve(mna.Sys, mna.Inputs, 200, 10e-9, core.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow("n (MNA states), m=200", fmt.Sprintf("n=%d", mna.Sys.N()), fmtDur(dur))
	}
	lineCfg := netgen.DefaultFractionalLine()
	drive := waveform.Pulse(0, 1e-3, 0.1e-9, 0.1e-9, 0.1e-9, 0.8e-9, 0)
	mna, err := netgen.FractionalLine(lineCfg, drive, waveform.Zero())
	if err != nil {
		return nil, err
	}
	for _, m := range []int{128, 256, 512, 1024} {
		dur, err := timeIt(3, func() error {
			_, err := core.Solve(mna.Sys, mna.Inputs, m, 2.7e-9, core.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow("m (fractional history)", fmt.Sprintf("m=%d", m), fmtDur(dur))
	}
	tbl.Notes = append(tbl.Notes,
		"order-1 sweep should grow ~linearly in n; fractional sweep ~quadratically in m (O(n·m²) history)")
	return tbl, nil
}
