package experiments

import (
	"fmt"
	"math"

	"opmsim/internal/circuit"
	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

// Corner analysis: the deterministic worst-case companion to MonteCarloSweep.
// Instead of sampling the tolerance band, CornerSweep solves its extremes —
// every element alone at ±tol plus the two global all-high/all-low corners
// (netgen.CornerPerturb) — through one parameter-varying SolveBatch call, so
// the per-element corners ride the SMW factor-update path as rank-1 pencil
// deltas against the shared nominal factorization. The result bounds the
// waveform family and names the corner that deviates most from nominal,
// which is what a designer actually reads off a tolerance analysis.

// CornerConfig parameterizes one corner sweep.
type CornerConfig struct {
	// Netlist and Model: the nominal circuit and its assembled system.
	Netlist *circuit.Netlist
	Model   *circuit.MNA
	// Elements names the perturbed components; nil sweeps every perturbable
	// element (netgen.PerturbableElements).
	Elements []string
	// Tol is the symmetric relative tolerance band (±Tol).
	Tol float64
	// M and T are the BPF grid: M columns over [0, T].
	M int
	T float64
	// UpdateRankLimit is passed to core.BatchOptions: 0 measures the
	// SMW-vs-refactor crossover, >0 pins the update path, <0 forces
	// refactorization.
	UpdateRankLimit int
	// Options seeds the solver options; Report is managed internally.
	Options core.Options
}

// Corner is one solved corner's outcome.
type Corner struct {
	// Label names the corner: "nominal", "<elem>+", "<elem>-", "all+", "all-".
	Label string
	// MaxDeviation is the largest |x_corner − x_nominal| over all states and
	// columns; 0 for the nominal corner itself.
	MaxDeviation float64
	// At is the (state, column) where the maximum was attained.
	AtState, AtColumn int
}

// CornerResult is a completed sweep.
type CornerResult struct {
	// Corners in scenario order (index 0 = nominal); Worst indexes the
	// corner with the largest deviation.
	Corners []Corner
	Worst   int
	// Envelope folds min/max/mean over the whole corner family.
	Envelope *waveform.Envelope
	// PencilUpdates / PencilRefactors count how the batch dispatched the
	// corner deltas (SMW update path vs refactorization).
	PencilUpdates   int
	PencilRefactors int
}

// CornerSweep runs the corner set through one SolveBatch call. Peak memory
// stays O(corners·n) via DiscardSolutions; deviations are computed column by
// column against the nominal scenario in the same batch.
func CornerSweep(cfg CornerConfig) (*CornerResult, error) {
	if cfg.Netlist == nil || cfg.Model == nil {
		return nil, fmt.Errorf("experiments: corner sweep needs a netlist and an assembled model")
	}
	elements := cfg.Elements
	if elements == nil {
		elements = netgen.PerturbableElements(cfg.Netlist, 0)
	}
	if len(elements) == 0 {
		return nil, fmt.Errorf("experiments: corner sweep found no perturbable elements")
	}
	count := netgen.CornerCount(len(elements))
	res := &CornerResult{Corners: make([]Corner, count)}
	scs := make([]core.Scenario, count)
	for c := 0; c < count; c++ {
		perts, label, err := netgen.CornerPerturb(cfg.Netlist, elements, c, cfg.Tol)
		if err != nil {
			return nil, err
		}
		res.Corners[c].Label = label
		sc := core.Scenario{U: cfg.Model.Inputs}
		if len(perts) > 0 {
			d, err := cfg.Netlist.StampDelta(cfg.Model, perts)
			if err != nil {
				return nil, fmt.Errorf("experiments: corner %q: %w", label, err)
			}
			if d.Rank() > 0 {
				sc.Delta = d
			}
		}
		scs[c] = sc
	}
	n := cfg.Model.Sys.N()
	env, err := waveform.NewEnvelope(n, cfg.M, cfg.M/2, cfg.M-1)
	if err != nil {
		return nil, err
	}
	res.Envelope = env
	rep := &core.SolveReport{}
	opt := cfg.Options
	opt.Report = rep
	var obsErr error
	_, err = core.SolveBatch(cfg.Model.Sys, scs, cfg.M, cfg.T, core.BatchOptions{
		Options:          opt,
		UpdateRankLimit:  cfg.UpdateRankLimit,
		DiscardSolutions: true,
		OnColumn: func(j int, _ float64, cols [][]float64) {
			nominal := cols[0]
			for s := range cols {
				if err := env.ObserveColumn(j, cols[s]); err != nil && obsErr == nil {
					obsErr = err
				}
				if s == 0 {
					continue
				}
				corner := &res.Corners[s]
				for i, v := range cols[s] {
					if d := math.Abs(v - nominal[i]); d > corner.MaxDeviation {
						corner.MaxDeviation, corner.AtState, corner.AtColumn = d, i, j
					}
				}
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: corner sweep: %w", err)
	}
	if obsErr != nil {
		return nil, obsErr
	}
	for c := range res.Corners {
		if res.Corners[c].MaxDeviation > res.Corners[res.Worst].MaxDeviation {
			res.Worst = c
		}
	}
	res.PencilUpdates = rep.PencilUpdates
	res.PencilRefactors = rep.PencilRefactors
	return res, nil
}

// CornerTable renders the sweep as a table, corners sorted by scenario
// order, the worst marked.
func CornerTable(res *CornerResult) *Table {
	tbl := &Table{
		Title:  "Corner sweep: ±tol extremes per element plus global corners",
		Header: []string{"corner", "max |Δx| vs nominal", "at state", "at column", "worst"},
	}
	for c, corner := range res.Corners {
		if c == 0 {
			continue
		}
		mark := ""
		if c == res.Worst {
			mark = "*"
		}
		//lint:ignore allocsite results-table rendering, one row per corner, not a per-scenario path
		tbl.AddRow(corner.Label, fmt.Sprintf("%.4e", corner.MaxDeviation),
			fmt.Sprint(corner.AtState), fmt.Sprint(corner.AtColumn), mark)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("%d corners (%d per-element ±, 2 global) solved in one parameter-varying batch: %d SMW updates, %d refactorizations",
			len(res.Corners)-1, len(res.Corners)-3, res.PencilUpdates, res.PencilRefactors))
	return tbl
}
