// Package experiments implements the reproduction harness: one entry point
// per table/figure of the paper plus the ablations DESIGN.md commits to.
// Both cmd/opm-bench and the repository-level benchmarks drive these.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cols ...string) {
	t.Rows = append(t.Rows, cols)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	printRow := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}
