package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"opmsim/internal/circuit"
	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

// The Monte-Carlo sweep driver and its benchmark: N component-tolerance
// scenarios of one netlist fanned through the parameter-varying batch engine
// in chunks, folded into a waveform.Envelope instead of materializing N
// solutions. The benchmark compares the SMW update path against
// refactorize-every-scenario on the same workload — the ablation behind
// BENCH_montecarlo.json.

// MonteCarloConfig parameterizes one sweep.
type MonteCarloConfig struct {
	// Netlist and Model: the nominal circuit and its assembled system (MNA
	// or NA — StampDelta handles both).
	Netlist *circuit.Netlist
	Model   *circuit.MNA
	// N is the scenario count, including the nominal scenario 0.
	N int
	// Tol is the symmetric relative tolerance band (±Tol) applied to each
	// perturbed element value.
	Tol float64
	// Seed keys the counter-based RNG: same seed, same scenarios, and — with
	// UpdateRankLimit pinned — Float64bits-identical envelopes.
	Seed uint64
	// Elements names the perturbed components; nil perturbs every
	// perturbable element (netgen.PerturbableElements).
	Elements []string
	// M and T are the BPF grid: M columns over [0, T].
	M int
	T float64
	// Chunk bounds the scenarios per SolveBatch call (default 1024): chunking
	// caps per-call memory at O(Chunk·n) while the envelope spans all N.
	Chunk int
	// UpdateRankLimit is passed through to core.BatchOptions: 0 measures the
	// crossover, >0 pins the SMW side, <0 forces refactorization.
	UpdateRankLimit int
	// ProbeCols are the envelope's quantile probe columns; nil picks the
	// quartile columns {M/4, M/2, 3M/4, M−1}.
	ProbeCols []int
	// Options seeds the per-chunk solver options (Workers, HistoryMode,
	// FactorCache); the Report field is managed per chunk and merged.
	Options core.Options
}

// MonteCarloResult is a completed sweep: the envelope plus the merged solver
// accounting across all chunks.
type MonteCarloResult struct {
	Envelope *waveform.Envelope
	// Scenarios actually solved (== cfg.N).
	Scenarios int
	// PencilUpdates / PencilRefactors / Columns / Factorizations summed over
	// chunk reports; CrossoverRank is the last chunk's resolved limit.
	PencilUpdates   int
	PencilRefactors int
	Factorizations  int
	Columns         int
	CrossoverRank   int
}

// MonteCarloSweep runs the sweep: scenario 0 is the nominal circuit, 1..N−1
// carry counter-based component perturbations stamped as pencil deltas. All
// chunks stream through BatchOptions.OnColumn with DiscardSolutions set, so
// peak memory is O(Chunk·n + states·columns) regardless of N.
func MonteCarloSweep(cfg MonteCarloConfig) (*MonteCarloResult, error) {
	if cfg.Netlist == nil || cfg.Model == nil {
		return nil, fmt.Errorf("experiments: montecarlo needs a netlist and an assembled model")
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("experiments: montecarlo needs at least one scenario, got %d", cfg.N)
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 1024
	}
	elements := cfg.Elements
	if elements == nil {
		elements = netgen.PerturbableElements(cfg.Netlist, 0)
	}
	probes := cfg.ProbeCols
	if probes == nil {
		probes = []int{cfg.M / 4, cfg.M / 2, 3 * cfg.M / 4, cfg.M - 1}
	}
	n := cfg.Model.Sys.N()
	env, err := waveform.NewEnvelope(n, cfg.M, probes...)
	if err != nil {
		return nil, err
	}
	res := &MonteCarloResult{Envelope: env, Scenarios: cfg.N}
	// One chunk-sized scenario buffer for the whole sweep: SolveBatch returns
	// before the next chunk is built, so the slots can be overwritten in place.
	scratch := make([]core.Scenario, cfg.Chunk)
	for lo := 0; lo < cfg.N; lo += cfg.Chunk {
		hi := lo + cfg.Chunk
		if hi > cfg.N {
			hi = cfg.N
		}
		scs := scratch[:hi-lo]
		for s := lo; s < hi; s++ {
			perts, err := netgen.MonteCarloPerturb(cfg.Netlist, elements, cfg.Seed, s, cfg.Tol)
			if err != nil {
				return nil, err
			}
			sc := core.Scenario{U: cfg.Model.Inputs}
			if len(perts) > 0 {
				d, err := cfg.Netlist.StampDelta(cfg.Model, perts)
				if err != nil {
					return nil, fmt.Errorf("experiments: montecarlo scenario %d: %w", s, err)
				}
				if d.Rank() > 0 {
					sc.Delta = d
				}
			}
			scs[s-lo] = sc
		}
		rep := &core.SolveReport{}
		opt := cfg.Options
		opt.Report = rep
		var obsErr error
		_, err := core.SolveBatch(cfg.Model.Sys, scs, cfg.M, cfg.T, core.BatchOptions{
			Options:          opt,
			UpdateRankLimit:  cfg.UpdateRankLimit,
			DiscardSolutions: true,
			OnColumn: func(j int, _ float64, cols [][]float64) {
				for s := range cols {
					if err := env.ObserveColumn(j, cols[s]); err != nil && obsErr == nil {
						obsErr = err
					}
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: montecarlo chunk [%d,%d): %w", lo, hi, err)
		}
		if obsErr != nil {
			return nil, obsErr
		}
		res.PencilUpdates += rep.PencilUpdates
		res.PencilRefactors += rep.PencilRefactors
		res.Factorizations += rep.Factorizations
		res.Columns += rep.Columns
		res.CrossoverRank = rep.UpdateCrossoverRank
	}
	return res, nil
}

// MonteCarloBenchConfig parameterizes the SMW-vs-refactorize ablation.
type MonteCarloBenchConfig struct {
	// Ns are the scenario counts to sweep.
	Ns []int
	// LadderSections / LadderR / LadderC shape the quickstart-style RC
	// ladder fixture; LadderElems elements are perturbed (the low-rank
	// workload the SMW path targets).
	LadderSections int
	LadderElems    int
	// Grid shapes the power-grid fixture (NA model); GridElems elements are
	// perturbed.
	Grid      netgen.PowerGridConfig
	GridElems int
	// M and TolPct: BPF columns and tolerance band shared by both fixtures.
	M   int
	Tol float64
	// MeasureCapSMW / MeasureCapRefactor cap the scenario count actually
	// timed per leg; larger Ns are extrapolated linearly from the measured
	// sample and flagged in the report. Refactorization is so much slower
	// that its cap is the smaller of the two.
	MeasureCapSMW      int
	MeasureCapRefactor int
	Seed               uint64
}

// DefaultMonteCarloBench covers the acceptance grid: N ∈ {1k, 10k, 100k} on
// the RC-ladder (quickstart) and power-grid fixtures.
func DefaultMonteCarloBench() MonteCarloBenchConfig {
	return MonteCarloBenchConfig{
		Ns:                 []int{1000, 10000, 100000},
		LadderSections:     100,
		LadderElems:        8,
		Grid:               netgen.DefaultPowerGrid(),
		GridElems:          8,
		M:                  64,
		Tol:                0.1,
		MeasureCapSMW:      10000,
		MeasureCapRefactor: 2048,
		Seed:               1,
	}
}

// MonteCarloRow is one (fixture, N) point.
type MonteCarloRow struct {
	Fixture string `json:"fixture"`
	N       int    `json:"n"`
	States  int    `json:"states"`
	M       int    `json:"m"`
	// Rank is the pencil-update rank of each perturbed scenario (the number
	// of perturbed elements).
	Rank int `json:"rank"`
	// SMWNS and RefactorNS are the wall-clock times of the two legs,
	// extrapolated linearly from SMWMeasuredN / RefactorMeasuredN scenarios
	// when those are smaller than N (flagged by the *Extrapolated fields).
	SMWNS                int64   `json:"smw_ns"`
	SMWMeasuredN         int     `json:"smw_measured_n"`
	SMWExtrapolated      bool    `json:"smw_extrapolated"`
	RefactorNS           int64   `json:"refactor_ns"`
	RefactorMeasuredN    int     `json:"refactor_measured_n"`
	RefactorExtrapolated bool    `json:"refactor_extrapolated"`
	Speedup              float64 `json:"speedup"` // refactor / smw
	// Updates/Refactors dispatched in the SMW leg's measured sample (the
	// refactor leg by construction refactors every delta scenario).
	Updates   int `json:"updates"`
	Refactors int `json:"refactors"`
}

// MonteCarloReport is the machine-readable result written to
// BENCH_montecarlo.json by cmd/opm-bench.
type MonteCarloReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// MaxRelErr is the worst relative envelope deviation (min/max/mean
	// surfaces) between the SMW and refactorize legs, per fixture, measured
	// at the smallest N.
	MaxRelErr map[string]float64 `json:"max_rel_err"`
	Rows      []MonteCarloRow    `json:"rows"`
	Notes     []string           `json:"notes"`
}

// WriteJSON writes the report to path.
func (r *MonteCarloReport) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// mcFixture is one benchmark circuit.
type mcFixture struct {
	name     string
	netlist  *circuit.Netlist
	model    *circuit.MNA
	elements []string
	T        float64
}

func mcFixtures(cfg MonteCarloBenchConfig) ([]mcFixture, error) {
	var out []mcFixture
	lad, _, err := netgen.RCLadderNetlist(cfg.LadderSections, 100, 1e-9, waveform.Step(1, 0))
	if err != nil {
		return nil, err
	}
	ladModel, err := lad.MNA()
	if err != nil {
		return nil, err
	}
	out = append(out, mcFixture{
		name: "rc-ladder", netlist: lad, model: ladModel,
		elements: netgen.PerturbableElements(lad, cfg.LadderElems),
		T:        5e-7,
	})
	grid, err := netgen.PowerGrid3D(cfg.Grid)
	if err != nil {
		return nil, err
	}
	gridModel, err := grid.Netlist.NA()
	if err != nil {
		return nil, err
	}
	out = append(out, mcFixture{
		name: "power-grid", netlist: grid.Netlist, model: gridModel,
		elements: netgen.PerturbableElements(grid.Netlist, cfg.GridElems),
		T:        10e-9,
	})
	return out, nil
}

// envelopeRelErr compares the min/max/mean surfaces of two envelopes.
func envelopeRelErr(a, b *waveform.Envelope) float64 {
	worst, scale := 0.0, 0.0
	n, m := a.States(), a.Columns()
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			for _, pair := range [][2]float64{
				{a.Min(i, j), b.Min(i, j)},
				{a.Max(i, j), b.Max(i, j)},
				{a.Mean(i, j), b.Mean(i, j)},
			} {
				if v := math.Abs(pair[1]); v > scale {
					scale = v
				}
				if d := math.Abs(pair[0] - pair[1]); d > worst {
					worst = d
				}
			}
		}
	}
	return worst / (1 + scale)
}

// MonteCarloBench runs the ablation: for each fixture and N, the sweep
// through the SMW update path (UpdateRankLimit pinned above the fixture
// rank) versus refactorize-every-scenario (UpdateRankLimit −1), extrapolated
// past the measurement caps.
func MonteCarloBench(cfg MonteCarloBenchConfig) (*Table, *MonteCarloReport, error) {
	if len(cfg.Ns) == 0 {
		return nil, nil, fmt.Errorf("experiments: montecarlo bench needs at least one N")
	}
	fixtures, err := mcFixtures(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := &MonteCarloReport{GOMAXPROCS: runtime.GOMAXPROCS(0), MaxRelErr: map[string]float64{}}
	tbl := &Table{
		Title:  "Monte-Carlo sweep: SMW factor updates vs refactorize-per-scenario",
		Header: []string{"fixture", "N", "states", "rank", "SMW", "refactor", "speedup", "extrapolated"},
	}
	runLeg := func(fx mcFixture, scenarios, limit int) (time.Duration, *MonteCarloResult, error) {
		start := time.Now()
		res, err := MonteCarloSweep(MonteCarloConfig{
			Netlist: fx.netlist, Model: fx.model,
			N: scenarios, Tol: cfg.Tol, Seed: cfg.Seed,
			Elements: fx.elements, M: cfg.M, T: fx.T,
			UpdateRankLimit: limit,
		})
		return time.Since(start), res, err
	}
	for _, fx := range fixtures {
		rank := len(fx.elements)
		smwLimit := 4 * rank // safely on the SMW side of the crossover
		// Envelope agreement at the smallest N.
		relN := cfg.Ns[0]
		if relN > 1000 {
			relN = 1000
		}
		_, smwRes, err := runLeg(fx, relN, smwLimit)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: smw relerr leg: %w", fx.name, err)
		}
		_, refRes, err := runLeg(fx, relN, -1)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: refactor relerr leg: %w", fx.name, err)
		}
		rep.MaxRelErr[fx.name] = envelopeRelErr(smwRes.Envelope, refRes.Envelope)
		for _, N := range cfg.Ns {
			smwN, refN := N, N
			if cfg.MeasureCapSMW > 0 && smwN > cfg.MeasureCapSMW {
				smwN = cfg.MeasureCapSMW
			}
			if cfg.MeasureCapRefactor > 0 && refN > cfg.MeasureCapRefactor {
				refN = cfg.MeasureCapRefactor
			}
			smwDur, smwRes, err := runLeg(fx, smwN, smwLimit)
			if err != nil {
				return nil, nil, fmt.Errorf("%s N=%d: smw leg: %w", fx.name, N, err)
			}
			refDur, _, err := runLeg(fx, refN, -1)
			if err != nil {
				return nil, nil, fmt.Errorf("%s N=%d: refactor leg: %w", fx.name, N, err)
			}
			smwNS := int64(float64(smwDur.Nanoseconds()) * float64(N) / float64(smwN))
			refNS := int64(float64(refDur.Nanoseconds()) * float64(N) / float64(refN))
			row := MonteCarloRow{
				Fixture: fx.name, N: N, States: fx.model.Sys.N(), M: cfg.M, Rank: rank,
				SMWNS: smwNS, SMWMeasuredN: smwN, SMWExtrapolated: smwN < N,
				RefactorNS: refNS, RefactorMeasuredN: refN, RefactorExtrapolated: refN < N,
				Speedup:   float64(refNS) / float64(smwNS),
				Updates:   smwRes.PencilUpdates,
				Refactors: smwRes.PencilRefactors,
			}
			rep.Rows = append(rep.Rows, row)
			extr := "-"
			if row.SMWExtrapolated || row.RefactorExtrapolated {
				//lint:ignore allocsite results-table rendering, one row per fixture×N sweep point, not a per-scenario path
				extr = fmt.Sprintf("smw@%d refac@%d", smwN, refN)
			}
			//lint:ignore allocsite results-table rendering, one row per fixture×N sweep point, not a per-scenario path
			tbl.AddRow(fx.name, fmt.Sprint(N), fmt.Sprint(row.States), fmt.Sprint(rank),
				fmtDur(time.Duration(smwNS)), fmtDur(time.Duration(refNS)),
				fmt.Sprintf("%.2fx", row.Speedup), extr)
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("legs measured up to %d (SMW) / %d (refactor) scenarios and scaled linearly to N", cfg.MeasureCapSMW, cfg.MeasureCapRefactor),
		"max_rel_err compares the min/max/mean envelope surfaces of the two legs at the smallest N")
	tbl.Notes = append(tbl.Notes,
		"speedup = refactorize-per-scenario time / SMW update-path time; extrapolated legs scaled linearly from the measured sample")
	for name, v := range rep.MaxRelErr {
		//lint:ignore allocsite footnote rendering over a handful of fixtures, not a per-scenario path
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("%s envelope deviation SMW vs refactor: %.2e", name, v))
	}
	return tbl, rep, nil
}
