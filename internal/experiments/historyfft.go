package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

// HistoryFFTConfig parameterizes the FFT fast-convolution ablation: the §V-A
// fractional line solved at increasing m with the naive reference history,
// the exact blocked engine, and the segmented fast-convolution tier.
type HistoryFFTConfig struct {
	Line netgen.FractionalLineConfig
	T    float64
	// Ms are the block-pulse counts to sweep; the sweep should straddle the
	// auto crossover so the report shows where the FFT tier starts winning.
	Ms []int
	// Repeat re-runs each solve and keeps the minimum time.
	Repeat int
	// Workers for all variants; 0 means runtime.GOMAXPROCS.
	Workers int
}

// DefaultHistoryFFT sweeps the paper's fractional line across the crossover.
func DefaultHistoryFFT() HistoryFFTConfig {
	return HistoryFFTConfig{
		Line:   netgen.DefaultFractionalLine(),
		T:      2.7e-9,
		Ms:     []int{256, 1024, 4096},
		Repeat: 3,
	}
}

// HistoryFFTRow is one m-point of the sweep. MaxRelDiff is
// max|X_fft − X_naive| / max(1, max|X_naive|): the FFT tier reorders the
// floating-point sums, so the difference is roundoff-sized rather than zero,
// and the acceptance bound is 1e-10.
type HistoryFFTRow struct {
	M             int     `json:"m"`
	N             int     `json:"n"`
	NaiveNS       int64   `json:"naive_ns"`
	ExactNS       int64   `json:"exact_ns"`
	FFTNS         int64   `json:"fft_ns"`
	SpeedupExact  float64 `json:"speedup_exact"`  // naive / exact
	SpeedupFFT    float64 `json:"speedup_fft"`    // naive / fft
	FFTOverExact  float64 `json:"fft_over_exact"` // exact / fft
	MaxRelDiff    float64 `json:"max_rel_diff"`   // fft vs naive
	HistoryEngine string  `json:"history_engine"` // what the fft run reported
}

// HistoryFFTReport is the machine-readable result written to
// BENCH_history_fft.json by cmd/opm-bench.
type HistoryFFTReport struct {
	Fixture    string          `json:"fixture"`
	Alpha      float64         `json:"alpha"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Workers    int             `json:"workers"`
	Rows       []HistoryFFTRow `json:"rows"`
}

// WriteJSON writes the report to path.
func (r *HistoryFFTReport) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// HistoryFFT runs the fast-convolution ablation on the fractional line: for
// each m it times Solve with the naive reference, the exact blocked engine,
// and the FFT tier (all on the same worker budget), and cross-checks the FFT
// coefficients against the naive reference.
func HistoryFFT(cfg HistoryFFTConfig) (*Table, *HistoryFFTReport, error) {
	if cfg.Repeat < 1 {
		cfg.Repeat = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	drive := waveform.Pulse(0, 1e-3, 0.1e-9, 0.1e-9, 0.1e-9, 0.8e-9, 0)
	mna, err := netgen.FractionalLine(cfg.Line, drive, waveform.Zero())
	if err != nil {
		return nil, nil, err
	}
	rep := &HistoryFFTReport{
		Fixture:    fmt.Sprintf("fractional line n=%d", mna.Sys.N()),
		Alpha:      cfg.Line.Order,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
	tbl := &Table{
		Title: fmt.Sprintf("History engine FFT tier — fractional line (n=%d, α=%g, GOMAXPROCS=%d)",
			mna.Sys.N(), cfg.Line.Order, rep.GOMAXPROCS),
		Header: []string{"m", "naive", "exact", "fft", "fft/exact", "max rel Δ"},
	}
	for _, m := range cfg.Ms {
		var naiveSol, fftSol *core.Solution
		naive, err := minTime(cfg.Repeat, func() error {
			s, err := core.Solve(mna.Sys, mna.Inputs, m, cfg.T, core.Options{HistoryNaive: true})
			naiveSol = s
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: naive history m=%d: %w", m, err)
		}
		exact, err := minTime(cfg.Repeat, func() error {
			_, err := core.Solve(mna.Sys, mna.Inputs, m, cfg.T,
				core.Options{Workers: workers, HistoryMode: core.HistoryExact})
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: exact history m=%d: %w", m, err)
		}
		solveRep := &core.SolveReport{}
		fftT, err := minTime(cfg.Repeat, func() error {
			s, err := core.Solve(mna.Sys, mna.Inputs, m, cfg.T,
				core.Options{Workers: workers, HistoryMode: core.HistoryFFT, Report: solveRep})
			fftSol = s
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: fft history m=%d: %w", m, err)
		}
		diff := maxAbsDiff(naiveSol.Coefficients(), fftSol.Coefficients())
		if scale := naiveSol.Coefficients().MaxAbs(); scale > 1 {
			diff /= scale
		}
		row := HistoryFFTRow{
			M: m, N: mna.Sys.N(),
			NaiveNS: naive.Nanoseconds(), ExactNS: exact.Nanoseconds(), FFTNS: fftT.Nanoseconds(),
			SpeedupExact:  float64(naive) / float64(exact),
			SpeedupFFT:    float64(naive) / float64(fftT),
			FFTOverExact:  float64(exact) / float64(fftT),
			MaxRelDiff:    diff,
			HistoryEngine: solveRep.HistoryEngine,
		}
		rep.Rows = append(rep.Rows, row)
		tbl.AddRow(fmt.Sprintf("%d", m), fmtDur(naive), fmtDur(exact), fmtDur(fftT),
			fmt.Sprintf("%.2fx", row.FFTOverExact), fmt.Sprintf("%.2g", diff))
	}
	tbl.Notes = append(tbl.Notes,
		"naive = O(n·m²) reference; exact = blocked engine; fft = segmented fast convolution, O(n·m log² m)",
		"fft/exact > 1 means the FFT tier wins; max rel Δ is fft vs naive and must stay ≤ 1e-10")
	return tbl, rep, nil
}
