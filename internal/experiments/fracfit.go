package experiments

import (
	"fmt"
	"math"

	"opmsim/internal/core"
	"opmsim/internal/fracfit"
	"opmsim/internal/sparse"
	"opmsim/internal/specfn"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

// FracFit runs the "traditional route" ablation behind the paper's §I
// motivation: to simulate a fractional element with a classical transient
// method one must first rationalize s^α (Oustaloup approximation), paying N
// extra states per fractional element and a band-limited fit — whereas OPM
// handles the FDE natively with zero extra states. The table sweeps the
// Oustaloup order and reports fit quality, augmented-system size, runtime
// and accuracy against the Mittag-Leffler analytic step response, with the
// native OPM row for comparison.
func FracFit() (*Table, error) {
	const alpha = 0.5
	const T = 8.0
	exact := func(tt float64) (float64, error) {
		ml, err := specfn.MittagLeffler(alpha, -math.Pow(tt, alpha))
		if err != nil {
			return 0, err
		}
		return 1 - ml, nil
	}
	probe := []float64{0.5, 1, 2, 4, 7}
	maxErr := func(at func(float64) float64) (float64, error) {
		worst := 0.0
		for _, tt := range probe {
			want, err := exact(tt)
			if err != nil {
				return 0, err
			}
			if d := math.Abs(at(tt) - want); d > worst {
				worst = d
			}
		}
		return worst, nil
	}

	tbl := &Table{
		Title:  "Fractional realization ablation (§I motivation) — d^½x = −x + u, step response",
		Header: []string{"Route", "Extra states", "Band fit err", "Runtime", "Max err vs Mittag-Leffler"},
	}

	// Native OPM.
	one := sparse.NewCOO(1, 1)
	one.Add(0, 0, 1)
	sys, err := core.NewFDE(one.ToCSR(), one.ToCSR().Scale(-1), one.ToCSR(), alpha)
	if err != nil {
		return nil, err
	}
	var opmSol *core.Solution
	opmTime, err := timeIt(3, func() error {
		s, err := core.Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, 4096, T, core.Options{})
		opmSol = s
		return err
	})
	if err != nil {
		return nil, err
	}
	opmErr, err := maxErr(func(tt float64) float64 { return opmSol.StateAt(0, tt) })
	if err != nil {
		return nil, err
	}
	tbl.AddRow("OPM (native FDE)", "0", "—", fmtDur(opmTime), fmt.Sprintf("%.2e", opmErr))

	// Oustaloup + trapezoidal at several section counts.
	for _, n := range []int{6, 12, 24, 36} {
		o, err := fracfit.New(alpha, 1e-5, 1e4, n)
		if err != nil {
			return nil, err
		}
		poles, res, d := o.StateSpace()
		nf := len(poles)
		dim := nf + 1
		eC := sparse.NewCOO(dim, dim)
		aC := sparse.NewCOO(dim, dim)
		bC := sparse.NewCOO(dim, 1)
		for k := 0; k < nf; k++ {
			eC.Add(k, k, 1)
			aC.Add(k, k, -poles[k])
			aC.Add(k, nf, 1)
			aC.Add(nf, k, -res[k])
		}
		aC.Add(nf, nf, -(d + 1))
		bC.Add(nf, 0, 1)
		var sim *transient.Result
		dur, err := timeIt(3, func() error {
			r, err := transient.Simulate(eC.ToCSR(), aC.ToCSR(), bC.ToCSR(),
				[]waveform.Signal{waveform.Step(1, 0)}, T, T/4096, transient.Trapezoidal, transient.Options{})
			sim = r
			return err
		})
		if err != nil {
			return nil, err
		}
		simErr, err := maxErr(func(tt float64) float64 {
			return sim.SampleState(nf, []float64{tt})[0]
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("Oustaloup N=%d + trapezoidal", n),
			fmt.Sprintf("%d", nf),
			fmt.Sprintf("%.1e", o.MaxBandError(64)),
			fmtDur(dur),
			fmt.Sprintf("%.2e", simErr))
	}
	tbl.Notes = append(tbl.Notes,
		"the traditional route needs ~3 extra states per decade of bandwidth *per fractional element*; OPM needs none",
		"Oustaloup accuracy PLATEAUS (band-limited fit + DC mismatch) no matter how many sections are paid,",
		"while OPM's error keeps converging with m — the trade-off behind the paper's §I claim about FDEs and",
		"traditional time-domain methods; on small scalar examples the rational route is cheaper per run")
	return tbl, nil
}
