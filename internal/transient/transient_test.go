package transient

import (
	"math"
	"testing"

	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

func scalarCSR(v float64) *sparse.CSR {
	c := sparse.NewCOO(1, 1)
	c.Add(0, 0, v)
	return c.ToCSR()
}

func rcStep(t *testing.T, method Method, h float64) *Result {
	t.Helper()
	res, err := Simulate(scalarCSR(1), scalarCSR(-1), scalarCSR(1),
		[]waveform.Signal{waveform.Step(1, 0)}, 4, h, method, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func maxErrVsExp(res *Result) float64 {
	worst := 0.0
	for k, tt := range res.Times {
		want := 1 - math.Exp(-tt)
		if d := math.Abs(res.X.At(0, k) - want); d > worst {
			worst = d
		}
	}
	return worst
}

func TestBackwardEulerConvergesFirstOrder(t *testing.T) {
	e1 := maxErrVsExp(rcStep(t, BackwardEuler, 0.02))
	e2 := maxErrVsExp(rcStep(t, BackwardEuler, 0.01))
	if e1 > 0.02 {
		t.Fatalf("bEuler error too large: %g", e1)
	}
	ratio := e1 / e2
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("bEuler halving step gave error ratio %g, want ≈2 (first order)", ratio)
	}
}

func TestTrapezoidalConvergesSecondOrder(t *testing.T) {
	e1 := maxErrVsExp(rcStep(t, Trapezoidal, 0.02))
	e2 := maxErrVsExp(rcStep(t, Trapezoidal, 0.01))
	ratio := e1 / e2
	if ratio < 3.3 || ratio > 4.7 {
		t.Fatalf("trapezoidal halving step gave error ratio %g, want ≈4 (second order)", ratio)
	}
}

func TestGear2ConvergesSecondOrder(t *testing.T) {
	e1 := maxErrVsExp(rcStep(t, Gear2, 0.02))
	e2 := maxErrVsExp(rcStep(t, Gear2, 0.01))
	ratio := e1 / e2
	if ratio < 3.0 || ratio > 5.0 {
		t.Fatalf("Gear2 halving step gave error ratio %g, want ≈4", ratio)
	}
}

func TestMethodsOrderedByAccuracy(t *testing.T) {
	h := 0.02
	be := maxErrVsExp(rcStep(t, BackwardEuler, h))
	tr := maxErrVsExp(rcStep(t, Trapezoidal, h))
	ge := maxErrVsExp(rcStep(t, Gear2, h))
	if !(tr < be && ge < be) {
		t.Fatalf("expected second-order methods to beat bEuler: be=%g tr=%g gear=%g", be, tr, ge)
	}
}

func TestSimulateDAEConstraint(t *testing.T) {
	// ẋ₁ = −x₁ + u; 0 = 2x₁ − x₂. Singular E exercises the descriptor path.
	e := sparse.FromDense(mat.NewDenseFrom(2, 2, []float64{1, 0, 0, 0}))
	a := sparse.FromDense(mat.NewDenseFrom(2, 2, []float64{-1, 0, 2, -1}))
	b := sparse.FromDense(mat.NewDenseFrom(2, 1, []float64{1, 0}))
	res, err := Simulate(e, a, b, []waveform.Signal{waveform.Step(1, 0)}, 2, 0.01, Trapezoidal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Times {
		if math.Abs(res.X.At(1, k)-2*res.X.At(0, k)) > 1e-9 {
			t.Fatalf("algebraic constraint violated at step %d", k)
		}
	}
}

func TestSimulateInitialCondition(t *testing.T) {
	res, err := Simulate(scalarCSR(1), scalarCSR(-1), scalarCSR(1),
		[]waveform.Signal{waveform.Zero()}, 2, 0.005, Trapezoidal, Options{X0: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	for k, tt := range res.Times {
		want := math.Exp(-tt)
		if math.Abs(res.X.At(0, k)-want) > 1e-4 {
			t.Fatalf("x(%g) = %g, want %g", tt, res.X.At(0, k), want)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	e, a, b := scalarCSR(1), scalarCSR(-1), scalarCSR(1)
	u := []waveform.Signal{waveform.Zero()}
	if _, err := Simulate(e, a, b, u, 0, 0.1, Trapezoidal, Options{}); err == nil {
		t.Fatal("accepted T=0")
	}
	if _, err := Simulate(e, a, b, u, 1, 2, Trapezoidal, Options{}); err == nil {
		t.Fatal("accepted h>T")
	}
	if _, err := Simulate(e, a, b, nil, 1, 0.1, Trapezoidal, Options{}); err == nil {
		t.Fatal("accepted missing inputs")
	}
	if _, err := Simulate(e, a, b, u, 1, 0.1, Method(99), Options{}); err == nil {
		t.Fatal("accepted unknown method")
	}
	if _, err := Simulate(e, a, b, u, 1, 0.1, Trapezoidal, Options{X0: []float64{1, 2}}); err == nil {
		t.Fatal("accepted wrong-length X0")
	}
}

func TestMethodString(t *testing.T) {
	if BackwardEuler.String() != "backward-euler" || Trapezoidal.String() != "trapezoidal" ||
		Gear2.String() != "gear2" || Method(7).String() == "" {
		t.Fatal("Method.String misbehaves")
	}
}

func TestSampleStateInterp(t *testing.T) {
	res := &Result{Times: []float64{0, 1, 2}, X: mat.NewDenseFrom(1, 3, []float64{0, 10, 0})}
	got := res.SampleState(0, []float64{-1, 0.5, 1.5, 3})
	want := []float64{0, 5, 5, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("SampleState = %v, want %v", got, want)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	res := rcStep(t, Trapezoidal, 0.5)
	if len(res.StateRow(0)) != len(res.Times) {
		t.Fatal("StateRow length mismatch")
	}
	if v := res.At(0); len(v) != 1 || v[0] != 0 {
		t.Fatalf("At(0) = %v, want [0]", v)
	}
}

func TestTRBDF2ConvergesSecondOrder(t *testing.T) {
	e1 := maxErrVsExp(rcStep(t, TRBDF2, 0.02))
	e2 := maxErrVsExp(rcStep(t, TRBDF2, 0.01))
	ratio := e1 / e2
	if ratio < 3.0 || ratio > 5.0 {
		t.Fatalf("TR-BDF2 halving step gave error ratio %g, want ≈4", ratio)
	}
}

// L-stability: on a very stiff decay (λ = −10⁶, h = 0.1) trapezoidal rings
// with slowly damped ±1 oscillations while TR-BDF2 crushes the transient
// immediately.
func TestTRBDF2LStability(t *testing.T) {
	stiff := scalarCSR(-1e6)
	u := []waveform.Signal{waveform.Zero()}
	opts := Options{X0: []float64{1}}
	trap, err := Simulate(scalarCSR(1), stiff, scalarCSR(1), u, 1, 0.1, Trapezoidal, opts)
	if err != nil {
		t.Fatal(err)
	}
	trb, err := Simulate(scalarCSR(1), stiff, scalarCSR(1), u, 1, 0.1, TRBDF2, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := 3 // after three steps
	if math.Abs(trap.X.At(0, k)) < 0.9 {
		t.Fatalf("expected trapezoidal ringing ≈±1, got %g", trap.X.At(0, k))
	}
	if math.Abs(trb.X.At(0, k)) > 1e-9 {
		t.Fatalf("TR-BDF2 should annihilate the stiff transient, got %g", trb.X.At(0, k))
	}
}

func TestTRBDF2MatchesOthersOnSmoothProblem(t *testing.T) {
	h := 0.01
	trb := maxErrVsExp(rcStep(t, TRBDF2, h))
	trap := maxErrVsExp(rcStep(t, Trapezoidal, h))
	// Same order; constants within a small factor of each other.
	if trb > 5*trap {
		t.Fatalf("TR-BDF2 error %g ≫ trapezoidal %g", trb, trap)
	}
	if TRBDF2.String() != "tr-bdf2" {
		t.Fatal("String() wrong")
	}
}
