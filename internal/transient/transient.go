// Package transient implements the classical fixed-step transient analysis
// methods the paper compares OPM against in Table II: backward Euler, the
// trapezoidal rule, and Gear's second-order BDF, all for descriptor systems
// E·ẋ = A·x + B·u.
package transient

import (
	"fmt"
	"math"

	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// Method selects the integration rule.
type Method int

const (
	// BackwardEuler is the first-order implicit Euler rule.
	BackwardEuler Method = iota
	// Trapezoidal is the second-order trapezoidal rule.
	Trapezoidal
	// Gear2 is Gear's second-order backward differentiation formula,
	// bootstrapped with one backward-Euler step.
	Gear2
	// TRBDF2 is the one-step composite trapezoidal/BDF2 method with
	// γ = 2−√2: second-order and L-stable, the workhorse of several
	// commercial circuit simulators. Provided as an extension beyond the
	// paper's comparison set.
	TRBDF2
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case BackwardEuler:
		return "backward-euler"
	case Trapezoidal:
		return "trapezoidal"
	case Gear2:
		return "gear2"
	case TRBDF2:
		return "tr-bdf2"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Options configures the solver.
type Options struct {
	// PivotTol is the sparse LU pivot threshold (0 → default).
	PivotTol float64
	// X0 is the initial state (nil → zero).
	X0 []float64
}

// Result holds the sampled trajectory: column k of X is the state at
// Times[k].
type Result struct {
	Times []float64
	X     *mat.Dense // n × len(Times)
}

// StateRow returns the trajectory of state i as a slice aligned with Times.
func (r *Result) StateRow(i int) []float64 { return r.X.Row(i) }

// At returns the state vector at sample k.
func (r *Result) At(k int) []float64 {
	n := r.X.Rows()
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.X.At(i, k)
	}
	return x
}

// Simulate integrates E·ẋ = A·x + B·u over [0, T] with fixed step h using
// the chosen method. It returns N+1 = round(T/h)+1 samples including t = 0.
func Simulate(e, a, b *sparse.CSR, u []waveform.Signal, T, h float64, method Method, opt Options) (*Result, error) {
	n := e.R
	if e.C != n || a.R != n || a.C != n || b.R != n {
		return nil, fmt.Errorf("transient: dimension mismatch")
	}
	if len(u) != b.C {
		return nil, fmt.Errorf("transient: system has %d inputs, got %d signals", b.C, len(u))
	}
	if T <= 0 || h <= 0 || h > T {
		return nil, fmt.Errorf("transient: invalid span T=%g, h=%g", T, h)
	}
	steps := int(T/h + 0.5)
	res := &Result{Times: make([]float64, steps+1), X: mat.NewDense(n, steps+1)}
	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, fmt.Errorf("transient: X0 has length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}
	for i, v := range x {
		res.X.Set(i, 0, v)
	}
	uAt := func(t float64) []float64 {
		v := make([]float64, len(u))
		for c, sig := range u {
			v[c] = sig(t)
		}
		return v
	}

	sopt := sparse.Options{PivotTol: opt.PivotTol}
	rhs := make([]float64, n)
	switch method {
	case BackwardEuler:
		// (E − hA)·x_{k+1} = E·x_k + h·B·u_{k+1}.
		lhs, err := sparse.Factor(sparse.Combine(1, e, -h, a), sopt)
		if err != nil {
			return nil, fmt.Errorf("transient: backward Euler matrix singular: %w", err)
		}
		for k := 1; k <= steps; k++ {
			t := float64(k) * h
			for i := range rhs {
				rhs[i] = 0
			}
			e.MulVecAdd(1, x, rhs)
			b.MulVecAdd(h, uAt(t), rhs)
			x, err = lhs.Solve(rhs)
			if err != nil {
				return nil, fmt.Errorf("transient: backward Euler step %d: %w", k, err)
			}
			setCol(res.X, k, x)
			res.Times[k] = t
		}
	case Trapezoidal:
		// (E − h/2·A)·x_{k+1} = (E + h/2·A)·x_k + h/2·B·(u_k + u_{k+1}).
		lhs, err := sparse.Factor(sparse.Combine(1, e, -h/2, a), sopt)
		if err != nil {
			return nil, fmt.Errorf("transient: trapezoidal matrix singular: %w", err)
		}
		rmat := sparse.Combine(1, e, h/2, a)
		for k := 1; k <= steps; k++ {
			t := float64(k) * h
			for i := range rhs {
				rhs[i] = 0
			}
			rmat.MulVecAdd(1, x, rhs)
			uk := uAt(t - h)
			uk1 := uAt(t)
			for c := range uk {
				uk[c] = (uk[c] + uk1[c]) * h / 2
			}
			b.MulVecAdd(1, uk, rhs)
			x, err = lhs.Solve(rhs)
			if err != nil {
				return nil, fmt.Errorf("transient: trapezoidal step %d: %w", k, err)
			}
			setCol(res.X, k, x)
			res.Times[k] = t
		}
	case Gear2:
		// (3/2·E − hA)·x_{k+1} = 2E·x_k − 1/2·E·x_{k−1} + h·B·u_{k+1}.
		lhs, err := sparse.Factor(sparse.Combine(1.5, e, -h, a), sopt)
		if err != nil {
			return nil, fmt.Errorf("transient: Gear matrix singular: %w", err)
		}
		be, err := sparse.Factor(sparse.Combine(1, e, -h, a), sopt)
		if err != nil {
			return nil, fmt.Errorf("transient: Gear bootstrap matrix singular: %w", err)
		}
		xPrev := append([]float64(nil), x...)
		for k := 1; k <= steps; k++ {
			t := float64(k) * h
			for i := range rhs {
				rhs[i] = 0
			}
			if k == 1 {
				e.MulVecAdd(1, x, rhs)
				b.MulVecAdd(h, uAt(t), rhs)
				xNext, err := be.Solve(rhs)
				if err != nil {
					return nil, fmt.Errorf("transient: Gear bootstrap step %d: %w", k, err)
				}
				xPrev, x = x, xNext
			} else {
				e.MulVecAdd(2, x, rhs)
				e.MulVecAdd(-0.5, xPrev, rhs)
				b.MulVecAdd(h, uAt(t), rhs)
				xNext, err := lhs.Solve(rhs)
				if err != nil {
					return nil, fmt.Errorf("transient: Gear step %d: %w", k, err)
				}
				xPrev, x = x, xNext
			}
			setCol(res.X, k, x)
			res.Times[k] = t
		}
	case TRBDF2:
		// Stage 1 (trapezoidal over γh) then stage 2 (BDF2 over the rest):
		//   (E − γh/2·A)·x_γ = (E + γh/2·A)·x_k + γh/2·B·(u_k + u_γ)
		//   (E − β·h·A)·x_{k+1} = c₁·E·x_γ − c₂·E·x_k + β·h·B·u_{k+1}
		// with γ = 2−√2, β = (1−γ)/(2−γ), c₁ = 1/(γ(2−γ)),
		// c₂ = (1−γ)²/(γ(2−γ)).
		gamma := 2 - math.Sqrt2
		beta := (1 - gamma) / (2 - gamma)
		c1 := 1 / (gamma * (2 - gamma))
		c2 := (1 - gamma) * (1 - gamma) / (gamma * (2 - gamma))
		lhs1, err := sparse.Factor(sparse.Combine(1, e, -gamma*h/2, a), sopt)
		if err != nil {
			return nil, fmt.Errorf("transient: TR-BDF2 stage-1 matrix singular: %w", err)
		}
		lhs2, err := sparse.Factor(sparse.Combine(1, e, -beta*h, a), sopt)
		if err != nil {
			return nil, fmt.Errorf("transient: TR-BDF2 stage-2 matrix singular: %w", err)
		}
		rmat := sparse.Combine(1, e, gamma*h/2, a)
		for k := 1; k <= steps; k++ {
			t := float64(k) * h
			tPrev := t - h
			tGamma := tPrev + gamma*h
			for i := range rhs {
				rhs[i] = 0
			}
			rmat.MulVecAdd(1, x, rhs)
			uk := uAt(tPrev)
			ug := uAt(tGamma)
			for c := range uk {
				uk[c] = (uk[c] + ug[c]) * gamma * h / 2
			}
			b.MulVecAdd(1, uk, rhs)
			xg, err := lhs1.Solve(rhs)
			if err != nil {
				return nil, fmt.Errorf("transient: TR-BDF2 stage-1 step %d: %w", k, err)
			}
			for i := range rhs {
				rhs[i] = 0
			}
			e.MulVecAdd(c1, xg, rhs)
			e.MulVecAdd(-c2, x, rhs)
			b.MulVecAdd(beta*h, uAt(t), rhs)
			x, err = lhs2.Solve(rhs)
			if err != nil {
				return nil, fmt.Errorf("transient: TR-BDF2 stage-2 step %d: %w", k, err)
			}
			setCol(res.X, k, x)
			res.Times[k] = t
		}
	default:
		return nil, fmt.Errorf("transient: unknown method %d", int(method))
	}
	return res, nil
}

func setCol(m *mat.Dense, k int, x []float64) {
	for i, v := range x {
		m.Set(i, k, v)
	}
}

// SampleState linearly interpolates the trajectory of state i at arbitrary
// times within [0, T].
func (r *Result) SampleState(i int, times []float64) []float64 {
	out := make([]float64, len(times))
	for k, t := range times {
		out[k] = interp(r.Times, r.X.Row(i), t)
	}
	return out
}

func interp(ts, vs []float64, t float64) float64 {
	if t <= ts[0] {
		return vs[0]
	}
	last := len(ts) - 1
	if t >= ts[last] {
		return vs[last]
	}
	lo, hi := 0, last
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ts[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - ts[lo]) / (ts[hi] - ts[lo])
	return vs[lo] + frac*(vs[hi]-vs[lo])
}
