package faultinject

import (
	"math"
	"testing"
	"time"
)

func TestFailFactorAt(t *testing.T) {
	h := FailFactorAt(3, TierSparseLU)
	if !h.FactorFail(3, TierSparseLU) {
		t.Fatal("did not fail the targeted column/tier")
	}
	if h.FactorFail(3, TierDenseLU) || h.FactorFail(2, TierSparseLU) {
		t.Fatal("failed an untargeted column or tier")
	}
	all := FailFactorAt(-1)
	for tier := TierSparseLU; tier <= TierQR; tier++ {
		if !all.FactorFail(-1, tier) {
			t.Fatalf("tier %d not failed by the all-tiers hook", tier)
		}
	}
	any := FailFactorAt(AnyColumn, TierQR)
	if !any.FactorFail(0, TierQR) || !any.FactorFail(999, TierQR) {
		t.Fatal("AnyColumn did not match every column")
	}
}

func TestNaNAt(t *testing.T) {
	x := []float64{1, 2, 3}
	NaNAt(5, 1).CorruptColumn(4, x)
	if math.IsNaN(x[1]) {
		t.Fatal("corrupted the wrong column")
	}
	NaNAt(5, 1).CorruptColumn(5, x)
	if !math.IsNaN(x[1]) || math.IsNaN(x[0]) || math.IsNaN(x[2]) {
		t.Fatalf("row targeting wrong: %v", x)
	}
	y := []float64{1, 2}
	NaNAt(0, -1).CorruptColumn(0, y)
	if !math.IsNaN(y[0]) || !math.IsNaN(y[1]) {
		t.Fatalf("negative row did not poison the whole column: %v", y)
	}
	// Out-of-range row is a no-op, not a panic.
	NaNAt(0, 10).CorruptColumn(0, y)
}

func TestCompose(t *testing.T) {
	c := Compose(FailFactorAt(1), NaNAt(2, 0), nil, StallColumns(0))
	if c.FactorFail == nil || c.CorruptColumn == nil || c.ColumnDelay == nil {
		t.Fatal("Compose dropped a hook")
	}
	if c.WorkerFault != nil {
		t.Fatal("Compose invented a hook")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate hook did not panic")
		}
	}()
	Compose(FailFactorAt(1), FailFactorAt(2))
}

func TestPanicWorkerAndStall(t *testing.T) {
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		PanicWorker("boom").WorkerFault()
	}()
	start := time.Now()
	StallColumns(5 * time.Millisecond).ColumnDelay(0)
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("stall did not sleep")
	}
}
