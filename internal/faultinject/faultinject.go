// Package faultinject provides deterministic failure hooks for exercising
// the solver core's degradation paths: forced factorization failures at a
// chosen column and tier, column corruption (NaN injection), history-worker
// panics, and per-column stalls that trigger context deadlines.
//
// The hooks are plain function fields, nil by default, carried on
// core.Options. A nil Hooks pointer (the production configuration) adds a
// single pointer comparison per guarded site and no allocations; there is no
// build tag to flip and nothing to strip for release builds. Tests compose
// the constructors below or assign closures directly.
package faultinject

import (
	"math"
	"sync/atomic"
	"time"
)

// Tier indices mirror core.Tier; they are declared here as plain ints so the
// core package can depend on faultinject without a cycle.
const (
	TierSparseLU = 0
	TierDenseLU  = 1
	TierQR       = 2
	// TierSupernodal sits above TierSparseLU in the chain (tried first when
	// engaged) but carries index 3: it was appended after TierQR to keep the
	// earlier indices stable in serialized reports.
	TierSupernodal = 3
)

// Hooks is the set of injection points the solver core consults. Every field
// is optional; nil fields are skipped.
type Hooks struct {
	// FactorFail is consulted before each factorization tier is attempted,
	// with the column the factorization will serve (−1 for a factorization
	// shared by all columns, e.g. the uniform-grid leading pencil) and the
	// tier about to be tried. Returning true forces that tier to report
	// failure, pushing the solver down the degradation chain.
	FactorFail func(col, tier int) bool

	// CorruptColumn may mutate the freshly solved column x_j in place (for
	// example, writing a NaN) before the solver's non-finite guard runs.
	CorruptColumn func(col int, x []float64)

	// WorkerFault runs inside every history-engine worker task. It may panic
	// (to exercise the pool's panic recovery) or sleep.
	WorkerFault func()

	// ColumnDelay runs at the top of every column of the solve loop; use it
	// to stall the solver and trigger context deadlines.
	ColumnDelay func(col int)
}

// merge returns a Hooks combining h and o; it panics if both define the same
// hook, because composed faults firing at the same site have no well-defined
// order.
func (h *Hooks) merge(o *Hooks) *Hooks {
	out := *h
	if o.FactorFail != nil {
		if out.FactorFail != nil {
			panic("faultinject: duplicate FactorFail hook")
		}
		out.FactorFail = o.FactorFail
	}
	if o.CorruptColumn != nil {
		if out.CorruptColumn != nil {
			panic("faultinject: duplicate CorruptColumn hook")
		}
		out.CorruptColumn = o.CorruptColumn
	}
	if o.WorkerFault != nil {
		if out.WorkerFault != nil {
			panic("faultinject: duplicate WorkerFault hook")
		}
		out.WorkerFault = o.WorkerFault
	}
	if o.ColumnDelay != nil {
		if out.ColumnDelay != nil {
			panic("faultinject: duplicate ColumnDelay hook")
		}
		out.ColumnDelay = o.ColumnDelay
	}
	return &out
}

// Compose merges several Hooks into one; at most one of them may define each
// hook.
func Compose(hooks ...*Hooks) *Hooks {
	out := &Hooks{}
	for _, h := range hooks {
		if h != nil {
			out = out.merge(h)
		}
	}
	return out
}

// FailFactorAt returns hooks that fail the given tiers (all tiers when none
// are listed) for every factorization serving column col. Use col = −1 to
// target a factorization shared across columns, and AnyColumn to fail
// regardless of column.
func FailFactorAt(col int, tiers ...int) *Hooks {
	return &Hooks{FactorFail: func(c, tier int) bool {
		if c != col && col != AnyColumn {
			return false
		}
		if len(tiers) == 0 {
			return true
		}
		for _, t := range tiers {
			if t == tier {
				return true
			}
		}
		return false
	}}
}

// AnyColumn makes FailFactorAt match every column.
const AnyColumn = -1 << 30

// NaNAt returns hooks that overwrite entry row of column col with NaN. A
// negative row poisons the whole column.
func NaNAt(col, row int) *Hooks {
	nan := math.NaN()
	return &Hooks{CorruptColumn: func(c int, x []float64) {
		if c != col {
			return
		}
		if row < 0 {
			for i := range x {
				x[i] = nan
			}
			return
		}
		if row < len(x) {
			x[row] = nan
		}
	}}
}

// PanicWorker returns hooks that panic with msg inside every history-engine
// worker task.
func PanicWorker(msg string) *Hooks {
	return &Hooks{WorkerFault: func() { panic(msg) }}
}

// StallColumns returns hooks that sleep d at every column boundary, so a
// context deadline shorter than m·d is guaranteed to expire mid-solve.
func StallColumns(d time.Duration) *Hooks {
	return &Hooks{ColumnDelay: func(int) { time.Sleep(d) }}
}

// ServeHooks is the serve-layer counterpart of Hooks: deterministic
// injection points on the service's durability path (the per-job journal).
// Like Hooks, every field is nil by default and a nil *ServeHooks is the
// production configuration.
type ServeHooks struct {
	// JournalWriteFail is consulted before each journal record write with
	// the framed record's size in bytes; returning true fails the write
	// (simulating a full or failing disk), which the service must absorb by
	// degrading to in-memory checkpoints, never by crashing the job.
	JournalWriteFail func(size int) bool

	// CorruptRecord may rewrite the framed record bytes about to hit the
	// journal — flip bits, truncate — simulating torn writes and disk rot.
	// It receives a private copy and returns the bytes to write; recovery
	// must detect the damage via the CRC frame and truncate the tail.
	CorruptRecord func(frame []byte) []byte
}

// FailJournalAfter returns serve hooks that let the first n journal record
// writes succeed and fail every one after that.
func FailJournalAfter(n int) *ServeHooks {
	var count atomic.Int64
	return &ServeHooks{JournalWriteFail: func(int) bool {
		return count.Add(1) > int64(n)
	}}
}

// TornRecord returns serve hooks that truncate the rec-th written record
// (0-based) to half its framed length — a torn write that recovery must
// detect and truncate away.
func TornRecord(rec int) *ServeHooks {
	var count atomic.Int64
	return &ServeHooks{CorruptRecord: func(frame []byte) []byte {
		if count.Add(1)-1 != int64(rec) {
			return frame
		}
		return frame[:len(frame)/2]
	}}
}

// FlipBitInRecord returns serve hooks that XOR one bit into the rec-th
// written record's payload region, leaving the frame length intact — bit rot
// the CRC must catch.
func FlipBitInRecord(rec, byteOff int) *ServeHooks {
	var count atomic.Int64
	return &ServeHooks{CorruptRecord: func(frame []byte) []byte {
		if count.Add(1)-1 != int64(rec) {
			return frame
		}
		// Skip the 8-byte length+CRC header; clamp into the payload.
		off := 8 + byteOff
		if off >= len(frame) {
			off = len(frame) - 1
		}
		frame[off] ^= 0x10
		return frame
	}}
}
