// Package glet implements a Grünwald–Letnikov fixed-step time stepper for
// fractional descriptor systems E·dᵅx/dtᵅ = A·x + B·u. It serves as an
// independent time-domain cross-check for the OPM fractional solver: both
// discretize the same Riemann–Liouville/Caputo (zero initial condition)
// derivative, but through entirely different constructions.
package glet

import (
	"fmt"
	"math"

	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/specfn"
	"opmsim/internal/waveform"
)

// Result holds the sampled trajectory: column k of X is the state at
// Times[k] = (k+1)·h.
type Result struct {
	Times []float64
	X     *mat.Dense
}

// Solve integrates the fractional system with the first-order GL scheme
//
//	h^{−α}·E·Σ_{i=0..k} w_i·x_{k−i} = A·x_k + B·u_k,
//
// i.e. (w₀h^{−α}E − A)·x_k = B·u_k − h^{−α}E·Σ_{i≥1} w_i·x_{k−i}.
// The history convolution makes the total cost O(n·N²), the same asymptotic
// shape as OPM's fractional history term.
func Solve(e, a, b *sparse.CSR, u []waveform.Signal, alpha, T, h float64) (*Result, error) {
	return solve(e, a, b, u, alpha, T, h, 0)
}

// SolveShortMemory is Solve with Podlubny's short-memory principle: only the
// most recent `window` steps participate in the history convolution, cutting
// the cost from O(n·N²) to O(n·N·window) at a controlled accuracy loss (the
// truncated GL weights decay like k^{−α−1}). window ≤ 0 means full memory.
func SolveShortMemory(e, a, b *sparse.CSR, u []waveform.Signal, alpha, T, h float64, window int) (*Result, error) {
	return solve(e, a, b, u, alpha, T, h, window)
}

func solve(e, a, b *sparse.CSR, u []waveform.Signal, alpha, T, h float64, window int) (*Result, error) {
	n := e.R
	if e.C != n || a.R != n || a.C != n || b.R != n {
		return nil, fmt.Errorf("glet: dimension mismatch")
	}
	if len(u) != b.C {
		return nil, fmt.Errorf("glet: system has %d inputs, got %d signals", b.C, len(u))
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("glet: order must be positive, got %g", alpha)
	}
	if T <= 0 || h <= 0 || h > T {
		return nil, fmt.Errorf("glet: invalid span T=%g, h=%g", T, h)
	}
	steps := int(T/h + 0.5)
	w := specfn.GLWeights(alpha, steps+1)
	ha := math.Pow(h, -alpha)
	lhs, err := sparse.Factor(sparse.Combine(w[0]*ha, e, -1, a), sparse.Options{})
	if err != nil {
		return nil, fmt.Errorf("glet: leading matrix singular: %w", err)
	}
	res := &Result{Times: make([]float64, steps), X: mat.NewDense(n, steps)}
	hist := make([][]float64, 0, steps)
	rhs := make([]float64, n)
	conv := make([]float64, n)
	uv := make([]float64, len(u))
	for k := 0; k < steps; k++ {
		t := float64(k+1) * h
		for i := range conv {
			conv[i] = 0
		}
		lim := k
		if window > 0 && window < lim {
			lim = window
		}
		for i := 1; i <= lim; i++ {
			mat.Axpy(w[i], hist[k-i], conv)
		}
		for i := range rhs {
			rhs[i] = 0
		}
		for c, sig := range u {
			uv[c] = sig(t)
		}
		b.MulVecAdd(1, uv, rhs)
		e.MulVecAdd(-ha, conv, rhs)
		x, err := lhs.Solve(rhs)
		if err != nil {
			return nil, fmt.Errorf("glet: step %d solve failed: %w", k, err)
		}
		hist = append(hist, x)
		for i, v := range x {
			res.X.Set(i, k, v)
		}
		res.Times[k] = t
	}
	return res, nil
}
