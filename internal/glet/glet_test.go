package glet

import (
	"math"
	"testing"

	"opmsim/internal/sparse"
	"opmsim/internal/specfn"
	"opmsim/internal/waveform"
)

func scalarCSR(v float64) *sparse.CSR {
	c := sparse.NewCOO(1, 1)
	c.Add(0, 0, v)
	return c.ToCSR()
}

func TestGLIntegerOrderMatchesBackwardEuler(t *testing.T) {
	// α = 1 reduces GL to backward Euler: x_k = (x_{k−1} + h·u_k)/(1 + h).
	h, T := 0.01, 1.0
	res, err := Solve(scalarCSR(1), scalarCSR(-1), scalarCSR(1),
		[]waveform.Signal{waveform.Step(1, 0)}, 1, T, h)
	if err != nil {
		t.Fatal(err)
	}
	x := 0.0
	for k := range res.Times {
		x = (x + h) / (1 + h)
		if math.Abs(res.X.At(0, k)-x) > 1e-12 {
			t.Fatalf("GL α=1 step %d = %g, want backward-Euler %g", k, res.X.At(0, k), x)
		}
	}
}

func TestGLFractionalRelaxation(t *testing.T) {
	// d^½x = −x + 1: x(t) = 1 − E_½(−√t).
	h, T := 0.002, 2.0
	res, err := Solve(scalarCSR(1), scalarCSR(-1), scalarCSR(1),
		[]waveform.Signal{waveform.Step(1, 0)}, 0.5, T, h)
	if err != nil {
		t.Fatal(err)
	}
	for k := 99; k < len(res.Times); k += 200 {
		tt := res.Times[k]
		ml, err := specfn.MittagLeffler(0.5, -math.Sqrt(tt))
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - ml
		if got := res.X.At(0, k); math.Abs(got-want) > 1e-2*(1+want) {
			t.Fatalf("GL x(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestGLConvergence(t *testing.T) {
	// Halving h should roughly halve the error (first-order scheme).
	errAt := func(h float64) float64 {
		res, err := Solve(scalarCSR(1), scalarCSR(-1), scalarCSR(1),
			[]waveform.Signal{waveform.Step(1, 0)}, 0.5, 1, h)
		if err != nil {
			t.Fatal(err)
		}
		k := len(res.Times) - 1
		ml, _ := specfn.MittagLeffler(0.5, -math.Sqrt(res.Times[k]))
		return math.Abs(res.X.At(0, k) - (1 - ml))
	}
	e1, e2 := errAt(0.01), errAt(0.005)
	if ratio := e1 / e2; ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("GL convergence ratio %g, want ≈2", ratio)
	}
}

func TestGLValidation(t *testing.T) {
	u := []waveform.Signal{waveform.Zero()}
	e, a, b := scalarCSR(1), scalarCSR(-1), scalarCSR(1)
	if _, err := Solve(e, a, b, nil, 0.5, 1, 0.1); err == nil {
		t.Fatal("accepted missing inputs")
	}
	if _, err := Solve(e, a, b, u, 0, 1, 0.1); err == nil {
		t.Fatal("accepted α=0")
	}
	if _, err := Solve(e, a, b, u, 0.5, 0, 0.1); err == nil {
		t.Fatal("accepted T=0")
	}
	if _, err := Solve(e, a, b, u, 0.5, 1, 2); err == nil {
		t.Fatal("accepted h>T")
	}
	bad := sparse.NewCOO(2, 2).ToCSR()
	_ = bad
	e2 := sparse.NewCOO(2, 2)
	e2.Add(0, 0, 1)
	if _, err := Solve(e2.ToCSR(), a, b, u, 0.5, 1, 0.1); err == nil {
		t.Fatal("accepted dimension mismatch")
	}
}

func TestGLShortMemoryApproximatesFull(t *testing.T) {
	e, a, b := scalarCSR(1), scalarCSR(-1), scalarCSR(1)
	u := []waveform.Signal{waveform.Step(1, 0)}
	full, err := Solve(e, a, b, u, 0.5, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	short, err := SolveShortMemory(e, a, b, u, 0.5, 1, 0.001, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Podlubny's bound: truncation error ~ T_mem^{−α}; with T_mem = 0.2 s
	// and α = ½ that allows O(0.1) absolute deviation on an O(1) response.
	k := len(full.Times) - 1
	if d := math.Abs(full.X.At(0, k) - short.X.At(0, k)); d > 0.2 {
		t.Fatalf("short-memory deviates by %g, beyond the theoretical bound", d)
	}
	// And a tighter window deviates more (monotone memory-accuracy trade).
	tiny, err := SolveShortMemory(e, a, b, u, 0.5, 1, 0.001, 20)
	if err != nil {
		t.Fatal(err)
	}
	dShort := math.Abs(full.X.At(0, k) - short.X.At(0, k))
	dTiny := math.Abs(full.X.At(0, k) - tiny.X.At(0, k))
	if dTiny <= dShort {
		t.Fatalf("window=20 error %g not worse than window=200 error %g", dTiny, dShort)
	}
}

func TestGLShortMemoryZeroWindowIsFull(t *testing.T) {
	e, a, b := scalarCSR(1), scalarCSR(-1), scalarCSR(1)
	u := []waveform.Signal{waveform.Step(1, 0)}
	full, _ := Solve(e, a, b, u, 0.5, 0.5, 0.01)
	same, _ := SolveShortMemory(e, a, b, u, 0.5, 0.5, 0.01, 0)
	for k := range full.Times {
		if full.X.At(0, k) != same.X.At(0, k) {
			t.Fatal("window=0 should equal full memory exactly")
		}
	}
}
