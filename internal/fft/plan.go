package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// A Plan holds the precomputed tables for transforms of one fixed length n:
// the bit-reversal permutation and twiddle-factor table of the iterative
// radix-2 kernel for powers of two, the chirp and padded-kernel spectrum of
// Bluestein's algorithm otherwise, and for even n the half-length sub-plan
// driving the packed real transforms. Plans are immutable after construction
// and safe for concurrent use; PlanFor caches one per size for the life of
// the process, which is what makes the history engine's repeated
// same-size transforms cheap.
type Plan struct {
	n    int
	pow2 bool

	// Radix-2 tables (power-of-two lengths).
	perm []int32      // bit-reversal permutation
	tw   []complex128 // tw[k] = exp(−2πi·k/n), k < n/2

	// Bluestein tables (other lengths).
	chirp []complex128 // chirp[k] = exp(−πi·k²/n), k < n
	bspec []complex128 // forward FFT of the padded conj-chirp kernel
	sub   *Plan        // power-of-two convolution plan, size ≥ 2n−1

	// Packed-real tables (even lengths).
	half *Plan        // complex plan of length n/2
	rtw  []complex128 // rtw[k] = exp(−2πi·k/n), k ≤ n/2
}

var planCache sync.Map // int → *Plan

// PlanFor returns the cached transform plan for length n, building it on
// first use. Lengths ≤ 1 yield a trivial plan whose transforms are no-ops.
func PlanFor(n int) *Plan {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan)
	}
	v, _ := planCache.LoadOrStore(n, newPlan(n))
	return v.(*Plan)
}

// Prewarm builds and caches the plans for the given transform lengths (plus
// the sub-plans they recursively require). Batch solvers call it once before
// fanning scenarios across workers, so concurrent first uses of a size never
// build the same tables twice and the per-scenario critical path starts with
// every plan already cached. It is safe to call concurrently and with sizes
// that are already cached.
func Prewarm(sizes ...int) {
	for _, n := range sizes {
		if n > 0 {
			PlanFor(n)
		}
	}
}

func newPlan(n int) *Plan {
	p := &Plan{n: n}
	switch {
	case n <= 1:
		p.pow2 = true
	case n&(n-1) == 0:
		p.pow2 = true
		shift := 64 - uint(bits.TrailingZeros(uint(n)))
		p.perm = make([]int32, n)
		for i := 0; i < n; i++ {
			p.perm[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
		p.tw = make([]complex128, n/2)
		for k := range p.tw {
			p.tw[k] = cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
		}
	default:
		// Chirp exponent k² reduced mod 2n to avoid precision loss at large k.
		p.chirp = make([]complex128, n)
		for k := 0; k < n; k++ {
			kk := (int64(k) * int64(k)) % int64(2*n)
			p.chirp[k] = cmplx.Rect(1, -math.Pi*float64(kk)/float64(n))
		}
		m := 1
		for m < 2*n-1 {
			m <<= 1
		}
		p.sub = PlanFor(m)
		b := make([]complex128, m)
		for k := 0; k < n; k++ {
			b[k] = cmplx.Conj(p.chirp[k])
		}
		for k := 1; k < n; k++ {
			b[m-k] = cmplx.Conj(p.chirp[k])
		}
		p.sub.radix2(b, false)
		p.bspec = b
	}
	if n >= 2 && n%2 == 0 {
		p.half = PlanFor(n / 2)
		p.rtw = make([]complex128, n/2+1)
		for k := range p.rtw {
			p.rtw[k] = cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
		}
	}
	return p
}

// N returns the transform length the plan was built for.
func (p *Plan) N() int { return p.n }

// Forward replaces x (length N()) with its DFT,
// X[k] = Σ_t x[t]·exp(−2πi·kt/N).
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse replaces x with its inverse DFT, normalized by 1/N so that
// Inverse(Forward(x)) = x.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

// transform is the in-place transform in either direction, unnormalized (the
// inverse omits the 1/N factor, matching the internal convolution uses).
func (p *Plan) transform(x []complex128, inverse bool) {
	switch {
	case p.n <= 1:
	case p.pow2:
		p.radix2(x, inverse)
	case inverse:
		// Unnormalized IDFT(x) = conj(DFT(conj(x))).
		for i := range x {
			x[i] = cmplx.Conj(x[i])
		}
		p.bluestein(x)
		for i := range x {
			x[i] = cmplx.Conj(x[i])
		}
	default:
		p.bluestein(x)
	}
}

// radix2 is the table-driven iterative Cooley–Tukey kernel; the twiddle for
// butterfly k of a stage of span `size` is tw[k·(n/size)], conjugated for
// the inverse direction.
func (p *Plan) radix2(x []complex128, inverse bool) {
	n := p.n
	for i, j := range p.perm {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half, stride := size>>1, n/size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				w := p.tw[ti]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[k]
				b := x[k+half] * w
				x[k] = a + b
				x[k+half] = a - b
				ti += stride
			}
		}
	}
}

// bluestein evaluates the forward DFT of arbitrary length as a power-of-two
// circular convolution against the cached chirp (chirp-z transform).
func (p *Plan) bluestein(x []complex128) {
	n, m := p.n, p.sub.n
	a := GetComplex(m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	for k := n; k < m; k++ {
		a[k] = 0
	}
	p.sub.radix2(a, false)
	for i, bv := range p.bspec {
		a[i] *= bv
	}
	p.sub.radix2(a, true)
	inv := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * inv * p.chirp[k]
	}
	PutComplex(a)
}

// RealForward computes the non-redundant half spectrum of the real sequence
// x (length N()) into dst (length N()/2+1, not aliasing x):
// dst[k] = Σ_t x[t]·exp(−2πi·kt/N) for k = 0..N/2. Even lengths run one
// complex transform of half the size on the packed sequence
// z[t] = x[2t] + i·x[2t+1]; odd lengths fall back to a full complex
// transform.
func (p *Plan) RealForward(dst []complex128, x []float64) {
	n := p.n
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = complex(x[0], 0)
		return
	}
	if p.half == nil { // odd length
		buf := GetComplex(n)
		for i, v := range x {
			buf[i] = complex(v, 0)
		}
		p.transform(buf, false)
		copy(dst, buf[:n/2+1])
		PutComplex(buf)
		return
	}
	h := n / 2
	z := GetComplex(h)
	for k := 0; k < h; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	p.half.transform(z, false)
	// Unpack: with E/O the half-length DFTs of the even/odd subsequences,
	// E[k] = (Z[k]+conj(Z[h−k]))/2, O[k] = (Z[k]−conj(Z[h−k]))/(2i), and
	// X[k] = E[k] + w^k·O[k].
	for k := 0; k <= h; k++ {
		zk := z[k%h]
		zc := cmplx.Conj(z[(h-k)%h])
		even := (zk + zc) / 2
		odd := (zk - zc) / complex(0, 2)
		dst[k] = even + p.rtw[k]*odd
	}
	PutComplex(z)
}

// RealInverse recovers a real sequence from its half spectrum: given
// spec[k] = X[k] for k = 0..N/2 (the Hermitian-redundancy-free half, not
// aliasing dst), it writes the normalized length-N inverse DFT into dst.
// RealInverse(y, RealForward(s, x)) restores x up to roundoff.
func (p *Plan) RealInverse(dst []float64, spec []complex128) {
	n := p.n
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = real(spec[0])
		return
	}
	if p.half == nil { // odd length: rebuild the full Hermitian spectrum
		buf := GetComplex(n)
		copy(buf, spec[:n/2+1])
		for k := n/2 + 1; k < n; k++ {
			buf[k] = cmplx.Conj(spec[n-k])
		}
		p.transform(buf, true)
		inv := 1 / float64(n)
		for i := range dst {
			dst[i] = real(buf[i]) * inv
		}
		PutComplex(buf)
		return
	}
	// Repack: E[k] = (S[k]+conj(S[h−k]))/2, O[k] = (S[k]−conj(S[h−k]))/2·w^{−k},
	// Z[k] = E[k] + i·O[k]; the half-length inverse then interleaves back as
	// z[t] = x[2t] + i·x[2t+1].
	h := n / 2
	z := GetComplex(h)
	for k := 0; k < h; k++ {
		sk := spec[k]
		sc := cmplx.Conj(spec[h-k])
		even := (sk + sc) / 2
		odd := (sk - sc) / 2 * cmplx.Conj(p.rtw[k])
		z[k] = even + odd*complex(0, 1)
	}
	p.half.transform(z, true)
	inv := 1 / float64(h)
	for k := 0; k < h; k++ {
		dst[2*k] = real(z[k]) * inv
		dst[2*k+1] = imag(z[k]) * inv
	}
	PutComplex(z)
}

// Scratch pools shared by all transform sizes. GetComplex/GetFloat return a
// slice of exactly the requested length with arbitrary contents;
// PutComplex/PutFloat recycle it. They keep the history engine's per-row
// convolutions allocation-free in steady state.
var (
	complexPool sync.Pool
	floatPool   sync.Pool
)

// GetComplex returns a pooled []complex128 of length n (contents arbitrary).
func GetComplex(n int) []complex128 {
	//lint:ignore poolput ownership transfers to the caller; PutComplex returns the buffer
	if v := complexPool.Get(); v != nil {
		if s := v.([]complex128); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]complex128, n)
}

// PutComplex returns a slice obtained from GetComplex to the pool.
func PutComplex(s []complex128) {
	if cap(s) > 0 {
		complexPool.Put(s[:cap(s)]) //nolint:staticcheck // slice reuse is the point
	}
}

// GetFloat returns a pooled []float64 of length n (contents arbitrary).
func GetFloat(n int) []float64 {
	//lint:ignore poolput ownership transfers to the caller; PutFloat returns the buffer
	if v := floatPool.Get(); v != nil {
		if s := v.([]float64); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

// PutFloat returns a slice obtained from GetFloat to the pool.
func PutFloat(s []float64) {
	if cap(s) > 0 {
		floatPool.Put(s[:cap(s)]) //nolint:staticcheck // slice reuse is the point
	}
}
