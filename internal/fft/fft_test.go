package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naive O(n²) DFT for cross-validation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Rect(1, -2*math.Pi*float64(k*j)/float64(n))
		}
		out[k] = s
	}
	return out
}

func randomComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Power-of-two and non-power-of-two (Bluestein) lengths, including the
	// paper's N = 8 (FFT-1) and N = 100 (FFT-2).
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 25, 100} {
		x := randomComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: FFT differs from naive DFT by %g", n, d)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomComplex(rng, 16)
	orig := append([]complex128(nil), x...)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT modified its input")
		}
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	for _, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum entry %v != 1", v)
		}
	}
}

func TestFFTKnownSinusoid(t *testing.T) {
	// A pure complex exponential concentrates in one bin.
	n := 64
	x := make([]complex128, n)
	bin := 5
	for j := range x {
		x[j] = cmplx.Rect(1, 2*math.Pi*float64(bin*j)/float64(n))
	}
	X := FFT(x)
	for k := range X {
		want := complex(0, 0)
		if k == bin {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(X[k]-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, X[k], want)
		}
	}
}

// Property: IFFT(FFT(x)) = x for arbitrary lengths.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		x := randomComplex(rng, n)
		y := IFFT(FFT(x))
		return maxDiff(x, y) <= 1e-9*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval — Σ|x|² = (1/N)Σ|X|².
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(128)
		x := randomComplex(rng, n)
		X := FFT(x)
		var ex, eX float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		for i := range X {
			eX += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		eX /= float64(n)
		return math.Abs(ex-eX) <= 1e-8*(1+ex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — FFT(a·x + y) = a·FFT(x) + FFT(y).
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		x := randomComplex(rng, n)
		y := randomComplex(rng, n)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		mixed := make([]complex128, n)
		for i := range mixed {
			mixed[i] = a*x[i] + y[i]
		}
		lhs := FFT(mixed)
		fx, fy := FFT(x), FFT(y)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(a*fx[i]+fy[i])) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTReal(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := FFTReal(x)
	want := naiveDFT([]complex128{1, 2, 3, 4})
	if d := maxDiff(got, want); d > 1e-12 {
		t.Fatalf("FFTReal differs by %g", d)
	}
}

func TestFreqs(t *testing.T) {
	w, err := Freqs(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := math.Pi // 2π/T with T=2
	want := []float64{0, base, 2 * base, -base}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("Freqs[%d] = %g, want %g", i, w[i], want[i])
		}
	}
	if _, err := Freqs(0, 1); err == nil {
		t.Fatal("Freqs accepted n=0")
	}
	if _, err := Freqs(4, 0); err == nil {
		t.Fatal("Freqs accepted T=0")
	}
}

func TestFreqsOdd(t *testing.T) {
	w, err := Freqs(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := 2 * math.Pi
	want := []float64{0, base, 2 * base, -2 * base, -base}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("Freqs[%d] = %g, want %g", i, w[i], want[i])
		}
	}
}

func TestEmptyInput(t *testing.T) {
	if FFT(nil) != nil {
		t.Fatal("FFT(nil) != nil")
	}
	if IFFT(nil) != nil {
		t.Fatal("IFFT(nil) != nil")
	}
}

// Property: the packed real FFT matches the straightforward real transform
// for all lengths (even → packed path, odd → fallback).
func TestRFFTMatchesFFTRealProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a := RFFT(x)
		b := FFTReal(x)
		return maxDiff(a, b) <= 1e-9*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRFFTHermitianSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	X := RFFT(x)
	for k := 1; k < 64; k++ {
		if cmplx.Abs(X[k]-cmplx.Conj(X[64-k])) > 1e-10 {
			t.Fatalf("Hermitian symmetry violated at bin %d", k)
		}
	}
	if RFFT(nil) != nil {
		t.Fatal("RFFT(nil) != nil")
	}
}
