// Package fft implements the discrete Fourier transform used by the
// frequency-domain baseline of the paper (the "FFT-1"/"FFT-2" methods of
// Table I): an iterative radix-2 Cooley–Tukey transform for power-of-two
// lengths and Bluestein's chirp-z algorithm for arbitrary lengths — the
// paper's FFT-2 variant uses 100 sampling points, which is not a power of
// two.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the forward DFT of x:
// X[k] = Σ_n x[n]·exp(−2πi·kn/N). The input is not modified.
func FFT(x []complex128) []complex128 {
	return transform(x, false)
}

// IFFT returns the inverse DFT of x, normalized by 1/N so IFFT(FFT(x)) = x.
func IFFT(x []complex128) []complex128 {
	y := transform(x, true)
	n := complex(float64(len(y)), 0)
	for i := range y {
		y[i] /= n
	}
	return y
}

// FFTReal transforms a real sequence, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return transform(c, false)
}

// RFFT computes the DFT of a real sequence using the packed half-size
// complex transform when the length is even (roughly halving the work), and
// returns the full Hermitian spectrum. Odd lengths fall back to FFTReal.
func RFFT(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n%2 != 0 || n == 2 {
		return FFTReal(x)
	}
	half := n / 2
	z := make([]complex128, half)
	for k := 0; k < half; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	zf := transform(z, false)
	out := make([]complex128, n)
	for k := 0; k <= half; k++ {
		zk := zf[k%half]
		zc := cmplx.Conj(zf[(half-k)%half])
		even := (zk + zc) / 2
		odd := (zk - zc) / complex(0, 2)
		w := cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
		out[k] = even + w*odd
	}
	for k := half + 1; k < n; k++ {
		out[k] = cmplx.Conj(out[n-k])
	}
	return out
}

func transform(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		radix2(out, inverse)
		return out
	}
	return bluestein(out, inverse)
}

// radix2 performs an in-place iterative Cooley–Tukey FFT; len(x) must be a
// power of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	if n == 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// reducing it to a power-of-two circular convolution.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp w[k] = exp(sign·πi·k²/n). Reduce k² mod 2n to avoid precision
	// loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	inv := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * inv * chirp[k]
	}
	return out
}

// Freqs returns the angular frequencies ω_k (rad/s) associated with an
// N-point DFT over a record of duration T, in standard FFT ordering: the
// first ⌈N/2⌉ bins are non-negative frequencies k·2π/T, the remainder are the
// negative frequencies (k−N)·2π/T. These drive the per-frequency solves of
// the frequency-domain FDE baseline.
func Freqs(n int, T float64) ([]float64, error) {
	if n <= 0 || T <= 0 {
		return nil, fmt.Errorf("fft: Freqs requires positive n and T, got n=%d T=%g", n, T)
	}
	w := make([]float64, n)
	base := 2 * math.Pi / T
	for k := 0; k < n; k++ {
		kk := k
		if k > n/2 {
			kk = k - n
		}
		w[k] = float64(kk) * base
	}
	return w, nil
}
