// Package fft implements the discrete Fourier transform used by the
// frequency-domain baseline of the paper (the "FFT-1"/"FFT-2" methods of
// Table I) and by the fast-convolution history engine of internal/core: an
// iterative radix-2 Cooley–Tukey transform for power-of-two lengths and
// Bluestein's chirp-z algorithm for arbitrary lengths — the paper's FFT-2
// variant uses 100 sampling points, which is not a power of two.
//
// The free functions below allocate their results and are convenient for
// one-shot use; repeated transforms of one size should go through the cached
// Plan API (PlanFor, Plan.Forward, Plan.RealForward, …), which precomputes
// the twiddle/bit-reversal/chirp tables once per size and reuses pooled
// scratch.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT returns the forward DFT of x:
// X[k] = Σ_n x[n]·exp(−2πi·kn/N). The input is not modified.
func FFT(x []complex128) []complex128 {
	return transform(x, false)
}

// IFFT returns the inverse DFT of x, normalized by 1/N so IFFT(FFT(x)) = x.
func IFFT(x []complex128) []complex128 {
	y := transform(x, true)
	n := complex(float64(len(y)), 0)
	for i := range y {
		y[i] /= n
	}
	return y
}

// FFTReal transforms a real sequence, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	PlanFor(len(x)).transform(c, false)
	return c
}

// RFFT computes the DFT of a real sequence using the packed half-size
// complex transform when the length is even (roughly halving the work), and
// returns the full Hermitian spectrum. Odd lengths fall back to FFTReal.
func RFFT(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n%2 != 0 || n == 2 {
		return FFTReal(x)
	}
	half := n / 2
	out := make([]complex128, n)
	PlanFor(n).RealForward(out[:half+1], x)
	for k := half + 1; k < n; k++ {
		out[k] = cmplx.Conj(out[n-k])
	}
	return out
}

// transform returns a transformed copy of x through the cached plan for its
// length; the inverse direction is unnormalized (IFFT divides by N).
func transform(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	PlanFor(n).transform(out, inverse)
	return out
}

// Freqs returns the angular frequencies ω_k (rad/s) associated with an
// N-point DFT over a record of duration T, in standard FFT ordering: the
// first ⌈N/2⌉ bins are non-negative frequencies k·2π/T, the remainder are the
// negative frequencies (k−N)·2π/T. These drive the per-frequency solves of
// the frequency-domain FDE baseline.
func Freqs(n int, T float64) ([]float64, error) {
	if n <= 0 || T <= 0 {
		return nil, fmt.Errorf("fft: Freqs requires positive n and T, got n=%d T=%g", n, T)
	}
	w := make([]float64, n)
	base := 2 * math.Pi / T
	for k := 0; k < n; k++ {
		kk := k
		if k > n/2 {
			kk = k - n
		}
		w[k] = float64(kk) * base
	}
	return w, nil
}
