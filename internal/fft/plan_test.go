package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// planNaiveDFT is the O(n²) reference the plan kernels are checked against.
func planNaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Rect(1, -2*math.Pi*float64(k)*float64(t)/float64(n))
		}
		out[k] = s
	}
	return out
}

// planLengths covers radix-2, odd, prime (Bluestein), and mixed-even sizes.
var planLengths = []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 27, 64, 97, 100, 128, 255}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func randReal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestPlanForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range planLengths {
		x := randComplex(rng, n)
		want := planNaiveDFT(x)
		got := append([]complex128(nil), x...)
		PlanFor(n).Forward(got)
		for k := range want {
			if d := cmplx.Abs(got[k] - want[k]); d > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: |Δ|=%g", n, k, d)
			}
		}
	}
}

func TestPlanInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range planLengths {
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		p := PlanFor(n)
		p.Forward(y)
		p.Inverse(y)
		for i := range x {
			if d := cmplx.Abs(y[i] - x[i]); d > 1e-10*float64(n) {
				t.Fatalf("n=%d sample %d: round-trip |Δ|=%g", n, i, d)
			}
		}
	}
}

func TestPlanLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range planLengths {
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		a, b := complex(1.3, -0.4), complex(-0.7, 2.1)
		lhs := make([]complex128, n)
		for i := range lhs {
			lhs[i] = a*x[i] + b*y[i]
		}
		p := PlanFor(n)
		p.Forward(lhs)
		p.Forward(x)
		p.Forward(y)
		for k := 0; k < n; k++ {
			want := a*x[k] + b*y[k]
			if d := cmplx.Abs(lhs[k] - want); d > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: linearity |Δ|=%g", n, k, d)
			}
		}
	}
}

func TestPlanParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range planLengths {
		x := randComplex(rng, n)
		et := 0.0
		for _, v := range x {
			et += real(v)*real(v) + imag(v)*imag(v)
		}
		PlanFor(n).Forward(x)
		ef := 0.0
		for _, v := range x {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		if d := math.Abs(ef/float64(n) - et); d > 1e-9*(1+et) {
			t.Fatalf("n=%d: Parseval |Δ|=%g", n, d)
		}
	}
}

func TestPlanRealForwardMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range planLengths {
		x := randReal(rng, n)
		want := FFTReal(x)
		got := make([]complex128, n/2+1)
		PlanFor(n).RealForward(got, x)
		for k := range got {
			if d := cmplx.Abs(got[k] - want[k]); d > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: |Δ|=%g", n, k, d)
			}
		}
	}
}

func TestPlanRealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range planLengths {
		x := randReal(rng, n)
		spec := make([]complex128, n/2+1)
		back := make([]float64, n)
		p := PlanFor(n)
		p.RealForward(spec, x)
		p.RealInverse(back, spec)
		for i := range x {
			if d := math.Abs(back[i] - x[i]); d > 1e-10*float64(n) {
				t.Fatalf("n=%d sample %d: real round-trip |Δ|=%g", n, i, d)
			}
		}
	}
}

func TestPlanForCachesPerSize(t *testing.T) {
	for _, n := range []int{8, 100} {
		if PlanFor(n) != PlanFor(n) {
			t.Fatalf("PlanFor(%d) returned distinct plans", n)
		}
	}
	if got := PlanFor(96).N(); got != 96 {
		t.Fatalf("PlanFor(96).N() = %d", got)
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	// One shared plan per size, hammered from several goroutines; the race
	// detector (CI runs internal packages with -race) plus the value checks
	// guard the immutability and scratch-pool contracts.
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{64, 100} {
		x := randReal(rng, n)
		want := make([]complex128, n/2+1)
		PlanFor(n).RealForward(want, x)
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := PlanFor(n)
				got := make([]complex128, n/2+1)
				back := make([]float64, n)
				for it := 0; it < 50; it++ {
					p.RealForward(got, x)
					p.RealInverse(back, got)
					for k := range want {
						if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
							errs <- fmt.Errorf("n=%d bin %d diverged under concurrency", n, k)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

func TestScratchPools(t *testing.T) {
	s := GetFloat(33)
	if len(s) != 33 {
		t.Fatalf("GetFloat(33) length %d", len(s))
	}
	PutFloat(s)
	c := GetComplex(17)
	if len(c) != 17 {
		t.Fatalf("GetComplex(17) length %d", len(c))
	}
	PutComplex(c)
	if got := GetComplex(0); len(got) != 0 {
		t.Fatalf("GetComplex(0) length %d", len(got))
	}
}
