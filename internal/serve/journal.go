package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"opmsim/internal/core"
	"opmsim/internal/faultinject"
)

// The job journal is the service's durability layer: one append-only file
// per job under Config.JournalDir, holding the original request body and
// every checkpoint delta the solve committed. The format is built for
// crash-consistency, not density:
//
//	frame   := length(u32 LE) | crc32c(u32 LE, over payload) | payload
//	payload := 'S' start | 'C' checkpoint delta | 'D' done
//
// Every append is fsynced before the solve continues past the checkpoint
// boundary, so after a crash the journal holds a prefix of frames whose last
// one may be torn. Recovery walks frames until the first length/CRC/decode
// violation, truncates the file there (the corrupt tail is unrecoverable by
// construction — a checkpoint delta is useless without its predecessors, and
// later deltas would not apply), and resumes the job from the surviving
// prefix. A journal whose start record is damaged identifies nothing and is
// rejected whole.

const (
	journalExt  = ".opmj"
	recStart    = 'S'
	recDelta    = 'C'
	recDone     = 'D'
	frameHeader = 8
	// maxJournalRecord bounds a single frame; anything larger is treated as
	// a corrupt length field. Sized for the largest delta the service can
	// produce (MaxSteps columns × scenario cap × 8 bytes has to fit).
	maxJournalRecord = 1 << 30
)

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// errJournalWrite wraps append failures so callers can distinguish a broken
// journal (degrade to in-memory checkpoints) from programmer errors.
var errJournalWrite = errors.New("serve: journal write failed")

// jobJournal is the append handle for one job's journal file.
type jobJournal struct {
	f     *os.File
	path  string
	hooks *faultinject.ServeHooks
}

func journalPath(dir, id string) string { return filepath.Join(dir, id+journalExt) }

// createJobJournal creates the journal for a newly admitted job and durably
// writes its start record (job ID plus the verbatim request body, so a
// recovered server can rebuild the identical solve). On any failure the
// half-created file is removed — a job either has a replayable journal or
// none.
func createJobJournal(dir, id string, body []byte, hooks *faultinject.ServeHooks) (*jobJournal, error) {
	path := journalPath(dir, id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errJournalWrite, err)
	}
	jw := &jobJournal{f: f, path: path, hooks: hooks}
	payload := make([]byte, 0, 1+4+len(id)+len(body))
	payload = append(payload, recStart)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(id)))
	payload = append(payload, id...)
	payload = append(payload, body...)
	if err := jw.appendJournalRecord(payload); err != nil {
		_ = jw.f.Close()
		_ = os.Remove(path)
		return nil, err
	}
	return jw, nil
}

// openJobJournal reopens a recovered journal for appending; replayJobJournal
// has already truncated any corrupt tail, so appends continue the frame
// stream cleanly.
func openJobJournal(path string, hooks *faultinject.ServeHooks) (*jobJournal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errJournalWrite, err)
	}
	return &jobJournal{f: f, path: path, hooks: hooks}, nil
}

// appendJournalRecord frames, writes, and fsyncs one payload. The fault
// hooks run here — before and during the write — so every caller inherits
// the injected failure modes.
func (jw *jobJournal) appendJournalRecord(payload []byte) error {
	if jw.hooks != nil && jw.hooks.JournalWriteFail != nil && jw.hooks.JournalWriteFail(frameHeader+len(payload)) {
		return fmt.Errorf("%w: injected write failure", errJournalWrite)
	}
	frame := make([]byte, 0, frameHeader+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, journalCRC))
	frame = append(frame, payload...)
	if jw.hooks != nil && jw.hooks.CorruptRecord != nil {
		frame = jw.hooks.CorruptRecord(frame)
	}
	if _, err := jw.f.Write(frame); err != nil {
		return fmt.Errorf("%w: %v", errJournalWrite, err)
	}
	if err := jw.f.Sync(); err != nil {
		return fmt.Errorf("%w: fsync: %v", errJournalWrite, err)
	}
	return nil
}

// appendCheckpointDelta journals one solver checkpoint delta.
func (jw *jobJournal) appendCheckpointDelta(d *core.CheckpointDelta) error {
	return jw.appendJournalRecord(encodeCheckpointDelta(d))
}

// appendJournalDone journals the job's terminal record; kind is the typed
// error kind, or "" for success.
func (jw *jobJournal) appendJournalDone(kind string) error {
	payload := make([]byte, 0, 1+len(kind))
	payload = append(payload, recDone)
	payload = append(payload, kind...)
	return jw.appendJournalRecord(payload)
}

// closeJournal closes the file handle; the journal stays on disk for
// recovery.
func (jw *jobJournal) closeJournal() error {
	return jw.f.Close()
}

// removeJournal closes and deletes the journal — the job is complete and
// needs no recovery.
func (jw *jobJournal) removeJournal() error {
	cerr := jw.f.Close()
	if err := os.Remove(jw.path); err != nil {
		return fmt.Errorf("%w: %v", errJournalWrite, err)
	}
	return cerr
}

// encodeCheckpointDelta serializes a delta:
//
//	'C' | from to n m k (u32 LE) | T bits (u64 LE) | engLen(u8) engine |
//	k slabs of (to−from)·n float64 bits LE
func encodeCheckpointDelta(d *core.CheckpointDelta) []byte {
	cols := d.To - d.From
	size := 1 + 5*4 + 8 + 1 + len(d.Engine) + d.K*cols*d.N*8
	payload := make([]byte, 0, size)
	payload = append(payload, recDelta)
	for _, v := range [...]int{d.From, d.To, d.N, d.M, d.K} {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(v))
	}
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(d.T))
	payload = append(payload, byte(len(d.Engine)))
	payload = append(payload, d.Engine...)
	for _, slab := range d.Slabs {
		for _, v := range slab {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
		}
	}
	return payload
}

// decodeCheckpointDelta is the bounds-checked inverse of
// encodeCheckpointDelta; every length field is validated before use so
// corrupt (but CRC-colliding) or fuzzed payloads error out instead of
// panicking or allocating absurdly.
func decodeCheckpointDelta(payload []byte) (*core.CheckpointDelta, error) {
	if len(payload) < 1+5*4+8+1 || payload[0] != recDelta {
		return nil, errors.New("serve: short or mistyped delta record")
	}
	p := payload[1:]
	var hdr [5]int
	for i := range hdr {
		hdr[i] = int(binary.LittleEndian.Uint32(p))
		p = p[4:]
	}
	d := &core.CheckpointDelta{From: hdr[0], To: hdr[1], N: hdr[2], M: hdr[3], K: hdr[4]}
	d.T = math.Float64frombits(binary.LittleEndian.Uint64(p))
	p = p[8:]
	engLen := int(p[0])
	p = p[1:]
	if len(p) < engLen {
		return nil, errors.New("serve: delta engine name truncated")
	}
	d.Engine = string(p[:engLen])
	p = p[engLen:]
	cols := d.To - d.From
	if d.N <= 0 || d.K <= 0 || cols <= 0 || d.M <= 0 ||
		d.N > 1<<20 || d.K > 1<<20 || d.M > 1<<28 || d.To > d.M {
		return nil, fmt.Errorf("serve: delta header out of range (n=%d m=%d k=%d cols=%d)", d.N, d.M, d.K, cols)
	}
	// Overflow-safe size check: the payload is bounded by maxJournalRecord,
	// so reject any header whose slab volume could not fit before
	// multiplying it out.
	if cols > maxJournalRecord/8/d.N || cols*d.N > maxJournalRecord/8/d.K {
		return nil, fmt.Errorf("serve: delta header volume overflows (n=%d k=%d cols=%d)", d.N, d.K, cols)
	}
	want := d.K * cols * d.N * 8
	if len(p) != want {
		return nil, fmt.Errorf("serve: delta slab bytes = %d, want %d", len(p), want)
	}
	d.Slabs = make([][]float64, d.K)
	for s := range d.Slabs {
		//lint:ignore allocsite decoded slabs are the record's output, one allocation per scenario slab is the contract
		slab := make([]float64, cols*d.N)
		for i := range slab {
			slab[i] = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
		}
		d.Slabs[s] = slab
	}
	return d, nil
}

// journalState is the outcome of replaying one job's journal: identity, the
// original request body, the accumulated checkpoint, and whether the job had
// already finished.
type journalState struct {
	id        string
	body      []byte
	cp        *core.Checkpoint
	done      bool
	doneKind  string
	truncated int // corrupt tail bytes dropped (0 = clean)
	path      string
}

// applyRecord folds one CRC-valid payload into the state. Errors mean the
// record is semantically invalid — the caller treats it exactly like a CRC
// failure (corrupt tail) unless it is the first record.
func (st *journalState) applyRecord(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("serve: empty journal record")
	}
	switch payload[0] {
	case recStart:
		if st.id != "" {
			return errors.New("serve: duplicate start record")
		}
		if len(payload) < 1+4 {
			return errors.New("serve: short start record")
		}
		idLen := int(binary.LittleEndian.Uint32(payload[1:5]))
		if idLen <= 0 || idLen > 256 || len(payload) < 5+idLen {
			return errors.New("serve: start record id length out of range")
		}
		st.id = string(payload[5 : 5+idLen])
		st.body = append([]byte(nil), payload[5+idLen:]...)
		return nil
	case recDelta:
		if st.id == "" {
			return errors.New("serve: delta before start record")
		}
		d, err := decodeCheckpointDelta(payload)
		if err != nil {
			return err
		}
		if st.cp == nil {
			st.cp = &core.Checkpoint{}
		}
		return st.cp.ApplyCheckpoint(d)
	case recDone:
		if st.id == "" {
			return errors.New("serve: done before start record")
		}
		st.done = true
		st.doneKind = string(payload[1:])
		return nil
	default:
		return fmt.Errorf("serve: unknown journal record type %q", payload[0])
	}
}

// replayJobJournal reads one journal file frame by frame, stopping at the
// first torn, CRC-damaged, or semantically invalid frame. The surviving
// prefix becomes the job's recovered state and the corrupt tail is truncated
// in place; a journal with no usable start record is rejected with an error.
// The function never panics on hostile input — FuzzJournalReplay holds it to
// that.
func replayJobJournal(path string) (*journalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := &journalState{path: path}
	off := 0
	for {
		if off+frameHeader > len(data) {
			break // torn frame header
		}
		ln := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if ln <= 0 || ln > maxJournalRecord || off+frameHeader+ln > len(data) {
			break // corrupt length or torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+ln]
		if crc32.Checksum(payload, journalCRC) != crc {
			break // bit rot
		}
		if err := st.applyRecord(payload); err != nil {
			if st.id == "" {
				return nil, fmt.Errorf("serve: journal %s: %w", filepath.Base(path), err)
			}
			break // semantically corrupt tail
		}
		off += frameHeader + ln
	}
	if st.id == "" {
		return nil, fmt.Errorf("serve: journal %s has no valid start record", filepath.Base(path))
	}
	st.truncated = len(data) - off
	if st.truncated > 0 {
		if err := os.Truncate(path, int64(off)); err != nil {
			return nil, fmt.Errorf("%w: truncating corrupt tail: %v", errJournalWrite, err)
		}
	}
	return st, nil
}

// recoverJournalDir replays every journal in dir in name order. Journals of
// finished jobs are deleted; unreadable or start-damaged journals are
// renamed aside (".rejected") so they stop matching the journal glob but
// stay available for post-mortems. The returned states are the incomplete
// jobs to re-admit.
func recoverJournalDir(dir string) (states []*journalState, rejected int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), journalExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		st, rerr := replayJobJournal(path)
		if rerr != nil {
			rejected++
			_ = os.Rename(path, path+".rejected")
			continue
		}
		if st.done {
			_ = os.Remove(path)
			continue
		}
		states = append(states, st)
	}
	return states, rejected, nil
}
