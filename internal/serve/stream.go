package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"opmsim/internal/core"
)

// The stream is newline-delimited JSON (application/x-ndjson): one header
// record, one record per solved column, and exactly one terminal record
// ("done" on success, "error" on failure). encoding/json formats each float64
// with Go's shortest round-trip representation, so parsing a streamed value
// back recovers the exact bit pattern the solver committed — the property the
// streaming-conformance suite asserts against offline SolveBatch.

// headerRecord opens the stream: what is being solved and how the column
// records are laid out.
type headerRecord struct {
	Type      string    `json:"type"` // "header"
	Title     string    `json:"title,omitempty"`
	Job       string    `json:"job,omitempty"`  // registry ID — the resume handle
	From      int       `json:"from,omitempty"` // first column this stream carries
	States    []string  `json:"states"`
	Steps     int       `json:"steps"`
	TStop     float64   `json:"tstop"`
	Scenarios int       `json:"scenarios"`
	Scales    []float64 `json:"scales"`
}

// columnRecord carries one BPF column: X[s][i] is streamed state i of
// scenario s at column J (midpoint time T).
type columnRecord struct {
	Type string      `json:"type"` // "column"
	J    int         `json:"j"`
	T    float64     `json:"t"`
	X    [][]float64 `json:"x"`
}

// reportRecord summarizes the solver report in the "done" trailer.
type reportRecord struct {
	Factorizations int `json:"factorizations"`
	CacheHits      int `json:"cacheHits"`
	// CacheUpdateHits counts scenarios served by Sherman–Morrison–Woodbury
	// updates against a cached nominal factorization (tolerance sweeps);
	// PencilRefactors counts perturbed scenarios past the crossover rank
	// that factored from scratch instead.
	CacheUpdateHits int    `json:"cacheUpdateHits,omitempty"`
	PencilRefactors int    `json:"pencilRefactors,omitempty"`
	CacheMisses     int    `json:"cacheMisses"`
	HistoryEngine   string `json:"historyEngine,omitempty"`
	SparseLUSolves  int    `json:"sparseLUSolves"`
	DenseLUSolves   int    `json:"denseLUSolves,omitempty"`
	QRSolves        int    `json:"qrSolves,omitempty"`
	Degraded        bool   `json:"degraded,omitempty"`
}

type doneRecord struct {
	Type    string       `json:"type"` // "done"
	Columns int          `json:"columns"`
	Report  reportRecord `json:"report"`
}

type errorRecord struct {
	Type  string `json:"type"` // "error"
	Kind  string `json:"kind"`
	Error string `json:"error"`
	// Resume handles: on an interrupted-but-resumable job, Job names the
	// registry entry and NextColumn the first column a resume would stream.
	Job        string `json:"job,omitempty"`
	Resumable  bool   `json:"resumable,omitempty"`
	NextColumn int    `json:"nextColumn,omitempty"`
}

// errKind maps the solver error taxonomy onto stable wire names.
func errKind(err error) string {
	switch {
	case errors.Is(err, core.ErrCancelled):
		return "cancelled"
	case errors.Is(err, core.ErrSingularPencil):
		return "singular-pencil"
	case errors.Is(err, core.ErrIllConditioned):
		return "ill-conditioned"
	case errors.Is(err, core.ErrNonFinite):
		return "non-finite"
	case errors.Is(err, core.ErrNonConvergence):
		return "non-convergence"
	}
	return "internal"
}

// streamWriter serializes records to the response, flushing after each one so
// columns reach the client as the solve commits them. The first write error
// latches: later records are dropped (the solve itself stops at the next
// column boundary via context cancellation, since a dead connection cancels
// the request context).
type streamWriter struct {
	enc   *json.Encoder
	flush func()
	err   error

	// xbuf backs the column record's per-scenario value slices so streaming a
	// state subset allocates nothing per column after the first.
	xbuf [][]float64
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	sw := &streamWriter{enc: json.NewEncoder(w), flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		sw.flush = f.Flush
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	return sw
}

// send encodes one record and flushes it out.
func (sw *streamWriter) send(rec any) {
	if sw.err != nil {
		return
	}
	if err := sw.enc.Encode(rec); err != nil {
		sw.err = err
		return
	}
	sw.flush()
}

func (sw *streamWriter) header(job *job, id string, from int) {
	sw.send(&headerRecord{
		Type:      "header",
		Title:     job.title,
		Job:       id,
		From:      from,
		States:    job.labels,
		Steps:     job.m,
		TStop:     job.T,
		Scenarios: len(job.scenarios),
		Scales:    job.scales,
	})
}

// column streams one solved column: cols[s] is scenario s's full state
// column (owned by the solver, valid only during this call), stateIdx the
// subset of states the client asked for.
func (sw *streamWriter) column(j int, t float64, cols [][]float64, stateIdx []int) {
	if sw.err != nil {
		return
	}
	if sw.xbuf == nil {
		sw.xbuf = make([][]float64, len(cols))
		for s := range sw.xbuf {
			sw.xbuf[s] = make([]float64, len(stateIdx))
		}
	}
	for s, col := range cols {
		dst := sw.xbuf[s]
		for k, i := range stateIdx {
			dst[k] = col[i]
		}
	}
	sw.send(&columnRecord{Type: "column", J: j, T: t, X: sw.xbuf})
}

func (sw *streamWriter) done(columns int, rep *core.SolveReport) {
	sw.send(&doneRecord{
		Type:    "done",
		Columns: columns,
		Report: reportRecord{
			Factorizations:  rep.Factorizations,
			CacheHits:       rep.FactorCacheHits,
			CacheUpdateHits: rep.FactorCacheUpdateHits,
			PencilRefactors: rep.PencilRefactors,
			CacheMisses:     rep.FactorCacheMisses,
			HistoryEngine:   rep.HistoryEngine,
			SparseLUSolves:  rep.TierSolves[core.TierSparseLU],
			DenseLUSolves:   rep.TierSolves[core.TierDenseLU],
			QRSolves:        rep.TierSolves[core.TierQR],
			Degraded:        rep.Degraded(),
		},
	})
}

// failResumable emits the terminal error record with the resume handle:
// POSTing {"job": Job, "from": NextColumn} to /v1/resume continues the
// stream. Writing may itself fail (the usual cancellation cause is a dead
// connection); that is fine — the record is a courtesy to clients that
// aborted the solve some other way, and the journal still has the handle.
func (sw *streamWriter) failResumable(err error, kind, jobID string, nextColumn int) {
	sw.send(&errorRecord{
		Type:       "error",
		Kind:       kind,
		Error:      err.Error(),
		Job:        jobID,
		Resumable:  true,
		NextColumn: nextColumn,
	})
}
