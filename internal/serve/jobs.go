package serve

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"opmsim/internal/core"
	"opmsim/internal/faultinject"
)

// jobEntry is one registered job's resilience state: the verbatim request
// body (the job's identity — reparsing it rebuilds the identical solve), the
// accumulated in-memory checkpoint, the journal handle, and the degradation
// strike count. Exactly one handler goroutine is attached to an entry at a
// time (the registry enforces it), so the solve-side fields need no finer
// locking than the entry mutex guarding attach/suspend transitions.
type jobEntry struct {
	id   string
	seq  uint64
	prio int

	mu            sync.Mutex
	body          []byte
	parsed        *job
	cp            *core.Checkpoint
	jw            *jobJournal
	jpath         string // recovered journal awaiting reopen ("" = none)
	journalBroken bool
	attached      bool
	strikes       int
	lastKind      string // terminal kind of the previous attempt ("" = none)
	fp            uint64
	fpOK          bool
}

// ensureParsed returns the entry's parsed job, reparsing the stored request
// body on first use (journal-recovered entries carry only the body).
func (e *jobEntry) ensureParsed(cfg *Config) (*job, *RequestError) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.parsed != nil {
		return e.parsed, nil
	}
	j, rerr := parseRequest(e.body, cfg)
	if rerr != nil {
		return nil, rerr
	}
	e.parsed = j
	return j, nil
}

// checkpointColumns returns the committed-column count of the in-memory
// checkpoint.
func (e *jobEntry) checkpointColumns() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cp == nil {
		return 0
	}
	return e.cp.Columns
}

// applyCheckpointDelta folds a solver delta into the entry: always into the
// in-memory checkpoint, and — while the journal is healthy — durably into
// the journal. A journal failure flips the entry to in-memory-only mode
// (resume keeps working while the process lives) and reports the error once
// per failure; it never fails the solve.
func (e *jobEntry) applyCheckpointDelta(d *core.CheckpointDelta) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cp == nil {
		e.cp = &core.Checkpoint{}
	}
	//lint:ignore lockhold in-memory column fold; the entry lock is what makes it atomic with the journal append below
	if err := e.cp.ApplyCheckpoint(d); err != nil {
		return err
	}
	if e.jw == nil || e.journalBroken {
		return nil
	}
	//lint:ignore lockhold the entry mutex is the journal's serialization point: fold and fsynced append must commit together (DESIGN §11)
	if err := e.jw.appendCheckpointDelta(d); err != nil {
		e.journalBroken = true
		//lint:ignore lockhold failure path of the serialized append; the handle must be detached before the lock is released
		_ = e.jw.closeJournal()
		e.jw = nil
		return err
	}
	return nil
}

// discardCheckpoint drops the in-memory checkpoint (ladder step 3: the
// engine switch invalidates it). The journal keeps its stale deltas; they
// are superseded the moment the restarted run checkpoints again — recovery
// applies deltas in order and a from-zero delta after an engine switch fails
// to apply, which replay treats as the journal's logical end. To keep the
// journal coherent instead, it is truncated to just the start record by
// rewriting it.
func (e *jobEntry) discardCheckpoint(dir string, hooks *faultinject.ServeHooks) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cp = nil
	if e.jw == nil || e.journalBroken {
		return
	}
	// Rewrite: remove and recreate with the same start record. Failure just
	// degrades to in-memory mode.
	//lint:ignore lockhold journal rewrite must be atomic with the checkpoint discard or a resume could replay stale deltas
	_ = e.jw.removeJournal()
	//lint:ignore lockhold second half of the atomic rewrite; see above
	jw, err := createJobJournal(dir, e.id, e.body, hooks)
	if err != nil {
		e.journalBroken = true
		e.jw = nil
		return
	}
	e.jw = jw
}

// registry tracks every resumable job by ID. Attached entries (a handler
// goroutine is streaming them) are bounded by the admission queue; suspended
// entries (interrupted, awaiting resume) are bounded by maxIdle with
// oldest-first eviction, which also bounds the journal directory.
type registry struct {
	mu      sync.Mutex
	byID    map[string]*jobEntry
	nextID  uint64
	nextSeq uint64
	maxIdle int
}

func newRegistry(maxIdle int) *registry {
	return &registry{byID: make(map[string]*jobEntry), maxIdle: maxIdle}
}

// errAttached reports an entry already claimed by another handler.
var errAttached = errors.New("serve: job is already attached to a stream")

// newEntry registers a fresh attached entry under a new ID.
func (r *registry) newEntry(body []byte, prio int) *jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.nextSeq++
	e := &jobEntry{
		id:       fmt.Sprintf("job-%06d", r.nextID),
		seq:      r.nextSeq,
		prio:     prio,
		body:     body,
		attached: true,
	}
	r.byID[e.id] = e
	return e
}

// adopt registers a journal-recovered entry (suspended). Numeric ID suffixes
// advance the ID counter so new jobs never collide with recovered ones.
func (r *registry) adopt(st *journalState, prio int) *jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[st.id]; ok {
		return nil
	}
	if num, ok := strings.CutPrefix(st.id, "job-"); ok {
		if v, err := strconv.ParseUint(num, 10, 64); err == nil && v > r.nextID {
			r.nextID = v
		}
	}
	r.nextSeq++
	e := &jobEntry{
		id:    st.id,
		seq:   r.nextSeq,
		prio:  prio,
		body:  st.body,
		cp:    st.cp,
		jpath: st.path,
	}
	r.byID[e.id] = e
	return e
}

func (r *registry) lookup(id string) *jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// attach claims a suspended entry for a resuming handler.
func (r *registry) attach(e *jobEntry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byID[e.id] != e {
		return errors.New("serve: job expired")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.attached {
		return errAttached
	}
	e.attached = true
	return nil
}

// detach returns an attached entry to the suspended pool without recording
// an attempt (admission failed before the solve started).
func (r *registry) detach(e *jobEntry) {
	e.mu.Lock()
	e.attached = false
	e.mu.Unlock()
}

// suspend parks an interrupted entry for later resume, recording the
// terminal kind and whether it counts as a degradation strike. It returns
// entries evicted to keep the suspended pool within bounds (the caller owns
// their journal cleanup).
func (r *registry) suspend(e *jobEntry, kind string, strike bool) []*jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.mu.Lock()
	e.attached = false
	e.lastKind = kind
	if strike {
		e.strikes++
	}
	e.mu.Unlock()

	var evicted []*jobEntry
	for {
		idle, oldest := 0, (*jobEntry)(nil)
		for _, o := range r.byID {
			o.mu.Lock()
			att := o.attached
			o.mu.Unlock()
			if att {
				continue
			}
			idle++
			if oldest == nil || o.seq < oldest.seq {
				oldest = o
			}
		}
		if idle <= r.maxIdle || oldest == nil {
			return evicted
		}
		delete(r.byID, oldest.id)
		evicted = append(evicted, oldest)
	}
}

// remove drops a finished entry.
func (r *registry) remove(e *jobEntry) {
	r.mu.Lock()
	delete(r.byID, e.id)
	r.mu.Unlock()
}

// jobSummary is one row of GET /v1/jobs.
type jobSummary struct {
	ID       string `json:"id"`
	State    string `json:"state"` // "running" | "suspended"
	Columns  int    `json:"columns"`
	Steps    int    `json:"steps,omitempty"`
	LastKind string `json:"lastError,omitempty"`
	Strikes  int    `json:"strikes,omitempty"`
}

// summaries lists every registered job, oldest first (sorted by registration
// sequence — map iteration order never leaks to the wire).
func (r *registry) summaries() []jobSummary {
	r.mu.Lock()
	entries := make([]*jobEntry, 0, len(r.byID))
	for _, e := range r.byID {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })

	out := make([]jobSummary, 0, len(entries))
	for _, e := range entries {
		e.mu.Lock()
		js := jobSummary{ID: e.id, State: "suspended", LastKind: e.lastKind, Strikes: e.strikes}
		if e.attached {
			js.State = "running"
		}
		if e.cp != nil {
			js.Columns = e.cp.Columns
			js.Steps = e.cp.M
		}
		e.mu.Unlock()
		out = append(out, js)
	}
	return out
}
