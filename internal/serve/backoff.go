package serve

import "sync"

// retryBackoff shapes the Retry-After hints on 429 load sheds. A fixed hint
// synchronizes every shed client's retry — the whole rejected cohort comes
// back in the same second and re-spikes the queue. Instead the hint grows
// exponentially with the shed streak (consecutive rejections with no
// admission in between) and is jittered uniformly over the upper half of the
// exponential window, so a cohort shed together spreads out over the window:
//
//	streak 1 → 1s, streak 2 → [1,2]s, streak 3 → [2,4]s, ... capped at [32,64]s.
//
// An admission resets the streak: the queue is moving again, so new sheds
// start polite.
type retryBackoff struct {
	mu     sync.Mutex
	streak int
	rng    func() uint64
	ctr    uint64
}

// backoffMaxShift caps the exponential window at 1<<6 = 64 seconds.
const backoffMaxShift = 6

// newRetryBackoff builds the shaper; rng is the jitter source (nil selects a
// deterministic splitmix64 counter stream — seeded constant, per the
// project's no-unseeded-entropy rule; the jitter's job is decorrelating the
// hints *within* a shed burst, which a counter stream does, not secrecy).
func newRetryBackoff(rng func() uint64) *retryBackoff {
	b := &retryBackoff{rng: rng}
	if b.rng == nil {
		b.rng = func() uint64 {
			b.ctr++ // guarded by b.mu at both call sites
			return splitmix64(b.ctr)
		}
	}
	return b
}

// shedSeconds records one load shed and returns the jittered Retry-After
// hint in whole seconds: uniform over [v/2, v] with v = 1<<min(streak-1, 6),
// never below 1.
func (b *retryBackoff) shedSeconds() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streak++
	shift := b.streak - 1
	if shift > backoffMaxShift {
		shift = backoffMaxShift
	}
	v := 1 << shift
	lo := (v + 1) / 2
	if lo < 1 {
		lo = 1
	}
	span := v - lo + 1
	return lo + int(b.rng()%uint64(span))
}

// admitted resets the shed streak — the queue accepted work again.
func (b *retryBackoff) admitted() {
	b.mu.Lock()
	b.streak = 0
	b.mu.Unlock()
}

// splitmix64 is the standard 64-bit mix (Steele et al.); a full-period
// bijection, so the counter stream never repeats a jitter draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
