package serve

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opmsim/internal/core"
)

// tinyDeckBody is tinyDeck without its title line, for tests that need
// distinguishable job titles over the same circuit.
const tinyDeckBody = `V1 in 0 STEP 1
R1 in n1 1k
C1 n1 0 1u
R2 n1 n2 1k
C2 n2 0 1u
.tran 1m 16m
`

// TestClientDisconnectCancelsJob covers the mid-stream cancellation contract:
// a client that walks away after a few columns must cancel the solve at the
// next column boundary (context.Canceled → core.ErrCancelled), release its
// worker slot, drain the queue back to zero, and leave the cancellation
// recorded in the job's SolveReport.
func TestClientDisconnectCancelsJob(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	// Pace the solve so the client reliably disconnects mid-stream: without
	// this, a 2048-column solve of a 3-state ladder finishes in microseconds.
	srv.columnHook = func(string, int) { time.Sleep(2 * time.Millisecond) }
	doneCh := make(chan Done, 4)
	srv.OnJobDone = func(d Done) { doneCh <- d }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	body := solveBody(tinyDeck, 2048, 2, 0.5, 1.5, "")
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}

	// Read a handful of column records to prove the stream was live, then
	// hang up mid-stream.
	rd := bufio.NewReader(resp.Body)
	for i := 0; i < 5; i++ {
		if _, err := rd.ReadBytes('\n'); err != nil {
			t.Fatalf("reading stream line %d: %v", i, err)
		}
	}
	cancel()

	var d Done
	select {
	case d = <-doneCh:
	case <-time.After(15 * time.Second):
		t.Fatal("job did not finish after client disconnect")
	}
	if !errors.Is(d.Err, core.ErrCancelled) {
		t.Fatalf("job error = %v, want core.ErrCancelled", d.Err)
	}
	if d.Report == nil || !errors.Is(d.Report.Err, core.ErrCancelled) {
		t.Fatalf("SolveReport.Err = %v, want core.ErrCancelled", d.Report.Err)
	}
	if d.Columns <= 0 || d.Columns >= 2048 {
		t.Fatalf("columns streamed = %d, want mid-stream (0 < c < 2048)", d.Columns)
	}

	// The worker slot must come back: metrics drain to idle...
	waitFor(t, func() bool {
		snap := scrapeMetrics(t, client, ts.URL)
		return snap.InFlight == 0 && snap.QueueDepth == 0 && snap.Cancelled == 1
	})
	// ...and a fresh job must run to completion on the freed slot.
	srv.columnHook = nil
	res := submit(t, client, ts.URL, solveBody(tinyDeck, 16, 1, 1, 1, ""))
	if res.status != http.StatusOK || res.done == nil {
		t.Fatalf("post-cancel job: status=%d done=%v err=%v", res.status, res.done, res.errRec)
	}
	<-doneCh // drain the second job's notification

	snap := scrapeMetrics(t, client, ts.URL)
	if snap.Cancelled != 1 || snap.Completed != 1 {
		t.Fatalf("metrics: cancelled=%d completed=%d, want 1/1", snap.Cancelled, snap.Completed)
	}
}

// TestQueuedClientDisconnectFreesQueueSlot covers cancellation while still
// waiting for admission: the waiter leaves the queue, nothing runs, and the
// queue depth returns to zero.
func TestQueuedClientDisconnectFreesQueueSlot(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	srv.columnHook = func(title string, col int) {
		if title == "blocker" && col == 0 {
			started <- struct{}{}
			<-block
		}
	}
	var titles []string
	titleCh := make(chan string, 4)
	srv.OnJobDone = func(d Done) { titleCh <- d.Title }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	blockerDeck := "blocker\n" + tinyDeckBody
	go func() {
		if _, err := submitErr(client, ts.URL, solveBody(blockerDeck, 8, 1, 1, 1, "")); err != nil {
			t.Error(err)
		}
	}()
	<-started

	// Queue a second job, then abandon it before it reaches a worker.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve",
		strings.NewReader(solveBody("queued\n"+tinyDeckBody, 8, 1, 1, 1, "")))
	if err != nil {
		t.Fatal(err)
	}
	abandoned := make(chan struct{})
	go func() {
		defer close(abandoned)
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return scrapeMetrics(t, client, ts.URL).QueueDepth == 1 })
	cancel()
	waitFor(t, func() bool { return scrapeMetrics(t, client, ts.URL).QueueDepth == 0 })
	<-abandoned

	close(block)
	waitFor(t, func() bool { return scrapeMetrics(t, client, ts.URL).Completed == 1 })
	titles = append(titles, <-titleCh)
	if len(titles) != 1 || titles[0] != "blocker" {
		t.Fatalf("finished jobs = %v: the abandoned job must never run", titles)
	}
	if snap := scrapeMetrics(t, client, ts.URL); snap.InFlight != 0 || snap.Cancelled != 0 {
		t.Fatalf("inFlight=%d cancelled=%d, want 0/0 (the waiter never became a job)", snap.InFlight, snap.Cancelled)
	}
}
