package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// A tolerance sweep over the wire: scenario 0 nominal, the rest perturbed
// and solved by SMW updates against the cached nominal factorization. The
// stream must complete, the done report must attribute the scenarios to the
// update path, and /metrics must expose the three-way cache split.
func TestToleranceSweepOverHTTP(t *testing.T) {
	srv := New(Config{Workers: 1, UpdateRankLimit: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	body := solveBody(tinyDeck, 16, 8, 1, 1, "")
	body = strings.Replace(body, `"hi": 1}`, `"hi": 1, "tol": 0.1, "seed": 7}`, 1)
	res := submit(t, client, ts.URL, body)
	if res.status != http.StatusOK || res.done == nil {
		t.Fatalf("status=%d done=%v err=%v raw=%s", res.status, res.done, res.errRec, res.rawErr)
	}
	if res.header.Scenarios != 8 {
		t.Fatalf("scenarios = %d, want 8", res.header.Scenarios)
	}
	if len(res.columns) != 16 {
		t.Fatalf("columns = %d, want 16", len(res.columns))
	}
	// 7 perturbed scenarios ride the update path; only the nominal factors.
	if res.done.Report.CacheUpdateHits != 7 || res.done.Report.PencilRefactors != 0 {
		t.Fatalf("report: updateHits=%d refactors=%d, want 7/0",
			res.done.Report.CacheUpdateHits, res.done.Report.PencilRefactors)
	}
	if res.done.Report.Factorizations != 1 {
		t.Fatalf("factorizations = %d, want 1", res.done.Report.Factorizations)
	}

	// The raw /metrics body must carry the split counter names.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1<<16)
	n, _ := resp.Body.Read(raw)
	resp.Body.Close()
	for _, key := range []string{`"cache_hit"`, `"cache_update_hit"`, `"cache_miss"`} {
		if !strings.Contains(string(raw[:n]), key) {
			t.Fatalf("/metrics body missing %s: %s", key, raw[:n])
		}
	}
	var snap Snapshot
	if err := json.Unmarshal(raw[:n], &snap); err != nil {
		t.Fatal(err)
	}
	if snap.FactorCache.UpdateHits != 7 {
		t.Fatalf("metrics cache_update_hit = %d, want 7", snap.FactorCache.UpdateHits)
	}
	if snap.FactorCache.Misses < 1 {
		t.Fatalf("metrics cache_miss = %d, want >= 1", snap.FactorCache.Misses)
	}

	// Same seed, same stream: the tolerance draws are counter-based.
	again := submit(t, client, ts.URL, body)
	if again.status != http.StatusOK || again.done == nil {
		t.Fatalf("rerun: status=%d err=%v", again.status, again.errRec)
	}
	for j := range res.columns {
		for s := range res.columns[j].X {
			for i := range res.columns[j].X[s] {
				a, b := res.columns[j].X[s][i], again.columns[j].X[s][i]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("column %d scenario %d state %d differs across identical submissions: %g vs %g", j, s, i, a, b)
				}
			}
		}
	}
	// The rerun's nominal scenario hits the cached factorization outright.
	if again.done.Report.Factorizations != 0 {
		t.Fatalf("rerun factorizations = %d, want 0 (cache hit)", again.done.Report.Factorizations)
	}
}

// Tolerance sweeps degrade gracefully: invalid tol is a 400, a netlist with
// nothing to perturb is a 422, and a forced-refactor configuration still
// completes with honest accounting.
func TestToleranceSweepValidationAndRefactor(t *testing.T) {
	srv := New(Config{Workers: 1, UpdateRankLimit: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	bad := strings.Replace(solveBody(tinyDeck, 8, 4, 1, 1, ""), `"hi": 1}`, `"hi": 1, "tol": 1.5}`, 1)
	if res := submit(t, client, ts.URL, bad); res.status != http.StatusBadRequest {
		t.Fatalf("tol=1.5 status = %d, want 400", res.status)
	}

	const rOnly = "sources only\nV1 in 0 STEP 1\n.tran 1m 8m\n"
	none := strings.Replace(solveBody(rOnly, 8, 2, 1, 1, ""), `"hi": 1}`, `"hi": 1, "tol": 0.1}`, 1)
	if res := submit(t, client, ts.URL, none); res.status != http.StatusUnprocessableEntity {
		t.Fatalf("no-perturbable status = %d, want 422 (%s)", res.status, res.rawErr)
	}

	body := strings.Replace(solveBody(tinyDeck, 8, 4, 1, 1, ""), `"hi": 1}`, `"hi": 1, "tol": 0.1}`, 1)
	res := submit(t, client, ts.URL, body)
	if res.status != http.StatusOK || res.done == nil {
		t.Fatalf("refactor sweep: status=%d err=%v", res.status, res.errRec)
	}
	if res.done.Report.CacheUpdateHits != 0 || res.done.Report.PencilRefactors != 3 {
		t.Fatalf("refactor sweep report: updateHits=%d refactors=%d, want 0/3",
			res.done.Report.CacheUpdateHits, res.done.Report.PencilRefactors)
	}
}
