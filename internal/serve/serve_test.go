package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---- shared fixtures -------------------------------------------------------
//
// The three conformance decks mirror the examples/ programs: quickstart's
// 5-section RC ladder, supercap's fractional CPE cell, and a pocket edition
// of the power-grid RLC mesh. They are plain netlists because that is the
// service's submission format.

const quickstartDeck = `quickstart rc ladder
* 5-section RC ladder (1k / 1u per section) driven by a 1 V step,
* the circuit examples/quickstart builds through netgen.RCLadder.
V1 in 0 STEP 1
R1 in n1 1k
C1 n1 0 1u
R2 n1 n2 1k
C2 n2 0 1u
R3 n2 n3 1k
C3 n3 0 1u
R4 n3 n4 1k
C4 n4 0 1u
R5 n4 n5 1k
C5 n5 0 1u
.tran 0.2m 60m
`

const supercapDeck = `supercap charging through a resistor
* 1 A charge current into the cell model: R_leak parallel CPE
* (examples/supercap); the CPE makes the history fractional (alpha = 0.7).
I1 0 cell STEP 1
Rleak cell 0 1
P1 cell 0 1 1 0.7
.tran 10m 6
`

const powergridDeck = `powergrid slice
* One rail of an RLC power grid (examples/powergrid in miniature): series
* R-L segments, decap at every node, two switching current loads.
V1 vdd 0 STEP 1
L0 vdd g1 1n
R1 g1 g2 0.05
L1 g2 g3 0.5n
R2 g3 g4 0.05
L2 g4 g5 0.5n
R3 g5 g6 0.05
C1 g1 0 2p
C2 g2 0 2p
C3 g3 0 2p
C4 g4 0 2p
C5 g5 0 2p
C6 g6 0 2p
I1 g3 0 PULSE 0 0.2 1n 0.1n 0.1n 2n
I2 g6 0 STEP 0.1 2n
.tran 10p 10n
`

// tinyDeck is the soak workload: small enough that thousands of solves fit
// under the race detector, real enough to exercise the full path.
const tinyDeck = `soak rc ladder
V1 in 0 STEP 1
R1 in n1 1k
C1 n1 0 1u
R2 n1 n2 1k
C2 n2 0 1u
.tran 1m 16m
`

// solveBody builds a /v1/solve JSON body for a deck.
func solveBody(deck string, steps, count int, lo, hi float64, extra string) string {
	b := fmt.Sprintf(`{"netlist": %s, "steps": %d, "sweep": {"count": %d, "lo": %g, "hi": %g}`,
		strconv.Quote(deck), steps, count, lo, hi)
	if extra != "" {
		b += ", " + extra
	}
	return b + "}"
}

// streamResult is one submission's decoded response.
type streamResult struct {
	status     int
	retryAfter string
	header     *headerRecord
	columns    []columnRecord
	done       *doneRecord
	errRec     *errorRecord
	rawErr     string // non-200 JSON error body
}

// submit POSTs a body and decodes the full stream (or the error response).
func submit(t *testing.T, client *http.Client, url, body string) *streamResult {
	t.Helper()
	res, err := submitErr(client, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func submitErr(client *http.Client, url, body string) (*streamResult, error) {
	resp, err := client.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := &streamResult{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	if resp.StatusCode != http.StatusOK {
		b := make([]byte, 4096)
		n, _ := resp.Body.Read(b)
		out.rawErr = string(b[:n])
		return out, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("stream line is not JSON: %v (%q)", err, line)
		}
		switch probe.Type {
		case "header":
			out.header = &headerRecord{}
			if err := json.Unmarshal(line, out.header); err != nil {
				return nil, err
			}
		case "column":
			var c columnRecord
			if err := json.Unmarshal(line, &c); err != nil {
				return nil, err
			}
			out.columns = append(out.columns, c)
		case "done":
			out.done = &doneRecord{}
			if err := json.Unmarshal(line, out.done); err != nil {
				return nil, err
			}
		case "error":
			out.errRec = &errorRecord{}
			if err := json.Unmarshal(line, out.errRec); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown stream record type %q", probe.Type)
		}
	}
	return out, sc.Err()
}

// scrapeMetrics fetches and decodes /metrics.
func scrapeMetrics(t *testing.T, client *http.Client, url string) *Snapshot {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap := &Snapshot{}
	if err := json.NewDecoder(resp.Body).Decode(snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// ---- request decoding ------------------------------------------------------

func TestParseRequestErrors(t *testing.T) {
	cfg := Config{}.withDefaults()
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{"netlist": `, 400},
		{"empty netlist", `{"netlist": "  "}`, 400},
		{"unparsable netlist", `{"netlist": "t\nR1 a\n"}`, 400},
		{"no span", `{"netlist": "t\nR1 a b 1k\nC1 b 0 1u\nV1 a 0 STEP 1\n"}`, 400},
		{"bad steps", solveBody(tinyDeck, -3, 1, 1, 1, ""), 400},
		{"steps over limit", solveBody(tinyDeck, 1<<20, 1, 1, 1, ""), 400},
		{"sweep over limit", solveBody(tinyDeck, 16, 1<<20, 1, 1, ""), 400},
		{"non-finite sweep", `{"netlist": ` + strconv.Quote(tinyDeck) + `, "sweep": {"count": 2, "lo": 1e400, "hi": 2}}`, 400},
		{"bad history", solveBody(tinyDeck, 16, 1, 1, 1, `"history": "turbo"`), 400},
		{"bad priority", solveBody(tinyDeck, 16, 1, 1, 1, `"priority": "urgent"`), 400},
		{"unknown node", solveBody(tinyDeck, 16, 1, 1, 1, `"nodes": ["nope"]`), 400},
		{"nonlinear netlist", `{"netlist": "diode\nV1 a 0 STEP 1\nR1 a b 1k\nD1 b 0 1e-12\n.tran 1m 16m\n"}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job, rerr := parseRequest([]byte(tc.body), &cfg)
			if rerr == nil {
				t.Fatalf("parseRequest accepted %q (job %+v)", tc.body, job)
			}
			if rerr.Status != tc.status {
				t.Fatalf("status = %d (%s), want %d", rerr.Status, rerr.Msg, tc.status)
			}
		})
	}
}

func TestParseRequestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	job, rerr := parseRequest([]byte(`{"netlist": `+strconv.Quote(tinyDeck)+`}`), &cfg)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if job.m != 16 {
		t.Fatalf("m = %d, want 16 (from .tran)", job.m)
	}
	if job.T != 16e-3 {
		t.Fatalf("T = %g, want 16e-3 (from .tran)", job.T)
	}
	if len(job.scenarios) != 1 || len(job.scales) != 1 || job.scales[0] != 1 {
		t.Fatalf("default sweep: scales = %v, want [1]", job.scales)
	}
	if job.prio != prioNormal {
		t.Fatalf("default priority = %d, want normal", job.prio)
	}
	if len(job.stateIdx) != len(job.mna.StateNames) {
		t.Fatalf("default state selection: %d of %d states", len(job.stateIdx), len(job.mna.StateNames))
	}
}

func TestValueAcceptsSpiceSuffixes(t *testing.T) {
	var req Request
	if err := json.Unmarshal([]byte(`{"netlist": "x", "tstop": "10m", "sweep": {"count": 2, "lo": "0.5", "hi": 2}}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.TStop.V != 10e-3 {
		t.Fatalf("tstop = %g, want 10e-3", req.TStop.V)
	}
	if req.Sweep.Lo.V != 0.5 || req.Sweep.Hi.V != 2 {
		t.Fatalf("sweep = %g:%g, want 0.5:2", req.Sweep.Lo.V, req.Sweep.Hi.V)
	}
	if err := json.Unmarshal([]byte(`{"tstop": "10xyz"}`), &req); err == nil {
		t.Fatal("bad suffix accepted")
	}
}

// ---- admission queue -------------------------------------------------------

func TestQueueGrantsByPriorityFIFO(t *testing.T) {
	q := newQueue(1, 8)
	if err := q.acquire(context.Background(), prioNormal); err != nil {
		t.Fatal(err)
	}
	// Three waiters: low, normal, high — grant order must be high, normal, low.
	order := make(chan string, 3)
	var wg sync.WaitGroup
	start := func(name string, prio int) {
		wg.Add(1)
		ready := make(chan struct{})
		go func() {
			defer wg.Done()
			close(ready)
			if err := q.acquire(context.Background(), prio); err != nil {
				t.Error(err)
				return
			}
			order <- name
		}()
		<-ready
		// Wait until the waiter is actually enqueued before adding the next.
		for i := 0; q.Depth() < 1 && i < 1000; i++ {
			time.Sleep(time.Millisecond)
		}
	}
	start("low", prioLow)
	for i := 0; q.Depth() != 1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	start("normal", prioNormal)
	for i := 0; q.Depth() != 2 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	start("high", prioHigh)
	for i := 0; q.Depth() != 3 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	want := []string{"high", "normal", "low"}
	for _, w := range want {
		q.release() // hand the slot to the next waiter
		got := <-order
		if got != w {
			t.Fatalf("grant order: got %s, want %s", got, w)
		}
	}
	wg.Wait()
	q.release()
	if q.Depth() != 0 {
		t.Fatalf("depth = %d after drain, want 0", q.Depth())
	}
}

func TestQueueRejectsWhenFull(t *testing.T) {
	q := newQueue(1, 1)
	if err := q.acquire(context.Background(), prioNormal); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.acquire(context.Background(), prioNormal) }()
	for i := 0; q.Depth() != 1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := q.acquire(context.Background(), prioNormal); err != errQueueFull {
		t.Fatalf("third acquire: got %v, want errQueueFull", err)
	}
	q.release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	q.release()
}

func TestQueueCancelledWaiterLeaves(t *testing.T) {
	q := newQueue(1, 4)
	if err := q.acquire(context.Background(), prioNormal); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- q.acquire(ctx, prioNormal) }()
	for i := 0; q.Depth() != 1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled acquire: got %v, want context.Canceled", err)
	}
	for i := 0; q.Depth() != 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if q.Depth() != 0 {
		t.Fatalf("depth = %d after cancellation, want 0", q.Depth())
	}
	q.release()
	// The banked slot must still be grantable.
	if err := q.acquire(context.Background(), prioNormal); err != nil {
		t.Fatal(err)
	}
	q.release()
}

// ---- HTTP behaviour --------------------------------------------------------

func TestBackpressure429(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	srv.columnHook = func(title string, col int) {
		if title == "soak rc ladder" && col == 0 {
			started <- struct{}{}
			<-block
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	body := solveBody(tinyDeck, 8, 1, 1, 1, "")
	results := make(chan *streamResult, 2)
	go func() {
		r, err := submitErr(client, ts.URL, body)
		if err != nil {
			t.Error(err)
		}
		results <- r
	}()
	<-started // first job holds the only worker slot

	go func() {
		r, err := submitErr(client, ts.URL, body)
		if err != nil {
			t.Error(err)
		}
		results <- r
	}()
	waitFor(t, func() bool { return scrapeMetrics(t, client, ts.URL).QueueDepth == 1 })

	// Queue full: the third submission must shed with 429 + Retry-After.
	rejected := submit(t, client, ts.URL, body)
	if rejected.status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", rejected.status, rejected.rawErr)
	}
	if rejected.retryAfter == "" {
		t.Fatal("429 response has no Retry-After header")
	}
	if snap := scrapeMetrics(t, client, ts.URL); snap.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Rejected)
	}

	close(block)
	for i := 0; i < 2; i++ {
		if r := <-results; r.status != http.StatusOK || r.done == nil {
			t.Fatalf("admitted job failed: status=%d done=%v err=%v", r.status, r.done, r.errRec)
		}
	}
	waitFor(t, func() bool {
		snap := scrapeMetrics(t, client, ts.URL)
		return snap.InFlight == 0 && snap.QueueDepth == 0 && snap.Completed == 2
	})
}

func TestPriorityOrderingOverHTTP(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8})
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	var mu sync.Mutex
	var startOrder []string
	srv.columnHook = func(title string, col int) {
		if col != 0 {
			return
		}
		mu.Lock()
		startOrder = append(startOrder, title)
		mu.Unlock()
		if title == "blocker" {
			started <- struct{}{}
			<-block
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	blockerDeck := strings.Replace(tinyDeck, "soak rc ladder", "blocker", 1)
	lowDeck := strings.Replace(tinyDeck, "soak rc ladder", "low job", 1)
	highDeck := strings.Replace(tinyDeck, "soak rc ladder", "high job", 1)

	var wg sync.WaitGroup
	launch := func(deck, prio string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := submitErr(client, ts.URL, solveBody(deck, 8, 1, 1, 1, `"priority": "`+prio+`"`))
			if err != nil || r.status != http.StatusOK || r.done == nil {
				t.Errorf("%s job failed: %v status=%d", prio, err, r.status)
			}
		}()
	}
	launch(blockerDeck, "normal")
	<-started
	launch(lowDeck, "low")
	waitFor(t, func() bool { return scrapeMetrics(t, client, ts.URL).QueueDepth == 1 })
	launch(highDeck, "high")
	waitFor(t, func() bool { return scrapeMetrics(t, client, ts.URL).QueueDepth == 2 })

	close(block)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"blocker", "high job", "low job"}
	if len(startOrder) != 3 || startOrder[0] != want[0] || startOrder[1] != want[1] || startOrder[2] != want[2] {
		t.Fatalf("start order = %v, want %v", startOrder, want)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if r := submit(t, client, ts.URL, `{"netlist": }`); r.status != 400 {
		t.Fatalf("malformed JSON: status %d, want 400", r.status)
	}
	nl := `{"netlist": "diode\nV1 a 0 STEP 1\nR1 a b 1k\nD1 b 0 1e-12\n.tran 1m 16m\n"}`
	if r := submit(t, client, ts.URL, nl); r.status != 422 {
		t.Fatalf("nonlinear netlist: status %d, want 422", r.status)
	}
	resp, err := client.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
	if snap := scrapeMetrics(t, client, ts.URL); snap.BadRequests != 2 {
		t.Fatalf("badRequests = %d, want 2", snap.BadRequests)
	}
}

// waitFor polls cond for up to ~5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// ---- metrics ---------------------------------------------------------------

func TestMetricsLatencyPercentiles(t *testing.T) {
	m := newMetrics()
	for i := 1; i <= 100; i++ {
		m.observeLatency(time.Duration(i) * time.Millisecond)
	}
	snap := m.snapshot(0, 4, 16)
	if snap.Latency.Count != 100 {
		t.Fatalf("count = %d, want 100", snap.Latency.Count)
	}
	if snap.Latency.P50Milli < 49 || snap.Latency.P50Milli > 51 {
		t.Fatalf("p50 = %g ms, want ~50", snap.Latency.P50Milli)
	}
	if snap.Latency.P99Milli < 98 || snap.Latency.P99Milli > 100 {
		t.Fatalf("p99 = %g ms, want ~99", snap.Latency.P99Milli)
	}
	// Overflow the ring: the window must hold the most recent samples only.
	for i := 0; i < latencyWindow+50; i++ {
		m.observeLatency(time.Second)
	}
	snap = m.snapshot(0, 4, 16)
	if snap.Latency.Count != latencyWindow {
		t.Fatalf("count = %d after overflow, want %d", snap.Latency.Count, latencyWindow)
	}
	if snap.Latency.P50Milli != 1000 {
		t.Fatalf("p50 = %g ms after overflow, want 1000", snap.Latency.P50Milli)
	}
}
