package serve

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/faultinject"
)

// fakeClock is a mutable injected clock for deadline and breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// ---- deadline expiry --------------------------------------------------------

// TestDeadlineSuspendsResumable runs a paced job under a short per-request
// deadline: the stream must end with a typed resumable "deadline" error, and
// resuming must finish the job (the second attempt runs unpaced, inside a
// fresh budget, on a checkpoint interval halved by the strike).
func TestDeadlineSuspendsResumable(t *testing.T) {
	srv := New(Config{Workers: 1, CheckpointEvery: 4})
	var expired atomic.Bool
	srv.columnHook = func(string, int) {
		if !expired.Load() {
			time.Sleep(3 * time.Millisecond)
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := solveBody(tinyDeck, 64, 1, 1, 1, `"deadline": 0.04`)
	res := submit(t, ts.Client(), ts.URL, body)
	if res.status != 200 {
		t.Fatalf("status = %d (%s)", res.status, res.rawErr)
	}
	if res.errRec == nil || res.errRec.Kind != "deadline" || !res.errRec.Resumable {
		t.Fatalf("trailer = %+v, want resumable kind=deadline", res.errRec)
	}
	if res.errRec.Job == "" || res.errRec.NextColumn != len(res.columns) {
		t.Fatalf("trailer handle = %q/%d with %d columns received",
			res.errRec.Job, res.errRec.NextColumn, len(res.columns))
	}
	snap := scrapeMetrics(t, ts.Client(), ts.URL)
	if snap.Resilience.DeadlineExpiries != 1 || snap.Resilience.Suspended != 1 {
		t.Fatalf("metrics: deadlineExpiries=%d suspended=%d, want 1/1",
			snap.Resilience.DeadlineExpiries, snap.Resilience.Suspended)
	}

	expired.Store(true)
	_, rest, errRec, done := resumeStream(t, ts.Client(), ts.URL, res.errRec.Job, res.errRec.NextColumn)
	if errRec != nil || !done {
		t.Fatalf("resume after deadline: err=%+v done=%v", errRec, done)
	}
	if len(res.columns)+len(rest) != 64 {
		t.Fatalf("combined columns = %d, want 64", len(res.columns)+len(rest))
	}
}

// TestDeadlineClockSkew drives the deadline off an injected clock that jumps
// far forward between the budget computation's two reads — the chaos
// harness's skewed-clock scenario. The job must expire immediately but stay
// typed and resumable, not hang or fail untyped.
func TestDeadlineClockSkew(t *testing.T) {
	clk := newFakeClock()
	var reads atomic.Int64
	skewed := func() time.Time {
		// Second read (the budget conversion) observes a clock 1 hour ahead.
		if reads.Add(1) == 2 {
			clk.Advance(time.Hour)
		}
		return clk.Now()
	}
	srv := New(Config{Workers: 1, DefaultDeadline: 50 * time.Millisecond, Clock: skewed})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res := submit(t, ts.Client(), ts.URL, solveBody(tinyDeck, 32, 1, 1, 1, ""))
	if res.status != 200 {
		t.Fatalf("status = %d (%s)", res.status, res.rawErr)
	}
	if res.errRec == nil || res.errRec.Kind != "deadline" || !res.errRec.Resumable {
		t.Fatalf("trailer = %+v, want resumable kind=deadline", res.errRec)
	}
}

// ---- circuit breaker --------------------------------------------------------

func TestBreakerUnit(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(2, 10*time.Second, clk.Now)
	const fp = 0xdead

	if !b.allow(fp) {
		t.Fatal("fresh breaker should allow")
	}
	if b.onResult(fp, true) {
		t.Fatal("first fault must not trip")
	}
	if tripped := b.onResult(fp, true); !tripped {
		t.Fatal("second fault must trip")
	}
	if b.allow(fp) {
		t.Fatal("open breaker allowed traffic")
	}
	clk.Advance(11 * time.Second)
	if !b.allow(fp) {
		t.Fatal("breaker did not half-open after cooldown")
	}
	// Half-open + fault → re-open immediately.
	if !b.onResult(fp, true) {
		t.Fatal("half-open fault must re-trip")
	}
	if b.allow(fp) {
		t.Fatal("re-opened breaker allowed traffic")
	}
	clk.Advance(11 * time.Second)
	// Half-open + success → fully closed, count forgotten.
	b.onResult(fp, false)
	if !b.allow(fp) {
		t.Fatal("closed breaker rejected traffic")
	}
	if b.onResult(fp, true) {
		t.Fatal("count was not reset by the success")
	}

	// A nil breaker (disabled) is permissive.
	var nb *breaker
	if !nb.allow(fp) || nb.onResult(fp, true) {
		t.Fatal("nil breaker must be a no-op")
	}
}

// TestBreakerOverHTTP trips the breaker with repeated injected non-finite
// faults against one pencil, checks the 422 fast-fail, then closes it again
// through cooldown + success.
func TestBreakerOverHTTP(t *testing.T) {
	clk := newFakeClock()
	var failures atomic.Int64
	fault := &faultinject.Hooks{CorruptColumn: func(col int, x []float64) {
		if col == 2 && failures.Add(1) <= 2 {
			x[0] = math.NaN()
		}
	}}
	srv := New(Config{
		Workers: 1, Clock: clk.Now, Fault: fault,
		BreakerThreshold: 2, BreakerCooldown: 30 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := solveBody(tinyDeck, 16, 1, 1, 1, "")

	for i := 0; i < 2; i++ {
		res := submit(t, ts.Client(), ts.URL, body)
		if res.errRec == nil || res.errRec.Kind != "non-finite" {
			t.Fatalf("attempt %d trailer = %+v, want non-finite", i, res.errRec)
		}
	}
	// Breaker open: same pencil fast-fails with 422 before admission.
	res := submit(t, ts.Client(), ts.URL, body)
	if res.status != 422 || !strings.Contains(res.rawErr, "circuit breaker") {
		t.Fatalf("open breaker: status=%d body=%q", res.status, res.rawErr)
	}
	snap := scrapeMetrics(t, ts.Client(), ts.URL)
	if snap.Resilience.BreakerTrips < 1 || snap.Resilience.BreakerFastFails != 1 {
		t.Fatalf("metrics: trips=%d fastFails=%d", snap.Resilience.BreakerTrips, snap.Resilience.BreakerFastFails)
	}

	// A different pencil is unaffected.
	other := submit(t, ts.Client(), ts.URL, solveBody(quickstartDeck, 16, 1, 1, 1, ""))
	if other.done == nil {
		t.Fatalf("unrelated pencil was blocked: %+v %s", other.errRec, other.rawErr)
	}

	// Cooldown passes → half-open; the fault has burned out, so the solve
	// succeeds and the breaker closes.
	clk.Advance(31 * time.Second)
	res = submit(t, ts.Client(), ts.URL, body)
	if res.done == nil {
		t.Fatalf("half-open probe failed: %+v %s", res.errRec, res.rawErr)
	}
	res = submit(t, ts.Client(), ts.URL, body)
	if res.done == nil {
		t.Fatal("breaker did not close after the half-open success")
	}
}

// ---- degradation ladder -----------------------------------------------------

func TestPlanForLadder(t *testing.T) {
	cp := &core.Checkpoint{Columns: 40, Engine: "fft"}
	cases := []struct {
		strikes int
		every   int
		panel   int
		history core.HistoryMode
		resume  bool
		dropped bool
	}{
		{0, 32, 0, core.HistoryFFT, true, false},
		{1, 16, 0, core.HistoryFFT, true, false},
		{2, 8, 1, core.HistoryFFT, true, false},
		{3, 4, 1, core.HistoryExact, false, true},
		{8, 1, 1, core.HistoryExact, false, true},
	}
	for _, tc := range cases {
		p := planFor(tc.strikes, 32, core.HistoryFFT, cp)
		if p.checkpointEvery != tc.every || p.panelWidth != tc.panel || p.history != tc.history ||
			(p.resume != nil) != tc.resume || p.droppedResume != tc.dropped {
			t.Fatalf("planFor(%d) = %+v, want every=%d panel=%d history=%v resume=%v dropped=%v",
				tc.strikes, p, tc.every, tc.panel, tc.history, tc.resume, tc.dropped)
		}
	}
	// Exact-engine checkpoints survive every rung: no engine switch needed.
	ecp := &core.Checkpoint{Columns: 40, Engine: "exact"}
	if p := planFor(5, 32, core.HistoryExact, ecp); p.resume == nil || p.droppedResume {
		t.Fatalf("exact checkpoint dropped by the ladder: %+v", p)
	}
	// No checkpoint → nothing to resume or drop.
	if p := planFor(3, 32, core.HistoryFFT, nil); p.resume != nil || p.droppedResume {
		t.Fatalf("phantom resume: %+v", p)
	}
}

// ---- retry backoff ----------------------------------------------------------

func TestRetryBackoffJitterBounds(t *testing.T) {
	// Injected RNG: cycle through values; the hint must stay within
	// [v/2, v] for v = 1<<min(streak-1, 6) regardless of the draw.
	var draw atomic.Uint64
	b := newRetryBackoff(func() uint64 { return draw.Add(0x9e37) })
	wantMax := []int{1, 2, 4, 8, 16, 32, 64, 64, 64}
	for i, vmax := range wantMax {
		got := b.shedSeconds()
		lo := (vmax + 1) / 2
		if got < lo || got > vmax {
			t.Fatalf("streak %d: hint %d outside [%d, %d]", i+1, got, lo, vmax)
		}
	}
	b.admitted()
	if got := b.shedSeconds(); got != 1 {
		t.Fatalf("post-admission hint = %d, want 1", got)
	}

	// The default RNG (counter splitmix64) actually jitters: at streak 7 the
	// window is [32, 64]; over many draws both halves must appear.
	d := newRetryBackoff(nil)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		d.mu.Lock()
		d.streak = 6 // next shed lands at streak 7
		d.mu.Unlock()
		seen[d.shedSeconds()] = true
	}
	if len(seen) < 8 {
		t.Fatalf("default RNG produced only %d distinct hints in [32,64]: %v", len(seen), seen)
	}
}

// TestBackpressureRetryAfterGrows holds the queue full and verifies the 429
// Retry-After hints grow with the shed streak instead of staying pinned at 1.
func TestBackpressureRetryAfterGrows(t *testing.T) {
	fixed := uint64(0) // rng → lo end of every window, deterministic
	srv := New(Config{Workers: 1, QueueDepth: 1, RetryRNG: func() uint64 { return fixed }})
	block := make(chan struct{})
	srv.columnHook = func(string, int) { <-block }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer close(block)

	body := solveBody(tinyDeck, 16, 1, 1, 1, "")
	// Fill the worker slot and the queue.
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			started <- struct{}{}
			_, _ = submitErr(ts.Client(), ts.URL, body)
		}()
	}
	<-started
	<-started
	time.Sleep(50 * time.Millisecond) // let both reach the queue

	var hints []string
	for i := 0; i < 3; i++ {
		res, err := submitErr(ts.Client(), ts.URL, body)
		if err != nil {
			t.Fatal(err)
		}
		if res.status != 429 {
			t.Fatalf("shed %d: status = %d", i, res.status)
		}
		hints = append(hints, res.retryAfter)
	}
	// Windows for streaks 1..3 with rng=0: 1, 1, 2.
	if hints[0] != "1" || hints[1] != "1" || hints[2] != "2" {
		t.Fatalf("Retry-After progression = %v, want [1 1 2]", hints)
	}
}

// ---- latency ring edge cases ------------------------------------------------

func TestLatencyRingEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		m := newMetrics()
		snap := m.snapshot(0, 1, 1)
		if snap.Latency.Count != 0 || snap.Latency.P50Milli != 0 || snap.Latency.P99Milli != 0 {
			t.Fatalf("empty ring snapshot = %+v", snap.Latency)
		}
	})
	t.Run("single-sample", func(t *testing.T) {
		m := newMetrics()
		m.observeLatency(42 * time.Millisecond)
		snap := m.snapshot(0, 1, 1)
		if snap.Latency.Count != 1 || snap.Latency.P50Milli != 42 || snap.Latency.P99Milli != 42 {
			t.Fatalf("single-sample percentiles = %+v", snap.Latency)
		}
	})
	t.Run("wraparound", func(t *testing.T) {
		m := newMetrics()
		// Overfill the ring: the first latencyWindow samples are huge, the
		// last latencyWindow are 1ms..1024ms. Only the recent window should
		// survive — p50 must come from the small values.
		for i := 0; i < latencyWindow; i++ {
			m.observeLatency(time.Hour)
		}
		for i := 1; i <= latencyWindow; i++ {
			m.observeLatency(time.Duration(i) * time.Millisecond)
		}
		snap := m.snapshot(0, 1, 1)
		if snap.Latency.Count != latencyWindow {
			t.Fatalf("count = %d, want %d", snap.Latency.Count, latencyWindow)
		}
		if snap.Latency.P50Milli > float64(latencyWindow) {
			t.Fatalf("p50 = %vms: evicted samples leaked into the window", snap.Latency.P50Milli)
		}
		if snap.Latency.P99Milli > float64(latencyWindow) {
			t.Fatalf("p99 = %vms: evicted samples leaked into the window", snap.Latency.P99Milli)
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		m := newMetrics()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					m.observeLatency(time.Duration(g*500+i) * time.Microsecond)
					if i%100 == 0 {
						_ = m.snapshot(0, 1, 1)
					}
				}
			}(g)
		}
		wg.Wait()
		snap := m.snapshot(0, 1, 1)
		if snap.Latency.Count != latencyWindow {
			t.Fatalf("count after concurrent fill = %d, want %d", snap.Latency.Count, latencyWindow)
		}
	})
}

// TestRegistryEviction fills the suspended pool past MaxResumable and
// verifies oldest-first eviction with journal cleanup.
func TestRegistryEviction(t *testing.T) {
	reg := newRegistry(2)
	var entries []*jobEntry
	for i := 0; i < 4; i++ {
		e := reg.newEntry([]byte(fmt.Sprintf("body-%d", i)), prioNormal)
		entries = append(entries, e)
	}
	// Suspend all four; after each suspension the idle pool is trimmed to 2.
	var evicted []*jobEntry
	for _, e := range entries {
		evicted = append(evicted, reg.suspend(e, "cancelled", false)...)
	}
	if len(evicted) != 2 {
		t.Fatalf("evicted %d entries, want 2", len(evicted))
	}
	if evicted[0] != entries[0] || evicted[1] != entries[1] {
		t.Fatal("eviction order is not oldest-first")
	}
	if reg.lookup(entries[0].id) != nil || reg.lookup(entries[3].id) == nil {
		t.Fatal("registry contents after eviction are wrong")
	}
}
