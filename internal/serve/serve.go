// Package serve wraps the batched OPM solve engine in a long-running,
// stdlib-only net/http JSON service. Clients POST a netlist plus a scenario
// sweep to /v1/solve and receive the waveform back incrementally, one JSON
// line per solved column, as the column-by-column operational-matrix solve
// produces it — the paper's triangular column recursion is what makes the
// workload naturally streamable.
//
// The service's scaling levers mirror the batch engine's (DESIGN.md §10):
//
//   - One process-wide shared core.FactorCache serves every job, so
//     concurrent tenants solving the same circuit pencil reuse a single
//     factorization instead of each paying their own; the /metrics endpoint
//     reports the hit rate.
//   - Admission runs through a bounded priority job queue: at most Workers
//     jobs solve concurrently, at most QueueDepth more wait (high before
//     normal before low, FIFO within a class), and past that the service
//     sheds load with 429 + Retry-After instead of queueing unboundedly.
//   - Request contexts are wired through SolveBatchCtx, so a client that
//     disconnects mid-stream cancels its solve at the next column boundary
//     and frees its worker slot immediately.
//
// Streaming format (Content-Type application/x-ndjson, one JSON object per
// line): a "header" record naming the streamed states and scenario scales,
// one "column" record per BPF column carrying every scenario's state values
// at that column, and a terminal "done" record (solver report summary) or
// "error" record (typed kind, e.g. "cancelled"). Column values are encoded
// with Go's shortest round-trip float formatting, so a decoded stream is
// bitwise-identical to the offline SolveBatch waveform — the conformance
// suite in this package holds the service to exactly that.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/faultinject"
)

// Config sizes the service. The zero value of every field selects a sensible
// default, so serve.New(serve.Config{}) is a working server.
type Config struct {
	// Workers is the number of jobs solving concurrently (0 → GOMAXPROCS).
	Workers int
	// QueueDepth is the number of admitted jobs that may wait for a worker
	// slot before submissions are rejected with 429 (0 → 64).
	QueueDepth int
	// CacheCap is the process-wide factor-cache capacity in pencils (0 → 64).
	CacheCap int
	// SolveWorkers is Options.Workers for each job's solve (0 → 1: with
	// Workers jobs running concurrently the service is already saturated at
	// the job level, so per-solve fan-out would only oversubscribe; results
	// are bitwise-identical for any value).
	SolveWorkers int
	// MaxSteps caps the per-request BPF grid size m (0 → 1<<17).
	MaxSteps int
	// MaxScenarios caps the per-request sweep cardinality K (0 → 1024).
	MaxScenarios int
	// UpdateRankLimit tunes the Sherman–Morrison–Woodbury crossover for
	// component-tolerance sweeps (core.BatchOptions.UpdateRankLimit): 0
	// measures the break-even rank per pencil family, >0 pins it, <0 forces
	// refactorization.
	UpdateRankLimit int
	// MaxBodyBytes caps the request body (0 → 1 MiB).
	MaxBodyBytes int64
	// Clock supplies the latency metrics' timestamps and the deadline and
	// breaker reference times. nil → time.Now (assigned as a function value;
	// determinism-sensitive callers such as tests inject a fake — a skewed
	// clock is also the chaos harness's deadline-skew hook).
	Clock func() time.Time
	// JournalDir, when non-empty, enables the durable job journal: every
	// admitted job appends fsynced checkpoint records to
	// JournalDir/<id>.opmj, and New replays the directory to re-admit
	// incomplete jobs after a restart. Empty disables journaling; jobs stay
	// resumable in memory while the process lives.
	JournalDir string
	// MaxResumable bounds the suspended (interrupted, awaiting resume) job
	// pool; beyond it the oldest suspended job — and its journal — is
	// evicted (0 → 64). This is what keeps the journal directory bounded.
	MaxResumable int
	// CheckpointEvery is the checkpoint interval in columns (0 → 32); the
	// degradation ladder halves it per strike. Every interrupted job also
	// checkpoints its committed tail regardless of the interval.
	CheckpointEvery int
	// DefaultDeadline is the per-job wall-clock budget, measured from
	// worker-slot grant, for jobs that do not set their own (0 → none). On
	// expiry the job suspends with kind "deadline" and stays resumable.
	DefaultDeadline time.Duration
	// BreakerThreshold is the consecutive pencil-fault count that opens the
	// per-pencil circuit breaker (0 → 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fast-fails matching
	// submissions before half-opening (0 → 30s).
	BreakerCooldown time.Duration
	// RetryRNG is the 429 Retry-After jitter source (nil → deterministic
	// splitmix64 counter stream; tests inject fixed values).
	RetryRNG func() uint64
	// Fault carries solver-level fault-injection hooks applied to every
	// job's solve (nil in production).
	Fault *faultinject.Hooks
	// ServeFault carries journal-level fault-injection hooks (nil in
	// production).
	ServeFault *faultinject.ServeHooks
}

// withDefaults returns cfg with every zero field resolved.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = 64
	}
	if cfg.SolveWorkers <= 0 {
		cfg.SolveWorkers = 1
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 1 << 17
	}
	if cfg.MaxScenarios <= 0 {
		cfg.MaxScenarios = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MaxResumable <= 0 {
		cfg.MaxResumable = 64
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 32
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	return cfg
}

// Done summarizes one finished job for the OnJobDone observability hook.
type Done struct {
	// Title is the submitted netlist's title line.
	Title string
	// Priority is the job's admission class ("high", "normal", "low").
	Priority string
	// Scenarios is the sweep cardinality K.
	Scenarios int
	// Columns is the number of columns actually streamed.
	Columns int
	// Report is the job's solver report; Report.Err carries the terminal
	// error (errors.Is(Report.Err, core.ErrCancelled) after a client
	// disconnect).
	Report *core.SolveReport
	// Err is the job's terminal error, nil on success (same value as
	// Report.Err).
	Err error
	// Duration is the wall-clock time from worker-slot grant to completion.
	Duration time.Duration

	// sw is the job's stream writer; finishJob emits the terminal record on
	// it after classification.
	sw *streamWriter
}

// Server is the simulation service: an http.Handler exposing POST /v1/solve,
// POST /v1/resume, GET /v1/jobs, GET /metrics, and GET /healthz. Create it
// with New; it spawns no goroutines of its own while serving (jobs run on
// their request's handler goroutine, throttled by the admission queue;
// journal recovery happens synchronously inside New; Drain spawns one
// transient waiter), so shutting down the enclosing http.Server drains it.
type Server struct {
	cfg     Config
	cache   *core.FactorCache
	q       *queue
	met     *metrics
	mux     *http.ServeMux
	reg     *registry
	brk     *breaker
	bo      *retryBackoff
	journal bool // journaling healthy (dir exists and is writable)

	draining    atomic.Bool
	drainCtx    context.Context
	drainCancel context.CancelFunc
	jobsWG      sync.WaitGroup

	// OnJobDone, when non-nil, is invoked after every job that reached a
	// worker slot, success or failure. Set it before serving traffic; it must
	// be safe for concurrent use (jobs finish on concurrent handler
	// goroutines).
	OnJobDone func(Done)

	// columnHook is a test seam invoked before each column record is
	// streamed, identified by the deck title; the soak/cancel tests use it to
	// pace or block a solve mid-stream. Set before serving traffic.
	columnHook func(title string, col int)
}

// New builds a Server from cfg (zero fields take defaults; see Config). With
// JournalDir set, New synchronously replays the journal directory: finished
// journals are deleted, damaged ones renamed aside, and incomplete jobs
// re-registered as suspended — a reconnecting client resumes them by ID from
// the last durable checkpoint.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: core.NewFactorCache(cfg.CacheCap),
		q:     newQueue(cfg.Workers, cfg.QueueDepth),
		met:   newMetrics(),
		mux:   http.NewServeMux(),
		reg:   newRegistry(cfg.MaxResumable),
		bo:    newRetryBackoff(cfg.RetryRNG),
	}
	if cfg.BreakerThreshold > 0 {
		s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock)
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			s.met.incJournalFailure()
		} else if states, rejected, err := recoverJournalDir(cfg.JournalDir); err != nil {
			s.met.incJournalFailure()
		} else {
			s.journal = true
			s.met.addJournalRejected(int64(rejected))
			for _, st := range states {
				if s.reg.adopt(st, prioNormal) != nil {
					s.met.incRecovered()
				}
			}
		}
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/resume", s.handleResume)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Drain puts the server into drain mode: new submissions and resumes are
// rejected with 503, every in-flight solve is cancelled at its next column
// boundary (committing a final checkpoint delta first, so the work is
// resumable — durably, when journaling is on), and Drain blocks until the
// jobs have unwound or ctx expires. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainCancel()
	idle := make(chan struct{})
	go func() { s.jobsWG.Wait(); close(idle) }()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// ServeHTTP dispatches to the service's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Cache exposes the process-wide factor cache (for tests and diagnostics).
func (s *Server) Cache() *core.FactorCache { return s.cache }

// writeJSONError sends a JSON error body with the given HTTP status.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "status": status})
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the service counters as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.met.snapshot(s.q.Depth(), s.cfg.Workers, s.cfg.QueueDepth)
	hits, updateHits, misses := s.cache.Stats()
	snap.FactorCache.Hits = hits
	snap.FactorCache.UpdateHits = updateHits
	snap.FactorCache.Misses = misses
	snap.FactorCache.Entries = s.cache.Len()
	if total := hits + updateHits + misses; total > 0 {
		snap.FactorCache.HitRate = float64(hits+updateHits) / float64(total)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(snap)
}

// handleSolve is the submission endpoint: decode and validate, check the
// circuit breaker, register the job, pass admission, then solve and stream.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.incSubmitted()
	if s.draining.Load() {
		s.met.incRejected()
		writeJSONError(w, http.StatusServiceUnavailable, "server is draining; retry against a healthy instance")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.met.incBadRequest()
		writeJSONError(w, http.StatusRequestEntityTooLarge, "request body exceeds limit")
		return
	}
	job, rerr := parseRequest(body, &s.cfg)
	if rerr != nil {
		s.met.incBadRequest()
		writeJSONError(w, rerr.Status, rerr.Error())
		return
	}

	// Circuit breaker: submissions whose pencil fingerprint has repeatedly
	// faulted fast-fail before consuming a queue slot.
	fp, fpErr := core.PencilFingerprint(job.mna.Sys, job.m, job.T)
	fpOK := fpErr == nil
	if fpOK && !s.brk.allow(fp) {
		s.met.incBreakerFastFail()
		writeJSONError(w, http.StatusUnprocessableEntity,
			"circuit breaker open: this pencil faulted repeatedly; retry after the cooldown")
		return
	}
	s.executeJob(w, r, job, body, nil, 0, fp, fpOK)
}

// resumeRequest is the POST /v1/resume body: the job ID from the original
// stream's header (or error trailer) and the first column the client still
// needs — its Last-Column + 1.
type resumeRequest struct {
	Job  string `json:"job"`
	From int    `json:"from"`
}

// handleResume reattaches a client to an interrupted job: columns the
// checkpoint already holds replay from memory bit-for-bit, and the solve
// restarts from the checkpoint boundary, not from scratch.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.met.incRejected()
		writeJSONError(w, http.StatusServiceUnavailable, "server is draining; retry against a healthy instance")
		return
	}
	var rr resumeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<12)).Decode(&rr); err != nil {
		s.met.incBadRequest()
		writeJSONError(w, http.StatusBadRequest, "invalid resume request: "+err.Error())
		return
	}
	entry := s.reg.lookup(rr.Job)
	if entry == nil {
		s.met.incBadRequest()
		writeJSONError(w, http.StatusNotFound, fmt.Sprintf("unknown or expired job %q; resubmit the request", rr.Job))
		return
	}
	job, rerr := entry.ensureParsed(&s.cfg)
	if rerr != nil {
		s.met.incBadRequest()
		writeJSONError(w, rerr.Status, "recovered job no longer parses: "+rerr.Error())
		return
	}
	if rr.From < 0 || rr.From > job.m {
		s.met.incBadRequest()
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("from=%d outside the job's %d-column grid", rr.From, job.m))
		return
	}
	fp, fpErr := core.PencilFingerprint(job.mna.Sys, job.m, job.T)
	fpOK := fpErr == nil
	if fpOK && !s.brk.allow(fp) {
		s.met.incBreakerFastFail()
		writeJSONError(w, http.StatusUnprocessableEntity,
			"circuit breaker open: this pencil faulted repeatedly; retry after the cooldown")
		return
	}
	if err := s.reg.attach(entry); err != nil {
		s.met.incBadRequest()
		status := http.StatusConflict
		if !errors.Is(err, errAttached) {
			status = http.StatusNotFound
		}
		writeJSONError(w, status, err.Error())
		return
	}
	s.met.incResumed()
	s.executeJob(w, r, job, nil, entry, rr.From, fp, fpOK)
}

// handleJobs lists registered jobs — the ops view of what is resumable.
func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"jobs": s.reg.summaries()})
}

// executeJob runs the shared admission → solve → classify pipeline for fresh
// submissions (entry nil, body set) and resumes (entry attached, from set).
func (s *Server) executeJob(w http.ResponseWriter, r *http.Request, job *job, body []byte, entry *jobEntry, from int, fp uint64, fpOK bool) {
	// The job context merges three cancellation sources: the client
	// connection, drain mode, and — once a slot is granted — the wall-clock
	// deadline. Queued waiters honor drain too, so a drain empties the wait
	// queue instead of letting it trickle into slots.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.drainCtx, cancel)
	defer stopAfter()

	if err := s.q.acquire(ctx, job.prio); err != nil {
		if entry != nil {
			s.reg.detach(entry)
		}
		switch {
		case errors.Is(err, errQueueFull):
			s.met.incRejected()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.bo.shedSeconds()))
			writeJSONError(w, http.StatusTooManyRequests,
				fmt.Sprintf("job queue is full (%d running, %d waiting); retry later", s.cfg.Workers, s.cfg.QueueDepth))
		case s.draining.Load() && r.Context().Err() == nil:
			s.met.incRejected()
			writeJSONError(w, http.StatusServiceUnavailable, "server is draining; retry against a healthy instance")
		}
		return
	}
	defer s.q.release()
	s.bo.admitted()
	s.met.startJob()
	defer s.met.endJob()
	s.jobsWG.Add(1)
	defer s.jobsWG.Done()

	if entry == nil {
		entry = s.registerJob(job, body)
	}
	entry.mu.Lock()
	entry.fp, entry.fpOK = fp, fpOK
	strikes := entry.strikes
	// A resumed entry's journal was closed at suspension (possibly by a
	// previous process); reopen it so this attempt's checkpoints append to the
	// same file.
	if s.journal && entry.jw == nil && !entry.journalBroken && entry.jpath != "" {
		//lint:ignore lockhold reopen must be fenced by the entry lock or two resume attempts could attach two descriptors to one journal
		if jw, err := openJobJournal(entry.jpath, s.cfg.ServeFault); err != nil {
			s.met.incJournalFailure()
			entry.journalBroken = true
		} else {
			entry.jw = jw
		}
	}
	entry.mu.Unlock()

	// Degradation ladder: prior strikes reshape this attempt.
	plan := planFor(strikes, s.cfg.CheckpointEvery, job.history, entry.cp)
	if plan.droppedResume {
		entry.discardCheckpoint(s.cfg.JournalDir, s.cfg.ServeFault)
	}

	// Deadline: wall-clock budget from slot grant, measured on the injected
	// clock so skew is testable. context.WithDeadline compares against real
	// time, so convert the budget, not the instant.
	dctx := ctx
	deadline := job.deadline
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	deadlineSet := deadline > 0
	if deadlineSet {
		var dcancel context.CancelFunc
		expiry := s.cfg.Clock().Add(deadline)
		dctx, dcancel = context.WithTimeout(ctx, expiry.Sub(s.cfg.Clock()))
		defer dcancel()
	}

	start := s.cfg.Clock()
	done, columns := s.runJob(dctx, w, job, entry, from, plan)
	done.Duration = s.cfg.Clock().Sub(start)
	s.met.observeLatency(done.Duration)
	s.finishJob(w, r, done, entry, columns, dctx, deadlineSet, fp, fpOK)
}

// finishJob classifies a job's terminal state, updates the breaker and the
// registry, emits the terminal stream record, and fires OnJobDone.
func (s *Server) finishJob(w http.ResponseWriter, r *http.Request, done Done, entry *jobEntry, columns int, dctx context.Context, deadlineSet bool, fp uint64, fpOK bool) {
	sw := done.sw
	switch {
	case done.Err == nil:
		s.met.incCompleted()
		if fpOK {
			s.brk.onResult(fp, false)
		}
		s.finishEntry(entry)
		sw.done(columns, done.Report)
	case errors.Is(done.Err, core.ErrCancelled):
		kind := "cancelled"
		strike := false
		switch {
		case deadlineSet && errors.Is(dctx.Err(), context.DeadlineExceeded) && r.Context().Err() == nil && !s.draining.Load():
			kind = "deadline"
			strike = true
			s.met.incDeadlineExpired()
		case s.draining.Load() && r.Context().Err() == nil:
			kind = "draining"
		}
		s.met.incCancelled()
		s.suspendEntry(entry, kind, strike)
		sw.failResumable(done.Err, kind, entry.id, columns)
	default:
		kind := errKind(done.Err)
		s.met.incFailed()
		if fpOK && s.brk.onResult(fp, breakerFault(done.Err)) {
			s.met.incBreakerTrip()
		}
		s.suspendEntry(entry, kind, true)
		sw.failResumable(done.Err, kind, entry.id, columns)
	}
	if s.OnJobDone != nil {
		s.OnJobDone(done)
	}
}

// registerJob creates the registry entry (and journal) for a fresh
// submission.
func (s *Server) registerJob(job *job, body []byte) *jobEntry {
	e := s.reg.newEntry(body, job.prio)
	e.parsed = job
	if s.journal {
		jw, err := createJobJournal(s.cfg.JournalDir, e.id, body, s.cfg.ServeFault)
		if err != nil {
			s.met.incJournalFailure()
			e.journalBroken = true
		} else {
			e.jw = jw
		}
	}
	return e
}

// finishEntry retires a completed job: journal a done record, delete the
// journal, drop the registry entry.
func (s *Server) finishEntry(e *jobEntry) {
	// Detach the journal under the lock, write outside it: the job is done,
	// so no checkpoint append can race the detach, and the fsync latency of
	// the done record must not stall readers of the entry.
	e.mu.Lock()
	jw := e.jw
	broken := e.journalBroken
	e.jw = nil
	e.mu.Unlock()
	if jw != nil && !broken {
		if err := jw.appendJournalDone(""); err != nil {
			s.met.incJournalFailure()
		}
		if err := jw.removeJournal(); err != nil {
			s.met.incJournalFailure()
		}
	}
	s.reg.remove(e)
}

// suspendEntry parks an interrupted job for resume and evicts overflow from
// the suspended pool (removing evicted journals so the directory stays
// bounded).
func (s *Server) suspendEntry(e *jobEntry, kind string, strike bool) {
	// Keep the file but release the descriptor; a resume (possibly in a
	// future process) reopens it. As in finishEntry, detach under the lock
	// and close outside it — the interrupted handler is the only writer.
	e.mu.Lock()
	var jw *jobJournal
	if e.jw != nil && !e.journalBroken {
		jw = e.jw
		e.jpath = e.jw.path
		e.jw = nil
	}
	e.mu.Unlock()
	if jw != nil {
		if err := jw.closeJournal(); err != nil {
			s.met.incJournalFailure()
		}
	}
	s.met.incSuspended()
	for _, ev := range s.reg.suspend(e, kind, strike) {
		s.met.incEvicted()
		ev.mu.Lock()
		if ev.jw != nil {
			//lint:ignore lockhold eviction fences a concurrent resume reattach with the entry lock; the entry is suspended so nobody streams under it
			_ = ev.jw.removeJournal()
			ev.jw = nil
		} else if ev.jpath != "" {
			_ = os.Remove(ev.jpath)
		}
		ev.mu.Unlock()
	}
}

// runJob executes one admitted job on the calling goroutine, streaming
// columns to w as the batch solve commits them. For resumes, columns
// [from, committed) replay bit-for-bit from the in-memory checkpoint before
// the solve continues at the checkpoint boundary. The terminal record is the
// caller's (finishJob) responsibility.
func (s *Server) runJob(ctx context.Context, w http.ResponseWriter, job *job, entry *jobEntry, from int, plan degradedPlan) (Done, int) {
	rep := &core.SolveReport{}
	sw := newStreamWriter(w)
	sw.header(job, entry.id, from)

	columns := from
	if cp := plan.resume; cp != nil && from < cp.Columns {
		n := len(job.mna.StateNames)
		bufs := make([][]float64, len(job.scenarios))
		for sidx := range bufs {
			bufs[sidx] = make([]float64, n)
		}
		h := job.T / float64(job.m)
		for j := from; j < cp.Columns; j++ {
			// Honor cancellation at column granularity, same as the solver:
			// the batch solve below sees the cancelled ctx and produces the
			// terminal record through the usual path.
			if ctx.Err() != nil {
				break
			}
			for sidx := range bufs {
				if err := cp.StateColumn(bufs[sidx], sidx, j, job.scenarios[sidx].X0); err != nil {
					sw.err = err
					break
				}
			}
			tj := (float64(j) + 0.5) * h
			if s.columnHook != nil {
				s.columnHook(job.title, j)
			}
			sw.column(j, tj, bufs, job.stateIdx)
			columns = j + 1
		}
	}

	opts := core.BatchOptions{
		Options: core.Options{
			Workers:     s.cfg.SolveWorkers,
			HistoryMode: plan.history,
			Report:      rep,
			FactorCache: s.cache,
			Fault:       s.cfg.Fault,
		},
		PanelWidth:      plan.panelWidth,
		CheckpointEvery: plan.checkpointEvery,
		ResumeFrom:      plan.resume,
		UpdateRankLimit: s.cfg.UpdateRankLimit,
		OnCheckpoint: func(d *core.CheckpointDelta) {
			if err := entry.applyCheckpointDelta(d); err != nil {
				s.met.incJournalFailure()
			}
		},
		OnColumn: func(col int, t float64, cols [][]float64) {
			if s.columnHook != nil {
				s.columnHook(job.title, col)
			}
			if col >= from {
				sw.column(col, t, cols, job.stateIdx)
				columns = col + 1
			}
		},
	}
	if job.hasDeltas {
		// Component-tolerance sweeps run on the parameter-varying engine,
		// which rejects resume (per-scenario pencil factors are not captured
		// by column-slab checkpoints) and never emits checkpoints.
		opts.CheckpointEvery = 0
		opts.ResumeFrom = nil
		opts.OnCheckpoint = nil
	}
	_, err := core.SolveBatchCtx(ctx, job.mna.Sys, job.scenarios, job.m, job.T, opts)
	return Done{
		Title:     job.title,
		Priority:  priorityName(job.prio),
		Scenarios: len(job.scenarios),
		Columns:   columns,
		Report:    rep,
		Err:       err,
		sw:        sw,
	}, columns
}
