// Package serve wraps the batched OPM solve engine in a long-running,
// stdlib-only net/http JSON service. Clients POST a netlist plus a scenario
// sweep to /v1/solve and receive the waveform back incrementally, one JSON
// line per solved column, as the column-by-column operational-matrix solve
// produces it — the paper's triangular column recursion is what makes the
// workload naturally streamable.
//
// The service's scaling levers mirror the batch engine's (DESIGN.md §10):
//
//   - One process-wide shared core.FactorCache serves every job, so
//     concurrent tenants solving the same circuit pencil reuse a single
//     factorization instead of each paying their own; the /metrics endpoint
//     reports the hit rate.
//   - Admission runs through a bounded priority job queue: at most Workers
//     jobs solve concurrently, at most QueueDepth more wait (high before
//     normal before low, FIFO within a class), and past that the service
//     sheds load with 429 + Retry-After instead of queueing unboundedly.
//   - Request contexts are wired through SolveBatchCtx, so a client that
//     disconnects mid-stream cancels its solve at the next column boundary
//     and frees its worker slot immediately.
//
// Streaming format (Content-Type application/x-ndjson, one JSON object per
// line): a "header" record naming the streamed states and scenario scales,
// one "column" record per BPF column carrying every scenario's state values
// at that column, and a terminal "done" record (solver report summary) or
// "error" record (typed kind, e.g. "cancelled"). Column values are encoded
// with Go's shortest round-trip float formatting, so a decoded stream is
// bitwise-identical to the offline SolveBatch waveform — the conformance
// suite in this package holds the service to exactly that.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"opmsim/internal/core"
)

// Config sizes the service. The zero value of every field selects a sensible
// default, so serve.New(serve.Config{}) is a working server.
type Config struct {
	// Workers is the number of jobs solving concurrently (0 → GOMAXPROCS).
	Workers int
	// QueueDepth is the number of admitted jobs that may wait for a worker
	// slot before submissions are rejected with 429 (0 → 64).
	QueueDepth int
	// CacheCap is the process-wide factor-cache capacity in pencils (0 → 64).
	CacheCap int
	// SolveWorkers is Options.Workers for each job's solve (0 → 1: with
	// Workers jobs running concurrently the service is already saturated at
	// the job level, so per-solve fan-out would only oversubscribe; results
	// are bitwise-identical for any value).
	SolveWorkers int
	// MaxSteps caps the per-request BPF grid size m (0 → 1<<17).
	MaxSteps int
	// MaxScenarios caps the per-request sweep cardinality K (0 → 1024).
	MaxScenarios int
	// MaxBodyBytes caps the request body (0 → 1 MiB).
	MaxBodyBytes int64
	// Clock supplies the latency metrics' timestamps. nil → time.Now
	// (assigned as a function value; determinism-sensitive callers such as
	// tests inject a fake).
	Clock func() time.Time
}

// withDefaults returns cfg with every zero field resolved.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = 64
	}
	if cfg.SolveWorkers <= 0 {
		cfg.SolveWorkers = 1
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 1 << 17
	}
	if cfg.MaxScenarios <= 0 {
		cfg.MaxScenarios = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// Done summarizes one finished job for the OnJobDone observability hook.
type Done struct {
	// Title is the submitted netlist's title line.
	Title string
	// Priority is the job's admission class ("high", "normal", "low").
	Priority string
	// Scenarios is the sweep cardinality K.
	Scenarios int
	// Columns is the number of columns actually streamed.
	Columns int
	// Report is the job's solver report; Report.Err carries the terminal
	// error (errors.Is(Report.Err, core.ErrCancelled) after a client
	// disconnect).
	Report *core.SolveReport
	// Err is the job's terminal error, nil on success (same value as
	// Report.Err).
	Err error
	// Duration is the wall-clock time from worker-slot grant to completion.
	Duration time.Duration
}

// Server is the simulation service: an http.Handler exposing POST /v1/solve,
// GET /metrics, and GET /healthz. Create it with New; it spawns no goroutines
// of its own (jobs run on their request's handler goroutine, throttled by the
// admission queue), so shutting down the enclosing http.Server drains it.
type Server struct {
	cfg   Config
	cache *core.FactorCache
	q     *queue
	met   *metrics
	mux   *http.ServeMux

	// OnJobDone, when non-nil, is invoked after every job that reached a
	// worker slot, success or failure. Set it before serving traffic; it must
	// be safe for concurrent use (jobs finish on concurrent handler
	// goroutines).
	OnJobDone func(Done)

	// columnHook is a test seam invoked before each column record is
	// streamed, identified by the deck title; the soak/cancel tests use it to
	// pace or block a solve mid-stream. Set before serving traffic.
	columnHook func(title string, col int)
}

// New builds a Server from cfg (zero fields take defaults; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: core.NewFactorCache(cfg.CacheCap),
		q:     newQueue(cfg.Workers, cfg.QueueDepth),
		met:   newMetrics(),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP dispatches to the service's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Cache exposes the process-wide factor cache (for tests and diagnostics).
func (s *Server) Cache() *core.FactorCache { return s.cache }

// writeJSONError sends a JSON error body with the given HTTP status.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "status": status})
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the service counters as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.met.snapshot(s.q.Depth(), s.cfg.Workers, s.cfg.QueueDepth)
	hits, misses := s.cache.Stats()
	snap.FactorCache.Hits = hits
	snap.FactorCache.Misses = misses
	snap.FactorCache.Entries = s.cache.Len()
	if total := hits + misses; total > 0 {
		snap.FactorCache.HitRate = float64(hits) / float64(total)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(snap)
}

// handleSolve is the submission endpoint: decode and validate, pass
// admission, then solve and stream.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.incSubmitted()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.met.incBadRequest()
		writeJSONError(w, http.StatusRequestEntityTooLarge, "request body exceeds limit")
		return
	}
	job, rerr := parseRequest(body, &s.cfg)
	if rerr != nil {
		s.met.incBadRequest()
		writeJSONError(w, rerr.Status, rerr.Error())
		return
	}

	// Admission: wait for a worker slot in priority order, shed load when the
	// wait queue is full, give up silently if the client leaves the queue.
	if err := s.q.acquire(r.Context(), job.prio); err != nil {
		if errors.Is(err, errQueueFull) {
			s.met.incRejected()
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusTooManyRequests,
				fmt.Sprintf("job queue is full (%d running, %d waiting); retry later", s.cfg.Workers, s.cfg.QueueDepth))
		}
		return
	}
	defer s.q.release()
	s.met.startJob()
	defer s.met.endJob()

	start := s.cfg.Clock()
	done := s.runJob(r.Context(), w, job)
	done.Duration = s.cfg.Clock().Sub(start)
	s.met.observeLatency(done.Duration)
	switch {
	case done.Err == nil:
		s.met.incCompleted()
	case errors.Is(done.Err, core.ErrCancelled):
		s.met.incCancelled()
	default:
		s.met.incFailed()
	}
	if s.OnJobDone != nil {
		s.OnJobDone(done)
	}
}

// runJob executes one admitted job on the calling goroutine, streaming
// columns to w as the batch solve commits them.
func (s *Server) runJob(ctx context.Context, w http.ResponseWriter, job *job) Done {
	rep := &core.SolveReport{}
	sw := newStreamWriter(w)
	sw.header(job)

	columns := 0
	opts := core.BatchOptions{
		Options: core.Options{
			Workers:     s.cfg.SolveWorkers,
			HistoryMode: job.history,
			Report:      rep,
			FactorCache: s.cache,
		},
		OnColumn: func(col int, t float64, cols [][]float64) {
			columns = col + 1
			if s.columnHook != nil {
				s.columnHook(job.title, col)
			}
			sw.column(col, t, cols, job.stateIdx)
		},
	}
	_, err := core.SolveBatchCtx(ctx, job.mna.Sys, job.scenarios, job.m, job.T, opts)
	if err != nil {
		sw.fail(err)
	} else {
		sw.done(columns, rep)
	}
	return Done{
		Title:     job.title,
		Priority:  priorityName(job.prio),
		Scenarios: len(job.scenarios),
		Columns:   columns,
		Report:    rep,
		Err:       err,
	}
}
