package serve

import (
	"context"
	"math"
	"net/http/httptest"
	"strconv"
	"testing"

	"opmsim/internal/core"
)

// TestStreamingConformance is the streaming golden suite: for each fixture
// deck and each fractional-history engine, the columns streamed over HTTP
// must be bitwise-equal — every float64, every scenario, every column — to
// the waveform an offline core.SolveBatch produces for the same job. This
// pins down the whole pipeline: the OnColumn hook mirrors the Solution
// assembly exactly, encoding/json round-trips float64 bits exactly, and the
// handler streams hook values unmodified.
func TestStreamingConformance(t *testing.T) {
	fixtures := []struct {
		name  string
		deck  string
		steps int
	}{
		{"quickstart", quickstartDeck, 192}, // integer-order RC ladder
		{"supercap", supercapDeck, 300},     // fractional CPE (alpha = 0.7)
		{"powergrid", powergridDeck, 128},   // RLC mesh with inductor states
	}
	for _, fx := range fixtures {
		fx := fx
		for _, mode := range []string{"exact", "fft"} {
			mode := mode
			t.Run(fx.name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				body := `{"netlist": ` + strconv.Quote(fx.deck) +
					`, "steps": ` + strconv.Itoa(fx.steps) +
					`, "history": "` + mode + `"` +
					`, "sweep": {"count": 3, "lo": 0.5, "hi": 1.5}}`

				srv := New(Config{Workers: 2})
				ts := httptest.NewServer(srv)
				defer ts.Close()
				res := submit(t, ts.Client(), ts.URL, body)
				if res.status != 200 {
					t.Fatalf("status = %d (%s)", res.status, res.rawErr)
				}
				if res.errRec != nil {
					t.Fatalf("stream ended in error: %s", res.errRec.Error)
				}
				if res.header == nil || res.done == nil {
					t.Fatal("stream is missing its header or done record")
				}
				if len(res.columns) != fx.steps {
					t.Fatalf("streamed %d columns, want %d", len(res.columns), fx.steps)
				}

				// Offline reference: parse the identical body through the same
				// decode path, then run the batch engine directly with the
				// handler's options (fresh cache — the bitwise contract of
				// FactorCache makes shared vs fresh indistinguishable).
				cfg := Config{}.withDefaults()
				job, rerr := parseRequest([]byte(body), &cfg)
				if rerr != nil {
					t.Fatal(rerr)
				}
				sols, err := core.SolveBatchCtx(context.Background(),
					job.mna.Sys, job.scenarios, job.m, job.T,
					core.BatchOptions{Options: core.Options{
						Workers:     cfg.SolveWorkers,
						HistoryMode: job.history,
					}})
				if err != nil {
					t.Fatal(err)
				}

				if len(res.header.States) != len(job.mna.StateNames) {
					t.Fatalf("header states = %v, want all %d MNA states",
						res.header.States, len(job.mna.StateNames))
				}
				h := job.T / float64(job.m)
				for s, sol := range sols {
					x := sol.Coefficients()
					for j, col := range res.columns {
						if col.J != j {
							t.Fatalf("column %d carries index %d", j, col.J)
						}
						tj := (float64(j) + 0.5) * h // the solver's column midpoint
						if math.Float64bits(col.T) != math.Float64bits(tj) {
							t.Fatalf("column %d: streamed t=%x, offline t=%x",
								j, math.Float64bits(col.T), math.Float64bits(tj))
						}
						for k, i := range job.stateIdx {
							got := col.X[s][k]
							want := x.At(i, j)
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("scenario %d state %s column %d: streamed %x (%g), offline %x (%g)",
									s, job.labels[k], j,
									math.Float64bits(got), got,
									math.Float64bits(want), want)
							}
						}
					}
				}
			})
		}
	}
}

// TestStreamingConformanceStateSubset repeats the bitwise check when the
// client asks for a subset of states, which exercises the streamWriter's
// gather path.
func TestStreamingConformanceStateSubset(t *testing.T) {
	body := `{"netlist": ` + strconv.Quote(quickstartDeck) +
		`, "steps": 64, "nodes": ["n5", "n1"], "sweep": {"count": 2, "lo": 0.5, "hi": 1.5}}`

	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	res := submit(t, ts.Client(), ts.URL, body)
	if res.status != 200 || res.done == nil {
		t.Fatalf("status=%d done=%v err=%v", res.status, res.done, res.errRec)
	}
	if len(res.header.States) != 2 || res.header.States[0] != "v(n5)" || res.header.States[1] != "v(n1)" {
		t.Fatalf("header states = %v, want [v(n5) v(n1)]", res.header.States)
	}

	cfg := Config{}.withDefaults()
	job, rerr := parseRequest([]byte(body), &cfg)
	if rerr != nil {
		t.Fatal(rerr)
	}
	sols, err := core.SolveBatchCtx(context.Background(), job.mna.Sys, job.scenarios, job.m, job.T,
		core.BatchOptions{Options: core.Options{Workers: cfg.SolveWorkers}})
	if err != nil {
		t.Fatal(err)
	}
	for s, sol := range sols {
		x := sol.Coefficients()
		for j, col := range res.columns {
			if len(col.X[s]) != 2 {
				t.Fatalf("column %d scenario %d carries %d states, want 2", j, s, len(col.X[s]))
			}
			for k, i := range job.stateIdx {
				if math.Float64bits(col.X[s][k]) != math.Float64bits(x.At(i, j)) {
					t.Fatalf("scenario %d state %s column %d mismatch", s, job.labels[k], j)
				}
			}
		}
	}
}
