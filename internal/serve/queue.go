package serve

import (
	"context"
	"errors"
	"sync"
)

// Job priority classes, in grant order. Within a class the queue is FIFO, so
// equal-priority jobs are served in admission order.
const (
	prioHigh = iota
	prioNormal
	prioLow
	numPriorities
)

// priorityName maps a class index back to its wire name.
func priorityName(p int) string {
	switch p {
	case prioHigh:
		return "high"
	case prioLow:
		return "low"
	}
	return "normal"
}

// errQueueFull is returned by acquire when the wait queue is at capacity; the
// handler maps it to 429 + Retry-After.
var errQueueFull = errors.New("serve: job queue is full")

// queue is the bounded priority admission queue: `workers` slots solve
// concurrently, up to `capacity` more jobs wait (highest priority first, FIFO
// within a class), and beyond that acquire rejects immediately — backpressure
// instead of unbounded queueing. It is a passive structure: no goroutines,
// just a mutex and per-waiter channels, so an idle Server has nothing
// running.
type queue struct {
	mu       sync.Mutex
	slots    int // free worker slots; > 0 only when no one is waiting
	capacity int // max waiting jobs
	depth    int // current waiting jobs
	waiting  [numPriorities][]*waiter
}

// waiter is one queued acquire: ready is closed when a slot is granted
// (ownership of the slot transfers with the close).
type waiter struct {
	ready chan struct{}
}

func newQueue(workers, capacity int) *queue {
	return &queue{slots: workers, capacity: capacity}
}

// acquire obtains a worker slot, waiting in priority order. It returns
// errQueueFull when the wait queue is at capacity and ctx.Err() when the
// caller's context is cancelled while waiting (any slot granted in the race
// is handed back).
func (q *queue) acquire(ctx context.Context, prio int) error {
	if prio < 0 || prio >= numPriorities {
		prio = prioNormal
	}
	q.mu.Lock()
	if q.slots > 0 {
		q.slots--
		q.mu.Unlock()
		return nil
	}
	if q.depth >= q.capacity {
		q.mu.Unlock()
		return errQueueFull
	}
	w := &waiter{ready: make(chan struct{})}
	q.waiting[prio] = append(q.waiting[prio], w)
	q.depth++
	q.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced with cancellation: we own a slot nobody will
			// release, so hand it to the next waiter (or bank it) before
			// reporting the cancellation.
			q.releaseLocked()
		default:
			q.removeLocked(w, prio)
		}
		q.mu.Unlock()
		return ctx.Err()
	}
}

// release returns a worker slot: the highest-priority waiter is granted the
// slot directly, otherwise the free-slot count grows.
func (q *queue) release() {
	q.mu.Lock()
	q.releaseLocked()
	q.mu.Unlock()
}

func (q *queue) releaseLocked() {
	for p := 0; p < numPriorities; p++ {
		if len(q.waiting[p]) > 0 {
			w := q.waiting[p][0]
			q.waiting[p] = append(q.waiting[p][:0:0], q.waiting[p][1:]...)
			q.depth--
			close(w.ready)
			return
		}
	}
	q.slots++
}

// removeLocked drops a cancelled waiter from its class queue.
func (q *queue) removeLocked(w *waiter, prio int) {
	ws := q.waiting[prio]
	for i := range ws {
		if ws[i] == w {
			q.waiting[prio] = append(ws[:i:i], ws[i+1:]...)
			q.depth--
			return
		}
	}
}

// Depth returns the number of jobs waiting for a worker slot.
func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}
