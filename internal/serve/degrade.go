package serve

import (
	"errors"
	"sync"
	"time"

	"opmsim/internal/core"
)

// breaker is the per-pencil circuit breaker. Repeated ErrSingularPencil or
// ErrNonFinite faults against the same pencil fingerprint mean the circuit
// itself is bad — every retry burns a worker slot on a solve that cannot
// succeed — so after threshold consecutive faults the breaker opens and
// matching submissions fast-fail with 422 before touching the queue. After
// cooldown the breaker half-opens: traffic flows again, a success closes it,
// the next fault re-opens it for another cooldown. The clock is injected
// (Config.Clock), so tests and the chaos harness drive the state machine
// deterministically, skew included.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	clock     func() time.Time
	cells     map[uint64]*breakerCell
}

type breakerCell struct {
	fails     int
	openUntil time.Time
}

// breakerMaxCells bounds the fault map; fingerprints only enter on faults,
// so the bound only matters under a deliberate flood of distinct broken
// pencils — at which point wholesale forgetting (and re-counting) is safe.
const breakerMaxCells = 1024

func newBreaker(threshold int, cooldown time.Duration, clock func() time.Time) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		clock:     clock,
		cells:     make(map[uint64]*breakerCell),
	}
}

// allow reports whether a submission against fp may proceed: yes while
// closed or half-open, no while open and cooling down.
func (b *breaker) allow(fp uint64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cells[fp]
	if c == nil || c.fails < b.threshold {
		return true
	}
	return !b.clock().Before(c.openUntil)
}

// onResult folds a solve outcome into the breaker; faulted is true only for
// the breaker-relevant kinds (singular pencil, non-finite). It returns true
// when this result (re)opened the breaker — the trip metric.
func (b *breaker) onResult(fp uint64, faulted bool) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !faulted {
		delete(b.cells, fp)
		return false
	}
	c := b.cells[fp]
	if c == nil {
		if len(b.cells) >= breakerMaxCells {
			b.cells = make(map[uint64]*breakerCell)
		}
		c = &breakerCell{}
		b.cells[fp] = c
	}
	c.fails++
	if c.fails >= b.threshold {
		c.openUntil = b.clock().Add(b.cooldown)
		return true
	}
	return false
}

// breakerFault reports whether a terminal solve error is one of the kinds
// the breaker counts: deterministic pencil-level faults, not client
// cancellations or transient resource errors.
func breakerFault(err error) bool {
	return err != nil && (errors.Is(err, core.ErrSingularPencil) || errors.Is(err, core.ErrNonFinite))
}

// degradedPlan is the ladder: how an entry's accumulated strikes (deadline
// expiries and solver faults on previous attempts) reshape its next run.
//
//	strike ≥ 1 — halve the checkpoint interval per strike (min 1): shorter
//	             intervals mean less recomputation on the next interruption;
//	strike ≥ 2 — PanelWidth 1: sequential per-scenario batches cut peak
//	             memory and per-column latency variance (both bitwise-neutral,
//	             so the checkpoint survives);
//	strike ≥ 3 — an fft-engine job falls back to the exact engine and
//	             discards its checkpoint: the engine switch changes summation
//	             order, so the run restarts from column zero — trading the
//	             committed prefix for the exact tier's lower memory footprint
//	             and strictly incremental progress.
type degradedPlan struct {
	checkpointEvery int
	panelWidth      int
	history         core.HistoryMode
	resume          *core.Checkpoint
	droppedResume   bool
}

func planFor(strikes, baseEvery int, history core.HistoryMode, cp *core.Checkpoint) degradedPlan {
	p := degradedPlan{checkpointEvery: baseEvery, history: history}
	if cp != nil && cp.Columns > 0 {
		p.resume = cp
	}
	for i := 0; i < strikes && p.checkpointEvery > 1; i++ {
		p.checkpointEvery /= 2
	}
	if p.checkpointEvery < 1 {
		p.checkpointEvery = 1
	}
	if strikes >= 2 {
		p.panelWidth = 1
	}
	if strikes >= 3 && p.resume != nil && p.resume.Engine == "fft" {
		p.history = core.HistoryExact
		p.resume = nil
		p.droppedResume = true
	}
	return p
}
