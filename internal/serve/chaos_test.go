package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opmsim/internal/core"
)

// TestChaosKillRestartSoak is the chaos harness: N concurrent clients stream
// fractional solves while the server is repeatedly "killed" (drained and torn
// down mid-flight) and restarted over the same journal directory. Every
// client must eventually hold the complete waveform, bitwise-identical to the
// offline solve, by resuming across restarts — and the run must neither hang,
// leak goroutines, nor orphan queue slots or journals. Run it under -race;
// the CI chaos job does.
func TestChaosKillRestartSoak(t *testing.T) {
	clients, kills := 40, 3
	if testing.Short() {
		clients, kills = 8, 1
	}
	const steps = 96
	dir := t.TempDir()
	baseGoroutines := runtime.NumGoroutine()

	// Offline references, one per engine; every client checks against one.
	bodies := map[string]string{
		"exact": resumeBody(supercapDeck, steps, "exact"),
		"fft":   resumeBody(supercapDeck, steps, "fft"),
	}
	refs := map[string][]*core.Solution{}
	jobs := map[string]*job{}
	for mode, body := range bodies {
		j, sols := offlineColumns(t, body)
		refs[mode], jobs[mode] = sols, j
	}

	// current holds the live test server; restart() swaps it. Clients load it
	// on every attempt, so a kill strands at most one in-flight request each.
	var current atomic.Pointer[httptest.Server]
	newServer := func() *httptest.Server {
		srv := New(Config{Workers: 4, CheckpointEvery: 4, JournalDir: dir, QueueDepth: clients})
		srv.columnHook = func(string, int) { time.Sleep(time.Millisecond) }
		return httptest.NewServer(srv)
	}
	current.Store(newServer())
	defer func() { current.Load().Close() }()

	deadline := time.Now().Add(90 * time.Second)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		mode := "exact"
		if c%2 == 1 {
			mode = "fft"
		}
		wg.Add(1)
		go func(c int, mode string) {
			defer wg.Done()
			body := bodies[mode]
			var got []columnRecord
			jobID := ""
			for time.Now().Before(deadline) && len(got) < steps {
				ts := current.Load()
				var resp *http.Response
				var err error
				if jobID == "" {
					resp, err = ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
				} else {
					rb := fmt.Sprintf(`{"job": %q, "from": %d}`, jobID, len(got))
					resp, err = ts.Client().Post(ts.URL+"/v1/resume", "application/json", strings.NewReader(rb))
				}
				if err != nil {
					time.Sleep(10 * time.Millisecond) // server mid-restart
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusNotFound:
					resp.Body.Close()
					jobID = "" // job lost; resubmit (bitwise identity makes this safe)
					continue
				case http.StatusConflict, http.StatusServiceUnavailable, http.StatusTooManyRequests:
					resp.Body.Close()
					time.Sleep(10 * time.Millisecond)
					continue
				default:
					resp.Body.Close()
					errs <- fmt.Errorf("client %d: unexpected status %d", c, resp.StatusCode)
					return
				}
				hdr, cols, errRec, done := readStream(t, resp, nil, 0)
				if hdr != nil && hdr.Job != "" {
					jobID = hdr.Job
				}
				for _, col := range cols {
					if col.J == len(got) {
						got = append(got, col)
					}
				}
				if errRec != nil && errRec.Resumable && errRec.Job != "" {
					jobID = errRec.Job
				}
				if done && len(got) != steps {
					errs <- fmt.Errorf("client %d: done with %d/%d columns", c, len(got), steps)
					return
				}
			}
			if len(got) != steps {
				errs <- fmt.Errorf("client %d: soak deadline with %d/%d columns", c, len(got), steps)
				return
			}
			// Bitwise check against the offline reference.
			job, sols := jobs[mode], refs[mode]
			for j, col := range got {
				for s := range sols {
					x := sols[s].Coefficients()
					for k, i := range job.stateIdx {
						if math.Float64bits(col.X[s][k]) != math.Float64bits(x.At(i, j)) {
							errs <- fmt.Errorf("client %d (%s): scenario %d state %d column %d bits diverged",
								c, mode, s, k, j)
							return
						}
					}
				}
			}
		}(c, mode)
	}

	// The killer: drain + tear down the live server, boot a replacement over
	// the same journal directory, repeat.
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for k := 0; k < kills; k++ {
			time.Sleep(time.Duration(150+100*k) * time.Millisecond)
			old := current.Load()
			srv := old.Config.Handler.(*Server)
			dctx, dcancel := context.WithTimeout(context.Background(), 15*time.Second)
			err := srv.Drain(dctx)
			dcancel()
			if err != nil {
				errs <- fmt.Errorf("kill %d: drain did not unwind in bound: %v", k, err)
			}
			replacement := newServer()
			current.Store(replacement)
			old.CloseClientConnections()
			old.Close()
		}
	}()

	wg.Wait()
	<-killerDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// No orphaned queue slot: a fresh job on the final server still completes.
	ts := current.Load()
	res := submit(t, ts.Client(), ts.URL, solveBody(tinyDeck, 16, 1, 1, 1, ""))
	if res.done == nil {
		t.Fatalf("post-soak health solve did not complete: %+v %s", res.errRec, res.rawErr)
	}

	// Every job completed, so recovery retired every journal.
	leftover, err := filepath.Glob(filepath.Join(dir, "*"+journalExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		var names []string
		for _, p := range leftover {
			if fi, err := os.Stat(p); err == nil {
				names = append(names, fmt.Sprintf("%s(%dB)", filepath.Base(p), fi.Size()))
			}
		}
		t.Fatalf("journal directory still holds %d journals after the soak: %v", len(leftover), names)
	}

	// No goroutine leak: after the servers quiesce the count returns to the
	// neighborhood of the baseline (HTTP keep-alive reapers need a moment).
	deadlineG := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadlineG) {
		if runtime.NumGoroutine() <= baseGoroutines+10 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines+10 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d now vs %d at start\n%s", g, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
}
