package serve

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakConcurrentSweeps is the race-proven soak: many goroutine clients
// hammer the service with sweep submissions concurrently, retrying on 429.
// Run it with -race (CI does). It asserts:
//
//   - every admitted stream is complete and well-formed (header, all columns,
//     done trailer) — no interleaving between concurrent jobs' records;
//   - at least 1000 submissions complete in total (full run);
//   - the shared factor cache's hit rate grows monotonically round over round
//     — after the first round the pencil is resident, so misses stay fixed
//     while hits accumulate;
//   - no goroutines leak: after the clients drain, the process returns to its
//     post-warmup goroutine count.
func TestSoakConcurrentSweeps(t *testing.T) {
	clients, perClient, rounds := 40, 25, 5 // 40 × 25 = 1000 submissions
	if testing.Short() {
		clients, perClient, rounds = 8, 5, 2
	}

	srv := New(Config{Workers: 4, QueueDepth: 8, CacheCap: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// The default transport keeps only 2 idle conns per host; with 40
	// concurrent clients that churns connections (and their goroutines) hard,
	// which is fine for the race detector but noise for the leak check.
	transport := &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	body := solveBody(tinyDeck, 16, 2, 0.5, 1.5, "")

	// Warm up: first contact spins up the solver's persistent worker pool and
	// the HTTP plumbing; measure the goroutine baseline after that.
	warm := submit(t, client, ts.URL, body)
	if warm.status != http.StatusOK || warm.done == nil {
		t.Fatalf("warmup failed: status=%d err=%v", warm.status, warm.errRec)
	}
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	var completed, sheds atomic.Int64
	hitRates := make([]float64, 0, rounds)
	perRound := perClient / rounds
	if perRound < 1 {
		perRound = 1
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perRound; i++ {
					for attempt := 0; ; attempt++ {
						res, err := submitErr(client, ts.URL, body)
						if err != nil {
							t.Errorf("submit: %v", err)
							return
						}
						if res.status == http.StatusTooManyRequests {
							// Backpressure is expected under this load; honor it.
							sheds.Add(1)
							if res.retryAfter == "" {
								t.Error("429 without Retry-After")
								return
							}
							time.Sleep(time.Duration(2+attempt) * time.Millisecond)
							continue
						}
						if res.status != http.StatusOK || res.done == nil || res.errRec != nil {
							t.Errorf("stream failed: status=%d done=%v err=%v", res.status, res.done, res.errRec)
							return
						}
						if res.header == nil || len(res.columns) != 16 {
							t.Errorf("incomplete stream: header=%v columns=%d", res.header != nil, len(res.columns))
							return
						}
						completed.Add(1)
						break
					}
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		snap := scrapeMetrics(t, client, ts.URL)
		hitRates = append(hitRates, snap.FactorCache.HitRate)
	}

	want := int64(clients * perRound * rounds)
	if got := completed.Load(); got != want {
		t.Fatalf("completed %d submissions, want %d", got, want)
	}
	if !testing.Short() && completed.Load() < 1000 {
		t.Fatalf("soak completed %d submissions, acceptance floor is 1000", completed.Load())
	}
	t.Logf("soak: %d completed, %d load-sheds retried, hit rates %v",
		completed.Load(), sheds.Load(), hitRates)

	// Monotonic cache hit-rate growth: every job solves the same pencil, so
	// once it is resident (round 1 at the latest) misses are frozen and each
	// round's hits push the rate strictly up.
	for r := 1; r < len(hitRates); r++ {
		if hitRates[r] < hitRates[r-1] {
			t.Fatalf("cache hit rate regressed between rounds %d and %d: %v", r-1, r, hitRates)
		}
	}
	if last := hitRates[len(hitRates)-1]; last <= hitRates[0] || last < 0.9 {
		t.Fatalf("cache hit rate did not grow under repeated pencils: %v", hitRates)
	}

	// Goroutine-leak check: drain idle connections, then the count must fall
	// back to the post-warmup baseline (plus slack for lazy netpoll exits).
	transport.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}

	snap := scrapeMetrics(t, client, ts.URL)
	if snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Fatalf("service not idle after soak: inFlight=%d queueDepth=%d", snap.InFlight, snap.QueueDepth)
	}
	if snap.Completed != completed.Load()+1 { // +1 warmup
		t.Fatalf("metrics completed=%d, clients observed %d (+1 warmup)", snap.Completed, completed.Load())
	}
	if snap.Rejected != sheds.Load() {
		t.Fatalf("metrics rejected=%d, clients observed %d sheds", snap.Rejected, sheds.Load())
	}
}
