package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/faultinject"
)

// The resume conformance suite is the tentpole acceptance test: a solve
// interrupted in any of the supported ways — client disconnect, server drain
// (with a process "restart" recovering the journal), injected solver fault —
// and then resumed must deliver, across the original and resumed streams
// combined, exactly the columns an uninterrupted offline SolveBatch produces,
// Float64bits-identical, for both fractional-history engines.

// resumeFixtures mirrors the streaming-conformance decks.
var resumeFixtures = []struct {
	name  string
	deck  string
	steps int
}{
	{"quickstart", quickstartDeck, 96},
	{"supercap", supercapDeck, 120},
	{"powergrid", powergridDeck, 96},
}

// resumeBody builds the submission for one fixture and engine.
func resumeBody(deck string, steps int, mode string) string {
	return `{"netlist": ` + strconv.Quote(deck) +
		`, "steps": ` + strconv.Itoa(steps) +
		`, "history": "` + mode + `"` +
		`, "sweep": {"count": 2, "lo": 0.5, "hi": 1.5}}`
}

// offlineColumns solves the job offline and returns the reference waveform
// indexed [scenario][state][column].
func offlineColumns(t *testing.T, body string) (*job, []*core.Solution) {
	t.Helper()
	cfg := Config{}.withDefaults()
	job, rerr := parseRequest([]byte(body), &cfg)
	if rerr != nil {
		t.Fatal(rerr)
	}
	sols, err := core.SolveBatchCtx(context.Background(), job.mna.Sys, job.scenarios, job.m, job.T,
		core.BatchOptions{Options: core.Options{Workers: 1, HistoryMode: job.history}})
	if err != nil {
		t.Fatal(err)
	}
	return job, sols
}

// checkCombined asserts the combined column set covers [0, steps) exactly and
// matches the offline reference bit for bit.
func checkCombined(t *testing.T, job *job, sols []*core.Solution, cols []columnRecord, steps int) {
	t.Helper()
	if len(cols) != steps {
		t.Fatalf("combined stream carries %d columns, want %d", len(cols), steps)
	}
	h := job.T / float64(job.m)
	for j, col := range cols {
		if col.J != j {
			t.Fatalf("combined column %d carries index %d", j, col.J)
		}
		tj := (float64(j) + 0.5) * h
		if math.Float64bits(col.T) != math.Float64bits(tj) {
			t.Fatalf("column %d: t=%x, offline %x", j, math.Float64bits(col.T), math.Float64bits(tj))
		}
		for s := range sols {
			x := sols[s].Coefficients()
			for k, i := range job.stateIdx {
				got, want := col.X[s][k], x.At(i, j)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("scenario %d state %s column %d: resumed stream %x (%g), offline %x (%g)",
						s, job.labels[k], j, math.Float64bits(got), got, math.Float64bits(want), want)
				}
			}
		}
	}
}

// readStreamUntil reads NDJSON records from the response, appending columns
// to out, until stop returns true (then cancels ctx and drains) or the
// stream ends. It returns the header, terminal error record (if any), and
// whether a done record arrived.
func readStream(t *testing.T, resp *http.Response, cancel context.CancelFunc, stopAfter int) (hdr *headerRecord, cols []columnRecord, errRec *errorRecord, done bool) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("stream line is not JSON: %v (%q)", err, line)
		}
		switch probe.Type {
		case "header":
			hdr = &headerRecord{}
			if err := json.Unmarshal(line, hdr); err != nil {
				t.Fatal(err)
			}
		case "column":
			var c columnRecord
			if err := json.Unmarshal(line, &c); err != nil {
				t.Fatal(err)
			}
			// Deep-copy: the decoder reuses backing arrays across lines.
			cc := columnRecord{Type: c.Type, J: c.J, T: c.T, X: make([][]float64, len(c.X))}
			for s := range c.X {
				cc.X[s] = append([]float64(nil), c.X[s]...)
			}
			cols = append(cols, cc)
			if stopAfter > 0 && len(cols) >= stopAfter && cancel != nil {
				cancel()
				return
			}
		case "done":
			done = true
		case "error":
			errRec = &errorRecord{}
			if err := json.Unmarshal(line, errRec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return
}

// resumeStream POSTs /v1/resume, retrying while the job is still attached to
// the dying first stream, and reads the whole resumed stream.
func resumeStream(t *testing.T, client *http.Client, url, jobID string, from int) (*headerRecord, []columnRecord, *errorRecord, bool) {
	t.Helper()
	body := fmt.Sprintf(`{"job": %q, "from": %d}`, jobID, from)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Post(url+"/v1/resume", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			hdr, cols, errRec, done := readStream(t, resp, nil, 0)
			return hdr, cols, errRec, done
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict || time.Now().After(deadline) {
			t.Fatalf("resume status = %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResumeAfterDisconnectBitwise interrupts the stream by cancelling the
// client request mid-solve, then resumes by job ID and requires the combined
// stream to match the offline solve bit for bit.
func TestResumeAfterDisconnectBitwise(t *testing.T) {
	for _, fx := range resumeFixtures {
		fx := fx
		for _, mode := range []string{"exact", "fft"} {
			mode := mode
			t.Run(fx.name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				body := resumeBody(fx.deck, fx.steps, mode)
				job, sols := offlineColumns(t, body)

				srv := New(Config{Workers: 2, CheckpointEvery: 8})
				// Pace the solve so the disconnect lands mid-run.
				srv.columnHook = func(string, int) { time.Sleep(200 * time.Microsecond) }
				ts := httptest.NewServer(srv)
				defer ts.Close()

				cut := fx.steps / 3
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/solve", strings.NewReader(body))
				resp, err := ts.Client().Do(req)
				if err != nil {
					t.Fatal(err)
				}
				hdr, got, _, _ := readStream(t, resp, cancel, cut)
				if hdr == nil || hdr.Job == "" {
					t.Fatal("first stream has no header job ID")
				}
				if len(got) < cut {
					t.Fatalf("received %d columns before disconnect, want >= %d", len(got), cut)
				}

				rh, rest, errRec, done := resumeStream(t, ts.Client(), ts.URL, hdr.Job, len(got))
				if errRec != nil {
					t.Fatalf("resumed stream ended in error: %s (%s)", errRec.Error, errRec.Kind)
				}
				if !done {
					t.Fatal("resumed stream has no done record")
				}
				if rh.From != len(got) {
					t.Fatalf("resumed header from = %d, want %d", rh.From, len(got))
				}
				checkCombined(t, job, sols, append(got, rest...), fx.steps)
			})
		}
	}
}

// TestResumeAfterDrainRestartBitwise drains the server mid-solve (SIGTERM
// path), boots a fresh Server over the same journal directory — the process
// restart — and resumes the recovered job on it.
func TestResumeAfterDrainRestartBitwise(t *testing.T) {
	for _, fx := range resumeFixtures {
		fx := fx
		for _, mode := range []string{"exact", "fft"} {
			mode := mode
			t.Run(fx.name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				body := resumeBody(fx.deck, fx.steps, mode)
				job, sols := offlineColumns(t, body)
				dir := t.TempDir()

				srvA := New(Config{Workers: 2, CheckpointEvery: 8, JournalDir: dir})
				reached := make(chan struct{})
				var once atomic.Bool
				cut := fx.steps / 3
				srvA.columnHook = func(_ string, col int) {
					if col >= cut && once.CompareAndSwap(false, true) {
						close(reached)
					}
					time.Sleep(200 * time.Microsecond)
				}
				tsA := httptest.NewServer(srvA)
				defer tsA.Close()

				type firstStream struct {
					hdr    *headerRecord
					cols   []columnRecord
					errRec *errorRecord
				}
				firstCh := make(chan firstStream, 1)
				go func() {
					resp, err := tsA.Client().Post(tsA.URL+"/v1/solve", "application/json", strings.NewReader(body))
					if err != nil {
						firstCh <- firstStream{}
						return
					}
					hdr, cols, errRec, _ := readStream(t, resp, nil, 0)
					firstCh <- firstStream{hdr, cols, errRec}
				}()

				<-reached
				dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer dcancel()
				if err := srvA.Drain(dctx); err != nil {
					t.Fatalf("drain: %v", err)
				}
				first := <-firstCh
				if first.hdr == nil || first.hdr.Job == "" {
					t.Fatal("first stream has no header job ID")
				}
				if first.errRec == nil || !first.errRec.Resumable || first.errRec.Kind != "draining" {
					t.Fatalf("drain trailer = %+v, want resumable kind=draining", first.errRec)
				}
				tsA.Close()

				// "Restart": a new Server recovers the journal directory.
				srvB := New(Config{Workers: 2, CheckpointEvery: 8, JournalDir: dir})
				tsB := httptest.NewServer(srvB)
				defer tsB.Close()

				from := len(first.cols)
				rh, rest, errRec, done := resumeStream(t, tsB.Client(), tsB.URL, first.hdr.Job, from)
				if errRec != nil {
					t.Fatalf("resumed stream ended in error: %s (%s)", errRec.Error, errRec.Kind)
				}
				if !done {
					t.Fatal("resumed stream has no done record")
				}
				if rh.From != from && from != 0 {
					t.Fatalf("resumed header from = %d, want %d", rh.From, from)
				}
				checkCombined(t, job, sols, append(first.cols, rest...), fx.steps)
			})
		}
	}
}

// TestResumeAfterInjectedFaultBitwise fails the solve once with an injected
// NaN (a one-shot fault), checks the typed resumable error trailer, resumes,
// and requires bitwise identity with the offline solve.
func TestResumeAfterInjectedFaultBitwise(t *testing.T) {
	for _, fx := range resumeFixtures {
		fx := fx
		for _, mode := range []string{"exact", "fft"} {
			mode := mode
			t.Run(fx.name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				body := resumeBody(fx.deck, fx.steps, mode)
				job, sols := offlineColumns(t, body)

				failCol := fx.steps * 3 / 5
				var fired atomic.Bool
				fault := &faultinject.Hooks{CorruptColumn: func(col int, x []float64) {
					if col == failCol && fired.CompareAndSwap(false, true) {
						x[0] = math.NaN()
					}
				}}
				srv := New(Config{Workers: 2, CheckpointEvery: 8, Fault: fault})
				ts := httptest.NewServer(srv)
				defer ts.Close()

				resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				hdr, got, errRec, _ := readStream(t, resp, nil, 0)
				if errRec == nil || errRec.Kind != "non-finite" || !errRec.Resumable {
					t.Fatalf("fault trailer = %+v, want resumable kind=non-finite", errRec)
				}
				if len(got) != failCol {
					t.Fatalf("received %d columns before the fault, want %d", len(got), failCol)
				}
				if errRec.NextColumn != failCol {
					t.Fatalf("trailer nextColumn = %d, want %d", errRec.NextColumn, failCol)
				}

				rh, rest, rErr, done := resumeStream(t, ts.Client(), ts.URL, hdr.Job, errRec.NextColumn)
				if rErr != nil {
					t.Fatalf("resumed stream ended in error: %s (%s)", rErr.Error, rErr.Kind)
				}
				if !done {
					t.Fatal("resumed stream has no done record")
				}
				if rh.From != errRec.NextColumn {
					t.Fatalf("resumed header from = %d, want %d", rh.From, errRec.NextColumn)
				}
				checkCombined(t, job, sols, append(got, rest...), fx.steps)
			})
		}
	}
}
