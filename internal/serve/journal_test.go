package serve

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/faultinject"
)

// makeDelta builds a small well-formed checkpoint delta for journal tests.
func makeDelta(from, to, n, m, k int) *core.CheckpointDelta {
	d := &core.CheckpointDelta{From: from, To: to, N: n, M: m, K: k, T: 1.5, Engine: "exact"}
	d.Slabs = make([][]float64, k)
	for s := range d.Slabs {
		slab := make([]float64, (to-from)*n)
		for i := range slab {
			slab[i] = float64(s*1000+from*10+i) + 0.25
		}
		d.Slabs[s] = slab
	}
	return d
}

func TestJournalDeltaRoundTrip(t *testing.T) {
	d := makeDelta(16, 32, 3, 64, 2)
	got, err := decodeCheckpointDelta(encodeCheckpointDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != d.From || got.To != d.To || got.N != d.N || got.M != d.M || got.K != d.K ||
		math.Float64bits(got.T) != math.Float64bits(d.T) || got.Engine != d.Engine {
		t.Fatalf("header round trip: got %+v, want %+v", got, d)
	}
	for s := range d.Slabs {
		for i := range d.Slabs[s] {
			if math.Float64bits(got.Slabs[s][i]) != math.Float64bits(d.Slabs[s][i]) {
				t.Fatalf("slab %d[%d] round trip lost bits", s, i)
			}
		}
	}
}

func TestJournalWriteReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"netlist": "x"}`)
	jw, err := createJobJournal(dir, "job-000007", body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.appendCheckpointDelta(makeDelta(0, 16, 3, 64, 2)); err != nil {
		t.Fatal(err)
	}
	if err := jw.appendCheckpointDelta(makeDelta(16, 32, 3, 64, 2)); err != nil {
		t.Fatal(err)
	}
	if err := jw.closeJournal(); err != nil {
		t.Fatal(err)
	}

	st, err := replayJobJournal(journalPath(dir, "job-000007"))
	if err != nil {
		t.Fatal(err)
	}
	if st.id != "job-000007" || !bytes.Equal(st.body, body) {
		t.Fatalf("replayed identity = %q body %q", st.id, st.body)
	}
	if st.done || st.truncated != 0 {
		t.Fatalf("replay flags: done=%v truncated=%d", st.done, st.truncated)
	}
	if st.cp == nil || st.cp.Columns != 32 || st.cp.N != 3 || st.cp.K != 2 {
		t.Fatalf("replayed checkpoint = %+v", st.cp)
	}
}

// TestJournalCorruptTailTruncation damages the last record three ways — torn
// frame, flipped payload bit, garbage length — and requires recovery to keep
// the clean prefix and truncate the file in place, never panicking.
func TestJournalCorruptTailTruncation(t *testing.T) {
	write := func(t *testing.T, dir string, hooks *faultinject.ServeHooks) string {
		t.Helper()
		jw, err := createJobJournal(dir, "job-000001", []byte("body"), hooks)
		if err != nil {
			t.Fatal(err)
		}
		if err := jw.appendCheckpointDelta(makeDelta(0, 8, 2, 32, 1)); err != nil {
			t.Fatal(err)
		}
		if err := jw.appendCheckpointDelta(makeDelta(8, 16, 2, 32, 1)); err != nil {
			t.Fatal(err)
		}
		if err := jw.closeJournal(); err != nil {
			t.Fatal(err)
		}
		return journalPath(dir, "job-000001")
	}

	t.Run("torn-last-record", func(t *testing.T) {
		// Record 2 (0-based: start, delta, delta) written half-length.
		path := write(t, t.TempDir(), faultinject.TornRecord(2))
		st, err := replayJobJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.cp == nil || st.cp.Columns != 8 {
			t.Fatalf("surviving checkpoint columns = %v, want 8", st.cp)
		}
		if st.truncated == 0 {
			t.Fatal("replay did not report a truncated tail")
		}
		// Truncation is durable: a second replay sees a clean file.
		st2, err := replayJobJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if st2.truncated != 0 || st2.cp.Columns != 8 {
			t.Fatalf("second replay: truncated=%d columns=%d", st2.truncated, st2.cp.Columns)
		}
	})

	t.Run("flipped-bit", func(t *testing.T) {
		path := write(t, t.TempDir(), faultinject.FlipBitInRecord(2, 40))
		st, err := replayJobJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.cp == nil || st.cp.Columns != 8 || st.truncated == 0 {
			t.Fatalf("bit rot not contained: %+v truncated=%d", st.cp, st.truncated)
		}
	})

	t.Run("garbage-appended", func(t *testing.T) {
		path := write(t, t.TempDir(), nil)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		st, err := replayJobJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.cp.Columns != 16 || st.truncated != 7 {
			t.Fatalf("columns=%d truncated=%d, want 16/7", st.cp.Columns, st.truncated)
		}
	})

	t.Run("damaged-start-record", func(t *testing.T) {
		dir := t.TempDir()
		path := write(t, dir, faultinject.FlipBitInRecord(0, 2))
		if _, err := replayJobJournal(path); err == nil {
			t.Fatal("replay accepted a journal with a damaged start record")
		}
	})
}

// TestJournalWriteFailureDegrades verifies an injected disk failure flips the
// entry to in-memory-only checkpoints without failing the solve.
func TestJournalWriteFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	// First write (start record) succeeds, everything after fails.
	hooks := faultinject.FailJournalAfter(1)
	jw, err := createJobJournal(dir, "job-000003", []byte("body"), hooks)
	if err != nil {
		t.Fatal(err)
	}
	e := &jobEntry{id: "job-000003", jw: jw}
	if err := e.applyCheckpointDelta(makeDelta(0, 8, 2, 32, 1)); err == nil {
		t.Fatal("journal append did not report the injected failure")
	}
	if !e.journalBroken || e.jw != nil {
		t.Fatalf("entry did not degrade: broken=%v jw=%v", e.journalBroken, e.jw)
	}
	// The in-memory checkpoint still advanced, and further deltas apply
	// cleanly without touching the dead journal.
	if e.cp == nil || e.cp.Columns != 8 {
		t.Fatalf("in-memory checkpoint = %+v, want 8 columns", e.cp)
	}
	if err := e.applyCheckpointDelta(makeDelta(8, 16, 2, 32, 1)); err != nil {
		t.Fatalf("in-memory-only delta failed: %v", err)
	}
	if e.cp.Columns != 16 {
		t.Fatalf("checkpoint columns = %d, want 16", e.cp.Columns)
	}
}

// TestRecoverJournalDir exercises the startup sweep: done journals deleted,
// unreadable ones renamed aside, incomplete ones returned for re-admission.
func TestRecoverJournalDir(t *testing.T) {
	dir := t.TempDir()

	// Incomplete job with two deltas.
	jw, err := createJobJournal(dir, "job-000001", []byte("alpha"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.appendCheckpointDelta(makeDelta(0, 8, 2, 32, 1)); err != nil {
		t.Fatal(err)
	}
	if err := jw.closeJournal(); err != nil {
		t.Fatal(err)
	}

	// Finished job: done record present.
	jw2, err := createJobJournal(dir, "job-000002", []byte("beta"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw2.appendJournalDone(""); err != nil {
		t.Fatal(err)
	}
	if err := jw2.closeJournal(); err != nil {
		t.Fatal(err)
	}

	// Hopeless journal: random bytes, no valid start record.
	if err := os.WriteFile(filepath.Join(dir, "job-000003.opmj"), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}

	states, rejected, err := recoverJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
	if len(states) != 1 || states[0].id != "job-000001" || string(states[0].body) != "alpha" {
		t.Fatalf("recovered states = %+v", states)
	}
	if states[0].cp == nil || states[0].cp.Columns != 8 {
		t.Fatalf("recovered checkpoint = %+v", states[0].cp)
	}

	// Directory state: done journal gone, damaged renamed aside.
	if _, err := os.Stat(filepath.Join(dir, "job-000002.opmj")); !os.IsNotExist(err) {
		t.Fatal("finished job's journal survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, "job-000003.opmj.rejected")); err != nil {
		t.Fatal("damaged journal was not renamed aside")
	}
}

// TestServerRecoversJournaledJob goes through the full stack: a server with a
// journal directory containing an incomplete job must list it and let a
// client resume it.
func TestServerRecoversJournaledJob(t *testing.T) {
	dir := t.TempDir()
	body := solveBody(tinyDeck, 16, 1, 1, 1, "")
	jw, err := createJobJournal(dir, "job-000042", []byte(body), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.closeJournal(); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{Workers: 1, JournalDir: dir})
	if e := srv.reg.lookup("job-000042"); e == nil {
		t.Fatal("server did not adopt the journaled job")
	}
	// ID counter advanced past the recovered job: the next fresh job must not
	// collide.
	e := srv.reg.newEntry(nil, prioNormal)
	if e.id == "job-000042" || !strings.HasPrefix(e.id, "job-") {
		t.Fatalf("post-recovery ID = %q collides", e.id)
	}
}

// FuzzJournalReplay hammers replayJobJournal with arbitrary bytes: it must
// never panic, and when it does accept a file, a second replay of the
// (possibly truncated) file must agree — truncation converges.
func FuzzJournalReplay(f *testing.F) {
	// Seed: a valid journal, its torn prefix, and a bit-flipped variant.
	dir := f.TempDir()
	jw, err := createJobJournal(dir, "job-000001", []byte("seed body"), nil)
	if err != nil {
		f.Fatal(err)
	}
	if err := jw.appendCheckpointDelta(makeDelta(0, 4, 2, 16, 1)); err != nil {
		f.Fatal(err)
	}
	if err := jw.closeJournal(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(journalPath(dir, "job-000001"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	// A frame with a huge length field.
	huge := binary.LittleEndian.AppendUint32(nil, 1<<31-1)
	huge = binary.LittleEndian.AppendUint32(huge, crc32.Checksum(nil, journalCRC))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.opmj")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := replayJobJournal(path)
		if err != nil {
			return // rejected whole — fine, as long as it did not panic
		}
		if st.id == "" {
			t.Fatal("accepted journal with empty id")
		}
		// Idempotence: replaying the truncated file yields the same state
		// with no further truncation.
		st2, err := replayJobJournal(path)
		if err != nil {
			t.Fatalf("second replay rejected a file the first accepted: %v", err)
		}
		if st2.truncated != 0 {
			t.Fatalf("second replay truncated again (%d bytes): not convergent", st2.truncated)
		}
		if st2.id != st.id || !bytes.Equal(st2.body, st.body) || st2.done != st.done {
			t.Fatal("replay is not deterministic after truncation")
		}
	})
}
