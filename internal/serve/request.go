package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"opmsim/internal/circuit"
	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

// Request is the POST /v1/solve submission body.
//
//	{
//	  "netlist":  "title\nR1 in out 1k\n...",   // SPICE-flavoured deck (required)
//	  "steps":    512,                          // BPF columns m (default: from .tran)
//	  "tstop":    "6m",                         // span T: number or SPICE-suffixed string (default: from .tran)
//	  "sweep":    {"count": 8, "lo": 0.5, "hi": 1.5}, // amplitude sweep (default: one unit-scale scenario)
//	  "history":  "auto",                       // fractional-history engine: auto|exact|fft
//	  "priority": "normal",                     // admission class: high|normal|low
//	  "nodes":    ["out", "n2"]                 // states to stream (default: all)
//	}
type Request struct {
	Netlist  string     `json:"netlist"`
	Steps    int        `json:"steps"`
	TStop    *Value     `json:"tstop"`
	Sweep    *SweepSpec `json:"sweep"`
	History  string     `json:"history"`
	Priority string     `json:"priority"`
	Nodes    []string   `json:"nodes"`
	// Deadline is the job's wall-clock budget in seconds, measured from
	// worker-slot grant (0 or absent → Config.DefaultDeadline). On expiry the
	// job suspends resumably with kind "deadline".
	Deadline *Value `json:"deadline"`
}

// SweepSpec describes the scenario sweep. Count scenarios take input scale
// factors spaced linearly from Lo to Hi (matching opm-sim -batch/-sweep);
// Count 0 or 1 solves a single scenario at scale Lo (default 1). A non-zero
// Tol additionally perturbs component values: scenario 0 keeps the nominal
// netlist and scenarios 1..Count−1 draw every perturbable element (R, C, L,
// CPE; Elements caps how many, netlist order) uniformly from nominal·(1±Tol)
// with a counter-based RNG keyed by Seed — same seed, same scenarios. The
// perturbed pencils are solved against the shared nominal factorization via
// Sherman–Morrison–Woodbury updates (matching opm-sim -montecarlo), so
// tolerance sweeps cost far less than Count independent factorizations.
type SweepSpec struct {
	Count    int    `json:"count"`
	Lo       *Value `json:"lo"`
	Hi       *Value `json:"hi"`
	Tol      *Value `json:"tol"`
	Seed     uint64 `json:"seed"`
	Elements int    `json:"elements"`
}

// Value is a float64 that also accepts SPICE magnitude-suffixed strings
// ("10m", "1meg") in JSON, so request fields read like netlist cards.
type Value struct {
	V float64
}

// UnmarshalJSON accepts a JSON number or a SPICE-suffixed string.
func (v *Value) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		f, err := circuit.ParseValue(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		v.V = f
		return nil
	}
	return json.Unmarshal(data, &v.V)
}

// MarshalJSON writes the plain number.
func (v Value) MarshalJSON() ([]byte, error) { return json.Marshal(v.V) }

// RequestError is the typed rejection for malformed or unservable
// submissions: Status is always a 4xx code, so the fuzz contract "malformed
// bodies yield 4xx, never panics or 5xx" is checkable by type.
type RequestError struct {
	Status int
	Msg    string
}

func (e *RequestError) Error() string { return e.Msg }

// badRequest tags a syntactically invalid submission (400).
func badRequest(format string, args ...any) *RequestError {
	return &RequestError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// unservable tags a well-formed submission the engine cannot run (422).
func unservable(format string, args ...any) *RequestError {
	return &RequestError{Status: http.StatusUnprocessableEntity, Msg: fmt.Sprintf(format, args...)}
}

// job is one validated, admitted unit of work: everything the solve needs,
// resolved before the request enters the queue so rejections never consume a
// slot.
type job struct {
	title     string
	mna       *circuit.MNA
	scenarios []core.Scenario
	scales    []float64
	m         int
	T         float64
	history   core.HistoryMode
	prio      int
	stateIdx  []int
	labels    []string
	deadline  time.Duration // 0 → Config.DefaultDeadline
	// hasDeltas marks a component-tolerance sweep: the parameter-varying
	// batch engine solves perturbed pencils against the shared nominal
	// factorization but does not checkpoint (per-scenario factors are not
	// captured by column slabs), so the job runs without resume support.
	hasDeltas bool
}

// parseRequest turns a raw body into a validated job or a typed 4xx error.
// It is the single decode path shared by the handler and FuzzServeRequest:
// JSON decoding, netlist parsing, MNA assembly, span/sweep resolution, and
// state selection all happen here; only the solve itself is deferred to the
// worker slot.
func parseRequest(body []byte, cfg *Config) (*job, *RequestError) {
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequest("invalid JSON request: %v", err)
	}
	if strings.TrimSpace(req.Netlist) == "" {
		return nil, badRequest("request needs a non-empty \"netlist\"")
	}
	deck, err := circuit.Parse(strings.NewReader(req.Netlist))
	if err != nil {
		return nil, badRequest("netlist: %v", err)
	}
	mna, err := deck.Netlist.MNA()
	if err != nil {
		return nil, unservable("netlist does not assemble: %v", err)
	}
	if mna.Nonlinear != nil {
		return nil, unservable("netlist is nonlinear (diodes); the batch service shares one pencil factorization and requires linear netlists")
	}

	// Span: request fields override the deck's .tran directive.
	T := 0.0
	switch {
	case req.TStop != nil:
		T = req.TStop.V
	case deck.Tran != nil:
		T = deck.Tran.Stop
	default:
		return nil, badRequest("no \"tstop\" in the request and no .tran directive in the netlist")
	}
	if math.IsNaN(T) || math.IsInf(T, 0) || T <= 0 {
		return nil, badRequest("tstop must be a positive finite time, got %g", T)
	}
	m := req.Steps
	if m == 0 {
		if deck.Tran != nil && deck.Tran.Step > 0 {
			m = int(deck.Tran.Stop/deck.Tran.Step + 0.5)
		} else {
			m = 512
		}
	}
	if m < 1 {
		return nil, badRequest("steps must be >= 1, got %d", m)
	}
	if m > cfg.MaxSteps {
		return nil, badRequest("steps %d exceeds the service limit %d", m, cfg.MaxSteps)
	}

	// Sweep: K scenarios with linearly spaced input amplitude scales, plus
	// optional component-tolerance perturbations.
	count, lo, hi, tol, seed, elems := 1, 1.0, 1.0, 0.0, uint64(1), 0
	if req.Sweep != nil {
		if req.Sweep.Count > 0 {
			count = req.Sweep.Count
		}
		if req.Sweep.Lo != nil {
			lo = req.Sweep.Lo.V
		}
		hi = lo
		if req.Sweep.Hi != nil {
			hi = req.Sweep.Hi.V
		}
		if req.Sweep.Tol != nil {
			tol = req.Sweep.Tol.V
		}
		if req.Sweep.Seed != 0 {
			seed = req.Sweep.Seed
		}
		elems = req.Sweep.Elements
	}
	if count > cfg.MaxScenarios {
		return nil, badRequest("sweep count %d exceeds the service limit %d", count, cfg.MaxScenarios)
	}
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		return nil, badRequest("sweep bounds must be finite, got lo=%g hi=%g", lo, hi)
	}
	if math.IsNaN(tol) || tol < 0 || tol >= 1 {
		return nil, badRequest("sweep tol must be in [0,1), got %g", tol)
	}
	var perturbNames []string
	if tol > 0 {
		perturbNames = netgen.PerturbableElements(deck.Netlist, elems)
		if len(perturbNames) == 0 {
			return nil, unservable("sweep tol set but the netlist has no perturbable elements (R, C, L, or CPE)")
		}
	}

	hist, err := core.ParseHistoryMode(req.History)
	if err != nil {
		return nil, badRequest("%v", err)
	}

	prio := prioNormal
	switch strings.ToLower(strings.TrimSpace(req.Priority)) {
	case "", "normal":
	case "high":
		prio = prioHigh
	case "low":
		prio = prioLow
	default:
		return nil, badRequest("unknown priority %q (want high, normal, or low)", req.Priority)
	}

	stateIdx, labels, rerr := selectStates(mna, req.Nodes)
	if rerr != nil {
		return nil, rerr
	}

	var deadline time.Duration
	if req.Deadline != nil {
		sec := req.Deadline.V
		if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
			return nil, badRequest("deadline must be a non-negative finite number of seconds, got %g", sec)
		}
		deadline = time.Duration(sec * float64(time.Second))
	}

	var x0 []float64
	if len(deck.ICs) > 0 {
		x0, err = mna.InitialState(deck.ICs)
		if err != nil {
			return nil, unservable("initial conditions: %v", err)
		}
	}

	scales := make([]float64, count)
	scenarios := make([]core.Scenario, count)
	for s := 0; s < count; s++ {
		scale := lo
		if count > 1 {
			scale = lo + (hi-lo)*float64(s)/float64(count-1)
		}
		scales[s] = scale
		u := make([]waveform.Signal, len(mna.Inputs))
		for i, base := range mna.Inputs {
			base, scale := base, scale
			u[i] = func(t float64) float64 { return scale * base(t) }
		}
		scenarios[s] = core.Scenario{U: u, X0: x0}
		if tol > 0 && s > 0 {
			perts, err := netgen.MonteCarloPerturb(deck.Netlist, perturbNames, seed, s, tol)
			if err != nil {
				return nil, badRequest("sweep tolerance draw: %v", err)
			}
			d, err := deck.Netlist.StampDelta(mna, perts)
			if err != nil {
				return nil, unservable("sweep tolerance delta: %v", err)
			}
			if d.Rank() > 0 {
				scenarios[s].Delta = d
			}
		}
	}

	hasDeltas := false
	for s := range scenarios {
		if scenarios[s].Delta != nil {
			hasDeltas = true
			break
		}
	}
	return &job{
		title:     deck.Title,
		mna:       mna,
		scenarios: scenarios,
		scales:    scales,
		m:         m,
		T:         T,
		history:   hist,
		prio:      prio,
		stateIdx:  stateIdx,
		labels:    labels,
		deadline:  deadline,
		hasDeltas: hasDeltas,
	}, nil
}

// selectStates resolves requested node names against the MNA state vector. A
// name matches either a state label verbatim ("v(out)", "i(L1)") or as a bare
// node name ("out" → "v(out)"). An empty request selects every state.
func selectStates(mna *circuit.MNA, nodes []string) ([]int, []string, *RequestError) {
	if len(nodes) == 0 {
		idx := make([]int, len(mna.StateNames))
		for i := range idx {
			idx[i] = i
		}
		return idx, append([]string(nil), mna.StateNames...), nil
	}
	var idx []int
	var labels []string
	for _, name := range nodes {
		name = strings.TrimSpace(name)
		found := -1
		for i, sn := range mna.StateNames {
			if sn == name || sn == "v("+name+")" {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, nil, badRequest("node %q not found (known states: %s)", name, strings.Join(mna.StateNames, ", "))
		}
		idx = append(idx, found)
		labels = append(labels, mna.StateNames[found])
	}
	return idx, labels, nil
}
