package serve

import (
	"strconv"
	"testing"
)

// FuzzServeRequest fuzzes the /v1/solve request decoder — the exact function
// the handler runs on every raw body before admission. The contract under
// fuzz: parseRequest never panics, and every rejection is a typed
// *RequestError carrying a 4xx status (the handler turns nil into a solve and
// anything else into that status — a 5xx or a panic here would take down the
// request goroutine).
func FuzzServeRequest(f *testing.F) {
	// Seeds: one representative of each decode stage so the fuzzer starts on
	// both sides of every validation branch.
	f.Add([]byte(solveBody(tinyDeck, 16, 3, 0.5, 1.5, `"history": "fft", "priority": "high", "nodes": ["n2"]`)))
	f.Add([]byte(solveBody(quickstartDeck, 0, 0, 1, 1, `"tstop": "60m"`)))
	f.Add([]byte(`{"netlist": `))                                                                             // truncated JSON
	f.Add([]byte(`{"netlist": ""}`))                                                                          // empty deck
	f.Add([]byte(`{"netlist": "t\nR1 a\n"}`))                                                                 // short card
	f.Add([]byte(`{"netlist": "t\nQ9 a b 1\n"}`))                                                             // unknown card
	f.Add([]byte(`{"netlist": "t\nR1 a b 1k\n"}`))                                                            // no .tran, no tstop
	f.Add([]byte(`{"netlist": "t\nV1 a 0 STEP 1\nR1 a b 1k\nD1 b 0 1e-12\n.tran 1m 1\n"}`))                   // nonlinear
	f.Add([]byte(solveBody(tinyDeck, -1, 1, 1, 1, "")))                                                       // bad steps
	f.Add([]byte(solveBody(tinyDeck, 1<<30, 1, 1, 1, "")))                                                    // steps over limit
	f.Add([]byte(`{"netlist": ` + strconv.Quote(tinyDeck) + `, "sweep": {"count": 4, "lo": "1x", "hi": 2}}`)) // bad suffix
	f.Add([]byte(`{"netlist": ` + strconv.Quote(tinyDeck) + `, "tstop": 1e308, "steps": 2}`))
	f.Add([]byte(`{"netlist": ` + strconv.Quote(tinyDeck) + `, "priority": "urgent"}`))
	f.Add([]byte(`{"netlist": ` + strconv.Quote(tinyDeck) + `, "nodes": ["ghost"]}`))

	cfg := Config{}.withDefaults()
	// Tight solver-facing limits keep the fuzzer from building huge jobs; the
	// decode paths under test do not depend on the limit values.
	cfg.MaxSteps = 1 << 12
	cfg.MaxScenarios = 64

	f.Fuzz(func(t *testing.T, body []byte) {
		job, rerr := parseRequest(body, &cfg)
		if rerr != nil {
			if job != nil {
				t.Fatalf("parseRequest returned both a job and an error (%v)", rerr)
			}
			if rerr.Status < 400 || rerr.Status > 499 {
				t.Fatalf("rejection status = %d (%s), contract is 4xx only", rerr.Status, rerr.Msg)
			}
			if rerr.Msg == "" {
				t.Fatal("rejection with an empty message")
			}
			return
		}
		// Accepted: the job must be internally consistent enough to solve.
		if job == nil {
			t.Fatal("parseRequest returned neither job nor error")
		}
		if job.mna == nil || job.m < 1 || job.m > cfg.MaxSteps || !(job.T > 0) {
			t.Fatalf("accepted job is malformed: m=%d T=%g", job.m, job.T)
		}
		if len(job.scenarios) == 0 || len(job.scenarios) > cfg.MaxScenarios || len(job.scenarios) != len(job.scales) {
			t.Fatalf("accepted job has inconsistent sweep: %d scenarios, %d scales", len(job.scenarios), len(job.scales))
		}
		if len(job.stateIdx) == 0 || len(job.stateIdx) != len(job.labels) {
			t.Fatalf("accepted job has inconsistent state selection: %d idx, %d labels", len(job.stateIdx), len(job.labels))
		}
		for _, i := range job.stateIdx {
			if i < 0 || i >= len(job.mna.StateNames) {
				t.Fatalf("state index %d out of range [0,%d)", i, len(job.mna.StateNames))
			}
		}
		if job.prio < 0 || job.prio >= numPriorities {
			t.Fatalf("accepted job has priority %d outside the class range", job.prio)
		}
	})
}
