package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is the number of most-recent job latencies retained for the
// percentile estimates. A power-of-two ring keeps the /metrics scrape cheap
// (copy + sort of at most this many durations) while covering enough history
// that p99 is meaningful under steady traffic.
const latencyWindow = 1024

// metrics aggregates the service counters surfaced by /metrics. All methods
// are safe for concurrent use; the latency percentiles are computed on
// scrape from a ring of recent samples.
type metrics struct {
	mu         sync.Mutex
	submitted  int64
	completed  int64
	failed     int64
	cancelled  int64
	rejected   int64 // 429 load sheds
	badRequest int64 // 4xx before admission
	inFlight   int

	// Resilience counters (journal, resume, breaker, deadlines).
	resumed         int64 // /v1/resume attempts that reached a slot
	suspended       int64 // interrupted jobs parked for resume
	deadlineExpired int64 // jobs suspended by their wall-clock deadline
	breakerTrips    int64 // breaker open transitions
	breakerFastFail int64 // submissions 422'd by an open breaker
	journalFailures int64 // journal writes/recoveries that failed
	recoveredJobs   int64 // jobs re-admitted from the journal at startup
	evictedJobs     int64 // suspended jobs evicted by the pool bound
	journalRejected int64 // journals renamed aside as unreadable at startup

	lat      [latencyWindow]time.Duration
	latNext  int
	latCount int
}

func newMetrics() *metrics { return &metrics{} }

func (m *metrics) incSubmitted()  { m.mu.Lock(); m.submitted++; m.mu.Unlock() }
func (m *metrics) incCompleted()  { m.mu.Lock(); m.completed++; m.mu.Unlock() }
func (m *metrics) incFailed()     { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *metrics) incCancelled()  { m.mu.Lock(); m.cancelled++; m.mu.Unlock() }
func (m *metrics) incRejected()   { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) incBadRequest() { m.mu.Lock(); m.badRequest++; m.mu.Unlock() }
func (m *metrics) startJob()      { m.mu.Lock(); m.inFlight++; m.mu.Unlock() }
func (m *metrics) endJob()        { m.mu.Lock(); m.inFlight--; m.mu.Unlock() }

func (m *metrics) incResumed()         { m.mu.Lock(); m.resumed++; m.mu.Unlock() }
func (m *metrics) incSuspended()       { m.mu.Lock(); m.suspended++; m.mu.Unlock() }
func (m *metrics) incDeadlineExpired() { m.mu.Lock(); m.deadlineExpired++; m.mu.Unlock() }
func (m *metrics) incBreakerTrip()     { m.mu.Lock(); m.breakerTrips++; m.mu.Unlock() }
func (m *metrics) incBreakerFastFail() { m.mu.Lock(); m.breakerFastFail++; m.mu.Unlock() }
func (m *metrics) incJournalFailure()  { m.mu.Lock(); m.journalFailures++; m.mu.Unlock() }
func (m *metrics) incRecovered()       { m.mu.Lock(); m.recoveredJobs++; m.mu.Unlock() }
func (m *metrics) incEvicted()         { m.mu.Lock(); m.evictedJobs++; m.mu.Unlock() }
func (m *metrics) addJournalRejected(n int64) {
	m.mu.Lock()
	m.journalRejected += n
	m.mu.Unlock()
}

// observeLatency folds one job's wall-clock duration into the ring.
func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.lat[m.latNext] = d
	m.latNext = (m.latNext + 1) % latencyWindow
	if m.latCount < latencyWindow {
		m.latCount++
	}
	m.mu.Unlock()
}

// Snapshot is the JSON shape served by GET /metrics.
type Snapshot struct {
	QueueDepth    int   `json:"queueDepth"`
	QueueCapacity int   `json:"queueCapacity"`
	Workers       int   `json:"workers"`
	InFlight      int   `json:"inFlight"`
	Submitted     int64 `json:"submitted"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Cancelled     int64 `json:"cancelled"`
	Rejected      int64 `json:"rejected"`
	BadRequests   int64 `json:"badRequests"`
	Resilience    struct {
		Resumed          int64 `json:"resumed"`
		Suspended        int64 `json:"suspended"`
		DeadlineExpiries int64 `json:"deadlineExpiries"`
		BreakerTrips     int64 `json:"breakerTrips"`
		BreakerFastFails int64 `json:"breakerFastFails"`
		JournalFailures  int64 `json:"journalFailures"`
		RecoveredJobs    int64 `json:"recoveredJobs"`
		EvictedJobs      int64 `json:"evictedJobs"`
		JournalRejected  int64 `json:"journalRejected"`
	} `json:"resilience"`
	FactorCache struct {
		// Hits: a cached pencil factorization reused as-is. UpdateHits: a
		// cached base factorization reused through the SMW UpdatedSolve tier
		// (a low-rank Woodbury correction instead of a refactorization).
		// Misses: a fresh factorization built and cached. HitRate counts both
		// hit flavors against the total, since both avoid a factorization.
		Hits       int     `json:"cache_hit"`
		UpdateHits int     `json:"cache_update_hit"`
		Misses     int     `json:"cache_miss"`
		HitRate    float64 `json:"hitRate"`
		Entries    int     `json:"entries"`
	} `json:"factorCache"`
	Latency struct {
		Count    int     `json:"count"`
		P50Milli float64 `json:"p50ms"`
		P99Milli float64 `json:"p99ms"`
	} `json:"latency"`
}

// snapshot captures the counters; the caller fills in the factor-cache block
// (owned by core.FactorCache) afterwards.
func (m *metrics) snapshot(queueDepth, workers, queueCap int) *Snapshot {
	m.mu.Lock()
	snap := &Snapshot{
		QueueDepth:    queueDepth,
		QueueCapacity: queueCap,
		Workers:       workers,
		InFlight:      m.inFlight,
		Submitted:     m.submitted,
		Completed:     m.completed,
		Failed:        m.failed,
		Cancelled:     m.cancelled,
		Rejected:      m.rejected,
		BadRequests:   m.badRequest,
	}
	snap.Resilience.Resumed = m.resumed
	snap.Resilience.Suspended = m.suspended
	snap.Resilience.DeadlineExpiries = m.deadlineExpired
	snap.Resilience.BreakerTrips = m.breakerTrips
	snap.Resilience.BreakerFastFails = m.breakerFastFail
	snap.Resilience.JournalFailures = m.journalFailures
	snap.Resilience.RecoveredJobs = m.recoveredJobs
	snap.Resilience.EvictedJobs = m.evictedJobs
	snap.Resilience.JournalRejected = m.journalRejected
	n := m.latCount
	window := make([]time.Duration, n)
	copy(window, m.lat[:n])
	m.mu.Unlock()

	snap.Latency.Count = n
	if n > 0 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		snap.Latency.P50Milli = float64(window[(n-1)*50/100]) / float64(time.Millisecond)
		snap.Latency.P99Milli = float64(window[(n-1)*99/100]) / float64(time.Millisecond)
	}
	return snap
}
