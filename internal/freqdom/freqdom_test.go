package freqdom

import (
	"math"
	"testing"

	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

func scalar(v float64) *mat.Dense { return mat.NewDenseFrom(1, 1, []float64{v}) }

func TestSolveIntegerOrderPeriodicInput(t *testing.T) {
	// ẋ = −x + sin(2πt) over one period: the FFT method solves the periodic
	// steady state exactly at the sampled frequencies.
	T := 1.0
	res, err := Solve(scalar(1), scalar(-1), scalar(1),
		[]waveform.Signal{waveform.Sine(1, 1, 0)}, 1, T, 128)
	if err != nil {
		t.Fatal(err)
	}
	w := 2 * math.Pi
	den := 1 + w*w
	for k, tt := range res.Times {
		want := (math.Sin(w*tt) - w*math.Cos(w*tt)) / den // periodic steady state
		if math.Abs(res.X.At(0, k)-want) > 1e-8 {
			t.Fatalf("x(%g) = %g, want %g", tt, res.X.At(0, k), want)
		}
	}
}

func TestSolveOutputIsReal(t *testing.T) {
	// Hermitian symmetry of (jω)^α must make the IFFT real; indirectly
	// verified by comparing against a half-order relaxation's periodic
	// response magnitude staying bounded.
	res, err := Solve(scalar(1), scalar(-1), scalar(1),
		[]waveform.Signal{waveform.Sine(1, 2, 0.4)}, 0.5, 1, 100) // N=100 exercises Bluestein
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Times {
		if math.IsNaN(res.X.At(0, k)) || math.Abs(res.X.At(0, k)) > 10 {
			t.Fatalf("unstable/NaN sample at %d: %g", k, res.X.At(0, k))
		}
	}
}

func TestSolveFractionalSteadyStateGain(t *testing.T) {
	// d^½x = −x + u with constant input: DC gain is 1 (solve −A x = B u).
	res, err := Solve(scalar(1), scalar(-1), scalar(1),
		[]waveform.Signal{waveform.Constant(1)}, 0.5, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A constant input has only the DC bin; response is the constant DC
	// solution x = 1 at every sample.
	for k := range res.Times {
		if math.Abs(res.X.At(0, k)-1) > 1e-10 {
			t.Fatalf("DC response sample %d = %g, want 1", k, res.X.At(0, k))
		}
	}
}

func TestMoreSamplesImproveAccuracy(t *testing.T) {
	// Against a dense reference (N=1024), N=100 must beat N=8 — the FFT-1 vs
	// FFT-2 ordering of Table I.
	T := 1.0
	u := []waveform.Signal{waveform.Sine(1, 1, 0.3)}
	ref, err := Solve(scalar(1), scalar(-1), scalar(1), u, 0.5, T, 1024)
	if err != nil {
		t.Fatal(err)
	}
	times := waveform.UniformTimes(64, T*0.99)
	refS := ref.SampleState(0, times)
	errFor := func(n int) float64 {
		r, err := Solve(scalar(1), scalar(-1), scalar(1), u, 0.5, T, n)
		if err != nil {
			t.Fatal(err)
		}
		s := r.SampleState(0, times)
		worst := 0.0
		for i := range s {
			if d := math.Abs(s[i] - refS[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	e8, e100 := errFor(8), errFor(100)
	if e100 >= e8 {
		t.Fatalf("N=100 error %g not better than N=8 error %g", e100, e8)
	}
}

func TestSolveValidation(t *testing.T) {
	u := []waveform.Signal{waveform.Zero()}
	if _, err := Solve(scalar(1), mat.NewDenseFrom(2, 2, []float64{1, 0, 0, 1}), scalar(1), u, 1, 1, 8); err == nil {
		t.Fatal("accepted mismatched A")
	}
	if _, err := Solve(scalar(1), scalar(-1), scalar(1), nil, 1, 1, 8); err == nil {
		t.Fatal("accepted missing inputs")
	}
	if _, err := Solve(scalar(1), scalar(-1), scalar(1), u, 0, 1, 8); err == nil {
		t.Fatal("accepted α=0")
	}
	if _, err := Solve(scalar(1), scalar(-1), scalar(1), u, 1, 0, 8); err == nil {
		t.Fatal("accepted T=0")
	}
	if _, err := Solve(scalar(1), scalar(-1), scalar(1), u, 1, 1, 0); err == nil {
		t.Fatal("accepted N=0")
	}
	// Singular A makes the DC solve fail.
	if _, err := Solve(scalar(1), scalar(0), scalar(1), u, 1, 1, 8); err == nil {
		t.Fatal("accepted singular A")
	}
}

func TestFracPowerSymmetry(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 1.5} {
		for _, w := range []float64{0.1, 1, 17} {
			plus := fracPower(w, alpha)
			minus := fracPower(-w, alpha)
			if math.Abs(real(plus)-real(minus)) > 1e-12 || math.Abs(imag(plus)+imag(minus)) > 1e-12 {
				t.Fatalf("Hermitian symmetry broken at α=%g ω=%g", alpha, w)
			}
		}
	}
	if fracPower(0, 0.5) != 0 {
		t.Fatal("fracPower(0) != 0")
	}
	// α = 1 must reduce to jω.
	got := fracPower(2, 1)
	if math.Abs(real(got)) > 1e-12 || math.Abs(imag(got)-2) > 1e-12 {
		t.Fatalf("fracPower(2,1) = %v, want 2j", got)
	}
}
