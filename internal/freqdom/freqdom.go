// Package freqdom implements the frequency-domain FDE solver the paper uses
// as comparison baseline in Table I ("FFT-1"/"FFT-2"): the input is
// transformed with an FFT, the fractional system is solved per frequency as
// a complex linear system ((jω)^α·E − A)·X(jω) = B·U(jω), and the response is
// transformed back with the inverse FFT. Accuracy is controlled by the number
// of frequency sampling points N, and the arithmetic is complex throughout —
// the two properties Table I probes.
package freqdom

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"opmsim/internal/fft"
	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

// Result holds the time-domain samples produced by Solve: column k of X is
// the state at Times[k] = k·T/N.
type Result struct {
	Times []float64
	X     *mat.Dense // n × N
}

// Solve simulates E·dᵅx/dtᵅ = A·x + B·u over [0, T) using N frequency
// sampling points. A must be nonsingular (the DC solve is (−A)·x = B·u₀).
// Matrices are dense because each frequency needs an independent complex
// factorization; the paper's fractional example has n = 7.
func Solve(e, a, b *mat.Dense, u []waveform.Signal, alpha, T float64, n int) (*Result, error) {
	dim := e.Rows()
	if e.Cols() != dim || a.Rows() != dim || a.Cols() != dim || b.Rows() != dim {
		return nil, fmt.Errorf("freqdom: dimension mismatch")
	}
	if len(u) != b.Cols() {
		return nil, fmt.Errorf("freqdom: system has %d inputs, got %d signals", b.Cols(), len(u))
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("freqdom: order must be positive, got %g", alpha)
	}
	if n <= 0 || T <= 0 {
		return nil, fmt.Errorf("freqdom: need positive N and T, got N=%d T=%g", n, T)
	}
	// Sample and transform each input channel.
	p := b.Cols()
	times := make([]float64, n)
	for k := range times {
		times[k] = float64(k) * T / float64(n)
	}
	uspec := make([][]complex128, p)
	for c := range uspec {
		samples := make([]float64, n)
		for k, t := range times {
			samples[k] = u[c](t)
		}
		uspec[c] = fft.RFFT(samples)
	}
	freqs, err := fft.Freqs(n, T)
	if err != nil {
		return nil, err
	}
	// Per-frequency complex solves; each frequency is independent, so fan
	// the work out across the CPUs.
	xspec := make([][]complex128, dim)
	for i := range xspec {
		xspec[i] = make([]complex128, n)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rhs := make([]complex128, dim)
			for k := worker; k < n; k += workers {
				s := fracPower(freqs[k], alpha)
				m := mat.NewCDense(dim, dim)
				for i := 0; i < dim; i++ {
					for j := 0; j < dim; j++ {
						m.Set(i, j, s*complex(e.At(i, j), 0)-complex(a.At(i, j), 0))
					}
				}
				f, err := mat.CLUFactor(m)
				if err != nil {
					errs[worker] = fmt.Errorf("freqdom: singular system at ω=%g (is A nonsingular?): %w", freqs[k], err)
					return
				}
				for i := 0; i < dim; i++ {
					var acc complex128
					for c := 0; c < p; c++ {
						acc += complex(b.At(i, c), 0) * uspec[c][k]
					}
					rhs[i] = acc
				}
				sol := f.Solve(rhs)
				for i := 0; i < dim; i++ {
					xspec[i][k] = sol[i]
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Back to time domain.
	res := &Result{Times: times, X: mat.NewDense(dim, n)}
	for i := 0; i < dim; i++ {
		td := fft.IFFT(xspec[i])
		for k := 0; k < n; k++ {
			res.X.Set(i, k, real(td[k]))
		}
	}
	return res, nil
}

// fracPower evaluates (jω)^α on the principal branch, preserving the
// Hermitian symmetry (j·(−ω))^α = conj((jω)^α) so the inverse transform of a
// real input stays real.
func fracPower(w, alpha float64) complex128 {
	if isExactZero(w) {
		return 0
	}
	mag := math.Pow(math.Abs(w), alpha)
	ph := alpha * math.Pi / 2
	if w < 0 {
		ph = -ph
	}
	return complex(mag*math.Cos(ph), mag*math.Sin(ph))
}

// SampleState linearly interpolates state i at the given times (periodic
// trajectories from the DFT are sampled on [0, T)).
func (r *Result) SampleState(i int, times []float64) []float64 {
	row := r.X.Row(i)
	out := make([]float64, len(times))
	for k, t := range times {
		out[k] = interp(r.Times, row, t)
	}
	return out
}

func interp(ts, vs []float64, t float64) float64 {
	if t <= ts[0] {
		return vs[0]
	}
	last := len(ts) - 1
	if t >= ts[last] {
		return vs[last]
	}
	lo, hi := 0, last
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ts[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - ts[lo]) / (ts[hi] - ts[lo])
	return vs[lo] + frac*(vs[hi]-vs[lo])
}
