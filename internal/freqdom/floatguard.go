package freqdom

// isExactZero reports whether v is exactly zero — the DC special case in the
// frequency sweep (s = 0 has a closed form), never a tolerance test. The
// floateq rule (cmd/opm-lint) flags raw float ==/!=.
func isExactZero(v float64) bool { return v == 0 }
