package fracfit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"opmsim/internal/core"
	"opmsim/internal/sparse"
	"opmsim/internal/specfn"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 10, 3); err == nil {
		t.Fatal("accepted α=0")
	}
	if _, err := New(1.5, 1, 10, 3); err == nil {
		t.Fatal("accepted α=1.5")
	}
	if _, err := New(0.5, 10, 1, 3); err == nil {
		t.Fatal("accepted inverted band")
	}
	if _, err := New(0.5, 1, 10, 0); err == nil {
		t.Fatal("accepted 0 sections")
	}
}

func TestMagnitudeAccuracyInBand(t *testing.T) {
	o, err := New(0.5, 1e-2, 1e2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if e := o.MaxBandError(64); e > 0.02 {
		t.Fatalf("band error %g > 2%%", e)
	}
}

func TestConstantPhaseInBand(t *testing.T) {
	// The phase transition region extends roughly a decade in from each
	// band edge, so design the band two decades wider than the probe range
	// and use 4 sections/decade to keep the ripple small.
	o, err := New(0.5, 1e-4, 1e4, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * math.Pi / 2
	for _, w := range []float64{0.1, 1, 10} {
		if ph := o.PhaseAt(w); math.Abs(ph-want) > 0.02 {
			t.Fatalf("phase at ω=%g is %g, want %g", w, ph, want)
		}
	}
}

// Property: the diagonal state-space realization reproduces the pole-zero
// transfer function at arbitrary frequencies.
func TestStateSpaceMatchesTransferProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.1 + 0.8*rng.Float64()
		if rng.Intn(2) == 0 {
			alpha = -alpha
		}
		n := 2 + rng.Intn(8)
		o, err := New(alpha, 1e-1, 1e3, n)
		if err != nil {
			return false
		}
		poles, res, d := o.StateSpace()
		for trial := 0; trial < 5; trial++ {
			w := math.Exp(math.Log(1e-2) + rng.Float64()*math.Log(1e6))
			s := complex(0, w)
			hs := complex(d, 0)
			for k := range poles {
				hs += complex(res[k], 0) / (s + complex(poles[k], 0))
			}
			if cmplx.Abs(hs-o.Eval(s)) > 1e-8*(1+cmplx.Abs(hs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreSectionsImproveFit(t *testing.T) {
	coarse, _ := New(0.5, 1e-2, 1e2, 4)
	fine, _ := New(0.5, 1e-2, 1e2, 16)
	if fine.MaxBandError(64) >= coarse.MaxBandError(64) {
		t.Fatalf("more sections did not improve the fit: %g vs %g",
			fine.MaxBandError(64), coarse.MaxBandError(64))
	}
}

// The headline cross-check: simulate the fractional relaxation
// d^½x = −x + u through the Oustaloup DAE with the trapezoidal rule (an
// entirely integer-order pipeline) and compare against the Mittag-Leffler
// analytic solution — the same reference the OPM fractional solver is tested
// against.
func TestOustaloupRelaxationVsMittagLeffler(t *testing.T) {
	const alpha = 0.5
	o, err := New(alpha, 1e-5, 1e4, 36)
	if err != nil {
		t.Fatal(err)
	}
	poles, res, d := o.StateSpace()
	nf := len(poles)
	// DAE over states [z₁..z_nf, x]:
	//   ż_k = −p_k z_k + x,
	//   0 = Σ r_k z_k + (d+1)·x − u   (the relaxation w + x = u with
	//                                  w = H(s)x ≈ d^α x).
	// In the E·ẋ = A·x + B·u convention the algebraic row
	// 0 = −Σ r_k z_k − (d+1)·x + u carries negated coefficients.
	dim := nf + 1
	eC := sparse.NewCOO(dim, dim)
	a2 := sparse.NewCOO(dim, dim)
	bC := sparse.NewCOO(dim, 1)
	for k := 0; k < nf; k++ {
		eC.Add(k, k, 1)
		a2.Add(k, k, -poles[k])
		a2.Add(k, nf, 1)
		a2.Add(nf, k, -res[k])
	}
	a2.Add(nf, nf, -(d + 1))
	bC.Add(nf, 0, 1)
	sim, err := transient.Simulate(eC.ToCSR(), a2.ToCSR(), bC.ToCSR(),
		[]waveform.Signal{waveform.Step(1, 0)}, 8, 1e-3, transient.Trapezoidal, transient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5, 1, 2, 4, 7} {
		ml, err := specfn.MittagLeffler(alpha, -math.Pow(tt, alpha))
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - ml
		got := sim.SampleState(nf, []float64{tt})[0]
		if math.Abs(got-want) > 2e-2*(1+want) {
			t.Fatalf("Oustaloup relaxation x(%g) = %g, Mittag-Leffler %g", tt, got, want)
		}
	}
}

// And the same integer-order pipeline agrees with the OPM fractional solver
// on a shared grid — closing the loop between the two approaches.
func TestOustaloupAgreesWithOPM(t *testing.T) {
	const alpha = 0.5
	o, err := New(alpha, 1e-5, 1e4, 36)
	if err != nil {
		t.Fatal(err)
	}
	poles, res, d := o.StateSpace()
	nf := len(poles)
	dim := nf + 1
	eC := sparse.NewCOO(dim, dim)
	a2 := sparse.NewCOO(dim, dim)
	bC := sparse.NewCOO(dim, 1)
	for k := 0; k < nf; k++ {
		eC.Add(k, k, 1)
		a2.Add(k, k, -poles[k])
		a2.Add(k, nf, 1)
		a2.Add(nf, k, -res[k])
	}
	a2.Add(nf, nf, -(d + 1))
	bC.Add(nf, 0, 1)
	u := []waveform.Signal{waveform.Sine(1, 0.2, 0)}
	T := 6.0
	sim, err := transient.Simulate(eC.ToCSR(), a2.ToCSR(), bC.ToCSR(), u, T, 1e-3,
		transient.Trapezoidal, transient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	one := sparse.NewCOO(1, 1)
	one.Add(0, 0, 1)
	sys, err := core.NewFDE(one.ToCSR(), one.ToCSR().Scale(-1), one.ToCSR(), alpha)
	if err != nil {
		t.Fatal(err)
	}
	opm, err := core.Solve(sys, u, 4096, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{1, 2.5, 4, 5.5} {
		a := sim.SampleState(nf, []float64{tt})[0]
		b := opm.StateAt(0, tt)
		if math.Abs(a-b) > 2e-2*(1+math.Abs(b)) {
			t.Fatalf("Oustaloup vs OPM at t=%g: %g vs %g", tt, a, b)
		}
	}
}
