// Package fracfit implements the Oustaloup recursive rational approximation
// of the fractional differentiator s^α. It is the classical way to realize
// fractional (constant-phase) behavior with integer-order networks, and —
// within this repository — provides an independent integer-order route to
// simulate fractional circuits that cross-checks the OPM fractional solver:
// approximate s^α by poles and zeros, build the equivalent DAE, and hand it
// to any classical transient method.
package fracfit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Oustaloup is the recursive approximation
//
//	s^α ≈ G · Π_{k=1..N} (s + z_k)/(s + p_k)
//
// valid over the frequency band [WLow, WHigh] (rad/s), with zeros and poles
// geometrically interleaved:
//
//	z_k = ωl·(ωh/ωl)^{(2k−1−α)/(2N)},  p_k = ωl·(ωh/ωl)^{(2k−1+α)/(2N)}.
type Oustaloup struct {
	Alpha        float64
	WLow, WHigh  float64
	Zeros, Poles []float64
	// Gain G makes |H(jω)| exact at the band's geometric center.
	Gain float64
}

// New builds an N-section Oustaloup approximation of s^α (0 < |α| < 1) over
// [wLow, wHigh].
func New(alpha, wLow, wHigh float64, n int) (*Oustaloup, error) {
	//lint:ignore floateq exact zero is excluded from the valid order domain, not a tolerance test
	if alpha <= -1 || alpha >= 1 || alpha == 0 {
		return nil, fmt.Errorf("fracfit: order must be in (−1,1)\\{0}, got %g", alpha)
	}
	if wLow <= 0 || wHigh <= wLow {
		return nil, fmt.Errorf("fracfit: need 0 < wLow < wHigh, got [%g, %g]", wLow, wHigh)
	}
	if n < 1 || n > 60 {
		return nil, fmt.Errorf("fracfit: sections must be in [1, 60], got %d", n)
	}
	o := &Oustaloup{Alpha: alpha, WLow: wLow, WHigh: wHigh,
		Zeros: make([]float64, n), Poles: make([]float64, n), Gain: 1}
	ratio := wHigh / wLow
	for k := 1; k <= n; k++ {
		o.Zeros[k-1] = wLow * math.Pow(ratio, (2*float64(k)-1-alpha)/(2*float64(n)))
		o.Poles[k-1] = wLow * math.Pow(ratio, (2*float64(k)-1+alpha)/(2*float64(n)))
	}
	// Calibrate the gain at the geometric band center.
	wc := math.Sqrt(wLow * wHigh)
	want := cmplx.Pow(complex(0, wc), complex(alpha, 0))
	have := o.Eval(complex(0, wc))
	o.Gain = cmplx.Abs(want) / cmplx.Abs(have)
	return o, nil
}

// Eval evaluates the rational approximation at a complex frequency s.
func (o *Oustaloup) Eval(s complex128) complex128 {
	h := complex(o.Gain, 0)
	for k := range o.Zeros {
		h *= (s + complex(o.Zeros[k], 0)) / (s + complex(o.Poles[k], 0))
	}
	return h
}

// StateSpace returns a minimal real diagonal realization of the
// approximation: H(s) = D + Σ_k C_k/(s + P_k) with
//
//	ẋ_k = −P_k·x_k + u,   y = Σ C_k·x_k + D·u.
//
// Poles are distinct by construction, so the partial-fraction residues are
// simple.
func (o *Oustaloup) StateSpace() (poles, residues []float64, dterm float64) {
	n := len(o.Poles)
	poles = append([]float64(nil), o.Poles...)
	residues = make([]float64, n)
	dterm = o.Gain // H(∞) = G in the (s+z)/(s+p) form
	for k := 0; k < n; k++ {
		r := o.Gain
		pk := o.Poles[k]
		for j := 0; j < n; j++ {
			r *= o.Zeros[j] - pk
			if j != k {
				r /= o.Poles[j] - pk
			}
		}
		residues[k] = r
	}
	return poles, residues, dterm
}

// MaxBandError returns the worst relative magnitude error
// ‖|H(jω)| − ω^α‖/ω^α over nProbe logarithmically spaced points in the
// *interior* of the fitted band (one decade trimmed from each edge when the
// band allows it — the approximation rolls off at the edges by construction,
// so the usable band is designed wider than the band of interest).
func (o *Oustaloup) MaxBandError(nProbe int) float64 {
	if nProbe < 2 {
		nProbe = 16
	}
	logL, logH := math.Log(o.WLow), math.Log(o.WHigh)
	if logH-logL > 3*math.Ln10 {
		logL += math.Ln10
		logH -= math.Ln10
	}
	worst := 0.0
	for i := 0; i < nProbe; i++ {
		w := math.Exp(logL + (logH-logL)*float64(i)/float64(nProbe-1))
		got := cmplx.Abs(o.Eval(complex(0, w)))
		want := math.Pow(w, o.Alpha)
		if e := math.Abs(got-want) / want; e > worst {
			worst = e
		}
	}
	return worst
}

// PhaseAt returns the phase of the approximation at ω (rad/s); the ideal
// differentiator has constant phase α·π/2 inside the band.
func (o *Oustaloup) PhaseAt(w float64) float64 {
	return cmplx.Phase(o.Eval(complex(0, w)))
}
