package circuit

import (
	"fmt"
	"math"
	"math/cmplx"

	"opmsim/internal/mat"
)

// ACResult holds a small-signal frequency sweep: H[k][o][i] is the transfer
// from input channel i to output o at angular frequency Omega[k].
type ACResult struct {
	Omega []float64
	H     [][][]complex128
}

// maxACDim bounds the dense complex solves used by the AC sweep.
const maxACDim = 2000

// AC computes the small-signal transfer functions at the given angular
// frequencies by solving
//
//	(Σ_k (jω)^{α_k}·E_k)·X = B
//
// per frequency — fractional CPE terms contribute their exact (jω)^α
// admittance, no approximation involved. Outputs follow the system's C
// (identity when unset). Nonlinear elements are not linearized; they must be
// absent.
func (m *MNA) AC(omega []float64) (*ACResult, error) {
	if m.Nonlinear != nil {
		return nil, fmt.Errorf("circuit: AC analysis requires a linear netlist (no diodes)")
	}
	if len(omega) == 0 {
		return nil, fmt.Errorf("circuit: AC needs at least one frequency")
	}
	n := m.Sys.N()
	if n > maxACDim {
		return nil, fmt.Errorf("circuit: AC limited to n ≤ %d, got %d", maxACDim, n)
	}
	p := m.Sys.Inputs()
	q := m.Sys.Outputs()
	res := &ACResult{Omega: append([]float64(nil), omega...), H: make([][][]complex128, len(omega))}
	bD := m.Sys.B.ToDense()
	for k, w := range omega {
		if w <= 0 {
			return nil, fmt.Errorf("circuit: AC frequencies must be positive, got %g", w)
		}
		sys := mat.NewCDense(n, n)
		for _, term := range m.Sys.Terms {
			s := fracJw(w, term.Order)
			c := term.Coeff
			for i := 0; i < c.R; i++ {
				for pp := c.RowPtr[i]; pp < c.RowPtr[i+1]; pp++ {
					sys.Add(i, c.ColIdx[pp], s*complex(c.Val[pp], 0))
				}
			}
		}
		f, err := mat.CLUFactor(sys)
		if err != nil {
			return nil, fmt.Errorf("circuit: AC system singular at ω=%g: %w", w, err)
		}
		res.H[k] = make([][]complex128, q)
		for o := 0; o < q; o++ {
			res.H[k][o] = make([]complex128, p)
		}
		rhs := make([]complex128, n)
		for in := 0; in < p; in++ {
			for i := 0; i < n; i++ {
				rhs[i] = complex(bD.At(i, in), 0)
			}
			x := f.Solve(rhs)
			if m.Sys.C == nil {
				for o := 0; o < q; o++ {
					res.H[k][o][in] = x[o]
				}
			} else {
				c := m.Sys.C
				for o := 0; o < q; o++ {
					var acc complex128
					for pp := c.RowPtr[o]; pp < c.RowPtr[o+1]; pp++ {
						acc += complex(c.Val[pp], 0) * x[c.ColIdx[pp]]
					}
					res.H[k][o][in] = acc
				}
			}
		}
	}
	return res, nil
}

// fracJw returns (jω)^α on the principal branch (α = 0 → 1, α = 1 → jω).
func fracJw(w, alpha float64) complex128 {
	if isExactZero(alpha) {
		return 1
	}
	mag := math.Pow(w, alpha)
	ph := alpha * math.Pi / 2
	return complex(mag*math.Cos(ph), mag*math.Sin(ph))
}

// LogSpace returns n angular frequencies logarithmically spaced over
// [wStart, wStop].
func LogSpace(wStart, wStop float64, n int) ([]float64, error) {
	if wStart <= 0 || wStop <= wStart || n < 2 {
		return nil, fmt.Errorf("circuit: LogSpace needs 0 < start < stop and n ≥ 2")
	}
	out := make([]float64, n)
	l0, l1 := math.Log(wStart), math.Log(wStop)
	for i := range out {
		out[i] = math.Exp(l0 + (l1-l0)*float64(i)/float64(n-1))
	}
	return out, nil
}

// MagDB returns 20·log₁₀|H| for output o, input i across the sweep.
func (r *ACResult) MagDB(o, i int) []float64 {
	out := make([]float64, len(r.Omega))
	for k := range out {
		out[k] = 20 * math.Log10(cmplx.Abs(r.H[k][o][i]))
	}
	return out
}

// PhaseDeg returns the phase in degrees for output o, input i.
func (r *ACResult) PhaseDeg(o, i int) []float64 {
	out := make([]float64, len(r.Omega))
	for k := range out {
		out[k] = cmplx.Phase(r.H[k][o][i]) * 180 / math.Pi
	}
	return out
}
