package circuit

import (
	"math"
	"strings"
	"testing"

	"opmsim/internal/core"
)

const subcktDeck = `rc filter bank
.subckt rcsec in out
Rs in out 1k
Cs out 0 1u
.ends
V1 a 0 STEP 1
X1 a b rcsec
X2 b c rcsec
.tran 100u 20m
`

func TestSubcktExpansion(t *testing.T) {
	d, err := Parse(strings.NewReader(subcktDeck))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Netlist.Stats()
	if s.R != 2 || s.C != 2 || s.V != 1 {
		t.Fatalf("Stats = %+v, want 2R 2C 1V", s)
	}
	// Shared port node "b" must be one node: a, b, c = 3 nodes.
	if s.Nodes != 3 {
		t.Fatalf("nodes = %d, want 3", s.Nodes)
	}
	// The flattened two-section ladder behaves like RCLadder(2,...).
	mna, err := d.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(mna.Sys, mna.Inputs, 1024, d.Tran.Stop, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cIdx := -1
	for i, nm := range mna.StateNames {
		if nm == "v(c)" {
			cIdx = i
		}
	}
	if cIdx < 0 {
		t.Fatalf("v(c) not found in %v", mna.StateNames)
	}
	late := sol.StateAt(cIdx, d.Tran.Stop*0.99)
	if late < 0.95 {
		t.Fatalf("two-section ladder settled at %g, want ≈1", late)
	}
}

func TestSubcktNested(t *testing.T) {
	deck := `nested
.subckt inner a b
Ri a b 500
.ends
.subckt outer x y
X1 x m inner
X2 m y inner
Cm m 0 1u
.ends
V1 p 0 DC 1
Xo p q outer
Rl q 0 1k
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Netlist.Stats()
	if s.R != 3 || s.C != 1 {
		t.Fatalf("Stats = %+v, want 3R 1C", s)
	}
	mna, err := d.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := mna.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// Divider: 1 V through 500+500 into 1k → v(q) = 0.5.
	qIdx := -1
	for i, nm := range mna.StateNames {
		if nm == "v(q)" {
			qIdx = i
		}
	}
	if qIdx < 0 {
		t.Fatalf("v(q) missing in %v", mna.StateNames)
	}
	if math.Abs(dc[qIdx]-0.5) > 1e-9 {
		t.Fatalf("v(q) = %g, want 0.5", dc[qIdx])
	}
}

func TestSubcktWithCoupling(t *testing.T) {
	deck := `transformer module
.subckt xfmr p s
Lp p 0 1
Ls s 0 1
Kc Lp Ls 0.99
.ends
V1 in 0 SIN 0 1 1k
X1 in out xfmr
RL out 0 1k
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Netlist.Couplings()) != 1 {
		t.Fatal("coupling inside subckt lost")
	}
	if _, err := d.Netlist.MNA(); err != nil {
		t.Fatalf("coupled subckt failed to assemble: %v", err)
	}
}

func TestSubcktErrors(t *testing.T) {
	bad := []string{
		"t\n.subckt s a\nR1 a 0 1\n",                  // unterminated
		"t\n.ends\n",                                  // stray .ends
		"t\n.subckt s a\n.tran 1 2\n.ends\n",          // directive inside
		"t\n.subckt s a\nR1 a 0 1\n.ends\nX1 b c s\n", // port count mismatch
		"t\nX1 a b nosuch\n",                          // unknown subckt
		"t\n.subckt s a\nR1 a 0 1\n.ends\n.subckt s a\nR1 a 0 1\n.ends\n", // duplicate
		"t\n.subckt s\n.ends\n",                       // no ports
		"t\n.subckt a p\n.subckt b q\n.ends\n.ends\n", // nested defs
	}
	for _, deck := range bad {
		if _, err := Parse(strings.NewReader(deck)); err == nil {
			t.Fatalf("accepted %q", deck)
		}
	}
}

func TestSubcktRecursionLimit(t *testing.T) {
	// A subckt that instantiates itself must hit the depth limit, not hang.
	deck := `recursive
.subckt loop a b
X1 a b loop
.ends
V1 p 0 DC 1
X0 p q loop
`
	if _, err := Parse(strings.NewReader(deck)); err == nil {
		t.Fatal("accepted unbounded recursion")
	}
}
