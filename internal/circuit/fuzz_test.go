package circuit

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseValue checks that ParseValue never panics and returns finite
// values on success.
func FuzzParseValue(f *testing.F) {
	for _, seed := range []string{
		"1", "1k", "2.2meg", "-3.5u", "1e9", "0", "", "x", "1..2", "1kohm",
		"1e", "1e+", "--1", "+.5n", "meg", "9999999999999999999t", "1mil",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseValue(s)
		if err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
			t.Fatalf("ParseValue(%q) = %g without error", s, v)
		}
	})
}

// FuzzParse checks that the netlist parser never panics on arbitrary input
// and that any accepted deck yields a structurally sound netlist.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleDeck,
		"t\nV1 a 0 DC 1\nR1 a 0 1k\n",
		"t\nI1 0 b PWL(0 0 1 1)\nP1 b 0 1u 0.5\n.tran 1u 1m\n.end\n",
		"* only a comment\n",
		"",
		"t\nR1 a b\n",
		"t\n.tran\n",
		"V1 in 0 PULSE(0 1 0 1n 1n 5n 10n)\nR1 in 0 1\n",
		"t\nG1 o 0 i 0 1m\nE1 p 0 o 0 2\nV1 i 0 DC 1\nRL o 0 1k\nRP p 0 1k\n",
		"t\nR1 a 0 1k ; comment\n\n\nC1 a 0 1u\nV1 a 0 SIN 0 1 1k\n",
		"\xff\n(", // regression: punctuation-only line must not crash the tokenizer
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		deck, err := Parse(strings.NewReader(s))
		if err != nil {
			return
		}
		// Accepted decks must be internally consistent.
		nl := deck.Netlist
		for _, e := range nl.Elements() {
			if e.Name == "" {
				t.Fatal("accepted element without name")
			}
			if e.NodeA == e.NodeB {
				t.Fatalf("accepted shorted element %q", e.Name)
			}
			if e.NodeA < 0 || e.NodeA > nl.NumNodes() || e.NodeB < 0 || e.NodeB > nl.NumNodes() {
				t.Fatalf("element %q references out-of-range node", e.Name)
			}
			switch e.Kind {
			case Resistor, Capacitor, Inductor, CPE:
				if e.Value <= 0 {
					t.Fatalf("accepted non-positive %s value %g", e.Kind, e.Value)
				}
			case VSource, ISource:
				if e.Source == nil {
					t.Fatalf("accepted source %q without signal", e.Name)
				}
			}
		}
		if deck.Tran != nil && (deck.Tran.Step <= 0 || deck.Tran.Stop < deck.Tran.Step) {
			t.Fatalf("accepted invalid .tran %+v", deck.Tran)
		}
	})
}
