// Package circuit provides the circuit-modeling substrate of the simulator:
// a netlist builder for R, L, C, voltage/current sources and fractional
// constant-phase elements (CPEs), modified-nodal-analysis (MNA) assembly into
// the descriptor systems OPM consumes, the second-order nodal-analysis (NA)
// formulation of §V-B, and a SPICE-flavoured netlist parser.
package circuit

import (
	"fmt"

	"opmsim/internal/waveform"
)

// Kind enumerates element types.
type Kind int

const (
	// Resistor has Value in ohms.
	Resistor Kind = iota
	// Capacitor has Value in farads.
	Capacitor
	// Inductor has Value in henries; it adds a branch-current state.
	Inductor
	// VSource is an independent voltage source; it adds a current state and
	// one input channel.
	VSource
	// ISource is an independent current source; it adds one input channel.
	// Positive Value convention: the source drives current out of node A
	// and into node B.
	ISource
	// CPE is a constant-phase element (fractional capacitor): its branch
	// current is i = Value·dᵅ(v_a − v_b)/dtᵅ with α = Order. CPEs model
	// supercapacitors, lossy dielectrics and the fractional transmission
	// lines of §V-A.
	CPE
	// VCCS is a voltage-controlled current source (SPICE "G" card): a
	// current Value·(v_c − v_d) flows from NodeA to NodeB.
	VCCS
	// VCVS is a voltage-controlled voltage source (SPICE "E" card):
	// v_a − v_b = Value·(v_c − v_d); it adds a branch-current state.
	VCVS
	// Diode is an exponential junction diode (anode NodeA, cathode NodeB):
	// i = Value·(exp((v_a − v_b)/Order) − 1), with Value = Is and
	// Order = Vt. It makes the netlist nonlinear.
	Diode
)

// String names the element kind.
func (k Kind) String() string {
	switch k {
	case Resistor:
		return "R"
	case Capacitor:
		return "C"
	case Inductor:
		return "L"
	case VSource:
		return "V"
	case ISource:
		return "I"
	case CPE:
		return "P"
	case VCCS:
		return "G"
	case VCVS:
		return "E"
	case Diode:
		return "D"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Element is one netlist entry. Nodes are internal indices with 0 = ground.
type Element struct {
	Kind   Kind
	Name   string
	NodeA  int
	NodeB  int
	NodeC  int // controlling + terminal (VCCS/VCVS only)
	NodeD  int // controlling − terminal (VCCS/VCVS only)
	Value  float64
	Order  float64         // CPE only
	Source waveform.Signal // V/I sources only
}

// Netlist is an in-memory circuit description. The zero value is empty and
// ready to use; nodes are created on demand via Node.
type Netlist struct {
	elements  []Element
	couplings []Coupling
	nodeNames []string       // index 1.. → name; ground is index 0
	nodeIdx   map[string]int // name → index
	names     map[string]bool
}

// New returns an empty netlist.
func New() *Netlist {
	return &Netlist{
		nodeNames: []string{"0"},
		nodeIdx:   map[string]int{"0": 0, "gnd": 0, "GND": 0},
		names:     map[string]bool{},
	}
}

// Node returns the index of the named node, creating it if necessary.
// "0", "gnd" and "GND" denote ground (index 0).
func (n *Netlist) Node(name string) int {
	if idx, ok := n.nodeIdx[name]; ok {
		return idx
	}
	idx := len(n.nodeNames)
	n.nodeNames = append(n.nodeNames, name)
	n.nodeIdx[name] = idx
	return idx
}

// NumNodes returns the number of non-ground nodes.
func (n *Netlist) NumNodes() int { return len(n.nodeNames) - 1 }

// NodeName returns the name of node idx.
func (n *Netlist) NodeName(idx int) string { return n.nodeNames[idx] }

// Elements returns the element list (a view).
func (n *Netlist) Elements() []Element { return n.elements }

func (n *Netlist) add(e Element) error {
	if e.Name == "" {
		return fmt.Errorf("circuit: element needs a name")
	}
	if n.names[e.Name] {
		return fmt.Errorf("circuit: duplicate element name %q", e.Name)
	}
	if e.NodeA < 0 || e.NodeA >= len(n.nodeNames) || e.NodeB < 0 || e.NodeB >= len(n.nodeNames) {
		return fmt.Errorf("circuit: element %q references unknown node", e.Name)
	}
	if e.NodeA == e.NodeB {
		return fmt.Errorf("circuit: element %q is shorted (both terminals on node %d)", e.Name, e.NodeA)
	}
	n.names[e.Name] = true
	n.elements = append(n.elements, e)
	return nil
}

// AddR adds a resistor of r ohms between nodes a and b.
func (n *Netlist) AddR(name string, a, b int, r float64) error {
	if r <= 0 {
		return fmt.Errorf("circuit: resistor %q must have positive resistance, got %g", name, r)
	}
	return n.add(Element{Kind: Resistor, Name: name, NodeA: a, NodeB: b, Value: r})
}

// AddC adds a capacitor of c farads between nodes a and b.
func (n *Netlist) AddC(name string, a, b int, c float64) error {
	if c <= 0 {
		return fmt.Errorf("circuit: capacitor %q must have positive capacitance, got %g", name, c)
	}
	return n.add(Element{Kind: Capacitor, Name: name, NodeA: a, NodeB: b, Value: c})
}

// AddL adds an inductor of l henries between nodes a and b.
func (n *Netlist) AddL(name string, a, b int, l float64) error {
	if l <= 0 {
		return fmt.Errorf("circuit: inductor %q must have positive inductance, got %g", name, l)
	}
	return n.add(Element{Kind: Inductor, Name: name, NodeA: a, NodeB: b, Value: l})
}

// AddV adds a voltage source with positive terminal a, driven by src.
func (n *Netlist) AddV(name string, a, b int, src waveform.Signal) error {
	if src == nil {
		return fmt.Errorf("circuit: voltage source %q needs a signal", name)
	}
	return n.add(Element{Kind: VSource, Name: name, NodeA: a, NodeB: b, Source: src})
}

// AddI adds a current source pushing current from node a to node b through
// itself (i.e. out of a, into b), driven by src.
func (n *Netlist) AddI(name string, a, b int, src waveform.Signal) error {
	if src == nil {
		return fmt.Errorf("circuit: current source %q needs a signal", name)
	}
	return n.add(Element{Kind: ISource, Name: name, NodeA: a, NodeB: b, Source: src})
}

// AddCPE adds a constant-phase element with pseudo-capacitance c and
// fractional order alpha in (0, 2).
func (n *Netlist) AddCPE(name string, a, b int, c, alpha float64) error {
	if c <= 0 {
		return fmt.Errorf("circuit: CPE %q must have positive pseudo-capacitance, got %g", name, c)
	}
	if alpha <= 0 || alpha >= 2 {
		return fmt.Errorf("circuit: CPE %q order must be in (0,2), got %g", name, alpha)
	}
	return n.add(Element{Kind: CPE, Name: name, NodeA: a, NodeB: b, Value: c, Order: alpha})
}

// Coupling is a mutual-inductance declaration between two named inductors:
// M = K·√(L₁·L₂), |K| < 1.
type Coupling struct {
	Name   string
	L1, L2 string
	K      float64
}

// AddK declares mutual coupling K between the two named inductors. The
// inductors may be added before or after the coupling; existence is checked
// at MNA assembly.
func (n *Netlist) AddK(name, l1, l2 string, k float64) error {
	if name == "" {
		return fmt.Errorf("circuit: coupling needs a name")
	}
	if n.names[name] {
		return fmt.Errorf("circuit: duplicate element name %q", name)
	}
	if l1 == l2 {
		return fmt.Errorf("circuit: coupling %q references the same inductor twice", name)
	}
	if k <= -1 || k >= 1 || isExactZero(k) {
		return fmt.Errorf("circuit: coupling %q needs 0 < |K| < 1, got %g", name, k)
	}
	n.names[name] = true
	n.couplings = append(n.couplings, Coupling{Name: name, L1: l1, L2: l2, K: k})
	return nil
}

// Couplings returns the declared mutual inductances.
func (n *Netlist) Couplings() []Coupling { return n.couplings }

// AddVCCS adds a voltage-controlled current source: gm·(v_c − v_d) flows
// from node a to node b.
func (n *Netlist) AddVCCS(name string, a, b, c, d int, gm float64) error {
	if err := n.checkCtrl(name, c, d); err != nil {
		return err
	}
	return n.add(Element{Kind: VCCS, Name: name, NodeA: a, NodeB: b, NodeC: c, NodeD: d, Value: gm})
}

// AddVCVS adds a voltage-controlled voltage source:
// v_a − v_b = gain·(v_c − v_d).
func (n *Netlist) AddVCVS(name string, a, b, c, d int, gain float64) error {
	if err := n.checkCtrl(name, c, d); err != nil {
		return err
	}
	return n.add(Element{Kind: VCVS, Name: name, NodeA: a, NodeB: b, NodeC: c, NodeD: d, Value: gain})
}

func (n *Netlist) checkCtrl(name string, c, d int) error {
	if c < 0 || c >= len(n.nodeNames) || d < 0 || d >= len(n.nodeNames) {
		return fmt.Errorf("circuit: controlled source %q references unknown controlling node", name)
	}
	if c == d {
		return fmt.Errorf("circuit: controlled source %q has identical controlling terminals", name)
	}
	return nil
}

// Stats summarizes the netlist contents.
type Stats struct {
	Nodes, R, C, L, V, I, CPE, VCCS, VCVS, D int
}

// Stats returns element counts.
func (n *Netlist) Stats() Stats {
	s := Stats{Nodes: n.NumNodes()}
	for _, e := range n.elements {
		switch e.Kind {
		case Resistor:
			s.R++
		case Capacitor:
			s.C++
		case Inductor:
			s.L++
		case VSource:
			s.V++
		case ISource:
			s.I++
		case CPE:
			s.CPE++
		case VCCS:
			s.VCCS++
		case VCVS:
			s.VCVS++
		case Diode:
			s.D++
		}
	}
	return s
}
