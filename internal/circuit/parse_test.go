package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestParseValueTable(t *testing.T) {
	cases := map[string]float64{
		"1":     1,
		"1.5":   1.5,
		"-3":    -3,
		"1k":    1e3,
		"2.2K":  2.2e3,
		"1meg":  1e6,
		"10MEG": 1e7,
		"1m":    1e-3,
		"1u":    1e-6,
		"1uF":   1e-6,
		"100n":  1e-7,
		"5p":    5e-12,
		"2f":    2e-15,
		"3g":    3e9,
		"1t":    1e12,
		"1e-3":  1e-3,
		"2.5e6": 2.5e6,
		"1kohm": 1e3,
		"1.2nH": 1.2e-9,
		"5v":    5,
		"10ohm": 10,
	}
	for s, want := range cases {
		got, err := ParseValue(s)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", s, err)
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("ParseValue(%q) = %g, want %g", s, got, want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, s := range []string{"", "abc", "1x", "--3", "1.2.3"} {
		if _, err := ParseValue(s); err == nil {
			t.Fatalf("ParseValue(%q) accepted", s)
		}
	}
}

const sampleDeck = `RC lowpass example
* a comment line
V1 in 0 PULSE(0 1 0 1n 1n 5n 10n)
R1 in out 1k
C1 out 0 1u ; trailing comment
.tran 1u 1m
.end
`

func TestParseDeck(t *testing.T) {
	deck, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	if deck.Title != "RC lowpass example" {
		t.Fatalf("Title = %q", deck.Title)
	}
	s := deck.Netlist.Stats()
	if s.R != 1 || s.C != 1 || s.V != 1 || s.Nodes != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if deck.Tran == nil || deck.Tran.Step != 1e-6 || deck.Tran.Stop != 1e-3 {
		t.Fatalf("Tran = %+v", deck.Tran)
	}
	// Pulse source parsed: value at 3 ns should be 1.
	var src Element
	for _, e := range deck.Netlist.Elements() {
		if e.Kind == VSource {
			src = e
		}
	}
	if src.Source == nil || math.Abs(src.Source(3e-9)-1) > 1e-12 {
		t.Fatal("pulse source misparsed")
	}
}

func TestParseAllSourceKinds(t *testing.T) {
	deck := `sources
V1 a 0 DC 5
V2 b 0 STEP 2 1u
V3 c 0 SIN 0 1 1k
V4 d 0 SIN(0.5 1 1k 0.2)
I1 0 e PWL(0 0 1u 1 2u 0)
I2 0 f 3m
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	els := d.Netlist.Elements()
	if len(els) != 6 {
		t.Fatalf("parsed %d elements", len(els))
	}
	if v := els[0].Source(0); v != 5 {
		t.Fatalf("DC = %g", v)
	}
	if v := els[1].Source(0); v != 0 {
		t.Fatalf("STEP before t0 = %g", v)
	}
	if v := els[1].Source(2e-6); v != 2 {
		t.Fatalf("STEP after t0 = %g", v)
	}
	if v := els[4].Source(1e-6); math.Abs(v-1) > 1e-12 {
		t.Fatalf("PWL peak = %g", v)
	}
	if v := els[5].Source(9); math.Abs(v-3e-3) > 1e-15 {
		t.Fatalf("bare DC = %g", v)
	}
}

func TestParseCPECard(t *testing.T) {
	d, err := Parse(strings.NewReader("cpe\nI1 0 a DC 1\nP1 a 0 1u 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Netlist.Stats()
	if s.CPE != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"t\nR1 a b\n",           // too few fields
		"t\nQ1 a b 5\n",         // unknown card
		"t\nV1 a 0 WUT 1\n",     // unknown source kind
		"t\nV1 a 0 SIN 1\n",     // SIN arity
		"t\nV1 a 0 PULSE 1 2\n", // PULSE arity
		"t\nI1 a 0 PWL 0 0 1\n", // PWL odd args
		"t\n.tran 1\n",          // tran arity
		"t\n.tran 2 1\n",        // tran step > stop
		"t\n.opts foo\n",        // unsupported directive
		"t\nR1 a b 1x\n",        // bad value
		"t\nP1 a 0 1u\n",        // CPE missing order
	}
	for _, deck := range bad {
		if _, err := Parse(strings.NewReader(deck)); err == nil {
			t.Fatalf("Parse accepted %q", deck)
		}
	}
}

func TestParseFirstLineCard(t *testing.T) {
	// A deck whose first line is already a card gets no title.
	d, err := Parse(strings.NewReader("R1 a b 1k\nV1 a 0 DC 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "" {
		t.Fatalf("Title = %q, want empty", d.Title)
	}
	if d.Netlist.Stats().R != 1 {
		t.Fatal("first-line card lost")
	}
}

// End-to-end: parse a fractional deck and simulate it.
func TestParseAndSimulate(t *testing.T) {
	deck := `fractional rc
I1 0 n1 STEP 1
R1 n1 0 1
P1 n1 0 1 0.5
.tran 1m 2
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	mna, err := d.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if mna.Sys.MaxOrder() != 0.5 {
		t.Fatalf("MaxOrder = %g", mna.Sys.MaxOrder())
	}
}

func TestParseICDirective(t *testing.T) {
	deck := `ic test
I1 0 n1 DC 0
R1 n1 0 1
C1 n1 0 1
.ic n1=2.5
.tran 10m 3
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.ICs["n1"] != 2.5 {
		t.Fatalf("ICs = %v", d.ICs)
	}
	mna, err := d.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	x0, err := mna.InitialState(d.ICs)
	if err != nil {
		t.Fatal(err)
	}
	if x0[0] != 2.5 {
		t.Fatalf("x0 = %v", x0)
	}
	if _, err := mna.InitialState(map[string]float64{"nosuch": 1}); err == nil {
		t.Fatal("accepted unknown IC node")
	}
	for _, bad := range []string{"t\n.ic\n", "t\n.ic n1\n", "t\n.ic n1=\n", "t\n.ic =5\n", "t\n.ic n1=xx\n"} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
