package circuit

import (
	"math"
	"strings"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// Parser coverage for the controlled-source cards.
func TestParseControlledSources(t *testing.T) {
	deck := `amp
V1 in 0 DC 1
G1 out 0 in 0 2m
E1 buf 0 out 0 3
RL out 0 1k
RB buf 0 1k
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Netlist.Stats()
	if s.VCCS != 1 || s.VCVS != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	mna, err := d.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := mna.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// v(out) = −gm·RL = −2; v(buf) = 3·v(out) = −6.
	var vout, vbuf float64
	for i, name := range mna.StateNames {
		switch name {
		case "v(out)":
			vout = dc[i]
		case "v(buf)":
			vbuf = dc[i]
		}
	}
	if math.Abs(vout+2) > 1e-9 || math.Abs(vbuf+6) > 1e-9 {
		t.Fatalf("dc: vout=%g vbuf=%g, want −2, −6", vout, vbuf)
	}
	if _, err := Parse(strings.NewReader("t\nG1 a 0 b\n")); err == nil {
		t.Fatal("accepted short G card")
	}
}

func TestControlledSourceValidation(t *testing.T) {
	n := New()
	a := n.Node("a")
	if err := n.AddVCCS("G1", a, 0, a, a, 1); err == nil {
		t.Fatal("accepted identical controlling terminals")
	}
	if err := n.AddVCVS("E1", a, 0, 99, 0, 1); err == nil {
		t.Fatal("accepted unknown controlling node")
	}
}

func TestNAWithVCCSAndRejectsVCVS(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	_ = n.AddI("I1", 0, a, waveform.Sine(1e-3, 10, 0))
	_ = n.AddC("C1", a, 0, 1e-6)
	_ = n.AddC("C2", b, 0, 1e-6)
	_ = n.AddR("R1", a, 0, 1e3)
	_ = n.AddR("R2", b, 0, 1e3)
	_ = n.AddL("L1", a, b, 1e-3)
	_ = n.AddVCCS("G1", b, 0, a, 0, 1e-3)
	na, err := n.NA()
	if err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	// NA and MNA agree with the VCCS present.
	T := 0.2
	solNA, err := core.Solve(na.Sys, na.Inputs, 2048, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solMNA, err := core.Solve(mna.Sys, mna.Inputs, 2048, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.05, 0.1, 0.15} {
		for i := 0; i < 2; i++ {
			x, y := solNA.StateAt(i, tt), solMNA.StateAt(i, tt)
			if math.Abs(x-y) > 1e-4+0.02*math.Abs(y) {
				t.Fatalf("NA vs MNA with VCCS at node %d t=%g: %g vs %g", i, tt, x, y)
			}
		}
	}
	_ = n.AddVCVS("E1", a, 0, b, 0, 2)
	if _, err := n.NA(); err == nil {
		t.Fatal("NA accepted VCVS")
	}
}

func TestDCOperatingPointFloatingNode(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	_ = n.AddV("V1", a, 0, waveform.Constant(1))
	_ = n.AddC("C1", a, b, 1e-6) // node b floats at DC
	_ = n.AddC("C2", b, 0, 1e-6)
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mna.DCOperatingPoint(); err == nil {
		t.Fatal("DC accepted a floating node")
	}
}

// VCCS as a transconductance amplifier: input RC divider drives a VCCS into
// a load resistor; DC gain = −gm·Rload (current convention: positive gm
// pulls current out of the output node).
func TestVCCSAmplifier(t *testing.T) {
	n := New()
	in, out := n.Node("in"), n.Node("out")
	if err := n.AddV("V1", in, 0, waveform.Step(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVCCS("G1", out, 0, in, 0, 2e-3); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("RL", out, 0, 1e3); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := mna.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// v_out: current gm·v_in leaves node out → v_out = −gm·RL·v_in = −2.
	vout := dc[1]
	if math.Abs(vout+2) > 1e-9 {
		t.Fatalf("VCCS DC output = %g, want −2", vout)
	}
}

// VCVS as an ideal amplifier: v_out = gain·v_in.
func TestVCVSGain(t *testing.T) {
	n := New()
	in, out := n.Node("in"), n.Node("out")
	if err := n.AddV("V1", in, 0, waveform.Step(0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVCVS("E1", out, 0, in, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("RL", out, 0, 1e3); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	// States: v(in), v(out), i(E1), i(V1).
	if len(mna.StateNames) != 4 {
		t.Fatalf("states = %v", mna.StateNames)
	}
	sol, err := core.Solve(mna.Sys, mna.Inputs, 64, 1e-3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.StateAt(1, 0.5e-3); math.Abs(got-5) > 1e-9 {
		t.Fatalf("VCVS output = %g, want 5", got)
	}
}

// A VCCS-based gyrator turns a capacitor into a synthetic inductor: two
// back-to-back VCCS with transconductance g loading a capacitor C emulate
// L = C/g². Check the resonance of the synthetic LC tank.
func TestGyratorSyntheticInductor(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	g := 1e-3
	cap := 1e-9
	// Gyrator between port a and internal node b.
	if err := n.AddVCCS("G1", b, 0, a, 0, g); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVCCS("G2", a, 0, b, 0, -g); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", b, 0, cap); err != nil {
		t.Fatal(err)
	}
	// Port-side tank capacitor and drive.
	cTank := 1e-9
	if err := n.AddC("C2", a, 0, cTank); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("Rq", a, 0, 100e3); err != nil {
		t.Fatal(err)
	}
	if err := n.AddI("I1", 0, a, waveform.Pulse(0, 1e-3, 0, 1e-9, 1e-9, 5e-9, 0)); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic L = C/g² = 1e-9/1e-6 = 1e-3; ω₀ = 1/√(L·C2) = 1e6 rad/s.
	abscissa, err := core.SpectralAbscissa(mna.Sys, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	if abscissa >= 0 {
		t.Fatalf("gyrator tank unstable: %g", abscissa)
	}
	ev, err := core.PencilEigenvalues(mnaE(mna), mnaA(mna), 2e6)
	if err != nil {
		t.Fatal(err)
	}
	// Expect a conjugate pair near ±j·1e6.
	found := false
	for _, v := range ev {
		if math.Abs(math.Abs(imag(v))-1e6) < 2e4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no resonance near 1e6 rad/s in %v", ev)
	}
}

func mnaE(m *MNA) *sparse.CSR {
	for _, t := range m.Sys.Terms {
		if t.Order == 1 {
			return t.Coeff
		}
	}
	return nil
}

func mnaA(m *MNA) *sparse.CSR {
	for _, t := range m.Sys.Terms {
		if t.Order == 0 {
			return t.Coeff.Scale(-1)
		}
	}
	return nil
}
