package circuit

import (
	"math"
	"strings"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/waveform"
)

// An ideal-ish transformer: sine into the primary, resistive load on the
// secondary. With K → 1 and equal inductances, the steady-state secondary
// voltage approaches the primary voltage scaled by the turns ratio (here 1).
func TestTransformerVoltageTransfer(t *testing.T) {
	n := New()
	p, s := n.Node("p"), n.Node("s")
	f := 1e3
	if err := n.AddV("V1", p, 0, waveform.Sine(1, f, 0)); err != nil {
		t.Fatal(err)
	}
	// Large magnetizing inductance relative to the load impedance at f.
	if err := n.AddL("L1", p, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddL("L2", s, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddK("K1", "L1", "L2", 0.999); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("RL", s, 0, 1e3); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	T := 5e-3 // five cycles
	sol, err := core.Solve(mna.Sys, mna.Inputs, 8192, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// After the initial transient, the secondary peak should be close to
	// the primary's 1 V (K²-coupled, unity turns ratio).
	peak := 0.0
	for _, tt := range waveform.UniformTimes(400, T) {
		if tt < 2e-3 {
			continue
		}
		peak = math.Max(peak, math.Abs(sol.StateAt(1, tt)))
	}
	if peak < 0.9 || peak > 1.05 {
		t.Fatalf("secondary peak = %g, want ≈1 for a tightly coupled 1:1 transformer", peak)
	}
}

// Turns ratio: L2/L1 = 4 gives a 1:2 voltage step-up.
func TestTransformerStepUp(t *testing.T) {
	n := New()
	p, s := n.Node("p"), n.Node("s")
	_ = n.AddV("V1", p, 0, waveform.Sine(1, 1e3, 0))
	_ = n.AddL("L1", p, 0, 1.0)
	_ = n.AddL("L2", s, 0, 4.0)
	_ = n.AddK("K1", "L1", "L2", 0.9999)
	_ = n.AddR("RL", s, 0, 10e3)
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(mna.Sys, mna.Inputs, 8192, 5e-3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, tt := range waveform.UniformTimes(400, 5e-3) {
		if tt < 2e-3 {
			continue
		}
		peak = math.Max(peak, math.Abs(sol.StateAt(1, tt)))
	}
	if math.Abs(peak-2) > 0.15 {
		t.Fatalf("step-up secondary peak = %g, want ≈2", peak)
	}
}

// Energy sanity: the coupled L-matrix [[L1, M], [M, L2]] must stay positive
// definite for |K| < 1 — OPM would blow up otherwise. Run a short transient
// and check boundedness with K close to 1.
func TestCouplingStability(t *testing.T) {
	n := New()
	a := n.Node("a")
	b := n.Node("b")
	_ = n.AddI("I1", 0, a, waveform.Pulse(0, 1e-3, 0, 1e-6, 1e-6, 1e-4, 0))
	_ = n.AddL("L1", a, 0, 1e-3)
	_ = n.AddL("L2", b, 0, 1e-3)
	_ = n.AddK("K1", "L1", "L2", 0.95)
	_ = n.AddR("R1", a, 0, 100)
	_ = n.AddR("R2", b, 0, 100)
	_ = n.AddC("C1", a, 0, 1e-9)
	_ = n.AddC("C2", b, 0, 1e-9)
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	abscissa, err := core.SpectralAbscissa(mna.Sys, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if abscissa >= 0 {
		t.Fatalf("coupled passive network unstable: %g", abscissa)
	}
}

func TestAddKValidation(t *testing.T) {
	n := New()
	a := n.Node("a")
	_ = n.AddL("L1", a, 0, 1)
	if err := n.AddK("", "L1", "L2", 0.5); err == nil {
		t.Fatal("accepted empty name")
	}
	if err := n.AddK("K1", "L1", "L1", 0.5); err == nil {
		t.Fatal("accepted self-coupling")
	}
	if err := n.AddK("K1", "L1", "L2", 1.5); err == nil {
		t.Fatal("accepted |K| ≥ 1")
	}
	if err := n.AddK("K1", "L1", "L2", 0); err == nil {
		t.Fatal("accepted K = 0")
	}
	if err := n.AddK("K1", "L1", "L2", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := n.AddK("K1", "L1", "L3", 0.5); err == nil {
		t.Fatal("accepted duplicate coupling name")
	}
	// L2 never declared: MNA must fail.
	_ = n.AddV("V1", a, 0, waveform.Step(1, 0))
	if _, err := n.MNA(); err == nil {
		t.Fatal("MNA accepted coupling to unknown inductor")
	}
	// NA refuses couplings outright.
	if _, err := n.NA(); err == nil {
		t.Fatal("NA accepted mutual inductance")
	}
}

func TestParseKCard(t *testing.T) {
	deck := `transformer
V1 p 0 SIN 0 1 1k
L1 p 0 1
L2 s 0 1
K1 L1 L2 0.99
RL s 0 1k
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Netlist.Couplings()); got != 1 {
		t.Fatalf("couplings = %d", got)
	}
	// K card must not intern its inductor names as nodes.
	if d.Netlist.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2 (K card leaked nodes)", d.Netlist.NumNodes())
	}
	if _, err := Parse(strings.NewReader("t\nK1 L1 L2 2\n")); err == nil {
		t.Fatal("accepted K ≥ 1")
	}
}
