package circuit

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opmsim/internal/core"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

// randomPassiveNetlist builds a connected passive RLC network with a pulsed
// current load: every node reaches ground through resistors (no floating
// subcircuits), every node carries a capacitor, and a few inductors are
// sprinkled between nodes.
func randomPassiveNetlist(rng *rand.Rand, nNodes int) *Netlist {
	n := New()
	ids := make([]int, nNodes)
	for i := range ids {
		ids[i] = n.Node(fmt.Sprintf("n%d", i))
	}
	// Spanning tree of resistors rooted at ground.
	for i, id := range ids {
		var other int
		if i == 0 {
			other = 0
		} else {
			other = ids[rng.Intn(i)]
			if rng.Float64() < 0.2 {
				other = 0
			}
		}
		r := 100 + rng.Float64()*900
		_ = n.AddR(fmt.Sprintf("Rt%d", i), id, other, r)
	}
	// Extra cross resistors.
	for k := 0; k < nNodes/2; k++ {
		a, b := ids[rng.Intn(nNodes)], ids[rng.Intn(nNodes)]
		if a == b {
			continue
		}
		_ = n.AddR(fmt.Sprintf("Rx%d", k), a, b, 100+rng.Float64()*2000)
	}
	// Capacitors at every node (nF scale → µs dynamics with kΩ).
	for i, id := range ids {
		_ = n.AddC(fmt.Sprintf("C%d", i), id, 0, (0.5+rng.Float64())*1e-9)
	}
	// A few inductors.
	for k := 0; k < nNodes/3; k++ {
		a, b := ids[rng.Intn(nNodes)], ids[rng.Intn(nNodes)]
		if a == b {
			continue
		}
		_ = n.AddL(fmt.Sprintf("L%d", k), a, b, (0.5+rng.Float64())*1e-6)
	}
	// One pulsed load.
	_ = n.AddI("Iload", ids[rng.Intn(nNodes)], 0,
		waveform.Pulse(0, 1e-3, 0.2e-6, 0.1e-6, 0.1e-6, 1e-6, 0))
	return n
}

// Property: on arbitrary connected passive RLC networks, OPM and the
// trapezoidal rule agree on every node voltage to discretization accuracy.
// This is the §III "same accuracy class" claim exercised over random
// topologies rather than hand-picked circuits.
func TestRandomNetworksOPMMatchesTrapezoidal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomPassiveNetlist(rng, 3+rng.Intn(8))
		mna, err := nl.MNA()
		if err != nil {
			t.Logf("seed %d: MNA: %v", seed, err)
			return false
		}
		e, a, b, err := mna.DAE()
		if err != nil {
			return false
		}
		const (
			T = 4e-6
			m = 2048
		)
		sol, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
		if err != nil {
			t.Logf("seed %d: OPM: %v", seed, err)
			return false
		}
		ref, err := transient.Simulate(e, a, b, mna.Inputs, T, T/m, transient.Trapezoidal, transient.Options{})
		if err != nil {
			t.Logf("seed %d: trapezoidal: %v", seed, err)
			return false
		}
		h := T / float64(m)
		for s := 0; s < nl.NumNodes(); s++ {
			// Compare node voltages only (branch currents live on other
			// scales); node states come first in the MNA layout.
			for j := 128; j < m; j += 256 {
				tt := (float64(j) + 0.5) * h
				a1 := sol.StateAt(s, tt)
				a2 := ref.SampleState(s, []float64{tt})[0]
				// Both methods are second-order; allow a few percent of the
				// local magnitude plus an absolute floor for near-zero
				// samples.
				tol := 1e-9 + 0.03*math.Max(math.Abs(a1), math.Abs(a2))
				if math.Abs(a1-a2) > tol {
					t.Logf("seed %d: state %d t=%g: OPM %g vs trap %g", seed, s, tt, a1, a2)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every random passive network is stable (spectral abscissa < 0) —
// a physics invariant the MNA stamps must preserve.
func TestRandomNetworksAreStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomPassiveNetlist(rng, 3+rng.Intn(6))
		mna, err := nl.MNA()
		if err != nil {
			return false
		}
		abs, err := core.SpectralAbscissa(mna.Sys, 1e10)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Passive networks cannot have growing modes. Exactly-zero modes are
		// physical (parallel inductors form a circulating-current loop), so
		// allow numerical noise around zero — the decaying modes of these
		// networks live at 1e6–1e10 rad/s, 6+ orders above the threshold.
		if abs >= 1 {
			t.Logf("seed %d: abscissa %g", seed, abs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
