package circuit

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opmsim/internal/waveform"
)

// Voltage divider: v_out = V·R2/(R1+R2). Analytic sensitivities:
// ∂v/∂R1 = −V·R2/(R1+R2)², ∂v/∂R2 = V·R1/(R1+R2)².
func TestDCSensitivitiesDivider(t *testing.T) {
	const (
		vs = 10.0
		r1 = 3e3
		r2 = 2e3
	)
	n := New()
	in, out := n.Node("in"), n.Node("out")
	_ = n.AddV("V1", in, 0, waveform.Constant(vs))
	_ = n.AddR("R1", in, out, r1)
	_ = n.AddR("R2", out, 0, r2)
	sens, x, err := n.DCSensitivities(out)
	if err != nil {
		t.Fatal(err)
	}
	wantOut := vs * r2 / (r1 + r2)
	if math.Abs(x[1]-wantOut) > 1e-9 {
		t.Fatalf("operating point %g, want %g", x[1], wantOut)
	}
	d := (r1 + r2) * (r1 + r2)
	if got, want := sens["R1"], -vs*r2/d; math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Fatalf("∂v/∂R1 = %g, want %g", got, want)
	}
	if got, want := sens["R2"], vs*r1/d; math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Fatalf("∂v/∂R2 = %g, want %g", got, want)
	}
}

// Property: adjoint sensitivities agree with central finite differences on
// random resistive networks — for every resistor at once.
func TestDCSensitivitiesMatchFiniteDifferencesProperty(t *testing.T) {
	build := func(rng *rand.Rand, nNodes int, rvals map[string]float64) (*Netlist, int) {
		n := New()
		ids := make([]int, nNodes)
		for i := range ids {
			ids[i] = n.Node(fmt.Sprintf("n%d", i))
		}
		k := 0
		addR := func(a, b int) {
			name := fmt.Sprintf("R%d", k)
			k++
			// Always consume the RNG so rebuilds with overridden values
			// reproduce the same topology.
			v := 100 + rng.Float64()*2000
			if existing, ok := rvals[name]; ok {
				v = existing
			} else {
				rvals[name] = v
			}
			_ = n.AddR(name, a, b, v)
		}
		for i, id := range ids {
			if i == 0 {
				addR(id, 0)
			} else {
				addR(id, ids[rng.Intn(i)])
			}
		}
		for j := 0; j < nNodes/2; j++ {
			a, b := ids[rng.Intn(nNodes)], ids[rng.Intn(nNodes)]
			if a != b {
				addR(a, b)
			}
		}
		_ = n.AddI("I1", 0, ids[nNodes-1], waveform.Constant(1e-3))
		return n, ids[rng.Intn(nNodes)]
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 2 + rng.Intn(6)
		rvals := map[string]float64{}
		// Build once to populate rvals deterministically.
		seedRng := rand.New(rand.NewSource(seed))
		nl, target := build(seedRng, nNodes, rvals)
		sens, _, err := nl.DCSensitivities(target)
		if err != nil {
			return false
		}
		tIdxName := "v(" + nl.NodeName(target) + ")"
		vAt := func(vals map[string]float64) float64 {
			r2 := rand.New(rand.NewSource(seed))
			nl2, _ := build(r2, nNodes, vals)
			mna, err := nl2.MNA()
			if err != nil {
				t.Fatal(err)
			}
			x, err := mna.DCOperatingPoint()
			if err != nil {
				t.Fatal(err)
			}
			for i, nm := range mna.StateNames {
				if nm == tIdxName {
					return x[i]
				}
			}
			t.Fatalf("target state missing")
			return 0
		}
		for name, got := range sens {
			h := rvals[name] * 1e-6
			up := map[string]float64{}
			dn := map[string]float64{}
			for k, v := range rvals {
				up[k], dn[k] = v, v
			}
			up[name] += h
			dn[name] -= h
			fd := (vAt(up) - vAt(dn)) / (2 * h)
			if math.Abs(got-fd) > 1e-5*(1+math.Abs(fd)) {
				t.Logf("seed %d %s: adjoint %g vs FD %g", seed, name, got, fd)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDCSensitivitiesValidation(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	_ = n.AddV("V1", a, 0, waveform.Constant(1))
	_ = n.AddR("R1", a, b, 1e3)
	_ = n.AddR("R2", b, 0, 1e3)
	if _, _, err := n.DCSensitivities(0); err == nil {
		t.Fatal("accepted ground as target")
	}
	if _, _, err := n.DCSensitivities(99); err == nil {
		t.Fatal("accepted unknown target node")
	}
	// Nonlinear netlists are refused.
	_ = n.AddDiode("D1", b, 0, 0, 0)
	if _, _, err := n.DCSensitivities(b); err == nil {
		t.Fatal("accepted nonlinear netlist")
	}
}
