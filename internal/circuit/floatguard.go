package circuit

// isExactZero reports whether v is exactly zero — element-parameter
// validation (a diode with Is exactly 0 is a modeling error) and
// integer-order discrimination (Order == 0 is a resistive term), never a
// tolerance test. The floateq rule (cmd/opm-lint) flags raw float ==/!=.
func isExactZero(v float64) bool { return v == 0 }
