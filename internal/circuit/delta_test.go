package circuit

import (
	"math"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// deltaTestNetlist builds a small mixed netlist exercising every
// MNA-perturbable kind: R, C, L, CPE, driven by a voltage source.
func deltaTestNetlist(t *testing.T, rv, cv, lv, qv, r2v float64) *Netlist {
	t.Helper()
	n := New()
	a, b, c := n.Node("a"), n.Node("b"), n.Node("c")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.AddV("V1", a, 0, waveform.Sine(1, 1, 0)))
	must(n.AddR("R1", a, b, rv))
	must(n.AddC("C1", b, 0, cv))
	must(n.AddL("L1", b, c, lv))
	must(n.AddCPE("Q1", c, 0, qv, 0.6))
	must(n.AddR("R2", c, 0, r2v))
	return n
}

// sameSystemApprox compares two assembled systems term by term with a
// relative tolerance: the stamped delta is computed as v′-derived minus
// v-derived (one extra rounding versus assembling with v′ directly), so
// exact bit equality is not the contract — agreement to 1e-12 is.
func sameSystemApprox(t *testing.T, name string, got, want *core.System) {
	t.Helper()
	if len(got.Terms) != len(want.Terms) {
		t.Fatalf("%s: %d terms vs %d", name, len(got.Terms), len(want.Terms))
	}
	dense := func(c *sparse.CSR) []float64 {
		out := make([]float64, c.R*c.C)
		for r := 0; r < c.R; r++ {
			for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
				out[r*c.C+c.ColIdx[p]] += c.Val[p]
			}
		}
		return out
	}
	for k := range want.Terms {
		if math.Float64bits(got.Terms[k].Order) != math.Float64bits(want.Terms[k].Order) {
			t.Fatalf("%s: term %d order %g vs %g", name, k, got.Terms[k].Order, want.Terms[k].Order)
		}
		g, w := dense(got.Terms[k].Coeff), dense(want.Terms[k].Coeff)
		scale := 0.0
		for _, v := range w {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range g {
			if d := math.Abs(g[i] - w[i]); d > 1e-12*(1+scale) {
				t.Fatalf("%s: term %d entry %d: %.17g vs %.17g (Δ=%.3g)", name, k, i, g[i], w[i], d)
			}
		}
	}
}

// StampDelta on the MNA model: materializing the stamped delta must
// reproduce the MNA assembly of the perturbed netlist, for each element kind
// singly and all together.
func TestStampDeltaMatchesFreshMNA(t *testing.T) {
	const rv, cv, lv, qv = 100.0, 1e-6, 1e-3, 2e-6
	nom := deltaTestNetlist(t, rv, cv, lv, qv, 2*rv)
	m, err := nom.MNA()
	if err != nil {
		t.Fatal(err)
	}
	perturbOne := func(name string, f float64) (map[string]float64, []Perturbation) {
		vals := map[string]float64{"R1": rv, "C1": cv, "L1": lv, "Q1": qv, "R2": 2 * rv}
		vals[name] *= f
		return vals, []Perturbation{{Name: name, Value: vals[name]}}
	}
	rebuild := func(t *testing.T, vals map[string]float64) *core.System {
		t.Helper()
		n := New()
		a, b, c := n.Node("a"), n.Node("b"), n.Node("c")
		for _, step := range []error{
			n.AddV("V1", a, 0, waveform.Sine(1, 1, 0)),
			n.AddR("R1", a, b, vals["R1"]),
			n.AddC("C1", b, 0, vals["C1"]),
			n.AddL("L1", b, c, vals["L1"]),
			n.AddCPE("Q1", c, 0, vals["Q1"], 0.6),
			n.AddR("R2", c, 0, vals["R2"]),
		} {
			if step != nil {
				t.Fatal(step)
			}
		}
		fresh, err := n.MNA()
		if err != nil {
			t.Fatal(err)
		}
		return fresh.Sys
	}
	for _, name := range []string{"R1", "C1", "L1", "Q1", "R2"} {
		vals, perts := perturbOne(name, 1.11)
		d, err := nom.StampDelta(m, perts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Rank() != 1 {
			t.Fatalf("%s: rank %d, want 1", name, d.Rank())
		}
		got, err := core.ApplyDelta(m.Sys, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameSystemApprox(t, name, got, rebuild(t, vals))
	}
	// All five at once.
	vals := map[string]float64{"R1": rv * 0.93, "C1": cv * 1.04, "L1": lv * 1.1, "Q1": qv * 0.97, "R2": 2 * rv * 1.02}
	perts := make([]Perturbation, 0, len(vals))
	for _, name := range []string{"R1", "C1", "L1", "Q1", "R2"} {
		perts = append(perts, Perturbation{Name: name, Value: vals[name]})
	}
	d, err := nom.StampDelta(m, perts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rank() != 5 {
		t.Fatalf("rank %d, want 5", d.Rank())
	}
	got, err := core.ApplyDelta(m.Sys, d)
	if err != nil {
		t.Fatal(err)
	}
	sameSystemApprox(t, "all five", got, rebuild(t, vals))
}

// StampDelta on the NA model: R→order-1, C→order-2, L→order-0.
func TestStampDeltaMatchesFreshNA(t *testing.T) {
	build := func(t *testing.T, rv, cv, lv, r2v float64) (*Netlist, *MNA) {
		t.Helper()
		n := New()
		a, b := n.Node("a"), n.Node("b")
		for _, step := range []error{
			n.AddI("I1", 0, a, waveform.Step(1e-3, 0)),
			n.AddR("R1", a, b, rv),
			n.AddC("C1", a, 0, cv),
			n.AddL("L1", b, 0, lv),
			n.AddR("R2", b, 0, r2v),
		} {
			if step != nil {
				t.Fatal(step)
			}
		}
		m, err := n.NA()
		if err != nil {
			t.Fatal(err)
		}
		return n, m
	}
	const rv, cv, lv = 50.0, 2e-6, 5e-4
	nom, m := build(t, rv, cv, lv, 2*rv)
	perts := []Perturbation{
		{Name: "R1", Value: rv * 1.2},
		{Name: "C1", Value: cv * 0.9},
		{Name: "L1", Value: lv * 1.05},
	}
	d, err := nom.StampDelta(m, perts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rank() != 3 {
		t.Fatalf("rank %d, want 3", d.Rank())
	}
	got, err := core.ApplyDelta(m.Sys, d)
	if err != nil {
		t.Fatal(err)
	}
	_, fresh := build(t, rv*1.2, cv*0.9, lv*1.05, 2*rv)
	// R2 stays nominal in both.
	sameSystemApprox(t, "NA", got, fresh.Sys)
}

// End to end: a perturbed-batch solve through StampDelta agrees with solving
// the freshly assembled perturbed netlist.
func TestStampDeltaSolvesPerturbedCircuit(t *testing.T) {
	const rv, cv, lv, qv = 100.0, 1e-6, 1e-3, 2e-6
	nom := deltaTestNetlist(t, rv, cv, lv, qv, 2*rv)
	m, err := nom.MNA()
	if err != nil {
		t.Fatal(err)
	}
	d, err := nom.StampDelta(m, []Perturbation{
		{Name: "R1", Value: rv * 1.08},
		{Name: "C1", Value: cv * 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	cols, T := 64, 1e-3
	sols, err := core.SolveBatch(m.Sys, []core.Scenario{{U: m.Inputs, Delta: d}}, cols, T,
		core.BatchOptions{UpdateRankLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := deltaTestNetlist(t, rv*1.08, cv*0.95, lv, qv, 2*rv).MNA()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Solve(fresh.Sys, fresh.Inputs, cols, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gx, wx := sols[0].Coefficients(), want.Coefficients()
	scale := 0.0
	for i := 0; i < wx.Rows(); i++ {
		for j := 0; j < wx.Cols(); j++ {
			if v := math.Abs(wx.At(i, j)); v > scale {
				scale = v
			}
		}
	}
	for i := 0; i < wx.Rows(); i++ {
		for j := 0; j < wx.Cols(); j++ {
			if dv := math.Abs(gx.At(i, j) - wx.At(i, j)); dv > 1e-9*(1+scale) {
				t.Fatalf("state %d col %d: %.17g vs %.17g", i, j, gx.At(i, j), wx.At(i, j))
			}
		}
	}
}

// Error surface: unknown names, duplicates, bad values, unsupported kinds,
// coupled inductors.
func TestStampDeltaErrors(t *testing.T) {
	nom := deltaTestNetlist(t, 100, 1e-6, 1e-3, 2e-6, 200)
	m, err := nom.MNA()
	if err != nil {
		t.Fatal(err)
	}
	for name, perts := range map[string][]Perturbation{
		"unknown element":  {{Name: "R9", Value: 1}},
		"duplicate":        {{Name: "R1", Value: 90}, {Name: "R1", Value: 95}},
		"zero value":       {{Name: "R1", Value: 0}},
		"negative value":   {{Name: "C1", Value: -1e-6}},
		"infinite value":   {{Name: "R1", Value: math.Inf(1)}},
		"nan value":        {{Name: "R1", Value: math.NaN()}},
		"unsupported kind": {{Name: "V1", Value: 2}},
	} {
		if _, err := nom.StampDelta(m, perts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// No-op perturbations collapse to rank 0.
	d, err := nom.StampDelta(m, []Perturbation{{Name: "R1", Value: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rank() != 0 {
		t.Fatalf("unchanged value: rank %d, want 0", d.Rank())
	}
	// Coupled inductors are rejected.
	n := New()
	a, b := n.Node("a"), n.Node("b")
	for _, step := range []error{
		n.AddV("V1", a, 0, waveform.Step(1, 0)),
		n.AddL("La", a, 0, 1e-3),
		n.AddL("Lb", b, 0, 1e-3),
		n.AddR("Rb", b, 0, 10),
		n.AddK("K1", "La", "Lb", 0.5),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	cm, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.StampDelta(cm, []Perturbation{{Name: "La", Value: 2e-3}}); err == nil {
		t.Error("coupled inductor perturbation should fail")
	}
}
