package circuit

import (
	"fmt"
	"math"

	"opmsim/internal/sparse"
)

// DefaultIs and DefaultVt are the diode defaults (room-temperature silicon).
const (
	DefaultIs = 1e-14   // saturation current, A
	DefaultVt = 0.02585 // thermal voltage, V
)

// AddDiode adds an ideal-exponential junction diode with anode a and
// cathode b: i = Is·(exp((v_a − v_b)/Vt) − 1). Pass 0 for is/vt to get the
// defaults. Diodes make the netlist nonlinear: simulate through
// core.SolveNonlinear using the MNA's Nonlinear hook.
func (n *Netlist) AddDiode(name string, a, b int, is, vt float64) error {
	if isExactZero(is) {
		is = DefaultIs
	}
	if isExactZero(vt) {
		vt = DefaultVt
	}
	if is < 0 || vt <= 0 {
		return fmt.Errorf("circuit: diode %q needs Is ≥ 0 and Vt > 0", name)
	}
	return n.add(Element{Kind: Diode, Name: name, NodeA: a, NodeB: b, Value: is, Order: vt})
}

// diodeEntry is one diode mapped to state indices (−1 = ground terminal).
type diodeEntry struct {
	a, b   int
	is, vt float64
}

// DiodeNonlinearity implements core.Nonlinearity for the diodes of a
// netlist: g(x) collects the diode currents into the KCL rows.
type DiodeNonlinearity struct {
	n       int
	entries []diodeEntry
}

// Eval implements core.Nonlinearity.
func (d *DiodeNonlinearity) Eval(x, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for _, e := range d.entries {
		i, _ := e.current(x)
		if e.a >= 0 {
			out[e.a] += i
		}
		if e.b >= 0 {
			out[e.b] -= i
		}
	}
}

// StampJacobian implements core.Nonlinearity.
func (d *DiodeNonlinearity) StampJacobian(x []float64, jac *sparse.COO) {
	for _, e := range d.entries {
		_, gd := e.current(x)
		if e.a >= 0 {
			jac.Add(e.a, e.a, gd)
			if e.b >= 0 {
				jac.Add(e.a, e.b, -gd)
			}
		}
		if e.b >= 0 {
			jac.Add(e.b, e.b, gd)
			if e.a >= 0 {
				jac.Add(e.b, e.a, -gd)
			}
		}
	}
}

// current returns the diode current and its conductance ∂i/∂v_d at the
// voltages in x, with the standard exponent limiting: beyond vCrit = 40·Vt
// the exponential is continued linearly (C¹), which keeps Newton iterations
// finite during overshoot.
func (e *diodeEntry) current(x []float64) (i, gd float64) {
	vd := 0.0
	if e.a >= 0 {
		vd += x[e.a]
	}
	if e.b >= 0 {
		vd -= x[e.b]
	}
	const lim = 40.0
	arg := vd / e.vt
	if arg > lim {
		expLim := math.Exp(lim)
		i = e.is * (expLim*(1+arg-lim) - 1)
		gd = e.is / e.vt * expLim
		return i, gd
	}
	ex := math.Exp(arg)
	return e.is * (ex - 1), e.is / e.vt * ex
}

// Size returns the state dimension the nonlinearity acts on.
func (d *DiodeNonlinearity) Size() int { return d.n }

// Count returns the number of diodes.
func (d *DiodeNonlinearity) Count() int { return len(d.entries) }
