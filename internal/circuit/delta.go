package circuit

import (
	"fmt"
	"math"
	"sort"

	"opmsim/internal/core"
	"opmsim/internal/sparse"
)

// Component-value perturbations as pencil deltas. A Monte-Carlo or corner
// sweep varies element values (R, C, L, CPE magnitude) around a nominal
// netlist; re-running MNA assembly per sample would rebuild every matrix, but
// each two-terminal value change is a rank-1 stamp: the ±v admittance pattern
// of stampPair is v·w·wᵀ for the signed incidence vector w, so changing
// v → v′ perturbs exactly one term of the assembled system by δ·w·wᵀ with
// δ the value delta in that term's units (conductance for resistors, farads
// for capacitors, …). StampDelta packages those rank-1 updates as a
// core.PencilDelta that core.SolveBatch serves through the SMW update tier —
// or, past the crossover rank, through a single sparse refactorization —
// without ever re-assembling the netlist.

// Perturbation names one element whose value differs from the netlist's
// nominal in a scenario. Value is the element's new value in the same units
// the netlist uses (ohms, farads, henries, CPE magnitude); it must be
// positive and finite. Only the value can vary — a CPE's order α changes the
// term structure itself and is rejected.
type Perturbation struct {
	Name  string
	Value float64
}

// modelMNA/modelNA tag which stamp layout an assembled MNA carries, fixing
// which term each element kind perturbs.
const (
	modelMNA = "mna"
	modelNA  = "na"
)

// StampDelta translates element-value perturbations into the rank-1 pencil
// updates of the assembled model m (which must have been built by MNA() or
// NA() from this netlist). Perturbations that cannot change the system —
// both terminals grounded, or a value change that cancels exactly — are
// dropped, so the returned delta's Rank() can be smaller than len(perts);
// a nil-safe zero-rank delta means "nominal". Supported kinds: Resistor,
// Capacitor, Inductor, and (MNA only) CPE. Unknown names, non-positive or
// non-finite values, duplicate names, unsupported kinds, and inductors that
// participate in a mutual coupling (their K·√(L₁L₂) off-diagonals make the
// change rank-3) are errors.
func (n *Netlist) StampDelta(m *MNA, perts []Perturbation) (*core.PencilDelta, error) {
	if m == nil || m.Sys == nil {
		return nil, fmt.Errorf("circuit: StampDelta needs an assembled model")
	}
	byName := make(map[string]Element, len(n.elements))
	for _, e := range n.elements {
		byName[e.Name] = e
	}
	coupled := map[string]bool{}
	for _, cp := range n.couplings {
		coupled[cp.L1] = true
		coupled[cp.L2] = true
	}
	d := &core.PencilDelta{}
	seen := map[string]bool{}
	for _, p := range perts {
		if seen[p.Name] {
			return nil, fmt.Errorf("circuit: duplicate perturbation of %q", p.Name)
		}
		seen[p.Name] = true
		e, ok := byName[p.Name]
		if !ok {
			return nil, fmt.Errorf("circuit: perturbation references unknown element %q", p.Name)
		}
		if !(p.Value > 0) || math.IsInf(p.Value, 0) {
			return nil, fmt.Errorf("circuit: perturbed value of %q must be positive and finite, got %g", p.Name, p.Value)
		}
		up, err := n.stampOne(m, e, p.Value)
		if err != nil {
			return nil, err
		}
		if up == nil {
			continue
		}
		if coupled[e.Name] && e.Kind == Inductor {
			return nil, fmt.Errorf("circuit: cannot perturb inductor %q: mutual coupling makes the change non-rank-1", e.Name)
		}
		d.Updates = append(d.Updates, *up)
	}
	return d, nil
}

// stampOne builds the rank-1 update for one element, or nil when the change
// cannot reach the system.
func (n *Netlist) stampOne(m *MNA, e Element, newVal float64) (*core.RankOne, error) {
	// (termOrder, delta) per kind — exactly mirroring the assembly stamps of
	// MNA() and NA().
	var order, delta float64
	incidence := true
	switch {
	case e.Kind == Resistor && m.model == modelMNA:
		order, delta = 0, 1/newVal-1/e.Value
	case e.Kind == Resistor && m.model == modelNA:
		order, delta = 1, 1/newVal-1/e.Value
	case e.Kind == Capacitor && m.model == modelMNA:
		order, delta = 1, newVal-e.Value
	case e.Kind == Capacitor && m.model == modelNA:
		order, delta = 2, newVal-e.Value
	case e.Kind == CPE && m.model == modelMNA:
		order, delta = e.Order, newVal-e.Value
	case e.Kind == Inductor && m.model == modelMNA:
		// Branch equation diagonal: stor(1).Add(l, l, L).
		order, delta, incidence = 1, newVal-e.Value, false
	case e.Kind == Inductor && m.model == modelNA:
		order, delta = 0, 1/newVal-1/e.Value
	default:
		return nil, fmt.Errorf("circuit: cannot perturb %q: kind %v is not value-perturbable in the %s model", e.Name, e.Kind, m.model)
	}
	if isExactZero(delta) {
		return nil, nil
	}
	term := -1
	for k, t := range m.Sys.Terms {
		if math.Float64bits(t.Order) == math.Float64bits(order) {
			term = k
			break
		}
	}
	if term < 0 {
		return nil, fmt.Errorf("circuit: internal: no term of order %g for perturbation of %q", order, e.Name)
	}
	var w sparse.Vec
	if incidence {
		w = incidenceVec(m.nodeOf, e.NodeA, e.NodeB)
		if w.NNZ() == 0 {
			return nil, nil // both terminals grounded (or shorted): no effect
		}
	} else {
		l, ok := m.branchIdx[e.Name]
		if !ok {
			return nil, fmt.Errorf("circuit: internal: no branch index for inductor %q", e.Name)
		}
		w = sparse.Vec{Idx: []int{l}, Val: []float64{1}}
	}
	return &core.RankOne{Term: term, Scale: delta, U: w, V: w}, nil
}

// incidenceVec builds the signed incidence vector (+1 at node a's state, −1
// at node b's) with strictly increasing indices; grounded terminals drop out,
// and a self-loop (both terminals on one node) cancels to empty.
func incidenceVec(nodeOf map[int]int, a, b int) sparse.Vec {
	type ent struct {
		idx int
		val float64
	}
	var ents []ent
	if ia, ok := nodeOf[a]; ok {
		ents = append(ents, ent{ia, 1})
	}
	if ib, ok := nodeOf[b]; ok {
		ents = append(ents, ent{ib, -1})
	}
	if len(ents) == 2 && ents[0].idx == ents[1].idx {
		return sparse.Vec{}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].idx < ents[j].idx })
	v := sparse.Vec{Idx: make([]int, len(ents)), Val: make([]float64, len(ents))}
	for i, e := range ents {
		v.Idx[i], v.Val[i] = e.idx, e.val
	}
	return v
}
