package circuit

import (
	"fmt"

	"opmsim/internal/sparse"
)

// DCSensitivities computes the sensitivity of the DC voltage at targetNode
// to every resistor in the netlist, ∂v(target)/∂R_k, using the adjoint
// (transpose-network) method: one operating-point solve plus one adjoint
// solve Gᵀ·λ = c yields all sensitivities at once —
//
//	∂v/∂R = (λ_a − λ_b)·(x_a − x_b)/R²
//
// for the resistor between nodes a and b. Only linear netlists are
// supported; reactive elements have zero DC sensitivity and are omitted.
// The operating point itself is returned alongside for convenience.
func (n *Netlist) DCSensitivities(targetNode int) (map[string]float64, []float64, error) {
	mna, err := n.MNA()
	if err != nil {
		return nil, nil, err
	}
	if mna.Nonlinear != nil {
		return nil, nil, fmt.Errorf("circuit: DC sensitivities require a linear netlist")
	}
	tIdx, ok := mna.nodeOf[targetNode]
	if !ok {
		return nil, nil, fmt.Errorf("circuit: target node %d is ground or unknown", targetNode)
	}
	var g *sparse.CSR
	for _, t := range mna.Sys.Terms {
		if isExactZero(t.Order) {
			g = t.Coeff
		}
	}
	x, err := mna.DCOperatingPoint()
	if err != nil {
		return nil, nil, err
	}
	// Adjoint: Gᵀ·λ = e_target.
	fac, err := sparse.Factor(g.T(), sparse.Options{Refine: true})
	if err != nil {
		return nil, nil, fmt.Errorf("circuit: adjoint system singular: %w", err)
	}
	c := make([]float64, mna.Sys.N())
	c[tIdx] = 1
	lambda, err := fac.Solve(c)
	if err != nil {
		return nil, nil, fmt.Errorf("circuit: adjoint solve failed: %w", err)
	}

	at := func(vec []float64, node int) float64 {
		if idx, ok := mna.nodeOf[node]; ok {
			return vec[idx]
		}
		return 0 // ground
	}
	sens := make(map[string]float64)
	for _, e := range n.elements {
		if e.Kind != Resistor {
			continue
		}
		dl := at(lambda, e.NodeA) - at(lambda, e.NodeB)
		dx := at(x, e.NodeA) - at(x, e.NodeB)
		sens[e.Name] = dl * dx / (e.Value * e.Value)
	}
	return sens, x, nil
}
