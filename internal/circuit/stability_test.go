package circuit

import (
	"math"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/waveform"
)

// The assembled MNA pencil of an RC lowpass has exactly one finite mode at
// λ = −1/(RC); the voltage-source constraint contributes only infinite
// eigenvalues, which the shift-invert analysis must filter.
func TestMNASpectralAbscissaRC(t *testing.T) {
	n := New()
	in, out := n.Node("in"), n.Node("out")
	if err := n.AddV("V1", in, 0, waveform.Step(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", in, out, 1e3); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", out, 0, 1e-6); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	// σ = 0 would coincide with A being singular through the source row, so
	// shift into the right half plane.
	abs, err := core.SpectralAbscissa(mna.Sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := -1.0 / (1e3 * 1e-6)
	if math.Abs(abs-want) > 1e-3*math.Abs(want) {
		t.Fatalf("spectral abscissa = %g, want %g", abs, want)
	}
}

// A passive RLC network must be stable; the fractional CPE version must
// satisfy the Matignon sector criterion.
func TestCircuitStability(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	_ = n.AddI("I1", 0, a, waveform.Step(1e-3, 0))
	_ = n.AddR("R1", a, b, 10)
	_ = n.AddL("L1", b, 0, 1e-3)
	_ = n.AddC("C1", a, 0, 1e-6)
	_ = n.AddR("R2", a, 0, 100)
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	abs, err := core.SpectralAbscissa(mna.Sys, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if abs >= 0 {
		t.Fatalf("passive RLC network reported unstable (abscissa %g)", abs)
	}

	nf := New()
	nd := nf.Node("n1")
	_ = nf.AddI("I1", 0, nd, waveform.Step(1, 0))
	_ = nf.AddR("R1", nd, 0, 1)
	_ = nf.AddCPE("P1", nd, 0, 1, 0.6)
	mnaF, err := nf.MNA()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := core.FractionalStable(mnaF.Sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("passive fractional RC reported unstable")
	}
}
