package circuit

import (
	"math"
	"math/cmplx"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/waveform"
)

func coreSolve(t *testing.T, m *MNA, steps int, T float64) (*core.Solution, error) {
	t.Helper()
	return core.Solve(m.Sys, m.Inputs, steps, T, core.Options{})
}

func rcLowpassMNA(t *testing.T) *MNA {
	t.Helper()
	n := New()
	in, out := n.Node("in"), n.Node("out")
	if err := n.AddV("V1", in, 0, waveform.Sine(1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", in, out, 1e3); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", out, 0, 1e-6); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := mna.VoltageSelector(out)
	if err != nil {
		t.Fatal(err)
	}
	sysC, err := mna.Sys.WithOutput(sel)
	if err != nil {
		t.Fatal(err)
	}
	mna.Sys = sysC
	return mna
}

func TestACLowpassCorner(t *testing.T) {
	mna := rcLowpassMNA(t)
	wc := 1.0 / (1e3 * 1e-6) // 1000 rad/s
	res, err := mna.AC([]float64{wc / 100, wc, wc * 100})
	if err != nil {
		t.Fatal(err)
	}
	// Passband: |H| ≈ 1, phase ≈ 0.
	if db := res.MagDB(0, 0)[0]; math.Abs(db) > 0.01 {
		t.Fatalf("passband = %g dB, want 0", db)
	}
	// Corner: −3.01 dB, −45°.
	if db := res.MagDB(0, 0)[1]; math.Abs(db+3.0103) > 0.01 {
		t.Fatalf("corner = %g dB, want −3.01", db)
	}
	if ph := res.PhaseDeg(0, 0)[1]; math.Abs(ph+45) > 0.1 {
		t.Fatalf("corner phase = %g°, want −45", ph)
	}
	// Stopband: −40 dB at 100×ωc.
	if db := res.MagDB(0, 0)[2]; math.Abs(db+40) > 0.1 {
		t.Fatalf("stopband = %g dB, want −40", db)
	}
}

// The exact constant-phase signature of a CPE: the impedance of R in series
// with a CPE seen from a current drive has phase −α·90° at high frequency.
func TestACConstantPhaseElement(t *testing.T) {
	n := New()
	a := n.Node("a")
	alpha := 0.6
	if err := n.AddI("I1", 0, a, waveform.Sine(1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddCPE("P1", a, 0, 1, alpha); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("Rbig", a, 0, 1e9); err != nil { // DC path only
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	res, err := mna.AC([]float64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	wantPh := -alpha * 90
	for k := range res.Omega {
		if ph := res.PhaseDeg(0, 0)[k]; math.Abs(ph-wantPh) > 0.5 {
			t.Fatalf("CPE phase at ω=%g is %g°, want %g°", res.Omega[k], ph, wantPh)
		}
		// |Z| = ω^{−α}.
		want := 20 * math.Log10(math.Pow(res.Omega[k], -alpha))
		if db := res.MagDB(0, 0)[k]; math.Abs(db-want) > 0.1 {
			t.Fatalf("CPE magnitude at ω=%g is %g dB, want %g", res.Omega[k], db, want)
		}
	}
}

// AC agrees with the time-domain steady state: drive the lowpass with a
// sine at ωc and compare the OPM steady-state amplitude with |H(jωc)|.
func TestACMatchesTimeDomainSteadyState(t *testing.T) {
	mna := rcLowpassMNA(t)
	wc := 1000.0
	res, err := mna.AC([]float64{wc})
	if err != nil {
		t.Fatal(err)
	}
	gain := cmplx.Abs(res.H[0][0][0])

	// Rebuild with the drive at f = ωc/2π and measure the late-time peak.
	n := New()
	in, out := n.Node("in"), n.Node("out")
	_ = n.AddV("V1", in, 0, waveform.Sine(1, wc/(2*math.Pi), 0))
	_ = n.AddR("R1", in, out, 1e3)
	_ = n.AddC("C1", out, 0, 1e-6)
	m2, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	T := 50e-3 // many periods and time constants
	sol, err := coreSolve(t, m2, 16384, T)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, tt := range waveform.UniformTimes(2000, T) {
		if tt < 30e-3 {
			continue
		}
		peak = math.Max(peak, math.Abs(sol.StateAt(1, tt)))
	}
	if math.Abs(peak-gain) > 0.01 {
		t.Fatalf("time-domain steady peak %g vs AC gain %g", peak, gain)
	}
}

func TestACValidation(t *testing.T) {
	mna := rcLowpassMNA(t)
	if _, err := mna.AC(nil); err == nil {
		t.Fatal("accepted empty sweep")
	}
	if _, err := mna.AC([]float64{-1}); err == nil {
		t.Fatal("accepted negative frequency")
	}
	// Nonlinear netlist refused.
	n := New()
	a := n.Node("a")
	_ = n.AddV("V1", a, 0, waveform.Constant(1))
	b := n.Node("b")
	_ = n.AddDiode("D1", a, b, 0, 0)
	_ = n.AddR("R1", b, 0, 1)
	nl, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AC([]float64{1}); err == nil {
		t.Fatal("accepted nonlinear netlist")
	}
}

func TestLogSpace(t *testing.T) {
	w, err := LogSpace(1, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("LogSpace = %v", w)
		}
	}
	if _, err := LogSpace(0, 1, 4); err == nil {
		t.Fatal("accepted start 0")
	}
	if _, err := LogSpace(1, 1, 4); err == nil {
		t.Fatal("accepted empty range")
	}
	if _, err := LogSpace(1, 10, 1); err == nil {
		t.Fatal("accepted n=1")
	}
}
