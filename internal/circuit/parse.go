package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"opmsim/internal/waveform"
)

// Deck is a parsed netlist plus its analysis directives.
type Deck struct {
	Title   string
	Netlist *Netlist
	// Tran holds the ".tran step stop" directive if present.
	Tran *TranDirective
	// ICs holds ".ic node=value" initial node voltages (node name → volts).
	ICs map[string]float64
}

// TranDirective is a ".tran <step> <stop>" analysis request.
type TranDirective struct {
	Step, Stop float64
}

// Parse reads a SPICE-flavoured netlist. Supported cards:
//
//	R<name> a b value
//	C<name> a b value
//	L<name> a b value
//	P<name> a b value alpha          (constant-phase element)
//	D<name> a b Is [Vt]              (junction diode; 0 = defaults)
//	G<name> a b c d gm               (VCCS: gm·(v_c−v_d) from a to b)
//	E<name> a b c d gain             (VCVS: v_a−v_b = gain·(v_c−v_d))
//	V<name> a b DC v | STEP v [t0] | SIN v0 va freq [phase]
//	        | PULSE v1 v2 td tr tf pw [per] | PWL t1 v1 t2 v2 ...
//	I<name> a b <same source forms>
//	K<name> L1 L2 k                  (mutual inductance)
//	X<inst> n1 n2 ... subname        (subcircuit instance)
//	.subckt name p1 p2 ... / .ends   (subcircuit definition)
//	.tran step stop
//	.end
//
// The first line is the title; '*' starts a comment; values accept SPICE
// magnitude suffixes (f p n u m k meg g t). Subcircuit internals are
// flattened with an "@<inst>" suffix on element and node names.
func Parse(r io.Reader) (*Deck, error) {
	sc := bufio.NewScanner(r)
	p := &parser{deck: &Deck{Netlist: New()}, defs: map[string]*subcktDef{}}
	lineNo := 0
	first := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if first {
			first = false
			// SPICE convention: the first line is the title unless it looks
			// like a card already.
			if line != "" && !strings.HasPrefix(line, "*") && !looksLikeCard(line) {
				p.deck.Title = line
				continue
			}
		}
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = strings.TrimSpace(line[:i])
			if line == "" {
				continue
			}
		}
		// Normalize parentheses so "PULSE(0 1 ...)" tokenizes cleanly.
		line = strings.NewReplacer("(", " ", ")", " ", ",", " ").Replace(line)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue // line held only punctuation
		}
		if err := p.card(fields); err != nil {
			return nil, fmt.Errorf("circuit: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("circuit: reading netlist: %w", err)
	}
	if p.collecting != nil {
		return nil, fmt.Errorf("circuit: unterminated .subckt %q", p.collectName)
	}
	return p.deck, nil
}

// parser carries deck state across cards: subcircuit definitions and the
// in-progress .subckt collection.
type parser struct {
	deck        *Deck
	defs        map[string]*subcktDef
	collecting  *subcktDef
	collectName string
	depth       int
}

// subcktDef is a parsed .subckt body: port names plus the raw cards between
// .subckt and .ends.
type subcktDef struct {
	ports []string
	cards [][]string
}

// card routes one tokenized line, honoring .subckt collection mode.
func (p *parser) card(f []string) error {
	upper := strings.ToUpper(f[0])
	switch {
	case upper == ".SUBCKT":
		if p.collecting != nil {
			return fmt.Errorf("nested .subckt definitions are not supported")
		}
		if len(f) < 3 {
			return fmt.Errorf(".subckt needs a name and at least one port")
		}
		name := strings.ToLower(f[1])
		if _, dup := p.defs[name]; dup {
			return fmt.Errorf("duplicate .subckt %q", f[1])
		}
		p.collecting = &subcktDef{ports: append([]string(nil), f[2:]...)}
		p.collectName = name
		return nil
	case upper == ".ENDS":
		if p.collecting == nil {
			return fmt.Errorf(".ends without .subckt")
		}
		p.defs[p.collectName] = p.collecting
		p.collecting = nil
		return nil
	case p.collecting != nil:
		if strings.HasPrefix(upper, ".") {
			return fmt.Errorf("directive %s not allowed inside .subckt", f[0])
		}
		p.collecting.cards = append(p.collecting.cards, append([]string(nil), f...))
		return nil
	case upper[0] == 'X':
		return p.expand(f)
	}
	return parseCard(p.deck, f)
}

// expand instantiates a subcircuit: "X<inst> n1 n2 ... subname". Ports bind
// to the caller's nodes; internal nodes and element names get a "@<inst>"
// suffix (suffix rather than prefix so the leading kind letter survives).
func (p *parser) expand(f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("X card %q needs nodes and a subckt name", f[0])
	}
	inst := f[0]
	subName := strings.ToLower(f[len(f)-1])
	def, ok := p.defs[subName]
	if !ok {
		return fmt.Errorf("unknown subckt %q", f[len(f)-1])
	}
	given := f[1 : len(f)-1]
	if len(given) != len(def.ports) {
		return fmt.Errorf("%s: subckt %q has %d ports, got %d nodes", inst, subName, len(def.ports), len(given))
	}
	if p.depth >= 8 {
		return fmt.Errorf("%s: subckt nesting deeper than 8", inst)
	}
	portMap := make(map[string]string, len(given))
	for i, pn := range def.ports {
		portMap[pn] = given[i]
	}
	mapNode := func(nm string) string {
		if nm == "0" || nm == "gnd" || nm == "GND" {
			return nm
		}
		if bound, ok := portMap[nm]; ok {
			return bound
		}
		return nm + "@" + inst
	}
	p.depth++
	defer func() { p.depth-- }()
	for _, card := range def.cards {
		g := append([]string(nil), card...)
		g[0] = g[0] + "@" + inst
		switch strings.ToUpper(card[0][:1]) {
		case "K":
			// Fields 1, 2 are inductor names inside this instance.
			if len(g) >= 3 {
				g[1] += "@" + inst
				g[2] += "@" + inst
			}
		case "G", "E":
			for _, i := range []int{1, 2, 3, 4} {
				if i < len(g) {
					g[i] = mapNode(g[i])
				}
			}
		case "X":
			// Nested instance: remap its port bindings, then recurse.
			for i := 1; i < len(g)-1; i++ {
				g[i] = mapNode(g[i])
			}
			if err := p.expand(g); err != nil {
				return err
			}
			continue
		default:
			for _, i := range []int{1, 2} {
				if i < len(g) {
					g[i] = mapNode(g[i])
				}
			}
		}
		if err := p.card(g); err != nil {
			return fmt.Errorf("in %s (subckt %s): %w", inst, subName, err)
		}
	}
	return nil
}

// looksLikeCard guesses whether a first line is a card rather than a title:
// directives always are; element cards need a known leading letter and at
// least the name/node/node/value fields.
func looksLikeCard(line string) bool {
	if strings.HasPrefix(line, ".") {
		return true
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return false
	}
	switch strings.ToUpper(line[:1]) {
	case "R", "C", "L", "V", "I", "P", "G", "E", "D", "K":
		return true
	}
	return false
}

func parseCard(deck *Deck, f []string) error {
	n := deck.Netlist
	card := strings.ToUpper(f[0])
	switch {
	case strings.HasPrefix(card, "."):
		switch card {
		case ".END":
			return nil
		case ".TRAN":
			if len(f) < 3 {
				return fmt.Errorf(".tran needs step and stop")
			}
			step, err := ParseValue(f[1])
			if err != nil {
				return err
			}
			stop, err := ParseValue(f[2])
			if err != nil {
				return err
			}
			if step <= 0 || stop <= 0 || step > stop {
				return fmt.Errorf(".tran values invalid: step=%g stop=%g", step, stop)
			}
			deck.Tran = &TranDirective{Step: step, Stop: stop}
			return nil
		case ".IC":
			// .ic node=value [node=value ...]
			if len(f) < 2 {
				return fmt.Errorf(".ic needs node=value pairs")
			}
			if deck.ICs == nil {
				deck.ICs = map[string]float64{}
			}
			for _, pair := range f[1:] {
				eq := strings.IndexByte(pair, '=')
				if eq <= 0 || eq == len(pair)-1 {
					return fmt.Errorf(".ic entry %q is not node=value", pair)
				}
				v, err := ParseValue(pair[eq+1:])
				if err != nil {
					return err
				}
				deck.ICs[pair[:eq]] = v
			}
			return nil
		default:
			return fmt.Errorf("unsupported directive %s", f[0])
		}
	case len(f) < 4:
		return fmt.Errorf("element card %q needs at least 4 fields", f[0])
	}
	name := f[0]
	if card[:1] == "K" {
		// K<name> L1 L2 k — the middle fields are inductor names, not
		// nodes, so they must not be interned.
		v, err := ParseValue(f[3])
		if err != nil {
			return err
		}
		return n.AddK(name, f[1], f[2], v)
	}
	a, b := n.Node(f[1]), n.Node(f[2])
	switch card[:1] {
	case "R":
		v, err := ParseValue(f[3])
		if err != nil {
			return err
		}
		return n.AddR(name, a, b, v)
	case "C":
		v, err := ParseValue(f[3])
		if err != nil {
			return err
		}
		return n.AddC(name, a, b, v)
	case "L":
		v, err := ParseValue(f[3])
		if err != nil {
			return err
		}
		return n.AddL(name, a, b, v)
	case "P":
		if len(f) < 5 {
			return fmt.Errorf("CPE %q needs value and order", name)
		}
		v, err := ParseValue(f[3])
		if err != nil {
			return err
		}
		alpha, err := ParseValue(f[4])
		if err != nil {
			return err
		}
		return n.AddCPE(name, a, b, v, alpha)
	case "V", "I":
		src, err := parseSource(f[3:])
		if err != nil {
			return fmt.Errorf("source %q: %w", name, err)
		}
		if card[:1] == "V" {
			return n.AddV(name, a, b, src)
		}
		return n.AddI(name, a, b, src)
	case "D":
		// D<name> a b [Is] [Vt] — defaults DefaultIs/DefaultVt. The 4th
		// field is optional, so len(f) may be 3 here only if the generic
		// arity check passed; it requires ≥4 fields, so Is is present or
		// the card simply reads "D1 a b 0" to take defaults.
		is, err := ParseValue(f[3])
		if err != nil {
			return err
		}
		vt := 0.0
		if len(f) >= 5 {
			vt, err = ParseValue(f[4])
			if err != nil {
				return err
			}
		}
		return n.AddDiode(name, a, b, is, vt)
	case "G", "E":
		if len(f) < 6 {
			return fmt.Errorf("controlled source %q needs n+ n- nc+ nc- value", name)
		}
		c, d := n.Node(f[3]), n.Node(f[4])
		v, err := ParseValue(f[5])
		if err != nil {
			return err
		}
		if card[:1] == "G" {
			return n.AddVCCS(name, a, b, c, d, v)
		}
		return n.AddVCVS(name, a, b, c, d, v)
	default:
		return fmt.Errorf("unknown element card %q", f[0])
	}
}

func parseSource(f []string) (waveform.Signal, error) {
	if len(f) == 0 {
		return nil, fmt.Errorf("missing source specification")
	}
	kind := strings.ToUpper(f[0])
	args := make([]float64, 0, len(f)-1)
	for _, s := range f[1:] {
		v, err := ParseValue(s)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	switch kind {
	case "DC":
		if len(args) != 1 {
			return nil, fmt.Errorf("DC needs one value")
		}
		return waveform.Constant(args[0]), nil
	case "STEP":
		switch len(args) {
		case 1:
			return waveform.Step(args[0], 0), nil
		case 2:
			return waveform.Step(args[0], args[1]), nil
		}
		return nil, fmt.Errorf("STEP needs 1 or 2 values")
	case "SIN":
		switch len(args) {
		case 3:
			off, amp, freq := args[0], args[1], args[2]
			s := waveform.Sine(amp, freq, 0)
			return func(t float64) float64 { return off + s(t) }, nil
		case 4:
			off, amp, freq, ph := args[0], args[1], args[2], args[3]
			s := waveform.Sine(amp, freq, ph)
			return func(t float64) float64 { return off + s(t) }, nil
		}
		return nil, fmt.Errorf("SIN needs 3 or 4 values")
	case "PULSE":
		switch len(args) {
		case 6:
			return waveform.Pulse(args[0], args[1], args[2], args[3], args[4], args[5], 0), nil
		case 7:
			return waveform.Pulse(args[0], args[1], args[2], args[3], args[4], args[5], args[6]), nil
		}
		return nil, fmt.Errorf("PULSE needs 6 or 7 values")
	case "PWL":
		if len(args) < 2 || len(args)%2 != 0 {
			return nil, fmt.Errorf("PWL needs an even number of values")
		}
		ts := make([]float64, len(args)/2)
		vs := make([]float64, len(args)/2)
		for i := range ts {
			ts[i], vs[i] = args[2*i], args[2*i+1]
		}
		return waveform.PWL(ts, vs)
	default:
		// Bare number: DC source.
		v, err := ParseValue(f[0])
		if err != nil {
			return nil, fmt.Errorf("unknown source kind %q", f[0])
		}
		return waveform.Constant(v), nil
	}
}

// ParseValue parses a SPICE magnitude: a float with an optional suffix among
// f, p, n, u, m, k, meg, g, t (case-insensitive); trailing unit letters such
// as "ohm" or "F" after the suffix are ignored.
func ParseValue(s string) (float64, error) {
	low := strings.ToLower(strings.TrimSpace(s))
	if low == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Split numeric prefix.
	i := 0
	for i < len(low) {
		ch := low[i]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == '+' || ch == '-' ||
			(ch == 'e' && i+1 < len(low) && (low[i+1] == '+' || low[i+1] == '-' || (low[i+1] >= '0' && low[i+1] <= '9'))) {
			if ch == 'e' {
				i += 2
				continue
			}
			i++
			continue
		}
		break
	}
	num, rest := low[:i], low[i:]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	mult := 1.0
	switch {
	case rest == "":
	case strings.HasPrefix(rest, "meg"):
		mult = 1e6
	case strings.HasPrefix(rest, "mil"):
		mult = 25.4e-6
	case rest[0] == 'f':
		mult = 1e-15
	case rest[0] == 'p':
		mult = 1e-12
	case rest[0] == 'n':
		mult = 1e-9
	case rest[0] == 'u':
		mult = 1e-6
	case rest[0] == 'm':
		mult = 1e-3
	case rest[0] == 'k':
		mult = 1e3
	case rest[0] == 'g':
		mult = 1e9
	case rest[0] == 't':
		mult = 1e12
	default:
		// Unit letters like "ohm", "v", "a", "hz", "h", "s": no scaling.
		// 'h' (henry), 'v', 'a', 'o', 's' are safe; anything else is a typo.
		switch rest[0] {
		case 'h', 'v', 'a', 'o', 's':
		default:
			return 0, fmt.Errorf("unknown magnitude suffix %q in %q", rest, s)
		}
	}
	out := v * mult
	if math.IsInf(out, 0) {
		return 0, fmt.Errorf("value %q overflows", s)
	}
	return out, nil
}
