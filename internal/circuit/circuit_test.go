package circuit

import (
	"math"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/specfn"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

func TestNetlistBuilderValidation(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	if err := n.AddR("R1", a, b, 100); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", a, b, 100); err == nil {
		t.Fatal("accepted duplicate name")
	}
	if err := n.AddR("R2", a, a, 100); err == nil {
		t.Fatal("accepted shorted element")
	}
	if err := n.AddR("R3", a, b, -5); err == nil {
		t.Fatal("accepted negative resistance")
	}
	if err := n.AddC("C1", a, b, 0); err == nil {
		t.Fatal("accepted zero capacitance")
	}
	if err := n.AddL("L1", a, b, -1); err == nil {
		t.Fatal("accepted negative inductance")
	}
	if err := n.AddV("V1", a, 0, nil); err == nil {
		t.Fatal("accepted nil source signal")
	}
	if err := n.AddCPE("P1", a, b, 1, 2.5); err == nil {
		t.Fatal("accepted CPE order outside (0,2)")
	}
	if err := n.AddCPE("P2", a, b, -1, 0.5); err == nil {
		t.Fatal("accepted negative pseudo-capacitance")
	}
}

func TestNodeIdentity(t *testing.T) {
	n := New()
	if n.Node("x") != n.Node("x") {
		t.Fatal("same name produced different nodes")
	}
	if n.Node("0") != 0 || n.Node("gnd") != 0 || n.Node("GND") != 0 {
		t.Fatal("ground aliases broken")
	}
	if n.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", n.NumNodes())
	}
	if n.NodeName(1) != "x" {
		t.Fatalf("NodeName(1) = %q", n.NodeName(1))
	}
}

// RC lowpass driven by a step voltage source: v_C = 1 − e^{−t/RC}.
func TestMNARCLowpass(t *testing.T) {
	n := New()
	in, out := n.Node("in"), n.Node("out")
	r, c := 1e3, 1e-6 // τ = 1 ms
	if err := n.AddV("V1", in, 0, waveform.Step(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", in, out, r); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", out, 0, c); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	// States: v(in), v(out), i(V1).
	if len(mna.StateNames) != 3 {
		t.Fatalf("states = %v", mna.StateNames)
	}
	m, T := 512, 5e-3
	sol, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tau := r * c
	h := T / float64(m)
	for j := 5; j < m; j += 37 {
		tt := (float64(j) + 0.5) * h
		want := 1 - math.Exp(-tt/tau)
		if got := sol.StateAt(1, tt); math.Abs(got-want) > 2e-3 {
			t.Fatalf("v_out(%g) = %g, want %g", tt, got, want)
		}
		// The input node must track the source exactly.
		if got := sol.StateAt(0, tt); math.Abs(got-1) > 1e-9 {
			t.Fatalf("v_in(%g) = %g, want 1", tt, got)
		}
	}
}

// Current source into parallel RC: v = R·(1 − e^{−t/RC}).
func TestMNACurrentSourceRC(t *testing.T) {
	n := New()
	nd := n.Node("n1")
	r, c := 2.0, 0.5 // τ = 1 s
	if err := n.AddI("I1", 0, nd, waveform.Step(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", nd, 0, r); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", nd, 0, c); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	m, T := 512, 4.0
	sol, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := T / float64(m)
	for j := 3; j < m; j += 41 {
		tt := (float64(j) + 0.5) * h
		want := r * (1 - math.Exp(-tt/(r*c)))
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 4e-3 {
			t.Fatalf("v(%g) = %g, want %g", tt, got, want)
		}
	}
}

// Series RLC driven by a step: underdamped oscillation of the capacitor
// voltage, checking the inductor-current state plumbing.
func TestMNASeriesRLC(t *testing.T) {
	n := New()
	a, b, cN := n.Node("a"), n.Node("b"), n.Node("c")
	rv, lv, cv := 1.0, 1.0, 0.25
	if err := n.AddV("V1", a, 0, waveform.Step(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", a, b, rv); err != nil {
		t.Fatal(err)
	}
	if err := n.AddL("L1", b, cN, lv); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", cN, 0, cv); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	m, T := 2048, 10.0
	sol, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic underdamped step response: ω₀ = 1/√(LC) = 2, ζ = R/2·√(C/L) = 0.25.
	w0 := 1 / math.Sqrt(lv*cv)
	zeta := rv / 2 * math.Sqrt(cv/lv)
	wd := w0 * math.Sqrt(1-zeta*zeta)
	vc := func(tt float64) float64 {
		return 1 - math.Exp(-zeta*w0*tt)*(math.Cos(wd*tt)+zeta*w0/wd*math.Sin(wd*tt))
	}
	h := T / float64(m)
	for j := 10; j < m; j += 111 {
		tt := (float64(j) + 0.5) * h
		if got := sol.StateAt(2, tt); math.Abs(got-vc(tt)) > 1e-2 {
			t.Fatalf("v_C(%g) = %g, want %g", tt, got, vc(tt))
		}
	}
}

// Fractional circuit: current step into R ∥ CPE gives the Mittag-Leffler
// relaxation v(t) = R·(1 − E_α(−tᵅ/(R·C₀))).
func TestMNAFractionalCPE(t *testing.T) {
	n := New()
	nd := n.Node("n1")
	r, c0, alpha := 1.0, 1.0, 0.5
	if err := n.AddI("I1", 0, nd, waveform.Step(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", nd, 0, r); err != nil {
		t.Fatal(err)
	}
	if err := n.AddCPE("P1", nd, 0, c0, alpha); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if got := mna.Sys.MaxOrder(); got != alpha {
		t.Fatalf("MaxOrder = %g, want %g", got, alpha)
	}
	m, T := 2048, 2.0
	sol, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.3, 0.7, 1.2, 1.8} {
		ml, err := specfn.MittagLeffler(alpha, -math.Pow(tt, alpha)/(r*c0))
		if err != nil {
			t.Fatal(err)
		}
		want := r * (1 - ml)
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 3e-2*(1+want) {
			t.Fatalf("fractional v(%g) = %g, want %g", tt, got, want)
		}
	}
}

// MNA DAE export: OPM and trapezoidal on the exported (E, A, B) agree.
func TestMNADAEExportMatchesTransient(t *testing.T) {
	n := New()
	in, out := n.Node("in"), n.Node("out")
	if err := n.AddV("V1", in, 0, waveform.Sine(1, 100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", in, out, 1e3); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", out, 0, 1e-6); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	e, a, b, err := mna.DAE()
	if err != nil {
		t.Fatal(err)
	}
	T := 20e-3
	res, err := transient.Simulate(e, a, b, mna.Inputs, T, T/4096, transient.Trapezoidal, transient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(mna.Sys, mna.Inputs, 4096, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare at OPM interval midpoints (BPF coefficients are interval
	// averages, so edge sampling would show a spurious O(h/2) offset).
	h := T / 4096
	for _, j := range []int{600, 1800, 3000} {
		tt := (float64(j) + 0.5) * h
		want := res.SampleState(1, []float64{tt})[0]
		if got := sol.StateAt(1, tt); math.Abs(got-want) > 1e-4 {
			t.Fatalf("OPM vs trapezoidal at %g: %g vs %g", tt, got, want)
		}
	}
}

func TestDAEExportRejectsFractional(t *testing.T) {
	n := New()
	nd := n.Node("n1")
	_ = n.AddI("I1", 0, nd, waveform.Step(1, 0))
	_ = n.AddCPE("P1", nd, 0, 1, 0.5)
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mna.DAE(); err == nil {
		t.Fatal("DAE export accepted fractional netlist")
	}
}

// NA and MNA formulations of the same RLC network agree (§V-B equivalence).
func TestNAMatchesMNA(t *testing.T) {
	n := New()
	n1, n2 := n.Node("n1"), n.Node("n2")
	// Smooth input so the differentiated NA input is benign.
	src := waveform.Sine(1e-3, 50, 0)
	if err := n.AddI("I1", 0, n1, src); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", n1, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", n1, 0, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := n.AddL("L1", n1, n2, 1e-3); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R2", n2, 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C2", n2, 0, 2e-6); err != nil {
		t.Fatal(err)
	}
	na, err := n.NA()
	if err != nil {
		t.Fatal(err)
	}
	if na.Sys.N() != 2 {
		t.Fatalf("NA states = %d, want 2", na.Sys.N())
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if mna.Sys.N() != 3 { // two nodes + inductor current
		t.Fatalf("MNA states = %d, want 3", mna.Sys.N())
	}
	m, T := 2048, 40e-3
	solNA, err := core.Solve(na.Sys, na.Inputs, m, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solMNA, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{5e-3, 15e-3, 30e-3} {
		for i := 0; i < 2; i++ {
			a, b := solNA.StateAt(i, tt), solMNA.StateAt(i, tt)
			if math.Abs(a-b) > 2e-3*(1+math.Abs(b)) {
				t.Fatalf("NA vs MNA node %d at t=%g: %g vs %g", i, tt, a, b)
			}
		}
	}
}

func TestNARejectsVSourceAndCPE(t *testing.T) {
	n := New()
	a := n.Node("a")
	_ = n.AddV("V1", a, 0, waveform.Step(1, 0))
	_ = n.AddR("R1", a, 0, 1)
	if _, err := n.NA(); err == nil {
		t.Fatal("NA accepted voltage source")
	}
	n2 := New()
	b := n2.Node("b")
	_ = n2.AddI("I1", 0, b, waveform.Step(1, 0))
	_ = n2.AddCPE("P1", b, 0, 1, 0.5)
	if _, err := n2.NA(); err == nil {
		t.Fatal("NA accepted CPE")
	}
}

func TestMNAValidationErrors(t *testing.T) {
	if _, err := New().MNA(); err == nil {
		t.Fatal("MNA accepted empty netlist")
	}
	n := New()
	a := n.Node("a")
	_ = n.AddR("R1", a, 0, 1)
	if _, err := n.MNA(); err == nil {
		t.Fatal("MNA accepted netlist without sources")
	}
}

func TestVoltageSelector(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	_ = n.AddV("V1", a, 0, waveform.Step(1, 0))
	_ = n.AddR("R1", a, b, 1)
	_ = n.AddC("C1", b, 0, 1)
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	c, err := mna.VoltageSelector(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.R != 1 || c.At(0, 1) != 1 {
		t.Fatal("VoltageSelector picked wrong entry")
	}
	if _, err := mna.VoltageSelector(0); err == nil {
		t.Fatal("VoltageSelector accepted ground")
	}
}

func TestStats(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	_ = n.AddR("R1", a, b, 1)
	_ = n.AddC("C1", b, 0, 1)
	_ = n.AddL("L1", a, 0, 1)
	_ = n.AddV("V1", a, 0, waveform.Step(1, 0))
	_ = n.AddI("I1", 0, b, waveform.Step(1, 0))
	_ = n.AddCPE("P1", a, b, 1, 0.5)
	s := n.Stats()
	if s != (Stats{Nodes: 2, R: 1, C: 1, L: 1, V: 1, I: 1, CPE: 1}) {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Resistor: "R", Capacitor: "C", Inductor: "L", VSource: "V", ISource: "I", CPE: "P"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind %d String = %q", int(k), k.String())
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind String empty")
	}
}
