package circuit

import (
	"math"
	"strings"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/waveform"
)

// DC: series resistor + diode to ground. The node voltage solves the
// transcendental equation (V − v)/R = Is(e^{v/Vt} − 1); compare the MNA
// Newton solution against an independent bisection.
func TestDiodeDCAgainstBisection(t *testing.T) {
	const (
		vsrc = 5.0
		r    = 1e3
		is   = 1e-14
		vt   = 0.02585
	)
	n := New()
	in, d := n.Node("in"), n.Node("d")
	if err := n.AddV("V1", in, 0, waveform.Constant(vsrc)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("R1", in, d, r); err != nil {
		t.Fatal(err)
	}
	if err := n.AddDiode("D1", d, 0, is, vt); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if mna.Nonlinear == nil || mna.Nonlinear.Count() != 1 {
		t.Fatal("diode not registered in nonlinearity")
	}
	dc, err := mna.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// Independent bisection for the diode voltage.
	f := func(v float64) float64 { return (vsrc-v)/r - is*(math.Exp(v/vt)-1) }
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	want := (lo + hi) / 2
	if math.Abs(dc[1]-want) > 1e-9 {
		t.Fatalf("diode DC voltage = %.9f, bisection gives %.9f", dc[1], want)
	}
}

// Transient: half-wave rectifier (sine → diode → R load). The output must
// clip: positive half cycles pass minus one diode drop; negative half cycles
// are blocked.
func TestDiodeHalfWaveRectifier(t *testing.T) {
	n := New()
	in, out := n.Node("in"), n.Node("out")
	if err := n.AddV("V1", in, 0, waveform.Sine(5, 50, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddDiode("D1", in, out, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("RL", out, 0, 1e3); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	T := 40e-3 // two mains cycles
	sol, err := core.SolveNonlinear(mna.Sys, mna.Nonlinear, mna.Inputs, 2048, T, core.NonlinearOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var maxOut, minOut float64
	for _, tt := range waveform.UniformTimes(256, T) {
		v := sol.StateAt(1, tt)
		maxOut = math.Max(maxOut, v)
		minOut = math.Min(minOut, v)
	}
	// Peak ≈ 5 V − ~0.7 V drop; negative excursions blocked (only the
	// diode's tiny leakage times 1 kΩ, i.e. ~nV).
	if maxOut < 3.8 || maxOut > 5 {
		t.Fatalf("rectified peak = %g, want ≈4.3", maxOut)
	}
	if minOut < -1e-3 {
		t.Fatalf("negative half-cycle leaked through: %g", minOut)
	}
}

// Peak detector: rectifier charging a capacitor. The capacitor must hold
// near the input peak between cycles (small droop through the bleed
// resistor).
func TestDiodePeakDetector(t *testing.T) {
	n := New()
	in, out := n.Node("in"), n.Node("out")
	if err := n.AddV("V1", in, 0, waveform.Sine(5, 50, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddDiode("D1", in, out, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddC("C1", out, 0, 10e-6); err != nil {
		t.Fatal(err)
	}
	if err := n.AddR("Rb", out, 0, 100e3); err != nil {
		t.Fatal(err)
	}
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	T := 60e-3
	sol, err := core.SolveNonlinear(mna.Sys, mna.Nonlinear, mna.Inputs, 4096, T, core.NonlinearOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// After the first quarter cycle the output should sit near the peak and
	// never dip far below it (τ_bleed = 1 s ≫ cycle).
	vAt := func(tt float64) float64 { return sol.StateAt(1, tt) }
	peakish := vAt(5.2e-3)
	if peakish < 3.8 {
		t.Fatalf("peak detector did not charge: %g", peakish)
	}
	trough := vAt(17e-3) // between peaks
	if trough < peakish-0.3 {
		t.Fatalf("peak detector drooped too much: %g after %g", trough, peakish)
	}
}

func TestDiodeValidationAndParse(t *testing.T) {
	n := New()
	a := n.Node("a")
	if err := n.AddDiode("D1", a, 0, -1, 0); err == nil {
		t.Fatal("accepted negative Is")
	}
	if err := n.AddDiode("D2", a, 0, 0, -1); err == nil {
		t.Fatal("accepted negative Vt")
	}
	deck := `rectifier
V1 in 0 SIN 0 5 50
D1 in out 1e-14 0.02585
RL out 0 1k
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Netlist.Stats().D != 1 {
		t.Fatalf("Stats = %+v", d.Netlist.Stats())
	}
	mna, err := d.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if mna.Nonlinear == nil {
		t.Fatal("parsed diode lost")
	}
	// Defaults via 0 value.
	d2, err := Parse(strings.NewReader("t\nV1 a 0 DC 1\nD1 a 0 0\nR1 a 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d2.Netlist.Elements() {
		if e.Kind == Diode && (e.Value != DefaultIs || e.Order != DefaultVt) {
			t.Fatalf("defaults not applied: %+v", e)
		}
	}
}

func TestDiodeBlocksLinearExports(t *testing.T) {
	n := New()
	a := n.Node("a")
	_ = n.AddV("V1", a, 0, waveform.Constant(1))
	b := n.Node("b")
	_ = n.AddDiode("D1", a, b, 0, 0)
	_ = n.AddR("R1", b, 0, 1)
	_ = n.AddC("C1", b, 0, 1e-6)
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mna.DAE(); err == nil {
		t.Fatal("DAE export accepted nonlinear netlist")
	}
	if _, err := n.NA(); err == nil {
		t.Fatal("NA accepted diode")
	}
}

// The exponent limiting keeps Newton alive even from terrible initial
// overshoot (5000 V across the diode at the first iterate).
func TestDiodeExponentLimiting(t *testing.T) {
	n := New()
	in, d := n.Node("in"), n.Node("d")
	_ = n.AddV("V1", in, 0, waveform.Constant(5000))
	_ = n.AddR("R1", in, d, 1)
	_ = n.AddDiode("D1", d, 0, 0, 0)
	mna, err := n.MNA()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := mna.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// Physical solution: ~0.9–1.1 V across the diode carrying ~5 kA is
	// unphysical hardware but a perfectly well-posed equation.
	if dc[1] < 0.5 || dc[1] > 2 {
		t.Fatalf("limited-exponential DC = %g, want O(1) volt", dc[1])
	}
}
