package circuit

import (
	"fmt"
	"math"
	"sort"

	"opmsim/internal/core"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// MNA is a modified-nodal-analysis model: a descriptor system
// Σ_k E_k·d^{α_k}x + G·x = B·u with states [node voltages; inductor
// currents; source currents].
type MNA struct {
	// Sys is the assembled system ready for the OPM or transient solvers.
	Sys *core.System
	// Inputs are the source signals, one per input channel, in element
	// order (V sources first gather their channels as encountered, then I
	// sources — in netlist order).
	Inputs []waveform.Signal
	// StateNames labels the state vector entries.
	StateNames []string
	// Nonlinear is non-nil when the netlist contains diodes; pass it to
	// core.SolveNonlinear (the linear solvers reject such systems only
	// implicitly — they would simply ignore the diodes).
	Nonlinear *DiodeNonlinearity

	numNodes  int
	nodeOf    map[int]int    // netlist node index → state index
	branchIdx map[string]int // element name → branch-current state index (MNA model)
	model     string         // "mna" or "na": which stamp layout Sys uses
}

// MNA assembles the modified-nodal-analysis model. Inductor currents and
// voltage-source currents become extra states (the DAE route of §V-B); CPEs
// contribute fractional-order storage terms.
func (n *Netlist) MNA() (*MNA, error) {
	nn := n.NumNodes()
	if nn == 0 {
		return nil, fmt.Errorf("circuit: netlist has no nodes")
	}
	// State layout.
	nodeOf := make(map[int]int, nn)
	names := make([]string, 0, nn)
	for i := 1; i <= nn; i++ {
		nodeOf[i] = i - 1
		names = append(names, "v("+n.NodeName(i)+")")
	}
	extra := nn
	branchIdx := map[string]int{}
	var inputs []waveform.Signal
	chanOf := map[string]int{}
	for _, e := range n.elements {
		switch e.Kind {
		case Inductor, VCVS:
			branchIdx[e.Name] = extra
			names = append(names, "i("+e.Name+")")
			extra++
		case VSource:
			branchIdx[e.Name] = extra
			names = append(names, "i("+e.Name+")")
			extra++
			chanOf[e.Name] = len(inputs)
			inputs = append(inputs, e.Source)
		case ISource:
			chanOf[e.Name] = len(inputs)
			inputs = append(inputs, e.Source)
		}
	}
	dim := extra
	if len(inputs) == 0 {
		return nil, fmt.Errorf("circuit: netlist has no sources")
	}

	var diodes []diodeEntry
	g := sparse.NewCOO(dim, dim)
	storage := map[float64]*sparse.COO{} // order → E_order
	stor := func(order float64) *sparse.COO {
		if s, ok := storage[order]; ok {
			return s
		}
		s := sparse.NewCOO(dim, dim)
		storage[order] = s
		return s
	}
	b := sparse.NewCOO(dim, len(inputs))

	// stampPair adds the ±v pattern of a two-terminal admittance into m.
	stampPair := func(m *sparse.COO, a, bn int, v float64) {
		if ia, ok := nodeOf[a]; ok {
			m.Add(ia, ia, v)
			if ib, ok := nodeOf[bn]; ok {
				m.Add(ia, ib, -v)
			}
		}
		if ib, ok := nodeOf[bn]; ok {
			m.Add(ib, ib, v)
			if ia, ok := nodeOf[a]; ok {
				m.Add(ib, ia, -v)
			}
		}
	}

	for _, e := range n.elements {
		switch e.Kind {
		case Resistor:
			stampPair(g, e.NodeA, e.NodeB, 1/e.Value)
		case Capacitor:
			stampPair(stor(1), e.NodeA, e.NodeB, e.Value)
		case CPE:
			stampPair(stor(e.Order), e.NodeA, e.NodeB, e.Value)
		case Inductor:
			l := branchIdx[e.Name]
			// KCL: branch current leaves NodeA, enters NodeB.
			if ia, ok := nodeOf[e.NodeA]; ok {
				g.Add(ia, l, 1)
				g.Add(l, ia, -1)
			}
			if ib, ok := nodeOf[e.NodeB]; ok {
				g.Add(ib, l, -1)
				g.Add(l, ib, 1)
			}
			// Branch: L·di/dt − (v_a − v_b) = 0.
			stor(1).Add(l, l, e.Value)
		case VSource:
			iv := branchIdx[e.Name]
			if ia, ok := nodeOf[e.NodeA]; ok {
				g.Add(ia, iv, 1)
				g.Add(iv, ia, 1)
			}
			if ib, ok := nodeOf[e.NodeB]; ok {
				g.Add(ib, iv, -1)
				g.Add(iv, ib, -1)
			}
			// Branch: v_a − v_b = u.
			b.Add(iv, chanOf[e.Name], 1)
		case ISource:
			// Current flows out of NodeA, into NodeB.
			if ia, ok := nodeOf[e.NodeA]; ok {
				b.Add(ia, chanOf[e.Name], -1)
			}
			if ib, ok := nodeOf[e.NodeB]; ok {
				b.Add(ib, chanOf[e.Name], 1)
			}
		case VCCS:
			// gm·(v_c − v_d) leaves NodeA and enters NodeB.
			stampCtrl := func(node int, sign float64) {
				idx, ok := nodeOf[node]
				if !ok {
					return
				}
				if ic, ok := nodeOf[e.NodeC]; ok {
					g.Add(idx, ic, sign*e.Value)
				}
				if id, ok := nodeOf[e.NodeD]; ok {
					g.Add(idx, id, -sign*e.Value)
				}
			}
			stampCtrl(e.NodeA, 1)
			stampCtrl(e.NodeB, -1)
		case Diode:
			stateOf := func(node int) int {
				if idx, ok := nodeOf[node]; ok {
					return idx
				}
				return -1
			}
			diodes = append(diodes, diodeEntry{
				a: stateOf(e.NodeA), b: stateOf(e.NodeB),
				is: e.Value, vt: e.Order,
			})
		case VCVS:
			br := branchIdx[e.Name]
			if ia, ok := nodeOf[e.NodeA]; ok {
				g.Add(ia, br, 1)
				g.Add(br, ia, 1)
			}
			if ib, ok := nodeOf[e.NodeB]; ok {
				g.Add(ib, br, -1)
				g.Add(br, ib, -1)
			}
			// Branch: v_a − v_b − gain·(v_c − v_d) = 0.
			if ic, ok := nodeOf[e.NodeC]; ok {
				g.Add(br, ic, -e.Value)
			}
			if id, ok := nodeOf[e.NodeD]; ok {
				g.Add(br, id, e.Value)
			}
		}
	}

	// Mutual inductances couple the branch equations:
	// L₁·di₁/dt + M·di₂/dt = v_a − v_b (and symmetrically), i.e. symmetric
	// off-diagonal entries M = K·√(L₁L₂) in the order-1 storage matrix at
	// the two branch-current rows.
	if len(n.couplings) > 0 {
		inductorVal := map[string]float64{}
		for _, e := range n.elements {
			if e.Kind == Inductor {
				inductorVal[e.Name] = e.Value
			}
		}
		for _, cp := range n.couplings {
			l1, ok1 := inductorVal[cp.L1]
			l2, ok2 := inductorVal[cp.L2]
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("circuit: coupling %q references unknown inductor", cp.Name)
			}
			mVal := cp.K * math.Sqrt(l1*l2)
			b1, b2 := branchIdx[cp.L1], branchIdx[cp.L2]
			stor(1).Add(b1, b2, mVal)
			stor(1).Add(b2, b1, mVal)
		}
	}

	// Assemble core.System: storage terms (sorted by order for determinism)
	// plus the order-0 conductance term.
	orders := make([]float64, 0, len(storage))
	for o := range storage {
		orders = append(orders, o)
	}
	sort.Float64s(orders)
	terms := make([]core.Term, 0, len(orders)+1)
	for _, o := range orders {
		terms = append(terms, core.Term{Order: o, Coeff: storage[o].ToCSR()})
	}
	if len(orders) == 0 {
		// Purely resistive network: keep the descriptor form with an
		// explicit zero E·ẋ term so the solvers treat it as a (memoryless)
		// DAE rather than rejecting it.
		terms = append(terms, core.Term{Order: 1, Coeff: sparse.NewCOO(dim, dim).ToCSR()})
	}
	terms = append(terms, core.Term{Order: 0, Coeff: g.ToCSR()})
	sys := &core.System{Terms: terms, B: b.ToCSR()}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: MNA assembly: %w", err)
	}
	out := &MNA{Sys: sys, Inputs: inputs, StateNames: names, numNodes: nn, nodeOf: nodeOf, branchIdx: branchIdx, model: modelMNA}
	if len(diodes) > 0 {
		out.Nonlinear = &DiodeNonlinearity{n: dim, entries: diodes}
	}
	return out, nil
}

// DAE returns the classic descriptor triple (E, A, B) of E·ẋ = A·x + B·u for
// integer-order netlists (no CPEs): E is the order-1 storage matrix and
// A = −G. Transient baselines consume this form.
func (m *MNA) DAE() (e, a, b *sparse.CSR, err error) {
	if m.Nonlinear != nil {
		return nil, nil, nil, fmt.Errorf("circuit: DAE export impossible: netlist contains diodes (use core.SolveNonlinear)")
	}
	dim := m.Sys.N()
	e = sparse.NewCOO(dim, dim).ToCSR() // empty until found
	var g *sparse.CSR
	for _, t := range m.Sys.Terms {
		switch t.Order {
		case 0:
			g = t.Coeff
		case 1:
			e = t.Coeff
		default:
			return nil, nil, nil, fmt.Errorf("circuit: DAE export impossible: fractional term of order %g present", t.Order)
		}
	}
	if g == nil {
		return nil, nil, nil, fmt.Errorf("circuit: DAE export: no conductance term")
	}
	return e, g.Scale(-1), m.Sys.B, nil
}

// VoltageSelector builds an output matrix C selecting the voltages of the
// given netlist nodes.
func (m *MNA) VoltageSelector(nodes ...int) (*sparse.CSR, error) {
	c := sparse.NewCOO(len(nodes), m.Sys.N())
	for r, node := range nodes {
		idx, ok := m.nodeOf[node]
		if !ok {
			return nil, fmt.Errorf("circuit: node %d is ground or unknown", node)
		}
		c.Add(r, idx, 1)
	}
	return c.ToCSR(), nil
}

// InitialState builds a state vector from ".ic"-style node voltages (node
// name → volts); unnamed states (other nodes, branch currents) start at
// zero. Unknown node names are an error.
func (m *MNA) InitialState(ics map[string]float64) ([]float64, error) {
	x0 := make([]float64, m.Sys.N())
	for name, v := range ics {
		idx := -1
		want := "v(" + name + ")"
		for i, sn := range m.StateNames {
			if sn == want {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("circuit: .ic references unknown node %q", name)
		}
		x0[idx] = v
	}
	return x0, nil
}

// DCOperatingPoint solves the DC problem G·x + g(x) = B·u(0): all
// derivatives are zero, so capacitors and CPEs are open and inductors are
// shorts (their branch equations reduce to v_a = v_b). Nonlinear netlists
// are solved by Newton iteration. It fails if the DC system is singular —
// e.g. a node isolated by capacitors with no DC path to ground.
func (m *MNA) DCOperatingPoint() ([]float64, error) {
	var g *sparse.CSR
	for _, t := range m.Sys.Terms {
		if isExactZero(t.Order) {
			g = t.Coeff
		}
	}
	if g == nil {
		return nil, fmt.Errorf("circuit: no conductance term")
	}
	n := m.Sys.N()
	u0 := make([]float64, len(m.Inputs))
	for c, sig := range m.Inputs {
		u0[c] = sig(0)
	}
	rhs := make([]float64, n)
	m.Sys.B.MulVecAdd(1, u0, rhs)
	if m.Nonlinear == nil {
		fac, err := sparse.Factor(g, sparse.Options{Refine: true})
		if err != nil {
			return nil, fmt.Errorf("circuit: DC system singular (floating node or L-V loop?): %w", err)
		}
		x, err := fac.Solve(rhs)
		if err != nil {
			return nil, fmt.Errorf("circuit: DC solve failed: %w", err)
		}
		return x, nil
	}
	// Newton on G·x + g(x) = rhs.
	x := make([]float64, n)
	gval := make([]float64, n)
	resid := make([]float64, n)
	for it := 0; it < 100; it++ {
		for i := range resid {
			resid[i] = -rhs[i]
		}
		g.MulVecAdd(1, x, resid)
		m.Nonlinear.Eval(x, gval)
		for i := range resid {
			resid[i] += gval[i]
		}
		jac := sparse.NewCOO(n, n)
		for r := 0; r < n; r++ {
			for p := g.RowPtr[r]; p < g.RowPtr[r+1]; p++ {
				jac.Add(r, g.ColIdx[p], g.Val[p])
			}
		}
		m.Nonlinear.StampJacobian(x, jac)
		fac, err := sparse.Factor(jac.ToCSR(), sparse.Options{})
		if err != nil {
			return nil, fmt.Errorf("circuit: DC Newton Jacobian singular: %w", err)
		}
		delta, err := fac.Solve(resid)
		if err != nil {
			return nil, fmt.Errorf("circuit: DC Newton solve failed: %w", err)
		}
		nd, nx := 0.0, 0.0
		for i := range x {
			x[i] -= delta[i]
			nd += delta[i] * delta[i]
			nx += x[i] * x[i]
		}
		if nd <= 1e-24*(1+nx) {
			return x, nil
		}
	}
	return nil, fmt.Errorf("circuit: DC Newton failed to converge")
}

// NA assembles the second-order nodal-analysis model of §V-B:
//
//	C·v̈ + G·v̇ + Γ·v = B·du/dt,   Γ = Σ_L (1/L)·incidence,
//
// obtained by differentiating KCL once so inductor currents disappear. The
// states are node voltages only (size = NumNodes, versus MNA's
// NumNodes+L+V), at the price of a second-order system and differentiated
// inputs — exactly the trade the paper's power-grid experiment makes.
// Voltage sources and CPEs are not representable; only current sources are
// allowed.
func (n *Netlist) NA() (*MNA, error) {
	nn := n.NumNodes()
	if nn == 0 {
		return nil, fmt.Errorf("circuit: netlist has no nodes")
	}
	nodeOf := make(map[int]int, nn)
	names := make([]string, 0, nn)
	for i := 1; i <= nn; i++ {
		nodeOf[i] = i - 1
		names = append(names, "v("+n.NodeName(i)+")")
	}
	if len(n.couplings) > 0 {
		return nil, fmt.Errorf("circuit: NA model does not support mutual inductance (use MNA)")
	}
	nSrc := countISources(n)
	if nSrc == 0 {
		return nil, fmt.Errorf("circuit: NA model needs at least one current source")
	}
	cm := sparse.NewCOO(nn, nn)
	gm := sparse.NewCOO(nn, nn)
	gam := sparse.NewCOO(nn, nn)
	var inputs []waveform.Signal
	b := sparse.NewCOO(nn, nSrc)
	stampPair := func(m *sparse.COO, a, bn int, v float64) {
		if ia, ok := nodeOf[a]; ok {
			m.Add(ia, ia, v)
			if ib, ok := nodeOf[bn]; ok {
				m.Add(ia, ib, -v)
			}
		}
		if ib, ok := nodeOf[bn]; ok {
			m.Add(ib, ib, v)
			if ia, ok := nodeOf[a]; ok {
				m.Add(ib, ia, -v)
			}
		}
	}
	for _, e := range n.elements {
		switch e.Kind {
		case Resistor:
			stampPair(gm, e.NodeA, e.NodeB, 1/e.Value)
		case Capacitor:
			stampPair(cm, e.NodeA, e.NodeB, e.Value)
		case Inductor:
			stampPair(gam, e.NodeA, e.NodeB, 1/e.Value)
		case ISource:
			ch := len(inputs)
			inputs = append(inputs, e.Source)
			if ia, ok := nodeOf[e.NodeA]; ok {
				b.Add(ia, ch, -1)
			}
			if ib, ok := nodeOf[e.NodeB]; ok {
				b.Add(ib, ch, 1)
			}
		case VCCS:
			stampCtrlNA := func(node int, sign float64) {
				idx, ok := nodeOf[node]
				if !ok {
					return
				}
				if ic, ok := nodeOf[e.NodeC]; ok {
					gm.Add(idx, ic, sign*e.Value)
				}
				if id, ok := nodeOf[e.NodeD]; ok {
					gm.Add(idx, id, -sign*e.Value)
				}
			}
			stampCtrlNA(e.NodeA, 1)
			stampCtrlNA(e.NodeB, -1)
		case VSource:
			return nil, fmt.Errorf("circuit: NA model cannot contain voltage source %q", e.Name)
		case VCVS:
			return nil, fmt.Errorf("circuit: NA model cannot contain VCVS %q", e.Name)
		case CPE:
			return nil, fmt.Errorf("circuit: NA model cannot contain CPE %q", e.Name)
		case Diode:
			return nil, fmt.Errorf("circuit: NA model cannot contain diode %q", e.Name)
		}
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("circuit: NA model needs at least one current source")
	}
	sys := &core.System{
		Terms: []core.Term{
			{Order: 2, Coeff: cm.ToCSR()},
			{Order: 1, Coeff: gm.ToCSR()},
			{Order: 0, Coeff: gam.ToCSR()},
		},
		B:      b.ToCSR(),
		BOrder: 1,
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: NA assembly: %w", err)
	}
	return &MNA{Sys: sys, Inputs: inputs, StateNames: names, numNodes: nn, nodeOf: nodeOf, model: modelNA}, nil
}

func countISources(n *Netlist) int {
	c := 0
	for _, e := range n.elements {
		if e.Kind == ISource {
			c++
		}
	}
	return c
}
