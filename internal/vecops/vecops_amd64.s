//go:build amd64 && !purego

#include "textflag.h"

// The packed kernels below intentionally use separate VMULPD/VSUBPD (or
// VADDPD) pairs rather than fused multiply-add: the package's bitwise
// contract is two IEEE roundings per element, exactly like the scalar Go
// loops they replace. Lanes never mix, so SIMD width cannot change results.

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX    // OSXSAVE | AVX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  no
	MOVL $0, CX
	XGETBV                       // OS must save XMM+YMM state
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func subMulAVX(dst, src *float64, n int, c float64)
TEXT ·subMulAVX(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD c+24(FP), Y0
	MOVQ         CX, DX
	SHRQ         $3, DX
	JZ           blk4

loop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMOVUPD (DI), Y3
	VMOVUPD 32(DI), Y4
	VSUBPD  Y1, Y3, Y3
	VSUBPD  Y2, Y4, Y4
	VMOVUPD Y3, (DI)
	VMOVUPD Y4, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    DX
	JNZ     loop8

blk4:
	TESTQ   $4, CX
	JZ      tail
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD (DI), Y2
	VSUBPD  Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI

tail:
	ANDQ $3, CX
	JZ   done

tail1:
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VMOVSD (DI), X2
	VSUBSD X1, X2, X2
	VMOVSD X2, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    tail1

done:
	VZEROUPPER
	RET

// func addMulAVX(dst, src *float64, n int, c float64)
TEXT ·addMulAVX(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD c+24(FP), Y0
	MOVQ         CX, DX
	SHRQ         $3, DX
	JZ           blk4

loop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMOVUPD (DI), Y3
	VMOVUPD 32(DI), Y4
	VADDPD  Y1, Y3, Y3
	VADDPD  Y2, Y4, Y4
	VMOVUPD Y3, (DI)
	VMOVUPD Y4, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    DX
	JNZ     loop8

blk4:
	TESTQ   $4, CX
	JZ      tail
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI

tail:
	ANDQ $3, CX
	JZ   done

tail1:
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VMOVSD (DI), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    tail1

done:
	VZEROUPPER
	RET

// func subMulRowsAVX(data []float64, w int, rows []int, coef []float64, src []float64)
//
// One call per sparse-triangular factor column: the outer loop walks the
// column's (row index, coefficient) pairs and the inner loop applies the
// w-wide two-rounding update with the source row resident in registers'
// reach, so per-nonzero overhead is an index load and an IMUL instead of a
// Go-level slice construction plus a call. R14/R15 and X15 are left alone
// (reserved by the Go internal ABI).
TEXT ·subMulRowsAVX(SB), NOSPLIT, $0-104
	MOVQ  data_base+0(FP), R8
	MOVQ  w+24(FP), R12
	MOVQ  rows_base+32(FP), R9
	MOVQ  rows_len+40(FP), R10
	MOVQ  coef_base+56(FP), R11
	MOVQ  src_base+80(FP), SI
	TESTQ R10, R10
	JZ    done
	CMPQ  R12, $32
	JE    w32                      // the batch panel width gets a fully
	                               // unrolled path with src held in registers
	MOVQ  R12, DX
	SHRQ  $3, DX                   // DX = w/8 (unrolled block pairs per row)
	MOVQ  R12, R13
	ANDQ  $3, R13                  // R13 = w%4 (scalar tail per row)

qloop:
	MOVQ         (R9), AX
	IMULQ        R12, AX
	LEAQ         (R8)(AX*8), DI    // DI = &data[rows[q]*w]
	VBROADCASTSD (R11), Y0
	MOVQ         SI, BX
	MOVQ         DX, CX
	TESTQ        CX, CX
	JZ           blk4q

loop8q:
	VMOVUPD (BX), Y1
	VMOVUPD 32(BX), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMOVUPD (DI), Y3
	VMOVUPD 32(DI), Y4
	VSUBPD  Y1, Y3, Y3
	VSUBPD  Y2, Y4, Y4
	VMOVUPD Y3, (DI)
	VMOVUPD Y4, 32(DI)
	ADDQ    $64, BX
	ADDQ    $64, DI
	DECQ    CX
	JNZ     loop8q

blk4q:
	TESTQ   $4, R12
	JZ      tailq
	VMOVUPD (BX), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD (DI), Y2
	VSUBPD  Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, BX
	ADDQ    $32, DI

tailq:
	MOVQ  R13, CX
	TESTQ CX, CX
	JZ    nextq

tail1q:
	VMOVSD (BX), X1
	VMULSD X0, X1, X1
	VMOVSD (DI), X2
	VSUBSD X1, X2, X2
	VMOVSD X2, (DI)
	ADDQ   $8, BX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    tail1q

nextq:
	ADDQ $8, R9
	ADDQ $8, R11
	DECQ R10
	JNZ  qloop
	JMP  done

	// w == 32: the whole source row lives in Y5–Y12 across the row loop, so
	// each row costs one broadcast plus eight load/mul/sub/store groups and
	// no inner-loop bookkeeping. Same two-rounding operand order as above.
w32:
	VMOVUPD (SI), Y5
	VMOVUPD 32(SI), Y6
	VMOVUPD 64(SI), Y7
	VMOVUPD 96(SI), Y8
	VMOVUPD 128(SI), Y9
	VMOVUPD 160(SI), Y10
	VMOVUPD 192(SI), Y11
	VMOVUPD 224(SI), Y12

q32:
	MOVQ         (R9), AX
	SHLQ         $5, AX            // rows[q] * 32
	LEAQ         (R8)(AX*8), DI
	VBROADCASTSD (R11), Y0
	VMULPD       Y0, Y5, Y1
	VMOVUPD      (DI), Y2
	VSUBPD       Y1, Y2, Y2
	VMOVUPD      Y2, (DI)
	VMULPD       Y0, Y6, Y1
	VMOVUPD      32(DI), Y2
	VSUBPD       Y1, Y2, Y2
	VMOVUPD      Y2, 32(DI)
	VMULPD       Y0, Y7, Y1
	VMOVUPD      64(DI), Y2
	VSUBPD       Y1, Y2, Y2
	VMOVUPD      Y2, 64(DI)
	VMULPD       Y0, Y8, Y1
	VMOVUPD      96(DI), Y2
	VSUBPD       Y1, Y2, Y2
	VMOVUPD      Y2, 96(DI)
	VMULPD       Y0, Y9, Y1
	VMOVUPD      128(DI), Y2
	VSUBPD       Y1, Y2, Y2
	VMOVUPD      Y2, 128(DI)
	VMULPD       Y0, Y10, Y1
	VMOVUPD      160(DI), Y2
	VSUBPD       Y1, Y2, Y2
	VMOVUPD      Y2, 160(DI)
	VMULPD       Y0, Y11, Y1
	VMOVUPD      192(DI), Y2
	VSUBPD       Y1, Y2, Y2
	VMOVUPD      Y2, 192(DI)
	VMULPD       Y0, Y12, Y1
	VMOVUPD      224(DI), Y2
	VSUBPD       Y1, Y2, Y2
	VMOVUPD      Y2, 224(DI)
	ADDQ         $8, R9
	ADDQ         $8, R11
	DECQ         R10
	JNZ          q32

done:
	VZEROUPPER
	RET

// func divAVX(dst *float64, n int, c float64)
TEXT ·divAVX(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	MOVQ         n+8(FP), CX
	VBROADCASTSD c+16(FP), Y0
	MOVQ         CX, DX
	SHRQ         $2, DX
	JZ           tail

loop4:
	VMOVUPD (DI), Y1
	VDIVPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, DI
	DECQ    DX
	JNZ     loop4

tail:
	ANDQ $3, CX
	JZ   done

tail1:
	VMOVSD (DI), X1
	VDIVSD X0, X1, X1
	VMOVSD X1, (DI)
	ADDQ   $8, DI
	DECQ   CX
	JNZ    tail1

done:
	VZEROUPPER
	RET
