package vecops

import (
	"math"
	"math/rand"
	"testing"
)

// fill populates a slice with a deterministic mix of ordinary values and the
// IEEE edge cases (signed zeros, infinities, NaN, denormals) whose bits the
// SIMD paths must reproduce exactly.
func fill(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = math.Copysign(0, -1)
		case 2:
			out[i] = math.Inf(1 - 2*rng.Intn(2))
		case 3:
			out[i] = math.NaN()
		case 4:
			out[i] = math.Float64frombits(uint64(rng.Intn(100) + 1)) // denormal
		default:
			out[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
	}
	return out
}

// bitsSame compares bit-for-bit, except that any NaN matches any NaN: x86
// NaN propagation keeps the first source operand's payload, and instruction
// operand order is the compiler's choice for commutative ops, so payloads
// are the one bit pattern the package does not pin down (see the doc
// comment). NaN-ness itself and the sign of zeros are fully determined.
func bitsSame(a, b []float64) bool {
	for i := range a {
		if math.IsNaN(a[i]) && math.IsNaN(b[i]) {
			continue
		}
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

var consts = []float64{0, math.Copysign(0, -1), 1, -3.5, 1e-308, 1e300, math.Inf(1), math.NaN()}

func TestSubMulMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 67; n++ {
		for _, c := range consts {
			dst := fill(rng, n)
			src := fill(rng, n)
			want := append([]float64(nil), dst...)
			if n > 0 {
				subMulGeneric(want, src, c)
			}
			SubMul(dst, src, c)
			if !bitsSame(dst, want) {
				t.Fatalf("SubMul n=%d c=%v diverges from generic", n, c)
			}
		}
	}
}

func TestAddMulMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 67; n++ {
		for _, c := range consts {
			dst := fill(rng, n)
			src := fill(rng, n)
			want := append([]float64(nil), dst...)
			if n > 0 {
				addMulGeneric(want, src, c)
			}
			AddMul(dst, src, c)
			if !bitsSame(dst, want) {
				t.Fatalf("AddMul n=%d c=%v diverges from generic", n, c)
			}
		}
	}
}

func TestDivMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 67; n++ {
		for _, c := range consts {
			dst := fill(rng, n)
			want := append([]float64(nil), dst...)
			if n > 0 {
				divGeneric(want, c)
			}
			Div(dst, c)
			if !bitsSame(dst, want) {
				t.Fatalf("Div n=%d c=%v diverges from generic", n, c)
			}
		}
	}
}

// TestUnalignedOffsets runs the kernels on subslices at every offset of a
// shared backing array: the AVX paths use unaligned loads, and this proves
// neighbouring elements are never touched.
func TestUnalignedOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	backing := fill(rng, 80)
	src := fill(rng, 80)
	for off := 0; off < 8; off++ {
		for n := 1; n <= 40; n += 7 {
			dst := append([]float64(nil), backing...)
			want := append([]float64(nil), backing...)
			SubMul(dst[off:off+n], src[off:off+n], 1.25)
			subMulGeneric(want[off:off+n], src[off:off+n], 1.25)
			if !bitsSame(dst, want) {
				t.Fatalf("SubMul off=%d n=%d touched out-of-range elements or diverged", off, n)
			}
		}
	}
}

func TestAliasedDstSrc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := fill(rng, 33)
	want := append([]float64(nil), v...)
	subMulGeneric(want, want, 0.5)
	SubMul(v, v, 0.5)
	if !bitsSame(v, want) {
		t.Fatal("SubMul(dst, dst, c) diverges from generic")
	}
}

// TestSubMulRowsMatchesGeneric exercises the fused multi-row kernel against
// per-row generic updates: scattered row indices (including repeats, which
// must accumulate in order), every width class the assembly branches on, and
// the IEEE edge-case values.
func TestSubMulRowsMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, w := range []int{0, 1, 2, 3, 4, 5, 7, 8, 11, 16, 31, 32, 33, 64} {
		for _, nq := range []int{0, 1, 2, 3, 5, 9} {
			nrows := 12
			rows := make([]int, nq)
			for q := range rows {
				rows[q] = rng.Intn(nrows)
			}
			coef := fill(rng, nq)
			src := fill(rng, w)
			data := fill(rng, nrows*w)
			want := append([]float64(nil), data...)
			if w > 0 {
				for q, r := range rows {
					subMulGeneric(want[r*w:r*w+w], src, coef[q])
				}
			}
			SubMulRows(data, w, rows, coef, src)
			if !bitsSame(data, want) {
				t.Fatalf("SubMulRows w=%d rows=%v diverges from per-row generic", w, rows)
			}
		}
	}
}

// The fused kernel must leave rows it was not given untouched, including the
// row holding src itself when src aliases a row of data.
func TestSubMulRowsAliasedSrcRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const w, nrows = 32, 6
	data := fill(rng, nrows*w)
	rows := []int{4, 1, 3}
	coef := []float64{0.5, -2.25, 1e-3}
	src := data[2*w : 3*w] // row 2, not in rows
	want := append([]float64(nil), data...)
	for q, r := range rows {
		subMulGeneric(want[r*w:r*w+w], want[2*w:3*w], coef[q])
	}
	SubMulRows(data, w, rows, coef, src)
	if !bitsSame(data, want) {
		t.Fatal("SubMulRows with src aliasing an untouched data row diverges from generic")
	}
}

func BenchmarkSubMul32(b *testing.B) {
	dst := make([]float64, 32)
	src := make([]float64, 32)
	for i := range src {
		src[i] = float64(i) + 0.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SubMul(dst, src, 1.0000001)
	}
}

func BenchmarkSubMul32Generic(b *testing.B) {
	dst := make([]float64, 32)
	src := make([]float64, 32)
	for i := range src {
		src[i] = float64(i) + 0.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		subMulGeneric(dst, src, 1.0000001)
	}
}

func BenchmarkSubMulRows4x32(b *testing.B) {
	data := make([]float64, 8*32)
	src := make([]float64, 32)
	for i := range src {
		src[i] = float64(i) + 0.5
	}
	rows := []int{1, 3, 4, 6}
	coef := []float64{0.5, 1.5, -0.25, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SubMulRows(data, 32, rows, coef, src)
	}
}
