//go:build !amd64 || purego

package vecops

func subMul(dst, src []float64, c float64) { subMulGeneric(dst, src, c) }
func addMul(dst, src []float64, c float64) { addMulGeneric(dst, src, c) }
func div(dst []float64, c float64)         { divGeneric(dst, c) }

func subMulRows(data []float64, w int, rows []int, coef []float64, src []float64) {
	subMulRowsGeneric(data, w, rows, coef, src)
}
