//go:build amd64 && !purego

package vecops

// hasAVX gates the 4-wide VEX paths; every amd64 CPU has 2-wide SSE2, but
// dropping straight to the generic loops keeps exactly one SIMD tier to
// validate. CPUID bit 28 alone is not enough — the OS must have enabled
// YMM state saving (OSXSAVE + XGETBV), which cpuHasAVX checks too.
var hasAVX = cpuHasAVX()

func cpuHasAVX() bool

func subMulAVX(dst, src *float64, n int, c float64)
func addMulAVX(dst, src *float64, n int, c float64)
func divAVX(dst *float64, n int, c float64)
func subMulRowsAVX(data []float64, w int, rows []int, coef []float64, src []float64)

func subMul(dst, src []float64, c float64) {
	if hasAVX {
		subMulAVX(&dst[0], &src[0], len(dst), c)
		return
	}
	subMulGeneric(dst, src, c)
}

func addMul(dst, src []float64, c float64) {
	if hasAVX {
		addMulAVX(&dst[0], &src[0], len(dst), c)
		return
	}
	addMulGeneric(dst, src, c)
}

func div(dst []float64, c float64) {
	if hasAVX {
		divAVX(&dst[0], len(dst), c)
		return
	}
	divGeneric(dst, c)
}

func subMulRows(data []float64, w int, rows []int, coef []float64, src []float64) {
	if hasAVX {
		subMulRowsAVX(data, w, rows, coef, src)
		return
	}
	subMulRowsGeneric(data, w, rows, coef, src)
}
