// Package vecops provides the element-wise float64 primitives under the
// blocked multi-RHS panel kernels: dst[i] -= c·src[i], dst[i] += c·src[i],
// and dst[i] /= c over short contiguous lanes (one lane per right-hand side
// of a panel).
//
// Bitwise contract: every implementation — the portable Go loops and the
// amd64 packed-SIMD paths — computes exactly one IEEE-754 multiply rounding
// followed by one add/subtract rounding per element (never a fused
// multiply-add), and one exactly-rounded division per element for Div. Each
// lane is independent; there is no cross-lane reduction whose order could
// differ. Results are therefore bit-for-bit identical across architectures,
// SIMD widths, and the generic fallback — which is what lets the panel
// kernels promise bitwise equality with their scalar per-column
// counterparts. The single exception is the payload of NaN results (x86
// propagates the first source operand's payload and operand order for
// commutative ops is the compiler's choice); whether a result is NaN, and
// the sign of every zero, are fully IEEE-determined and do match. The
// solvers reject non-finite values before any waveform comparison, so NaN
// payloads never reach a bitwise contract.
//
// The slices may overlap only if they are identical; dst and src must have
// equal length (callers slice accordingly — the functions index src by
// len(dst)).
package vecops

// SubMul subtracts c·src from dst element-wise: dst[i] -= c * src[i].
func SubMul(dst, src []float64, c float64) {
	if len(dst) == 0 {
		return
	}
	subMul(dst, src, c)
}

// AddMul adds c·src into dst element-wise: dst[i] += c * src[i].
func AddMul(dst, src []float64, c float64) {
	if len(dst) == 0 {
		return
	}
	addMul(dst, src, c)
}

// Div divides dst element-wise by c: dst[i] /= c.
func Div(dst []float64, c float64) {
	if len(dst) == 0 {
		return
	}
	div(dst, c)
}

// SubMulRows performs, for each q in order, the w-wide update
//
//	data[rows[q]*w : rows[q]*w+w][i] -= coef[q] * src[i]
//
// i.e. a whole column of sparse-triangular updates against one resident
// source row, fused into a single call so the per-row slice construction and
// call dispatch of repeated SubMul calls disappear from the hot path. Each
// (q, i) element follows the same two-rounding contract as SubMul.
//
// The caller must guarantee rows[q]*w+w <= len(data) for every q, len(coef)
// >= len(rows), and len(src) >= w; the assembly path does not bounds-check
// row indices (the generic path panics as usual).
func SubMulRows(data []float64, w int, rows []int, coef []float64, src []float64) {
	if w == 0 || len(rows) == 0 {
		return
	}
	_ = coef[len(rows)-1]
	_ = src[w-1]
	subMulRows(data, w, rows, coef, src)
}

// GatherDot returns the sparse-gather inner product Σ_q val[q]·x[idx[q]] —
// the kernel under the Sherman–Morrison–Woodbury capacitance assembly and
// per-column Vᵀy gathers. Unlike the lane-parallel primitives above this is a
// reduction, so to keep the bitwise contract it is defined as the strict
// left-to-right fold on every architecture: one multiply rounding and one add
// rounding per term, in index order, never reassociated or fused. The caller
// must guarantee idx[q] < len(x) and len(val) >= len(idx).
func GatherDot(idx []int, val, x []float64) float64 {
	s := 0.0
	for q, i := range idx {
		s += val[q] * x[i]
	}
	return s
}

// Generic reference implementations; the amd64 build dispatches to packed
// SIMD when the CPU supports it, and every build uses these as the fallback
// and as the test oracle.

func subMulGeneric(dst, src []float64, c float64) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] -= c * src[i]
	}
}

func addMulGeneric(dst, src []float64, c float64) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] += c * src[i]
	}
}

func divGeneric(dst []float64, c float64) {
	for i := range dst {
		dst[i] /= c
	}
}

func subMulRowsGeneric(data []float64, w int, rows []int, coef []float64, src []float64) {
	s := src[:w]
	for q, r := range rows {
		d := data[r*w : r*w+w]
		c := coef[q]
		for i, v := range s {
			d[i] -= c * v
		}
	}
}
