package core

import (
	"fmt"

	"opmsim/internal/sparse"
)

// RankOne is one rank-1 perturbation δ·u·vᵀ of a single term matrix: the
// stamp footprint of a component-value change. For a two-terminal admittance
// between states a and b both u and v are the incidence vector e_a − e_b and
// δ is the admittance change; for an MNA inductor the footprint is the single
// branch-diagonal entry. The circuit layer emits these via StampDelta; the
// batch engine consumes them either through the Sherman–Morrison–Woodbury
// update path or by materializing the perturbed system with ApplyDelta.
type RankOne struct {
	// Term indexes System.Terms: which E_k the update perturbs.
	Term int
	// Scale is δ, the scalar weight of the outer product.
	Scale float64
	// U and V are the sparse factors of the outer product u·vᵀ.
	U, V sparse.Vec
}

// PencilDelta is a low-rank perturbation of a System's term matrices — the
// sum of its rank-1 updates. Rank counts the updates, which bounds (and for
// independent stamps equals) the rank of the induced pencil update.
type PencilDelta struct {
	Updates []RankOne
}

// Rank returns the number of rank-1 updates (0 for nil).
func (d *PencilDelta) Rank() int {
	if d == nil {
		return 0
	}
	return len(d.Updates)
}

// validate checks every update against the system's dimensions.
func (d *PencilDelta) validate(sys *System) error {
	if d == nil {
		return nil
	}
	n := sys.N()
	for q, up := range d.Updates {
		if up.Term < 0 || up.Term >= len(sys.Terms) {
			return fmt.Errorf("core: delta update %d references term %d of %d", q, up.Term, len(sys.Terms))
		}
		if err := up.U.Validate(n); err != nil {
			return fmt.Errorf("core: delta update %d: U: %w", q, err)
		}
		if err := up.V.Validate(n); err != nil {
			return fmt.Errorf("core: delta update %d: V: %w", q, err)
		}
	}
	return nil
}

// ApplyDelta materializes the perturbed system: each touched term matrix is
// rebuilt as E_k + Σ δ_q·u_q·v_qᵀ over the updates targeting it, untouched
// terms (and B, C) share the original matrices. This is the canonical
// definition of "the perturbed system": the crossover-fallback path of the
// parameter-varying batch factors exactly this materialization, so forcing
// refactorization (BatchOptions.UpdateRankLimit < 0) reproduces
// Solve(ApplyDelta(sys, d), …) bit for bit.
//
// Entry order is deterministic: base entries are inserted in CSR row order,
// then update entries in update/outer-product order, and COO.ToCSR merges
// duplicates by that insertion order — so repeated calls yield bitwise
// identical matrices.
func ApplyDelta(sys *System, d *PencilDelta) (*System, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := d.validate(sys); err != nil {
		return nil, err
	}
	if d.Rank() == 0 {
		return sys, nil
	}
	touched := make(map[int]bool, len(d.Updates))
	for _, up := range d.Updates {
		touched[up.Term] = true
	}
	terms := make([]Term, len(sys.Terms))
	copy(terms, sys.Terms)
	for k := range terms {
		if !touched[k] {
			continue
		}
		a := terms[k].Coeff
		coo := sparse.NewCOO(a.R, a.C)
		for i := 0; i < a.R; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				coo.Add(i, a.ColIdx[p], a.Val[p])
			}
		}
		for _, up := range d.Updates {
			if up.Term != k {
				continue
			}
			for qi, ri := range up.U.Idx {
				ui := up.Scale * up.U.Val[qi]
				for qj, cj := range up.V.Idx {
					coo.Add(ri, cj, ui*up.V.Val[qj])
				}
			}
		}
		terms[k].Coeff = coo.ToCSR()
	}
	out := &System{Terms: terms, B: sys.B, BOrder: sys.BOrder, C: sys.C}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: delta-perturbed system invalid: %w", err)
	}
	return out, nil
}
