package core_test

// Fault-injection suite for the hardened solver core: every degradation path
// must terminate with the matching typed error (errors.Is) — never a process
// crash — and results served by a fallback factorization tier must still pass
// the golden 1e-12 waveform checks.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"opmsim/internal/core"
	"opmsim/internal/faultinject"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

func loadGolden(t *testing.T, name string) *goldenFile {
	t.Helper()
	buf, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden snapshot: %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(buf, &g); err != nil {
		t.Fatal(err)
	}
	return &g
}

func compareToGolden(t *testing.T, rows [][]float64, want *goldenFile, tol float64) {
	t.Helper()
	if len(rows) != want.N {
		t.Fatalf("n=%d, snapshot has %d", len(rows), want.N)
	}
	for i := range rows {
		for j := range rows[i] {
			got, ref := rows[i][j], want.X[i][j]
			if math.Abs(got-ref) > tol*(1+math.Abs(ref)) {
				t.Fatalf("X[%d][%d] = %.17g, golden %.17g (|Δ|=%g)", i, j, got, ref, math.Abs(got-ref))
			}
		}
	}
}

func scalar(v float64) *sparse.CSR {
	coo := sparse.NewCOO(1, 1)
	coo.Add(0, 0, v)
	return coo.ToCSR()
}

// asDiagnostic asserts err wraps the given sentinel and extracts the
// *Diagnostic for field checks.
func asDiagnostic(t *testing.T, err, kind error) *core.Diagnostic {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error, got nil")
	}
	if !errors.Is(err, kind) {
		t.Fatalf("errors.Is(err, %v) is false; err = %v", kind, err)
	}
	var d *core.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("error is not a *core.Diagnostic: %v", err)
	}
	return d
}

// Acceptance criterion: with the sparse tier force-failed, the dense-LU +
// iterative-refinement fallback must reproduce the quickstart golden waveform
// to 1e-12, and the SolveReport must record the degradation.
func TestFaultDenseFallbackMatchesGolden(t *testing.T) {
	fx := goldenFixtures()[0] // quickstart
	want := loadGolden(t, fx.name)
	rep := &core.SolveReport{}
	rows := solveCoeffRows(t, fx, core.Options{
		Report: rep,
		Fault:  faultinject.FailFactorAt(-1, faultinject.TierSparseLU),
	})
	compareToGolden(t, rows, want, 1e-12)
	if !rep.Degraded() {
		t.Fatal("report does not show degradation")
	}
	if rep.TierSolves[core.TierDenseLU] != fx.m {
		t.Fatalf("dense tier served %d solves, want %d", rep.TierSolves[core.TierDenseLU], fx.m)
	}
	if len(rep.Fallbacks) != 1 || rep.Fallbacks[0].Tier != core.TierDenseLU || rep.Fallbacks[0].Column != -1 {
		t.Fatalf("unexpected fallback record: %+v", rep.Fallbacks)
	}
	if s := rep.Summary(); !strings.Contains(s, "dense-LU+refine") {
		t.Fatalf("summary does not mention the serving tier:\n%s", s)
	}
}

// With sparse and dense both failed, the QR least-squares backstop serves the
// run; for the well-conditioned quickstart pencil it stays within 1e-9 of the
// golden waveform.
func TestFaultQRFallbackStillAccurate(t *testing.T) {
	fx := goldenFixtures()[0]
	want := loadGolden(t, fx.name)
	rep := &core.SolveReport{}
	rows := solveCoeffRows(t, fx, core.Options{
		Report: rep,
		Fault:  faultinject.FailFactorAt(-1, faultinject.TierSparseLU, faultinject.TierDenseLU),
	})
	compareToGolden(t, rows, want, 1e-9)
	if rep.TierSolves[core.TierQR] != fx.m {
		t.Fatalf("QR tier served %d solves, want %d", rep.TierSolves[core.TierQR], fx.m)
	}
}

// All three tiers refused: the run must end with ErrSingularPencil pinned to
// the shared factorization (column −1).
func TestFaultAllTiersFailIsSingularPencil(t *testing.T) {
	fx := goldenFixtures()[0]
	sys, u := fx.sys(t)
	_, err := core.Solve(sys, u, fx.m, fx.T, core.Options{Fault: faultinject.FailFactorAt(-1)})
	d := asDiagnostic(t, err, core.ErrSingularPencil)
	if d.Column != -1 {
		t.Fatalf("Column = %d, want -1 (shared factorization)", d.Column)
	}
}

// A NaN injected into column k must abort the run at exactly that column with
// ErrNonFinite, before the poison reaches the history recurrence.
func TestFaultNaNColumnIsNonFinite(t *testing.T) {
	fx := goldenFixtures()[0]
	sys, u := fx.sys(t)
	const col = 37
	_, err := core.Solve(sys, u, fx.m, fx.T, core.Options{Fault: faultinject.NaNAt(col, 2)})
	d := asDiagnostic(t, err, core.ErrNonFinite)
	if d.Column != col {
		t.Fatalf("Column = %d, want %d", d.Column, col)
	}
	h := fx.T / float64(fx.m)
	if wantT := (col + 0.5) * h; math.Abs(d.Time-wantT) > 1e-12 {
		t.Fatalf("Time = %g, want %g", d.Time, wantT)
	}
}

// A panicking history worker must be recovered by the pool and surfaced as
// ErrInternal — the process must not crash. The fractional fixture with
// m = 256 guarantees chunk advances (and hence worker tasks) happen.
func TestFaultWorkerPanicIsInternal(t *testing.T) {
	fx := goldenFixtures()[1] // fractional_line
	sys, u := fx.sys(t)
	_, err := core.Solve(sys, u, fx.m, fx.T, core.Options{
		Workers: 4,
		Fault:   faultinject.PanicWorker("injected worker panic"),
	})
	d := asDiagnostic(t, err, core.ErrInternal)
	if d.Column <= 0 {
		t.Fatalf("Column = %d, want a mid-run chunk boundary", d.Column)
	}
	if d.Cause == nil || !strings.Contains(d.Cause.Error(), "injected worker panic") {
		t.Fatalf("cause does not carry the panic value: %v", d.Cause)
	}
}

// A 1ms deadline against stalled columns must expire mid-run and surface as
// ErrCancelled wrapping context.DeadlineExceeded. (This is the CI
// timeout-guard scenario.)
func TestFaultStallTriggersDeadline(t *testing.T) {
	fx := goldenFixtures()[0]
	sys, u := fx.sys(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := core.SolveCtx(ctx, sys, u, fx.m, fx.T, core.Options{
		Fault: faultinject.StallColumns(200 * time.Microsecond),
	})
	d := asDiagnostic(t, err, core.ErrCancelled)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
	}
	if d.Column < 0 || d.Column >= fx.m {
		t.Fatalf("Column = %d, want within [0, %d)", d.Column, fx.m)
	}
}

// An already-cancelled context stops the solve before the first column.
func TestFaultCancelledBeforeStart(t *testing.T) {
	fx := goldenFixtures()[0]
	sys, u := fx.sys(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.SolveCtx(ctx, sys, u, fx.m, fx.T, core.Options{})
	d := asDiagnostic(t, err, core.ErrCancelled)
	if d.Column != 0 {
		t.Fatalf("Column = %d, want 0", d.Column)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
}

// The adaptive controller must retry a failed step with a halved h: with the
// first two factorizations force-failed through every tier, the run still
// completes and both the stats and the report count the retries.
func TestFaultAdaptiveRetriesHalvedStep(t *testing.T) {
	sys, err := core.NewDAE(scalar(1), scalar(-1), scalar(1))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rep := &core.SolveReport{}
	opt := core.AdaptiveOptions{Tol: 1e-4}
	opt.Report = rep
	opt.Fault = &faultinject.Hooks{FactorFail: func(col, tier int) bool {
		if tier == faultinject.TierSparseLU {
			calls++
		}
		return calls <= 2
	}}
	sol, stats, err := core.SolveAdaptiveAuto(sys, []waveform.Signal{waveform.Step(1, 0)}, 4, opt)
	if err != nil {
		t.Fatalf("controller did not recover from transient factorization failures: %v", err)
	}
	if stats.Retried != 2 {
		t.Fatalf("stats.Retried = %d, want 2", stats.Retried)
	}
	if rep.StepRetries != 2 {
		t.Fatalf("report.StepRetries = %d, want 2", rep.StepRetries)
	}
	// The recovered run must still be accurate: ẋ = −x + 1 from rest.
	tt := 3.5
	if got, want := sol.StateAt(0, tt), 1-math.Exp(-tt); math.Abs(got-want) > 1e-2 {
		t.Fatalf("x(%g) = %g, want %g", tt, got, want)
	}
}

// Exhausting the retry budget surfaces the underlying typed error instead of
// looping forever.
func TestFaultAdaptiveRetryBudgetExhausted(t *testing.T) {
	sys, err := core.NewDAE(scalar(1), scalar(-1), scalar(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.AdaptiveOptions{Tol: 1e-4}
	opt.Fault = faultinject.FailFactorAt(faultinject.AnyColumn)
	_, _, err = core.SolveAdaptiveAuto(sys, []waveform.Signal{waveform.Step(1, 0)}, 4, opt)
	asDiagnostic(t, err, core.ErrSingularPencil)
}

// The explicit-steps adaptive path shares the per-column guards.
func TestFaultAdaptiveExplicitNaN(t *testing.T) {
	sys, err := core.NewDAE(scalar(1), scalar(-1), scalar(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.SolveAdaptive(sys, []waveform.Signal{waveform.Step(1, 0)},
		[]float64{0.1, 0.2, 0.3, 0.4}, core.Options{Fault: faultinject.NaNAt(2, -1)})
	d := asDiagnostic(t, err, core.ErrNonFinite)
	if d.Column != 2 {
		t.Fatalf("Column = %d, want 2", d.Column)
	}
}

// nopNL is a zero nonlinearity, so SolveNonlinear behaves like Solve while
// still exercising the Newton path's guards.
type nopNL struct{}

func (nopNL) Eval(x, out []float64) {
	for i := range out {
		out[i] = 0
	}
}
func (nopNL) StampJacobian(x []float64, jac *sparse.COO) {}

// The Newton path shares the corruption and cancellation guards.
func TestFaultNonlinearNaNAndCancel(t *testing.T) {
	sys, err := core.NewDAE(scalar(1), scalar(-1), scalar(1))
	if err != nil {
		t.Fatal(err)
	}
	u := []waveform.Signal{waveform.Step(1, 0)}
	_, err = core.SolveNonlinear(sys, nopNL{}, u, 16, 1, core.NonlinearOptions{
		Options: core.Options{Fault: faultinject.NaNAt(3, -1)},
	})
	d := asDiagnostic(t, err, core.ErrNonFinite)
	if d.Column != 3 {
		t.Fatalf("Column = %d, want 3", d.Column)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = core.SolveNonlinearCtx(ctx, sys, nopNL{}, u, 16, 1, core.NonlinearOptions{})
	asDiagnostic(t, err, core.ErrCancelled)
}

// A fault-free run with a report attached must stay entirely on the sparse
// fast path — the hardening must not change the production tier.
func TestFaultFreeRunStaysOnSparseTier(t *testing.T) {
	fx := goldenFixtures()[0]
	rep := &core.SolveReport{}
	solveCoeffRows(t, fx, core.Options{Report: rep})
	if rep.Degraded() {
		t.Fatalf("fault-free run degraded: %s", rep.Summary())
	}
	if rep.TierSolves[core.TierSparseLU] != fx.m {
		t.Fatalf("sparse tier served %d solves, want %d", rep.TierSolves[core.TierSparseLU], fx.m)
	}
	if rep.Columns != fx.m {
		t.Fatalf("report.Columns = %d, want %d", rep.Columns, fx.m)
	}
}
