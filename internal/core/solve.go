package core

import (
	"context"
	"fmt"
	"math"

	"opmsim/internal/basis"
	"opmsim/internal/faultinject"
	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// Options configures the OPM solvers.
type Options struct {
	// PivotTol is the sparse-LU threshold-pivoting tolerance (0 → default).
	PivotTol float64
	// Refine enables one step of iterative refinement per column solve.
	Refine bool
	// X0 is an optional initial state. It is only supported for systems
	// whose orders are all 0 or 1 (the paper assumes zero initial
	// conditions; for DAEs the substitution z = x − x₀ reduces nonzero IC
	// to the zero-IC case, but for fractional orders the Caputo-with-zero-IC
	// semantics would change).
	X0 []float64
	// Workers sets the goroutine count of the parallel history engine used
	// for fractional/high-order terms (the O(nm²) part of the paper's §IV
	// cost split). The zero value means "auto" (runtime.GOMAXPROCS); 1 runs
	// the blocked engine on the calling goroutine. Results are
	// bitwise-identical for every Workers value: the engine always folds
	// past columns in ascending order into accumulators owned by a single
	// goroutine.
	Workers int
	// HistoryNaive forces the reference O(j)-per-column history summation
	// instead of the blocked parallel engine. Benchmarks and regression
	// tests use it as the baseline; the engine reproduces it bit for bit.
	// It takes precedence over HistoryMode.
	HistoryNaive bool
	// HistoryMode selects the engine serving fractional/high-order history
	// sums: HistoryExact is the blocked parallel engine, bitwise-identical
	// to the naive reference; HistoryFFT the segmented fast-convolution
	// tier, O(n·m log² m) instead of O(n·m²), agreeing with exact to
	// roundoff (≤1e-10 relative on the golden waveforms) but not bit for
	// bit; HistoryAuto — the zero value — picks FFT at and above a measured
	// crossover grid size and exact below it. Adaptive-grid (general) terms
	// always use the exact engine regardless of mode, because the
	// non-uniform operational matrix has no Toeplitz structure to convolve.
	HistoryMode HistoryMode
	// FactorCache, when non-nil, caches leading-pencil factorizations across
	// runs, keyed by the assembled pencil's contents plus (h, α) and the
	// factorization-steering options (see FactorCache). Solve, the adaptive
	// solvers, and SolveBatch consult it; repeated sweep points, halved-h
	// retries, and batch scenarios then reuse one factorization instead of
	// refactoring. Hits and misses are mirrored into Report. Safe to share
	// across goroutines. When factorization fault injection is active the
	// cache is bypassed (a cached factorization would short-circuit the
	// injected failures).
	FactorCache *FactorCache
	// OnColumn, when non-nil, is invoked by Solve/SolveCtx after each
	// solution column commits, with the column index, the interval-midpoint
	// time, and the column values including the X0 offset — bitwise-identical
	// to column col of the final Solution's coefficient matrix. The slice is
	// owned by the solver and reused between invocations: consumers must copy
	// (or encode) it before returning. The hook runs on the solving
	// goroutine, so a slow consumer throttles the solve — the intended
	// backpressure for streaming columns to a client. The adaptive and
	// nonlinear solvers ignore it (their columns are revised after commit);
	// SolveBatch ignores it too in favour of BatchOptions.OnColumn, whose
	// barrier semantics keep the hook off the concurrent group tasks.
	OnColumn func(col int, t float64, x []float64)
	// Supernodal steers the supernodal/domain-decomposed factorization tier
	// (nested-dissection BBD with blocked supernodal domain factors): 0 —
	// the default — engages it automatically for pencils of dimension at
	// least SupernodalMinN, 1 forces it regardless of size, −1 disables it.
	// When engaged it is tried before the scalar sparse LU and falls through
	// to it on any failure, so enabling it never loses robustness; solutions
	// are bitwise-identical across Workers values either way.
	Supernodal int
	// SupernodalMinN overrides the automatic engagement threshold of the
	// supernodal tier (0 → DefaultSupernodalMinN). Below the threshold the
	// scalar sparse LU is cheaper: the dissection, Schur assembly, and dense
	// interface factor only amortize once the pencil is large enough that
	// fill dominates the scalar factorization.
	SupernodalMinN int
	// CondLimit bounds the acceptable 1-norm condition estimate of the
	// sparse leading-pencil factorization before the solver falls back to
	// dense LU with iterative refinement. 0 selects the default 1e14; a
	// negative value disables condition estimation entirely (sparse LU is
	// then only abandoned when factorization fails).
	CondLimit float64
	// Report, when non-nil, is filled in place with what the hardened solver
	// core did: per-tier solve counts, fallback records, condition warnings,
	// and retry counters. It is also populated on failure, so post-mortems
	// see the partial run.
	Report *SolveReport
	// Fault carries optional fault-injection hooks (see internal/faultinject).
	// nil — the production configuration — adds one pointer comparison per
	// guarded site.
	Fault *faultinject.Hooks
}

// report returns the caller-attached report, or a throwaway one so the solve
// paths never need nil checks.
func (o *Options) report() *SolveReport {
	if o.Report != nil {
		return o.Report
	}
	return &SolveReport{}
}

// firstNonFinite returns the index of the first NaN/±Inf entry of x, or −1.
func firstNonFinite(x []float64) int {
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// Solve simulates the system over [0, T) with m uniform block-pulse
// intervals, which is the OPM method of §III–IV:
//
//  1. expand the input, u(t) = U·φ(t);
//  2. form the Toeplitz coefficients of Dᵅᵏ for every term (eq. 22);
//  3. factor M = Σ_k c₀⁽ᵏ⁾·E_k once;
//  4. solve for the columns of X left to right (eq. 28), accumulating each
//     term's history sum — O(1) per column for orders 0 and 1 (the "special
//     pattern" of §III-A), O(j) for fractional/high orders, exactly the
//     complexity split the paper describes.
func Solve(sys *System, u []waveform.Signal, m int, T float64, opt Options) (*Solution, error) {
	return SolveCtx(context.Background(), sys, u, m, T, opt)
}

// SolveCtx is Solve with cancellation: ctx is checked at every column of the
// solve loop (and at the chunk boundaries of the parallel history engine),
// and an expired or cancelled context terminates the run with a *Diagnostic
// wrapping ErrCancelled that records the column and time reached.
func SolveCtx(ctx context.Context, sys *System, u []waveform.Signal, m int, T float64, opt Options) (_ *Solution, err error) {
	rep := opt.report()
	defer func() { rep.Err = err }()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	bpf, err := basis.NewBPF(m, T)
	if err != nil {
		return nil, err
	}
	uc, err := expandInputs(sys, u, bpf)
	if err != nil {
		return nil, err
	}
	if !isExactZero(sys.BOrder) {
		uc = applyInputOrder(uc, bpf.DiffCoeffs(sys.BOrder))
	}

	x0, shift, err := prepareInitialState(sys, opt.X0)
	if err != nil {
		return nil, err
	}

	n := sys.N()
	// Per-term Toeplitz coefficient sequences c⁽ᵏ⁾ of Dᵅᵏ.
	coeffs := make([][]float64, len(sys.Terms))
	for k, t := range sys.Terms {
		coeffs[k] = bpf.DiffCoeffs(t.Order)
	}
	// M = Σ_k c₀⁽ᵏ⁾ E_k, factored once and reused for all m columns — through
	// the tiered chain, so a failed or ill-conditioned sparse factorization
	// degrades to dense LU + refinement, then QR, instead of aborting.
	msys, err := assembleLeading(sys, func(k int) float64 { return coeffs[k][0] })
	if err != nil {
		return nil, err
	}
	fac, err := factorPencilCached(msys, bpf.Step(), sys.MaxOrder(), -1, 0, &opt, rep)
	if err != nil {
		return nil, err
	}

	// Fast-path history for integer orders p ≥ 1: because
	// (1+q)ᵖ·ρ_p(q) = (2/h)ᵖ(1−q)ᵖ is a degree-p polynomial, the Toeplitz
	// coefficients obey a p-term linear recurrence and so do the history
	// sums s_j = Σ_{i<j} c_{j−i}·x_i:
	//
	//	s_j = Σ_{k=1..p} γ_k·x_{j−k} − Σ_{l=1..p} C(p,l)·s_{j−l},
	//	γ_k = C(p,k)·(2/h)ᵖ·((−1)ᵏ − 1)   (zero for even k).
	//
	// For p = 1 this is the classical s_j = −(4/h)x_{j−1} − s_{j−1} of
	// §III-A; for p ≥ 2 it keeps high-order solves at O(p·n) per column
	// instead of O(n·j). Fractional orders fall back to the full history,
	// matching the paper's complexity discussion for eq. (28).
	hist := make([]*intHistory, len(sys.Terms))
	eng, err := newHistoryEngine(n, m, &opt)
	if err != nil {
		return nil, err
	}
	eng.setGuards(ctx, &opt)
	for k, t := range sys.Terms {
		switch {
		case isExactZero(t.Order):
		case isExactEq(t.Order, float64(int(t.Order))):
			hist[k] = newIntHistory(int(t.Order), bpf.Step(), n)
		default:
			// Fractional orders have no short recurrence: full Toeplitz
			// history (blocked parallel folds, or segmented fast
			// convolution on the FFT tier).
			eng.addToeplitz(k, coeffs[k])
		}
	}
	if len(eng.terms) > 0 {
		rep.HistoryEngine = eng.modeName()
	}

	h := bpf.Step()
	cols := make([][]float64, m)
	// One slab backs all solution columns: cols[j] = xbuf[j·n:(j+1)·n]. The
	// column loop below allocates nothing per iteration — the slab, the rhs
	// and input-column buffers, and the factorization's internal scratch are
	// all reused — which matters once m reaches the thousands the FFT
	// history tier targets.
	xbuf := make([]float64, n*m)
	rhs := make([]float64, n)
	ucol := make([]float64, uc.Rows())
	var hook []float64
	if opt.OnColumn != nil {
		hook = make([]float64, n)
	}
	for j := 0; j < m; j++ {
		tj := (float64(j) + 0.5) * h
		if err := ctx.Err(); err != nil {
			d := diag(ErrCancelled, j, tj)
			d.Cause = err
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.ColumnDelay != nil {
			opt.Fault.ColumnDelay(j)
		}
		// rhs = B·u_j + shift − Σ_k E_k·s_j⁽ᵏ⁾.
		for i := range rhs {
			rhs[i] = shift[i]
		}
		sys.B.MulVecAdd(1, ucColumnInto(ucol, uc, j), rhs)
		for k, t := range sys.Terms {
			switch {
			case isExactZero(t.Order):
				continue
			case hist[k] != nil:
				t.Coeff.MulVecAdd(-1, hist[k].current(), rhs)
			default:
				w, err := eng.history(k, j, cols)
				if err != nil {
					d := diag(engineErrKind(err), j, tj)
					d.Order = t.Order
					d.Cause = err
					return nil, d
				}
				t.Coeff.MulVecAdd(-1, w, rhs)
			}
		}
		xj := xbuf[j*n : (j+1)*n : (j+1)*n]
		if err := fac.solveInto(xj, rhs); err != nil {
			d := diag(ErrInternal, j, tj)
			d.Cause = err
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.CorruptColumn != nil {
			opt.Fault.CorruptColumn(j, xj)
		}
		if i := firstNonFinite(xj); i >= 0 {
			d := diag(ErrNonFinite, j, tj)
			d.Cause = fmt.Errorf("state %d is %g (poisoned input sample or overflow?)", i, xj[i])
			return nil, d
		}
		cols[j] = xj
		rep.Columns++
		for k := range sys.Terms {
			if hist[k] != nil {
				hist[k].advance(xj)
			}
		}
		if opt.OnColumn != nil {
			// Same operands and order as the final assembly below, so the
			// streamed column matches the Solution entry bit for bit.
			for i := range hook {
				hook[i] = xj[i] + x0[i]
			}
			opt.OnColumn(j, tj, hook)
		}
	}
	x := mat.NewDense(n, m)
	for i := 0; i < n; i++ {
		xr, x0i := x.Row(i), x0[i]
		for j, col := range cols {
			xr[j] = col[i] + x0i
		}
	}
	return &Solution{sys: sys, bas: bpf, x: x}, nil
}

// expandInputs expands each input channel in the given basis and returns the
// p×m coefficient matrix U (eq. 11).
func expandInputs(sys *System, u []waveform.Signal, b basis.Basis) (*mat.Dense, error) {
	p := sys.Inputs()
	if len(u) != p {
		return nil, fmt.Errorf("core: system has %d inputs, got %d signals", p, len(u))
	}
	uc := mat.NewDense(p, b.Size())
	for c, sig := range u {
		if sig == nil {
			return nil, fmt.Errorf("core: input signal %d is nil", c)
		}
		row := b.Expand(sig)
		copy(uc.Row(c), row)
	}
	return uc, nil
}

// intHistory maintains the history sum of an integer-order term via the
// p-term recurrence documented in Solve. Protocol per column: call current()
// exactly once (it computes s_j), use the result, then call advance(x_j).
type intHistory struct {
	p     int
	gamma []float64   // γ_k, k = 1..p (zero for even k)
	binom []float64   // C(p,k), k = 1..p
	xs    [][]float64 // previous columns: xs[0] = x_{j−1}, ... (references)
	ss    [][]float64 // previous sums: ss[0] = s_{j−1}, ... (owned buffers)
	s     []float64   // scratch holding s_j between current() and advance()
}

func newIntHistory(p int, h float64, n int) *intHistory {
	hp := math.Pow(2/h, float64(p))
	ih := &intHistory{
		p:     p,
		gamma: make([]float64, p),
		binom: make([]float64, p),
		s:     make([]float64, n),
	}
	b := 1.0
	for k := 1; k <= p; k++ {
		b = b * float64(p-k+1) / float64(k)
		ih.binom[k-1] = b
		if k%2 == 1 {
			ih.gamma[k-1] = -2 * b * hp
		}
	}
	return ih
}

// current computes and returns s_j from the stored lags.
func (ih *intHistory) current() []float64 {
	for i := range ih.s {
		ih.s[i] = 0
	}
	for k := 0; k < len(ih.xs); k++ {
		if g := ih.gamma[k]; !isExactZero(g) {
			mat.Axpy(g, ih.xs[k], ih.s)
		}
	}
	for l := 0; l < len(ih.ss); l++ {
		mat.Axpy(-ih.binom[l], ih.ss[l], ih.s)
	}
	return ih.s
}

// advance pushes x_j (kept by reference) and the s_j just computed. The lag
// windows rotate in place — the oldest sum buffer is recycled and slice
// headers shift right — so steady-state columns allocate nothing.
func (ih *intHistory) advance(xj []float64) {
	var sbuf []float64
	if len(ih.ss) == ih.p {
		// Recycle the oldest sum buffer.
		sbuf = ih.ss[ih.p-1]
	} else {
		sbuf = make([]float64, len(ih.s))
		ih.ss = append(ih.ss, nil)
	}
	copy(ih.ss[1:], ih.ss[:len(ih.ss)-1])
	ih.ss[0] = sbuf
	copy(sbuf, ih.s)
	if len(ih.xs) < ih.p {
		ih.xs = append(ih.xs, nil)
	}
	copy(ih.xs[1:], ih.xs[:len(ih.xs)-1])
	ih.xs[0] = xj
}

// applyInputOrder right-multiplies the input coefficient matrix by the
// Toeplitz operational matrix with the given coefficient sequence:
// U_eff[c][j] = Σ_{i≤j} U[c][i]·d_{j−i}, realizing B·dᵝu/dtᵝ.
//
// Integer orders hit a fast path: DiffCoeffs(β) for β = 1 is the classical
// D(m) sequence (2/h)·(1, −2, 2, −2, ...), whose tail alternates exactly
// (d_k = −d_{k−1} for k ≥ 2), collapsing the O(m²) convolution per row to
// the O(m) recurrence t_j = d₁·u_{j−1} − t_{j−1}, y_j = d₀·u_j + t_j. The
// recurrence sums in a different order than the naive convolution, so the
// two paths agree to rounding, not bit for bit — acceptable here because
// every solver (sequential, adaptive, batch) routes through this one
// function, keeping batch-vs-sequential comparisons exact.
func applyInputOrder(uc *mat.Dense, d []float64) *mat.Dense {
	p, m := uc.Rows(), uc.Cols()
	out := mat.NewDense(p, m)
	if toeplitzTailAlternates(d) {
		for c := 0; c < p; c++ {
			row := uc.Row(c)
			orow := out.Row(c)
			t := 0.0
			orow[0] = d[0] * row[0]
			for j := 1; j < m; j++ {
				t = d[1]*row[j-1] - t
				orow[j] = d[0]*row[j] + t
			}
		}
		return out
	}
	for c := 0; c < p; c++ {
		row := uc.Row(c)
		orow := out.Row(c)
		for j := 0; j < m; j++ {
			s := 0.0
			for i := 0; i <= j; i++ {
				s += row[i] * d[j-i]
			}
			orow[j] = s
		}
	}
	return out
}

// toeplitzTailAlternates reports whether d_k = −d_{k−1} holds exactly for
// every k ≥ 2, the structure of the integer-order differentiation sequence
// that licenses applyInputOrder's O(m) recurrence. Negating a float is
// exact, so for true D(m) sequences the check cannot fail on rounding.
func toeplitzTailAlternates(d []float64) bool {
	if len(d) < 3 {
		return false // the naive convolution is already trivial
	}
	for k := 2; k < len(d); k++ {
		if !isExactEq(d[k], -d[k-1]) {
			return false
		}
	}
	return true
}

// ucColumnInto gathers column j of the input coefficient matrix into dst
// (len uc.Rows()) and returns it; the solve loops reuse one buffer across
// all columns.
func ucColumnInto(dst []float64, uc *mat.Dense, j int) []float64 {
	for i := range dst {
		dst[i] = uc.At(i, j)
	}
	return dst
}

func ucColumn(uc *mat.Dense, j int) []float64 {
	return ucColumnInto(make([]float64, uc.Rows()), uc, j)
}

// assembleLeading combines the term coefficient matrices with the given
// per-term scalars.
func assembleLeading(sys *System, scale func(k int) float64) (*sparse.CSR, error) {
	var m *sparse.CSR
	for k, t := range sys.Terms {
		if m == nil {
			m = t.Coeff.Scale(scale(k))
			continue
		}
		m = sparse.Combine(1, m, scale(k), t.Coeff)
	}
	if m == nil {
		return nil, fmt.Errorf("core: no terms to assemble")
	}
	return m, nil
}

// LeadingPencil assembles the leading matrix M = Σ_k c₀⁽ᵏ⁾·E_k that every
// column solve of an m-interval uniform run factors — the matrix the tiered
// factorization chain (supernodal/BBD → sparse LU → dense → QR) receives —
// and returns it with the step size h = T/m. It exists for harnesses that
// benchmark or inspect the factorization stage in isolation (the scale
// experiment); the solvers assemble internally.
func LeadingPencil(sys *System, m int, T float64) (*sparse.CSR, float64, error) {
	if err := sys.Validate(); err != nil {
		return nil, 0, err
	}
	bpf, err := basis.NewBPF(m, T)
	if err != nil {
		return nil, 0, err
	}
	coeffs := make([][]float64, len(sys.Terms))
	for k, t := range sys.Terms {
		coeffs[k] = bpf.DiffCoeffs(t.Order)
	}
	msys, err := assembleLeading(sys, func(k int) float64 { return coeffs[k][0] })
	if err != nil {
		return nil, 0, err
	}
	return msys, bpf.Step(), nil
}

// prepareInitialState validates X0 and returns the state offset x₀ and the
// constant rhs shift g = −Σ_{k: α_k=0} E_k·x₀ arising from z = x − x₀.
func prepareInitialState(sys *System, x0 []float64) (offset, shift []float64, err error) {
	n := sys.N()
	shift = make([]float64, n)
	if x0 == nil {
		return make([]float64, n), shift, nil
	}
	if len(x0) != n {
		return nil, nil, fmt.Errorf("core: X0 has length %d, want %d", len(x0), n)
	}
	for _, t := range sys.Terms {
		if !isExactZero(t.Order) && !isExactEq(t.Order, 1) {
			return nil, nil, fmt.Errorf("core: nonzero X0 requires all orders in {0,1}, found %g", t.Order)
		}
	}
	for _, t := range sys.Terms {
		if isExactZero(t.Order) {
			t.Coeff.MulVecAdd(-1, x0, shift)
		}
	}
	return append([]float64(nil), x0...), shift, nil
}

// SolveCoefficients runs Solve with input coefficients already expanded (the
// p×m matrix U of eq. 11) instead of signal closures. It is used by the
// benchmarks to exclude quadrature from timing, and mirrors the paper's
// setting where U is given.
func SolveCoefficients(sys *System, uc *mat.Dense, m int, T float64, opt Options) (*Solution, error) {
	if uc.Rows() != sys.Inputs() || uc.Cols() != m {
		return nil, fmt.Errorf("core: U is %dx%d, want %dx%d", uc.Rows(), uc.Cols(), sys.Inputs(), m)
	}
	bpf, err := basis.NewBPF(m, T)
	if err != nil {
		return nil, err
	}
	sigs := make([]waveform.Signal, sys.Inputs())
	for c := range sigs {
		row := uc.Row(c)
		sigs[c] = func(t float64) float64 { return bpf.Reconstruct(row, t) }
	}
	return Solve(sys, sigs, m, T, opt)
}

// ResidualNorm measures how well a solution satisfies the operational-matrix
// equation Σ_k E_k·X·Dᵅᵏ = B·U in the Frobenius norm, relative to ‖B·U‖. It
// is a diagnostic used by tests: OPM solves the equation exactly (up to
// roundoff), so the residual should be at machine-precision level.
func ResidualNorm(sys *System, sol *Solution, u []waveform.Signal) (float64, error) {
	bpf, ok := sol.bas.(*basis.BPF)
	if !ok {
		return 0, fmt.Errorf("core: ResidualNorm requires a uniform BPF solution")
	}
	uc, err := expandInputs(sys, u, bpf)
	if err != nil {
		return 0, err
	}
	if !isExactZero(sys.BOrder) {
		uc = applyInputOrder(uc, bpf.DiffCoeffs(sys.BOrder))
	}
	n, m := sys.N(), bpf.Size()
	lhs := mat.NewDense(n, m)
	for _, t := range sys.Terms {
		xd := mat.Mul(sol.x, bpf.DiffMatrix(t.Order))
		ecsr := t.Coeff
		for i := 0; i < n; i++ {
			lr := lhs.Row(i)
			for p := ecsr.RowPtr[i]; p < ecsr.RowPtr[i+1]; p++ {
				k, v := ecsr.ColIdx[p], ecsr.Val[p]
				xdk := xd.Row(k)
				for j := 0; j < m; j++ {
					lr[j] += v * xdk[j]
				}
			}
		}
	}
	bu := mat.NewDense(n, m)
	for j := 0; j < m; j++ {
		col := sys.B.MulVec(ucColumn(uc, j), nil)
		for i := 0; i < n; i++ {
			//lint:ignore atset column fill from a per-column MulVec result; no row view spans it
			bu.Set(i, j, col[i])
		}
	}
	denom := bu.NormFro()
	if isExactZero(denom) {
		denom = 1
	}
	return mat.Sub(lhs, bu).NormFro() / denom, nil
}
