package core

import (
	"math/rand"
	"testing"

	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// fracTestSystem builds an n-state mixed-order system with two fractional
// terms (no recurrence fast path) plus integer terms, diagonally dominant so
// the leading matrix is comfortably factorable.
func fracTestSystem(n int, seed int64) (*System, []waveform.Signal) {
	rng := rand.New(rand.NewSource(seed))
	diag := func(base float64) *sparse.CSR {
		c := sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, base+0.1*rng.Float64())
			if j := rng.Intn(n); j != i {
				c.Add(i, j, 0.05*rng.NormFloat64())
			}
		}
		return c.ToCSR()
	}
	bcoo := sparse.NewCOO(n, 1)
	for i := 0; i < n; i++ {
		bcoo.Add(i, 0, rng.NormFloat64())
	}
	sys := &System{
		Terms: []Term{
			{Order: 0.55, Coeff: diag(1)},
			{Order: 1.3, Coeff: diag(0.5)},
			{Order: 1, Coeff: diag(0.3)},
			{Order: 0, Coeff: diag(1)},
		},
		B: bcoo.ToCSR(),
	}
	return sys, []waveform.Signal{waveform.Sine(1, 0.8, 0.3)}
}

func sameDense(t *testing.T, name string, a, b *mat.Dense) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("%s: X[%d][%d] differs: %.17g vs %.17g", name, i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

// The blocked parallel engine must reproduce the reference column-by-column
// summation bit for bit, for every worker count and for m values on both
// sides of the chunk boundary.
func TestHistoryEngineMatchesNaiveBitwise(t *testing.T) {
	sys, u := fracTestSystem(5, 11)
	for _, m := range []int{1, 63, 64, 65, 200, 257} {
		ref, err := Solve(sys, u, m, 2, Options{HistoryNaive: true})
		if err != nil {
			t.Fatalf("m=%d naive: %v", m, err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := Solve(sys, u, m, 2, Options{Workers: workers})
			if err != nil {
				t.Fatalf("m=%d workers=%d: %v", m, workers, err)
			}
			sameDense(t, "engine vs naive", got.Coefficients(), ref.Coefficients())
		}
	}
}

// SolveAdaptive's general-history path (dense adaptive operational
// matrices) must be equally deterministic across worker counts.
func TestSolveAdaptiveParallelDeterministic(t *testing.T) {
	sys, u := fracTestSystem(4, 7)
	// Pairwise-distinct steps (eq. 25's eigendecomposition requirement).
	steps := make([]float64, 72)
	h := 0.01
	for i := range steps {
		steps[i] = h
		h *= 1.015
	}
	ref, err := SolveAdaptive(sys, u, steps, Options{HistoryNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := SolveAdaptive(sys, u, steps, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameDense(t, "adaptive engine vs naive", got.Coefficients(), ref.Coefficients())
	}
}

// A zero Options{} must behave exactly as the seed solver did: the engine
// defaults (Workers auto, blocked summation) reproduce the reference
// history loop bit for bit, and the integer-order fast path is untouched.
func TestZeroOptionsUnchangedFromSeed(t *testing.T) {
	sys, u := fracTestSystem(5, 3)
	seed, err := Solve(sys, u, 150, 2, Options{HistoryNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(sys, u, 150, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameDense(t, "zero Options vs seed history", got.Coefficients(), seed.Coefficients())

	// Integer orders use the recurrence fast path; Workers must not matter.
	isys, err := NewSecondOrder(scalarCSR(1), scalarCSR(0.6), scalarCSR(4), scalarCSR(1))
	if err != nil {
		t.Fatal(err)
	}
	iu := []waveform.Signal{waveform.Sine(1, 0.5, 0)}
	iref, err := Solve(isys, iu, 96, 2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	igot, err := Solve(isys, iu, 96, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameDense(t, "integer fast path", igot.Coefficients(), iref.Coefficients())
}

// The nonlinear solver shares the history engine; its fractional results
// must also be independent of the worker count.
func TestSolveNonlinearParallelDeterministic(t *testing.T) {
	n := 3
	sys, u := fracTestSystem(n, 19)
	g := &vecCubicNL{c: 0.2}
	ref, err := SolveNonlinear(sys, g, u, 130, 2, NonlinearOptions{Options: Options{HistoryNaive: true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := SolveNonlinear(sys, g, u, 130, 2, NonlinearOptions{Options: Options{Workers: workers}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameDense(t, "nonlinear engine vs naive", got.Coefficients(), ref.Coefficients())
	}
}

// vecCubicNL is g(x)_i = c·x_i³, a smooth vector test nonlinearity.
type vecCubicNL struct{ c float64 }

func (g *vecCubicNL) Eval(x, out []float64) {
	for i, v := range x {
		out[i] = g.c * v * v * v
	}
}

func (g *vecCubicNL) StampJacobian(x []float64, jac *sparse.COO) {
	for i, v := range x {
		jac.Add(i, i, 3*g.c*v*v)
	}
}
