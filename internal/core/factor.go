package core

import (
	"fmt"
	"math"
	"time"

	"opmsim/internal/mat"
	"opmsim/internal/sparse"
)

// defaultCondLimit is the 1-norm condition estimate above which a successful
// sparse factorization is still routed to the dense-LU-with-refinement tier:
// at κ₁ ≈ 1e14 a single LU solve can lose all but ~2 significant digits, while
// refinement against the exact sparse matrix recovers most of them.
const defaultCondLimit = 1e14

// DefaultSupernodalMinN is the pencil dimension at which Options.Supernodal
// mode 0 (auto) engages the supernodal/BBD tier. Below it the scalar sparse
// LU factors faster than the dissection + Schur assembly amortizes; the
// crossover was measured on the netgen power-grid family (see DESIGN.md §15).
const DefaultSupernodalMinN = 4096

// supernodalEngaged resolves the Options.Supernodal mode against the pencil
// dimension.
func supernodalEngaged(n int, opt *Options) bool {
	if opt.Supernodal > 0 {
		return true
	}
	if opt.Supernodal < 0 {
		return false
	}
	minN := opt.SupernodalMinN
	if minN <= 0 {
		minN = DefaultSupernodalMinN
	}
	return n >= minN
}

// pencilFactor is one leading-pencil factorization behind the tiered
// graceful-degradation chain of the hardened solver core:
//
//	sparse LU (RCM + threshold pivoting)
//	  → dense LU with one step of iterative refinement
//	    → Householder QR least-squares.
//
// The sparse tier is abandoned when factorization fails or when its 1-norm
// condition estimate exceeds Options.CondLimit; the dense tier when dense LU
// finds an exactly-zero pivot; QR is the backstop for numerically
// rank-deficient pencils, and its rank check is the final arbiter of
// ErrSingularPencil. Every tier decision is recorded in the SolveReport.
type pencilFactor struct {
	tier    Tier
	bbd     *sparse.BBD
	sp      *sparse.Factorization
	dense   *mat.LU
	qr      *mat.QR
	a       *sparse.CSR
	cond    float64
	report  *SolveReport
	scratch []float64 // dense-tier refinement residual, lazily sized
	// factorNS is the wall-clock cost of building this factorization, stamped
	// by factorPencil and carried through template/instantiate so cache hits
	// still know their pencil family's refactorization cost. It feeds only the
	// SMW update-vs-refactor crossover heuristic (parambatch.go), never any
	// numerical path.
	factorNS int64
}

// factorPencil builds the chain for the pencil a serving column col (−1 for a
// factorization shared by all columns) at simulation time t, and stamps the
// measured build cost for the update-path crossover model.
func factorPencil(a *sparse.CSR, col int, t float64, opt *Options, rep *SolveReport) (*pencilFactor, error) {
	//lint:ignore nondet timing feeds only the SMW-vs-refactor path choice, whose paths agree to 1e-12 and can be pinned via BatchOptions.UpdateRankLimit
	start := time.Now()
	pf, err := factorPencilChain(a, col, t, opt, rep)
	if pf != nil {
		pf.factorNS = time.Since(start).Nanoseconds()
	}
	return pf, err
}

// factorPencilChain runs the tier chain itself.
func factorPencilChain(a *sparse.CSR, col int, t float64, opt *Options, rep *SolveReport) (*pencilFactor, error) {
	limit := opt.CondLimit
	if isExactZero(limit) {
		limit = defaultCondLimit
	}
	injected := func(tier Tier) bool {
		return opt.Fault != nil && opt.Fault.FactorFail != nil && opt.Fault.FactorFail(col, int(tier))
	}
	rep.Factorizations++
	pf := &pencilFactor{a: a, report: rep}

	// Supernodal/BBD fast tier: tried first when engaged, abandoned silently
	// (never recorded as a Fallback — the scalar sparse LU below it upholds
	// the same accuracy contract) when the dissection degenerates, a diagonal
	// block is singular under block-confined pivoting, or the condition
	// estimate trips the limit.
	if supernodalEngaged(a.R, opt) && !injected(TierSupernodal) {
		if f, err := sparse.FactorBBD(a, sparse.BBDOptions{
			PivotTol: opt.PivotTol, Workers: opt.Workers, Refine: opt.Refine,
		}); err == nil {
			if limit < 0 {
				pf.tier, pf.bbd = TierSupernodal, f
				return pf, nil
			}
			cond := f.Cond1Est()
			rep.observeCond(cond)
			if cond <= limit && !math.IsNaN(cond) {
				pf.tier, pf.bbd, pf.cond = TierSupernodal, f, cond
				return pf, nil
			}
		}
	}

	var sparseErr error
	sparseCond := 0.0
	reason := ""
	if injected(TierSparseLU) {
		sparseErr = fmt.Errorf("injected sparse factorization failure")
		reason = sparseErr.Error()
	} else if f, err := sparse.Factor(a, sparse.Options{PivotTol: opt.PivotTol, Refine: opt.Refine}); err != nil {
		sparseErr = err
		reason = err.Error()
	} else {
		if limit < 0 {
			// Condition estimation disabled: sparse LU serves unless it fails.
			pf.tier, pf.sp = TierSparseLU, f
			return pf, nil
		}
		cond := f.Cond1Est()
		rep.observeCond(cond)
		if cond <= limit && !math.IsNaN(cond) {
			pf.tier, pf.sp, pf.cond = TierSparseLU, f, cond
			return pf, nil
		}
		sparseCond = cond
		reason = fmt.Sprintf("cond₁≈%.3g exceeds limit %.3g", cond, limit)
		rep.Warnings = append(rep.Warnings, fmt.Sprintf("pencil for column %d: %s", col, reason))
	}

	if !injected(TierDenseLU) {
		if d, err := mat.LUFactor(a.ToDense()); err == nil {
			pf.tier, pf.dense, pf.cond = TierDenseLU, d, sparseCond
			rep.Fallbacks = append(rep.Fallbacks, Fallback{Column: col, Tier: TierDenseLU, Cond: sparseCond, Reason: reason})
			return pf, nil
		}
	}

	if !injected(TierQR) {
		if q, err := mat.QRFactor(a.ToDense()); err == nil && q.FullRank() {
			pf.tier, pf.qr, pf.cond = TierQR, q, sparseCond
			rep.Fallbacks = append(rep.Fallbacks, Fallback{Column: col, Tier: TierQR, Cond: sparseCond, Reason: reason})
			return pf, nil
		}
	}

	// Every tier refused the pencil. A sparse factorization that succeeded
	// but tripped the condition limit means the pencil is (numerically)
	// regular yet untrustworthy; a hard factorization failure all the way
	// down means it is singular.
	kind := ErrSingularPencil
	if sparseErr == nil && sparseCond > 0 {
		kind = ErrIllConditioned
	}
	d := diag(kind, col, t)
	d.Cond = sparseCond
	d.Cause = sparseErr
	return nil, d
}

// panelScratch owns the per-group working panels of solvePanelInto: the
// sparse tier's substitution/permutation/refinement panels and the dense
// tier's refinement residual. One scratch per concurrently-solving group.
type panelScratch struct {
	bbd   *sparse.BBDPanelScratch // supernodal/BBD tier
	sp    *sparse.PanelScratch    // sparse tier
	resid *mat.Dense              // dense tier refinement residual
}

// newPanelScratch sizes scratch for panels of k right-hand sides against
// this factorization's tier.
func (pf *pencilFactor) newPanelScratch(k int) *panelScratch {
	s := &panelScratch{}
	switch pf.tier {
	case TierSupernodal:
		s.bbd = pf.bbd.NewPanelScratch(k)
	case TierSparseLU:
		s.sp = pf.sp.NewPanelScratch(k)
	case TierDenseLU:
		s.resid = mat.NewDense(pf.a.R, k)
	}
	return s
}

// solvePanelInto solves the pencil for an n×K panel of right-hand sides
// (x, b same shape, non-aliasing; s from newPanelScratch(K)). Each column of
// x is bitwise-identical to a solveInto call on the matching column of b —
// the sparse and dense tiers run the same refinement sequence through the
// multi-RHS kernels, the QR backstop falls back to per-column least-squares
// solves. Unlike solveInto it does NOT touch the report: batch orchestrators
// run groups concurrently and account K solves per column themselves.
func (pf *pencilFactor) solvePanelInto(x, b *mat.Dense, s *panelScratch) error {
	switch pf.tier {
	case TierSupernodal:
		return pf.bbd.SolvePanelInto(x, b, s.bbd)
	case TierSparseLU:
		return pf.sp.SolvePanelInto(x, b, s.sp)
	case TierDenseLU:
		copy(x.Data(), b.Data())
		pf.dense.SolveMatrixInto(x, x)
		// Per-column refinement against the exact sparse matrix, mirroring
		// solveInto: r = b − A·x, x += A⁻¹·r.
		r := s.resid
		pf.a.MulPanelInto(r, x)
		rd, bd := r.Data(), b.Data()
		for i, v := range rd {
			rd[i] = bd[i] - v
		}
		pf.dense.SolveMatrixInto(r, r)
		xd := x.Data()
		for i, v := range rd {
			xd[i] += v
		}
		return nil
	case TierQR:
		n, w := b.Rows(), b.Cols()
		rhs := make([]float64, n)
		for t := 0; t < w; t++ {
			for i := 0; i < n; i++ {
				rhs[i] = b.Row(i)[t]
			}
			sol, err := pf.qr.SolveLeastSquares(rhs)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				x.Row(i)[t] = sol[i]
			}
		}
		return nil
	}
	return fmt.Errorf("core: unknown factorization tier %d", int(pf.tier))
}

// solve serves one column right-hand side through whichever tier the chain
// settled on, counting it in the report. rhs is not modified.
func (pf *pencilFactor) solve(rhs []float64) ([]float64, error) {
	x := make([]float64, len(rhs))
	if err := pf.solveInto(x, rhs); err != nil {
		return nil, err
	}
	return x, nil
}

// solveInto is solve writing into a caller-owned dst (len(rhs), not aliasing
// rhs). It performs the identical floating-point operations in the identical
// order — same tier, same refinement sequence — so the column loops can
// reuse destination buffers without perturbing any bitwise-determinism
// guarantee; the only difference is that the scratch lives on the
// factorization instead of the heap, which makes solveInto (like the sparse
// SolveInto beneath it) unsafe for concurrent calls.
func (pf *pencilFactor) solveInto(dst, rhs []float64) error {
	pf.report.TierSolves[pf.tier]++
	switch pf.tier {
	case TierSupernodal:
		return pf.bbd.SolveInto(dst, rhs)
	case TierSparseLU:
		return pf.sp.SolveInto(dst, rhs)
	case TierDenseLU:
		copy(dst, rhs)
		pf.dense.Solve(dst)
		// One step of iterative refinement against the exact sparse matrix:
		// r = b − A·x, x += A⁻¹·r. This is what lets the dense tier keep the
		// golden 1e-12 waveform guarantees on ill-scaled circuit pencils.
		if pf.scratch == nil {
			pf.scratch = make([]float64, len(rhs))
		}
		r := pf.a.MulVec(dst, pf.scratch)
		for i := range r {
			r[i] = rhs[i] - r[i]
		}
		pf.dense.Solve(r)
		for i := range dst {
			dst[i] += r[i]
		}
		return nil
	case TierQR:
		x, err := pf.qr.SolveLeastSquares(rhs)
		if err != nil {
			return err
		}
		copy(dst, x)
		return nil
	}
	return fmt.Errorf("core: unknown factorization tier %d", int(pf.tier))
}
