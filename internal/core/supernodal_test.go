package core_test

// Wiring tests for the supernodal/BBD fast tier: forced engagement must be
// visible in the SolveReport and agree with the scalar sparse tier, injected
// supernodal failures must fall through silently to sparse LU, and the
// factor cache must key on the supernodal options.

import (
	"math"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/faultinject"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

// gridSystem builds a dissectable NA power-grid system of roughly n nodes.
func gridSystem(t *testing.T, n int) (*core.System, []waveform.Signal) {
	t.Helper()
	grid, err := netgen.PowerGrid3D(netgen.PowerGridN(n))
	if err != nil {
		t.Fatal(err)
	}
	na, err := grid.Netlist.NA()
	if err != nil {
		t.Fatal(err)
	}
	return na.Sys, na.Inputs
}

func solveGrid(t *testing.T, sys *core.System, u []waveform.Signal, m int, opt core.Options) [][]float64 {
	t.Helper()
	sol, err := core.Solve(sys, u, m, 10e-9, opt)
	if err != nil {
		t.Fatal(err)
	}
	x := sol.Coefficients()
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = append([]float64(nil), x.Row(i)...)
	}
	return rows
}

func TestSupernodalTierServesForcedSolve(t *testing.T) {
	sys, u := gridSystem(t, 900)
	const m = 24
	rep := &core.SolveReport{}
	rows := solveGrid(t, sys, u, m, core.Options{Supernodal: 1, Report: rep})
	if rep.TierSolves[core.TierSupernodal] != m {
		t.Fatalf("supernodal tier served %d of %d column solves; report: %+v",
			rep.TierSolves[core.TierSupernodal], m, rep.TierSolves)
	}
	if rep.Degraded() {
		t.Fatal("supernodal tier must never count as degradation")
	}
	// Same run with the tier disabled: the scalar sparse LU result is the
	// reference the fast tier must agree with.
	want := solveGrid(t, sys, u, m, core.Options{Supernodal: -1})
	scale := 0.0
	for i := range want {
		for j := range want[i] {
			if a := math.Abs(want[i][j]); a > scale {
				scale = a
			}
		}
	}
	for i := range rows {
		for j := range rows[i] {
			if math.Abs(rows[i][j]-want[i][j]) > 1e-9*(1+scale) {
				t.Fatalf("X[%d][%d] = %.17g, sparse-LU reference %.17g", i, j, rows[i][j], want[i][j])
			}
		}
	}
}

// TestSupernodalDeterministicAcrossWorkers extends the solver's determinism
// contract to the new tier: bitwise-identical coefficient matrices for every
// worker count.
func TestSupernodalDeterministicAcrossWorkers(t *testing.T) {
	sys, u := gridSystem(t, 900)
	const m = 24
	ref := solveGrid(t, sys, u, m, core.Options{Supernodal: 1, Workers: 1})
	for _, workers := range []int{4, 8} {
		got := solveGrid(t, sys, u, m, core.Options{Supernodal: 1, Workers: workers})
		for i := range ref {
			for j := range ref[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(ref[i][j]) {
					t.Fatalf("workers=%d: X[%d][%d] = %.17g, workers=1 got %.17g",
						workers, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// An injected supernodal failure must fall through to sparse LU without a
// Fallback record — the scalar tier upholds the same accuracy contract.
func TestSupernodalFaultFallsThroughToSparse(t *testing.T) {
	sys, u := gridSystem(t, 900)
	const m = 24
	rep := &core.SolveReport{}
	rows := solveGrid(t, sys, u, m, core.Options{
		Supernodal: 1,
		Report:     rep,
		Fault:      faultinject.FailFactorAt(-1, faultinject.TierSupernodal),
	})
	if rep.TierSolves[core.TierSupernodal] != 0 {
		t.Fatalf("failed supernodal tier still served %d solves", rep.TierSolves[core.TierSupernodal])
	}
	if rep.TierSolves[core.TierSparseLU] != m {
		t.Fatalf("sparse tier served %d of %d solves", rep.TierSolves[core.TierSparseLU], m)
	}
	if len(rep.Fallbacks) != 0 {
		t.Fatalf("supernodal fallthrough recorded as degradation: %+v", rep.Fallbacks)
	}
	want := solveGrid(t, sys, u, m, core.Options{Supernodal: -1})
	for i := range rows {
		for j := range rows[i] {
			if math.Float64bits(rows[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("fallthrough result differs from the scalar path at X[%d][%d]", i, j)
			}
		}
	}
}

// Below the auto threshold the tier must stay out of the way: the quickstart
// fixture (n = 6) runs the scalar path and its golden waveform is untouched.
func TestSupernodalAutoStaysOffSmallSystems(t *testing.T) {
	fx := goldenFixtures()[0]
	rep := &core.SolveReport{}
	rows := solveCoeffRows(t, fx, core.Options{Report: rep})
	if rep.TierSolves[core.TierSupernodal] != 0 {
		t.Fatalf("supernodal tier engaged on an n=6 system: %+v", rep.TierSolves)
	}
	want := loadGolden(t, fx.name)
	compareToGolden(t, rows, want, 1e-12)
}

// SolveBatch must inherit the tier through the shared factorization cache.
func TestSupernodalServesBatch(t *testing.T) {
	sys, u := gridSystem(t, 900)
	const m = 16
	rep := &core.SolveReport{}
	scenarios := []core.Scenario{{U: u}, {U: u}}
	sols, err := core.SolveBatch(sys, scenarios, m, 10e-9, core.BatchOptions{
		Options: core.Options{Supernodal: 1, Report: rep},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("got %d solutions", len(sols))
	}
	if rep.TierSolves[core.TierSupernodal] != 2*m {
		t.Fatalf("supernodal tier served %d of %d batched solves; report: %+v",
			rep.TierSolves[core.TierSupernodal], 2*m, rep.TierSolves)
	}
	// Both scenarios share inputs, so the solutions must agree bitwise.
	a, b := sols[0].Coefficients(), sols[1].Coefficients()
	for i := 0; i < a.Rows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
				t.Fatalf("identical scenarios diverged at X[%d][%d]", i, j)
			}
		}
	}
}

// The factor cache must key on the supernodal options: flipping the mode may
// not serve a cached factorization built under the other mode.
func TestSupernodalFactorCacheKeying(t *testing.T) {
	sys, u := gridSystem(t, 900)
	const m = 16
	cache := core.NewFactorCache(0)
	repOn := &core.SolveReport{}
	if _, err := core.Solve(sys, u, m, 10e-9, core.Options{Supernodal: 1, Report: repOn, FactorCache: cache}); err != nil {
		t.Fatal(err)
	}
	if repOn.TierSolves[core.TierSupernodal] != m {
		t.Fatalf("supernodal run: %+v", repOn.TierSolves)
	}
	repOff := &core.SolveReport{}
	if _, err := core.Solve(sys, u, m, 10e-9, core.Options{Supernodal: -1, Report: repOff, FactorCache: cache}); err != nil {
		t.Fatal(err)
	}
	if repOff.TierSolves[core.TierSupernodal] != 0 || repOff.TierSolves[core.TierSparseLU] != m {
		t.Fatalf("disabled run hit the supernodal cache entry: %+v", repOff.TierSolves)
	}
	// Re-running the enabled configuration must now hit the cache.
	repHit := &core.SolveReport{}
	if _, err := core.Solve(sys, u, m, 10e-9, core.Options{Supernodal: 1, Report: repHit, FactorCache: cache}); err != nil {
		t.Fatal(err)
	}
	if repHit.TierSolves[core.TierSupernodal] != m {
		t.Fatalf("cached supernodal run: %+v", repHit.TierSolves)
	}
	if hits, _, _ := cache.Stats(); hits == 0 {
		t.Fatal("second supernodal run did not hit the factor cache")
	}
}
