package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"opmsim/internal/waveform"
)

// cpTestCase is one (system, grid, engine) configuration for the resume
// conformance matrix, covering all three history paths the batch solver can
// take: the general path with the exact tier, the general path with the FFT
// tier (m large enough that segments fire before and after typical resume
// points), and the integer-order panel-native fast path.
type cpTestCase struct {
	name    string
	sys     func(t *testing.T) *System
	m       int
	T       float64
	K       int
	opt     func() BatchOptions
	resumes []int // checkpoint sizes (committed columns) to resume from
}

func fractionalTestSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func oscillatorTestSystem(t *testing.T) *System {
	t.Helper()
	sys := &System{
		Terms: []Term{
			{Order: 2, Coeff: scalarCSR(1)},
			{Order: 0, Coeff: scalarCSR(9)},
		},
		B: scalarCSR(1),
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func cpCases() []cpTestCase {
	return []cpTestCase{
		{
			name: "exact", sys: fractionalTestSystem, m: 96, T: 2, K: 3,
			opt:     func() BatchOptions { return BatchOptions{Options: Options{HistoryMode: HistoryExact}} },
			resumes: []int{1, 37, 64, 95},
		},
		{
			name: "fft", sys: fractionalTestSystem, m: 192, T: 2, K: 2,
			opt:     func() BatchOptions { return BatchOptions{Options: Options{HistoryMode: HistoryFFT}} },
			resumes: []int{37, 64, 128, 130, 191},
		},
		{
			name: "fast-panel", sys: oscillatorTestSystem, m: 80, T: 2, K: 5,
			opt:     func() BatchOptions { return BatchOptions{PanelWidth: 2} },
			resumes: []int{1, 40, 79},
		},
	}
}

func cpScenarios(k int) []Scenario {
	scs := make([]Scenario, k)
	for s := range scs {
		scs[s] = Scenario{U: []waveform.Signal{waveform.Step(1+0.25*float64(s), 0)}}
	}
	return scs
}

// checkpointThrough runs the batch until j0 columns have committed, captures
// the abort checkpoint, and returns it. The interruption is a context cancel
// issued from the OnColumn hook — the same mechanism a disconnected client
// or a drain uses.
func checkpointThrough(t *testing.T, tc cpTestCase, sys *System, scs []Scenario, j0 int) *Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cp := &Checkpoint{}
	opt := tc.opt()
	opt.CheckpointEvery = 16
	opt.OnCheckpoint = func(d *CheckpointDelta) {
		if err := cp.ApplyCheckpoint(d); err != nil {
			t.Errorf("apply delta [%d,%d): %v", d.From, d.To, err)
		}
	}
	opt.OnColumn = func(col int, _ float64, _ [][]float64) {
		if col == j0-1 {
			cancel()
		}
	}
	_, err := SolveBatchCtx(ctx, sys, scs, tc.m, tc.T, opt)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("interrupted solve: err = %v, want ErrCancelled", err)
	}
	if cp.Columns != j0 {
		t.Fatalf("checkpoint has %d columns after cancel at %d", cp.Columns, j0)
	}
	return cp
}

// TestCheckpointResumeBitwise is the core conformance matrix: for every
// engine path and a set of resume points (mid-chunk, at chunk and FFT
// segment boundaries, first and last column), a solve interrupted at a
// column boundary and resumed from its checkpoint must reproduce the
// uninterrupted solution bit for bit — including under different Workers and
// PanelWidth than the original run.
func TestCheckpointResumeBitwise(t *testing.T) {
	for _, tc := range cpCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys := tc.sys(t)
			scs := cpScenarios(tc.K)
			ref, err := SolveBatch(sys, scs, tc.m, tc.T, tc.opt())
			if err != nil {
				t.Fatal(err)
			}
			for _, j0 := range tc.resumes {
				cp := checkpointThrough(t, tc, sys, scs, j0)
				ropt := tc.opt()
				// Different parallelism and panel partition than the
				// original run: neither may change bits.
				ropt.Options.Workers = 3
				ropt.PanelWidth = 3
				ropt.ResumeFrom = cp
				first := -1
				ropt.OnColumn = func(col int, _ float64, _ [][]float64) {
					if first < 0 {
						first = col
					}
				}
				sols, err := SolveBatch(sys, scs, tc.m, tc.T, ropt)
				if err != nil {
					t.Fatalf("resume from %d: %v", j0, err)
				}
				if first != j0 && !(j0 == tc.m && first == -1) {
					t.Fatalf("resume from %d: OnColumn started at %d", j0, first)
				}
				n := sys.N()
				for s := range sols {
					got, want := sols[s].Coefficients(), ref[s].Coefficients()
					for i := 0; i < n; i++ {
						for j := 0; j < tc.m; j++ {
							if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
								t.Fatalf("resume from %d: scenario %d state %d column %d: %x != %x",
									j0, s, i, j, math.Float64bits(got.At(i, j)), math.Float64bits(want.At(i, j)))
							}
						}
					}
				}
			}
		})
	}
}

// TestCheckpointStateColumn verifies that StateColumn reproduces the exact
// bits the solver's OnColumn hook emitted for the committed prefix — the
// basis for the service's stream replay on resume.
func TestCheckpointStateColumn(t *testing.T) {
	tc := cpCases()[0]
	sys := tc.sys(t)
	scs := cpScenarios(tc.K)
	n := sys.N()

	streamed := make([][][]float64, tc.K) // [scenario][column][state]
	opt := tc.opt()
	opt.OnColumn = func(col int, _ float64, cols [][]float64) {
		for s := range cols {
			streamed[s] = append(streamed[s], append([]float64(nil), cols[s]...))
		}
	}
	if _, err := SolveBatch(sys, scs, tc.m, tc.T, opt); err != nil {
		t.Fatal(err)
	}

	cp := checkpointThrough(t, tc, sys, scs, 64)
	dst := make([]float64, n)
	for s := 0; s < tc.K; s++ {
		for j := 0; j < cp.Columns; j++ {
			if err := cp.StateColumn(dst, s, j, scs[s].X0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if math.Float64bits(dst[i]) != math.Float64bits(streamed[s][j][i]) {
					t.Fatalf("scenario %d column %d state %d: replay %x != streamed %x",
						s, j, i, math.Float64bits(dst[i]), math.Float64bits(streamed[s][j][i]))
				}
			}
		}
	}
	if err := cp.StateColumn(dst, 0, cp.Columns, nil); err == nil {
		t.Fatal("StateColumn accepted an uncommitted column")
	}
}

// TestCheckpointValidation exercises the mismatch taxonomy: every header
// field that pins a checkpoint to its solve must be enforced, and deltas
// must land exactly on the committed boundary.
func TestCheckpointValidation(t *testing.T) {
	tc := cpCases()[0]
	sys := tc.sys(t)
	scs := cpScenarios(tc.K)
	cp := checkpointThrough(t, tc, sys, scs, 32)

	run := func(mut func(o *BatchOptions, cp2 *Checkpoint), m int, k int) error {
		o := tc.opt()
		cp2 := &Checkpoint{}
		*cp2 = *cp
		o.ResumeFrom = cp2
		if mut != nil {
			mut(&o, cp2)
		}
		_, err := SolveBatch(sys, cpScenarios(k), m, tc.T, o)
		return err
	}
	if err := run(nil, tc.m, tc.K); err != nil {
		t.Fatalf("control resume failed: %v", err)
	}
	cases := map[string]error{
		"wrong-m":      run(nil, tc.m+1, tc.K),
		"wrong-k":      run(nil, tc.m, tc.K+1),
		"wrong-engine": run(func(o *BatchOptions, _ *Checkpoint) { o.HistoryMode = HistoryFFT }, tc.m, tc.K),
		"wrong-T":      run(func(_ *BatchOptions, c *Checkpoint) { c.T = tc.T * (1 + 1e-16) }, tc.m, tc.K),
		"bad-columns":  run(func(_ *BatchOptions, c *Checkpoint) { c.Columns = tc.m + 5 }, tc.m, tc.K),
	}
	// wrong-T: nudging by one ulp-scale factor may round back to the same
	// float; force a genuinely different T.
	cpT := &Checkpoint{}
	*cpT = *cp
	cpT.T = tc.T + 1
	o := tc.opt()
	o.ResumeFrom = cpT
	_, errT := SolveBatch(sys, scs, tc.m, tc.T, o)
	cases["wrong-T"] = errT
	for name, err := range cases {
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s: err = %v, want ErrCheckpointMismatch", name, err)
		}
	}

	// Delta continuity: a gap or a malformed shape must be rejected.
	d := &CheckpointDelta{N: cp.N, M: cp.M, K: cp.K, T: cp.T, Engine: cp.Engine, From: cp.Columns + 1, To: cp.Columns + 2}
	d.Slabs = make([][]float64, cp.K)
	for s := range d.Slabs {
		d.Slabs[s] = make([]float64, cp.N)
	}
	if err := cp.ApplyCheckpoint(d); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("gap delta: err = %v, want ErrCheckpointMismatch", err)
	}
	d.From, d.To = cp.Columns, cp.Columns+2 // slab length no longer matches
	if err := cp.ApplyCheckpoint(d); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("short slab delta: err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestPencilFingerprint pins the breaker key's semantics: deterministic
// across calls and across independently-built equal systems, sensitive to
// the grid step and to the pencil values.
func TestPencilFingerprint(t *testing.T) {
	sysA := fractionalTestSystem(t)
	sysB := fractionalTestSystem(t)
	fpA, err := PencilFingerprint(sysA, 96, 2)
	if err != nil {
		t.Fatal(err)
	}
	fpA2, err := PencilFingerprint(sysA, 96, 2)
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := PencilFingerprint(sysB, 96, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpA2 || fpA != fpB {
		t.Fatalf("fingerprint not deterministic: %x %x %x", fpA, fpA2, fpB)
	}
	fpM, err := PencilFingerprint(sysA, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	fpT, err := PencilFingerprint(sysA, 96, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fpM == fpA || fpT == fpA {
		t.Fatalf("fingerprint insensitive to grid: m %x T %x base %x", fpM, fpT, fpA)
	}
	fpOsc, err := PencilFingerprint(oscillatorTestSystem(t), 96, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fpOsc == fpA {
		t.Fatal("different pencils share a fingerprint")
	}
}

// TestCheckpointDeltaBoundaries verifies interval emission: with
// CheckpointEvery = e, deltas land exactly on absolute multiples of e plus
// one final tail delta on abort, contiguous and in order.
func TestCheckpointDeltaBoundaries(t *testing.T) {
	tc := cpCases()[0]
	sys := tc.sys(t)
	scs := cpScenarios(tc.K)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bounds [][2]int
	opt := tc.opt()
	opt.CheckpointEvery = 16
	opt.OnCheckpoint = func(d *CheckpointDelta) { bounds = append(bounds, [2]int{d.From, d.To}) }
	opt.OnColumn = func(col int, _ float64, _ [][]float64) {
		if col == 40 {
			cancel()
		}
	}
	_, err := SolveBatchCtx(ctx, sys, scs, tc.m, tc.T, opt)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	want := [][2]int{{0, 16}, {16, 32}, {32, 41}}
	if len(bounds) != len(want) {
		t.Fatalf("deltas %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("deltas %v, want %v", bounds, want)
		}
	}
}
