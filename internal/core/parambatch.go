package core

import (
	"context"
	"fmt"
	"time"

	"opmsim/internal/basis"
	"opmsim/internal/fft"
	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

// The parameter-varying batch engine: scenarios that perturb the shared
// pencil itself (Monte-Carlo component tolerances, corner sets) instead of
// only its right-hand sides. Each delta scenario is served one of two ways:
//
//   - SMW update path: the scenario's base solve rides the shared panel
//     factorization exactly like an amplitude scenario, followed by the
//     Woodbury correction of smw.go; the right-hand-side history terms get
//     rank-1 corrections (rhs −= δ·(vᵀw)·u per update) instead of
//     materializing the perturbed E_k, so the per-column cost stays
//     O(nnz + r·n) regardless of how many scenarios perturb the pencil.
//
//   - refactor fallback: past the crossover rank the scenario materializes
//     ApplyDelta(sys, delta), factors its own leading pencil, and solves its
//     columns 1-wide through the panel kernel — bit-for-bit the sequential
//     Solve(ApplyDelta(sys, delta), …) path.
//
// The crossover between them is decided once per run (resolveUpdateRankLimit)
// from the measured factorization cost of the pencil family and a probe
// solve. Grouping, the column barrier, OnColumn, fault injection, and the
// determinism story all mirror batch.go; checkpoint/resume is the one feature
// the parameter-varying engine does not support (per-scenario factorization
// state is not captured by a column-slab checkpoint), so ResumeFrom errors
// and CheckpointEvery/OnCheckpoint are ignored.
//
// Determinism contract: the scenario→path assignment is deterministic given
// UpdateRankLimit ≠ 0 (the measured auto mode can flip near break-even
// between runs — pin the limit when that matters). Refactor and nominal
// scenarios are bitwise-identical to sequential Solve; SMW scenarios agree
// with the refactored result to the ≤1e-12 relative level of the waveform
// contract (see the property tests) and are themselves bitwise-reproducible
// for a fixed path assignment.

// paramScen is one scenario's parameter-varying solve state.
type paramScen struct {
	s    int
	st   *scenState
	sys  *System   // matrices the rhs assembly reads: base, or ApplyDelta materialization
	ups  []RankOne // SMW path: term-level updates for rhs/shift corrections (nil on refactor path)
	smw  *smwFactor
	slot int // ≥0: column in the group's shared base panel; −1: refactor member
	// Refactor path: private factorization of the perturbed leading pencil
	// and 1-wide solve panels (solvePanelInto is column-wise bitwise-identical
	// to solveInto, and unlike solveInto it never touches a report — so group
	// tasks can run it concurrently).
	pf     *pencilFactor
	x1, b1 *mat.Dense
	s1     *panelScratch
}

// applyTermDelta folds the rank-1 rhs corrections of term k against the
// history vector w: rhs −= δ·(vᵀw)·u for every update targeting k, the exact
// contribution the materialized E_k + δuvᵀ would have added via MulVecAdd.
func (ps *paramScen) applyTermDelta(k int, w, rhs []float64) {
	for _, u := range ps.ups {
		if u.Term != k {
			continue
		}
		u.U.ScatterAdd(-(u.Scale * u.V.Dot(w)), rhs)
	}
}

// paramGroup is one scenario group: the shared-base panel for its SMW/nominal
// members plus the group's refactor members, advanced together per column.
type paramGroup struct {
	members []*paramScen
	w       int // number of panel (SMW/nominal) members
	b, x    *mat.Dense
	pf      *pencilFactor
	scratch *panelScratch
}

// resolveUpdateRankLimit turns BatchOptions.UpdateRankLimit into the rank
// bound actually used: the caller's explicit limit, or the measured
// break-even of the cost model
//
//	SMW(r):      r panel columns for W + m columns × r correction lanes
//	             ≈ (r + 2·m·r·n/nnzF)·solveNS
//	refactor:    factorNS (its per-column solves cost the same as the base's)
//
// where solveNS is one probed base solve, factorNS the build cost stamped on
// the shared factorization, and nnzF the factor nonzeros (the solve cost
// scale). Returns −1 when the update path should not be used at all.
func resolveUpdateRankLimit(shared *pencilFactor, n, m int, opt *BatchOptions) int {
	if opt.UpdateRankLimit > 0 {
		return opt.UpdateRankLimit
	}
	if opt.UpdateRankLimit < 0 {
		return -1
	}
	factorNS := shared.factorNS
	if factorNS < 1 {
		return -1
	}
	probe := shared.instantiate(&SolveReport{})
	zero := make([]float64, n)
	dst := make([]float64, n)
	//lint:ignore nondet timing feeds only the SMW-vs-refactor path choice, whose paths agree to 1e-12 and can be pinned via BatchOptions.UpdateRankLimit
	t0 := time.Now()
	if err := probe.solveInto(dst, zero); err != nil {
		return -1
	}
	solveNS := time.Since(t0).Nanoseconds()
	if solveNS < 1 {
		solveNS = 1
	}
	nnzF := n * n
	if shared.sp != nil {
		nnzF = shared.sp.NNZFactors()
	}
	if nnzF < 1 {
		nnzF = 1
	}
	perRank := float64(solveNS) * (1 + 2*float64(m)*float64(n)/float64(nnzF))
	lim := int(float64(factorNS) / perRank)
	if lim > n/2 {
		lim = n / 2
	}
	if lim < 1 {
		return -1
	}
	return lim
}

// solveParamBatch is the SolveBatchCtx tail for batches where at least one
// scenario carries a pencil delta. shared is the already-built factorization
// of the unperturbed leading pencil; coeffs the per-term BPF coefficient
// sequences.
func solveParamBatch(ctx context.Context, sys *System, scenarios []Scenario, m int, T float64, opt *BatchOptions, rep *SolveReport, bpf *basis.BPF, coeffs [][]float64, shared *pencilFactor) ([]*Solution, error) {
	if opt.ResumeFrom != nil {
		return nil, fmt.Errorf("core: checkpoint resume is not supported for parameter-varying batches (scenario pencil deltas present)")
	}
	K := len(scenarios)
	n := sys.N()
	h := bpf.Step()
	for s := range scenarios {
		if err := scenarios[s].Delta.validate(sys); err != nil {
			return nil, fmt.Errorf("core: batch scenario %d: %w", s, err)
		}
	}

	limit := resolveUpdateRankLimit(shared, n, m, opt)
	rep.UpdateCrossoverRank = limit

	// Path assignment: project each delta onto the leading pencil and compare
	// its rank against the crossover limit. Deterministic given the limit.
	pups := make([][]pencilUpdate, K)
	refac := make([]bool, K)
	for s := range scenarios {
		d := scenarios[s].Delta
		if d.Rank() == 0 {
			continue
		}
		pups[s] = pencilUpdates(d, coeffs)
		if r := len(pups[s]); r > 0 && (limit < 0 || r > limit) {
			refac[s] = true
		}
	}

	// Slab sizing: envelope runs (DiscardSolutions) on systems whose terms
	// are all integer-order never read past columns, so the per-scenario slab
	// shrinks to a (maxLag+1)-column ring — intHistory keeps at most maxLag
	// column references, so a slot is dead by the time it is rewritten.
	maxLag, engineFree := 0, true
	for _, t := range sys.Terms {
		switch {
		case isExactZero(t.Order):
		case isExactEq(t.Order, float64(int(t.Order))):
			if p := int(t.Order); p > maxLag {
				maxLag = p
			}
		default:
			engineFree = false
		}
	}
	ringLen := 0
	slabCols := m
	if opt.DiscardSolutions && engineFree && maxLag+1 < m {
		ringLen = maxLag + 1
		slabCols = ringLen
	}

	// Shared input expansion: Monte-Carlo scenarios typically reuse one
	// signal set across thousands of pencil perturbations, so the BPF input
	// coefficients are expanded once per distinct signal slice (identified by
	// backing-array identity — scenarios built from the same []Signal share).
	// Expansion is deterministic, so sharing changes no bits.
	type ucSlot struct {
		u   []waveform.Signal
		uc  *mat.Dense
		err error
	}
	slots := map[*waveform.Signal]*ucSlot{}
	slotOfScen := make([]*ucSlot, K)
	var slotOrder []*ucSlot
	for s := range scenarios {
		var key *waveform.Signal
		if len(scenarios[s].U) > 0 {
			key = &scenarios[s].U[0]
		}
		sl, ok := slots[key]
		if !ok {
			sl = &ucSlot{u: scenarios[s].U}
			slots[key] = sl
			slotOrder = append(slotOrder, sl)
		}
		slotOfScen[s] = sl
	}
	expand := make([]func(), len(slotOrder))
	for i, sl := range slotOrder {
		sl := sl
		expand[i] = func() {
			uc, err := expandInputs(sys, sl.u, bpf)
			if err == nil && !isExactZero(sys.BOrder) {
				uc = applyInputOrder(uc, bpf.DiffCoeffs(sys.BOrder))
			}
			sl.uc, sl.err = uc, err
		}
	}
	if err := historyPoolDo(expand); err != nil {
		return nil, &Diagnostic{Kind: ErrInternal, Column: -1, Time: 0, Cause: err}
	}

	kernels := newKernelCache()
	if on, ferr := opt.historyFFTEnabled(m); ferr == nil && on {
		var sizes []int
		for L := historyFFTBase; L <= m; L *= 2 {
			sizes = append(sizes, 2*L)
		}
		fft.Prewarm(sizes...)
	}

	// Per-scenario preparation fans out over the worker pool. Tasks touch only
	// their own slot: state build, ApplyDelta materialization + factorization
	// (refactor path, into a task-local report merged sequentially below), or
	// SMW setup against a pre-instantiated base view. A singular capacitance
	// matrix demotes the scenario to the refactor path in-task.
	scen := make([]*paramScen, K)
	scenErr := make([]error, K)
	localRep := make([]*SolveReport, K)
	views := make([]*pencilFactor, K)
	for s := range scenarios {
		localRep[s] = &SolveReport{}
		if !refac[s] && len(pups[s]) > 0 {
			views[s] = shared.instantiate(&SolveReport{})
		}
	}
	scale := func(k int) float64 { return coeffs[k][0] }
	prep := make([]func(), K)
	for s := range scenarios {
		s := s
		prep[s] = func() {
			ps := &paramScen{s: s, sys: sys, slot: -1}
			scen[s] = ps
			buildRefac := func(d *PencilDelta) error {
				psys, err := ApplyDelta(sys, d)
				if err != nil {
					return err
				}
				msys, err := assembleLeading(psys, scale)
				if err != nil {
					return err
				}
				pf, err := factorPencil(msys, -1, 0, &opt.Options, localRep[s])
				if err != nil {
					return err
				}
				ps.sys, ps.pf = psys, pf
				ps.ups, ps.smw = nil, nil
				ps.x1 = mat.NewDense(n, 1)
				ps.b1 = mat.NewDense(n, 1)
				ps.s1 = pf.newPanelScratch(1)
				return nil
			}
			d := scenarios[s].Delta
			switch {
			case refac[s]:
				if err := buildRefac(d); err != nil {
					scenErr[s] = err
					return
				}
			case len(pups[s]) > 0:
				sf, err := newSMWFactor(views[s], pups[s], n)
				if err != nil {
					// Capacitance singular: the perturbed pencil needs its own
					// factorization (whose tier chain classifies it properly).
					localRep[s].Warnings = append(localRep[s].Warnings,
						fmt.Sprintf("scenario %d: %v; refactored", s, err))
					refac[s] = true
					if err := buildRefac(d); err != nil {
						scenErr[s] = err
						return
					}
				} else {
					ps.smw, ps.ups = sf, d.Updates
				}
			case d.Rank() > 0:
				// Delta touches only terms with zero leading coefficient: the
				// pencil is unchanged, but the rhs corrections still apply.
				ps.ups = d.Updates
			}
			st, err := prepareScenario(ctx, ps.sys, &scenarios[s], bpf, m, coeffs, opt, kernels, slotOfScen[s].uc, slabCols)
			if err != nil {
				scenErr[s] = err
				return
			}
			if ps.pf == nil && len(ps.ups) > 0 && scenarios[s].X0 != nil {
				// SMW path with a nonzero initial state: order-0 updates enter
				// the constant shift g = −Σ_{α=0} E_k·x₀ as −δ·(vᵀx₀)·u.
				for _, u := range ps.ups {
					if isExactZero(sys.Terms[u.Term].Order) {
						u.U.ScatterAdd(-(u.Scale * u.V.Dot(st.x0)), st.shift)
					}
				}
			}
			ps.st = st
		}
	}
	if err := historyPoolDo(prep); err != nil {
		return nil, &Diagnostic{Kind: ErrInternal, Column: -1, Time: 0, Cause: err}
	}
	for s := 0; s < K; s++ {
		if serr := slotOfScen[s].err; serr != nil {
			return nil, fmt.Errorf("core: batch scenario %d: %w", s, serr)
		}
		if scenErr[s] != nil {
			return nil, fmt.Errorf("core: batch scenario %d: %w", s, scenErr[s])
		}
	}

	// Sequential merge of per-scenario prep accounting, in scenario order.
	for s := 0; s < K; s++ {
		lr := localRep[s]
		rep.Factorizations += lr.Factorizations
		rep.Fallbacks = append(rep.Fallbacks, lr.Fallbacks...)
		rep.Warnings = append(rep.Warnings, lr.Warnings...)
		rep.observeCond(lr.MaxCond)
		switch {
		case refac[s]:
			rep.PencilRefactors++
		case scen[s].smw != nil:
			rep.PencilUpdates++
			if opt.FactorCache != nil {
				rep.FactorCacheUpdateHits++
				opt.FactorCache.noteUpdateHit()
			}
		}
	}
	if st := scen[0].st; len(st.eng.terms) > 0 {
		rep.HistoryEngine = st.eng.modeName()
	}

	// Scenario groups: the same contiguous (K, width) partition as batch.go.
	// Panel members (SMW + nominal) share the group's base panel solve; each
	// refactor member solves 1-wide through its private factorization inside
	// the same group task.
	width := opt.PanelWidth
	if width <= 0 {
		width = batchPanelWidth
	}
	if width > K {
		width = K
	}
	nGroups := (K + width - 1) / width
	groups := make([]*paramGroup, nGroups)
	tierCount := [numTiers]int{}
	for g := range groups {
		lo := g * width
		hi := lo + width
		if hi > K {
			hi = K
		}
		gr := &paramGroup{}
		for s := lo; s < hi; s++ {
			ps := scen[s]
			if ps.pf == nil {
				ps.slot = gr.w
				gr.w++
				tierCount[shared.tier]++
			} else {
				tierCount[ps.pf.tier]++
			}
			gr.members = append(gr.members, ps)
		}
		if gr.w > 0 {
			gr.b = mat.NewDense(n, gr.w)
			gr.x = mat.NewDense(n, gr.w)
			gr.pf = shared.instantiate(rep)
			gr.scratch = gr.pf.newPanelScratch(gr.w)
		}
		groups[g] = gr
	}

	colErr := make([]error, K)
	tasks := make([]func(), 0, nGroups)
	var hookCols [][]float64
	if opt.OnColumn != nil {
		hookCols = make([][]float64, K)
		for s := range hookCols {
			hookCols[s] = make([]float64, n)
		}
	}
	for j := 0; j < m; j++ {
		tj := (float64(j) + 0.5) * h
		slot := j
		if ringLen > 0 {
			slot = j % ringLen
		}
		if err := ctx.Err(); err != nil {
			d := diag(ErrCancelled, j, tj)
			d.Cause = err
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.ColumnDelay != nil {
			opt.Fault.ColumnDelay(j)
		}
		tasks = tasks[:0]
		for _, gr := range groups {
			gr := gr
			tasks = append(tasks, func() {
				paramGroupColumn(n, colErr, j, slot, tj, gr)
			})
		}
		var ferr error
		if len(tasks) == 1 {
			ferr = runRecovered(tasks[0])
		} else {
			ferr = historyPoolDo(tasks)
		}
		if ferr != nil {
			d := diag(ErrInternal, j, tj)
			d.Cause = ferr
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.CorruptColumn != nil {
			for s := 0; s < K; s++ {
				xj := scen[s].st.xbuf[slot*n : (slot+1)*n]
				opt.Fault.CorruptColumn(j, xj)
				if i := firstNonFinite(xj); i >= 0 && colErr[s] == nil {
					d := diag(ErrNonFinite, j, tj)
					d.Cause = fmt.Errorf("non-finite value in state %d of scenario %d", i, s)
					colErr[s] = d
				}
			}
		}
		for s := 0; s < K; s++ {
			if colErr[s] != nil {
				return nil, colErr[s]
			}
		}
		rep.Columns += K
		for t := Tier(0); t < numTiers; t++ {
			rep.TierSolves[t] += tierCount[t]
		}
		if opt.OnColumn != nil {
			for s := 0; s < K; s++ {
				st := scen[s].st
				xj := st.xbuf[slot*n : (slot+1)*n]
				dst := hookCols[s]
				for i := 0; i < n; i++ {
					dst[i] = xj[i] + st.x0[i]
				}
			}
			opt.OnColumn(j, tj, hookCols)
		}
	}

	if opt.DiscardSolutions {
		return nil, nil
	}
	sols := make([]*Solution, K)
	fin := make([]func(), K)
	for s := range sols {
		s := s
		fin[s] = func() {
			const tile = 64
			st := scen[s].st
			x := mat.NewDense(n, m)
			xd := x.Data()
			for i0 := 0; i0 < n; i0 += tile {
				i1 := i0 + tile
				if i1 > n {
					i1 = n
				}
				for j0 := 0; j0 < m; j0 += tile {
					j1 := j0 + tile
					if j1 > m {
						j1 = m
					}
					for i := i0; i < i1; i++ {
						xr, x0i := xd[i*m:(i+1)*m], st.x0[i]
						for j := j0; j < j1; j++ {
							xr[j] = st.xbuf[j*n+i] + x0i
						}
					}
				}
			}
			sols[s] = &Solution{sys: sys, bas: bpf, x: x}
		}
	}
	if err := historyPoolDo(fin); err != nil {
		return nil, &Diagnostic{Kind: ErrInternal, Column: m - 1, Time: T, Cause: err}
	}
	return sols, nil
}

// paramGroupColumn advances one group through column j (committed into slab
// slot `slot`): assemble every member's right-hand side with the exact scalar
// operations Solve uses (plus the SMW rank-1 rhs corrections), panel-solve
// the shared-base members together, solve refactor members 1-wide, apply the
// Woodbury correction, and commit. Mirrors batchGroupColumn's error protocol:
// each colErr index is written by exactly one task.
func paramGroupColumn(n int, colErr []error, j, slot int, tj float64, gr *paramGroup) {
	for _, ps := range gr.members {
		st := ps.st
		rhs := st.rhs
		copy(rhs, st.shift)
		ps.sys.B.MulVecAdd(1, ucColumnInto(st.ucol, st.uc, j), rhs)
		for k, t := range ps.sys.Terms {
			var w []float64
			switch {
			case isExactZero(t.Order):
				continue
			case st.hist[k] != nil:
				w = st.hist[k].current()
			default:
				var err error
				w, err = st.eng.history(k, j, st.cols)
				if err != nil {
					d := diag(engineErrKind(err), j, tj)
					d.Order = t.Order
					d.Cause = fmt.Errorf("batch scenario %d: %w", ps.s, err)
					colErr[ps.s] = d
					return
				}
			}
			t.Coeff.MulVecAdd(-1, w, rhs)
			ps.applyTermDelta(k, w, rhs)
		}
		if ps.slot >= 0 {
			bd, w := gr.b.Data(), gr.w
			for i := 0; i < n; i++ {
				bd[i*w+ps.slot] = rhs[i]
			}
		} else {
			copy(ps.b1.Data(), rhs)
		}
	}
	if gr.w > 0 {
		if err := gr.pf.solvePanelInto(gr.x, gr.b, gr.scratch); err != nil {
			d := diag(ErrInternal, j, tj)
			d.Cause = fmt.Errorf("batch scenario %d's group: %w", gr.members[0].s, err)
			colErr[gr.members[0].s] = d
			return
		}
	}
	for _, ps := range gr.members {
		st := ps.st
		xj := st.xbuf[slot*n : (slot+1)*n : (slot+1)*n]
		if ps.slot >= 0 {
			xd, w := gr.x.Data(), gr.w
			for i := 0; i < n; i++ {
				xj[i] = xd[i*w+ps.slot]
			}
			if ps.smw != nil {
				ps.smw.correct(xj)
			}
		} else {
			if err := ps.pf.solvePanelInto(ps.x1, ps.b1, ps.s1); err != nil {
				d := diag(ErrInternal, j, tj)
				d.Cause = fmt.Errorf("batch scenario %d: %w", ps.s, err)
				colErr[ps.s] = d
				return
			}
			copy(xj, ps.x1.Data())
		}
		if i := firstNonFinite(xj); i >= 0 {
			d := diag(ErrNonFinite, j, tj)
			d.Cause = fmt.Errorf("batch scenario %d: state %d is %g (poisoned input sample or overflow?)", ps.s, i, xj[i])
			colErr[ps.s] = d
			return
		}
		if st.cols != nil {
			st.cols[j] = xj
		}
		for k := range ps.sys.Terms {
			if st.hist[k] != nil {
				st.hist[k].advance(xj)
			}
		}
	}
}
