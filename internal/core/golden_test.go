package core_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/netgen"
	"opmsim/internal/waveform"
)

var updateGolden = flag.Bool("update", false, "regenerate golden waveform snapshots")

// goldenFixture is one pinned Solve scenario. The fixtures mirror the
// example programs: the quickstart RC ladder, the §V-A fractional line, and
// the interconnect RC tree.
type goldenFixture struct {
	name string
	m    int
	T    float64
	sys  func(t *testing.T) (*core.System, []waveform.Signal)
}

func goldenFixtures() []goldenFixture {
	return []goldenFixture{
		{
			name: "quickstart", m: 256, T: 60e-3,
			sys: func(t *testing.T) (*core.System, []waveform.Signal) {
				mna, err := netgen.RCLadder(5, 1e3, 1e-6, waveform.Step(1, 0))
				if err != nil {
					t.Fatal(err)
				}
				return mna.Sys, mna.Inputs
			},
		},
		{
			name: "fractional_line", m: 256, T: 2.7e-9,
			sys: func(t *testing.T) (*core.System, []waveform.Signal) {
				drive := waveform.Pulse(0, 1e-3, 0.1e-9, 0.1e-9, 0.1e-9, 0.8e-9, 0)
				mna, err := netgen.FractionalLine(netgen.DefaultFractionalLine(), drive, waveform.Zero())
				if err != nil {
					t.Fatal(err)
				}
				return mna.Sys, mna.Inputs
			},
		},
		{
			name: "interconnect", m: 256, T: 2e-9,
			sys: func(t *testing.T) (*core.System, []waveform.Signal) {
				mna, err := netgen.RCTree(4, 150, 80, 25e-15, waveform.Step(1, 0))
				if err != nil {
					t.Fatal(err)
				}
				return mna.Sys, mna.Inputs
			},
		},
	}
}

// goldenFile is the on-disk snapshot: the full coefficient matrix X of
// x(t) = X·φ(t). encoding/json round-trips float64 exactly (shortest
// representation), so the snapshot pins the waveform bit for bit.
type goldenFile struct {
	Fixture string      `json:"fixture"`
	N       int         `json:"n"`
	M       int         `json:"m"`
	T       float64     `json:"t"`
	X       [][]float64 `json:"x"`
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func solveCoeffRows(t *testing.T, fx goldenFixture, opt core.Options) [][]float64 {
	t.Helper()
	sys, u := fx.sys(t)
	sol, err := core.Solve(sys, u, fx.m, fx.T, opt)
	if err != nil {
		t.Fatalf("%s: %v", fx.name, err)
	}
	x := sol.Coefficients()
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = append([]float64(nil), x.Row(i)...)
	}
	return rows
}

// TestGoldenWaveforms pins today's Solve outputs: the serial reference, the
// blocked single-worker engine, and the parallel engine must all match the
// committed snapshots to 1e-12. Regenerate with
//
//	go test ./internal/core -run TestGolden -update
func TestGoldenWaveforms(t *testing.T) {
	for _, fx := range goldenFixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			path := goldenPath(fx.name)
			if *updateGolden {
				rows := solveCoeffRows(t, fx, core.Options{})
				g := goldenFile{Fixture: fx.name, N: len(rows), M: fx.m, T: fx.T, X: rows}
				buf, err := json.MarshalIndent(&g, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s (%d states × %d columns)", path, g.N, g.M)
				return
			}
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update): %v", err)
			}
			var want goldenFile
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatal(err)
			}
			if want.M != fx.m || want.T != fx.T {
				t.Fatalf("snapshot is for m=%d T=%g, fixture wants m=%d T=%g (re-run -update)",
					want.M, want.T, fx.m, fx.T)
			}
			for _, variant := range []struct {
				name string
				opt  core.Options
			}{
				{"serial-naive", core.Options{HistoryNaive: true}},
				{"blocked-1worker", core.Options{Workers: 1}},
				{"blocked-parallel", core.Options{}},
				{"blocked-8workers", core.Options{Workers: 8}},
			} {
				rows := solveCoeffRows(t, fx, variant.opt)
				if len(rows) != want.N {
					t.Fatalf("%s: n=%d, snapshot has %d", variant.name, len(rows), want.N)
				}
				for i := range rows {
					for j := range rows[i] {
						got, ref := rows[i][j], want.X[i][j]
						if math.Abs(got-ref) > 1e-12*(1+math.Abs(ref)) {
							t.Fatalf("%s: X[%d][%d] = %.17g, golden %.17g (|Δ|=%g)",
								variant.name, i, j, got, ref, math.Abs(got-ref))
						}
					}
				}
			}
		})
	}
}

// TestSolveParallelDeterministic runs the fractional-line fixture across
// worker counts and asserts the Solution matrices are bitwise identical —
// the engine's ordered reduction makes the result independent of the
// parallelism degree.
func TestSolveParallelDeterministic(t *testing.T) {
	fx := goldenFixtures()[1] // fractional_line
	ref := solveCoeffRows(t, fx, core.Options{Workers: 1})
	for _, workers := range []int{2, 8} {
		got := solveCoeffRows(t, fx, core.Options{Workers: workers})
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: X[%d][%d] = %.17g, workers=1 got %.17g",
						workers, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// The golden snapshots double as documentation of scale; print a summary
// when -v is used so a failing CI log shows what is being compared.
func TestGoldenInventory(t *testing.T) {
	for _, fx := range goldenFixtures() {
		if _, err := os.Stat(goldenPath(fx.name)); err != nil {
			t.Errorf("golden snapshot for %q missing: %v", fx.name, err)
			continue
		}
		t.Log(fmt.Sprintf("%s: m=%d T=%g", fx.name, fx.m, fx.T))
	}
}
