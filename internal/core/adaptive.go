package core

import (
	"context"
	"fmt"
	"math"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

// SolveAdaptive simulates the system on the caller-supplied non-uniform time
// steps, using the adaptive-step operational matrices of §III-B/§IV
// (eqs. 17, 25). The per-column system matrix M_j = Σ_k D̃ᵅᵏ[j][j]·E_k depends
// on the column only through h_j, so factorizations are cached by step size:
// a schedule alternating between a few distinct step values pays for only
// that many factorizations.
//
// For non-integer orders the steps must be pairwise distinct (eq. 25's
// eigendecomposition requirement).
func SolveAdaptive(sys *System, u []waveform.Signal, steps []float64, opt Options) (*Solution, error) {
	return SolveAdaptiveCtx(context.Background(), sys, u, steps, opt)
}

// SolveAdaptiveCtx is SolveAdaptive with cancellation; see SolveCtx for the
// contract.
func SolveAdaptiveCtx(ctx context.Context, sys *System, u []waveform.Signal, steps []float64, opt Options) (_ *Solution, err error) {
	rep := opt.report()
	defer func() { rep.Err = err }()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if opt.X0 != nil {
		return nil, fmt.Errorf("core: SolveAdaptive does not support X0 (shift the state externally)")
	}
	ab, err := basis.NewAdaptiveBPF(steps)
	if err != nil {
		return nil, err
	}
	uc, err := expandInputs(sys, u, ab)
	if err != nil {
		return nil, err
	}
	if !isExactZero(sys.BOrder) {
		db, err := ab.DiffMatrixAlpha(sys.BOrder)
		if err != nil {
			return nil, fmt.Errorf("core: input order %g: %w", sys.BOrder, err)
		}
		uc = mat.Mul(uc, db)
	}
	n, m := sys.N(), len(steps)

	// Materialize D̃ᵅᵏ for each term (dense m×m; the adaptive path is meant
	// for modest m, where step placement replaces step count).
	dmats := make([]*mat.Dense, len(sys.Terms))
	for k, t := range sys.Terms {
		switch t.Order {
		case 0:
			dmats[k] = mat.Eye(m)
		default:
			d, err := ab.DiffMatrixAlpha(t.Order)
			if err != nil {
				return nil, fmt.Errorf("core: term %d (order %g): %w", k, t.Order, err)
			}
			dmats[k] = d
		}
	}

	// Midpoint times per column, for diagnostics.
	tMid := make([]float64, m)
	acc := 0.0
	for j, h := range steps {
		tMid[j] = acc + h/2
		acc += h
	}

	// Two cache levels: the run-local map keyed by step size (schedules
	// alternating between a few distinct h values pay for that many
	// factorizations at most), and behind it the optional shared
	// Options.FactorCache, which lets repeated SolveAdaptive runs over the
	// same step ladder skip even those.
	maxOrder := sys.MaxOrder()
	cache := map[float64]*pencilFactor{}
	factorFor := func(j int) (*pencilFactor, error) {
		h := steps[j]
		if f, ok := cache[h]; ok {
			return f, nil
		}
		msys, err := assembleLeading(sys, func(k int) float64 { return dmats[k].At(j, j) })
		if err != nil {
			return nil, err
		}
		f, err := factorPencilCached(msys, h, maxOrder, j, tMid[j], &opt, rep)
		if err != nil {
			return nil, err
		}
		cache[h] = f
		return f, nil
	}

	// The adaptive-grid D̃ᵅ has no Toeplitz structure, so every nonzero-order
	// term runs through the general (blocked, parallel) history engine —
	// the FFT fast-convolution tier never applies here, whatever
	// Options.HistoryMode says (the mode is still validated).
	eng, err := newHistoryEngine(n, m, &opt)
	if err != nil {
		return nil, err
	}
	eng.setGuards(ctx, &opt)
	for k, t := range sys.Terms {
		if !isExactZero(t.Order) {
			eng.addGeneral(k, dmats[k])
		}
	}
	if len(eng.terms) > 0 {
		rep.HistoryEngine = eng.modeName()
	}

	cols := make([][]float64, m)
	rhs := make([]float64, n)
	ucol := make([]float64, uc.Rows())
	for j := 0; j < m; j++ {
		if err := ctx.Err(); err != nil {
			d := diag(ErrCancelled, j, tMid[j])
			d.Cause = err
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.ColumnDelay != nil {
			opt.Fault.ColumnDelay(j)
		}
		for i := range rhs {
			rhs[i] = 0
		}
		sys.B.MulVecAdd(1, ucColumnInto(ucol, uc, j), rhs)
		for k, t := range sys.Terms {
			if isExactZero(t.Order) {
				continue
			}
			w, err := eng.history(k, j, cols)
			if err != nil {
				d := diag(engineErrKind(err), j, tMid[j])
				d.Order = t.Order
				d.Cause = err
				return nil, d
			}
			t.Coeff.MulVecAdd(-1, w, rhs)
		}
		fac, err := factorFor(j)
		if err != nil {
			return nil, err
		}
		xj, err := fac.solve(rhs)
		if err != nil {
			d := diag(ErrInternal, j, tMid[j])
			d.Cause = err
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.CorruptColumn != nil {
			opt.Fault.CorruptColumn(j, xj)
		}
		if i := firstNonFinite(xj); i >= 0 {
			d := diag(ErrNonFinite, j, tMid[j])
			d.Cause = fmt.Errorf("state %d is %g", i, xj[i])
			return nil, d
		}
		cols[j] = xj
		rep.Columns++
	}
	x := mat.NewDense(n, m)
	for j, col := range cols {
		for i, v := range col {
			x.Set(i, j, v)
		}
	}
	return &Solution{sys: sys, bas: ab, x: x}, nil
}

// AdaptiveOptions configures the on-the-fly step controller.
type AdaptiveOptions struct {
	Options
	// Tol is the local error tolerance per step (relative, default 1e-4).
	Tol float64
	// HMin and HMax bound the step size; defaults are T/1e6 and T/4.
	HMin, HMax float64
	// H0 is the initial step (default HMax/8).
	H0 float64
	// MaxSteps bounds the number of accepted steps (default 100000).
	MaxSteps int
}

// AdaptiveStats reports what the controller did.
type AdaptiveStats struct {
	Accepted int
	Rejected int
	// Retried counts steps re-attempted with a halved h after a
	// factorization or solve failure (also mirrored in SolveReport).
	Retried int
}

// maxStepRetries bounds the consecutive halved-h retries the controller
// attempts after a failed (as opposed to merely rejected) step before giving
// up with the underlying typed error.
const maxStepRetries = 8

// SolveAdaptiveAuto simulates an integer-order system (all term orders 0 or
// 1) over [0, T) choosing the time steps on the fly, the "error control
// mechanism" the paper sketches in §III-B. Each step is solved twice — once
// with h and once as two half-steps — and the difference drives a standard
// step controller; for the order-1 column recurrence both solves share the
// committed history, so the controller needs only O(1) extra state. A step
// whose factorization or solve fails is retried with a halved h up to
// maxStepRetries times before the typed error is surfaced.
func SolveAdaptiveAuto(sys *System, u []waveform.Signal, T float64, opt AdaptiveOptions) (*Solution, *AdaptiveStats, error) {
	return SolveAdaptiveAutoCtx(context.Background(), sys, u, T, opt)
}

// SolveAdaptiveAutoCtx is SolveAdaptiveAuto with cancellation; see SolveCtx
// for the contract.
func SolveAdaptiveAutoCtx(ctx context.Context, sys *System, u []waveform.Signal, T float64, opt AdaptiveOptions) (_ *Solution, _ *AdaptiveStats, err error) {
	rep := opt.report()
	defer func() { rep.Err = err }()
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	for _, t := range sys.Terms {
		if !isExactZero(t.Order) && !isExactEq(t.Order, 1) {
			return nil, nil, fmt.Errorf("core: SolveAdaptiveAuto requires orders in {0,1}, found %g (use SolveAdaptive with explicit steps)", t.Order)
		}
	}
	if !isExactZero(sys.BOrder) {
		return nil, nil, fmt.Errorf("core: SolveAdaptiveAuto does not support input order %g", sys.BOrder)
	}
	if T <= 0 {
		return nil, nil, fmt.Errorf("core: SolveAdaptiveAuto requires T > 0")
	}
	if isExactZero(opt.Tol) {
		opt.Tol = 1e-4
	}
	if isExactZero(opt.HMax) {
		opt.HMax = T / 4
	}
	if isExactZero(opt.HMin) {
		opt.HMin = T / 1e6
	}
	if isExactZero(opt.H0) {
		opt.H0 = opt.HMax / 8
	}
	if opt.MaxSteps == 0 {
		opt.MaxSteps = 100000
	}
	n := sys.N()
	uAt := func(t float64) []float64 {
		v := make([]float64, len(u))
		for c, sig := range u {
			v[c] = sig(t)
		}
		return v
	}
	if len(u) != sys.Inputs() {
		return nil, nil, fmt.Errorf("core: system has %d inputs, got %d signals", sys.Inputs(), len(u))
	}

	// As in SolveAdaptive: run-local L1 keyed by h, optional shared
	// FactorCache behind it, so a halved-h retry ladder the controller has
	// walked before (in this run or a previous one) never refactors.
	maxOrder := sys.MaxOrder()
	cache := map[float64]*pencilFactor{}
	factorFor := func(h, tNow float64) (*pencilFactor, error) {
		if f, ok := cache[h]; ok {
			return f, nil
		}
		msys, err := assembleLeading(sys, func(k int) float64 {
			if isExactEq(sys.Terms[k].Order, 1) {
				return 2 / h
			}
			return 1
		})
		if err != nil {
			return nil, err
		}
		f, err := factorPencilCached(msys, h, maxOrder, -1, tNow, &opt.Options, rep)
		if err != nil {
			return nil, err
		}
		cache[h] = f
		return f, nil
	}

	// solveColumn computes the BPF coefficient for an interval [t, t+h)
	// given the order-1 history vectors s_k (one per order-1 term), without
	// committing them. It returns the coefficient.
	solveColumn := func(t, h float64, s map[int][]float64) ([]float64, error) {
		rhs := make([]float64, n)
		// Interval-average of the input via the midpoint (adequate within
		// the controller's own error tolerance).
		sys.B.MulVecAdd(1, uAt(t+h/2), rhs)
		for k, term := range sys.Terms {
			if isExactEq(term.Order, 1) {
				// rhs −= E·(w/h) where w is the step-independent part of the
				// adaptive history (D̃ off-diagonal entries are ±4/h_j).
				term.Coeff.MulVecAdd(-1/h, s[k], rhs)
			}
		}
		fac, err := factorFor(h, t)
		if err != nil {
			return nil, err
		}
		return fac.solve(rhs)
	}
	// advance updates the step-independent histories w ← −w − 4·x.
	advance := func(s map[int][]float64, x []float64) {
		for k := range s {
			for i := range s[k] {
				//lint:ignore maporder per-key element-wise update with no cross-key reads; iteration order cannot affect the result
				s[k][i] = -s[k][i] - 4*x[i]
			}
		}
	}
	cloneHist := func(s map[int][]float64) map[int][]float64 {
		c := make(map[int][]float64, len(s))
		for k, v := range s {
			c[k] = append([]float64(nil), v...)
		}
		return c
	}

	hist := map[int][]float64{}
	for k, term := range sys.Terms {
		if isExactEq(term.Order, 1) {
			hist[k] = make([]float64, n)
		}
	}

	var steps []float64
	var cols [][]float64
	stats := &AdaptiveStats{}
	t, h := 0.0, opt.H0
	consecFails := 0
	for t < T {
		if err := ctx.Err(); err != nil {
			d := diag(ErrCancelled, len(steps), t)
			d.Cause = err
			return nil, nil, d
		}
		if len(steps) >= opt.MaxSteps {
			d := diag(ErrNonConvergence, len(steps), t)
			d.Cause = fmt.Errorf("adaptive controller exceeded %d steps (tol too tight?)", opt.MaxSteps)
			return nil, nil, d
		}
		if opt.Fault != nil && opt.Fault.ColumnDelay != nil {
			opt.Fault.ColumnDelay(len(steps))
		}
		if h > T-t {
			h = T - t
		}
		if h < opt.HMin {
			h = opt.HMin
		}
		// The step attempt: one full-h solve and two half-h solves from the
		// same committed history. A failure anywhere is retried with h/2
		// (bounded backoff) before surfacing — a near-singular pencil at one
		// step size is routinely regular at another, because h enters the
		// leading matrix through the 2/h diagonal.
		full, err := solveColumn(t, h, hist)
		var a, b []float64
		if err == nil {
			tmp := cloneHist(hist)
			a, err = solveColumn(t, h/2, tmp)
			if err == nil {
				advance(tmp, a)
				b, err = solveColumn(t+h/2, h/2, tmp)
			}
		}
		if err != nil {
			consecFails++
			if consecFails > maxStepRetries || h <= opt.HMin*1.0000001 {
				return nil, nil, err
			}
			stats.Retried++
			rep.StepRetries++
			h /= 2
			continue
		}
		consecFails = 0
		// The interval average from the refined solve.
		est := 0.0
		scale := 0.0
		for i := 0; i < n; i++ {
			ref := (a[i] + b[i]) / 2
			est += (full[i] - ref) * (full[i] - ref)
			scale += ref * ref
		}
		est = math.Sqrt(est)
		norm := opt.Tol * (1 + math.Sqrt(scale))
		if math.IsNaN(est) {
			d := diag(ErrNonFinite, len(steps), t)
			d.Cause = fmt.Errorf("step error estimate is NaN (poisoned input sample?)")
			return nil, nil, d
		}
		if est <= norm || h <= opt.HMin*1.0000001 {
			// Accept the refined pair as two committed columns (better
			// accuracy at no extra cost — the solves are already done).
			advance(hist, a)
			advance(hist, b)
			steps = append(steps, h/2, h/2)
			cols = append(cols, a, b)
			stats.Accepted++
			rep.Columns += 2
			t += h
		} else {
			stats.Rejected++
		}
		// PI-style update; trapezoidal-order method → exponent 1/3.
		fac := 0.9 * math.Pow(norm/math.Max(est, 1e-300), 1.0/3)
		h *= math.Min(4, math.Max(0.2, fac))
		if h > opt.HMax {
			h = opt.HMax
		}
	}
	ab, err := basis.NewAdaptiveBPF(steps)
	if err != nil {
		return nil, nil, err
	}
	x := mat.NewDense(n, len(steps))
	for j, col := range cols {
		for i, v := range col {
			x.Set(i, j, v)
		}
	}
	return &Solution{sys: sys, bas: ab, x: x}, stats, nil
}
