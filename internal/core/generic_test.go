package core

import (
	"math"
	"testing"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

func fromDense(d *mat.Dense) *sparse.CSR { return sparse.FromDense(d) }

func TestSolveGenericBPFMatchesColumnSolver(t *testing.T) {
	e := mat.NewDenseFrom(2, 2, []float64{1, 0, 0, 1})
	a := mat.NewDenseFrom(2, 2, []float64{-2, 1, 0, -1})
	b := mat.NewDenseFrom(2, 1, []float64{1, 0.5})
	u := []waveform.Signal{waveform.Sine(1, 0.5, 0)}
	m, T := 32, 2.0
	bpf, _ := basis.NewBPF(m, T)
	x, err := SolveGeneric(e, a, b, u, bpf)
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := NewDAE(fromDense(e), fromDense(a), fromDense(b))
	sol, err := Solve(sys, u, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The generic path solves the integrated equation while the column
	// solver inverts D exactly; the two are algebraically identical.
	if !mat.Equalf(x, sol.Coefficients(), 1e-8*(1+x.MaxAbs())) {
		t.Fatal("generic BPF solve differs from column solver")
	}
}

func TestSolveGenericLegendreSmooth(t *testing.T) {
	// On a smooth problem the Legendre basis needs far fewer coefficients:
	// m = 12 already yields ~1e-5 accuracy where BPF needs thousands.
	e := mat.NewDenseFrom(1, 1, []float64{1})
	a := mat.NewDenseFrom(1, 1, []float64{-1})
	b := mat.NewDenseFrom(1, 1, []float64{1})
	u := []waveform.Signal{waveform.Constant(1)}
	T := 2.0
	leg, _ := basis.NewLegendre(12, T)
	x, err := SolveGeneric(e, a, b, u, leg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.2, 0.7, 1.3, 1.9} {
		want := 1 - math.Exp(-tt)
		if got := leg.Reconstruct(x.Row(0), tt); math.Abs(got-want) > 1e-5 {
			t.Fatalf("Legendre x(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestSolveGenericWalsh(t *testing.T) {
	e := mat.NewDenseFrom(1, 1, []float64{1})
	a := mat.NewDenseFrom(1, 1, []float64{-1})
	b := mat.NewDenseFrom(1, 1, []float64{1})
	u := []waveform.Signal{waveform.Step(1, 0)}
	T := 2.0
	w, _ := basis.NewWalsh(64, T)
	x, err := SolveGeneric(e, a, b, u, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.25, 0.8, 1.5} {
		want := 1 - math.Exp(-tt)
		if got := w.Reconstruct(x.Row(0), tt); math.Abs(got-want) > 2e-2 {
			t.Fatalf("Walsh x(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestSolveGenericValidation(t *testing.T) {
	e := mat.NewDenseFrom(1, 1, []float64{1})
	a := mat.NewDenseFrom(2, 2, []float64{1, 0, 0, 1})
	b := mat.NewDenseFrom(1, 1, []float64{1})
	bpf, _ := basis.NewBPF(4, 1)
	if _, err := SolveGeneric(e, a, b, []waveform.Signal{waveform.Zero()}, bpf); err == nil {
		t.Fatal("SolveGeneric accepted mismatched A")
	}
	if _, err := SolveGeneric(e, mat.NewDenseFrom(1, 1, []float64{-1}), b, nil, bpf); err == nil {
		t.Fatal("SolveGeneric accepted missing inputs")
	}
	big, _ := basis.NewBPF(8192, 1)
	if _, err := SolveGeneric(e, mat.NewDenseFrom(1, 1, []float64{-1}), b, []waveform.Signal{waveform.Zero()}, big); err == nil {
		t.Fatal("SolveGeneric accepted oversized Kronecker system")
	}
}
