package core

import (
	"fmt"

	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/vecops"
)

// The Sherman–Morrison–Woodbury "UpdatedSolve" tier of the factor cache: when
// a scenario perturbs the shared leading pencil M by a low-rank stamp delta
// Σ δ_i·u_i·v_iᵀ = U·Vᵀ, solves against the perturbed pencil reuse the cached
// factorization of M through the capacitance-matrix formula
//
//	(M + U·Vᵀ)⁻¹·b = y − W·C⁻¹·Vᵀ·y,   y = M⁻¹·b,
//	W = M⁻¹·U (one r-wide panel solve at setup),
//	C = I_r + Vᵀ·W (r×r, dense-LU factored once).
//
// Per column the extra cost over the base solve is r sparse-gather inner
// products (Vᵀy), one r×r triangular solve, and r n-length AddMul lanes — all
// through the vecops kernels — versus a full refactorization on the fallback
// path. The crossover between the two lives in parambatch.go.
//
// Numerics: the correction is backward-stable as long as the capacitance
// matrix is well-conditioned; a singular C (the perturbation moves the pencil
// onto a singular manifold, e.g. δR exactly cancelling a conductance) is
// reported as an error and the caller falls back to refactorization, whose
// tier chain then classifies the pencil properly. The update path is NOT
// bitwise-identical to factoring the perturbed pencil — it agrees to the
// ≤1e-12 relative level the waveform contract requires (see the property
// tests); callers that need bit-exactness force the refactor path.

// smwFactor augments a private view of the base pencil factorization with the
// Woodbury correction state for one scenario's pencil delta.
type smwFactor struct {
	base *pencilFactor // private instantiate view: scratch owned here
	r    int
	v    []sparse.Vec // V factors, update order
	wt   *mat.Dense   // r×n: row i = w_i = M⁻¹(δ_i·u_i), transposed so each correction lane is one contiguous SubMul
	capf *mat.LU      // LU of C = I + Vᵀ·W
	t    []float64    // r-scratch: Vᵀy gather / capacitance solve target
}

// pencilUpdate is one rank-1 update at pencil level: the term-level RankOne
// scaled by the term's leading BPF coefficient c₀⁽ᵏ⁾ (how the term enters
// M = Σ_k c₀⁽ᵏ⁾·E_k). Updates whose leading coefficient is exactly zero do
// not perturb M at all and are dropped before rank counting.
type pencilUpdate struct {
	scale float64
	u, v  sparse.Vec
}

// pencilUpdates projects a term-level delta onto the leading pencil.
func pencilUpdates(d *PencilDelta, coeffs [][]float64) []pencilUpdate {
	ups := make([]pencilUpdate, 0, d.Rank())
	for _, up := range d.Updates {
		s := up.Scale * coeffs[up.Term][0]
		if isExactZero(s) {
			continue
		}
		ups = append(ups, pencilUpdate{scale: s, u: up.U, v: up.V})
	}
	return ups
}

// newSMWFactor builds the update tier for one scenario: base is a private
// instantiate view of the shared factorization (the caller creates one per
// scenario so setup panel solves and per-column corrections never share
// scratch), ups the pencil-level updates. Fails when the capacitance matrix
// is singular — the caller's cue to refactor instead.
func newSMWFactor(base *pencilFactor, ups []pencilUpdate, n int) (*smwFactor, error) {
	r := len(ups)
	if r == 0 {
		return nil, fmt.Errorf("core: smw update with zero pencil rank")
	}
	// Scatter the scaled U factors into an n×r panel and solve M·W = U·diag(δ)
	// through the base tier's panel kernel.
	up := mat.NewDense(n, r)
	for i, u := range ups {
		for q, row := range u.u.Idx {
			up.Row(row)[i] = u.scale * u.u.Val[q]
		}
	}
	wp := mat.NewDense(n, r)
	scratch := base.newPanelScratch(r)
	if err := base.solvePanelInto(wp, up, scratch); err != nil {
		return nil, fmt.Errorf("core: smw setup panel solve: %w", err)
	}
	// Transpose W into r×n rows so the per-column correction is one contiguous
	// vecops lane per update.
	wt := mat.NewDense(r, n)
	for i := 0; i < r; i++ {
		wi := wt.Row(i)
		for row := 0; row < n; row++ {
			wi[row] = wp.Row(row)[i]
		}
	}
	// Capacitance matrix C = I + Vᵀ·W via sparse-gather inner products.
	cm := mat.NewDense(r, r)
	sf := &smwFactor{base: base, r: r, wt: wt, t: make([]float64, r)}
	for i, u := range ups {
		ci := cm.Row(i)
		for j := 0; j < r; j++ {
			ci[j] = u.v.Dot(wt.Row(j))
		}
		ci[i]++
		sf.v = append(sf.v, u.v)
	}
	capf, err := mat.LUFactor(cm)
	if err != nil {
		return nil, fmt.Errorf("core: smw capacitance matrix singular at rank %d: %w", r, err)
	}
	sf.capf = capf
	return sf, nil
}

// correct applies the Woodbury correction in place, turning the base solve
// y = M⁻¹·b into the updated solve (M + UVᵀ)⁻¹·b: y ← y − W·C⁻¹·Vᵀ·y.
func (sf *smwFactor) correct(y []float64) {
	for i, v := range sf.v {
		sf.t[i] = v.Dot(y)
	}
	sf.capf.Solve(sf.t)
	for i, zi := range sf.t {
		vecops.SubMul(y, sf.wt.Row(i), zi)
	}
}

// updatedSolve solves (M + UVᵀ)·x = rhs: one base-tier solve (counted in the
// report like any solveInto) plus the Woodbury correction. dst must not alias
// rhs. Like solveInto it is unsafe for concurrent calls on one instance.
func (sf *smwFactor) updatedSolve(dst, rhs []float64) error {
	if err := sf.base.solveInto(dst, rhs); err != nil {
		return err
	}
	sf.correct(dst)
	return nil
}
