package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// randomSparseVec builds a sparse vector with nnz entries at distinct sorted
// indices in [0,n) and O(1)-magnitude values.
func randomSparseVec(rng *rand.Rand, n, nnz int) sparse.Vec {
	perm := rng.Perm(n)[:nnz]
	sort.Ints(perm)
	v := sparse.Vec{Idx: perm, Val: make([]float64, nnz)}
	for i := range v.Val {
		v.Val[i] = 0.5 + rng.Float64()
		if rng.Intn(2) == 0 {
			v.Val[i] = -v.Val[i]
		}
	}
	return v
}

// randomDelta builds a rank-r pencil delta spreading small rank-1 updates
// over random terms of sys — small scales keep the perturbed pencil
// comfortably nonsingular.
func randomDelta(rng *rand.Rand, sys *System, r int) *PencilDelta {
	n := sys.N()
	d := &PencilDelta{}
	for i := 0; i < r; i++ {
		nnz := 1 + rng.Intn(3)
		d.Updates = append(d.Updates, RankOne{
			Term:  rng.Intn(len(sys.Terms)),
			Scale: 0.02 + 0.05*rng.Float64(),
			U:     randomSparseVec(rng, n, nnz),
			V:     randomSparseVec(rng, n, nnz),
		})
	}
	return d
}

// maxRelErr returns max_ij |a−b| / (1 + max|b|), a scale-aware relative
// deviation over the coefficient grids.
func maxRelErr(a, b [][]float64) float64 {
	worst, scale := 0.0, 0.0
	for i := range b {
		for j := range b[i] {
			if v := math.Abs(b[i][j]); v > scale {
				scale = v
			}
		}
	}
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst / (1 + scale)
}

func denseRows(s *Solution) [][]float64 {
	x := s.Coefficients()
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = make([]float64, x.Cols())
		for j := range rows[i] {
			rows[i][j] = x.At(i, j)
		}
	}
	return rows
}

// The SMW property: for random deltas of rank 1..8, the update path agrees
// with solving the from-scratch materialized system to ≤1e-12 relative — on
// a mixed fractional/integer system with no recurrence shortcut.
func TestParamBatchSMWMatchesMaterialized(t *testing.T) {
	sys, u := fracTestSystem(8, 301)
	m, T := 96, 1.5
	rng := rand.New(rand.NewSource(77))
	for r := 1; r <= 8; r++ {
		d := randomDelta(rng, sys, r)
		scs := []Scenario{{U: u}, {U: u, Delta: d}}
		var rep SolveReport
		sols, err := SolveBatch(sys, scs, m, T, BatchOptions{
			Options:         Options{Report: &rep},
			UpdateRankLimit: 64, // force the SMW side of the crossover
		})
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		psys, err := ApplyDelta(sys, d)
		if err != nil {
			t.Fatalf("rank %d: ApplyDelta: %v", r, err)
		}
		want, err := Solve(psys, u, m, T, Options{})
		if err != nil {
			t.Fatalf("rank %d: materialized solve: %v", r, err)
		}
		if got := maxRelErr(denseRows(sols[1]), denseRows(want)); got > 1e-12 {
			t.Fatalf("rank %d: SMW deviates from materialized solve by %.3g (> 1e-12)", r, got)
		}
		// The nominal scenario must stay bitwise-identical to plain Solve.
		nominal, err := Solve(sys, u, m, T, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameDense(t, fmt.Sprintf("rank %d nominal", r), sols[0].Coefficients(), nominal.Coefficients())
		if rep.PencilUpdates == 0 || rep.PencilRefactors != 0 {
			t.Fatalf("rank %d: dispatch counters updates=%d refactors=%d, want SMW only",
				r, rep.PencilUpdates, rep.PencilRefactors)
		}
	}
}

// The crossover fallback contract: with the update path disabled, every
// delta scenario is bitwise-identical to Solve over the ApplyDelta
// materialization — across worker counts and history engines.
func TestParamBatchRefactorBitwiseMatchesMaterialized(t *testing.T) {
	sys, u := fracTestSystem(6, 113)
	m, T := 80, 1.2
	rng := rand.New(rand.NewSource(5))
	deltas := []*PencilDelta{nil, randomDelta(rng, sys, 2), randomDelta(rng, sys, 5)}
	scs := make([]Scenario, len(deltas))
	for s, d := range deltas {
		scs[s] = Scenario{U: u, Delta: d}
	}
	for _, workers := range []int{1, 4} {
		for _, mode := range []HistoryMode{HistoryExact, HistoryFFT} {
			opt := Options{Workers: workers, HistoryMode: mode}
			sols, err := SolveBatch(sys, scs, m, T, BatchOptions{
				Options:         opt,
				UpdateRankLimit: -1, // force per-scenario refactorization
				PanelWidth:      2,
			})
			if err != nil {
				t.Fatalf("workers=%d mode=%s: %v", workers, mode, err)
			}
			for s, d := range deltas {
				msys := sys
				if d != nil {
					var err error
					if msys, err = ApplyDelta(sys, d); err != nil {
						t.Fatal(err)
					}
				}
				want, err := Solve(msys, u, m, T, opt)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("workers=%d mode=%s scenario=%d", workers, mode, s)
				sameDense(t, name, sols[s].Coefficients(), want.Coefficients())
			}
		}
	}
}

// Initial states combine with deltas: order-0 updates shift the constant
// forcing term, and the SMW path must track the refactor path through it.
func TestParamBatchDeltaWithInitialState(t *testing.T) {
	e := csrFrom(3, 3, []float64{1, 0, 0, 0, 1, 0, 0, 0, 1})
	a := csrFrom(3, 3, []float64{-1, 0.2, 0, 0.1, -1.5, 0.2, 0, 0.3, -2})
	b := csrFrom(3, 1, []float64{1, 0.5, 0.25})
	sys, err := NewDAE(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the order-0 term (index 1 after NewDAE: [E, G] ordering can
	// vary, so find it) with a rank-1 update.
	k0 := -1
	for k, tm := range sys.Terms {
		if isExactZero(tm.Order) {
			k0 = k
		}
	}
	if k0 < 0 {
		t.Fatal("no order-0 term")
	}
	d := &PencilDelta{Updates: []RankOne{{
		Term: k0, Scale: 0.1,
		U: sparse.Vec{Idx: []int{0, 2}, Val: []float64{1, -1}},
		V: sparse.Vec{Idx: []int{0, 2}, Val: []float64{1, -1}},
	}}}
	u := []waveform.Signal{waveform.Sine(1, 0.7, 0)}
	x0 := []float64{0.4, -0.3, 0.2}
	m, T := 128, 2.0
	scs := []Scenario{{U: u, X0: x0, Delta: d}}
	for _, limit := range []int{64, -1} { // SMW and refactor sides
		sols, err := SolveBatch(sys, scs, m, T, BatchOptions{UpdateRankLimit: limit})
		if err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		psys, err := ApplyDelta(sys, d)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(psys, u, m, T, Options{X0: x0})
		if err != nil {
			t.Fatal(err)
		}
		if limit < 0 {
			sameDense(t, "refactor+x0", sols[0].Coefficients(), want.Coefficients())
		} else if got := maxRelErr(denseRows(sols[0]), denseRows(want)); got > 1e-12 {
			t.Fatalf("SMW with X0 deviates by %.3g (> 1e-12)", got)
		}
	}
}

// The same parameter-varying batch run twice is bitwise-reproducible, and
// the counters report the dispatch: SMW updates, refactorizations, and the
// cache's update-hit ledger when a factor cache is attached.
func TestParamBatchDeterminismAndCounters(t *testing.T) {
	sys, u := fracTestSystem(7, 59)
	m, T := 64, 1.0
	rng := rand.New(rand.NewSource(21))
	scs := []Scenario{
		{U: u},
		{U: u, Delta: randomDelta(rng, sys, 2)},
		{U: u, Delta: randomDelta(rng, sys, 3)},
		{U: u, Delta: randomDelta(rng, sys, 7)},
	}
	cache := NewFactorCache(0)
	run := func() ([]*Solution, *SolveReport) {
		var rep SolveReport
		sols, err := SolveBatch(sys, scs, m, T, BatchOptions{
			Options:         Options{Report: &rep, FactorCache: cache, Workers: 3},
			UpdateRankLimit: 4, // ranks 2,3 → SMW; rank 7 → refactor
			PanelWidth:      2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sols, &rep
	}
	first, rep := run()
	if rep.PencilUpdates != 2 || rep.PencilRefactors != 1 {
		t.Fatalf("dispatch: updates=%d refactors=%d, want 2/1", rep.PencilUpdates, rep.PencilRefactors)
	}
	if rep.UpdateCrossoverRank != 4 {
		t.Fatalf("crossover rank %d, want the pinned 4", rep.UpdateCrossoverRank)
	}
	if rep.FactorCacheUpdateHits != 2 {
		t.Fatalf("report update hits = %d, want 2", rep.FactorCacheUpdateHits)
	}
	if _, uh, _ := cache.Stats(); uh != 2 {
		t.Fatalf("cache update hits = %d, want 2", uh)
	}
	second, _ := run()
	for s := range first {
		sameDense(t, fmt.Sprintf("rerun scenario %d", s), second[s].Coefficients(), first[s].Coefficients())
	}
}

// DiscardSolutions + OnColumn is the sweep driver's streaming shape: the
// hook must see exactly the columns the materialized solutions contain —
// including on an integer-order system, where discarding engages the
// short ring slab instead of full per-scenario column storage.
func TestParamBatchStreamingMatchesMaterialized(t *testing.T) {
	e := csrFrom(2, 2, []float64{1, 0, 0, 1})
	a := csrFrom(2, 2, []float64{-1, 0.2, 0.1, -1.5})
	b := csrFrom(2, 1, []float64{1, 0.5})
	sys, err := NewDAE(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	u := []waveform.Signal{waveform.Step(1, 0)}
	d := &PencilDelta{Updates: []RankOne{{
		Term: 0, Scale: 0.05,
		U: sparse.Vec{Idx: []int{1}, Val: []float64{1}},
		V: sparse.Vec{Idx: []int{1}, Val: []float64{1}},
	}}}
	scs := []Scenario{{U: u}, {U: u, Delta: d}}
	m, T := 96, 2.0
	sols, err := SolveBatch(sys, scs, m, T, BatchOptions{UpdateRankLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	streamed := make([][][]float64, len(scs))
	for s := range streamed {
		streamed[s] = make([][]float64, m)
	}
	hooked, err := SolveBatch(sys, scs, m, T, BatchOptions{
		UpdateRankLimit:  64,
		DiscardSolutions: true,
		OnColumn: func(j int, tj float64, cols [][]float64) {
			for s := range cols {
				streamed[s][j] = append([]float64(nil), cols[s]...)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked != nil {
		t.Fatalf("DiscardSolutions returned %d solutions, want nil", len(hooked))
	}
	for s := range scs {
		x := sols[s].Coefficients()
		for j := 0; j < m; j++ {
			for i := 0; i < 2; i++ {
				if got, want := streamed[s][j][i], x.At(i, j); !isExactEq(got, want) {
					t.Fatalf("scenario %d col %d state %d: streamed %.17g vs materialized %.17g",
						s, j, i, got, want)
				}
			}
		}
	}
}

// Checkpoint resume is explicitly unsupported with pencil deltas.
func TestParamBatchRejectsResume(t *testing.T) {
	sys, u := fracTestSystem(4, 9)
	d := randomDelta(rand.New(rand.NewSource(1)), sys, 1)
	scs := []Scenario{{U: u, Delta: d}}
	_, err := SolveBatch(sys, scs, 32, 1, BatchOptions{ResumeFrom: &Checkpoint{}})
	if err == nil {
		t.Fatal("resume with pencil deltas should fail")
	}
}

// Delta validation errors carry the scenario index.
func TestParamBatchValidatesDeltas(t *testing.T) {
	sys, u := fracTestSystem(4, 13)
	bad := &PencilDelta{Updates: []RankOne{{
		Term: len(sys.Terms) + 3, Scale: 1,
		U: sparse.Vec{Idx: []int{0}, Val: []float64{1}},
		V: sparse.Vec{Idx: []int{0}, Val: []float64{1}},
	}}}
	_, err := SolveBatch(sys, []Scenario{{U: u}, {U: u, Delta: bad}}, 32, 1, BatchOptions{})
	if err == nil {
		t.Fatal("out-of-range term index should fail validation")
	}
}
