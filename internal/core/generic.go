package core

import (
	"fmt"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

// maxKronDim bounds the n·m size of the dense Kronecker system the generic
// solver builds; beyond this the specialized BPF solvers must be used.
const maxKronDim = 4096

// SolveGeneric simulates the DAE E·ẋ = A·x + B·u with an arbitrary basis by
// solving the Kronecker-product system of eq. (15). Because a general basis
// has a non-triangular operational matrix, the column-by-column trick does
// not apply; instead the better-conditioned integrated form
//
//	E·X = A·X·H + B·U·H  ⇔  (I_m ⊗ E − Hᵀ ⊗ A)·vec(X) = vec(B·U·H)
//
// is solved densely. This is the paper's §I scenario of switching bases
// (Walsh for trend-only views, Legendre for smooth inputs, ...) and is meant
// for small n·m.
func SolveGeneric(e, a, b *mat.Dense, u []waveform.Signal, bas basis.Basis) (*mat.Dense, error) {
	n := e.Rows()
	m := bas.Size()
	if e.Cols() != n || a.Rows() != n || a.Cols() != n || b.Rows() != n {
		return nil, fmt.Errorf("core: SolveGeneric dimension mismatch")
	}
	if len(u) != b.Cols() {
		return nil, fmt.Errorf("core: system has %d inputs, got %d signals", b.Cols(), len(u))
	}
	if n*m > maxKronDim {
		return nil, fmt.Errorf("core: SolveGeneric dense system %d×%d exceeds limit %d", n*m, n*m, maxKronDim)
	}
	h := bas.IntegrationMatrix()

	// U coefficients (p×m) and right-hand side G = B·U·H (n×m).
	p := b.Cols()
	uc := mat.NewDense(p, m)
	for c, sig := range u {
		copy(uc.Row(c), bas.Expand(sig))
	}
	g := mat.Mul(mat.Mul(b, uc), h)

	// K = I_m ⊗ E − Hᵀ ⊗ A over vec(X) (column-stacked).
	k := mat.NewDense(n*m, n*m)
	for bj := 0; bj < m; bj++ { // block column (column bj of X)
		hrow := h.Row(bj)
		for bi := 0; bi < m; bi++ { // block row
			hji := hrow[bi] // (Hᵀ)[bi][bj]
			for r := 0; r < n; r++ {
				er, ar := e.Row(r), a.Row(r)
				krow := k.Row(bi*n + r)[bj*n:]
				for c := 0; c < n; c++ {
					v := 0.0
					if bi == bj {
						v += er[c]
					}
					v -= hji * ar[c]
					if !isExactZero(v) {
						krow[c] = v
					}
				}
			}
		}
	}
	rhs := make([]float64, n*m)
	for i := 0; i < n; i++ {
		gr := g.Row(i)
		for j := 0; j < m; j++ {
			rhs[j*n+i] = gr[j]
		}
	}
	sol, err := mat.Solve(k, rhs)
	if err != nil {
		return nil, fmt.Errorf("core: SolveGeneric: %w", err)
	}
	x := mat.NewDense(n, m)
	for i := 0; i < n; i++ {
		xr := x.Row(i)
		for j := 0; j < m; j++ {
			xr[j] = sol[j*n+i]
		}
	}
	return x, nil
}
