package core

import (
	"testing"

	"opmsim/internal/waveform"
)

// Hit/miss accounting: the first solve of a pencil misses and stores, every
// repeat hits, and both the cache and the per-run reports agree.
func TestFactorCacheHitMissAccounting(t *testing.T) {
	sys, u := fracTestSystem(5, 7)
	cache := NewFactorCache(8)
	for run := 0; run < 3; run++ {
		var rep SolveReport
		if _, err := Solve(sys, u, 64, 1, Options{FactorCache: cache, Report: &rep}); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			if rep.FactorCacheMisses != 1 || rep.FactorCacheHits != 0 {
				t.Fatalf("run 0: hits=%d misses=%d, want 0/1", rep.FactorCacheHits, rep.FactorCacheMisses)
			}
		} else if rep.FactorCacheHits != 1 || rep.FactorCacheMisses != 0 {
			t.Fatalf("run %d: hits=%d misses=%d, want 1/0", run, rep.FactorCacheHits, rep.FactorCacheMisses)
		}
	}
	hits, _, misses := cache.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("cache stats: hits=%d misses=%d, want 2/1", hits, misses)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}

// Cached results must be bitwise-identical to freshly factored ones.
func TestFactorCacheBitwiseIdentical(t *testing.T) {
	sys, u := fracTestSystem(6, 13)
	m, T := 96, 1.5
	want, err := Solve(sys, u, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewFactorCache(0)
	for run := 0; run < 2; run++ {
		got, err := Solve(sys, u, m, T, Options{FactorCache: cache})
		if err != nil {
			t.Fatal(err)
		}
		sameDense(t, "cached run", got.Coefficients(), want.Coefficients())
	}
}

// Eviction: a capacity-1 cache holds only the most recent pencil, so
// alternating between two pencils never hits.
func TestFactorCacheEviction(t *testing.T) {
	sys, u := fracTestSystem(5, 19)
	cache := NewFactorCache(1)
	// Different T → different h → different key: two distinct pencils.
	spans := []float64{1.0, 2.0, 1.0, 2.0}
	for _, T := range spans {
		if _, err := Solve(sys, u, 32, T, Options{FactorCache: cache}); err != nil {
			t.Fatal(err)
		}
		if cache.Len() != 1 {
			t.Fatalf("capacity-1 cache holds %d entries", cache.Len())
		}
	}
	hits, _, misses := cache.Stats()
	if hits != 0 || misses != len(spans) {
		t.Fatalf("alternating pencils: hits=%d misses=%d, want 0/%d", hits, misses, len(spans))
	}
	// Repeating the last span now hits: the entry survived.
	if _, err := Solve(sys, u, 32, 2.0, Options{FactorCache: cache}); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := cache.Stats(); hits != 1 {
		t.Fatalf("repeat of resident pencil: hits=%d, want 1", hits)
	}
}

// The key fingerprints matrix *contents*, not identity: mutating a
// coefficient in place must miss (a stale hit would silently solve the old
// circuit), and restoring the original value must hit again.
func TestFactorCacheMutationCannotHit(t *testing.T) {
	sys, u := fracTestSystem(5, 29)
	cache := NewFactorCache(8)
	solve := func() { // same system object every time; only Val contents change
		t.Helper()
		if _, err := Solve(sys, u, 32, 1, Options{FactorCache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	solve()
	orig := sys.Terms[0].Coeff.Val[0]
	sys.Terms[0].Coeff.Val[0] = orig * 1.5
	solve()
	hits, _, misses := cache.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("after in-place mutation: hits=%d misses=%d, want 0/2", hits, misses)
	}
	sys.Terms[0].Coeff.Val[0] = orig
	solve()
	if hits, _, _ := cache.Stats(); hits != 1 {
		t.Fatalf("after restoring contents: hits=%d, want 1", hits)
	}
}

// Adaptive grids route their per-step factorizations through the shared
// cache: a repeat run over the same step ladder is served entirely from
// cache, and results stay bitwise-identical.
func TestFactorCacheServesAdaptiveGrids(t *testing.T) {
	sys, u := fracTestSystem(4, 37)
	steps := []float64{0.05, 0.08, 0.12, 0.2, 0.3, 0.45}
	want, err := SolveAdaptive(sys, u, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewFactorCache(8)
	if _, err := SolveAdaptive(sys, u, steps, Options{FactorCache: cache}); err != nil {
		t.Fatal(err)
	}
	_, _, missesFirst := cache.Stats()
	got, err := SolveAdaptive(sys, u, steps, Options{FactorCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	sameDense(t, "adaptive cached", got.Coefficients(), want.Coefficients())
	hits, _, misses := cache.Stats()
	if misses != missesFirst {
		t.Fatalf("repeat adaptive run refactored: misses %d -> %d", missesFirst, misses)
	}
	if hits < missesFirst {
		t.Fatalf("repeat adaptive run: hits=%d, want >= %d", hits, missesFirst)
	}
	// Distinct options that steer factorization get distinct keys.
	if _, err := Solve(sys, u, 48, 1, Options{FactorCache: cache, Refine: true}); err != nil {
		t.Fatal(err)
	}
	_, _, misses2 := cache.Stats()
	if misses2 != misses+1 {
		t.Fatalf("Refine toggle should miss: misses %d -> %d", misses, misses2)
	}
}

// Waveform variation over a shared pencil — the sweep shape — is the cache's
// target workload: K solves, 1 miss, K−1 hits.
func TestFactorCacheSweepWorkload(t *testing.T) {
	sys, _ := fracTestSystem(5, 43)
	cache := NewFactorCache(0)
	const k = 6
	for s := 0; s < k; s++ {
		u := []waveform.Signal{waveform.Sine(1+0.1*float64(s), 1, 0)}
		if _, err := Solve(sys, u, 32, 1, Options{FactorCache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	hits, _, misses := cache.Stats()
	if misses != 1 || hits != k-1 {
		t.Fatalf("sweep: hits=%d misses=%d, want %d/1", hits, misses, k-1)
	}
}
