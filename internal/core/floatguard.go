package core

// Intentional exact float comparisons are routed through these named guards
// so the intent survives refactors; the floateq rule (cmd/opm-lint) flags raw
// float ==/!= everywhere else.

// isExactZero reports whether v is exactly ±0. Used for sparsity skips and
// unset-option sentinels (Tol == 0 means "use the default"), never as a
// tolerance test.
func isExactZero(v float64) bool { return v == 0 }

// isExactEq reports whether a and b are identical real values. Used to
// discriminate exact integer orders (Order == 1 selects the classic
// derivative path), never as a closeness test.
func isExactEq(a, b float64) bool { return a == b }
