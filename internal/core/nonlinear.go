package core

import (
	"context"
	"fmt"
	"math"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// Nonlinearity is a static (memoryless) state nonlinearity g(x) appearing on
// the left-hand side of the system:
//
//	Σ_k E_k·d^{α_k}x + g(x(t)) = B·u(t).
//
// Circuit-wise this covers diodes and other resistive nonlinear elements,
// whose currents depend on the instantaneous node voltages.
type Nonlinearity interface {
	// Eval writes g(x) into out (len n each).
	Eval(x, out []float64)
	// StampJacobian accumulates ∂g/∂x at x into the assembly buffer.
	StampJacobian(x []float64, jac *sparse.COO)
}

// NonlinearOptions configures SolveNonlinear.
type NonlinearOptions struct {
	Options
	// MaxNewton bounds the Newton iterations per column (default 50).
	MaxNewton int
	// Tol is the Newton convergence tolerance on ‖δx‖/(1+‖x‖)
	// (default 1e-10).
	Tol float64
	// NoDamping disables the Armijo backtracking line search and applies
	// full Newton steps unconditionally (the pre-hardening behavior).
	NoDamping bool
}

// maxArmijoHalvings bounds the backtracking line search: the damped step
// reaches 2⁻⁸ ≈ 0.4% of the Newton direction before the iteration accepts
// the smallest trial and moves on.
const maxArmijoHalvings = 8

// armijoC is the sufficient-decrease constant: a trial step t·δ is accepted
// when ‖F(x − t·δ)‖ ≤ (1 − armijoC·t)·‖F(x)‖.
const armijoC = 1e-4

// SolveNonlinear simulates Σ_k E_k·d^{α_k}x + g(x) = B·u over [0, T) with m
// uniform block-pulse intervals. Because g is static and BPFs are constant
// per interval, collocation gives one nonlinear algebraic system per column,
//
//	M₀·x_j + g(x_j) = B·u_j − Σ_k E_k·s_j⁽ᵏ⁾,
//
// solved by damped Newton with an exact sparse Jacobian M₀ + ∂g/∂x: each
// Newton direction is scaled by an Armijo backtracking line search (at most
// maxArmijoHalvings halvings), which keeps stiff exponential nonlinearities
// such as diodes from overflowing on the first iterations. The history
// machinery is identical to the linear Solve.
func SolveNonlinear(sys *System, g Nonlinearity, u []waveform.Signal, m int, T float64, opt NonlinearOptions) (*Solution, error) {
	return SolveNonlinearCtx(context.Background(), sys, g, u, m, T, opt)
}

// SolveNonlinearCtx is SolveNonlinear with cancellation; see SolveCtx for
// the contract.
func SolveNonlinearCtx(ctx context.Context, sys *System, g Nonlinearity, u []waveform.Signal, m int, T float64, opt NonlinearOptions) (_ *Solution, err error) {
	rep := opt.report()
	defer func() { rep.Err = err }()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("core: SolveNonlinear requires a nonlinearity (use Solve)")
	}
	if opt.X0 != nil {
		return nil, fmt.Errorf("core: SolveNonlinear does not support X0")
	}
	if opt.MaxNewton <= 0 {
		opt.MaxNewton = 50
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	bpf, err := basis.NewBPF(m, T)
	if err != nil {
		return nil, err
	}
	uc, err := expandInputs(sys, u, bpf)
	if err != nil {
		return nil, err
	}
	if !isExactZero(sys.BOrder) {
		uc = applyInputOrder(uc, bpf.DiffCoeffs(sys.BOrder))
	}
	n := sys.N()
	coeffs := make([][]float64, len(sys.Terms))
	for k, t := range sys.Terms {
		coeffs[k] = bpf.DiffCoeffs(t.Order)
	}
	m0, err := assembleLeading(sys, func(k int) float64 { return coeffs[k][0] })
	if err != nil {
		return nil, err
	}
	hist := make([]*intHistory, len(sys.Terms))
	eng, err := newHistoryEngine(n, m, &opt.Options)
	if err != nil {
		return nil, err
	}
	eng.setGuards(ctx, &opt.Options)
	for k, t := range sys.Terms {
		switch {
		case isExactZero(t.Order):
		case isExactEq(t.Order, float64(int(t.Order))):
			hist[k] = newIntHistory(int(t.Order), bpf.Step(), n)
		default:
			eng.addToeplitz(k, coeffs[k])
		}
	}
	if len(eng.terms) > 0 {
		rep.HistoryEngine = eng.modeName()
	}

	// residAt writes M₀·x + g(x) − rhs into out and returns its 2-norm.
	gval := make([]float64, n)
	residAt := func(x, rhs, out []float64) float64 {
		for i := range out {
			out[i] = -rhs[i]
		}
		m0.MulVecAdd(1, x, out)
		g.Eval(x, gval)
		s := 0.0
		for i := range out {
			out[i] += gval[i]
			s += out[i] * out[i]
		}
		return math.Sqrt(s)
	}

	h := bpf.Step()
	cols := make([][]float64, m)
	rhs := make([]float64, n)
	ucol := make([]float64, uc.Rows())
	resid := make([]float64, n)
	xj := make([]float64, n)
	xTrial := make([]float64, n)
	rTrial := make([]float64, n)
	for j := 0; j < m; j++ {
		tj := (float64(j) + 0.5) * h
		if err := ctx.Err(); err != nil {
			d := diag(ErrCancelled, j, tj)
			d.Cause = err
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.ColumnDelay != nil {
			opt.Fault.ColumnDelay(j)
		}
		for i := range rhs {
			rhs[i] = 0
		}
		sys.B.MulVecAdd(1, ucColumnInto(ucol, uc, j), rhs)
		for k, t := range sys.Terms {
			switch {
			case isExactZero(t.Order):
				continue
			case hist[k] != nil:
				t.Coeff.MulVecAdd(-1, hist[k].current(), rhs)
			default:
				w, err := eng.history(k, j, cols)
				if err != nil {
					d := diag(engineErrKind(err), j, tj)
					d.Order = t.Order
					d.Cause = err
					return nil, d
				}
				t.Coeff.MulVecAdd(-1, w, rhs)
			}
		}
		// Warm start from the previous column.
		if j > 0 {
			copy(xj, cols[j-1])
		} else {
			for i := range xj {
				xj[i] = 0
			}
		}
		converged := false
		for it := 0; it < opt.MaxNewton; it++ {
			phi0 := residAt(xj, rhs, resid)
			// Jacobian = M₀ + ∂g/∂x, assembled sparse each iteration and run
			// through the same tiered factorization chain as the linear
			// pencils: a transiently singular Jacobian degrades to dense LU
			// or QR instead of aborting the whole run.
			jac := sparse.NewCOO(n, n)
			for r := 0; r < n; r++ {
				for p := m0.RowPtr[r]; p < m0.RowPtr[r+1]; p++ {
					jac.Add(r, m0.ColIdx[p], m0.Val[p])
				}
			}
			g.StampJacobian(xj, jac)
			fac, err := factorPencil(jac.ToCSR(), j, tj, &opt.Options, rep)
			if err != nil {
				var d *Diagnostic
				if de, ok := err.(*Diagnostic); ok {
					d = de
				} else {
					d = diag(ErrSingularPencil, j, tj)
					d.Cause = err
				}
				return nil, d
			}
			delta, err := fac.solve(resid)
			if err != nil {
				d := diag(ErrInternal, j, tj)
				d.Cause = err
				return nil, d
			}
			// Armijo backtracking: halve the step until the residual shows
			// sufficient decrease; after maxArmijoHalvings take the smallest
			// trial regardless, so a flat line search still makes progress.
			step := 1.0
			var phiTrial float64
			for halve := 0; ; halve++ {
				for i := range xTrial {
					xTrial[i] = xj[i] - step*delta[i]
				}
				phiTrial = residAt(xTrial, rhs, rTrial)
				if opt.NoDamping || phiTrial <= (1-armijoC*step)*phi0 || halve >= maxArmijoHalvings {
					break
				}
				step /= 2
				rep.NewtonDampings++
			}
			copy(xj, xTrial)
			// Convergence on the undamped Newton direction, as before the
			// damping existed: near the solution the full step satisfies
			// Armijo, so well-behaved problems see identical iterates.
			norm := 0.0
			xnorm := 0.0
			for i := range delta {
				norm += delta[i] * delta[i]
				xnorm += xj[i] * xj[i]
			}
			if norm <= opt.Tol*opt.Tol*(1+xnorm) {
				converged = true
				break
			}
		}
		if !converged {
			d := diag(ErrNonConvergence, j, tj)
			d.Cause = fmt.Errorf("Newton did not converge within %d iterations (after damped retries)", opt.MaxNewton)
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.CorruptColumn != nil {
			opt.Fault.CorruptColumn(j, xj)
		}
		if i := firstNonFinite(xj); i >= 0 {
			d := diag(ErrNonFinite, j, tj)
			d.Cause = fmt.Errorf("state %d is %g", i, xj[i])
			return nil, d
		}
		cols[j] = append([]float64(nil), xj...)
		rep.Columns++
		for k := range sys.Terms {
			if hist[k] != nil {
				hist[k].advance(cols[j])
			}
		}
	}
	x := mat.NewDense(n, m)
	for j, col := range cols {
		for i, v := range col {
			x.Set(i, j, v)
		}
	}
	return &Solution{sys: sys, bas: bpf, x: x}, nil
}
