package core

import (
	"fmt"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// Nonlinearity is a static (memoryless) state nonlinearity g(x) appearing on
// the left-hand side of the system:
//
//	Σ_k E_k·d^{α_k}x + g(x(t)) = B·u(t).
//
// Circuit-wise this covers diodes and other resistive nonlinear elements,
// whose currents depend on the instantaneous node voltages.
type Nonlinearity interface {
	// Eval writes g(x) into out (len n each).
	Eval(x, out []float64)
	// StampJacobian accumulates ∂g/∂x at x into the assembly buffer.
	StampJacobian(x []float64, jac *sparse.COO)
}

// NonlinearOptions configures SolveNonlinear.
type NonlinearOptions struct {
	Options
	// MaxNewton bounds the Newton iterations per column (default 50).
	MaxNewton int
	// Tol is the Newton convergence tolerance on ‖δx‖/(1+‖x‖)
	// (default 1e-10).
	Tol float64
}

// SolveNonlinear simulates Σ_k E_k·d^{α_k}x + g(x) = B·u over [0, T) with m
// uniform block-pulse intervals. Because g is static and BPFs are constant
// per interval, collocation gives one nonlinear algebraic system per column,
//
//	M₀·x_j + g(x_j) = B·u_j − Σ_k E_k·s_j⁽ᵏ⁾,
//
// solved by Newton with an exact sparse Jacobian M₀ + ∂g/∂x. The history
// machinery is identical to the linear Solve.
func SolveNonlinear(sys *System, g Nonlinearity, u []waveform.Signal, m int, T float64, opt NonlinearOptions) (*Solution, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("core: SolveNonlinear requires a nonlinearity (use Solve)")
	}
	if opt.X0 != nil {
		return nil, fmt.Errorf("core: SolveNonlinear does not support X0")
	}
	if opt.MaxNewton <= 0 {
		opt.MaxNewton = 50
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	bpf, err := basis.NewBPF(m, T)
	if err != nil {
		return nil, err
	}
	uc, err := expandInputs(sys, u, bpf)
	if err != nil {
		return nil, err
	}
	if sys.BOrder != 0 {
		uc = applyInputOrder(uc, bpf.DiffCoeffs(sys.BOrder))
	}
	n := sys.N()
	coeffs := make([][]float64, len(sys.Terms))
	for k, t := range sys.Terms {
		coeffs[k] = bpf.DiffCoeffs(t.Order)
	}
	m0, err := assembleLeading(sys, func(k int) float64 { return coeffs[k][0] })
	if err != nil {
		return nil, err
	}
	hist := make([]*intHistory, len(sys.Terms))
	eng := newHistoryEngine(n, m, opt.Workers, opt.HistoryNaive)
	for k, t := range sys.Terms {
		switch {
		case t.Order == 0:
		case t.Order == float64(int(t.Order)):
			hist[k] = newIntHistory(int(t.Order), bpf.Step(), n)
		default:
			eng.addToeplitz(k, coeffs[k])
		}
	}

	cols := make([][]float64, m)
	rhs := make([]float64, n)
	gval := make([]float64, n)
	resid := make([]float64, n)
	xj := make([]float64, n)
	for j := 0; j < m; j++ {
		for i := range rhs {
			rhs[i] = 0
		}
		sys.B.MulVecAdd(1, ucColumn(uc, j), rhs)
		for k, t := range sys.Terms {
			switch {
			case t.Order == 0:
				continue
			case hist[k] != nil:
				t.Coeff.MulVecAdd(-1, hist[k].current(), rhs)
			default:
				t.Coeff.MulVecAdd(-1, eng.history(k, j, cols), rhs)
			}
		}
		// Warm start from the previous column.
		if j > 0 {
			copy(xj, cols[j-1])
		} else {
			for i := range xj {
				xj[i] = 0
			}
		}
		converged := false
		for it := 0; it < opt.MaxNewton; it++ {
			// resid = M₀·x + g(x) − rhs.
			for i := range resid {
				resid[i] = -rhs[i]
			}
			m0.MulVecAdd(1, xj, resid)
			g.Eval(xj, gval)
			for i := range resid {
				resid[i] += gval[i]
			}
			// Jacobian = M₀ + ∂g/∂x, assembled sparse each iteration.
			jac := sparse.NewCOO(n, n)
			for r := 0; r < n; r++ {
				for p := m0.RowPtr[r]; p < m0.RowPtr[r+1]; p++ {
					jac.Add(r, m0.ColIdx[p], m0.Val[p])
				}
			}
			g.StampJacobian(xj, jac)
			fac, err := sparse.Factor(jac.ToCSR(), sparse.Options{PivotTol: opt.PivotTol})
			if err != nil {
				return nil, fmt.Errorf("core: Newton Jacobian singular at column %d: %w", j, err)
			}
			delta := fac.Solve(resid)
			norm := 0.0
			xnorm := 0.0
			for i := range xj {
				xj[i] -= delta[i]
				norm += delta[i] * delta[i]
				xnorm += xj[i] * xj[i]
			}
			if norm <= opt.Tol*opt.Tol*(1+xnorm) {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("core: Newton failed to converge at column %d (t≈%g)", j, (float64(j)+0.5)*bpf.Step())
		}
		cols[j] = append([]float64(nil), xj...)
		for k := range sys.Terms {
			if hist[k] != nil {
				hist[k].advance(cols[j])
			}
		}
	}
	x := mat.NewDense(n, m)
	for j, col := range cols {
		for i, v := range col {
			x.Set(i, j, v)
		}
	}
	return &Solution{sys: sys, bas: bpf, x: x}, nil
}
