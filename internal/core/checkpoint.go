package core

import (
	"errors"
	"fmt"
	"math"

	"opmsim/internal/basis"
)

// Checkpointable solves.
//
// Every piece of solver state that outlives a column — the integer-order
// recurrence lags, the exact tier's chunk-head accumulators, the FFT tier's
// fired segment spectra — is a deterministic, worker-invariant function of
// the committed solution columns. A checkpoint therefore stores only the raw
// committed column slabs (the shifted variable z = x − x0 exactly as the
// solver keeps it in its xbuf), and resuming replays the cheap state
// reconstruction in the same floating-point operation order the original run
// used. The replayed run then continues with bit-for-bit the operands an
// uninterrupted run would have seen, so a resumed SolveBatch emits
// Float64bits-identical columns from the resume point onward.
//
// Two structural facts make the replay exact rather than merely close:
//
//   - The exact history tier's chunk heads fold committed columns in
//     ascending column order into a single accumulator, and the tail fold
//     continues that same ascending order — so the head/tail split position
//     never changes the addition sequence. A fresh engine resuming at any
//     column j0 lazily rebuilds a head for chunk [j0, j0+chunk) whose block
//     boundaries differ from the original run's, yet every column's history
//     sum is the identical ascending fold. No head replay is needed at all.
//   - The FFT tier's segment firings are pure functions of (fire column,
//     committed columns): each firing accumulates into disjoint spectra rows
//     in ascending fire-column order. Replaying the firings below j0 in that
//     same order reproduces the accumulator bits exactly.
//
// The single-solve path (Solve/SolveCtx) is not checkpointable; run a
// one-scenario batch instead — SolveBatch with K = 1 is bitwise-identical to
// Solve by the batch determinism contract, and that is the configuration the
// service layer uses.

// ErrCheckpointMismatch reports a checkpoint offered to a solve (or a delta
// offered to a checkpoint) whose shape — state dimension, grid, span,
// scenario count, or resolved history engine — does not match.
var ErrCheckpointMismatch = errors.New("core: checkpoint mismatch")

// Checkpoint is the accumulated resumable state of a batch solve: the
// committed column prefix of every scenario, plus the shape header that pins
// which solves it may resume. It is RNG-free and engine-complete — nothing
// beyond the slabs is needed to reconstruct solver state bit for bit.
//
// Slabs hold the solver's shifted variable (z = x − x0), not the
// client-visible state x; StateColumn applies the offset with the same
// operands the solver's own column hook uses.
type Checkpoint struct {
	// N, M, K are the state dimension, BPF grid size, and scenario count of
	// the solve this checkpoint belongs to.
	N, M, K int
	// T is the time span; compared via Float64bits, since a grid with the
	// same m but different span yields different coefficients.
	T float64
	// Engine is the resolved history-engine name of the originating solve:
	// "" (no fractional terms), "exact", "fft", or "naive". Resuming under a
	// different engine would change summation order, so it must match.
	Engine string
	// Columns is the number of committed columns: Slabs covers [0, Columns).
	Columns int
	// Slabs[s] holds scenario s's committed columns as one slab of
	// Columns*N float64s, column-major by column index (column j occupies
	// [j*N, (j+1)*N)) — the exact layout of the batch solver's xbuf prefix.
	Slabs [][]float64
}

// CheckpointDelta is the increment between two checkpoints: columns
// [From, To) of every scenario, emitted by BatchOptions.OnCheckpoint. The
// slab buffers are fresh copies owned by the receiver.
type CheckpointDelta struct {
	N, M, K  int
	T        float64
	Engine   string
	From, To int
	// Slabs[s] holds scenario s's columns [From, To) as (To-From)*N floats.
	Slabs [][]float64
}

// ApplyCheckpoint appends a delta to the checkpoint. An empty (zero-valued)
// checkpoint adopts the delta's shape header and requires From == 0;
// otherwise the delta must match the header and continue exactly at
// Columns. Errors wrap ErrCheckpointMismatch and leave the checkpoint
// unchanged.
func (cp *Checkpoint) ApplyCheckpoint(d *CheckpointDelta) error {
	if d.N <= 0 || d.K <= 0 || d.M <= 0 || len(d.Slabs) != d.K {
		return fmt.Errorf("%w: malformed delta header (n=%d m=%d k=%d slabs=%d)",
			ErrCheckpointMismatch, d.N, d.M, d.K, len(d.Slabs))
	}
	if d.From < 0 || d.To <= d.From || d.To > d.M {
		return fmt.Errorf("%w: delta range [%d,%d) outside grid of %d columns",
			ErrCheckpointMismatch, d.From, d.To, d.M)
	}
	want := (d.To - d.From) * d.N
	for s, slab := range d.Slabs {
		if len(slab) != want {
			return fmt.Errorf("%w: delta slab %d has %d values, want %d",
				ErrCheckpointMismatch, s, len(slab), want)
		}
	}
	if cp.N == 0 && cp.M == 0 && cp.K == 0 {
		cp.N, cp.M, cp.K, cp.T, cp.Engine = d.N, d.M, d.K, d.T, d.Engine
		cp.Slabs = make([][]float64, cp.K)
	}
	if cp.N != d.N || cp.M != d.M || cp.K != d.K ||
		math.Float64bits(cp.T) != math.Float64bits(d.T) || cp.Engine != d.Engine {
		return fmt.Errorf("%w: delta header (n=%d m=%d k=%d T=%g engine=%q) vs checkpoint (n=%d m=%d k=%d T=%g engine=%q)",
			ErrCheckpointMismatch, d.N, d.M, d.K, d.T, d.Engine, cp.N, cp.M, cp.K, cp.T, cp.Engine)
	}
	if d.From != cp.Columns {
		return fmt.Errorf("%w: delta starts at column %d, checkpoint has %d committed",
			ErrCheckpointMismatch, d.From, cp.Columns)
	}
	for s := range cp.Slabs {
		cp.Slabs[s] = append(cp.Slabs[s], d.Slabs[s]...)
	}
	cp.Columns = d.To
	return nil
}

// StateColumn writes scenario s's committed column j — including the x0
// offset — into dst, using the same operands and operation order as the
// solver's OnColumn hook, so the result is bitwise-identical to the column
// the original stream emitted. x0 may be nil (zero initial state).
func (cp *Checkpoint) StateColumn(dst []float64, s, j int, x0 []float64) error {
	if s < 0 || s >= cp.K || j < 0 || j >= cp.Columns {
		return fmt.Errorf("core: checkpoint column (s=%d, j=%d) outside committed (K=%d, columns=%d)",
			s, j, cp.K, cp.Columns)
	}
	if len(dst) != cp.N || (x0 != nil && len(x0) != cp.N) {
		return fmt.Errorf("core: checkpoint column buffers: dst=%d x0=%d, want %d", len(dst), len(x0), cp.N)
	}
	zj := cp.Slabs[s][j*cp.N : (j+1)*cp.N]
	if x0 == nil {
		// The solver adds x0 even when it is all zeros; z + 0 is not a
		// bitwise no-op (it normalizes -0), so mirror the addition.
		for i := range dst {
			dst[i] = zj[i] + 0
		}
		return nil
	}
	for i := range dst {
		dst[i] = zj[i] + x0[i]
	}
	return nil
}

// validateFor checks that the checkpoint can resume a solve with the given
// shape and resolved engine name.
func (cp *Checkpoint) validateFor(n, m, K int, T float64, engine string) error {
	if cp.N != n || cp.M != m || cp.K != K || math.Float64bits(cp.T) != math.Float64bits(T) {
		return fmt.Errorf("%w: checkpoint for (n=%d m=%d k=%d T=%g), solve is (n=%d m=%d k=%d T=%g)",
			ErrCheckpointMismatch, cp.N, cp.M, cp.K, cp.T, n, m, K, T)
	}
	if cp.Engine != engine {
		return fmt.Errorf("%w: checkpoint history engine %q, solve resolves to %q",
			ErrCheckpointMismatch, cp.Engine, engine)
	}
	if cp.Columns < 0 || cp.Columns > m {
		return fmt.Errorf("%w: checkpoint has %d committed columns on a %d-column grid",
			ErrCheckpointMismatch, cp.Columns, m)
	}
	if len(cp.Slabs) != K {
		return fmt.Errorf("%w: checkpoint has %d slabs for %d scenarios", ErrCheckpointMismatch, len(cp.Slabs), K)
	}
	for s, slab := range cp.Slabs {
		if len(slab) != cp.Columns*n {
			return fmt.Errorf("%w: checkpoint slab %d has %d values, want %d",
				ErrCheckpointMismatch, s, len(slab), cp.Columns*n)
		}
	}
	return nil
}

// PencilFingerprint returns a stable fingerprint of the leading pencil a
// solve of sys on an m-column grid over [0, T) would factor: the assembled
// M = Σ_k c₀⁽ᵏ⁾·E_k structure and values mixed with the step width and the
// maximum derivative order. Submissions with equal fingerprints hit the same
// factorization — the unit the service's circuit breaker trips on.
func PencilFingerprint(sys *System, m int, T float64) (uint64, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	bpf, err := basis.NewBPF(m, T)
	if err != nil {
		return 0, err
	}
	lead := make([]float64, len(sys.Terms))
	for k, t := range sys.Terms {
		lead[k] = bpf.DiffCoeffs(t.Order)[0]
	}
	msys, err := assembleLeading(sys, func(k int) float64 { return lead[k] })
	if err != nil {
		return 0, err
	}
	fp := fingerprintCSR(msys)
	fp = fpMix64(fp, math.Float64bits(bpf.Step()))
	fp = fpMix64(fp, math.Float64bits(sys.MaxOrder()))
	return fp, nil
}

// fpMix64 folds one 64-bit word into an FNV-1a style accumulator, matching
// the byte order fingerprintCSR uses for matrix values.
func fpMix64(h, v uint64) uint64 {
	const prime = 1099511628211
	for b := 0; b < 8; b++ {
		h ^= (v >> (8 * b)) & 0xff
		h *= prime
	}
	return h
}

// resumeBatch restores the batch solver's internal state to the end of the
// checkpoint's committed prefix: it prefills each scenario's column slab,
// replays the integer-order recurrences (scalar or panel-granular, matching
// the path the live loop will take), and refires the FFT tier's history
// segments. All replay work runs in the exact floating-point operation order
// of the original solve, so the continuation is bitwise-exact. Fan-out
// mirrors the solver's own: one task per scenario (or per group on the panel
// fast path).
func resumeBatch(sys *System, states []*scenState, groups []*batchGroup, cp *Checkpoint, n int) error {
	j0 := cp.Columns
	for s, st := range states {
		copy(st.xbuf[:j0*n], cp.Slabs[s])
		for j := 0; j < j0; j++ {
			st.cols[j] = st.xbuf[j*n : (j+1)*n : (j+1)*n]
		}
	}
	if j0 == 0 {
		return nil
	}
	if groups[0].fast {
		tasks := make([]func(), len(groups))
		for g, gr := range groups {
			gr := gr
			tasks[g] = func() { replayPanelGroup(sys, states, gr, n, j0) }
		}
		return historyPoolDo(tasks)
	}
	errs := make([]error, len(states))
	tasks := make([]func(), len(states))
	for s, st := range states {
		s, st := s, st
		tasks[s] = func() { errs[s] = replayScenario(sys, st, j0) }
	}
	if err := historyPoolDo(tasks); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// replayScenario rebuilds one scenario's general-path history state through
// column j0: the integer-order recurrences step column by column exactly as
// batchGroupColumn does (current then advance, terms in system order), and
// the history engine refires its FFT segments. The exact tier needs no
// replay — its chunk heads are split-position-invariant ascending folds that
// the engine rebuilds lazily on the first history call.
func replayScenario(sys *System, st *scenState, j0 int) error {
	for j := 0; j < j0; j++ {
		for k := range sys.Terms {
			if ih := st.hist[k]; ih != nil {
				ih.current()
				ih.advance(st.cols[j])
			}
		}
	}
	return st.eng.resumeAt(j0, st.cols)
}

// replayPanelGroup rebuilds one scenario group's panel-native history state
// through column j0, mirroring batchGroupColumnPanel's per-column sequence —
// recurrence current(), solution-panel claim and gather, lag-ring rotation,
// recurrence advance() — minus the solve itself (the committed columns are
// gathered from the checkpointed slabs instead).
func replayPanelGroup(sys *System, states []*scenState, gr *batchGroup, n, j0 int) {
	w := gr.hi - gr.lo
	for j := 0; j < j0; j++ {
		for k := range sys.Terms {
			if gr.hist[k] != nil {
				gr.hist[k].current(gr.xlags)
			}
		}
		xcur := gr.xpool[0]
		gr.xpool = gr.xpool[1:]
		xd := xcur.Data()
		for s := gr.lo; s < gr.hi; s++ {
			xj := states[s].cols[j]
			for i := 0; i < n; i++ {
				xd[i*w+(s-gr.lo)] = xj[i]
			}
		}
		if gr.maxLag > 0 {
			if len(gr.xlags) == gr.maxLag {
				gr.xpool = append(gr.xpool, gr.xlags[gr.maxLag-1])
				copy(gr.xlags[1:], gr.xlags[:gr.maxLag-1])
			} else {
				gr.xlags = append(gr.xlags, nil)
				copy(gr.xlags[1:], gr.xlags[:len(gr.xlags)-1])
			}
			gr.xlags[0] = xcur
		} else {
			gr.xpool = append(gr.xpool, xcur)
		}
		for k := range gr.hist {
			if gr.hist[k] != nil {
				gr.hist[k].advance()
			}
		}
	}
}

// resumeAt replays the engine-internal history state a run committed through
// column j0 would hold. Only the FFT tier carries state that must be rebuilt
// eagerly: every segment firing strictly below j0 is refired in ascending
// fire-column order (the chronological order of the original run), restoring
// the spectra accumulators bit for bit. A firing due at j0 itself happens
// live when the loop solves column j0. The exact tier's chunk heads rebuild
// lazily (see replayScenario); the naive tier holds no state.
func (e *historyEngine) resumeAt(j0 int, cols [][]float64) error {
	if j0 == 0 || e.naive {
		return nil
	}
	for _, t := range e.orderedTerms() {
		if t.fft == nil {
			continue
		}
		for c := e.fftBase; c < j0; c += e.fftBase {
			t.fft.fired = c
			if err := e.fireSegment(t, c, cols); err != nil {
				return err
			}
		}
	}
	return nil
}
