package core

import (
	"container/list"
	"math"
	"sync"

	"opmsim/internal/sparse"
)

// DefaultFactorCacheCap is the entry capacity NewFactorCache uses when the
// caller passes a non-positive capacity. Sixteen covers the step-size ladder
// of an adaptive run (maxStepRetries halvings plus the controller's usual
// working set) and typical sweep cardinalities without hoarding factor memory.
const DefaultFactorCacheCap = 16

// FactorCache is a process-shareable LRU cache of leading-pencil
// factorizations, keyed by the *contents* of the assembled pencil (an FNV-1a
// fingerprint over the CSR structure and Float64bits of the values) together
// with the step size h, the dominant fractional order α, and every Options
// field that steers the factorization tier chain (pivot tolerance, condition
// limit, refinement). Keying by contents rather than identity means mutating
// a matrix in place and re-solving can never return the stale factorization —
// the fingerprint changes with the values — while re-assembling an identical
// pencil (a repeated sweep point, an adaptive halved-h retry revisiting a
// step size, the K scenarios of a batch) hits.
//
// Cached entries are templates: every request is served through a fresh
// per-run view (sparse.Factorization.Share) whose solve scratch is private,
// so runs on different goroutines can solve through the same cached factors
// concurrently. The factor arrays themselves are immutable after
// construction. A cache attached to Options.FactorCache is consulted by
// Solve, SolveAdaptive, SolveAdaptiveAuto, and SolveBatch; hit/miss counts
// are mirrored into each run's SolveReport.
type FactorCache struct {
	mu         sync.Mutex
	cap        int
	order      *list.List // front = most recently used; values are *factorEntry
	byKey      map[factorKey]*list.Element
	hits       int
	updateHits int
	misses     int
}

// factorKey identifies one factorization-equivalent pencil configuration.
// Floats are stored as bit patterns so key equality is exact bit equality
// (and NaN-proof), mirroring the bitwise-determinism contract of the solvers.
type factorKey struct {
	fp        uint64 // content fingerprint of the assembled pencil
	n, nnz    int
	hBits     uint64 // step size h
	alphaBits uint64 // dominant fractional order α
	pivotTol  uint64
	condLimit uint64
	refine    bool
	// Supernodal-tier steering: engagement changes which tier factors, so two
	// configurations differing here must not share an entry.
	supernodal int
	snMinN     int
}

// factorEntry couples the cached template with the fallback record to replay
// into the report of every run the entry serves, so a hit still documents
// which tier is solving.
type factorEntry struct {
	key      factorKey
	pf       *pencilFactor // template: report-less, scratch-less
	fallback *Fallback     // non-nil when the template sits below sparse LU
}

// NewFactorCache returns an empty cache holding at most capacity
// factorizations (DefaultFactorCacheCap when capacity ≤ 0).
func NewFactorCache(capacity int) *FactorCache {
	if capacity <= 0 {
		capacity = DefaultFactorCacheCap
	}
	return &FactorCache{cap: capacity, order: list.New(), byKey: map[factorKey]*list.Element{}}
}

// Stats returns the cumulative counts of the three ways a factorization
// request was served: hits (a cached pencil factorization reused as-is),
// updateHits (a cached base factorization reused through the SMW UpdatedSolve
// tier — a low-rank Woodbury correction instead of a refactorization), and
// misses (a fresh factorization built and cached).
func (c *FactorCache) Stats() (hits, updateHits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.updateHits, c.misses
}

// noteUpdateHit counts one scenario served through the SMW update tier
// against a cached base factorization.
func (c *FactorCache) noteUpdateHit() {
	c.mu.Lock()
	c.updateHits++
	c.mu.Unlock()
}

// Len returns the number of cached factorizations.
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// lookup returns the entry for key (promoting it to most recently used) or
// nil, counting the hit or miss.
func (c *FactorCache) lookup(key factorKey) *factorEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*factorEntry)
	}
	c.misses++
	return nil
}

// store inserts (or refreshes) an entry, evicting from the LRU tail beyond
// capacity.
func (c *FactorCache) store(e *factorEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.byKey[e.key] = c.order.PushFront(e)
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(*factorEntry).key)
	}
}

// fingerprintCSR folds the full contents of a — dimensions, row structure,
// column indices, and the exact bit patterns of the values — into a 64-bit
// FNV-1a hash. O(nnz) per call, which is noise next to a factorization.
func fingerprintCSR(a *sparse.CSR) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(a.R))
	mix(uint64(a.C))
	for _, p := range a.RowPtr {
		mix(uint64(p))
	}
	for _, ci := range a.ColIdx {
		mix(uint64(ci))
	}
	for _, v := range a.Val {
		mix(math.Float64bits(v))
	}
	return h
}

// cacheKey builds the lookup key for pencil a under the given step size,
// dominant order, and factorization-relevant options.
func cacheKey(a *sparse.CSR, h, alpha float64, opt *Options) factorKey {
	return factorKey{
		fp:         fingerprintCSR(a),
		n:          a.R,
		nnz:        a.NNZ(),
		hBits:      math.Float64bits(h),
		alphaBits:  math.Float64bits(alpha),
		pivotTol:   math.Float64bits(opt.PivotTol),
		condLimit:  math.Float64bits(opt.CondLimit),
		refine:     opt.Refine,
		supernodal: opt.Supernodal,
		snMinN:     opt.SupernodalMinN,
	}
}

// template returns a report-less, scratch-less copy of pf suitable for
// caching: the sparse factorization is detached via Share so the template is
// never written to (its lazily-sized scratch stays nil forever), making later
// concurrent Share calls from cache hits race-free.
func (pf *pencilFactor) template() *pencilFactor {
	t := &pencilFactor{tier: pf.tier, dense: pf.dense, qr: pf.qr, a: pf.a, cond: pf.cond, factorNS: pf.factorNS}
	if pf.sp != nil {
		t.sp = pf.sp.Share()
	}
	if pf.bbd != nil {
		t.bbd = pf.bbd.Share()
	}
	return t
}

// instantiate returns a per-run view of a cached template: shared immutable
// factors, private solve scratch, and the given report receiving the tier
// accounting. Solves through an instance are bitwise-identical to solves
// through the originally built factorization.
func (pf *pencilFactor) instantiate(rep *SolveReport) *pencilFactor {
	inst := &pencilFactor{tier: pf.tier, dense: pf.dense, qr: pf.qr, a: pf.a, cond: pf.cond, factorNS: pf.factorNS, report: rep}
	if pf.sp != nil {
		inst.sp = pf.sp.Share()
	}
	if pf.bbd != nil {
		inst.bbd = pf.bbd.Share()
	}
	return inst
}

// factorPencilCached is factorPencil behind Options.FactorCache: a hit reuses
// the cached factorization through a fresh view (replaying its fallback
// record and condition estimate into this run's report); a miss factors,
// serves, and caches a template. With no cache attached — or with
// factorization fault injection active, whose per-call hooks a cached entry
// would bypass — it degrades to plain factorPencil.
func factorPencilCached(a *sparse.CSR, h, alpha float64, col int, t float64, opt *Options, rep *SolveReport) (*pencilFactor, error) {
	c := opt.FactorCache
	if c == nil || (opt.Fault != nil && opt.Fault.FactorFail != nil) {
		return factorPencil(a, col, t, opt, rep)
	}
	key := cacheKey(a, h, alpha, opt)
	if e := c.lookup(key); e != nil {
		rep.FactorCacheHits++
		rep.observeCond(e.pf.cond)
		if e.fallback != nil {
			fb := *e.fallback
			fb.Column = col
			rep.Fallbacks = append(rep.Fallbacks, fb)
		}
		return e.pf.instantiate(rep), nil
	}
	rep.FactorCacheMisses++
	pf, err := factorPencil(a, col, t, opt, rep)
	if err != nil {
		return nil, err
	}
	e := &factorEntry{key: key, pf: pf.template()}
	if pf.tier != TierSparseLU && len(rep.Fallbacks) > 0 {
		fb := rep.Fallbacks[len(rep.Fallbacks)-1]
		fb.Reason += " (cached)"
		e.fallback = &fb
	}
	c.store(e)
	return pf, nil
}
