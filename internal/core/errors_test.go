package core

// Tests for the validation edges and the typed-diagnostic plumbing that the
// happy-path suites never reach.

import (
	"errors"
	"math"
	"strings"
	"testing"

	"opmsim/internal/basis"
	"opmsim/internal/waveform"
)

func TestExpandInputsValidation(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	bpf, err := basis.NewBPF(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := expandInputs(sys, nil, bpf); err == nil {
		t.Fatal("accepted a nil signal slice for a 1-input system")
	}
	if _, err := expandInputs(sys, []waveform.Signal{waveform.Zero(), waveform.Zero()}, bpf); err == nil {
		t.Fatal("accepted too many signals")
	}
	if _, err := expandInputs(sys, []waveform.Signal{nil}, bpf); err == nil {
		t.Fatal("accepted a nil signal")
	}
}

func TestPrepareInitialStateValidation(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	if _, _, err := prepareInitialState(sys, []float64{1, 2}); err == nil {
		t.Fatal("accepted X0 of the wrong length")
	}
	frac := &System{
		Terms: []Term{
			{Order: 0.5, Coeff: scalarCSR(1)},
			{Order: 0, Coeff: scalarCSR(1)},
		},
		B: scalarCSR(1),
	}
	if _, _, err := prepareInitialState(frac, []float64{1}); err == nil {
		t.Fatal("accepted nonzero X0 for a fractional system")
	}
	// nil X0 is the zero-IC fast path: zero offset and shift.
	off, shift, err := prepareInitialState(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if off[0] != 0 || shift[0] != 0 {
		t.Fatalf("zero-IC path returned offset %v, shift %v", off, shift)
	}
}

// MaxSteps exhaustion is a controller give-up, so it must carry the
// ErrNonConvergence taxonomy kind.
func TestSolveAdaptiveAutoMaxStepsIsNonConvergence(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	_, _, err := SolveAdaptiveAuto(sys, []waveform.Signal{waveform.Sine(1, 50, 0)}, 10,
		AdaptiveOptions{Tol: 1e-12, MaxSteps: 8})
	if !errors.Is(err, ErrNonConvergence) {
		t.Fatalf("errors.Is(err, ErrNonConvergence) is false; err = %v", err)
	}
	var d *Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("not a *Diagnostic: %v", err)
	}
	if d.Column != 8 {
		t.Fatalf("Column = %d, want MaxSteps = 8", d.Column)
	}
}

func TestDiagnosticFormattingAndUnwrap(t *testing.T) {
	cause := errors.New("low-level detail")
	d := diag(ErrIllConditioned, 12, 0.25)
	d.Order = 0.5
	d.Cond = 1e15
	d.Cause = cause
	msg := d.Error()
	for _, want := range []string{"ill-conditioned", "column 12", "t≈0.25", "order 0.5", "1e+15", "low-level detail"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
	if !errors.Is(d, ErrIllConditioned) || !errors.Is(d, cause) {
		t.Fatal("Unwrap does not expose both the kind and the cause")
	}
	if errors.Is(d, ErrSingularPencil) {
		t.Fatal("matched the wrong sentinel")
	}
	// Column −1 (shared factorization) and NaN time suppress the location.
	d2 := diag(ErrSingularPencil, -1, math.NaN())
	if msg := d2.Error(); strings.Contains(msg, "column") || strings.Contains(msg, "t≈") {
		t.Fatalf("shared-factorization diagnostic leaked a location: %q", msg)
	}
}

func TestSolveReportSummary(t *testing.T) {
	r := &SolveReport{Columns: 10, Factorizations: 2}
	r.TierSolves[TierSparseLU] = 8
	r.TierSolves[TierDenseLU] = 2
	r.Fallbacks = append(r.Fallbacks, Fallback{Column: -1, Tier: TierDenseLU, Reason: "test"})
	r.Warnings = append(r.Warnings, "w1")
	r.StepRetries = 3
	r.NewtonDampings = 4
	r.observeCond(1e9)
	r.observeCond(1e7) // must not lower the max
	s := r.Summary()
	for _, want := range []string{"10 columns", "sparse-LU=8", "dense-LU+refine=2", "1e+09", "3 step retries", "4 Newton dampings", "shared pencil", "w1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary() = %q, missing %q", s, want)
		}
	}
	if !r.Degraded() {
		t.Fatal("Degraded() = false with dense-tier solves")
	}
	if (&SolveReport{}).Degraded() {
		t.Fatal("empty report reports degradation")
	}
}
