package core

import (
	"fmt"
	"math/rand"
	"testing"

	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// batchScenarios builds K single-input scenarios with distinct waveforms, the
// "corner set sharing one pencil" shape SolveBatch exists for.
func batchScenarios(k int) []Scenario {
	scs := make([]Scenario, k)
	for s := range scs {
		amp := 0.5 + 0.25*float64(s)
		if s%3 == 0 {
			scs[s] = Scenario{U: []waveform.Signal{waveform.Step(amp, 0)}}
		} else {
			scs[s] = Scenario{U: []waveform.Signal{waveform.Sine(amp, 0.8+0.1*float64(s), 0.2)}}
		}
	}
	return scs
}

// Property (the batch determinism contract): SolveBatch over K scenarios is
// bitwise-identical, scenario by scenario, to K sequential Solve calls with
// the same Options — across worker counts and both history engines, on a
// mixed fractional/integer system with no recurrence shortcut.
func TestSolveBatchBitwiseMatchesSequential(t *testing.T) {
	sys, _ := fracTestSystem(6, 99)
	m, T := 160, 2.0
	scs := batchScenarios(7)
	for _, workers := range []int{1, 4} {
		for _, mode := range []HistoryMode{HistoryExact, HistoryFFT} {
			opt := Options{Workers: workers, HistoryMode: mode}
			sols, err := SolveBatch(sys, scs, m, T, BatchOptions{Options: opt, PanelWidth: 3})
			if err != nil {
				t.Fatalf("workers=%d mode=%s: %v", workers, mode, err)
			}
			for s, sc := range scs {
				want, err := Solve(sys, sc.U, m, T, opt)
				if err != nil {
					t.Fatalf("sequential scenario %d: %v", s, err)
				}
				name := fmt.Sprintf("workers=%d mode=%s scenario=%d", workers, mode, s)
				sameDense(t, name, sols[s].Coefficients(), want.Coefficients())
			}
		}
	}
}

// Scenarios may carry per-scenario initial states (integer orders only, as
// in Solve); the batch must match sequential solves with Options.X0 set.
func TestSolveBatchWithInitialStates(t *testing.T) {
	e := csrFrom(2, 2, []float64{1, 0, 0, 1})
	a := csrFrom(2, 2, []float64{-1, 0.2, 0.1, -1.5})
	b := csrFrom(2, 1, []float64{1, 0.5})
	sys, err := NewDAE(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	m, T := 128, 3.0
	scs := make([]Scenario, 5)
	for s := range scs {
		scs[s] = Scenario{
			U:  []waveform.Signal{waveform.Step(1, 0)},
			X0: []float64{0.1 * float64(s), -0.2 * float64(s)},
		}
	}
	sols, err := SolveBatch(sys, scs, m, T, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for s, sc := range scs {
		want, err := Solve(sys, sc.U, m, T, Options{X0: sc.X0})
		if err != nil {
			t.Fatal(err)
		}
		sameDense(t, fmt.Sprintf("scenario %d", s), sols[s].Coefficients(), want.Coefficients())
	}
}

// The scenario-group partition is a pure function of (K, PanelWidth), so
// every width must give the same bits — including widths of 1 (pure scalar
// fallback shape) and widths exceeding K.
func TestSolveBatchPanelWidthInvariance(t *testing.T) {
	sys, _ := fracTestSystem(5, 17)
	m, T := 96, 1.5
	scs := batchScenarios(6)
	ref, err := SolveBatch(sys, scs, m, T, BatchOptions{PanelWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 64} {
		sols, err := SolveBatch(sys, scs, m, T, BatchOptions{PanelWidth: w})
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		for s := range scs {
			sameDense(t, fmt.Sprintf("width=%d scenario=%d", w, s),
				sols[s].Coefficients(), ref[s].Coefficients())
		}
	}
}

// The batch report accounts one column and one tier solve per scenario per
// column, and mirrors the factorization cache counters.
func TestSolveBatchReportAccounting(t *testing.T) {
	sys, _ := fracTestSystem(4, 23)
	m, T := 64, 1.0
	scs := batchScenarios(3)
	cache := NewFactorCache(4)
	var rep SolveReport
	if _, err := SolveBatch(sys, scs, m, T, BatchOptions{
		Options: Options{Report: &rep, FactorCache: cache},
	}); err != nil {
		t.Fatal(err)
	}
	if rep.Columns != 3*m {
		t.Fatalf("Columns = %d, want %d", rep.Columns, 3*m)
	}
	total := 0
	for _, c := range rep.TierSolves {
		total += c
	}
	if total != 3*m {
		t.Fatalf("TierSolves total = %d, want %d", total, 3*m)
	}
	if rep.FactorCacheMisses != 1 || rep.FactorCacheHits != 0 {
		t.Fatalf("fresh cache: hits=%d misses=%d, want 0/1", rep.FactorCacheHits, rep.FactorCacheMisses)
	}
	// A second batch over the same pencil is served from the cache.
	var rep2 SolveReport
	if _, err := SolveBatch(sys, scs, m, T, BatchOptions{
		Options: Options{Report: &rep2, FactorCache: cache},
	}); err != nil {
		t.Fatal(err)
	}
	if rep2.FactorCacheHits != 1 || rep2.FactorCacheMisses != 0 {
		t.Fatalf("warm cache: hits=%d misses=%d, want 1/0", rep2.FactorCacheHits, rep2.FactorCacheMisses)
	}
}

// Input validation: scenario count, per-scenario input arity, and X0
// restrictions surface as errors naming the offending scenario.
func TestSolveBatchValidation(t *testing.T) {
	sys, _ := fracTestSystem(3, 31)
	if _, err := SolveBatch(sys, nil, 16, 1, BatchOptions{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	scs := []Scenario{{U: nil}}
	if _, err := SolveBatch(sys, scs, 16, 1, BatchOptions{}); err == nil {
		t.Fatal("scenario with missing inputs accepted")
	}
	// Fractional system rejects initial states, per scenario.
	scs = []Scenario{{U: []waveform.Signal{waveform.Zero()}, X0: []float64{1, 0, 0}}}
	if _, err := SolveBatch(sys, scs, 16, 1, BatchOptions{}); err == nil {
		t.Fatal("X0 on fractional system accepted")
	}
}

// intTestSystem builds an n-state all-integer-order system (orders 2, 1, 0)
// with input-derivative coupling — the shape that takes the batch engine's
// panel-native fast path (panel history recurrences, MulPanelAdd assembly).
func intTestSystem(n int, seed int64) (*System, []waveform.Signal) {
	rng := rand.New(rand.NewSource(seed))
	diag := func(base float64) *sparse.CSR {
		c := sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, base+0.1*rng.Float64())
			if j := rng.Intn(n); j != i {
				c.Add(i, j, 0.05*rng.NormFloat64())
			}
		}
		return c.ToCSR()
	}
	bcoo := sparse.NewCOO(n, 1)
	for i := 0; i < n; i++ {
		bcoo.Add(i, 0, rng.NormFloat64())
	}
	sys := &System{
		Terms: []Term{
			{Order: 2, Coeff: diag(1)},
			{Order: 1, Coeff: diag(0.6)},
			{Order: 0, Coeff: diag(4)},
		},
		B:      bcoo.ToCSR(),
		BOrder: 1,
	}
	return sys, []waveform.Signal{waveform.Sine(1, 0.8, 0.3)}
}

// The panel-native fast path (all-integer orders, second-order lag ring,
// BOrder input coupling) must also be bitwise-identical to sequential Solve
// calls — across worker counts and panel widths that split the scenario set
// unevenly.
func TestSolveBatchBitwiseIntegerFastPath(t *testing.T) {
	sys, _ := intTestSystem(7, 41)
	m, T := 160, 2.0
	scs := batchScenarios(9)
	for _, workers := range []int{1, 4} {
		for _, width := range []int{1, 4, 32} {
			sols, err := SolveBatch(sys, scs, m, T, BatchOptions{
				Options: Options{Workers: workers}, PanelWidth: width,
			})
			if err != nil {
				t.Fatalf("workers=%d width=%d: %v", workers, width, err)
			}
			for s, sc := range scs {
				want, err := Solve(sys, sc.U, m, T, Options{Workers: workers})
				if err != nil {
					t.Fatalf("sequential scenario %d: %v", s, err)
				}
				name := fmt.Sprintf("workers=%d width=%d scenario=%d", workers, width, s)
				sameDense(t, name, sols[s].Coefficients(), want.Coefficients())
			}
		}
	}
}
