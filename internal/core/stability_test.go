package core

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestPencilEigenvaluesSimpleODE(t *testing.T) {
	// ẋ = −2x: single eigenvalue −2.
	ev, err := PencilEigenvalues(scalarCSR(1), scalarCSR(-2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || cmplx.Abs(ev[0]-complex(-2, 0)) > 1e-9 {
		t.Fatalf("ev = %v, want [-2]", ev)
	}
}

func TestPencilEigenvaluesDAEFiltersInfinite(t *testing.T) {
	// ẋ₁ = −x₁; 0 = 2x₁ − x₂ → one finite eigenvalue −1, one infinite.
	e := csrFrom(2, 2, []float64{1, 0, 0, 0})
	a := csrFrom(2, 2, []float64{-1, 0, 2, -1})
	ev, err := PencilEigenvalues(e, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || cmplx.Abs(ev[0]-complex(-1, 0)) > 1e-9 {
		t.Fatalf("ev = %v, want [-1]", ev)
	}
}

func TestPencilEigenvaluesOscillator(t *testing.T) {
	// ẋ = [0 1; −ω² 0]x: eigenvalues ±iω.
	w := 3.0
	e := csrFrom(2, 2, []float64{1, 0, 0, 1})
	a := csrFrom(2, 2, []float64{0, 1, -w * w, 0})
	ev, err := PencilEigenvalues(e, a, 1) // σ=0 is fine too, use 1 for variety
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 {
		t.Fatalf("ev = %v", ev)
	}
	for _, v := range ev {
		if math.Abs(real(v)) > 1e-8 || math.Abs(math.Abs(imag(v))-w) > 1e-8 {
			t.Fatalf("ev = %v, want ±%gi", ev, w)
		}
	}
}

func TestSpectralAbscissaStableSystem(t *testing.T) {
	// Two decoupled modes −1 and −5: abscissa −1.
	e := csrFrom(2, 2, []float64{1, 0, 0, 1})
	a := csrFrom(2, 2, []float64{-1, 0, 0, -5})
	sys, _ := NewDAE(e, a, csrFrom(2, 1, []float64{1, 1}))
	abs, err := SpectralAbscissa(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(abs+1) > 1e-9 {
		t.Fatalf("spectral abscissa = %g, want −1", abs)
	}
}

func TestFractionalStableMatignon(t *testing.T) {
	// dᵅx = −x: eigenvalue −1, arg = π > απ/2 for any α < 2 → stable.
	sys, _ := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0.5)
	ok, err := FractionalStable(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fractional relaxation reported unstable")
	}
	// dᵅx = +x: eigenvalue +1, arg = 0 < απ/2 → unstable.
	bad, _ := NewFDE(scalarCSR(1), scalarCSR(1), scalarCSR(1), 0.5)
	ok, err = FractionalStable(bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fractional anti-relaxation reported stable")
	}
}

func TestFractionalStableSectorBoundary(t *testing.T) {
	// Oscillator pair ±iω has |arg| = π/2: stable for α < 1, unstable for
	// α > 1 (Matignon sector shrinks as α grows).
	e := csrFrom(2, 2, []float64{1, 0, 0, 1})
	a := csrFrom(2, 2, []float64{0, 1, -4, 0})
	b := csrFrom(2, 1, []float64{0, 1})
	mk := func(alpha float64) *System {
		s, err := NewFDE(e, a, b, alpha)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if ok, err := FractionalStable(mk(0.5), 1); err != nil || !ok {
		t.Fatalf("α=0.5 oscillator should be stable (err=%v)", err)
	}
	if ok, err := FractionalStable(mk(1.5), 1); err != nil || ok {
		t.Fatalf("α=1.5 oscillator should be unstable (err=%v)", err)
	}
}

func TestPencilValidation(t *testing.T) {
	if _, err := PencilEigenvalues(csrFrom(1, 1, []float64{1}), csrFrom(2, 2, []float64{1, 0, 0, 1}), 0); err == nil {
		t.Fatal("accepted mismatched pencil")
	}
	// σ exactly an eigenvalue → factorization failure.
	if _, err := PencilEigenvalues(scalarCSR(1), scalarCSR(2), 2); err == nil {
		t.Fatal("accepted σ equal to an eigenvalue")
	}
	// SpectralAbscissa rejects fractional terms.
	sys, _ := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0.5)
	if _, err := SpectralAbscissa(sys, 1); err == nil {
		t.Fatal("SpectralAbscissa accepted a fractional system")
	}
	// FractionalStable rejects mixed orders.
	mixed := &System{Terms: []Term{
		{Order: 0.5, Coeff: scalarCSR(1)},
		{Order: 1.5, Coeff: scalarCSR(1)},
		{Order: 0, Coeff: scalarCSR(1)},
	}, B: scalarCSR(1)}
	if _, err := FractionalStable(mixed, 1); err == nil {
		t.Fatal("FractionalStable accepted mixed orders")
	}
}

// Regression: a shift far above the whole spectrum maps every finite
// eigenvalue to a tiny μ = 1/(σ−λ); the drop threshold must be relative to
// max|μ| or all of them are wrongly classified as infinite.
func TestPencilEigenvaluesFarShift(t *testing.T) {
	ev, err := PencilEigenvalues(scalarCSR(1), scalarCSR(-1), 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || cmplx.Abs(ev[0]-complex(-1, 0)) > 1e-3 {
		t.Fatalf("far-shift eigenvalues = %v, want [-1]", ev)
	}
}
