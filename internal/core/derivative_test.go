package core

import (
	"math"
	"testing"

	"opmsim/internal/waveform"
)

func TestDerivativeAtFirstOrder(t *testing.T) {
	// ẋ = −x + u, step input: x = 1 − e^{−t}, ẋ = e^{−t}.
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	m, T := 2048, 3.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := T / float64(m)
	for j := 50; j < m; j += 211 {
		tt := (float64(j) + 0.5) * h
		got, err := sol.DerivativeAt(0, 1, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-tt)
		if math.Abs(got-want) > 5e-3 {
			t.Fatalf("ẋ(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestDerivativeAtZeroOrderIsState(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, 64, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sol.DerivativeAt(0, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != sol.StateAt(0, 0.5) {
		t.Fatal("β=0 derivative differs from state")
	}
}

func TestDerivativeAtNegativeOrderIntegrates(t *testing.T) {
	// ∫₀ᵗ x with x = 1 − e^{−τ}: t − 1 + e^{−t}.
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	m, T := 2048, 3.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := T / float64(m)
	for j := 100; j < m; j += 301 {
		tt := (float64(j) + 0.5) * h
		got, err := sol.DerivativeAt(0, -1, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := tt - 1 + math.Exp(-tt)
		if math.Abs(got-want) > 5e-3 {
			t.Fatalf("∫x at %g = %g, want %g", tt, got, want)
		}
	}
}

func TestDerivativeAtHalfOrderOfRamp(t *testing.T) {
	// Solve ẋ = u with ramp-producing input: x(t) = t for u = 1 (E=1, A=0).
	sys := &System{
		Terms: []Term{
			{Order: 1, Coeff: scalarCSR(1)},
			{Order: 0, Coeff: scalarCSR(0)},
		},
		B: scalarCSR(1),
	}
	m, T := 2048, 1.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// d^{1/2} t = 2√(t/π).
	for _, tt := range []float64{0.2, 0.5, 0.9} {
		got, err := sol.DerivativeAt(0, 0.5, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := 2 * math.Sqrt(tt/math.Pi)
		if math.Abs(got-want) > 2e-2 {
			t.Fatalf("d½x at %g = %g, want %g", tt, got, want)
		}
	}
}

func TestDerivativeAtOutOfRange(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, 16, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sol.DerivativeAt(0, 1, 5); err != nil || v != 0 {
		t.Fatalf("out-of-range derivative = %g, %v", v, err)
	}
}

func TestDerivativeAtRejectsAdaptive(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sol, err := SolveAdaptive(sys, []waveform.Signal{waveform.Step(1, 0)}, []float64{0.1, 0.2, 0.3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.DerivativeAt(0, 1, 0.1); err == nil {
		t.Fatal("DerivativeAt accepted an adaptive solution")
	}
}
