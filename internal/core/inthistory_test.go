package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// The integer-order fast history must reproduce the exact operational-matrix
// equation for p = 1, 2, 3 — checked through ResidualNorm, which rebuilds
// E·X·Dᵖ − B·U densely and therefore catches any recurrence error.
func TestIntegerFastHistoryResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 5 + rng.Intn(40)
		p := 1 + rng.Intn(3)
		ec, ac := sparse.NewCOO(n, n), sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			ec.Add(i, i, 1+rng.Float64())
			ac.Add(i, i, 1+rng.Float64())
			if j := rng.Intn(n); j != i {
				ac.Add(i, j, 0.2*rng.NormFloat64())
			}
		}
		bcoo := sparse.NewCOO(n, 1)
		for i := 0; i < n; i++ {
			bcoo.Add(i, 0, rng.NormFloat64())
		}
		sys := &System{
			Terms: []Term{
				{Order: float64(p), Coeff: ec.ToCSR()},
				{Order: 0, Coeff: ac.ToCSR()},
			},
			B: bcoo.ToCSR(),
		}
		u := []waveform.Signal{waveform.Sine(1, 0.25, 0.7)}
		sol, err := Solve(sys, u, m, 0.5+rng.Float64(), Options{})
		if err != nil {
			return false
		}
		res, err := ResidualNorm(sys, sol, u)
		if err != nil {
			return false
		}
		return res < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The p-term recurrence must agree with the naive Toeplitz history sum
// s_j = Σ_{i<j} c_{j−i}·x_i directly, for random column sequences and
// p ∈ {1,2,3} — this pins the recurrence itself, independent of any solve.
func TestIntHistoryRecurrenceMatchesToeplitzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 5 + rng.Intn(40)
		p := 1 + rng.Intn(3)
		T := 0.5 + rng.Float64()
		bpf, err := basis.NewBPF(m, T)
		if err != nil {
			return false
		}
		c := bpf.DiffCoeffs(float64(p))
		ih := newIntHistory(p, bpf.Step(), n)
		cols := make([][]float64, m)
		naive := make([]float64, n)
		for j := 0; j < m; j++ {
			for i := range naive {
				naive[i] = 0
			}
			for i := 0; i < j; i++ {
				mat.Axpy(c[j-i], cols[i], naive)
			}
			s := ih.current()
			// The recurrence coefficients grow like (2/h)ᵖ·C(p,k); compare
			// relative to the running magnitude.
			scale := 1 + mat.NormInf(naive)
			for i := range s {
				if math.Abs(s[i]-naive[i]) > 1e-10*scale {
					t.Logf("seed=%d n=%d m=%d p=%d j=%d i=%d: recurrence %g vs naive %g",
						seed, n, m, p, j, i, s[i], naive[i])
					return false
				}
			}
			xj := make([]float64, n)
			for i := range xj {
				xj[i] = rng.NormFloat64()
			}
			cols[j] = xj
			ih.advance(xj)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Mixed integer orders (a damped second-order system) must also satisfy the
// matrix equation exactly — all three terms use different history paths.
func TestMixedIntegerOrdersResidual(t *testing.T) {
	sys, err := NewSecondOrder(scalarCSR(1), scalarCSR(0.6), scalarCSR(4), scalarCSR(1))
	if err != nil {
		t.Fatal(err)
	}
	u := []waveform.Signal{waveform.Sine(1, 0.5, 0)}
	sol, err := Solve(sys, u, 48, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResidualNorm(sys, sol, u)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("mixed-order residual = %g", res)
	}
}
