package core

import (
	"math"
	"testing"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
	"opmsim/internal/specfn"
	"opmsim/internal/waveform"
)

func TestSolveAdaptiveRCDistinctSteps(t *testing.T) {
	// ẋ = −x + u with geometrically growing steps: the decay is fast early,
	// slow late, so growing steps fit it naturally.
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	var steps []float64
	h, total := 0.01, 0.0
	for total < 4 && len(steps) < 200 {
		steps = append(steps, h)
		total += h
		h *= 1.05
	}
	sol, err := SolveAdaptive(sys, []waveform.Signal{waveform.Step(1, 0)}, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate at interval midpoints (BPF coefficients are averages).
	edges := sol.Basis().(interface{ Edges() []float64 }).Edges()
	for j := 1; j < len(edges)-1; j += 13 {
		tt := (edges[j] + edges[j+1]) / 2
		want := 1 - math.Exp(-tt)
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 1e-3 {
			t.Fatalf("adaptive x(%g) = %g, want %g", tt, got, want)
		}
	}
}

// SolveAdaptive on a fractional system must satisfy the adaptive
// operational-matrix equation E·X·D̃ᵅ − A·X = B·U exactly (eq. 27 with D̃ᵅ of
// eq. 25): the column solver and a direct dense solve must agree. The
// Parlett-based D̃ᵅ is well-conditioned only for modest m with well-separated
// steps, so the test stays small — a documented limitation the paper's
// eigendecomposition method shares.
func TestSolveAdaptiveFractionalMatchesDense(t *testing.T) {
	e := csrFrom(2, 2, []float64{1, 0, 0, 2})
	a := csrFrom(2, 2, []float64{-1, 0.5, 0.2, -2})
	b := csrFrom(2, 1, []float64{1, 0.5})
	sys, err := NewFDE(e, a, b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	steps := []float64{0.05, 0.08, 0.12, 0.2, 0.3, 0.45, 0.7}
	u := []waveform.Signal{waveform.Sine(1, 0.4, 0.3)}
	sol, err := SolveAdaptive(sys, u, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the equation densely and verify the residual.
	ab, _ := basis.NewAdaptiveBPF(steps)
	dAlpha, err := ab.DiffMatrixAlpha(0.5)
	if err != nil {
		t.Fatal(err)
	}
	x := sol.Coefficients()
	lhs := mat.Sub(mat.Mul(e.ToDense(), mat.Mul(x, dAlpha)), mat.Mul(a.ToDense(), x))
	uc := mat.NewDense(1, len(steps))
	copy(uc.Row(0), ab.Expand(u[0]))
	rhs := mat.Mul(b.ToDense(), uc)
	if !mat.Equalf(lhs, rhs, 1e-8*(1+rhs.MaxAbs())) {
		t.Fatalf("adaptive fractional residual too large:\nlhs\n%v rhs\n%v", lhs, rhs)
	}
}

func TestSolveAdaptiveFractionalAccuracy(t *testing.T) {
	// Modest-m accuracy check against the Mittag-Leffler step response.
	sys, _ := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0.5)
	var steps []float64
	h, total := 0.01, 0.0
	for total < 1.5 && len(steps) < 40 {
		steps = append(steps, h)
		total += h
		h *= 1.18
	}
	sol, err := SolveAdaptive(sys, []waveform.Signal{waveform.Step(1, 0)}, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edges := sol.Basis().(interface{ Edges() []float64 }).Edges()
	for j := 4; j < len(steps); j += 5 {
		tt := (edges[j] + edges[j+1]) / 2
		ml, err := specfn.MittagLeffler(0.5, -math.Sqrt(tt))
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - ml
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 5e-2*(1+want) {
			t.Fatalf("adaptive fractional x(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestSolveAdaptiveFractionalRejectsRepeatedSteps(t *testing.T) {
	sys, _ := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0.5)
	steps := []float64{0.1, 0.1, 0.2}
	if _, err := SolveAdaptive(sys, []waveform.Signal{waveform.Zero()}, steps, Options{}); err == nil {
		t.Fatal("SolveAdaptive accepted repeated steps for a fractional system")
	}
}

func TestSolveAdaptiveRejectsX0(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	if _, err := SolveAdaptive(sys, []waveform.Signal{waveform.Zero()}, []float64{0.1, 0.2}, Options{X0: []float64{1}}); err == nil {
		t.Fatal("SolveAdaptive accepted X0")
	}
}

func TestSolveAdaptiveAutoTracksPulse(t *testing.T) {
	// A system driven by a sharp pulse: the controller should take small
	// steps around the pulse and large steps elsewhere.
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	u := waveform.Pulse(0, 1, 1.0, 0.01, 0.01, 0.3, 0)
	T := 4.0
	sol, stats, err := SolveAdaptiveAuto(sys, []waveform.Signal{u}, T, AdaptiveOptions{Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted == 0 {
		t.Fatal("controller accepted no steps")
	}
	steps := sol.Basis().(interface{ Steps() []float64 }).Steps()
	minH, maxH := math.Inf(1), 0.0
	for _, h := range steps {
		minH = math.Min(minH, h)
		maxH = math.Max(maxH, h)
	}
	if maxH/minH < 4 {
		t.Fatalf("controller did not adapt: min %g, max %g over %d steps", minH, maxH, len(steps))
	}
	// Accuracy check against a fine uniform solve.
	ref, err := Solve(sys, []waveform.Signal{u}, 8192, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5, 1.2, 1.5, 2.5, 3.5} {
		if d := math.Abs(sol.StateAt(0, tt) - ref.StateAt(0, tt)); d > 5e-3 {
			t.Fatalf("adaptive-auto x(%g) off by %g", tt, d)
		}
	}
}

func TestSolveAdaptiveAutoValidation(t *testing.T) {
	sys, _ := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0.5)
	if _, _, err := SolveAdaptiveAuto(sys, []waveform.Signal{waveform.Zero()}, 1, AdaptiveOptions{}); err == nil {
		t.Fatal("SolveAdaptiveAuto accepted fractional system")
	}
	dae, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	if _, _, err := SolveAdaptiveAuto(dae, []waveform.Signal{waveform.Zero()}, 0, AdaptiveOptions{}); err == nil {
		t.Fatal("SolveAdaptiveAuto accepted T=0")
	}
	if _, _, err := SolveAdaptiveAuto(dae, nil, 1, AdaptiveOptions{}); err == nil {
		t.Fatal("SolveAdaptiveAuto accepted missing inputs")
	}
}

func TestSolveAdaptiveAutoStepBudget(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	_, _, err := SolveAdaptiveAuto(sys, []waveform.Signal{waveform.Sine(1, 50, 0)}, 10,
		AdaptiveOptions{Tol: 1e-12, MaxSteps: 8})
	if err == nil {
		t.Fatal("SolveAdaptiveAuto ignored MaxSteps")
	}
}
