package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"opmsim/internal/faultinject"
	"opmsim/internal/mat"
)

// The history engine evaluates the per-term history sums of eq. (28),
//
//	w_j⁽ᵏ⁾ = Σ_{i<j} c⁽ᵏ⁾(i,j)·x_i,
//
// for the fractional/high-order terms whose Toeplitz (or adaptive-grid)
// coefficients admit no short recurrence — the O(nᵝm + nm²) part of the
// paper's §IV cost split. It restructures the computation without changing
// a single floating-point rounding:
//
//   - columns are processed in chunks of historyChunk; when a chunk begins,
//     the contribution of every already-solved column ("head") to each
//     column of the chunk is precomputed in one burst, tiled into
//     fixed-size blocks of past columns so a block of X stays cache-hot
//     while it is folded into all chunk columns;
//   - the head burst is fanned out over a process-wide worker pool, one
//     contiguous range of chunk columns per task, so two workers never
//     share an accumulator;
//   - inside the chunk, each column adds the remaining triangle ("tail")
//     serially, exactly as the reference loop would.
//
// Determinism: every accumulator is owned by exactly one task, and past
// columns are always folded in ascending index order — first the head
// (blocks visited in ascending order, ascending i within a block), then the
// tail. The floating-point additions therefore happen in the reference
// serial order regardless of block size, chunk size, or worker count: the
// engine is bitwise-identical to the naive column-by-column summation and
// to itself under any Options.Workers setting.
const (
	// historyChunk is the number of columns per head burst. Larger chunks
	// amortize pool synchronization but grow the serial tail; the tail is
	// an O(m·chunk/2) share of the O(m²/2) total, i.e. chunk/m of the work.
	historyChunk = 64
	// historyBlockTargetBytes sizes the past-column tile so a block of X
	// (block·n floats) stays within L1/L2 while it is reused across the
	// chunk columns of a task.
	historyBlockTargetBytes = 32 << 10
)

// historyPool is the process-wide worker pool shared by all history engines
// across Solve, SolveAdaptive, and SolveNonlinear calls. Goroutines are
// started once, sized to GOMAXPROCS, and parked on a channel between bursts.
var historyPool struct {
	once sync.Once
	jobs chan func()
}

// runRecovered runs f, converting a panic into an error instead of letting
// it unwind (and, on a pool goroutine, crash) the process.
func runRecovered(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("history worker panic: %v", r)
		}
	}()
	f()
	return nil
}

// historyPoolDo runs the tasks to completion, preferring pool goroutines and
// falling back to the calling goroutine when the pool is saturated. A panic
// inside any task is recovered and reported as the returned error (first one
// wins) rather than crashing the process; the remaining tasks still run, so
// the accumulators stay consistent for whoever inspects them post-mortem.
func historyPoolDo(tasks []func()) error {
	historyPool.once.Do(func() {
		n := runtime.GOMAXPROCS(0)
		historyPool.jobs = make(chan func(), n)
		for i := 0; i < n; i++ {
			go func() {
				for f := range historyPool.jobs {
					f()
				}
			}()
		}
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		run := func() {
			defer wg.Done()
			if err := runRecovered(t); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}
		select {
		case historyPool.jobs <- run:
		default:
			run()
		}
	}
	wg.Wait()
	return firstErr
}

// engineErrKind maps a history-engine error to its taxonomy sentinel:
// context expiry to ErrCancelled, recovered worker panics (and anything
// else) to ErrInternal.
func engineErrKind(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ErrCancelled
	}
	return ErrInternal
}

// historyTerm is one term's coefficient source plus its accumulators.
// Exactly one of toe/genCols is set: toe holds the uniform-grid Toeplitz
// coefficients (c(i,j) = toe[j−i]), genCols the transposed adaptive-grid
// operational matrix (c(i,j) = genCols.At(j,i) — stored column-major so the
// fold over past i indexes one contiguous slice, skipping exact zeros like
// the reference loop does). Toeplitz terms of an FFT-mode engine carry the
// fast-convolution state in fft instead of chunked head accumulators.
type historyTerm struct {
	key     int // registration key (System term index); names the term in shared caches
	toe     []float64
	genCols *mat.Dense
	head    [][]float64 // head sums for the current chunk, one n-vector per column
	fft     *fftHist    // segmented fast-convolution state (FFT tier only)
	w       []float64   // scratch returned by history()
}

// kernelCache shares FFT lag-kernel spectra across the per-scenario history
// engines of a batch: the K scenarios of SolveBatch have identical Toeplitz
// coefficients per term (same h, α, m), so the spectrum for (term, segment
// length) is computed once and reused instead of K times. Spectra are
// deterministic functions of the coefficients, so whether an engine computes
// or fetches one cannot change any bit of its results. Safe for concurrent
// use; stored slices are immutable after insertion.
type kernelCache struct {
	mu sync.Mutex
	m  map[kernelKey][]complex128
}

type kernelKey struct{ term, L int }

func newKernelCache() *kernelCache { return &kernelCache{m: map[kernelKey][]complex128{}} }

// get returns the cached spectrum for (term, L), or nil.
func (c *kernelCache) get(term, L int) []complex128 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[kernelKey{term, L}]
}

// put stores a freshly built spectrum. Concurrent builders of the same key
// store bitwise-identical slices, so last-write-wins is harmless.
func (c *kernelCache) put(term, L int, spec []complex128) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[kernelKey{term, L}] = spec
}

// historyEngine evaluates general (non-recurrence) history sums for a
// column-by-column solve. Columns must be consumed in order j = 0..m−1, and
// cols[0..j−1] must be solved before history(·, j, cols) is called.
type historyEngine struct {
	n, m    int
	workers int
	block   int
	naive   bool
	useFFT  bool // route new Toeplitz terms to the fast-convolution tier
	fftBase int  // FFT-tier base segment length (historyFFTBase; tests shrink it)
	chunkLo int  // first column of the current chunk
	terms   map[int]*historyTerm
	// order lists term keys in registration order. All term iteration goes
	// through it — never through the map — so task construction and head
	// zeroing are independent of map iteration order (maporder lint rule).
	order   []int
	kernels *kernelCache       // shared FFT kernel spectra (batch runs); may be nil
	ctx     context.Context    // checked at chunk/segment boundaries; may be nil
	fault   *faultinject.Hooks // optional injection hooks; may be nil
}

// setGuards attaches the cancellation context and fault-injection hooks the
// engine consults at chunk boundaries and inside worker tasks.
func (e *historyEngine) setGuards(ctx context.Context, opt *Options) {
	e.ctx = ctx
	e.fault = opt.Fault
}

// newHistoryEngine creates an engine for an n-state, m-column solve,
// resolving Options.Workers (≤ 0 means runtime.GOMAXPROCS(0)),
// Options.HistoryNaive (the reference column-by-column summation, used by
// benchmarks and cross-checks) and Options.HistoryMode (which routes
// Toeplitz terms to the FFT fast-convolution tier). The only error is an
// unrecognized HistoryMode.
func newHistoryEngine(n, m int, opt *Options) (*historyEngine, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	block := historyBlockTargetBytes / (8 * n)
	if block < 32 {
		block = 32
	}
	if block > 1024 {
		block = 1024
	}
	useFFT, err := opt.historyFFTEnabled(m)
	if err != nil {
		return nil, err
	}
	return &historyEngine{
		n: n, m: m,
		workers: workers,
		block:   block,
		naive:   opt.HistoryNaive,
		useFFT:  useFFT,
		fftBase: historyFFTBase,
		terms:   map[int]*historyTerm{},
	}, nil
}

// newTerm allocates a term's scratch: fast-convolution state when the term
// runs on the FFT tier, chunked head accumulators otherwise.
func (e *historyEngine) newTerm(useFFT bool) *historyTerm {
	t := &historyTerm{w: make([]float64, e.n)}
	if useFFT {
		t.fft = &fftHist{
			acc:   mat.NewDense(e.n, e.m),
			ker:   map[int][]complex128{},
			fired: -1,
		}
		return t
	}
	cc := historyChunk
	if cc > e.m {
		cc = e.m
	}
	t.head = make([][]float64, cc)
	for i := range t.head {
		t.head[i] = make([]float64, e.n)
	}
	return t
}

// addToeplitz registers term k with uniform-grid Toeplitz coefficients.
func (e *historyEngine) addToeplitz(k int, c []float64) {
	t := e.newTerm(e.useFFT && !e.naive)
	t.toe = c
	e.setTerm(k, t)
}

// addGeneral registers term k with an adaptive-grid operational matrix.
// General terms always run on the exact engine: the adaptive D̃ᵅ has no
// Toeplitz structure, so there is no convolution to accelerate.
func (e *historyEngine) addGeneral(k int, d *mat.Dense) {
	t := e.newTerm(false)
	t.genCols = d.T()
	e.setTerm(k, t)
}

// setTerm stores term k, keeping the deterministic iteration order current.
func (e *historyEngine) setTerm(k int, t *historyTerm) {
	t.key = k
	if e.terms[k] == nil {
		e.order = append(e.order, k)
	}
	e.terms[k] = t
}

// orderedTerms returns the registered terms in registration order.
func (e *historyEngine) orderedTerms() []*historyTerm {
	out := make([]*historyTerm, len(e.order))
	for i, k := range e.order {
		out[i] = e.terms[k]
	}
	return out
}

// active reports whether term k uses the engine.
func (e *historyEngine) active(k int) bool { return e.terms[k] != nil }

// modeName reports which evaluation strategy the engine's registered terms
// use, for SolveReport.HistoryEngine: "naive", "fft" when any term runs on
// the fast-convolution tier, else "exact".
func (e *historyEngine) modeName() string {
	if e.naive {
		return "naive"
	}
	for _, t := range e.orderedTerms() {
		if t.fft != nil {
			return "fft"
		}
	}
	return "exact"
}

// history returns w_j = Σ_{i<j} c(i,j)·x_i for term k. The returned slice
// is owned by the engine and valid until the next history call for k. An
// error means the engine's context expired at a chunk boundary or a worker
// task panicked (see engineErrKind).
func (e *historyEngine) history(k, j int, cols [][]float64) ([]float64, error) {
	t := e.terms[k]
	w := t.w
	if e.naive {
		for i := range w {
			w[i] = 0
		}
		t.fold(j, 0, j, cols, w)
		return w, nil
	}
	if t.fft != nil {
		return e.historyFFT(t, j, cols)
	}
	if j >= e.chunkLo+historyChunk {
		if err := e.advanceChunk(j, cols); err != nil {
			return nil, err
		}
	}
	copy(w, t.head[j-e.chunkLo])
	t.fold(j, e.chunkLo, j, cols, w)
	return w, nil
}

// advanceChunk starts the chunk [j0, j0+historyChunk) by folding every
// already-solved column i < j0 into the head sums of each chunk column. The
// context is checked once per chunk — immediately before the head burst, the
// single largest indivisible unit of work in the engine.
func (e *historyEngine) advanceChunk(j0 int, cols [][]float64) error {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	e.chunkLo = j0
	hi := j0 + historyChunk
	if hi > e.m {
		hi = e.m
	}
	cc := hi - j0
	for _, t := range e.orderedTerms() {
		if t.fft != nil {
			continue
		}
		for jj := 0; jj < cc; jj++ {
			h := t.head[jj]
			for i := range h {
				h[i] = 0
			}
		}
	}
	if j0 == 0 {
		return nil
	}
	nt := e.workers
	if nt > cc {
		nt = cc
	}
	var tasks []func()
	for _, t := range e.orderedTerms() {
		if t.fft != nil {
			continue
		}
		t := t
		for r := 0; r < nt; r++ {
			lo := j0 + r*cc/nt
			rhi := j0 + (r+1)*cc/nt
			if lo >= rhi {
				continue
			}
			tasks = append(tasks, func() {
				if e.fault != nil && e.fault.WorkerFault != nil {
					e.fault.WorkerFault()
				}
				e.headRange(t, j0, lo, rhi, cols)
			})
		}
	}
	if len(tasks) <= 1 || e.workers == 1 {
		var firstErr error
		for _, f := range tasks {
			if err := runRecovered(f); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return historyPoolDo(tasks)
}

// headRange folds all past columns i < j0, visited in fixed-size blocks,
// into the head accumulators of chunk columns [lo, hi). The block loop is
// outermost so a tile of X is reused across every column of the range;
// within each destination column past columns still arrive in ascending
// order, keeping the result independent of block size and worker count.
func (e *historyEngine) headRange(t *historyTerm, j0, lo, hi int, cols [][]float64) {
	for b := 0; b < j0; b += e.block {
		bhi := b + e.block
		if bhi > j0 {
			bhi = j0
		}
		for j := lo; j < hi; j++ {
			t.fold(j, b, bhi, cols, t.head[j-j0])
		}
	}
}

// fold accumulates dst += Σ_{i∈[lo,hi)} c(i,j)·x_i in ascending i order.
func (t *historyTerm) fold(j, lo, hi int, cols [][]float64, dst []float64) {
	if t.toe != nil {
		c := t.toe
		for i := lo; i < hi; i++ {
			mat.Axpy(c[j-i], cols[i], dst)
		}
		return
	}
	// Column j of the operational matrix is row j of the transposed copy:
	// one contiguous slice instead of a strided At(i, j) per element.
	col := t.genCols.Row(j)
	for i := lo; i < hi; i++ {
		if v := col[i]; !isExactZero(v) {
			mat.Axpy(v, cols[i], dst)
		}
	}
}
