package core

import (
	"errors"
	"fmt"
	"math"
)

// The solver error taxonomy. Every failure surfaced by Solve, SolveAdaptive,
// SolveAdaptiveAuto, SolveNonlinear, and their Ctx variants wraps exactly one
// of these sentinels inside a *Diagnostic, so callers can route on
// errors.Is(err, core.ErrXxx) and recover the failing column, time, and
// condition estimate with errors.As.
var (
	// ErrSingularPencil: the leading matrix M = Σ_k c₀⁽ᵏ⁾·E_k (or a Newton
	// Jacobian) is singular through every factorization tier, including the
	// rank-revealing QR backstop.
	ErrSingularPencil = errors.New("singular pencil")
	// ErrIllConditioned: a factorization succeeded but its 1-norm condition
	// estimate exceeds Options.CondLimit and no healthier tier is available.
	ErrIllConditioned = errors.New("pencil is ill-conditioned")
	// ErrNonFinite: a solved column contains NaN or ±Inf — typically a
	// poisoned input sample or an overflowing nonlinearity; the solve aborts
	// at the first such column instead of propagating the poison through the
	// history recurrence.
	ErrNonFinite = errors.New("non-finite value in solution column")
	// ErrNonConvergence: an iteration gave up — Newton at a column after the
	// damped retries, or the adaptive controller after MaxSteps/backoff.
	ErrNonConvergence = errors.New("iteration did not converge")
	// ErrCancelled: the context passed to a *Ctx entry point was cancelled or
	// its deadline expired.
	ErrCancelled = errors.New("solve cancelled")
	// ErrInternal: an invariant was violated inside the solver — e.g. a
	// history worker panicked — and was recovered instead of crashing the
	// process.
	ErrInternal = errors.New("internal solver fault")
)

// Diagnostic is the typed error the solver core returns. It pins the failure
// to a column and simulation time, names the term order involved where that
// is meaningful, and carries the condition estimate that drove a fallback
// decision. Kind is always one of the package sentinels, reachable through
// errors.Is; the optional Cause preserves the lower-level error.
type Diagnostic struct {
	// Kind is the taxonomy sentinel (ErrSingularPencil, …).
	Kind error
	// Column is the BPF column (time-step index) at which the solve failed,
	// or −1 when the failure is not tied to a column (e.g. the shared leading
	// factorization or input validation).
	Column int
	// Time is the simulation time at the failing column's midpoint; NaN when
	// unknown.
	Time float64
	// Order is the differentiation order of the term involved; NaN when the
	// failure is not term-specific.
	Order float64
	// Cond is the 1-norm condition estimate available at the failure site;
	// 0 when no estimate was computed, +Inf when the estimator overflowed.
	Cond float64
	// Cause is the underlying error, if any.
	Cause error
}

// diag builds a Diagnostic with the column/time fields set and the
// term-order field defaulted to NaN.
func diag(kind error, col int, t float64) *Diagnostic {
	return &Diagnostic{Kind: kind, Column: col, Time: t, Order: math.NaN()}
}

func (d *Diagnostic) Error() string {
	s := "core: " + d.Kind.Error()
	if d.Column >= 0 {
		s += fmt.Sprintf(" at column %d", d.Column)
		if !math.IsNaN(d.Time) {
			s += fmt.Sprintf(" (t≈%g)", d.Time)
		}
	}
	if !math.IsNaN(d.Order) {
		s += fmt.Sprintf(" [term order %g]", d.Order)
	}
	if d.Cond > 0 {
		s += fmt.Sprintf(" [cond₁≈%.3g]", d.Cond)
	}
	if d.Cause != nil {
		s += ": " + d.Cause.Error()
	}
	return s
}

// Unwrap exposes both the taxonomy sentinel and the underlying cause to
// errors.Is/As.
func (d *Diagnostic) Unwrap() []error {
	if d.Cause != nil {
		return []error{d.Kind, d.Cause}
	}
	return []error{d.Kind}
}

// Tier identifies which factorization backend served a linear solve in the
// graceful-degradation chain.
type Tier int

const (
	// TierSparseLU is the fast path: Gilbert–Peierls sparse LU with RCM
	// pre-ordering, shared across all columns.
	TierSparseLU Tier = iota
	// TierDenseLU is the first fallback: dense partial-pivoting LU with one
	// step of iterative refinement against the sparse matrix.
	TierDenseLU
	// TierQR is the last resort: Householder QR least-squares, which still
	// produces the minimum-residual solution for numerically rank-deficient
	// pencils that LU rejects.
	TierQR
	// TierSupernodal is the large-grid fast path tried before TierSparseLU
	// when engaged (Options.Supernodal / SupernodalMinN): nested-dissection
	// domain decomposition with supernodal blocked domain factors and a dense
	// interface Schur complement. It sits above the scalar sparse tier in the
	// chain — a failed or ill-conditioned supernodal factorization falls
	// through to TierSparseLU — so it never counts as degradation. (Appended
	// after TierQR to keep the existing tier indices stable in reports.)
	TierSupernodal
	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierSupernodal:
		return "supernodal-BBD"
	case TierSparseLU:
		return "sparse-LU"
	case TierDenseLU:
		return "dense-LU+refine"
	case TierQR:
		return "QR-least-squares"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Fallback records one factorization that degraded below the sparse-LU fast
// path.
type Fallback struct {
	// Column the factorization first served; −1 for a factorization shared
	// by all columns (the uniform-grid leading pencil).
	Column int
	// Tier that ended up serving the solves.
	Tier Tier
	// Cond is the sparse-LU condition estimate that triggered the fallback;
	// 0 when the sparse factorization failed outright.
	Cond float64
	// Reason is a one-line human-readable cause.
	Reason string
}

// SolveReport accumulates what the hardened solver core actually did during
// one run: how many column solves each factorization tier served, which
// factorizations fell back and why, the worst condition estimate seen, and
// how often the adaptive controller or damped Newton had to retry. Attach an
// empty report via Options.Report before calling a solver; the solver fills
// it in place (also on failure, so post-mortems see the partial run).
type SolveReport struct {
	// Columns actually solved (committed).
	Columns int
	// TierSolves counts column solves served per tier, indexed by Tier.
	TierSolves [numTiers]int
	// Factorizations counts pencil factorizations built (the adaptive solvers
	// build one per distinct step size).
	Factorizations int
	// Fallbacks lists every factorization that degraded below sparse LU.
	Fallbacks []Fallback
	// MaxCond is the largest 1-norm condition estimate observed.
	MaxCond float64
	// StepRetries counts adaptive steps retried with a halved h after a
	// factorization or solve failure.
	StepRetries int
	// NewtonDampings counts Armijo step halvings taken across all Newton
	// iterations.
	NewtonDampings int
	// FactorCacheHits and FactorCacheMisses count pencil-factorization
	// requests served from (and added to) Options.FactorCache during the run;
	// both stay zero when no cache is attached. A hit means the run reused a
	// factorization built by an earlier run (or an earlier scenario/step size
	// of this run) instead of refactoring.
	FactorCacheHits   int
	FactorCacheMisses int
	// FactorCacheUpdateHits counts scenarios served through the SMW
	// UpdatedSolve tier — a cached (or shared) base factorization plus a
	// low-rank Woodbury correction — instead of a fresh factorization. Like
	// the hit/miss counters it stays zero when no cache is attached.
	FactorCacheUpdateHits int
	// PencilUpdates and PencilRefactors count how the parameter-varying batch
	// dispatched its delta-carrying scenarios: through the SMW update path or
	// through a full per-scenario refactorization (the crossover fallback).
	// Both stay zero when no scenario carries a pencil delta.
	PencilUpdates   int
	PencilRefactors int
	// UpdateCrossoverRank records the SMW-vs-refactor rank limit the
	// parameter-varying batch resolved to: −1 when the update path was
	// disabled (explicitly or because refactorization measured cheaper than
	// even a rank-1 update), 0 when no parameter-varying batch ran, otherwise
	// the largest pencil-update rank served by SMW.
	UpdateCrossoverRank int
	// Err records the run's terminal error — the same *Diagnostic the solver
	// returned — or nil after a successful solve. Keeping it on the report
	// lets a consumer holding only the report (a service's job ledger, a
	// post-mortem dump) route on errors.Is(rep.Err, ErrCancelled) without
	// also threading the return value through. Every solver entry point sets
	// it on the way out, success and failure alike, so a report reused across
	// runs always reflects the most recent one.
	Err error
	// HistoryEngine names the engine that served the run's
	// fractional/high-order history sums: "exact", "fft", or "naive"; empty
	// when every term used an O(1) recurrence (the orders-{0,1} fast path)
	// and no general history engine ran. It records what HistoryAuto
	// resolved to, and that adaptive grids stayed on the exact engine.
	HistoryEngine string
	// Warnings collects non-fatal condition warnings.
	Warnings []string
}

// Degraded reports whether any solve was served below the sparse-LU fast
// path.
func (r *SolveReport) Degraded() bool {
	return r != nil && (r.TierSolves[TierDenseLU] > 0 || r.TierSolves[TierQR] > 0)
}

// Summary renders the report as a short multi-line string for -verbose CLI
// output and logs.
func (r *SolveReport) Summary() string {
	s := fmt.Sprintf("solve report: %d columns, %d factorizations; tiers: %s=%d %s=%d %s=%d %s=%d",
		r.Columns, r.Factorizations,
		TierSupernodal, r.TierSolves[TierSupernodal],
		TierSparseLU, r.TierSolves[TierSparseLU],
		TierDenseLU, r.TierSolves[TierDenseLU],
		TierQR, r.TierSolves[TierQR])
	if r.MaxCond > 0 {
		s += fmt.Sprintf("; max cond₁≈%.3g", r.MaxCond)
	}
	if r.HistoryEngine != "" {
		s += "; history engine: " + r.HistoryEngine
	}
	if r.FactorCacheHits > 0 || r.FactorCacheUpdateHits > 0 || r.FactorCacheMisses > 0 {
		s += fmt.Sprintf("; factor cache: %d hits, %d update hits, %d misses",
			r.FactorCacheHits, r.FactorCacheUpdateHits, r.FactorCacheMisses)
	}
	if r.PencilUpdates > 0 || r.PencilRefactors > 0 {
		s += fmt.Sprintf("; pencil deltas: %d SMW updates, %d refactorizations (crossover rank %d)",
			r.PencilUpdates, r.PencilRefactors, r.UpdateCrossoverRank)
	}
	if r.StepRetries > 0 {
		s += fmt.Sprintf("; %d step retries", r.StepRetries)
	}
	if r.NewtonDampings > 0 {
		s += fmt.Sprintf("; %d Newton dampings", r.NewtonDampings)
	}
	for _, fb := range r.Fallbacks {
		col := "shared"
		if fb.Column >= 0 {
			col = fmt.Sprintf("column %d", fb.Column)
		}
		s += fmt.Sprintf("\n  fallback: %s pencil served by %s (%s)", col, fb.Tier, fb.Reason)
	}
	for _, w := range r.Warnings {
		s += "\n  warning: " + w
	}
	return s
}

// observeCond folds a condition estimate into the report.
func (r *SolveReport) observeCond(c float64) {
	if r != nil && c > r.MaxCond {
		r.MaxCond = c
	}
}
