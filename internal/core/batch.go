package core

import (
	"context"
	"fmt"

	"opmsim/internal/basis"
	"opmsim/internal/fft"
	"opmsim/internal/mat"
	"opmsim/internal/vecops"
	"opmsim/internal/waveform"
)

// The batch engine runs K scenarios that share one circuit pencil — the same
// (E_k, A, h, α, method), differing only in inputs and initial state — through
// a single factorization and blocked multi-RHS kernels. This is the paper's
// §IV amortization argument applied once more: just as one factorization of
// M = Σ_k c₀⁽ᵏ⁾·E_k serves all m BPF columns, it also serves all K scenarios
// of a Monte-Carlo corner set or parameter sweep; and just as the triangular
// solves dominate the per-column cost, solving the K scenarios' column-j
// right-hand sides as one n×K panel amortizes the factor's irregular index
// streams over K contiguous updates (see internal/sparse panel kernels).
//
// Structure: the solve is column-synchronous. For each column j the scenarios
// are partitioned into groups of PanelWidth; each group — fanned out over the
// shared worker pool — assembles its scenarios' right-hand sides (exactly the
// scalar operations Solve performs), panel-solves them through a private view
// of the shared factorization, and advances its scenarios' history state.
// Scenario groups own disjoint state and the partition depends only on K and
// PanelWidth, never on worker count or scheduling, so results are
// deterministic under any Options.Workers.
//
// Determinism contract: SolveBatch is bitwise-identical, scenario by
// scenario, to K sequential Solve calls with the same Options. Every
// floating-point operation of the sequential path runs in the same order —
// panel kernels are column-wise identical to their one-vector counterparts,
// panel assembly/extraction are pure copies, and per-scenario history engines
// are worker-count-invariant by construction (batch runs them with serial
// bursts, which the engine contract guarantees changes nothing).

// batchPanelWidth is the default scenario-panel width, matching the dense
// kernels' luPanelWidth: wide enough to amortize factor index streams, narrow
// enough that a panel of the working set stays cache-resident.
const batchPanelWidth = 32

// Scenario is one member of a batch: its input signals and optional initial
// state. The system, grid, span, and solver options are shared by the whole
// batch — that sharing is what makes the single-factorization fast path
// sound.
type Scenario struct {
	// U holds the scenario's input signals, one per system input channel.
	U []waveform.Signal
	// X0 is the scenario's optional initial state (same restrictions as
	// Options.X0).
	X0 []float64
	// Delta, when non-nil with at least one update, perturbs the shared
	// pencil for this scenario by a low-rank stamp delta (a Monte-Carlo or
	// corner variation of component values; see PencilDelta and
	// circuit.StampDelta). Any scenario carrying a delta routes the whole
	// batch through the parameter-varying engine: delta scenarios are served
	// by the SMW update tier against the shared factorization, or by a
	// per-scenario refactorization past the crossover rank
	// (BatchOptions.UpdateRankLimit). Checkpoint/resume is unavailable for
	// parameter-varying batches.
	Delta *PencilDelta
}

// BatchOptions configures SolveBatch. The embedded Options apply to every
// scenario; attach Options.FactorCache to share the pencil factorization with
// other runs (and surface hit/miss counts in the report).
type BatchOptions struct {
	Options
	// PanelWidth is the number of scenarios solved together as one multi-RHS
	// panel (0 → 32). The scenario-group partition depends only on this and
	// on len(scenarios), so any value is deterministic; widths beyond ~64
	// trade cache residency for little extra index amortization.
	PanelWidth int
	// OnColumn, when non-nil, is invoked once per column at the column
	// barrier — after every scenario group has committed column col — with
	// the interval-midpoint time and each scenario's column including its X0
	// offset: cols[s] is bitwise-identical to column col of scenario s's
	// final Solution. The backing buffers are owned by the solver and reused
	// between invocations; consumers must copy (or encode) them before
	// returning. The hook runs on the SolveBatchCtx goroutine, so a slow
	// consumer throttles the batch — the intended backpressure when columns
	// stream to a client. The embedded Options.OnColumn is ignored here: a
	// per-scenario hook would fire from concurrent group tasks.
	OnColumn func(col int, t float64, cols [][]float64)
	// CheckpointEvery, with OnCheckpoint set, emits a CheckpointDelta after
	// every CheckpointEvery-th committed column (measured on the absolute
	// column index, so resumed runs keep the original boundaries). Zero
	// emits no interval deltas; abort deltas (below) still fire.
	CheckpointEvery int
	// OnCheckpoint receives checkpoint deltas: at the interval boundaries
	// above, and — regardless of CheckpointEvery — once with the committed
	// tail whenever the solve aborts after committing columns (cancellation,
	// solver fault), so interrupted work is never lost. Deltas own their
	// buffers; apply them to a Checkpoint with ApplyCheckpoint. The hook
	// runs on the SolveBatchCtx goroutine after the column barrier.
	OnCheckpoint func(*CheckpointDelta)
	// ResumeFrom, when non-nil, resumes the solve from a checkpoint: the
	// committed prefix is adopted, history state is replayed bit-exactly,
	// and the column loop (and OnColumn) starts at ResumeFrom.Columns. The
	// checkpoint's shape header must match the solve (ErrCheckpointMismatch
	// otherwise); Workers and PanelWidth are free to differ — neither
	// changes column bits.
	ResumeFrom *Checkpoint
	// UpdateRankLimit steers the SMW-vs-refactor crossover for scenarios
	// carrying a pencil Delta: 0 resolves the break-even rank once per run
	// from the measured factorization and solve costs of the shared pencil;
	// > 0 forces the SMW update path for pencil-update ranks ≤ the limit
	// (refactorization above); < 0 disables the update path entirely (every
	// delta scenario refactors — the path that is bitwise-identical to
	// Solve(ApplyDelta(sys, delta), …)). The measured resolution is
	// machine-dependent: pin an explicit limit when run-to-run path
	// reproducibility matters (waveforms agree to ≤1e-12 either way).
	UpdateRankLimit int
	// DiscardSolutions skips the final Solution assembly and returns a nil
	// slice: Monte-Carlo envelope runs consume columns through OnColumn and
	// would otherwise hold K full n×m solution matrices. With
	// DiscardSolutions set on a parameter-varying batch of a system without
	// fractional/high-order engine terms, the engine also shrinks the
	// per-scenario column slab to a (maxLag+1)-column ring, bounding memory
	// at O(K·n) instead of O(K·n·m).
	DiscardSolutions bool
}

// scenState is the per-scenario solve state: exactly what one sequential
// Solve call would keep, owned by the scenario's group task during the
// column loop.
type scenState struct {
	uc    *mat.Dense
	x0    []float64
	shift []float64
	hist  []*intHistory
	eng   *historyEngine
	cols  [][]float64
	xbuf  []float64
	rhs   []float64
	ucol  []float64
}

// SolveBatch simulates K scenarios over [0, T) with m uniform BPF intervals
// through one shared pencil factorization and blocked multi-RHS panel solves,
// returning one Solution per scenario in input order. Results are
// bitwise-identical to K sequential Solve calls with the same Options; the
// batch fails as a whole with the diagnostic of the lowest-indexed failing
// scenario.
func SolveBatch(sys *System, scenarios []Scenario, m int, T float64, opt BatchOptions) ([]*Solution, error) {
	return SolveBatchCtx(context.Background(), sys, scenarios, m, T, opt)
}

// SolveBatchCtx is SolveBatch with cancellation, checked once per column (and
// at the chunk/segment boundaries of the scenario history engines).
func SolveBatchCtx(ctx context.Context, sys *System, scenarios []Scenario, m int, T float64, opt BatchOptions) (_ []*Solution, err error) {
	rep := opt.report()
	defer func() { rep.Err = err }()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	K := len(scenarios)
	if K == 0 {
		return nil, fmt.Errorf("core: SolveBatch needs at least one scenario")
	}
	bpf, err := basis.NewBPF(m, T)
	if err != nil {
		return nil, err
	}
	width := opt.PanelWidth
	if width <= 0 {
		width = batchPanelWidth
	}
	if width > K {
		width = K
	}
	n := sys.N()

	// Shared pencil: coefficient sequences, assembled leading matrix, one
	// factorization for the whole batch (through the cache when attached).
	coeffs := make([][]float64, len(sys.Terms))
	for k, t := range sys.Terms {
		coeffs[k] = bpf.DiffCoeffs(t.Order)
	}
	msys, err := assembleLeading(sys, func(k int) float64 { return coeffs[k][0] })
	if err != nil {
		return nil, err
	}
	shared, err := factorPencilCached(msys, bpf.Step(), sys.MaxOrder(), -1, 0, &opt.Options, rep)
	if err != nil {
		return nil, err
	}

	// Scenarios that perturb the pencil itself route through the
	// parameter-varying engine (SMW updates + crossover refactorization).
	for s := range scenarios {
		if scenarios[s].Delta.Rank() > 0 {
			return solveParamBatch(ctx, sys, scenarios, m, T, &opt, rep, bpf, coeffs, shared)
		}
	}

	// Per-scenario preparation — input expansion dominates — fans out over
	// the worker pool; each task writes only its scenario's slot. Kernel
	// spectra of the FFT history tier are shared across scenario engines, and
	// the FFT plans they need are prewarmed once up front.
	kernels := newKernelCache()
	if on, ferr := opt.historyFFTEnabled(m); ferr == nil && on {
		var sizes []int
		for L := historyFFTBase; L <= m; L *= 2 {
			sizes = append(sizes, 2*L)
		}
		fft.Prewarm(sizes...)
	}
	states := make([]*scenState, K)
	scenErr := make([]error, K)
	prep := make([]func(), K)
	for s := range scenarios {
		s := s
		prep[s] = func() {
			states[s], scenErr[s] = prepareScenario(ctx, sys, &scenarios[s], bpf, m, coeffs, &opt, kernels, nil, m)
		}
	}
	if err := historyPoolDo(prep); err != nil {
		return nil, &Diagnostic{Kind: ErrInternal, Column: -1, Time: 0, Cause: err}
	}
	for s := 0; s < K; s++ {
		if scenErr[s] != nil {
			return nil, fmt.Errorf("core: batch scenario %d: %w", s, scenErr[s])
		}
	}
	if st := states[0]; len(st.eng.terms) > 0 {
		rep.HistoryEngine = st.eng.modeName()
	}

	// Scenario groups: contiguous ranges of width scenarios, each with a
	// private factorization view, panels, and scratch. The partition is a
	// pure function of (K, width) — the determinism hinge. Systems whose
	// history is entirely integer-order (no fractional engine terms) take
	// the panel-native column path: right-hand-side assembly, history
	// recurrences, and input injection all run at panel granularity, so the
	// per-column work is panel kernels plus one n×w gather instead of
	// per-scenario vector loops with scatter/gather on both sides.
	h := bpf.Step()
	fast := len(states[0].eng.terms) == 0
	maxLag := 0
	if fast {
		for _, t := range sys.Terms {
			if p := int(t.Order); !isExactZero(t.Order) && p > maxLag {
				maxLag = p
			}
		}
	}
	nGroups := (K + width - 1) / width
	groups := make([]*batchGroup, nGroups)
	for g := range groups {
		lo := g * width
		hi := lo + width
		if hi > K {
			hi = K
		}
		w := hi - lo
		gr := &batchGroup{lo: lo, hi: hi, maxLag: maxLag, pf: shared.instantiate(rep)}
		gr.b = mat.NewDense(n, w)
		gr.scratch = gr.pf.newPanelScratch(w)
		if fast {
			gr.fast = true
			gr.shiftP = mat.NewDense(n, w)
			for i := 0; i < n; i++ {
				row := gr.shiftP.Row(i)
				for t := 0; t < w; t++ {
					row[t] = states[lo+t].shift[i]
				}
			}
			gr.uP = mat.NewDense(sys.Inputs(), w)
			//lint:ignore allocsite per-group setup, once per scenario group, not per column; the buffers escape into the group state
			gr.acc = make([]float64, w)
			//lint:ignore allocsite same one-time group setup as above
			gr.hist = make([]*panelIntHistory, len(sys.Terms))
			for k, t := range sys.Terms {
				if p := int(t.Order); !isExactZero(t.Order) {
					gr.hist[k] = newPanelIntHistory(p, h, n, w)
				}
			}
			for i := 0; i <= maxLag; i++ {
				gr.xpool = append(gr.xpool, mat.NewDense(n, w))
			}
		} else {
			gr.x = mat.NewDense(n, w)
		}
		groups[g] = gr
	}

	// Resume: adopt the checkpoint's committed prefix and replay the history
	// state before entering the column loop. The engine name is resolved the
	// same way the report records it — empty when no fractional terms exist.
	engineName := ""
	if len(states[0].eng.terms) > 0 {
		engineName = states[0].eng.modeName()
	}
	j0 := 0
	if cp := opt.ResumeFrom; cp != nil {
		if err := cp.validateFor(n, m, K, T, engineName); err != nil {
			return nil, err
		}
		j0 = cp.Columns
		if err := resumeBatch(sys, states, groups, cp, n); err != nil {
			d := diag(engineErrKind(err), j0, (float64(j0)+0.5)*h)
			d.Cause = fmt.Errorf("batch resume replay: %w", err)
			return nil, d
		}
	}

	// emitDelta hands columns [lastCp, hi) to OnCheckpoint as fresh copies.
	// It runs at interval boundaries and on every abort path after at least
	// one new column committed, so an interrupted solve always surfaces its
	// committed tail.
	lastCp := j0
	emitDelta := func(hi int) {
		if opt.OnCheckpoint == nil || hi <= lastCp {
			return
		}
		d := &CheckpointDelta{
			N: n, M: m, K: K, T: T, Engine: engineName,
			From: lastCp, To: hi,
			Slabs: make([][]float64, K),
		}
		for s := 0; s < K; s++ {
			d.Slabs[s] = append([]float64(nil), states[s].xbuf[lastCp*n:hi*n]...)
		}
		lastCp = hi
		opt.OnCheckpoint(d)
	}

	colErr := make([]error, K)
	tasks := make([]func(), 0, nGroups)
	var hookCols [][]float64
	if opt.OnColumn != nil {
		hookCols = make([][]float64, K)
		for s := range hookCols {
			hookCols[s] = make([]float64, n)
		}
	}
	for j := j0; j < m; j++ {
		tj := (float64(j) + 0.5) * h
		if err := ctx.Err(); err != nil {
			emitDelta(j)
			d := diag(ErrCancelled, j, tj)
			d.Cause = err
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.ColumnDelay != nil {
			opt.Fault.ColumnDelay(j)
		}
		tasks = tasks[:0]
		for _, gr := range groups {
			gr := gr
			if gr.fast {
				tasks = append(tasks, func() {
					batchGroupColumnPanel(sys, states, colErr, j, tj, gr)
				})
			} else {
				tasks = append(tasks, func() {
					batchGroupColumn(sys, states, colErr, j, tj, gr.lo, gr.hi, gr.b, gr.x, gr.pf, gr.scratch)
				})
			}
		}
		var ferr error
		if len(tasks) == 1 {
			ferr = runRecovered(tasks[0])
		} else {
			ferr = historyPoolDo(tasks)
		}
		if ferr != nil {
			emitDelta(j)
			d := diag(ErrInternal, j, tj)
			d.Cause = ferr
			return nil, d
		}
		if opt.Fault != nil && opt.Fault.CorruptColumn != nil {
			// Same injection point Solve exposes: mutate the freshly solved
			// column, then re-screen it so injected damage surfaces as the
			// production ErrNonFinite diagnostic.
			for s := 0; s < K; s++ {
				xj := states[s].xbuf[j*n : (j+1)*n]
				opt.Fault.CorruptColumn(j, xj)
				if i := firstNonFinite(xj); i >= 0 && colErr[s] == nil {
					d := diag(ErrNonFinite, j, tj)
					d.Cause = fmt.Errorf("non-finite value in state %d of scenario %d", i, s)
					colErr[s] = d
				}
			}
		}
		for s := 0; s < K; s++ {
			if colErr[s] != nil {
				// Column j may be partially committed across groups; the
				// delta covers only the fully-committed prefix [lastCp, j).
				emitDelta(j)
				return nil, colErr[s]
			}
		}
		rep.Columns += K
		rep.TierSolves[shared.tier] += K
		if opt.OnColumn != nil {
			// Same operands and order as the final Solution assembly, so
			// every streamed column matches its Solution entry bit for bit.
			for s := 0; s < K; s++ {
				st := states[s]
				xj := st.xbuf[j*n : (j+1)*n]
				dst := hookCols[s]
				for i := 0; i < n; i++ {
					dst[i] = xj[i] + st.x0[i]
				}
			}
			opt.OnColumn(j, tj, hookCols)
		}
		if opt.CheckpointEvery > 0 && (j+1)%opt.CheckpointEvery == 0 && j+1 < m {
			emitDelta(j + 1)
		}
	}

	if opt.DiscardSolutions {
		return nil, nil
	}

	// Assemble the per-scenario Solutions (pure data movement; fanned out,
	// each task owns its scenario's output). The column slab xbuf is m×n and
	// the Solution matrix n×m; the transpose is tiled so both sides stay
	// cache-resident — per element it is still the one addition Solve
	// performs.
	sols := make([]*Solution, K)
	fin := make([]func(), K)
	for s := range sols {
		s := s
		fin[s] = func() {
			const tile = 64
			st := states[s]
			x := mat.NewDense(n, m)
			xd := x.Data()
			for i0 := 0; i0 < n; i0 += tile {
				i1 := i0 + tile
				if i1 > n {
					i1 = n
				}
				for j0 := 0; j0 < m; j0 += tile {
					j1 := j0 + tile
					if j1 > m {
						j1 = m
					}
					for i := i0; i < i1; i++ {
						xr, x0i := xd[i*m:(i+1)*m], st.x0[i]
						for j := j0; j < j1; j++ {
							xr[j] = st.xbuf[j*n+i] + x0i
						}
					}
				}
			}
			sols[s] = &Solution{sys: sys, bas: bpf, x: x}
		}
	}
	if err := historyPoolDo(fin); err != nil {
		return nil, &Diagnostic{Kind: ErrInternal, Column: m - 1, Time: T, Cause: err}
	}
	return sols, nil
}

// batchGroup is one scenario group's solve state: a private factorization
// view, the right-hand-side and solution panels, and — on the panel-native
// fast path — the panel-granularity history state.
type batchGroup struct {
	lo, hi  int
	pf      *pencilFactor
	b       *mat.Dense
	x       *mat.Dense // general-path solve target (fast path rotates xpool)
	scratch *panelScratch

	// Panel-native fast path (every nonzero term has integer order).
	fast   bool
	maxLag int
	shiftP *mat.Dense // per-scenario shift vectors as panel columns
	uP     *mat.Dense // inputs×w gather of the scenarios' u_j columns
	acc    []float64  // MulPanelAdd row accumulator
	hist   []*panelIntHistory
	xpool  []*mat.Dense // solve-target rotation: maxLag+1 panels
	xlags  []*mat.Dense // solution lag panels, newest first (≤ maxLag)
}

// panelIntHistory is intHistory at scenario-panel granularity: the same
// p-term recurrence with every vector operation applied to an n×w panel
// whose columns are the group's scenarios. Since panel ops are element-wise
// with no cross-column interaction, each column reproduces the scalar
// recurrence bit for bit. Ring buffers rotate pointers instead of copying:
// current() claims a panel from the pool, advance() pushes it into the lag
// ring and recycles the evicted panel.
type panelIntHistory struct {
	p     int
	gamma []float64
	binom []float64
	ss    []*mat.Dense // previous sum panels, newest first
	pool  []*mat.Dense // spare panels (p+1 total in circulation)
	s     *mat.Dense   // s_j panel between current() and advance()
}

func newPanelIntHistory(p int, h float64, n, w int) *panelIntHistory {
	ih := newIntHistory(p, h, n)
	ph := &panelIntHistory{p: p, gamma: ih.gamma, binom: ih.binom}
	for i := 0; i <= p; i++ {
		ph.pool = append(ph.pool, mat.NewDense(n, w))
	}
	return ph
}

// current computes the s_j panel from the group's solution-lag panels,
// mirroring intHistory.current term for term (including the γ zero skip).
func (ph *panelIntHistory) current(xlags []*mat.Dense) *mat.Dense {
	ph.s = ph.pool[len(ph.pool)-1]
	ph.pool = ph.pool[:len(ph.pool)-1]
	sd := ph.s.Data()
	for i := range sd {
		sd[i] = 0
	}
	kmax := len(xlags)
	if kmax > ph.p {
		kmax = ph.p
	}
	for k := 0; k < kmax; k++ {
		if g := ph.gamma[k]; !isExactZero(g) {
			vecops.AddMul(sd, xlags[k].Data(), g)
		}
	}
	for l := 0; l < len(ph.ss); l++ {
		vecops.AddMul(sd, ph.ss[l].Data(), -ph.binom[l])
	}
	return ph.s
}

// advance pushes the s_j panel computed by current into the sum-lag ring.
func (ph *panelIntHistory) advance() {
	if len(ph.ss) == ph.p {
		ph.pool = append(ph.pool, ph.ss[ph.p-1])
		copy(ph.ss[1:], ph.ss[:ph.p-1])
	} else {
		ph.ss = append(ph.ss, nil)
		copy(ph.ss[1:], ph.ss[:len(ph.ss)-1])
	}
	ph.ss[0] = ph.s
	ph.s = nil
}

// prepareScenario builds one scenario's solve state: expanded inputs, initial
// state, integer-order recurrences, and the general history engine. The
// engine runs serial bursts (workers = 1) because it is invoked from inside
// pool tasks — its results are worker-count-invariant, so this changes no
// bits, only avoids handing pool work to the pool.
//
// uc, when non-nil, is a fully-processed input coefficient matrix (expansion
// plus BOrder differentiation) shared read-only across scenarios — the
// parameter-varying engine expands each distinct signal set once. slabCols
// sizes the column slab: m for the full solution slab, or a smaller ring
// (parameter-varying envelope runs with no general-engine terms, which never
// read cols) — cols is nil then, so any engine access would fail loudly.
func prepareScenario(ctx context.Context, sys *System, sc *Scenario, bpf *basis.BPF, m int, coeffs [][]float64, opt *BatchOptions, kernels *kernelCache, uc *mat.Dense, slabCols int) (*scenState, error) {
	if uc == nil {
		var err error
		uc, err = expandInputs(sys, sc.U, bpf)
		if err != nil {
			return nil, err
		}
		if !isExactZero(sys.BOrder) {
			uc = applyInputOrder(uc, bpf.DiffCoeffs(sys.BOrder))
		}
	}
	x0, shift, err := prepareInitialState(sys, sc.X0)
	if err != nil {
		return nil, err
	}
	n := sys.N()
	st := &scenState{
		uc: uc, x0: x0, shift: shift,
		hist: make([]*intHistory, len(sys.Terms)),
		xbuf: make([]float64, n*slabCols),
		rhs:  make([]float64, n),
		ucol: make([]float64, uc.Rows()),
	}
	if slabCols == m {
		st.cols = make([][]float64, m)
	}
	eng, err := newHistoryEngine(n, m, &opt.Options)
	if err != nil {
		return nil, err
	}
	eng.workers = 1
	eng.kernels = kernels
	eng.setGuards(ctx, &opt.Options)
	for k, t := range sys.Terms {
		switch {
		case isExactZero(t.Order):
		case isExactEq(t.Order, float64(int(t.Order))):
			st.hist[k] = newIntHistory(int(t.Order), bpf.Step(), n)
		default:
			eng.addToeplitz(k, coeffs[k])
		}
	}
	st.eng = eng
	return st, nil
}

// batchGroupColumn advances scenarios [lo, hi) through column j: assemble
// each scenario's right-hand side with the exact scalar operations Solve
// uses, panel-solve the group, and commit each scenario's column. Errors land
// in colErr under the scenario's own index (each index is written by exactly
// one task); on any assembly error the group's solve is skipped — the batch
// aborts after this column.
func batchGroupColumn(sys *System, states []*scenState, colErr []error, j int, tj float64, lo, hi int, b, x *mat.Dense, pf *pencilFactor, scratch *panelScratch) {
	n := sys.N()
	for s := lo; s < hi; s++ {
		st := states[s]
		rhs := st.rhs
		for i := range rhs {
			rhs[i] = st.shift[i]
		}
		sys.B.MulVecAdd(1, ucColumnInto(st.ucol, st.uc, j), rhs)
		for k, t := range sys.Terms {
			switch {
			case isExactZero(t.Order):
				continue
			case st.hist[k] != nil:
				t.Coeff.MulVecAdd(-1, st.hist[k].current(), rhs)
			default:
				w, err := st.eng.history(k, j, st.cols)
				if err != nil {
					d := diag(engineErrKind(err), j, tj)
					d.Order = t.Order
					d.Cause = fmt.Errorf("batch scenario %d: %w", s, err)
					colErr[s] = d
					return
				}
				t.Coeff.MulVecAdd(-1, w, rhs)
			}
		}
		// Scatter into panel column s−lo: pure copies, no arithmetic.
		bd, w := b.Data(), hi-lo
		for i := 0; i < n; i++ {
			bd[i*w+(s-lo)] = rhs[i]
		}
	}
	if err := pf.solvePanelInto(x, b, scratch); err != nil {
		d := diag(ErrInternal, j, tj)
		d.Cause = fmt.Errorf("batch scenarios [%d,%d): %w", lo, hi, err)
		colErr[lo] = d
		return
	}
	xd, w := x.Data(), hi-lo
	for s := lo; s < hi; s++ {
		st := states[s]
		xj := st.xbuf[j*n : (j+1)*n : (j+1)*n]
		for i := 0; i < n; i++ {
			xj[i] = xd[i*w+(s-lo)]
		}
		if i := firstNonFinite(xj); i >= 0 {
			d := diag(ErrNonFinite, j, tj)
			d.Cause = fmt.Errorf("batch scenario %d: state %d is %g (poisoned input sample or overflow?)", s, i, xj[i])
			colErr[s] = d
			return
		}
		st.cols[j] = xj
		for k := range sys.Terms {
			if st.hist[k] != nil {
				st.hist[k].advance(xj)
			}
		}
	}
}

// batchGroupColumnPanel is batchGroupColumn for the panel-native fast path:
// every step — shift, input injection, history recurrences, the solve — runs
// at panel granularity, and only the committed solution column is gathered
// per scenario. Per panel column the operations match the scalar Solve loop
// exactly: panel kernels are column-wise identical to their one-vector
// counterparts and the history panels mirror intHistory's recurrence, so the
// fast path preserves the batch engine's bitwise contract.
func batchGroupColumnPanel(sys *System, states []*scenState, colErr []error, j int, tj float64, gr *batchGroup) {
	n := sys.N()
	w := gr.hi - gr.lo
	// rhs panel = shift + B·u_j − Σ_k E_k·s_j⁽ᵏ⁾, assembled panel-wide.
	copy(gr.b.Data(), gr.shiftP.Data())
	for c := 0; c < gr.uP.Rows(); c++ {
		urow := gr.uP.Row(c)
		for t := 0; t < w; t++ {
			urow[t] = states[gr.lo+t].uc.Row(c)[j]
		}
	}
	sys.B.MulPanelAdd(1, gr.uP, gr.b, gr.acc)
	for k, t := range sys.Terms {
		if gr.hist[k] == nil {
			continue // order-0 term: no history contribution
		}
		t.Coeff.MulPanelAdd(-1, gr.hist[k].current(gr.xlags), gr.b, gr.acc)
	}
	xcur := gr.xpool[0]
	gr.xpool = gr.xpool[1:]
	if err := gr.pf.solvePanelInto(xcur, gr.b, gr.scratch); err != nil {
		d := diag(ErrInternal, j, tj)
		d.Cause = fmt.Errorf("batch scenarios [%d,%d): %w", gr.lo, gr.hi, err)
		colErr[gr.lo] = d
		return
	}
	xd := xcur.Data()
	for s := gr.lo; s < gr.hi; s++ {
		st := states[s]
		xj := st.xbuf[j*n : (j+1)*n : (j+1)*n]
		for i := 0; i < n; i++ {
			xj[i] = xd[i*w+(s-gr.lo)]
		}
		if i := firstNonFinite(xj); i >= 0 {
			d := diag(ErrNonFinite, j, tj)
			d.Cause = fmt.Errorf("batch scenario %d: state %d is %g (poisoned input sample or overflow?)", s, i, xj[i])
			colErr[s] = d
			return
		}
		st.cols[j] = xj
	}
	// Rotate the solution panel into the lag ring (the evicted panel becomes
	// the next solve target) and advance each term's recurrence.
	if gr.maxLag > 0 {
		if len(gr.xlags) == gr.maxLag {
			gr.xpool = append(gr.xpool, gr.xlags[gr.maxLag-1])
			copy(gr.xlags[1:], gr.xlags[:gr.maxLag-1])
		} else {
			gr.xlags = append(gr.xlags, nil)
			copy(gr.xlags[1:], gr.xlags[:len(gr.xlags)-1])
		}
		gr.xlags[0] = xcur
	} else {
		gr.xpool = append(gr.xpool, xcur)
	}
	for k := range gr.hist {
		if gr.hist[k] != nil {
			gr.hist[k].advance()
		}
	}
}
