package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opmsim/internal/mat"
	"opmsim/internal/sparse"
	"opmsim/internal/specfn"
	"opmsim/internal/waveform"
)

// scalarCSR wraps a single value as a 1×1 sparse matrix.
func scalarCSR(v float64) *sparse.CSR {
	c := sparse.NewCOO(1, 1)
	c.Add(0, 0, v)
	return c.ToCSR()
}

func csrFrom(r, c int, vals []float64) *sparse.CSR {
	return sparse.FromDense(mat.NewDenseFrom(r, c, vals))
}

func TestSolveScalarRCStepResponse(t *testing.T) {
	// τ·ẋ = −x + u with τ = 1: step response x(t) = 1 − e^{−t}.
	sys, err := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	if err != nil {
		t.Fatal(err)
	}
	m, T := 512, 4.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// BPF coefficients are interval averages, so compare at solver-grid
	// midpoints where the piecewise-constant readout is O(h²) accurate.
	h := T / float64(m)
	for j := 5; j < m; j += 31 {
		tt := (float64(j) + 0.5) * h
		want := 1 - math.Exp(-tt)
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 2e-4 {
			t.Fatalf("x(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestSolveSineInput(t *testing.T) {
	// ẋ = −x + sin(2πt): analytic particular+homogeneous solution.
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	w := 2 * math.Pi
	sol, err := Solve(sys, []waveform.Signal{waveform.Sine(1, 1, 0)}, 1024, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	den := 1 + w*w
	exact := func(tt float64) float64 {
		return (math.Sin(w*tt)-w*math.Cos(w*tt))/den + w/den*math.Exp(-tt)
	}
	for _, tt := range waveform.UniformTimes(20, 3) {
		if got := sol.StateAt(0, tt); math.Abs(got-exact(tt)) > 3e-3 {
			t.Fatalf("x(%g) = %g, want %g", tt, got, exact(tt))
		}
	}
}

func TestSolveDAEWithAlgebraicConstraint(t *testing.T) {
	// ẋ₁ = −x₁ + u;  0 = 2x₁ − x₂ (singular E).
	e := csrFrom(2, 2, []float64{1, 0, 0, 0})
	a := csrFrom(2, 2, []float64{-1, 0, 2, -1})
	b := csrFrom(2, 1, []float64{1, 0})
	sys, err := NewDAE(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	m, T := 256, 3.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := T / float64(m)
	for j := 3; j < m; j += 17 {
		tt := (float64(j) + 0.5) * h
		x1, x2 := sol.StateAt(0, tt), sol.StateAt(1, tt)
		if math.Abs(x2-2*x1) > 1e-9 {
			t.Fatalf("constraint violated at t=%g: x2=%g, 2x1=%g", tt, x2, x1*2)
		}
		want := 1 - math.Exp(-tt)
		if math.Abs(x1-want) > 5e-4 {
			t.Fatalf("x1(%g) = %g, want %g", tt, x1, want)
		}
	}
}

func TestSolveFractionalRelaxation(t *testing.T) {
	// d^½x/dt^½ = −x + u, step input: x(t) = 1 − E_½(−√t).
	sys, err := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	T := 2.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, 2048, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.25, 0.5, 1.0, 1.5, 1.9} {
		ml, err := specfn.MittagLeffler(0.5, -math.Sqrt(tt))
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - ml
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("fractional x(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestSolveFractionalOtherOrders(t *testing.T) {
	for _, alpha := range []float64{0.3, 0.7, 1.2} {
		sys, err := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), alpha)
		if err != nil {
			t.Fatal(err)
		}
		T := 1.5
		sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, 2048, T, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, tt := range []float64{0.5, 1.0, 1.4} {
			ml, err := specfn.MittagLeffler(alpha, -math.Pow(tt, alpha))
			if err != nil {
				t.Fatal(err)
			}
			want := 1 - ml
			if got := sol.StateAt(0, tt); math.Abs(got-want) > 3e-2*(1+math.Abs(want)) {
				t.Fatalf("α=%g: x(%g) = %g, want %g", alpha, tt, got, want)
			}
		}
	}
}

func TestSolveSecondOrderOscillator(t *testing.T) {
	// ẍ = −ω²x + u, step input: x = (1 − cos ωt)/ω².
	w := 3.0
	sys := &System{
		Terms: []Term{
			{Order: 2, Coeff: scalarCSR(1)},
			{Order: 0, Coeff: scalarCSR(w * w)},
		},
		B: scalarCSR(1),
	}
	T := 2.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, 1024, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range waveform.UniformTimes(16, T) {
		want := (1 - math.Cos(w*tt)) / (w * w)
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 5e-3 {
			t.Fatalf("x(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestSolveDampedSecondOrder(t *testing.T) {
	// ẍ + 2ζω·ẋ + ω²x = u (NewSecondOrder path). Underdamped step response.
	w, zeta := 4.0, 0.25
	sys, err := NewSecondOrder(scalarCSR(1), scalarCSR(2*zeta*w), scalarCSR(w*w), scalarCSR(1))
	if err != nil {
		t.Fatal(err)
	}
	T := 3.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, 2048, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wd := w * math.Sqrt(1-zeta*zeta)
	exact := func(tt float64) float64 {
		return (1 - math.Exp(-zeta*w*tt)*(math.Cos(wd*tt)+zeta*w/wd*math.Sin(wd*tt))) / (w * w)
	}
	for _, tt := range waveform.UniformTimes(16, T) {
		if got := sol.StateAt(0, tt); math.Abs(got-exact(tt)) > 5e-3/(w*w)+2e-3 {
			t.Fatalf("x(%g) = %g, want %g", tt, got, exact(tt))
		}
	}
}

func TestSolveInitialCondition(t *testing.T) {
	// ẋ = −x, x(0) = 1: pure decay.
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	m, T := 512, 3.0
	sol, err := Solve(sys, []waveform.Signal{waveform.Zero()}, m, T, Options{X0: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	h := T / float64(m)
	for j := 0; j < m; j += 37 {
		tt := (float64(j) + 0.5) * h
		want := math.Exp(-tt)
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 3e-4 {
			t.Fatalf("x(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestSolveInitialConditionRejectedForFractional(t *testing.T) {
	sys, _ := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0.5)
	if _, err := Solve(sys, []waveform.Signal{waveform.Zero()}, 16, 1, Options{X0: []float64{1}}); err == nil {
		t.Fatal("Solve accepted X0 for a fractional system")
	}
}

func TestSolveX0LengthMismatch(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	if _, err := Solve(sys, []waveform.Signal{waveform.Zero()}, 16, 1, Options{X0: []float64{1, 2}}); err == nil {
		t.Fatal("Solve accepted wrong-length X0")
	}
}

func TestSolveInputCountMismatch(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	if _, err := Solve(sys, nil, 16, 1, Options{}); err == nil {
		t.Fatal("Solve accepted missing inputs")
	}
	if _, err := Solve(sys, []waveform.Signal{nil}, 16, 1, Options{}); err == nil {
		t.Fatal("Solve accepted nil input signal")
	}
}

func TestSystemValidate(t *testing.T) {
	ok := scalarCSR(1)
	cases := []System{
		{B: ok}, // no terms
		{Terms: []Term{{Order: 0, Coeff: ok}}, B: ok},                                   // purely algebraic
		{Terms: []Term{{Order: -1, Coeff: ok}}, B: ok},                                  // negative order
		{Terms: []Term{{Order: 1, Coeff: nil}}, B: ok},                                  // nil coeff
		{Terms: []Term{{Order: 1, Coeff: ok}}},                                          // nil B
		{Terms: []Term{{Order: 1, Coeff: csrFrom(2, 2, []float64{1, 0, 0, 1})}}, B: ok}, // dim mismatch
	}
	for i := range cases {
		if err := cases[i].Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted invalid system", i)
		}
	}
}

func TestNewFDERejectsNonPositiveAlpha(t *testing.T) {
	if _, err := NewFDE(scalarCSR(1), scalarCSR(-1), scalarCSR(1), 0); err == nil {
		t.Fatal("NewFDE accepted α=0")
	}
}

func TestWithOutput(t *testing.T) {
	e := csrFrom(2, 2, []float64{1, 0, 0, 1})
	a := csrFrom(2, 2, []float64{-1, 0, 0, -2})
	b := csrFrom(2, 1, []float64{1, 1})
	sys, _ := NewDAE(e, a, b)
	c := csrFrom(1, 2, []float64{1, -1})
	sysC, err := sys.WithOutput(c)
	if err != nil {
		t.Fatal(err)
	}
	if sysC.Outputs() != 1 {
		t.Fatalf("Outputs = %d, want 1", sysC.Outputs())
	}
	sol, err := Solve(sysC, []waveform.Signal{waveform.Step(1, 0)}, 256, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := sol.OutputAt(1.0)
	want := (1 - math.Exp(-1)) - (1-math.Exp(-2))/2
	if math.Abs(y[0]-want) > 5e-3 {
		t.Fatalf("y(1) = %g, want %g", y[0], want)
	}
	badC := csrFrom(1, 3, []float64{1, 1, 1})
	if _, err := sys.WithOutput(badC); err == nil {
		t.Fatal("WithOutput accepted mismatched C")
	}
}

// Property: the OPM solution satisfies the operational-matrix equation to
// machine precision on random stable multi-term systems.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 4 + rng.Intn(24)
		// Random stable-ish system: E diag-dominant, A with negative diag.
		ec, ac := sparse.NewCOO(n, n), sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			ec.Add(i, i, 1+rng.Float64())
			ac.Add(i, i, -1-rng.Float64())
			if j := rng.Intn(n); j != i {
				ac.Add(i, j, 0.3*rng.NormFloat64())
			}
		}
		bcoo := sparse.NewCOO(n, 1)
		for i := 0; i < n; i++ {
			bcoo.Add(i, 0, rng.NormFloat64())
		}
		alpha := []float64{0.5, 1, 1.5, 2}[rng.Intn(4)]
		sys := &System{
			Terms: []Term{
				{Order: alpha, Coeff: ec.ToCSR()},
				{Order: 0, Coeff: ac.ToCSR().Scale(-1)},
			},
			B: bcoo.ToCSR(),
		}
		u := []waveform.Signal{waveform.Sine(1, 0.3, 0.2)}
		sol, err := Solve(sys, u, m, 1+rng.Float64(), Options{})
		if err != nil {
			return false
		}
		res, err := ResidualNorm(sys, sol, u)
		if err != nil {
			return false
		}
		return res < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The order-1 fast path and the generic full-history path must agree: solve
// the same DAE as order 1 (fast recurrence) and as order 1+0ε via a Term
// list forcing the slow path, by comparing against a full-history fractional
// solve with α exactly 1.
func TestFastPathMatchesFullHistory(t *testing.T) {
	e := csrFrom(2, 2, []float64{1, 0, 0, 1})
	a := csrFrom(2, 2, []float64{-2, 1, 0.5, -3})
	b := csrFrom(2, 1, []float64{1, 2})
	u := []waveform.Signal{waveform.Sine(1, 0.5, 0)}
	m, T := 64, 2.0

	fast, err := NewDAE(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	fastSol, err := Solve(fast, u, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Same system via NewFDE with α = 1 — NewFDE uses the same Term layout,
	// so force the slow path with a custom term of order 1 wrapped as a
	// "fractional" term by building the system manually with order 1 but
	// relying on SolveAdaptive (dense D̃) instead.
	steps := make([]float64, m)
	for i := range steps {
		steps[i] = T / float64(m)
	}
	adSol, err := SolveAdaptive(fast, u, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalf(fastSol.Coefficients(), adSol.Coefficients(), 1e-8*(1+fastSol.Coefficients().MaxAbs())) {
		t.Fatal("fast-path uniform solve disagrees with dense adaptive solve on equal steps")
	}
}

// Allocation regression for the solveInto chain: the main column loop reuses
// the factorization scratch, the RHS/input buffers, the column slab, and the
// integer-history ring, so the solver's allocation count is O(1) in the
// number of columns — buffers get larger on a bigger grid, but there are not
// more of them. An 8× grid growth is allowed only a small constant slack
// (map/slice resizes inside setup code), far below the ~m allocations the
// pre-optimization loop performed.
func TestSolveAllocsIndependentOfColumns(t *testing.T) {
	sys, err := NewSecondOrder(scalarCSR(1), scalarCSR(0.6), scalarCSR(4), scalarCSR(1))
	if err != nil {
		t.Fatal(err)
	}
	u := []waveform.Signal{waveform.Sine(1, 0.5, 0)}
	allocsAt := func(m int) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Solve(sys, u, m, 2, Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocsAt(256)
	large := allocsAt(2048)
	if large > small+32 {
		t.Fatalf("allocations grew with columns: m=256 → %.0f, m=2048 → %.0f (want ≤ +32)", small, large)
	}
}

func TestSolveCoefficients(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	m, T := 128, 2.0
	uc := mat.NewDense(1, m)
	for j := 0; j < m; j++ {
		uc.Set(0, j, 1) // step input, exact BPF coefficients
	}
	sol, err := SolveCoefficients(sys, uc, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-1)
	if got := sol.StateAt(0, 1); math.Abs(got-want) > 5e-3 {
		t.Fatalf("x(1) = %g, want %g", got, want)
	}
	if _, err := SolveCoefficients(sys, mat.NewDense(1, m+1), m, T, Options{}); err == nil {
		t.Fatal("SolveCoefficients accepted wrong-shape U")
	}
}

func TestSampleOutputsAndStates(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sol, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, 64, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := waveform.UniformTimes(10, 1)
	ys := sol.SampleOutputs(ts)
	xs := sol.SampleStates(ts)
	if len(ys) != 1 || len(xs) != 1 || len(ys[0]) != 10 {
		t.Fatal("sampling shapes wrong")
	}
	for k := range ts {
		if ys[0][k] != xs[0][k] {
			t.Fatal("identity output differs from state")
		}
	}
	if s := sol.String(); s == "" {
		t.Fatal("empty String()")
	}
}
