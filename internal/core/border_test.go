package core

import (
	"math"
	"testing"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

// A system driven by the derivative of its input must match the same system
// driven directly by that derivative: ẋ = −x + u̇ with u = ramp (u̇ = step).
func TestSolveInputDerivative(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sysD := &System{Terms: sys.Terms, B: sys.B, BOrder: 1}
	if err := sysD.Validate(); err != nil {
		t.Fatal(err)
	}
	m, T := 512, 3.0
	ramp, err := Solve(sysD, []waveform.Signal{waveform.Ramp(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := T / float64(m)
	for j := 4; j < m; j += 29 {
		tt := (float64(j) + 0.5) * h
		a, b := ramp.StateAt(0, tt), step.StateAt(0, tt)
		if math.Abs(a-b) > 1e-3 {
			t.Fatalf("derivative-input mismatch at t=%g: %g vs %g", tt, a, b)
		}
	}
}

// Adaptive path: same equivalence on non-uniform steps.
func TestSolveAdaptiveInputDerivative(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sysD := &System{Terms: sys.Terms, B: sys.B, BOrder: 1}
	steps := []float64{0.05, 0.07, 0.1, 0.14, 0.2, 0.28, 0.4, 0.56}
	ramp, err := SolveAdaptive(sysD, []waveform.Signal{waveform.Ramp(1, 0)}, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := SolveAdaptive(sys, []waveform.Signal{waveform.Step(1, 0)}, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edges := ramp.Basis().(interface{ Edges() []float64 }).Edges()
	for j := 1; j < len(steps); j++ {
		tt := (edges[j] + edges[j+1]) / 2
		a, b := ramp.StateAt(0, tt), step.StateAt(0, tt)
		if math.Abs(a-b) > 2e-2 {
			t.Fatalf("adaptive derivative-input mismatch at t=%g: %g vs %g", tt, a, b)
		}
	}
}

func TestValidateRejectsNegativeBOrder(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	bad := &System{Terms: sys.Terms, B: sys.B, BOrder: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted negative BOrder")
	}
}

func TestSolveAdaptiveAutoRejectsBOrder(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sysD := &System{Terms: sys.Terms, B: sys.B, BOrder: 1}
	if _, _, err := SolveAdaptiveAuto(sysD, []waveform.Signal{waveform.Zero()}, 1, AdaptiveOptions{}); err == nil {
		t.Fatal("SolveAdaptiveAuto accepted BOrder != 0")
	}
}

// applyInputOrder's O(m) alternating-tail recurrence must agree with the
// naive Toeplitz convolution it replaces (to rounding — the summation order
// differs), and the detection must fire exactly for integer-order sequences.
func TestApplyInputOrderRecurrence(t *testing.T) {
	const m = 200
	bpf, err := basis.NewBPF(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	dInt := bpf.DiffCoeffs(1)
	if !toeplitzTailAlternates(dInt) {
		t.Fatal("DiffCoeffs(1) did not trigger the alternating-tail fast path")
	}
	if toeplitzTailAlternates(bpf.DiffCoeffs(0.5)) {
		t.Fatal("DiffCoeffs(0.5) must not trigger the integer-order fast path")
	}
	uc := mat.NewDense(3, m)
	for c := 0; c < 3; c++ {
		row := uc.Row(c)
		for j := range row {
			row[j] = math.Sin(float64(j)*0.07+float64(c)) + 0.3*float64(c)
		}
	}
	got := applyInputOrder(uc, dInt)
	for c := 0; c < 3; c++ {
		row := uc.Row(c)
		for j := 0; j < m; j++ {
			want := 0.0
			for i := 0; i <= j; i++ {
				want += row[i] * dInt[j-i]
			}
			// The naive sum's own rounding grows with j; compare against the
			// magnitude of the sequence to keep the bound meaningful.
			scale := math.Abs(want) + math.Abs(dInt[0])
			if diff := math.Abs(got.At(c, j) - want); diff > 1e-10*scale {
				t.Fatalf("U_eff[%d][%d] = %g, naive %g (|Δ|=%g)", c, j, got.At(c, j), want, diff)
			}
		}
	}
}
