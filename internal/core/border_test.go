package core

import (
	"math"
	"testing"

	"opmsim/internal/waveform"
)

// A system driven by the derivative of its input must match the same system
// driven directly by that derivative: ẋ = −x + u̇ with u = ramp (u̇ = step).
func TestSolveInputDerivative(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sysD := &System{Terms: sys.Terms, B: sys.B, BOrder: 1}
	if err := sysD.Validate(); err != nil {
		t.Fatal(err)
	}
	m, T := 512, 3.0
	ramp, err := Solve(sysD, []waveform.Signal{waveform.Ramp(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := Solve(sys, []waveform.Signal{waveform.Step(1, 0)}, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := T / float64(m)
	for j := 4; j < m; j += 29 {
		tt := (float64(j) + 0.5) * h
		a, b := ramp.StateAt(0, tt), step.StateAt(0, tt)
		if math.Abs(a-b) > 1e-3 {
			t.Fatalf("derivative-input mismatch at t=%g: %g vs %g", tt, a, b)
		}
	}
}

// Adaptive path: same equivalence on non-uniform steps.
func TestSolveAdaptiveInputDerivative(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sysD := &System{Terms: sys.Terms, B: sys.B, BOrder: 1}
	steps := []float64{0.05, 0.07, 0.1, 0.14, 0.2, 0.28, 0.4, 0.56}
	ramp, err := SolveAdaptive(sysD, []waveform.Signal{waveform.Ramp(1, 0)}, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := SolveAdaptive(sys, []waveform.Signal{waveform.Step(1, 0)}, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edges := ramp.Basis().(interface{ Edges() []float64 }).Edges()
	for j := 1; j < len(steps); j++ {
		tt := (edges[j] + edges[j+1]) / 2
		a, b := ramp.StateAt(0, tt), step.StateAt(0, tt)
		if math.Abs(a-b) > 2e-2 {
			t.Fatalf("adaptive derivative-input mismatch at t=%g: %g vs %g", tt, a, b)
		}
	}
}

func TestValidateRejectsNegativeBOrder(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	bad := &System{Terms: sys.Terms, B: sys.B, BOrder: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted negative BOrder")
	}
}

func TestSolveAdaptiveAutoRejectsBOrder(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	sysD := &System{Terms: sys.Terms, B: sys.B, BOrder: 1}
	if _, _, err := SolveAdaptiveAuto(sysD, []waveform.Signal{waveform.Zero()}, 1, AdaptiveOptions{}); err == nil {
		t.Fatal("SolveAdaptiveAuto accepted BOrder != 0")
	}
}
