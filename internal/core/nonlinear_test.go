package core

import (
	"errors"
	"math"
	"testing"

	"opmsim/internal/sparse"
	"opmsim/internal/waveform"
)

// cubicNL implements g(x) = k·x³ on a scalar state.
type cubicNL struct{ k float64 }

func (c cubicNL) Eval(x, out []float64) {
	out[0] = c.k * x[0] * x[0] * x[0]
}

func (c cubicNL) StampJacobian(x []float64, jac *sparse.COO) {
	jac.Add(0, 0, 3*c.k*x[0]*x[0])
}

// ẋ + x³ = u, step input: steady state solves x³ = 1 → x → 1; compare the
// whole trajectory against a fine backward-Euler integration done here in
// the test.
func TestSolveNonlinearCubic(t *testing.T) {
	sys := &System{
		Terms: []Term{
			{Order: 1, Coeff: scalarCSR(1)},
			{Order: 0, Coeff: scalarCSR(0)},
		},
		B: scalarCSR(1),
	}
	m, T := 1024, 5.0
	sol, err := SolveNonlinear(sys, cubicNL{k: 1}, []waveform.Signal{waveform.Step(1, 0)}, m, T, NonlinearOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: backward Euler with Newton, 100k steps.
	steps := 100000
	h := T / float64(steps)
	ref := make([]float64, steps+1)
	x := 0.0
	for k := 1; k <= steps; k++ {
		// Solve x + h(x³ − 1) = xPrev by Newton.
		xn := x
		for it := 0; it < 50; it++ {
			f := xn + h*(xn*xn*xn-1) - x
			fp := 1 + 3*h*xn*xn
			d := f / fp
			xn -= d
			if math.Abs(d) < 1e-14 {
				break
			}
		}
		x = xn
		ref[k] = x
	}
	hOPM := T / float64(m)
	for j := 20; j < m; j += 97 {
		tt := (float64(j) + 0.5) * hOPM
		want := ref[int(tt/h)]
		if got := sol.StateAt(0, tt); math.Abs(got-want) > 2e-3 {
			t.Fatalf("x(%g) = %g, want %g", tt, got, want)
		}
	}
	// Steady state.
	if got := sol.StateAt(0, T*0.99); math.Abs(got-1) > 1e-2 {
		t.Fatalf("steady state = %g, want 1", got)
	}
}

// With g ≡ 0 stamped as a zero cubic, the nonlinear solver must agree with
// the linear one exactly.
func TestSolveNonlinearReducesToLinear(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	u := []waveform.Signal{waveform.Sine(1, 0.4, 0.1)}
	m, T := 128, 2.0
	lin, err := Solve(sys, u, m, T, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := SolveNonlinear(sys, cubicNL{k: 0}, u, m, T, NonlinearOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m; j++ {
		a, b := lin.Coefficients().At(0, j), nl.Coefficients().At(0, j)
		if math.Abs(a-b) > 1e-10 {
			t.Fatalf("column %d: linear %g vs nonlinear %g", j, a, b)
		}
	}
}

// Nonlinear + fractional: dᵅx + x³ = u converges to the same steady state
// x = 1 (the fractional order changes the transient, not the fixed point).
func TestSolveNonlinearFractional(t *testing.T) {
	sys := &System{
		Terms: []Term{
			{Order: 0.5, Coeff: scalarCSR(1)},
			{Order: 0, Coeff: scalarCSR(0)},
		},
		B: scalarCSR(1),
	}
	sol, err := SolveNonlinear(sys, cubicNL{k: 1}, []waveform.Signal{waveform.Step(1, 0)}, 1024, 20, NonlinearOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.StateAt(0, 19.9); math.Abs(got-1) > 5e-2 {
		t.Fatalf("fractional steady state = %g, want 1", got)
	}
}

func TestSolveNonlinearValidation(t *testing.T) {
	sys, _ := NewDAE(scalarCSR(1), scalarCSR(-1), scalarCSR(1))
	u := []waveform.Signal{waveform.Zero()}
	if _, err := SolveNonlinear(sys, nil, u, 16, 1, NonlinearOptions{}); err == nil {
		t.Fatal("accepted nil nonlinearity")
	}
	opt := NonlinearOptions{}
	opt.X0 = []float64{1}
	if _, err := SolveNonlinear(sys, cubicNL{}, u, 16, 1, opt); err == nil {
		t.Fatal("accepted X0")
	}
}

// explodingNL has no finite solution for the assembled column equation when
// the input is large: g(x) = −x keeps the Jacobian singular at the origin
// with A = +1 cancelling… instead use a Jacobian that is exactly singular.
type singularNL struct{}

func (singularNL) Eval(x, out []float64)                    { out[0] = 0 }
func (singularNL) StampJacobian(x []float64, j *sparse.COO) {}

func TestSolveNonlinearSingularJacobian(t *testing.T) {
	// E = 0, A = 0 with g contributing nothing: every column Jacobian is
	// the zero matrix → factorization must fail loudly.
	sys := &System{
		Terms: []Term{
			{Order: 1, Coeff: scalarCSR(0)},
			{Order: 0, Coeff: scalarCSR(0)},
		},
		B: scalarCSR(1),
	}
	_, err := SolveNonlinear(sys, singularNL{}, []waveform.Signal{waveform.Step(1, 0)}, 4, 1, NonlinearOptions{})
	if err == nil {
		t.Fatal("accepted singular Jacobian")
	}
}

// diodeNL is the classic stiff exponential nonlinearity
// g(v) = Is·(exp(v/Vt) − 1): an undamped Newton step from a cold start
// overshoots into exp overflow, which is exactly what the Armijo damping
// exists to prevent.
type diodeNL struct{ is, vt float64 }

func (d diodeNL) Eval(x, out []float64) {
	out[0] = d.is * (math.Exp(x[0]/d.vt) - 1)
}

func (d diodeNL) StampJacobian(x []float64, jac *sparse.COO) {
	jac.Add(0, 0, d.is/d.vt*math.Exp(x[0]/d.vt))
}

// A diode driven by a 2 A step through a weak conductance: the first Newton
// direction from x = 0 is ≈ 14 V, and exp(14/0.025) overflows. The damped
// solver must converge to the operating point; the undamped (pre-hardening)
// iteration must fail with a typed Diagnostic rather than crash or return
// garbage.
func TestSolveNonlinearStiffDiodeDamping(t *testing.T) {
	sys := &System{
		Terms: []Term{
			{Order: 1, Coeff: scalarCSR(1e-3)},
			{Order: 0, Coeff: scalarCSR(0.01)},
		},
		B: scalarCSR(1),
	}
	d := diodeNL{is: 1e-12, vt: 0.025}
	u := []waveform.Signal{waveform.Step(2, 0)}
	m, T := 64, 1.0

	rep := &SolveReport{}
	opt := NonlinearOptions{MaxNewton: 200}
	opt.Report = rep
	sol, err := SolveNonlinear(sys, d, u, m, T, opt)
	if err != nil {
		t.Fatalf("damped Newton failed on the stiff diode: %v", err)
	}
	if rep.NewtonDampings == 0 {
		t.Fatal("expected Armijo halvings on the stiff diode, report shows none")
	}
	// Operating point: 0.01·v + Is·(exp(v/Vt) − 1) = 2, solved here by scalar
	// Newton. (Comparing voltages, not the KCL residual: the exponential
	// amplifies a 1e-3 voltage error into an O(0.1) current residual.)
	vStar := 0.7
	for it := 0; it < 100; it++ {
		f := 0.01*vStar + d.is*(math.Exp(vStar/d.vt)-1) - 2
		fp := 0.01 + d.is/d.vt*math.Exp(vStar/d.vt)
		vStar -= f / fp
	}
	if v := sol.StateAt(0, T*0.99); math.Abs(v-vStar) > 5e-3 {
		t.Fatalf("steady state v = %g, operating point %g", v, vStar)
	}

	und := NonlinearOptions{MaxNewton: 200, NoDamping: true}
	_, err = SolveNonlinear(sys, d, u, m, T, und)
	if err == nil {
		t.Fatal("undamped Newton unexpectedly survived the stiff diode")
	}
	var dg *Diagnostic
	if !errors.As(err, &dg) {
		t.Fatalf("undamped failure is not a *Diagnostic: %v", err)
	}
}
