package core

import (
	"math"
	"math/rand"
	"testing"

	"opmsim/internal/mat"
	"opmsim/internal/waveform"
)

// maxRelDiff returns max_ij |a−b| / max(1, max|b|), the relative metric the
// FFT-tier acceptance bound (≤1e-10) is stated in.
func maxRelDiff(a, b *mat.Dense) float64 {
	scale := b.MaxAbs()
	if scale < 1 {
		scale = 1
	}
	d := 0.0
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if v := math.Abs(a.At(i, j) - b.At(i, j)); v > d {
				d = v
			}
		}
	}
	return d / scale
}

// Engine-level check of the segment decomposition: with a tiny base segment
// the FFT tier exercises many firing levels even on small grids, and must
// reproduce the naive triangular summation at roundoff for m on and around
// every power-of-two boundary.
func TestHistoryFFTEngineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 3
	for _, m := range []int{1, 2, 5, 8, 9, 16, 31, 32, 33, 63, 64, 65, 100, 127, 130} {
		cols := make([][]float64, m)
		for j := range cols {
			cols[j] = make([]float64, n)
			for i := range cols[j] {
				cols[j][i] = rng.NormFloat64()
			}
		}
		// Decaying Toeplitz coefficients, like the fractional ρ_α tails.
		c := make([]float64, m)
		for d := range c {
			c[d] = rng.NormFloat64() / float64(1+d)
		}
		opt := &Options{HistoryMode: HistoryFFT}
		eng, err := newHistoryEngine(n, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		eng.fftBase = 4 // exercise many segment levels on small grids
		eng.addToeplitz(0, c)
		scale := 0.0
		for j := 0; j < m; j++ {
			// Naive reference for column j.
			want := make([]float64, n)
			for i := 0; i < j; i++ {
				mat.Axpy(c[j-i], cols[i], want)
			}
			got, err := eng.history(0, j, cols)
			if err != nil {
				t.Fatalf("m=%d j=%d: %v", m, j, err)
			}
			for i := range want {
				if a := math.Abs(want[i]); a > scale {
					scale = a
				}
				if d := math.Abs(got[i] - want[i]); d > 1e-11*(1+scale) {
					t.Fatalf("m=%d j=%d state %d: fft %g vs naive %g (|Δ|=%g)", m, j, i, got[i], want[i], d)
				}
			}
		}
	}
}

// Full solves through the FFT tier must agree with the naive reference to
// well under the 1e-10 acceptance bound, for grid sizes straddling segment
// boundaries, and must be bitwise-identical across worker counts (each
// accumulator row is computed by exactly one task in a fixed order).
func TestSolveHistoryFFTMatchesExact(t *testing.T) {
	sys, u := fracTestSystem(5, 11)
	for _, m := range []int{63, 64, 65, 128, 200, 257, 520} {
		ref, err := Solve(sys, u, m, 2, Options{HistoryNaive: true})
		if err != nil {
			t.Fatalf("m=%d naive: %v", m, err)
		}
		var first *Solution
		for _, workers := range []int{1, 2, 8} {
			got, err := Solve(sys, u, m, 2, Options{HistoryMode: HistoryFFT, Workers: workers})
			if err != nil {
				t.Fatalf("m=%d workers=%d: %v", m, workers, err)
			}
			if d := maxRelDiff(got.Coefficients(), ref.Coefficients()); d > 1e-10 {
				t.Fatalf("m=%d workers=%d: fft vs naive rel diff %g > 1e-10", m, workers, d)
			}
			if first == nil {
				first = got
			} else {
				sameDense(t, "fft determinism across workers", got.Coefficients(), first.Coefficients())
			}
		}
	}
}

// The nonlinear solver threads HistoryMode through its identical history
// machinery.
func TestSolveNonlinearHistoryFFTMatchesExact(t *testing.T) {
	sys, u := fracTestSystem(3, 19)
	g := &vecCubicNL{c: 0.2}
	ref, err := SolveNonlinear(sys, g, u, 130, 2, NonlinearOptions{Options: Options{HistoryNaive: true}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveNonlinear(sys, g, u, 130, 2, NonlinearOptions{Options: Options{HistoryMode: HistoryFFT}})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(got.Coefficients(), ref.Coefficients()); d > 1e-10 {
		t.Fatalf("nonlinear fft vs naive rel diff %g > 1e-10", d)
	}
}

// Adaptive grids have no Toeplitz structure: HistoryFFT must be accepted but
// resolve to the exact engine, keeping the result bitwise-identical to the
// naive reference and reporting "exact".
func TestSolveAdaptiveHistoryFFTFallsBackToExact(t *testing.T) {
	sys, u := fracTestSystem(4, 7)
	steps := make([]float64, 40)
	h := 0.01
	for i := range steps {
		steps[i] = h
		h *= 1.015
	}
	ref, err := SolveAdaptive(sys, u, steps, Options{HistoryNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := &SolveReport{}
	got, err := SolveAdaptive(sys, u, steps, Options{HistoryMode: HistoryFFT, Report: rep})
	if err != nil {
		t.Fatal(err)
	}
	sameDense(t, "adaptive fft-mode vs naive", got.Coefficients(), ref.Coefficients())
	if rep.HistoryEngine != "exact" {
		t.Fatalf("adaptive HistoryEngine = %q, want \"exact\"", rep.HistoryEngine)
	}
}

// HistoryAuto must resolve by grid size, HistoryNaive must win over any
// mode, and the resolution must be observable in the report.
func TestHistoryAutoCrossover(t *testing.T) {
	sys, u := fracTestSystem(3, 5)
	cases := []struct {
		name string
		m    int
		opt  Options
		want string
	}{
		{"auto small", 96, Options{}, "exact"},
		{"auto large", historyFFTCrossover, Options{}, "fft"},
		{"exact large", historyFFTCrossover, Options{HistoryMode: HistoryExact}, "exact"},
		{"fft small", 96, Options{HistoryMode: HistoryFFT}, "fft"},
		{"naive wins", historyFFTCrossover, Options{HistoryNaive: true, HistoryMode: HistoryFFT}, "naive"},
	}
	for _, tc := range cases {
		rep := &SolveReport{}
		tc.opt.Report = rep
		if _, err := Solve(sys, u, tc.m, 2, tc.opt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.HistoryEngine != tc.want {
			t.Fatalf("%s: HistoryEngine = %q, want %q", tc.name, rep.HistoryEngine, tc.want)
		}
	}

	// Integer-order systems never engage the general engine; the report
	// field stays empty whatever the mode says.
	isys, err := NewSecondOrder(scalarCSR(1), scalarCSR(0.6), scalarCSR(4), scalarCSR(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := &SolveReport{}
	if _, err := Solve(isys, []waveform.Signal{waveform.Sine(1, 0.5, 0)}, 96, 2, Options{HistoryMode: HistoryFFT, Report: rep}); err != nil {
		t.Fatal(err)
	}
	if rep.HistoryEngine != "" {
		t.Fatalf("integer-order HistoryEngine = %q, want empty", rep.HistoryEngine)
	}
}

// An unknown mode is rejected by every entry point before any work happens.
func TestHistoryModeValidation(t *testing.T) {
	sys, u := fracTestSystem(3, 5)
	bad := Options{HistoryMode: HistoryMode("fast")}
	if _, err := Solve(sys, u, 32, 2, bad); err == nil {
		t.Fatal("Solve accepted HistoryMode \"fast\"")
	}
	if _, err := SolveAdaptive(sys, u, []float64{0.1, 0.11, 0.12}, bad); err == nil {
		t.Fatal("SolveAdaptive accepted HistoryMode \"fast\"")
	}
	if _, err := SolveNonlinear(sys, &vecCubicNL{c: 0.1}, u, 32, 2, NonlinearOptions{Options: bad}); err == nil {
		t.Fatal("SolveNonlinear accepted HistoryMode \"fast\"")
	}

	for _, tc := range []struct {
		in   string
		want HistoryMode
		ok   bool
	}{
		{"", HistoryAuto, true},
		{"auto", HistoryAuto, true},
		{"exact", HistoryExact, true},
		{"fft", HistoryFFT, true},
		{"FFT", "", false},
		{"naive", "", false},
	} {
		got, err := ParseHistoryMode(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("ParseHistoryMode(%q) = %q, %v", tc.in, got, err)
		}
	}
}
