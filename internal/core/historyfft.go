package core

import (
	"fmt"
	"math/bits"

	"opmsim/internal/fft"
	"opmsim/internal/mat"
)

// The FFT tier of the history engine replaces the blocked O(n·m²) evaluation
// of the Toeplitz history sums w_j = Σ_{i<j} c_{j−i}·x_i with Lubich-style
// segmented fast convolution, O(n·m log² m) total:
//
//   - solved columns are grouped into segments of power-of-two lengths
//     L = base·2^v. When column j (a multiple of base) is reached, exactly
//     one segment fires: the one of length L = base·2^v with v the number of
//     trailing zero bits of j/base, covering the just-completed columns
//     [j−L, j). Its contribution to the next L columns [j, j+L) is a linear
//     convolution against the lag kernel k[d] = c_d (d ≥ 1), evaluated as a
//     2L-point circular convolution per state row and accumulated into the
//     term's n×m accumulator. Over a run this fires segments of length base
//     at every odd multiple of base, 2·base at every odd multiple of 2·base,
//     and so on — each (past, future) column pair is covered by exactly one
//     segment, which is the classical zero-delay partition of the triangle
//     {i < j} into squares;
//   - the per-column remainder — past columns inside the current base
//     segment — is folded directly, exactly like the exact engine's tail;
//   - the kernel spectrum is computed once per (term, L) and cached; the n
//     row convolutions of a firing are independent and fan out over the
//     shared worker pool, each row's accumulator slice owned by exactly one
//     task.
//
// Determinism: the per-row transforms and the accumulation order into each
// accumulator row are independent of the worker partition, so FFT-mode
// results are bitwise-identical across Workers settings. They are *not*
// bitwise-identical to the exact engine — circular convolution reorders the
// floating-point sums — but agree to ~1e-12 relative on the golden
// waveforms; the exact engine remains the default cross-check below the
// crossover.
const (
	// historyFFTBase is the base segment length: the tail fold is O(base)
	// per column, and no transform is shorter than 2·base. Engines override
	// it in tests to exercise many segment levels on small grids.
	historyFFTBase = 64
	// historyFFTCrossover is the grid size at which HistoryAuto switches
	// from the exact blocked engine to the FFT tier. Measured with the
	// historyfft ablation (BENCH_history_fft.json, see EXPERIMENTS.md) the
	// single-threaded FFT tier is already ahead at m = 256 (1.7×) and wins
	// 5.6× at m = 4096; auto stays on the bitwise-exact engine up to 511
	// columns anyway, both as margin for machines where the parallel
	// blocked engine closes the small-m gap and so that small default-mode
	// runs (the m = 256 golden grids) keep their historical bit patterns.
	historyFFTCrossover = 512
)

// HistoryMode names the engine evaluating the general (non-recurrence)
// history sums of eq. (28); see Options.HistoryMode.
type HistoryMode string

const (
	// HistoryAuto (equivalently the zero value "") selects HistoryFFT for
	// grids with at least historyFFTCrossover columns, HistoryExact below.
	HistoryAuto HistoryMode = "auto"
	// HistoryExact is the blocked, parallel engine of PR 1:
	// bitwise-identical to the naive reference summation for every Workers
	// setting.
	HistoryExact HistoryMode = "exact"
	// HistoryFFT is the segmented fast-convolution engine: O(n·m log² m)
	// instead of O(n·m²), matching the exact engine to roundoff (~1e-12
	// relative) but not bit for bit.
	HistoryFFT HistoryMode = "fft"
)

// ParseHistoryMode converts a CLI flag value into a HistoryMode, accepting
// exactly auto, exact, and fft (empty means auto).
func ParseHistoryMode(s string) (HistoryMode, error) {
	switch m := HistoryMode(s); m {
	case "":
		return HistoryAuto, nil
	case HistoryAuto, HistoryExact, HistoryFFT:
		return m, nil
	}
	return "", fmt.Errorf("core: unknown history mode %q (want auto, exact, or fft)", s)
}

// historyFFTEnabled resolves HistoryMode against the grid size.
// HistoryNaive takes precedence over any mode: the reference summation is
// the baseline everything else is validated against.
func (o *Options) historyFFTEnabled(m int) (bool, error) {
	switch o.HistoryMode {
	case "", HistoryAuto:
		return !o.HistoryNaive && m >= historyFFTCrossover, nil
	case HistoryExact:
		return false, nil
	case HistoryFFT:
		return !o.HistoryNaive, nil
	}
	return false, fmt.Errorf("core: unknown HistoryMode %q (want %q, %q, or %q)",
		o.HistoryMode, HistoryAuto, HistoryExact, HistoryFFT)
}

// fftHist is the per-term state of the segmented fast-convolution tier.
type fftHist struct {
	acc   *mat.Dense           // n×m: completed segments' contributions to future columns
	ker   map[int][]complex128 // segment length L → half spectrum of the 2L-point lag kernel
	fired int                  // last column at which a segment fired (idempotency guard)
}

// historyFFT evaluates w_j for a Toeplitz term through the FFT tier: fire
// the segment due at this column (if any), then read the accumulated
// long-range part and fold the in-segment remainder serially.
func (e *historyEngine) historyFFT(t *historyTerm, j int, cols [][]float64) ([]float64, error) {
	base := e.fftBase
	if j > 0 && j%base == 0 && t.fft.fired != j {
		t.fft.fired = j
		if err := e.fireSegment(t, j, cols); err != nil {
			return nil, err
		}
	}
	w := t.w
	acc := t.fft.acc
	for i := 0; i < e.n; i++ {
		w[i] = acc.Row(i)[j]
	}
	t.fold(j, j-j%base, j, cols, w)
	return w, nil
}

// fireSegment runs the one fast-convolution level due at column j (a
// nonzero multiple of the base segment length): with v the number of
// trailing zero bits of j/base, the level covers the L = base·2^v
// just-completed columns [j−L, j) and accumulates their contribution to
// columns [j, min(j+L, m)). The context is checked here — a firing is the
// largest indivisible unit of work in the tier — and worker panics are
// recovered into the returned error exactly like the exact engine's bursts.
func (e *historyEngine) fireSegment(t *historyTerm, j int, cols [][]float64) error {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	L := e.fftBase << bits.TrailingZeros(uint(j/e.fftBase))
	outLen := e.m - j
	if outLen > L {
		outLen = L
	}
	if outLen <= 0 {
		return nil
	}
	ker := e.fftKernel(t, L)
	a := j - L
	nt := e.workers
	if nt > e.n {
		nt = e.n
	}
	var tasks []func()
	for r := 0; r < nt; r++ {
		lo := r * e.n / nt
		hi := (r + 1) * e.n / nt
		if lo >= hi {
			continue
		}
		tasks = append(tasks, func() {
			if e.fault != nil && e.fault.WorkerFault != nil {
				e.fault.WorkerFault()
			}
			e.convRows(t, ker, a, L, j, outLen, lo, hi, cols)
		})
	}
	if len(tasks) <= 1 || e.workers == 1 {
		var firstErr error
		for _, f := range tasks {
			if err := runRecovered(f); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return historyPoolDo(tasks)
}

// convRows convolves state rows [lo, hi) of the completed segment
// [a, a+L) against the cached kernel spectrum and accumulates conv[L+r]
// into future column j+r: conv[L+r] = Σ_p seg[p]·k[L+r−p] with the lag
// L+r−p ranging over [r+1, L+r] ⊂ [1, 2L−1], so the zero-padded 2L-point
// circular convolution never wraps and equals the linear one. Each row's
// accumulator slice is touched by exactly one task, making the fan-out
// race-free and the results independent of the worker count.
func (e *historyEngine) convRows(t *historyTerm, ker []complex128, a, L, j, outLen, lo, hi int, cols [][]float64) {
	n2 := 2 * L
	plan := fft.PlanFor(n2)
	seg := fft.GetFloat(n2)
	spec := fft.GetComplex(L + 1)
	for i := lo; i < hi; i++ {
		for p := 0; p < L; p++ {
			seg[p] = cols[a+p][i]
		}
		for p := L; p < n2; p++ {
			seg[p] = 0
		}
		plan.RealForward(spec, seg)
		for q := range spec {
			spec[q] *= ker[q]
		}
		plan.RealInverse(seg, spec)
		row := t.fft.acc.Row(i)
		for r := 0; r < outLen; r++ {
			row[j+r] += seg[L+r]
		}
	}
	fft.PutFloat(seg)
	fft.PutComplex(spec)
}

// fftKernel returns — building and caching on first use — the half spectrum
// of the 2L-point lag kernel k[0] = 0, k[d] = c_d (coefficients beyond the
// grid are zero). It runs on the orchestrating goroutine before the row
// fan-out, so each (term, L) pays for one kernel transform per run.
func (e *historyEngine) fftKernel(t *historyTerm, L int) []complex128 {
	if s, ok := t.fft.ker[L]; ok {
		return s
	}
	// Batch runs share spectra across scenario engines: identical Toeplitz
	// coefficients give bitwise-identical spectra, so fetching instead of
	// rebuilding cannot perturb any result.
	if e.kernels != nil {
		if s := e.kernels.get(t.key, L); s != nil {
			t.fft.ker[L] = s
			return s
		}
	}
	n2 := 2 * L
	buf := fft.GetFloat(n2)
	buf[0] = 0
	for d := 1; d < n2; d++ {
		if d < len(t.toe) {
			buf[d] = t.toe[d]
		} else {
			buf[d] = 0
		}
	}
	spec := make([]complex128, L+1)
	fft.PlanFor(n2).RealForward(spec, buf)
	fft.PutFloat(buf)
	t.fft.ker[L] = spec
	if e.kernels != nil {
		e.kernels.put(t.key, L, spec)
	}
	return spec
}
