package core

import (
	"fmt"

	"opmsim/internal/basis"
	"opmsim/internal/mat"
)

// Solution is a simulated response: the coefficient matrix X of
// x(t) = X·φ(t) together with the basis it is expressed in.
type Solution struct {
	sys *System
	bas basis.Basis
	x   *mat.Dense // n×m coefficients
}

// Basis returns the basis the solution is expanded in.
func (s *Solution) Basis() basis.Basis { return s.bas }

// Coefficients returns the n×m coefficient matrix X (a live reference).
func (s *Solution) Coefficients() *mat.Dense { return s.x }

// StateAt evaluates state component i at time t.
func (s *Solution) StateAt(i int, t float64) float64 {
	return s.bas.Reconstruct(s.x.Row(i), t)
}

// OutputAt evaluates the output vector y(t) = C·x(t).
func (s *Solution) OutputAt(t float64) []float64 {
	n := s.sys.N()
	xv := make([]float64, n)
	for i := 0; i < n; i++ {
		xv[i] = s.StateAt(i, t)
	}
	if s.sys.C == nil {
		return xv
	}
	return s.sys.C.MulVec(xv, nil)
}

// SampleOutputs evaluates all output channels on the given time grid,
// returning one row per channel.
func (s *Solution) SampleOutputs(times []float64) [][]float64 {
	q := s.sys.Outputs()
	out := make([][]float64, q)
	for c := range out {
		out[c] = make([]float64, len(times))
	}
	for k, t := range times {
		y := s.OutputAt(t)
		for c := range out {
			out[c][k] = y[c]
		}
	}
	return out
}

// SampleStates evaluates all state components on the given time grid,
// returning one row per state.
func (s *Solution) SampleStates(times []float64) [][]float64 {
	n := s.sys.N()
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, len(times))
		for k, t := range times {
			out[i][k] = s.StateAt(i, t)
		}
	}
	return out
}

// DerivativeAt evaluates the fractional derivative d^β x_i/dt^β at time t by
// applying the operational matrix to the solution coefficients:
// coef(dᵝx) = (Dᵝ)ᵀ·coef(x). Only uniform block-pulse solutions support
// this; β may be any real number (negative β yields fractional integrals).
func (s *Solution) DerivativeAt(i int, beta, t float64) (float64, error) {
	bpf, ok := s.bas.(*basis.BPF)
	if !ok {
		return 0, fmt.Errorf("core: DerivativeAt requires a uniform block-pulse solution, have %s", s.bas.Name())
	}
	if isExactZero(beta) {
		return s.StateAt(i, t), nil
	}
	j := int(t / bpf.Step())
	if j < 0 || j >= bpf.Size() {
		return 0, nil
	}
	c := bpf.DiffCoeffs(beta)
	row := s.x.Row(i)
	y := 0.0
	for k := 0; k <= j; k++ {
		y += row[k] * c[j-k]
	}
	return y, nil
}

// String summarizes the solution.
func (s *Solution) String() string {
	return fmt.Sprintf("core.Solution{n=%d, m=%d, basis=%s, T=%g}",
		s.sys.N(), s.bas.Size(), s.bas.Name(), s.bas.Span())
}
