package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"opmsim/internal/mat"
	"opmsim/internal/sparse"
)

// maxEigDim bounds the dense eigenvalue computation used for pencil
// analysis; larger systems should be analyzed by other means.
const maxEigDim = 600

// PencilEigenvalues returns the finite eigenvalues of the matrix pencil
// (E, A) of a descriptor system E·ẋ = A·x, i.e. the λ with
// det(λE − A) = 0, computed by the shift-invert transformation
//
//	(σE − A)⁻¹·E·x = μ·x   ⇔   λ = σ − 1/μ,
//
// which maps the pencil's infinite eigenvalues (the algebraic constraints of
// a DAE with singular E) to μ = 0, where they are filtered out. σ must not
// itself be an eigenvalue; σ = 0 works whenever A is nonsingular.
func PencilEigenvalues(e, a *sparse.CSR, sigma float64) ([]complex128, error) {
	n := e.R
	if e.C != n || a.R != n || a.C != n {
		return nil, fmt.Errorf("core: pencil matrices must be square and equal-sized")
	}
	if n > maxEigDim {
		return nil, fmt.Errorf("core: pencil analysis limited to n ≤ %d, got %d", maxEigDim, n)
	}
	shifted := sparse.Combine(sigma, e, -1, a)
	fac, err := sparse.Factor(shifted, sparse.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: σ = %g is (numerically) an eigenvalue of the pencil: %w", sigma, err)
	}
	// Dense M = (σE − A)⁻¹E, column by column.
	ed := e.ToDense()
	m := mat.NewDense(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = ed.At(i, j)
		}
		sol, err := fac.Solve(col)
		if err != nil {
			return nil, fmt.Errorf("core: pencil shift-invert solve failed: %w", err)
		}
		for i := 0; i < n; i++ {
			m.Set(i, j, sol[i])
		}
	}
	mu, err := mat.Eigenvalues(m)
	if err != nil {
		return nil, err
	}
	// Back-transform, dropping μ ≈ 0 (infinite pencil eigenvalues). The
	// threshold must be relative to the largest μ: when σ lies far from the
	// whole spectrum every finite eigenvalue maps to a small μ = 1/(σ−λ),
	// and an absolute cutoff would wrongly discard them all.
	maxMu := 0.0
	for _, v := range mu {
		if a := cmplx.Abs(v); a > maxMu {
			maxMu = a
		}
	}
	if isExactZero(maxMu) {
		return nil, nil
	}
	tol := 1e-9 * maxMu
	var ev []complex128
	for _, v := range mu {
		if cmplx.Abs(v) <= tol {
			continue
		}
		ev = append(ev, complex(sigma, 0)-1/v)
	}
	return ev, nil
}

// SpectralAbscissa returns the largest real part among the finite pencil
// eigenvalues of a DAE system (Terms restricted to orders {0, 1}); negative
// means asymptotically stable. For a fractional system of single order α the
// stability sector condition |arg λ| > απ/2 applies instead — use
// FractionalStable.
func SpectralAbscissa(sys *System, sigma float64) (float64, error) {
	e, a, err := daeParts(sys)
	if err != nil {
		return 0, err
	}
	ev, err := PencilEigenvalues(e, a, sigma)
	if err != nil {
		return 0, err
	}
	if len(ev) == 0 {
		return math.Inf(-1), nil
	}
	worst := math.Inf(-1)
	for _, v := range ev {
		if real(v) > worst {
			worst = real(v)
		}
	}
	return worst, nil
}

// FractionalStable reports whether a single-order fractional system
// E·dᵅx = A·x satisfies the Matignon stability criterion: every finite
// pencil eigenvalue λ obeys |arg(λ)| > α·π/2.
func FractionalStable(sys *System, sigma float64) (bool, error) {
	var alpha float64
	for _, t := range sys.Terms {
		if t.Order > 0 {
			if !isExactZero(alpha) && !isExactEq(t.Order, alpha) {
				return false, fmt.Errorf("core: FractionalStable requires a single differential order")
			}
			alpha = t.Order
		}
	}
	if isExactZero(alpha) {
		return false, fmt.Errorf("core: system has no differential term")
	}
	e, a, err := fracParts(sys, alpha)
	if err != nil {
		return false, err
	}
	ev, err := PencilEigenvalues(e, a, sigma)
	if err != nil {
		return false, err
	}
	bound := alpha * math.Pi / 2
	for _, v := range ev {
		if math.Abs(cmplx.Phase(v)) <= bound {
			return false, nil
		}
	}
	return true, nil
}

// daeParts extracts (E, A) with A = −(order-0 term) from a {0,1}-order
// system.
func daeParts(sys *System) (e, a *sparse.CSR, err error) {
	return fracParts(sys, 1)
}

func fracParts(sys *System, order float64) (e, a *sparse.CSR, err error) {
	for _, t := range sys.Terms {
		switch t.Order {
		case order:
			e = t.Coeff
		case 0:
			a = t.Coeff.Scale(-1)
		default:
			return nil, nil, fmt.Errorf("core: pencil analysis requires orders {0, %g}, found %g", order, t.Order)
		}
	}
	if e == nil || a == nil {
		return nil, nil, fmt.Errorf("core: pencil analysis needs both an order-%g and an order-0 term", order)
	}
	return e, a, nil
}
