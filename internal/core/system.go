// Package core implements the OPM (operational-matrix) time-domain
// simulation algorithm of the paper: the state waveform is expanded in
// block-pulse functions, x(t) = X·φ(t), derivatives become multiplications
// by the (possibly fractional) differential operational matrix Dᵅ, and the
// resulting matrix equation is solved column by column thanks to the
// triangular structure of Dᵅ.
//
// The solver handles the general multi-term form
//
//	Σ_k E_k · d^{α_k}x/dt^{α_k} = B·u(t),
//
// which subsumes every system class in the paper: ODEs and DAEs
// (E ẋ = A x + B u, §III), fractional systems (E dᵅx = A x + B u, §IV),
// and high-order systems (e.g. the second-order power-grid model of §V-B).
package core

import (
	"fmt"
	"math"

	"opmsim/internal/sparse"
)

// Term is one left-hand-side term E·dᵅx/dtᵅ of a differential system.
type Term struct {
	// Order is the differentiation order α ≥ 0; it need not be an integer.
	Order float64
	// Coeff is the n×n coefficient matrix E.
	Coeff *sparse.CSR
}

// System is a linear time-invariant (possibly fractional) differential
// system Σ_k E_k d^{α_k}x = B·d^{β}u/dt^{β} with optional output map y = C·x.
//
// BOrder (β) is normally zero; the nodal-analysis second-order circuit model
// of §V-B needs β = 1 because differentiating KCL turns the current loads
// into their time derivatives, which OPM absorbs by right-multiplying the
// input coefficient matrix with the operational matrix: U_eff = U·Dᵝ.
type System struct {
	Terms  []Term
	B      *sparse.CSR // n×p
	BOrder float64
	C      *sparse.CSR // q×n; nil means y = x
}

// N returns the state dimension.
func (s *System) N() int { return s.B.R }

// Inputs returns the number of input channels p.
func (s *System) Inputs() int { return s.B.C }

// Outputs returns the number of output channels q.
func (s *System) Outputs() int {
	if s.C == nil {
		return s.N()
	}
	return s.C.R
}

// MaxOrder returns the largest differentiation order among the terms.
func (s *System) MaxOrder() float64 {
	max := 0.0
	for _, t := range s.Terms {
		if t.Order > max {
			max = t.Order
		}
	}
	return max
}

// Validate checks dimensional consistency and order sanity.
func (s *System) Validate() error {
	if len(s.Terms) == 0 {
		return fmt.Errorf("core: system has no terms")
	}
	if s.B == nil {
		return fmt.Errorf("core: system has no input matrix")
	}
	n := s.B.R
	hasDeriv := false
	for i, t := range s.Terms {
		if t.Coeff == nil {
			return fmt.Errorf("core: term %d has nil coefficient", i)
		}
		if t.Coeff.R != n || t.Coeff.C != n {
			return fmt.Errorf("core: term %d is %dx%d, want %dx%d", i, t.Coeff.R, t.Coeff.C, n, n)
		}
		if t.Order < 0 || math.IsNaN(t.Order) {
			return fmt.Errorf("core: term %d has invalid order %g", i, t.Order)
		}
		if t.Order > 0 {
			hasDeriv = true
		}
	}
	if !hasDeriv {
		return fmt.Errorf("core: system is purely algebraic (no term with positive order)")
	}
	if s.C != nil && s.C.C != n {
		return fmt.Errorf("core: output matrix has %d columns, want %d", s.C.C, n)
	}
	if s.BOrder < 0 || math.IsNaN(s.BOrder) {
		return fmt.Errorf("core: invalid input order %g", s.BOrder)
	}
	return nil
}

// NewDAE builds the descriptor system E·ẋ = A·x + B·u of eq. (9).
func NewDAE(e, a, b *sparse.CSR) (*System, error) {
	s := &System{
		Terms: []Term{
			{Order: 1, Coeff: e},
			{Order: 0, Coeff: a.Scale(-1)},
		},
		B: b,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewFDE builds the fractional system E·dᵅx/dtᵅ = A·x + B·u of eq. (19).
func NewFDE(e, a, b *sparse.CSR, alpha float64) (*System, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("core: NewFDE requires α > 0, got %g", alpha)
	}
	s := &System{
		Terms: []Term{
			{Order: alpha, Coeff: e},
			{Order: 0, Coeff: a.Scale(-1)},
		},
		B: b,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewSecondOrder builds M·ẍ + D·ẋ + K·x = B·u, the form nodal analysis
// produces for RLC networks (§V-B).
func NewSecondOrder(m, d, k, b *sparse.CSR) (*System, error) {
	s := &System{
		Terms: []Term{
			{Order: 2, Coeff: m},
			{Order: 1, Coeff: d},
			{Order: 0, Coeff: k},
		},
		B: b,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WithOutput returns a copy of the system with output map y = C·x.
func (s *System) WithOutput(c *sparse.CSR) (*System, error) {
	out := &System{Terms: s.Terms, B: s.B, C: c}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
