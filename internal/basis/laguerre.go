package basis

import (
	"fmt"
	"math"

	"opmsim/internal/mat"
)

// Laguerre is the scaled Laguerre-function basis on [0, ∞):
//
//	φ_n(t) = √(2p)·e^{−pt}·L_n(2pt),   n = 0..m−1,
//
// orthonormal in L²[0, ∞). The paper lists Laguerre functions among the
// alternative OPM bases; they suit decaying (dissipative) waveforms on a
// semi-infinite horizon, with the time scale set by the pole p.
//
// Its integration operational matrix is upper-triangular Toeplitz,
// (1/p)·(1, −2, 2, −2, ...) — derived in closed form from the Laplace-domain
// representation Φ_n(s) = √(2p)·(s−p)ⁿ/(s+p)ⁿ⁺¹ and verified numerically by
// the tests.
type Laguerre struct {
	m int
	p float64

	nodes   []float64 // Gauss–Laguerre nodes (weight e^{−u})
	weights []float64
}

// NewLaguerre returns the m-function Laguerre basis with pole p > 0.
func NewLaguerre(m int, p float64) (*Laguerre, error) {
	if m <= 0 {
		return nil, fmt.Errorf("basis: Laguerre requires m > 0, got %d", m)
	}
	if p <= 0 {
		return nil, fmt.Errorf("basis: Laguerre requires pole p > 0, got %g", p)
	}
	n := m + 24 // headroom: integrands carry an e^{u/2} factor
	nodes, weights, err := gaussLaguerre(n)
	if err != nil {
		return nil, err
	}
	return &Laguerre{m: m, p: p, nodes: nodes, weights: weights}, nil
}

// Name implements Basis.
func (b *Laguerre) Name() string { return "laguerre" }

// Size implements Basis.
func (b *Laguerre) Size() int { return b.m }

// Span implements Basis; the Laguerre horizon is semi-infinite.
func (b *Laguerre) Span() float64 { return math.Inf(1) }

// Pole returns the time-scale parameter p.
func (b *Laguerre) Pole() float64 { return b.p }

// Eval implements Basis.
func (b *Laguerre) Eval(i int, t float64) float64 {
	if t < 0 {
		return 0
	}
	return math.Sqrt(2*b.p) * math.Exp(-b.p*t) * laguerreL(i, 2*b.p*t)
}

// Expand implements Basis: c_n = ∫₀^∞ f·φ_n dt by Gauss–Laguerre quadrature
// after the substitution u = 2pt.
func (b *Laguerre) Expand(f func(float64) float64) []float64 {
	c := make([]float64, b.m)
	inv := 1 / math.Sqrt(2*b.p)
	for q, u := range b.nodes {
		// Weight e^{−u} is implicit in the rule; the integrand carries the
		// residual e^{u/2} from φ_n's e^{−pt} = e^{−u/2}.
		fu := f(u/(2*b.p)) * math.Exp(u/2) * b.weights[q] * inv
		l0, l1 := 1.0, 1-u
		for n := 0; n < b.m; n++ {
			var ln float64
			switch n {
			case 0:
				ln = l0
			case 1:
				ln = l1
			default:
				ln = ((float64(2*n-1)-u)*l1 - float64(n-1)*l0) / float64(n)
				l0, l1 = l1, ln
			}
			c[n] += fu * ln
		}
	}
	return c
}

// Reconstruct implements Basis.
func (b *Laguerre) Reconstruct(coef []float64, t float64) float64 {
	return reconstruct(b, coef, t)
}

// IntegrationMatrix implements Basis with the closed form derived above:
// row pattern (1/p)·(1, −2, 2, −2, ...), truncated at m terms.
func (b *Laguerre) IntegrationMatrix() *mat.Dense {
	h := mat.NewDense(b.m, b.m)
	for i := 0; i < b.m; i++ {
		h.Set(i, i, 1/b.p)
		for j := i + 1; j < b.m; j++ {
			v := 2 / b.p
			if (j-i)%2 == 1 {
				v = -v
			}
			h.Set(i, j, v)
		}
	}
	return h
}

// laguerreL evaluates the Laguerre polynomial L_n(x) by recurrence.
func laguerreL(n int, x float64) float64 {
	switch n {
	case 0:
		return 1
	case 1:
		return 1 - x
	}
	l0, l1 := 1.0, 1-x
	for k := 2; k <= n; k++ {
		l0, l1 = l1, ((float64(2*k-1)-x)*l1-float64(k-1)*l0)/float64(k)
	}
	return l1
}

// gaussLaguerre computes the n-point Gauss–Laguerre rule (weight e^{−x} on
// [0, ∞)) by Newton iteration.
func gaussLaguerre(n int) (nodes, weights []float64, err error) {
	nodes = make([]float64, n)
	weights = make([]float64, n)
	x := 0.0
	for i := 0; i < n; i++ {
		// Stroud–Secrest initial guesses.
		switch i {
		case 0:
			x = 3.0 / (1 + 2.4*float64(n))
		case 1:
			x += 15.0 / (1 + 2.5*float64(n))
		default:
			x += (1 + 2.55*float64(i-1)) / (1.9 * float64(i-1)) * (x - nodes[i-2])
		}
		ok := false
		for iter := 0; iter < 200; iter++ {
			l := laguerreL(n, x)
			// L'_n(x) = n(L_n(x) − L_{n−1}(x))/x.
			dl := float64(n) * (l - laguerreL(n-1, x)) / x
			dx := -l / dl
			x += dx
			if math.Abs(dx) < 1e-14*(1+x) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, nil, fmt.Errorf("basis: Gauss–Laguerre Newton failed at node %d", i)
		}
		nodes[i] = x
		lm1 := laguerreL(n-1, x)
		weights[i] = x / (float64(n) * float64(n) * lm1 * lm1)
	}
	return nodes, weights, nil
}
