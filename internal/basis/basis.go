// Package basis implements the orthogonal-function bases behind the OPM
// method: the block-pulse functions (BPFs) of §II with their integral and
// differential operational matrices (eqs. 3–8), the adaptive-step variants of
// §III-B (eqs. 16–17), the fractional operational matrices of §IV
// (eqs. 21–25), and — following the paper's observation that "OPM can readily
// switch to using other basis functions" — Walsh, Haar and shifted-Legendre
// bases with their integration matrices.
package basis

import "opmsim/internal/mat"

// Basis is a finite family of m basis functions on the time span [0, T).
// A function f is represented by a coefficient vector c with
// f(t) ≈ Σ_i c_i φ_i(t).
type Basis interface {
	// Name identifies the basis family (for reports and benches).
	Name() string
	// Size returns the number of basis functions m.
	Size() int
	// Span returns the time span T.
	Span() float64
	// Eval evaluates basis function i at time t ∈ [0, T).
	Eval(i int, t float64) float64
	// Expand computes the coefficient vector of f.
	Expand(f func(float64) float64) []float64
	// Reconstruct evaluates Σ c_i φ_i(t).
	Reconstruct(coef []float64, t float64) float64
	// IntegrationMatrix returns H with ∫₀ᵗ φ(τ)dτ ≈ Hφ(t) (eq. 3).
	IntegrationMatrix() *mat.Dense
}

// Reconstruct is a convenience helper shared by implementations.
func reconstruct(b Basis, coef []float64, t float64) float64 {
	s := 0.0
	for i, c := range coef {
		if !isExactZero(c) {
			s += c * b.Eval(i, t)
		}
	}
	return s
}

// gauss5Nodes/Weights are the 5-point Gauss–Legendre rule on [-1, 1], used to
// compute interval averages and projections in Expand implementations.
var gauss5Nodes = [5]float64{
	-0.9061798459386640, -0.5384693101056831, 0, 0.5384693101056831, 0.9061798459386640,
}

var gauss5Weights = [5]float64{
	0.2369268850561891, 0.4786286704993665, 0.5688888888888889, 0.4786286704993665, 0.2369268850561891,
}

// integrate5 integrates f over [a, b] with the 5-point Gauss rule.
func integrate5(f func(float64) float64, a, b float64) float64 {
	mid := (a + b) / 2
	half := (b - a) / 2
	s := 0.0
	for i := range gauss5Nodes {
		s += gauss5Weights[i] * f(mid+half*gauss5Nodes[i])
	}
	return s * half
}
