package basis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opmsim/internal/mat"
	"opmsim/internal/specfn"
)

func TestNewBPFValidation(t *testing.T) {
	if _, err := NewBPF(0, 1); err == nil {
		t.Fatal("NewBPF accepted m=0")
	}
	if _, err := NewBPF(4, 0); err == nil {
		t.Fatal("NewBPF accepted T=0")
	}
}

func TestBPFPartitionOfUnity(t *testing.T) {
	b, _ := NewBPF(8, 2)
	for _, tt := range []float64{0, 0.3, 0.99, 1.5, 1.999} {
		s := 0.0
		for i := 0; i < 8; i++ {
			s += b.Eval(i, tt)
		}
		if s != 1 {
			t.Fatalf("Σφ_i(%g) = %g, want 1", tt, s)
		}
	}
}

func TestBPFExpandConstant(t *testing.T) {
	b, _ := NewBPF(5, 1)
	c := b.Expand(func(float64) float64 { return 3 })
	for i, v := range c {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("coef[%d] = %g, want 3", i, v)
		}
	}
}

func TestBPFExpandLinear(t *testing.T) {
	// Interval average of t over [ih, (i+1)h) is (i+1/2)h.
	b, _ := NewBPF(4, 2)
	c := b.Expand(func(t float64) float64 { return t })
	h := 0.5
	for i, v := range c {
		want := (float64(i) + 0.5) * h
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("coef[%d] = %g, want %g", i, v, want)
		}
	}
}

func TestBPFReconstructInverseOfExpandForPiecewiseConstant(t *testing.T) {
	b, _ := NewBPF(6, 3)
	coef := []float64{1, -2, 3, 0, 5, 7}
	f := func(t float64) float64 { return b.Reconstruct(coef, t) }
	got := b.Expand(f)
	for i := range coef {
		if math.Abs(got[i]-coef[i]) > 1e-12 {
			t.Fatalf("round trip coef[%d] = %g, want %g", i, got[i], coef[i])
		}
	}
}

// H(m) has the exact structure of eq. (4).
func TestBPFIntegrationMatrixStructure(t *testing.T) {
	b, _ := NewBPF(4, 2)
	h := b.Step()
	H := b.IntegrationMatrix()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			switch {
			case i == j:
				want = h / 2
			case j > i:
				want = h
			}
			if H.At(i, j) != want {
				t.Fatalf("H[%d][%d] = %g, want %g", i, j, H.At(i, j), want)
			}
		}
	}
}

// The integration matrix actually integrates: coefficients of ∫f should be
// Hᵀ·f_coef (from ∫fᵀφ = fᵀHφ).
func TestBPFIntegrationMatrixIntegrates(t *testing.T) {
	b, _ := NewBPF(64, 2)
	f := func(t float64) float64 { return math.Sin(3 * t) }
	intF := func(t float64) float64 { return (1 - math.Cos(3*t)) / 3 }
	fc := b.Expand(f)
	got := b.IntegrationMatrix().MulVecT(fc, nil)
	want := b.Expand(intF)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 2e-3 {
			t.Fatalf("∫ coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// D(m) = H(m)⁻¹ (eq. 7): their product is the identity.
func TestBPFDiffIsInverseOfIntegration(t *testing.T) {
	for _, m := range []int{1, 2, 3, 8, 33} {
		b, _ := NewBPF(m, 1.7)
		prod := mat.Mul(b.DiffMatrix(1), b.IntegrationMatrix())
		if !mat.Equalf(prod, mat.Eye(m), 1e-9) {
			t.Fatalf("m=%d: D·H != I", m)
		}
	}
}

// D(m) matches the explicit Toeplitz form printed in §III-A.
func TestBPFDiffMatrixStructure(t *testing.T) {
	b, _ := NewBPF(4, 4) // h = 1, so prefactor 2/h = 2
	d := b.DiffMatrix(1)
	want := mat.NewDenseFrom(4, 4, []float64{
		2, -4, 4, -4,
		0, 2, -4, 4,
		0, 0, 2, -4,
		0, 0, 0, 2,
	})
	if !mat.Equalf(d, want, 1e-12) {
		t.Fatalf("D =\n%v want\n%v", d, want)
	}
}

// The worked example of eq. (24): D^{3/2}(4) with the printed coefficients.
func TestBPFFractionalMatrixPaperExample(t *testing.T) {
	b, _ := NewBPF(4, 4) // h = 1
	d := b.DiffMatrix(1.5)
	pre := math.Pow(2, 1.5)
	want := mat.NewDenseFrom(4, 4, []float64{
		1, -3, 4.5, -5.5,
		0, 1, -3, 4.5,
		0, 0, 1, -3,
		0, 0, 0, 1,
	}).Scale(pre)
	if !mat.Equalf(d, want, 1e-9) {
		t.Fatalf("D^{3/2} =\n%v want\n%v", d, want)
	}
}

// The identity stated below eq. (24): (D^{3/2})² equals the integer-matrix
// power D³ (the paper's printed "(D(4))²" is a typo; squaring an order-3/2
// operator yields order 3, and both sides match exactly in the truncated
// algebra).
func TestBPFFractionalSquareIdentity(t *testing.T) {
	b, _ := NewBPF(4, 2)
	lhs := mat.Mul(b.DiffMatrix(1.5), b.DiffMatrix(1.5))
	rhs := mat.MatPowInt(b.DiffMatrix(1), 3)
	if !mat.Equalf(lhs, rhs, 1e-7*(1+rhs.MaxAbs())) {
		t.Fatalf("(D^1.5)² != D³\nlhs\n%v rhs\n%v", lhs, rhs)
	}
}

// Property: semigroup Dᵅ·Dᵝ = Dᵅ⁺ᵝ in the truncated algebra.
func TestBPFFractionalSemigroupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(12)
		b, err := NewBPF(m, 0.5+rng.Float64())
		if err != nil {
			return false
		}
		al := 0.2 + rng.Float64()
		be := 0.2 + rng.Float64()
		lhs := mat.Mul(b.DiffMatrix(al), b.DiffMatrix(be))
		rhs := b.DiffMatrix(al + be)
		return mat.Equalf(lhs, rhs, 1e-7*(1+rhs.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: fractional integration inverts fractional differentiation.
func TestBPFFractionalInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		b, err := NewBPF(m, 0.5+rng.Float64())
		if err != nil {
			return false
		}
		al := 0.2 + rng.Float64()*1.5
		prod := mat.Mul(b.DiffMatrix(al), b.DiffMatrix(-al))
		return mat.Equalf(prod, mat.Eye(m), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Fractional differentiation of a half-power: the BPF half-derivative of
// t^{1/2} should approximate Γ(3/2)·√π/... — we check against the classical
// Riemann–Liouville result d^{1/2}/dt^{1/2} t = 2√(t/π).
func TestBPFHalfDerivativeOfT(t *testing.T) {
	b, _ := NewBPF(512, 1)
	fc := b.Expand(func(t float64) float64 { return t })
	// Coefficients of d^{1/2}f: (Dᵀ)^{1/2} f via column convention
	// dᵅf = fᵀ Dᵅ φ, so coefficient vector is (Dᵅ)ᵀ f.
	got := b.DiffMatrix(0.5).MulVecT(fc, nil)
	for i := 32; i < 512; i += 61 {
		tt := (float64(i) + 0.5) / 512
		want := 2 * math.Sqrt(tt/math.Pi)
		if math.Abs(got[i]-want) > 2e-2*(1+want) {
			t.Fatalf("d½t at t=%g: got %g, want %g", tt, got[i], want)
		}
	}
}

func TestAdaptiveBPFValidation(t *testing.T) {
	if _, err := NewAdaptiveBPF(nil); err == nil {
		t.Fatal("NewAdaptiveBPF accepted empty steps")
	}
	if _, err := NewAdaptiveBPF([]float64{0.1, -0.2}); err == nil {
		t.Fatal("NewAdaptiveBPF accepted negative step")
	}
}

// With equal steps the adaptive matrices reduce to the uniform ones.
func TestAdaptiveReducesToUniform(t *testing.T) {
	m, T := 6, 3.0
	u, _ := NewBPF(m, T)
	steps := make([]float64, m)
	for i := range steps {
		steps[i] = T / float64(m)
	}
	a, _ := NewAdaptiveBPF(steps)
	if !mat.Equalf(a.IntegrationMatrix(), u.IntegrationMatrix(), 1e-12) {
		t.Fatal("adaptive H != uniform H for equal steps")
	}
	if !mat.Equalf(a.DiffMatrix(), u.DiffMatrix(1), 1e-12) {
		t.Fatal("adaptive D != uniform D for equal steps")
	}
}

// D̃·H̃ = I for arbitrary positive steps.
func TestAdaptiveDiffInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		steps := make([]float64, m)
		for i := range steps {
			steps[i] = 0.05 + rng.Float64()
		}
		a, err := NewAdaptiveBPF(steps)
		if err != nil {
			return false
		}
		prod := mat.Mul(a.DiffMatrix(), a.IntegrationMatrix())
		return mat.Equalf(prod, mat.Eye(m), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Adaptive fractional: (D̃^{1/2})² = D̃ when steps are distinct (eq. 25).
func TestAdaptiveFractionalSquare(t *testing.T) {
	steps := []float64{0.1, 0.15, 0.22, 0.31, 0.44, 0.6}
	a, _ := NewAdaptiveBPF(steps)
	half, err := a.DiffMatrixAlpha(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sq := mat.Mul(half, half)
	want := a.DiffMatrix()
	if !mat.Equalf(sq, want, 1e-7*(1+want.MaxAbs())) {
		t.Fatal("(D̃^½)² != D̃")
	}
}

func TestAdaptiveFractionalRejectsEqualSteps(t *testing.T) {
	a, _ := NewAdaptiveBPF([]float64{0.1, 0.1, 0.2})
	if _, err := a.DiffMatrixAlpha(0.5); err == nil {
		t.Fatal("DiffMatrixAlpha accepted repeated steps for fractional α")
	}
	// Integer α is fine even with repeated steps.
	if _, err := a.DiffMatrixAlpha(2); err != nil {
		t.Fatalf("integer α failed: %v", err)
	}
}

func TestAdaptiveReconstructLookup(t *testing.T) {
	a, _ := NewAdaptiveBPF([]float64{1, 2, 0.5})
	coef := []float64{10, 20, 30}
	cases := map[float64]float64{0.5: 10, 1.0: 20, 2.9: 20, 3.2: 30, -1: 0, 3.6: 0}
	for tt, want := range cases {
		if got := a.Reconstruct(coef, tt); got != want {
			t.Fatalf("Reconstruct(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestAdaptiveEdges(t *testing.T) {
	a, _ := NewAdaptiveBPF([]float64{1, 2, 3})
	edges := a.Edges()
	want := []float64{0, 1, 3, 6}
	for i := range want {
		if math.Abs(edges[i]-want[i]) > 1e-15 {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
	if a.Span() != 6 {
		t.Fatalf("Span = %g, want 6", a.Span())
	}
}

// The fractional-integration operational matrix D^{−α} reproduces the
// closed-form Riemann–Liouville moments I^α[τ^p] = Γ(p+1)/Γ(p+1+α)·t^{p+α}.
func TestBPFFractionalIntegralMoments(t *testing.T) {
	b, _ := NewBPF(512, 1)
	for _, alpha := range []float64{0.3, 0.5, 0.8} {
		for _, p := range []float64{0, 1, 2} {
			fc := b.Expand(func(tt float64) float64 { return math.Pow(tt, p) })
			got := b.DiffMatrix(-alpha).MulVecT(fc, nil)
			for i := 100; i < 512; i += 130 {
				tt := (float64(i) + 0.5) / 512
				want := specfn.RLKernelMoment(alpha, p, tt)
				if math.Abs(got[i]-want) > 2e-2*(1+want) {
					t.Fatalf("α=%g p=%g: I^α at t=%g = %g, want %g", alpha, p, tt, got[i], want)
				}
			}
		}
	}
}
