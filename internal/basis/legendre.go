package basis

import (
	"fmt"
	"math"

	"opmsim/internal/mat"
)

// Legendre is the shifted-Legendre basis on [0, T):
// ψ_n(t) = P_n(2t/T − 1) for n = 0..m−1. Unlike the piecewise-constant
// bases, its functions are smooth polynomials, so it approximates smooth
// waveforms spectrally well but rings at discontinuities — the trade-off the
// paper's basis discussion hints at.
type Legendre struct {
	m int
	T float64

	nodes   []float64 // Gauss–Legendre nodes on [-1, 1] for Expand
	weights []float64
}

// NewLegendre returns the m-term shifted-Legendre basis on [0, T).
func NewLegendre(m int, T float64) (*Legendre, error) {
	if m <= 0 {
		return nil, fmt.Errorf("basis: Legendre requires m > 0, got %d", m)
	}
	if T <= 0 {
		return nil, fmt.Errorf("basis: Legendre requires T > 0, got %g", T)
	}
	n := m + 8 // quadrature exact up to degree 2n−1 ≫ 2m
	nodes, weights := gaussLegendre(n)
	return &Legendre{m: m, T: T, nodes: nodes, weights: weights}, nil
}

// Name implements Basis.
func (b *Legendre) Name() string { return "legendre" }

// Size implements Basis.
func (b *Legendre) Size() int { return b.m }

// Span implements Basis.
func (b *Legendre) Span() float64 { return b.T }

// Eval implements Basis using the three-term recurrence.
func (b *Legendre) Eval(i int, t float64) float64 {
	x := 2*t/b.T - 1
	return legendreP(i, x)
}

// Expand implements Basis: c_n = (2n+1)/T ∫ f(t) ψ_n(t) dt by Gauss
// quadrature mapped to [0, T].
func (b *Legendre) Expand(f func(float64) float64) []float64 {
	c := make([]float64, b.m)
	for q, x := range b.nodes {
		t := (x + 1) * b.T / 2
		fv := f(t) * b.weights[q] * b.T / 2
		// Accumulate P_n(x) via the recurrence once per node.
		p0, p1 := 1.0, x
		for n := 0; n < b.m; n++ {
			var pn float64
			switch n {
			case 0:
				pn = p0
			case 1:
				pn = p1
			default:
				pn = (float64(2*n-1)*x*p1 - float64(n-1)*p0) / float64(n)
				p0, p1 = p1, pn
			}
			c[n] += fv * pn * float64(2*n+1) / b.T
		}
	}
	return c
}

// Reconstruct implements Basis.
func (b *Legendre) Reconstruct(coef []float64, t float64) float64 {
	return reconstruct(b, coef, t)
}

// IntegrationMatrix implements Basis with the classical relation
// ∫₀ᵗ ψ_n = (T/2)/(2n+1)·(ψ_{n+1} − ψ_{n−1}) for n ≥ 1 and
// ∫₀ᵗ ψ_0 = (T/2)(ψ_0 + ψ_1); the ψ_m term of the last row is truncated.
func (b *Legendre) IntegrationMatrix() *mat.Dense {
	h := mat.NewDense(b.m, b.m)
	h.Set(0, 0, b.T/2)
	if b.m > 1 {
		h.Set(0, 1, b.T/2)
	}
	for n := 1; n < b.m; n++ {
		k := b.T / 2 / float64(2*n+1)
		h.Set(n, n-1, -k)
		if n+1 < b.m {
			h.Set(n, n+1, k)
		}
	}
	return h
}

// legendreP evaluates the Legendre polynomial P_n(x).
func legendreP(n int, x float64) float64 {
	switch n {
	case 0:
		return 1
	case 1:
		return x
	}
	p0, p1 := 1.0, x
	for k := 2; k <= n; k++ {
		p0, p1 = p1, (float64(2*k-1)*x*p1-float64(k-1)*p0)/float64(k)
	}
	return p1
}

// legendrePDeriv returns P_n(x) and P'_n(x).
func legendrePDeriv(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	p0, p1 := 1.0, x
	for k := 2; k <= n; k++ {
		p0, p1 = p1, (float64(2*k-1)*x*p1-float64(k-1)*p0)/float64(k)
	}
	dp = float64(n) * (x*p1 - p0) / (x*x - 1)
	return p1, dp
}

// gaussLegendre computes the n-point Gauss–Legendre nodes and weights on
// [-1, 1] by Newton iteration from the Chebyshev initial guess.
func gaussLegendre(n int) (nodes, weights []float64) {
	nodes = make([]float64, n)
	weights = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			var p float64
			p, dp = legendrePDeriv(n, x)
			dx := -p / dp
			x += dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		w := 2 / ((1 - x*x) * dp * dp)
		nodes[i] = -x
		nodes[n-1-i] = x
		weights[i] = w
		weights[n-1-i] = w
	}
	return nodes, weights
}
