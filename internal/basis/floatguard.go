package basis

// Intentional exact float comparisons are routed through these named guards
// so the intent survives refactors; the floateq rule (cmd/opm-lint) flags raw
// float ==/!= everywhere else.

// isExactZero reports whether v is exactly zero (sparsity skips in basis
// transforms), never a tolerance test.
func isExactZero(v float64) bool { return v == 0 }

// isExactEq reports whether a and b are identical real values — integer
// detection via Trunc and ±1 Walsh sign-change detection, which are exact by
// construction — never a closeness test.
func isExactEq(a, b float64) bool { return a == b }
