package basis

import (
	"math"
	"testing"
)

func TestLaguerreValidation(t *testing.T) {
	if _, err := NewLaguerre(0, 1); err == nil {
		t.Fatal("accepted m=0")
	}
	if _, err := NewLaguerre(4, 0); err == nil {
		t.Fatal("accepted p=0")
	}
}

func TestGaussLaguerreRule(t *testing.T) {
	nodes, weights, err := gaussLaguerre(16)
	if err != nil {
		t.Fatal(err)
	}
	// ∫₀^∞ e^{−x} dx = 1, ∫ x e^{−x} = 1, ∫ x⁵ e^{−x} = 120.
	moments := []float64{1, 1, 2, 6, 24, 120}
	for k, want := range moments {
		s := 0.0
		for i := range nodes {
			s += weights[i] * math.Pow(nodes[i], float64(k))
		}
		if math.Abs(s-want) > 1e-9*want {
			t.Fatalf("moment %d = %g, want %g", k, s, want)
		}
	}
}

func TestLaguerreOrthonormal(t *testing.T) {
	b, err := NewLaguerre(6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// ⟨φ_i, φ_j⟩ = δ_ij, checked with a fine trapezoid on [0, 60].
	inner := func(i, j int) float64 {
		const steps = 60000
		const tmax = 60.0
		h := tmax / steps
		s := 0.0
		for k := 0; k <= steps; k++ {
			tt := float64(k) * h
			w := 1.0
			if k == 0 || k == steps {
				w = 0.5
			}
			s += w * b.Eval(i, tt) * b.Eval(j, tt)
		}
		return s * h
	}
	for i := 0; i < 6; i++ {
		for j := i; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := inner(i, j); math.Abs(got-want) > 1e-4 {
				t.Fatalf("⟨φ%d,φ%d⟩ = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestLaguerreExpandSelf(t *testing.T) {
	b, _ := NewLaguerre(5, 1)
	// Expanding φ₂ must give e₂.
	f := func(tt float64) float64 { return b.Eval(2, tt) }
	c := b.Expand(f)
	for i, v := range c {
		want := 0.0
		if i == 2 {
			want = 1
		}
		if math.Abs(v-want) > 1e-8 {
			t.Fatalf("coef[%d] = %g, want %g", i, v, want)
		}
	}
}

func TestLaguerreExpandReconstructDecaying(t *testing.T) {
	b, _ := NewLaguerre(24, 0.5)
	f := func(tt float64) float64 { return tt * math.Exp(-tt) }
	c := b.Expand(f)
	for _, tt := range []float64{0.3, 1, 2.5, 5} {
		if got := b.Reconstruct(c, tt); math.Abs(got-f(tt)) > 1e-5 {
			t.Fatalf("Laguerre reconstruction at %g = %g, want %g", tt, got, f(tt))
		}
	}
}

// The closed-form integration matrix must actually integrate: coefficients
// of ∫f are Hᵀ·coef(f).
func TestLaguerreIntegrationMatrix(t *testing.T) {
	b, _ := NewLaguerre(30, 0.7)
	f := func(tt float64) float64 { return math.Exp(-tt) }
	intF := func(tt float64) float64 { return 1 - math.Exp(-tt) }
	fc := b.Expand(f)
	got := b.IntegrationMatrix().MulVecT(fc, nil)
	want := b.Expand(intF)
	// 1 − e^{−t} does not decay, so its Laguerre tail converges slowly;
	// compare the leading coefficients only.
	for i := 0; i < 12; i++ {
		if math.Abs(got[i]-want[i]) > 2e-2*(1+math.Abs(want[i])) {
			t.Fatalf("∫ coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLaguerreSpanInfinite(t *testing.T) {
	b, _ := NewLaguerre(3, 1)
	if !math.IsInf(b.Span(), 1) {
		t.Fatal("Laguerre span should be +Inf")
	}
	if b.Eval(0, -1) != 0 {
		t.Fatal("Laguerre nonzero for t<0")
	}
	if b.Pole() != 1 {
		t.Fatal("Pole accessor broken")
	}
}
