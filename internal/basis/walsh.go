package basis

import (
	"fmt"
	"math/bits"

	"opmsim/internal/mat"
)

// pcBasis is a basis of piecewise-constant functions expressed as linear
// combinations of m block-pulse functions: ψ(t) = W·φ(t) for an invertible
// transform matrix W. Walsh and Haar bases are both of this form, so their
// expansion and integration matrices follow from the BPF ones by similarity:
//
//	∫ψ = W ∫φ = W·H_bpf·φ = (W·H_bpf·W⁻¹)·ψ.
type pcBasis struct {
	name string
	bpf  *BPF
	w    *mat.Dense // ψ = W φ
	winv *mat.Dense
}

func newPCBasis(name string, m int, T float64, w *mat.Dense) (*pcBasis, error) {
	bpf, err := NewBPF(m, T)
	if err != nil {
		return nil, err
	}
	winv, err := mat.Inverse(w)
	if err != nil {
		return nil, fmt.Errorf("basis: %s transform not invertible: %w", name, err)
	}
	return &pcBasis{name: name, bpf: bpf, w: w, winv: winv}, nil
}

// Name implements Basis.
func (b *pcBasis) Name() string { return b.name }

// Size implements Basis.
func (b *pcBasis) Size() int { return b.bpf.m }

// Span implements Basis.
func (b *pcBasis) Span() float64 { return b.bpf.T }

// Eval implements Basis: ψ_i(t) = Σ_k W[i][k] φ_k(t), a single lookup since
// the pulses are disjoint.
func (b *pcBasis) Eval(i int, t float64) float64 {
	k := int(t / b.bpf.h)
	if k < 0 || k >= b.bpf.m || t < 0 {
		return 0
	}
	return b.w.At(i, k)
}

// Expand implements Basis: from f = f_bpfᵀ φ and ψ = Wφ we need c with
// cᵀW = f_bpfᵀ, i.e. c = W⁻ᵀ f_bpf.
func (b *pcBasis) Expand(f func(float64) float64) []float64 {
	fb := b.bpf.Expand(f)
	return b.winv.MulVecT(fb, nil)
}

// Reconstruct implements Basis.
func (b *pcBasis) Reconstruct(coef []float64, t float64) float64 {
	k := int(t / b.bpf.h)
	if k < 0 || k >= b.bpf.m || t < 0 {
		return 0
	}
	s := 0.0
	for i, c := range coef {
		s += c * b.w.At(i, k)
	}
	return s
}

// IntegrationMatrix implements Basis via the similarity transform above.
func (b *pcBasis) IntegrationMatrix() *mat.Dense {
	return mat.Mul(mat.Mul(b.w, b.bpf.IntegrationMatrix()), b.winv)
}

// Walsh is the sequency-ordered Walsh basis on [0, T): m = 2^k functions
// taking values ±1, ordered from low to high "frequency" (sign-change
// count) — the ordering the paper's §I alludes to when suggesting Walsh
// functions for capturing the overall waveform trend.
type Walsh struct{ *pcBasis }

// NewWalsh returns the m-function Walsh basis; m must be a power of two.
func NewWalsh(m int, T float64) (*Walsh, error) {
	if m <= 0 || m&(m-1) != 0 {
		return nil, fmt.Errorf("basis: Walsh requires m to be a power of two, got %d", m)
	}
	w := mat.NewDense(m, m)
	bitsN := bits.TrailingZeros(uint(m))
	for i := 0; i < m; i++ {
		// Sequency-ordered Walsh: row i is the Hadamard row indexed by the
		// bit-reversed Gray code of i.
		g := uint(i) ^ (uint(i) >> 1)
		r := bits.Reverse(g) >> (bits.UintSize - bitsN)
		for k := 0; k < m; k++ {
			if bits.OnesCount(uint(k)&r)%2 == 0 {
				w.Set(i, k, 1)
			} else {
				w.Set(i, k, -1)
			}
		}
	}
	pc, err := newPCBasis("walsh", m, T, w)
	if err != nil {
		return nil, err
	}
	return &Walsh{pc}, nil
}

// SignChanges returns the number of sign changes of Walsh function i, which
// must equal i in sequency order.
func (b *Walsh) SignChanges(i int) int {
	n := 0
	for k := 1; k < b.Size(); k++ {
		if !isExactEq(b.w.At(i, k), b.w.At(i, k-1)) {
			n++
		}
	}
	return n
}

// Haar is the (unnormalized) Haar wavelet basis on [0, T): the constant
// function plus dyadically scaled ±1 square wavelets. m must be a power of
// two.
type Haar struct{ *pcBasis }

// NewHaar returns the m-function Haar basis; m must be a power of two.
func NewHaar(m int, T float64) (*Haar, error) {
	if m <= 0 || m&(m-1) != 0 {
		return nil, fmt.Errorf("basis: Haar requires m to be a power of two, got %d", m)
	}
	w := mat.NewDense(m, m)
	for k := 0; k < m; k++ {
		w.Set(0, k, 1)
	}
	row := 1
	for level := 1; level <= m; level *= 2 {
		if level == m {
			break
		}
		width := m / level // support width in pulses
		for pos := 0; pos < level; pos++ {
			start := pos * width
			for k := 0; k < width/2; k++ {
				w.Set(row, start+k, 1)
				w.Set(row, start+width/2+k, -1)
			}
			row++
		}
	}
	pc, err := newPCBasis("haar", m, T, w)
	if err != nil {
		return nil, err
	}
	return &Haar{pc}, nil
}
