package basis

import (
	"fmt"
	"math"

	"opmsim/internal/mat"
	"opmsim/internal/poly"
)

// BPF is the block-pulse function basis of eq. (1): m unit pulses of width
// h = T/m tiling [0, T).
type BPF struct {
	m int
	T float64
	h float64
}

// NewBPF returns the m-term block-pulse basis on [0, T).
func NewBPF(m int, T float64) (*BPF, error) {
	if m <= 0 {
		return nil, fmt.Errorf("basis: BPF requires m > 0, got %d", m)
	}
	if T <= 0 {
		return nil, fmt.Errorf("basis: BPF requires T > 0, got %g", T)
	}
	return &BPF{m: m, T: T, h: T / float64(m)}, nil
}

// Name implements Basis.
func (b *BPF) Name() string { return "block-pulse" }

// Size implements Basis.
func (b *BPF) Size() int { return b.m }

// Span implements Basis.
func (b *BPF) Span() float64 { return b.T }

// Step returns the interval width h = T/m.
func (b *BPF) Step() float64 { return b.h }

// Eval implements Basis: φ_i(t) = 1 on [ih, (i+1)h), else 0.
func (b *BPF) Eval(i int, t float64) float64 {
	if t >= float64(i)*b.h && t < float64(i+1)*b.h {
		return 1
	}
	return 0
}

// Expand computes the BPF coefficients f_i = (1/h)∫ f over interval i
// (eq. 2), using 5-point Gauss quadrature per interval.
func (b *BPF) Expand(f func(float64) float64) []float64 {
	c := make([]float64, b.m)
	for i := range c {
		a := float64(i) * b.h
		c[i] = integrate5(f, a, a+b.h) / b.h
	}
	return c
}

// Reconstruct implements Basis. For BPFs this is a direct interval lookup.
func (b *BPF) Reconstruct(coef []float64, t float64) float64 {
	i := int(t / b.h)
	if i < 0 || i >= len(coef) {
		return 0
	}
	return coef[i]
}

// IntegrationMatrix returns H(m) of eq. (4): h/2 on the diagonal, h above.
func (b *BPF) IntegrationMatrix() *mat.Dense {
	h := mat.NewDense(b.m, b.m)
	for i := 0; i < b.m; i++ {
		h.Set(i, i, b.h/2)
		for j := i + 1; j < b.m; j++ {
			h.Set(i, j, b.h)
		}
	}
	return h
}

// DiffCoeffs returns the Toeplitz coefficients (c₀, c₁, ..., c_{m−1}) of the
// order-α differential operational matrix Dᵅ(m) = ρ_{α,m}(Q) (eq. 22):
// Dᵅ[i][j] = c_{j−i} for j ≥ i. α may be any real number; α = 1 gives the
// classical D(m) of eq. (7), negative α gives fractional integration.
//
// The coefficient form is what the column-by-column solver consumes; use
// DiffMatrix to materialize the dense matrix.
func (b *BPF) DiffCoeffs(alpha float64) []float64 {
	return poly.Rho(alpha, b.h, b.m).Coef
}

// DiffMatrix materializes Dᵅ(m) as a dense upper-triangular Toeplitz matrix.
func (b *BPF) DiffMatrix(alpha float64) *mat.Dense {
	c := b.DiffCoeffs(alpha)
	d := mat.NewDense(b.m, b.m)
	for i := 0; i < b.m; i++ {
		for j := i; j < b.m; j++ {
			d.Set(i, j, c[j-i])
		}
	}
	return d
}

// AdaptiveBPF is the non-uniform block-pulse basis of eq. (16): pulse i spans
// [t_i, t_{i+1}) with t_{i+1} = t_i + h_i for caller-chosen steps h_i.
type AdaptiveBPF struct {
	steps []float64
	edges []float64 // len m+1, edges[0] = 0
}

// NewAdaptiveBPF builds the basis from the given positive step sizes.
func NewAdaptiveBPF(steps []float64) (*AdaptiveBPF, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("basis: AdaptiveBPF requires at least one step")
	}
	edges := make([]float64, len(steps)+1)
	for i, h := range steps {
		if h <= 0 {
			return nil, fmt.Errorf("basis: step %d is %g, must be positive", i, h)
		}
		edges[i+1] = edges[i] + h
	}
	return &AdaptiveBPF{steps: append([]float64(nil), steps...), edges: edges}, nil
}

// Name implements Basis.
func (b *AdaptiveBPF) Name() string { return "adaptive block-pulse" }

// Size implements Basis.
func (b *AdaptiveBPF) Size() int { return len(b.steps) }

// Span implements Basis.
func (b *AdaptiveBPF) Span() float64 { return b.edges[len(b.edges)-1] }

// Steps returns a copy of the step sizes.
func (b *AdaptiveBPF) Steps() []float64 { return append([]float64(nil), b.steps...) }

// Edges returns a copy of the interval edges t_0 = 0 < t_1 < ... < t_m = T.
func (b *AdaptiveBPF) Edges() []float64 { return append([]float64(nil), b.edges...) }

// Eval implements Basis.
func (b *AdaptiveBPF) Eval(i int, t float64) float64 {
	if t >= b.edges[i] && t < b.edges[i+1] {
		return 1
	}
	return 0
}

// Expand implements Basis via per-interval averages.
func (b *AdaptiveBPF) Expand(f func(float64) float64) []float64 {
	c := make([]float64, len(b.steps))
	for i := range c {
		c[i] = integrate5(f, b.edges[i], b.edges[i+1]) / b.steps[i]
	}
	return c
}

// Reconstruct implements Basis by binary search over the interval edges.
func (b *AdaptiveBPF) Reconstruct(coef []float64, t float64) float64 {
	if t < 0 || t >= b.Span() {
		return 0
	}
	lo, hi := 0, len(b.steps)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b.edges[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return coef[lo]
}

// IntegrationMatrix returns H̃(m) of eq. (17): row i holds h_i/2 on the
// diagonal and h_i to its right.
func (b *AdaptiveBPF) IntegrationMatrix() *mat.Dense {
	m := len(b.steps)
	h := mat.NewDense(m, m)
	for i := 0; i < m; i++ {
		h.Set(i, i, b.steps[i]/2)
		for j := i + 1; j < m; j++ {
			h.Set(i, j, b.steps[i])
		}
	}
	return h
}

// DiffMatrix returns D̃(m) of eq. (17): the Toeplitz pattern 2·(1, −2, 2, ...)
// column-scaled by 1/h_j.
func (b *AdaptiveBPF) DiffMatrix() *mat.Dense {
	m := len(b.steps)
	d := mat.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := 2.0
			if j > i {
				v = 4
				if (j-i)%2 == 1 {
					v = -4
				}
			}
			d.Set(i, j, v/b.steps[j])
		}
	}
	return d
}

// DiffMatrixAlpha returns D̃ᵅ(m) of eq. (25). For non-integer α the steps must
// be pairwise distinct (the paper's "no two steps being exactly the same"),
// which guarantees distinct eigenvalues 2/h_j; the fractional power is then
// computed with the Parlett recurrence, the numerically robust form of the
// eigendecomposition method the paper prescribes.
func (b *AdaptiveBPF) DiffMatrixAlpha(alpha float64) (*mat.Dense, error) {
	if isExactEq(alpha, math.Trunc(alpha)) && alpha >= 0 {
		return mat.MatPowInt(b.DiffMatrix(), int(alpha)), nil
	}
	f, err := mat.TriPow(b.DiffMatrix(), alpha)
	if err != nil {
		return nil, fmt.Errorf("basis: adaptive Dᵅ: %w", err)
	}
	return f, nil
}
