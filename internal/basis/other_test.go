package basis

import (
	"math"
	"testing"
)

func TestWalshValidation(t *testing.T) {
	for _, m := range []int{0, 3, 6, -4} {
		if _, err := NewWalsh(m, 1); err == nil {
			t.Fatalf("NewWalsh accepted m=%d", m)
		}
	}
}

func TestWalshSequencyOrder(t *testing.T) {
	w, err := NewWalsh(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if got := w.SignChanges(i); got != i {
			t.Fatalf("Walsh function %d has %d sign changes, want %d", i, got, i)
		}
	}
}

func TestWalshOrthogonality(t *testing.T) {
	w, _ := NewWalsh(8, 2)
	// ∫ψ_iψ_j = T·δ_ij for ±1-valued functions on disjoint pulses.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			s := integrate5ForTest(func(t float64) float64 { return w.Eval(i, t) * w.Eval(j, t) }, 0, 2, 64)
			want := 0.0
			if i == j {
				want = 2
			}
			if math.Abs(s-want) > 1e-9 {
				t.Fatalf("⟨ψ%d,ψ%d⟩ = %g, want %g", i, j, s, want)
			}
		}
	}
}

func TestWalshExpandReconstruct(t *testing.T) {
	w, _ := NewWalsh(32, 1)
	f := func(t float64) float64 { return math.Sin(2 * math.Pi * t) }
	c := w.Expand(f)
	// Reconstruction at pulse midpoints equals the interval average:
	// compare against a BPF expansion of the same function.
	b, _ := NewBPF(32, 1)
	bc := b.Expand(f)
	for i := 0; i < 32; i++ {
		tt := (float64(i) + 0.5) / 32
		if math.Abs(w.Reconstruct(c, tt)-bc[i]) > 1e-10 {
			t.Fatalf("Walsh reconstruction at %g = %g, want %g", tt, w.Reconstruct(c, tt), bc[i])
		}
	}
}

// The Walsh integration matrix integrates, matching the BPF result.
func TestWalshIntegrationMatrix(t *testing.T) {
	w, _ := NewWalsh(64, 2)
	f := func(t float64) float64 { return math.Exp(-t) }
	intF := func(t float64) float64 { return 1 - math.Exp(-t) }
	fc := w.Expand(f)
	got := w.IntegrationMatrix().MulVecT(fc, nil)
	want := w.Expand(intF)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 2e-2 {
			t.Fatalf("Walsh ∫ coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestHaarValidation(t *testing.T) {
	if _, err := NewHaar(5, 1); err == nil {
		t.Fatal("NewHaar accepted m=5")
	}
}

func TestHaarStructure(t *testing.T) {
	h, err := NewHaar(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// ψ₀ ≡ 1.
	for _, tt := range []float64{0.1, 0.5, 0.9} {
		if h.Eval(0, tt) != 1 {
			t.Fatalf("Haar ψ₀(%g) = %g", tt, h.Eval(0, tt))
		}
	}
	// ψ₁ is the full-width mother wavelet: +1 then −1.
	if h.Eval(1, 0.25) != 1 || h.Eval(1, 0.75) != -1 {
		t.Fatalf("Haar ψ₁ wrong: %g, %g", h.Eval(1, 0.25), h.Eval(1, 0.75))
	}
	// Every non-constant function integrates to zero over [0, T).
	for i := 1; i < 8; i++ {
		s := integrate5ForTest(func(t float64) float64 { return h.Eval(i, t) }, 0, 1, 64)
		if math.Abs(s) > 1e-12 {
			t.Fatalf("∫ψ%d = %g, want 0", i, s)
		}
	}
}

func TestHaarExpandRoundTrip(t *testing.T) {
	h, _ := NewHaar(16, 1)
	b, _ := NewBPF(16, 1)
	f := func(t float64) float64 { return t*t - 0.3*t }
	hc := h.Expand(f)
	bc := b.Expand(f)
	for i := 0; i < 16; i++ {
		tt := (float64(i) + 0.5) / 16
		if math.Abs(h.Reconstruct(hc, tt)-bc[i]) > 1e-10 {
			t.Fatalf("Haar reconstruction differs from BPF average at pulse %d", i)
		}
	}
}

func TestHaarIntegrationMatrix(t *testing.T) {
	h, _ := NewHaar(64, 1)
	f := func(t float64) float64 { return math.Cos(3 * t) }
	intF := func(t float64) float64 { return math.Sin(3*t) / 3 }
	fc := h.Expand(f)
	got := h.IntegrationMatrix().MulVecT(fc, nil)
	want := h.Expand(intF)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 2e-2 {
			t.Fatalf("Haar ∫ coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLegendreValidation(t *testing.T) {
	if _, err := NewLegendre(0, 1); err == nil {
		t.Fatal("NewLegendre accepted m=0")
	}
	if _, err := NewLegendre(4, -1); err == nil {
		t.Fatal("NewLegendre accepted T<0")
	}
}

func TestLegendreEvalKnown(t *testing.T) {
	l, _ := NewLegendre(5, 2) // x = t−1 on [0,2)
	// P₂(x) = (3x²−1)/2 at t = 1.5 → x = 0.5 → 0.5·(0.75−1) = −0.125.
	if got := l.Eval(2, 1.5); math.Abs(got+0.125) > 1e-12 {
		t.Fatalf("P₂ at t=1.5: %g, want −0.125", got)
	}
	// P₃(x) = (5x³−3x)/2 at x = 1 → 1.
	if got := l.Eval(3, 2-1e-12); math.Abs(got-1) > 1e-6 {
		t.Fatalf("P₃ at right edge: %g, want 1", got)
	}
}

func TestLegendreExpandPolynomialExact(t *testing.T) {
	l, _ := NewLegendre(4, 1)
	// f(t) = ψ₂(t) should expand to the unit coefficient vector e₂.
	f := func(t float64) float64 { return l.Eval(2, t) }
	c := l.Expand(f)
	for i, v := range c {
		want := 0.0
		if i == 2 {
			want = 1
		}
		if math.Abs(v-want) > 1e-10 {
			t.Fatalf("coef[%d] = %g, want %g", i, v, want)
		}
	}
}

func TestLegendreExpandReconstructSmooth(t *testing.T) {
	l, _ := NewLegendre(16, 1)
	f := func(t float64) float64 { return math.Exp(2 * t) }
	c := l.Expand(f)
	for _, tt := range []float64{0.1, 0.35, 0.72, 0.95} {
		if got := l.Reconstruct(c, tt); math.Abs(got-f(tt)) > 1e-8 {
			t.Fatalf("Legendre reconstruction at %g = %g, want %g", tt, got, f(tt))
		}
	}
}

func TestLegendreIntegrationMatrix(t *testing.T) {
	l, _ := NewLegendre(20, 1)
	f := func(t float64) float64 { return math.Sin(5 * t) }
	intF := func(t float64) float64 { return (1 - math.Cos(5*t)) / 5 }
	fc := l.Expand(f)
	got := l.IntegrationMatrix().MulVecT(fc, nil)
	want := l.Expand(intF)
	for i := 0; i < 18; i++ { // last coefficients feel the truncation
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("Legendre ∫ coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestGaussLegendreRule(t *testing.T) {
	nodes, weights := gaussLegendre(12)
	// Integrates polynomials up to degree 23 exactly; check ∫x⁸ = 2/9.
	s := 0.0
	for i := range nodes {
		s += weights[i] * math.Pow(nodes[i], 8)
	}
	if math.Abs(s-2.0/9) > 1e-13 {
		t.Fatalf("GL ∫x⁸ = %g, want %g", s, 2.0/9)
	}
	// Weights sum to 2.
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-2) > 1e-13 {
		t.Fatalf("GL weights sum %g, want 2", sum)
	}
}

// Basis interface compliance.
func TestBasisInterfaceCompliance(t *testing.T) {
	bpf, _ := NewBPF(8, 1)
	ad, _ := NewAdaptiveBPF([]float64{0.1, 0.2, 0.3, 0.4})
	w, _ := NewWalsh(8, 1)
	h, _ := NewHaar(8, 1)
	l, _ := NewLegendre(8, 1)
	for _, b := range []Basis{bpf, ad, w, h, l} {
		if b.Size() <= 0 || b.Span() <= 0 || b.Name() == "" {
			t.Fatalf("basis %T misbehaves", b)
		}
	}
}

// integrate5ForTest is composite Gauss quadrature used only by tests.
func integrate5ForTest(f func(float64) float64, a, b float64, panels int) float64 {
	s := 0.0
	w := (b - a) / float64(panels)
	for i := 0; i < panels; i++ {
		s += integrate5(f, a+float64(i)*w, a+float64(i+1)*w)
	}
	return s
}
