package netgen

import (
	"math"
	"testing"

	"opmsim/internal/core"
	"opmsim/internal/transient"
	"opmsim/internal/waveform"
)

func TestPowerGridCounts(t *testing.T) {
	cfg := DefaultPowerGrid()
	cfg.Rows, cfg.Cols, cfg.Layers = 4, 5, 3
	cfg.NumLoads = 6
	g, err := PowerGrid3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Netlist.Stats()
	nodes := 3 * 4 * 5
	if s.Nodes != nodes {
		t.Fatalf("nodes = %d, want %d", s.Nodes, nodes)
	}
	wantL := 2 * 4 * 5 // (layers-1)·rows·cols vias
	if s.L != wantL {
		t.Fatalf("inductors = %d, want %d", s.L, wantL)
	}
	if s.C != nodes {
		t.Fatalf("capacitors = %d, want %d", s.C, nodes)
	}
	if s.I != 6 {
		t.Fatalf("loads = %d, want 6", s.I)
	}
	if len(g.ObserveNodes) != 3 {
		t.Fatalf("observe nodes = %d", len(g.ObserveNodes))
	}
	// MNA state count: nodes + inductor currents.
	mna, err := g.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	if mna.Sys.N() != nodes+wantL {
		t.Fatalf("MNA states = %d, want %d", mna.Sys.N(), nodes+wantL)
	}
	// NA state count: nodes only.
	na, err := g.Netlist.NA()
	if err != nil {
		t.Fatal(err)
	}
	if na.Sys.N() != nodes {
		t.Fatalf("NA states = %d, want %d", na.Sys.N(), nodes)
	}
}

func TestPowerGridValidation(t *testing.T) {
	bad := DefaultPowerGrid()
	bad.Rows = 1
	if _, err := PowerGrid3D(bad); err == nil {
		t.Fatal("accepted 1-row grid")
	}
	bad = DefaultPowerGrid()
	bad.BranchR = 0
	if _, err := PowerGrid3D(bad); err == nil {
		t.Fatal("accepted zero branch resistance")
	}
	bad = DefaultPowerGrid()
	bad.ViaL = 0
	if _, err := PowerGrid3D(bad); err == nil {
		t.Fatal("accepted zero via inductance on multilayer grid")
	}
	bad = DefaultPowerGrid()
	bad.NumLoads = 0
	if _, err := PowerGrid3D(bad); err == nil {
		t.Fatal("accepted zero loads")
	}
}

// Physics sanity: a grid driven by switching loads shows a droop that decays
// back toward zero after the loads switch off, and the NA and MNA
// formulations agree on it. This is the §V-B cross-check at small scale.
func TestPowerGridNAvsMNA(t *testing.T) {
	cfg := DefaultPowerGrid()
	cfg.Rows, cfg.Cols, cfg.Layers = 6, 6, 2
	cfg.NumLoads = 4
	g, err := PowerGrid3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mna, err := g.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	na, err := g.Netlist.NA()
	if err != nil {
		t.Fatal(err)
	}
	T := 6e-9
	m := 1024
	solMNA, err := core.Solve(mna.Sys, mna.Inputs, m, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solNA, err := core.Solve(na.Sys, na.Inputs, m, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	obs := g.ObserveNodes[len(g.ObserveNodes)-1] - 1 // state index of a bottom-layer center node voltage
	droopSeen := false
	h := T / float64(m)
	for j := 20; j < m; j += 50 {
		tt := (float64(j) + 0.5) * h
		a, b := solNA.StateAt(obs, tt), solMNA.StateAt(obs, tt)
		if math.Abs(a-b) > 2e-4+0.05*math.Abs(b) {
			t.Fatalf("NA vs MNA droop at %g: %g vs %g", tt, a, b)
		}
		if math.Abs(b) > 1e-5 {
			droopSeen = true
		}
	}
	if !droopSeen {
		t.Fatal("no droop observed — loads not wired?")
	}
}

// The MNA grid model also runs under the classical methods (Table II's
// comparison axis) and agrees with OPM.
func TestPowerGridTransientAgreesWithOPM(t *testing.T) {
	cfg := DefaultPowerGrid()
	cfg.Rows, cfg.Cols, cfg.Layers = 5, 5, 2
	cfg.NumLoads = 3
	g, err := PowerGrid3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mna, err := g.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	e, a, b, err := mna.DAE()
	if err != nil {
		t.Fatal(err)
	}
	T := 5e-9
	h := T / 2048
	res, err := transient.Simulate(e, a, b, mna.Inputs, T, h, transient.Trapezoidal, transient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(mna.Sys, mna.Inputs, 2048, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	obs := g.ObserveNodes[0] - 1
	for _, j := range []int{300, 900, 1700} {
		tt := (float64(j) + 0.5) * h
		want := res.SampleState(obs, []float64{tt})[0]
		got := sol.StateAt(obs, tt)
		if math.Abs(got-want) > 2e-5+0.02*math.Abs(want) {
			t.Fatalf("OPM vs trapezoidal at %g: %g vs %g", tt, got, want)
		}
	}
}

func TestFractionalLineShape(t *testing.T) {
	cfg := DefaultFractionalLine()
	mna, err := FractionalLine(cfg, waveform.Step(1e-3, 0), waveform.Zero())
	if err != nil {
		t.Fatal(err)
	}
	if mna.Sys.N() != 7 {
		t.Fatalf("states = %d, want 7", mna.Sys.N())
	}
	if mna.Sys.Inputs() != 2 || mna.Sys.Outputs() != 2 {
		t.Fatalf("ports = %d/%d, want 2/2", mna.Sys.Inputs(), mna.Sys.Outputs())
	}
	if mna.Sys.MaxOrder() != 0.5 {
		t.Fatalf("order = %g, want 0.5", mna.Sys.MaxOrder())
	}
	// Simulate on the paper's time base and check causality/stability:
	// the response is finite and the far port lags the near port.
	T := 2.7e-9
	sol, err := core.Solve(mna.Sys, mna.Inputs, 256, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ys := sol.SampleOutputs(waveform.UniformTimes(64, T))
	var maxNear, maxFar float64
	for k := range ys[0] {
		if math.IsNaN(ys[0][k]) || math.IsNaN(ys[1][k]) {
			t.Fatal("NaN in response")
		}
		maxNear = math.Max(maxNear, math.Abs(ys[0][k]))
		maxFar = math.Max(maxFar, math.Abs(ys[1][k]))
	}
	if maxNear == 0 || maxFar >= maxNear {
		t.Fatalf("expected attenuated far-port response: near %g, far %g", maxNear, maxFar)
	}
}

func TestFractionalLineValidation(t *testing.T) {
	cfg := DefaultFractionalLine()
	if _, err := FractionalLine(cfg, nil, waveform.Zero()); err == nil {
		t.Fatal("accepted nil drive")
	}
	cfg.Sections = 1
	if _, err := FractionalLine(cfg, waveform.Zero(), waveform.Zero()); err == nil {
		t.Fatal("accepted 1 section")
	}
	cfg = DefaultFractionalLine()
	cfg.Order = 2.5
	if _, err := FractionalLine(cfg, waveform.Zero(), waveform.Zero()); err == nil {
		t.Fatal("accepted order 2.5")
	}
	cfg = DefaultFractionalLine()
	cfg.SectionR = 0
	if _, err := FractionalLine(cfg, waveform.Zero(), waveform.Zero()); err == nil {
		t.Fatal("accepted zero section R")
	}
}

func TestRCLadder(t *testing.T) {
	mna, err := RCLadder(5, 1e3, 1e-6, waveform.Step(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	// States: in + 5 ladder nodes + 1 source current = 7.
	if mna.Sys.N() != 7 {
		t.Fatalf("states = %d, want 7", mna.Sys.N())
	}
	T := 30e-3
	sol, err := core.Solve(mna.Sys, mna.Inputs, 1024, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	y0 := sol.OutputAt(1e-3)[0]
	yEnd := sol.OutputAt(T * 0.99)[0]
	if !(y0 < 0.2 && yEnd > 0.8) {
		t.Fatalf("ladder output should rise toward 1: early %g, late %g", y0, yEnd)
	}
	if _, err := RCLadder(0, 1, 1, waveform.Zero()); err == nil {
		t.Fatal("accepted 0 sections")
	}
	if _, err := RCLadder(3, -1, 1, waveform.Zero()); err == nil {
		t.Fatal("accepted negative R")
	}
	if _, err := RCLadder(3, 1, 1, nil); err == nil {
		t.Fatal("accepted nil drive")
	}
}

func TestRCTreeStructureAndDelay(t *testing.T) {
	depth := 4
	mna, err := RCTree(depth, 100, 50, 10e-15, waveform.Step(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: src + (2^(depth+1) − 1) tree nodes; states add the V-source
	// current.
	wantNodes := 1 + (1<<(depth+1) - 1)
	if mna.Sys.N() != wantNodes+1 {
		t.Fatalf("states = %d, want %d", mna.Sys.N(), wantNodes+1)
	}
	if mna.Sys.Outputs() != 1<<depth {
		t.Fatalf("leaf outputs = %d, want %d", mna.Sys.Outputs(), 1<<depth)
	}
	T := 100e-12
	sol, err := core.Solve(mna.Sys, mna.Inputs, 2048, T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All leaves of a balanced tree are symmetric: equal waveforms.
	y := sol.OutputAt(T / 4)
	for i := 1; i < len(y); i++ {
		if math.Abs(y[i]-y[0]) > 1e-9 {
			t.Fatalf("balanced tree leaves differ: %g vs %g", y[i], y[0])
		}
	}
	// Rising toward 1 and monotone at the leaf.
	early, late := sol.OutputAt(T / 20)[0], sol.OutputAt(T * 0.95)[0]
	if !(early < late && late > 0.5 && late <= 1.0001) {
		t.Fatalf("leaf response not rising: early %g, late %g", early, late)
	}
}

func TestRCTreeValidation(t *testing.T) {
	if _, err := RCTree(0, 1, 1, 1, waveform.Zero()); err == nil {
		t.Fatal("accepted depth 0")
	}
	if _, err := RCTree(13, 1, 1, 1, waveform.Zero()); err == nil {
		t.Fatal("accepted depth 13")
	}
	if _, err := RCTree(3, -1, 1, 1, waveform.Zero()); err == nil {
		t.Fatal("accepted negative R")
	}
	if _, err := RCTree(3, 1, 1, 1, nil); err == nil {
		t.Fatal("accepted nil drive")
	}
}

// TestPowerGridSeedDeterminism pins the seed contract the opm-bench -seed
// flag relies on: the same seed reproduces the same load placement and
// stagger delays bit for bit, and a different seed moves the loads.
func TestPowerGridSeedDeterminism(t *testing.T) {
	cfg := DefaultPowerGrid()
	cfg.Rows, cfg.Cols, cfg.Layers = 6, 6, 2
	cfg.NumLoads = 8
	cfg.Seed = 42
	g1, err := PowerGrid3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := PowerGrid3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.LoadNodes) != len(g2.LoadNodes) {
		t.Fatalf("load counts differ: %d vs %d", len(g1.LoadNodes), len(g2.LoadNodes))
	}
	for i := range g1.LoadNodes {
		if g1.LoadNodes[i] != g2.LoadNodes[i] {
			t.Fatalf("load %d placed at node %d then %d with the same seed", i, g1.LoadNodes[i], g2.LoadNodes[i])
		}
	}
	// The staggered delays come from the same stream; compare the aggregate
	// injected current at a point inside the stagger window.
	m1, err := g1.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g2.Netlist.MNA()
	if err != nil {
		t.Fatal(err)
	}
	tProbe := cfg.LoadDelay * 1.3
	for i, sig := range m1.Inputs {
		if v1, v2 := sig(tProbe), m2.Inputs[i](tProbe); v1 != v2 {
			t.Fatalf("input %d differs at t=%g: %g vs %g", i, tProbe, v1, v2)
		}
	}
	cfg.Seed = 43
	g3, err := PowerGrid3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range g1.LoadNodes {
		if g1.LoadNodes[i] != g3.LoadNodes[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical load placement")
	}
}
