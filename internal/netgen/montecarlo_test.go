package netgen

import (
	"math"
	"testing"

	"opmsim/internal/waveform"
)

// The counter-based sampler: pure function of (seed, scenario, element) —
// same key → same bits, different key → different draw — and values stay in
// the ±tol band around nominal.
func TestMonteCarloPerturbDeterministic(t *testing.T) {
	n, _, err := RCLadderNetlist(8, 100, 1e-6, waveform.Step(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	names := PerturbableElements(n, 0)
	if len(names) != 16 { // 8 Rs + 8 Cs; Vin is not perturbable
		t.Fatalf("perturbable elements: %d, want 16", len(names))
	}
	const seed, tol = 12345, 0.1
	a, err := MonteCarloPerturb(n, names, seed, 3, tol)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloPerturb(n, names, seed, 3, tol)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(names) {
		t.Fatalf("perturbations: %d, want %d", len(a), len(names))
	}
	nominal := map[string]float64{}
	for _, e := range n.Elements() {
		nominal[e.Name] = e.Value
	}
	for i := range a {
		if a[i].Name != b[i].Name || math.Float64bits(a[i].Value) != math.Float64bits(b[i].Value) {
			t.Fatalf("element %d: repeat draw differs: %+v vs %+v", i, a[i], b[i])
		}
		nom := nominal[a[i].Name]
		if rel := math.Abs(a[i].Value/nom - 1); rel > tol {
			t.Fatalf("%s: |%g/%g − 1| = %g exceeds tol %g", a[i].Name, a[i].Value, nom, rel, tol)
		}
	}
	// Different scenario or seed → different values (overwhelmingly).
	c, err := MonteCarloPerturb(n, names, seed, 4, tol)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MonteCarloPerturb(n, names, seed+1, 3, tol)
	if err != nil {
		t.Fatal(err)
	}
	sameC, sameD := 0, 0
	for i := range a {
		if math.Float64bits(a[i].Value) == math.Float64bits(c[i].Value) {
			sameC++
		}
		if math.Float64bits(a[i].Value) == math.Float64bits(d[i].Value) {
			sameD++
		}
	}
	if sameC == len(a) || sameD == len(a) {
		t.Fatalf("scenario/seed variation produced identical draws (%d/%d identical)", sameC, sameD)
	}
	// Scenario 0 is the nominal reference: no perturbations.
	z, err := MonteCarloPerturb(n, names, seed, 0, tol)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 0 {
		t.Fatalf("scenario 0 returned %d perturbations, want 0", len(z))
	}
}

func TestMonteCarloPerturbValidation(t *testing.T) {
	n, _, err := RCLadderNetlist(2, 100, 1e-6, waveform.Step(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MonteCarloPerturb(n, []string{"R1"}, 1, 1, 1.5); err == nil {
		t.Fatal("tol ≥ 1 should fail")
	}
	if _, err := MonteCarloPerturb(n, []string{"R1"}, 1, -1, 0.1); err == nil {
		t.Fatal("negative scenario should fail")
	}
	if _, err := MonteCarloPerturb(n, []string{"nope"}, 1, 1, 0.1); err == nil {
		t.Fatal("unknown element should fail")
	}
}
