// Package netgen generates the benchmark networks of the paper's evaluation:
// the 3-D RLC power grid of §V-B (Table II), a synthetic stand-in for the
// 7-state fractional transmission-line model of §V-A (Table I), and RC
// ladders for the adaptive-step and quickstart scenarios.
package netgen

import (
	"fmt"
	"math"
	"math/rand"

	"opmsim/internal/circuit"
	"opmsim/internal/waveform"
)

// PowerGridConfig parameterizes the 3-D grid. Dimensions multiply out to the
// node count: the paper's instance is ~75 K nodes (NA) / ~110 K states
// (MNA); the defaults in DefaultPowerGrid are laptop-scale, and the bench
// harness exposes flags to reproduce the full size.
type PowerGridConfig struct {
	Layers, Rows, Cols int
	// BranchR is the in-plane segment resistance (Ω).
	BranchR float64
	// ViaL is the inter-layer via inductance (H).
	ViaL float64
	// NodeC is the decap/parasitic capacitance per node (F).
	NodeC float64
	// PadR ties top-layer pad nodes to the supply rail (analyzed as ground,
	// so node voltages are IR-droop) every PadPitch nodes.
	PadR     float64
	PadPitch int
	// NumLoads switching current loads are placed on random bottom-layer
	// nodes, drawing trapezoidal pulses of LoadPeak amps with LoadRise
	// rise/fall and LoadWidth on-time starting at LoadDelay.
	NumLoads  int
	LoadPeak  float64
	LoadDelay float64
	LoadRise  float64
	LoadWidth float64
	Seed      int64
}

// DefaultPowerGrid returns a small instance (3 layers × 16 × 16 ≈ 768 nodes)
// with physically plausible on-chip values: mΩ-scale grid segments, pH vias,
// fF decaps and mA switching loads on a nanosecond time base.
func DefaultPowerGrid() PowerGridConfig {
	return PowerGridConfig{
		Layers: 3, Rows: 16, Cols: 16,
		BranchR: 0.05, ViaL: 5e-12, NodeC: 50e-15,
		PadR: 0.01, PadPitch: 4,
		NumLoads: 32, LoadPeak: 5e-3,
		LoadDelay: 0.5e-9, LoadRise: 0.2e-9, LoadWidth: 2e-9,
		Seed: 1,
	}
}

// PowerGridN returns DefaultPowerGrid scaled to approximately n grid nodes
// (3 layers over a square plane) — the knob the scale experiment and the
// bench harness turn to sweep node counts from hundreds up to 10⁵ and
// beyond. Pad pitch is kept fixed (pads per area constant) and the load
// count grows with the plane so the electrical character — droop per node,
// load density — does not drift with size; only the seed-driven load
// placement differs between sizes.
func PowerGridN(n int) PowerGridConfig {
	cfg := DefaultPowerGrid()
	if n < 12 {
		n = 12
	}
	side := int(math.Ceil(math.Sqrt(float64(n) / float64(cfg.Layers))))
	if side < 2 {
		side = 2
	}
	cfg.Rows, cfg.Cols = side, side
	cfg.NumLoads = side * side / 8
	if cfg.NumLoads < 4 {
		cfg.NumLoads = 4
	}
	return cfg
}

// PowerGrid is a generated grid: the netlist plus bookkeeping for the
// experiment harness.
type PowerGrid struct {
	Netlist *circuit.Netlist
	// LoadNodes are the netlist node ids carrying current loads.
	LoadNodes []int
	// ObserveNodes are representative nodes (grid center of each layer) for
	// waveform comparison.
	ObserveNodes []int
	Config       PowerGridConfig
}

// PowerGrid3D builds the grid: in-plane resistor mesh per layer, inductive
// vias between layers, capacitance at every node, resistive pads on the top
// layer and pulsed current loads on the bottom layer. The structure admits
// both formulations of §V-B: NA (second-order, node voltages only) and MNA
// (first-order DAE with via currents as extra states).
func PowerGrid3D(cfg PowerGridConfig) (*PowerGrid, error) {
	if cfg.Layers < 1 || cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("netgen: grid needs ≥1 layer and ≥2 rows/cols, got %dx%dx%d", cfg.Layers, cfg.Rows, cfg.Cols)
	}
	if cfg.BranchR <= 0 || cfg.NodeC <= 0 || cfg.PadR <= 0 {
		return nil, fmt.Errorf("netgen: BranchR, NodeC, PadR must be positive")
	}
	if cfg.Layers > 1 && cfg.ViaL <= 0 {
		return nil, fmt.Errorf("netgen: multi-layer grid needs positive ViaL")
	}
	if cfg.PadPitch < 1 {
		cfg.PadPitch = 1
	}
	if cfg.NumLoads < 1 {
		return nil, fmt.Errorf("netgen: need at least one load")
	}
	n := circuit.New()
	node := func(l, r, c int) int {
		return n.Node(fmt.Sprintf("n%d_%d_%d", l, r, c))
	}
	// In-plane resistor mesh.
	for l := 0; l < cfg.Layers; l++ {
		for r := 0; r < cfg.Rows; r++ {
			for c := 0; c < cfg.Cols; c++ {
				if c+1 < cfg.Cols {
					if err := n.AddR(fmt.Sprintf("Rh%d_%d_%d", l, r, c), node(l, r, c), node(l, r, c+1), cfg.BranchR); err != nil {
						return nil, err
					}
				}
				if r+1 < cfg.Rows {
					if err := n.AddR(fmt.Sprintf("Rv%d_%d_%d", l, r, c), node(l, r, c), node(l, r+1, c), cfg.BranchR); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	// Vias (inductive) between adjacent layers.
	for l := 0; l+1 < cfg.Layers; l++ {
		for r := 0; r < cfg.Rows; r++ {
			for c := 0; c < cfg.Cols; c++ {
				if err := n.AddL(fmt.Sprintf("Lv%d_%d_%d", l, r, c), node(l, r, c), node(l+1, r, c), cfg.ViaL); err != nil {
					return nil, err
				}
			}
		}
	}
	// Node capacitance.
	for l := 0; l < cfg.Layers; l++ {
		for r := 0; r < cfg.Rows; r++ {
			for c := 0; c < cfg.Cols; c++ {
				if err := n.AddC(fmt.Sprintf("C%d_%d_%d", l, r, c), node(l, r, c), 0, cfg.NodeC); err != nil {
					return nil, err
				}
			}
		}
	}
	// Pads on the top layer.
	padCount := 0
	for r := 0; r < cfg.Rows; r += cfg.PadPitch {
		for c := 0; c < cfg.Cols; c += cfg.PadPitch {
			if err := n.AddR(fmt.Sprintf("Rpad%d_%d", r, c), node(0, r, c), 0, cfg.PadR); err != nil {
				return nil, err
			}
			padCount++
		}
	}
	if padCount == 0 {
		return nil, fmt.Errorf("netgen: pad pitch %d left the grid floating", cfg.PadPitch)
	}
	// Switching loads on the bottom layer.
	rng := rand.New(rand.NewSource(cfg.Seed))
	bottom := cfg.Layers - 1
	loadNodes := make([]int, 0, cfg.NumLoads)
	for i := 0; i < cfg.NumLoads; i++ {
		r, c := rng.Intn(cfg.Rows), rng.Intn(cfg.Cols)
		id := node(bottom, r, c)
		// Stagger load switching slightly for a realistic aggregate.
		delay := cfg.LoadDelay * (1 + 0.5*rng.Float64())
		src := waveform.Pulse(0, cfg.LoadPeak, delay, cfg.LoadRise, cfg.LoadRise, cfg.LoadWidth, 0)
		if err := n.AddI(fmt.Sprintf("Iload%d", i), id, 0, src); err != nil {
			return nil, err
		}
		loadNodes = append(loadNodes, id)
	}
	observe := make([]int, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		observe[l] = node(l, cfg.Rows/2, cfg.Cols/2)
	}
	return &PowerGrid{Netlist: n, LoadNodes: loadNodes, ObserveNodes: observe, Config: cfg}, nil
}

// FractionalLineConfig parameterizes the synthetic fractional
// transmission-line model standing in for the §V-A example (whose exact
// matrices the paper does not print — see DESIGN.md substitutions).
type FractionalLineConfig struct {
	// Sections is the number of ladder sections = state count (paper: 7).
	Sections int
	// Order is the fractional derivative order (paper: 1/2).
	Order float64
	// SectionR is the series resistance per section (Ω).
	SectionR float64
	// SectionC is the CPE pseudo-capacitance per section.
	SectionC float64
	// TermR terminates both ends to ground.
	TermR float64
}

// DefaultFractionalLine reproduces the paper's dimensions: 7 states, 2
// inputs/outputs, order 1/2, on the paper's [0, 2.7 ns) time base.
func DefaultFractionalLine() FractionalLineConfig {
	return FractionalLineConfig{Sections: 7, Order: 0.5, SectionR: 50, SectionC: 0.8e-9, TermR: 50}
}

// FractionalLine builds the model as a CPE ladder: nodes v₁..v_k chained by
// section resistors, a CPE from every node to ground, current injections at
// the two end nodes (2 inputs) and terminations at both ends. Its MNA is
// exactly E·d^α x = A·x + B·u with x ∈ R^k, u, y ∈ R², matching eq. (29).
// The returned MNA has C selecting the two port voltages.
func FractionalLine(cfg FractionalLineConfig, drive1, drive2 waveform.Signal) (*circuit.MNA, error) {
	if cfg.Sections < 2 {
		return nil, fmt.Errorf("netgen: line needs at least 2 sections, got %d", cfg.Sections)
	}
	if cfg.Order <= 0 || cfg.Order >= 2 {
		return nil, fmt.Errorf("netgen: fractional order must be in (0,2), got %g", cfg.Order)
	}
	if cfg.SectionR <= 0 || cfg.SectionC <= 0 || cfg.TermR <= 0 {
		return nil, fmt.Errorf("netgen: section parameters must be positive")
	}
	if drive1 == nil || drive2 == nil {
		return nil, fmt.Errorf("netgen: both port drives are required (use waveform.Zero for an idle port)")
	}
	n := circuit.New()
	nodes := make([]int, cfg.Sections)
	for i := range nodes {
		nodes[i] = n.Node(fmt.Sprintf("v%d", i+1))
	}
	first, last := nodes[0], nodes[cfg.Sections-1]
	if err := n.AddI("Iin1", 0, first, drive1); err != nil {
		return nil, err
	}
	if err := n.AddI("Iin2", 0, last, drive2); err != nil {
		return nil, err
	}
	for i := 0; i+1 < cfg.Sections; i++ {
		if err := n.AddR(fmt.Sprintf("Rs%d", i+1), nodes[i], nodes[i+1], cfg.SectionR); err != nil {
			return nil, err
		}
	}
	for i, nd := range nodes {
		if err := n.AddCPE(fmt.Sprintf("P%d", i+1), nd, 0, cfg.SectionC, cfg.Order); err != nil {
			return nil, err
		}
	}
	if err := n.AddR("Rt1", first, 0, cfg.TermR); err != nil {
		return nil, err
	}
	if err := n.AddR("Rt2", last, 0, cfg.TermR); err != nil {
		return nil, err
	}
	mna, err := n.MNA()
	if err != nil {
		return nil, err
	}
	c, err := mna.VoltageSelector(first, last)
	if err != nil {
		return nil, err
	}
	sysC, err := mna.Sys.WithOutput(c)
	if err != nil {
		return nil, err
	}
	mna.Sys = sysC
	return mna, nil
}

// RCTree builds a balanced binary RC interconnect tree of the given depth:
// the root is driven by a voltage source through a driver resistance, every
// branch is an R segment, and every internal/leaf node carries a grounded
// capacitor. It models clock/signal distribution networks; the leaf with the
// longest path dominates the delay. Returns the MNA with C selecting all
// leaf voltages.
func RCTree(depth int, rDrv, rSeg, cNode float64, drive waveform.Signal) (*circuit.MNA, error) {
	if depth < 1 || depth > 12 {
		return nil, fmt.Errorf("netgen: tree depth must be in [1,12], got %d", depth)
	}
	if rDrv <= 0 || rSeg <= 0 || cNode <= 0 {
		return nil, fmt.Errorf("netgen: tree needs positive R and C values")
	}
	if drive == nil {
		return nil, fmt.Errorf("netgen: tree needs a drive signal")
	}
	n := circuit.New()
	src := n.Node("src")
	if err := n.AddV("Vdrv", src, 0, drive); err != nil {
		return nil, err
	}
	root := n.Node("n0")
	if err := n.AddR("Rdrv", src, root, rDrv); err != nil {
		return nil, err
	}
	if err := n.AddC("C0", root, 0, cNode); err != nil {
		return nil, err
	}
	// Level-order construction: node i has children 2i+1, 2i+2.
	total := 1<<(depth+1) - 1
	var leaves []int
	for i := 1; i < total; i++ {
		parent := n.Node(fmt.Sprintf("n%d", (i-1)/2))
		me := n.Node(fmt.Sprintf("n%d", i))
		if err := n.AddR(fmt.Sprintf("R%d", i), parent, me, rSeg); err != nil {
			return nil, err
		}
		if err := n.AddC(fmt.Sprintf("C%d", i), me, 0, cNode); err != nil {
			return nil, err
		}
		if 2*i+1 >= total {
			leaves = append(leaves, me)
		}
	}
	mna, err := n.MNA()
	if err != nil {
		return nil, err
	}
	sel, err := mna.VoltageSelector(leaves...)
	if err != nil {
		return nil, err
	}
	sysC, err := mna.Sys.WithOutput(sel)
	if err != nil {
		return nil, err
	}
	mna.Sys = sysC
	return mna, nil
}

// RCLadder builds an n-section RC ladder driven by a step voltage source —
// the quickstart network. Section i has resistance r and capacitance c; the
// far-end capacitor voltage is the usual observation point.
func RCLadder(sections int, r, c float64, drive waveform.Signal) (*circuit.MNA, error) {
	n, lastNode, err := RCLadderNetlist(sections, r, c, drive)
	if err != nil {
		return nil, err
	}
	mna, err := n.MNA()
	if err != nil {
		return nil, err
	}
	sel, err := mna.VoltageSelector(lastNode)
	if err != nil {
		return nil, err
	}
	sysC, err := mna.Sys.WithOutput(sel)
	if err != nil {
		return nil, err
	}
	mna.Sys = sysC
	return mna, nil
}

// RCLadderNetlist builds the RC ladder as a bare netlist (elements Vin,
// R1..Rn, C1..Cn over nodes in, n1..nn) plus the output node index, leaving
// model assembly and output selection to the caller — the Monte-Carlo sweep
// needs the netlist itself to stamp component-value perturbations against.
func RCLadderNetlist(sections int, r, c float64, drive waveform.Signal) (*circuit.Netlist, int, error) {
	if sections < 1 {
		return nil, 0, fmt.Errorf("netgen: ladder needs at least one section")
	}
	if r <= 0 || c <= 0 {
		return nil, 0, fmt.Errorf("netgen: ladder needs positive R and C")
	}
	if drive == nil {
		return nil, 0, fmt.Errorf("netgen: ladder needs a drive signal")
	}
	n := circuit.New()
	in := n.Node("in")
	if err := n.AddV("Vin", in, 0, drive); err != nil {
		return nil, 0, err
	}
	prev := in
	var lastNode int
	for i := 1; i <= sections; i++ {
		nd := n.Node(fmt.Sprintf("n%d", i))
		if err := n.AddR(fmt.Sprintf("R%d", i), prev, nd, r); err != nil {
			return nil, 0, err
		}
		if err := n.AddC(fmt.Sprintf("C%d", i), nd, 0, c); err != nil {
			return nil, 0, err
		}
		prev = nd
		lastNode = nd
	}
	return n, lastNode, nil
}
