package netgen

import (
	"fmt"

	"opmsim/internal/circuit"
)

// Monte-Carlo component sampling: the counter-based RNG behind the sweep
// driver's scenario generation. Each perturbed value is a pure function of
// (seed, scenario, element index) — no sequential generator state — so
// scenario chunks can be generated in any order, restarted, or re-generated
// for a spot-check and always produce bit-identical values. That, plus the
// deterministic fold order of waveform.Envelope, is what makes "same seed →
// Float64bits-identical envelopes" hold end to end.

// splitmix64 is the canonical SplitMix64 finalizer (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators"): one Weyl-sequence step
// followed by a bijective avalanche mix. The same routine drives the serve
// layer's retry jitter; it is tiny enough that keeping the solver-side copy
// local beats exporting an RNG dependency between unrelated packages.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mcUniform returns the uniform [0,1) variate for (seed, scenario, elem):
// the seed and scenario select a stream, the element index a position in it,
// each separated by a full avalanche so neighbouring scenarios/elements are
// statistically independent. The top 53 bits become the float, the standard
// exact-dyadic construction.
func mcUniform(seed uint64, scenario, elem int) float64 {
	z := splitmix64(seed ^ 0x4d43 /* "MC" */ ^ uint64(scenario))
	z = splitmix64(z + uint64(elem))
	return float64(z>>11) / (1 << 53)
}

// MonteCarloPerturb samples scenario's component values: each named element's
// nominal value v becomes v·(1+tol·(2u−1)) with u uniform in [0,1) — a
// symmetric ±tol relative tolerance band, the standard component-tolerance
// model. Element order in names fixes the RNG keying, so pass the same slice
// for every scenario. Scenario 0 by convention is the nominal run: it returns
// no perturbations, giving every sweep an exact reference waveform.
func MonteCarloPerturb(n *circuit.Netlist, names []string, seed uint64, scenario int, tol float64) ([]circuit.Perturbation, error) {
	if tol < 0 || tol >= 1 {
		return nil, fmt.Errorf("netgen: montecarlo tolerance %g outside [0,1)", tol)
	}
	if scenario < 0 {
		return nil, fmt.Errorf("netgen: montecarlo scenario index %d negative", scenario)
	}
	if scenario == 0 || !(tol > 0) || len(names) == 0 {
		return nil, nil
	}
	nominal := map[string]float64{}
	for _, e := range n.Elements() {
		nominal[e.Name] = e.Value
	}
	perts := make([]circuit.Perturbation, 0, len(names))
	for i, name := range names {
		v, ok := nominal[name]
		if !ok {
			return nil, fmt.Errorf("netgen: montecarlo element %q not in netlist", name)
		}
		u := mcUniform(seed, scenario, i)
		perts = append(perts, circuit.Perturbation{Name: name, Value: v * (1 + tol*(2*u-1))})
	}
	return perts, nil
}

// PerturbableElements lists the value-perturbable element names of a netlist
// (resistors, capacitors, inductors, CPEs — skipping coupled inductors, which
// StampDelta rejects) in netlist order, capped at limit (≤0 = no cap). The
// sweep driver uses it as the default "perturb everything" element set.
func PerturbableElements(n *circuit.Netlist, limit int) []string {
	coupled := map[string]bool{}
	for _, cp := range n.Couplings() {
		coupled[cp.L1] = true
		coupled[cp.L2] = true
	}
	var names []string
	for _, e := range n.Elements() {
		switch e.Kind {
		case circuit.Resistor, circuit.Capacitor, circuit.CPE:
		case circuit.Inductor:
			if coupled[e.Name] {
				continue
			}
		default:
			continue
		}
		names = append(names, e.Name)
		if limit > 0 && len(names) >= limit {
			break
		}
	}
	return names
}

// Corner enumeration: the deterministic worst-case companion to the
// Monte-Carlo sampler. For L perturbable elements the corner set has
// 2L + 3 scenarios — the nominal circuit, each element alone at its +tol and
// −tol extreme (rank-1 pencil deltas, the ideal workload for the SMW update
// path), and the two global corners with every element simultaneously high
// or low. CornerCount and CornerPerturb share the indexing so sweep drivers
// can chunk corners like any other scenario stream.

// CornerCount returns the scenario count of the corner set over L elements.
func CornerCount(numElements int) int { return 2*numElements + 3 }

// CornerPerturb returns the perturbations and a human-readable label for
// corner index c of the corner set over names: 0 is the nominal circuit
// (no perturbations), 1..2L the per-element ± extremes (odd = +tol,
// even = −tol of element (c−1)/2), 2L+1 / 2L+2 the all-high / all-low
// global corners.
func CornerPerturb(n *circuit.Netlist, names []string, c int, tol float64) ([]circuit.Perturbation, string, error) {
	if tol < 0 || tol >= 1 {
		return nil, "", fmt.Errorf("netgen: corner tolerance %g outside [0,1)", tol)
	}
	L := len(names)
	if c < 0 || c >= CornerCount(L) {
		return nil, "", fmt.Errorf("netgen: corner index %d outside [0,%d)", c, CornerCount(L))
	}
	if c == 0 {
		return nil, "nominal", nil
	}
	nominal := map[string]float64{}
	for _, e := range n.Elements() {
		nominal[e.Name] = e.Value
	}
	value := func(name string, sign float64) (circuit.Perturbation, error) {
		v, ok := nominal[name]
		if !ok {
			return circuit.Perturbation{}, fmt.Errorf("netgen: corner element %q not in netlist", name)
		}
		return circuit.Perturbation{Name: name, Value: v * (1 + sign*tol)}, nil
	}
	if c <= 2*L {
		elem, sign, tag := names[(c-1)/2], 1.0, "+"
		if (c-1)%2 == 1 {
			sign, tag = -1, "-"
		}
		p, err := value(elem, sign)
		if err != nil {
			return nil, "", err
		}
		return []circuit.Perturbation{p}, elem + tag, nil
	}
	sign, label := 1.0, "all+"
	if c == 2*L+2 {
		sign, label = -1, "all-"
	}
	perts := make([]circuit.Perturbation, 0, L)
	for _, name := range names {
		p, err := value(name, sign)
		if err != nil {
			return nil, "", err
		}
		perts = append(perts, p)
	}
	return perts, label, nil
}
