package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDensePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewDense(dims[0], dims[1])
		}()
	}
}

func TestEye(t *testing.T) {
	e := Eye(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(4)[%d,%d] = %g, want %g", i, j, e.At(i, j), want)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	a := randomDense(rand.New(rand.NewSource(1)), 5, 7)
	if got := Mul(Eye(5), a); !Equalf(got, a, 0) {
		t.Fatal("I*A != A")
	}
	if got := Mul(a, Eye(7)); !Equalf(got, a, 0) {
		t.Fatal("A*I != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := NewDenseFrom(2, 2, []float64{58, 64, 139, 154})
	if got := Mul(a, b); !Equalf(got, want, 1e-14) {
		t.Fatalf("Mul =\n%v want\n%v", got, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 4, 6)
	if !Equalf(a.T().T(), a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 6, 4)
	x := randomVec(rng, 4)
	xm := NewDense(4, 1)
	for i, v := range x {
		xm.Set(i, 0, v)
	}
	want := Mul(a, xm)
	got := a.MulVec(x, nil)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-13 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 5, 3)
	x := randomVec(rng, 5)
	want := a.T().MulVec(x, nil)
	got := a.MulVecT(x, nil)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-13 {
			t.Fatalf("MulVecT[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDense(rng, 3, 3)
	b := randomDense(rng, 3, 3)
	sum := AddTo(a, b)
	diff := Sub(sum, b)
	if !Equalf(diff, a, 1e-14) {
		t.Fatal("A+B-B != A")
	}
	sc := a.Clone().Scale(2)
	if !Equalf(sc, AddTo(a, a), 1e-14) {
		t.Fatal("2A != A+A")
	}
}

// Property: matrix multiplication is associative (within roundoff).
func TestMulAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a, b, c := randomDense(rng, n, n), randomDense(rng, n, n), randomDense(rng, n, n)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return Equalf(left, right, 1e-9*(1+left.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a, b := randomDense(rng, r, k), randomDense(rng, k, c)
		return Equalf(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := NormInf([]float64{-7, 2}); got != 7 {
		t.Fatalf("NormInf = %g, want 7", got)
	}
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	y := []float64{1, 1}
	Axpy(2, []float64{10, 20}, y)
	if y[0] != 21 || y[1] != 41 {
		t.Fatalf("Axpy = %v", y)
	}
	ScaleVec(0.5, y)
	if y[0] != 10.5 {
		t.Fatalf("ScaleVec = %v", y)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
