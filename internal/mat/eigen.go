package mat

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Eigenvalues returns all eigenvalues of a real square matrix, sorted by
// real part (ties by imaginary part). The computation promotes to complex
// arithmetic and runs a Hessenberg reduction followed by a shifted QR
// iteration with deflation — simpler than the Francis double-shift and
// entirely adequate for the moderate sizes the simulator needs (stability
// analysis of descriptor pencils, basis diagnostics).
func Eigenvalues(a *Dense) ([]complex128, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Eigenvalues of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	h := NewCDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, complex(a.At(i, j), 0))
		}
	}
	ev, err := eigHessenbergQR(h)
	if err != nil {
		return nil, err
	}
	// Clean tiny imaginary parts produced by roundoff on real spectra.
	scale := a.MaxAbs()
	for i, v := range ev {
		if math.Abs(imag(v)) <= 1e-10*(1+scale) {
			ev[i] = complex(real(v), 0)
		}
	}
	sort.Slice(ev, func(i, j int) bool {
		if !isExactEq(real(ev[i]), real(ev[j])) {
			return real(ev[i]) < real(ev[j])
		}
		return imag(ev[i]) < imag(ev[j])
	})
	return ev, nil
}

// eigHessenbergQR computes the eigenvalues of a complex matrix in place.
func eigHessenbergQR(h *CDense) ([]complex128, error) {
	n := h.rows
	hessenberg(h)
	ev := make([]complex128, 0, n)
	hi := n // active block is rows/cols [0, hi)
	const maxIter = 120
	for hi > 0 {
		converged := false
		for iter := 0; iter < maxIter; iter++ {
			// Deflate any negligible subdiagonal inside the active block.
			for k := hi - 1; k > 0; k-- {
				sub := cmplx.Abs(h.At(k, k-1))
				diag := cmplx.Abs(h.At(k-1, k-1)) + cmplx.Abs(h.At(k, k))
				if sub <= 1e-15*(diag+1e-300) {
					h.Set(k, k-1, 0)
				}
			}
			if hi == 1 {
				ev = append(ev, h.At(0, 0))
				hi = 0
				converged = true
				break
			}
			if isExactZero(h.At(hi-1, hi-2)) {
				ev = append(ev, h.At(hi-1, hi-1))
				hi--
				converged = true
				break
			}
			// Wilkinson shift from the trailing 2×2 block.
			a := h.At(hi-2, hi-2)
			b := h.At(hi-2, hi-1)
			c := h.At(hi-1, hi-2)
			d := h.At(hi-1, hi-1)
			tr := a + d
			det := a*d - b*c
			disc := cmplx.Sqrt(tr*tr - 4*det)
			l1 := (tr + disc) / 2
			l2 := (tr - disc) / 2
			shift := l1
			if cmplx.Abs(l2-d) < cmplx.Abs(l1-d) {
				shift = l2
			}
			qrStep(h, hi, shift)
		}
		if !converged {
			// One more deflation attempt with a relaxed threshold before
			// giving up.
			if hi >= 2 && cmplx.Abs(h.At(hi-1, hi-2)) <= 1e-8*(cmplx.Abs(h.At(hi-1, hi-1))+1) {
				ev = append(ev, h.At(hi-1, hi-1))
				hi--
				continue
			}
			return nil, fmt.Errorf("mat: QR iteration failed to converge at block %d", hi)
		}
	}
	return ev, nil
}

// hessenberg reduces h to upper Hessenberg form with Householder
// reflections (similarity transform; eigenvalues preserved).
func hessenberg(h *CDense) {
	n := h.rows
	for k := 0; k < n-2; k++ {
		// Build the reflector annihilating h[k+2:, k].
		alpha := 0.0
		for i := k + 1; i < n; i++ {
			alpha += cmplx.Abs(h.At(i, k)) * cmplx.Abs(h.At(i, k))
		}
		alpha = math.Sqrt(alpha)
		if isExactZero(alpha) {
			continue
		}
		x0 := h.At(k+1, k)
		phase := complex(1, 0)
		if !isExactZero(x0) {
			phase = x0 / complex(cmplx.Abs(x0), 0)
		}
		v := make([]complex128, n)
		v[k+1] = x0 + phase*complex(alpha, 0)
		for i := k + 2; i < n; i++ {
			v[i] = h.At(i, k)
		}
		norm2 := 0.0
		for i := k + 1; i < n; i++ {
			norm2 += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		if isExactZero(norm2) {
			continue
		}
		beta := complex(2/norm2, 0)
		// H = I − β v v*; apply A ← H A H.
		// Left: A ← A − β v (v* A).
		for j := 0; j < n; j++ {
			var s complex128
			for i := k + 1; i < n; i++ {
				s += cmplx.Conj(v[i]) * h.At(i, j)
			}
			s *= beta
			for i := k + 1; i < n; i++ {
				h.Add(i, j, -v[i]*s)
			}
		}
		// Right: A ← A − β (A v) v*.
		for i := 0; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += h.At(i, j) * v[j]
			}
			s *= beta
			for j := k + 1; j < n; j++ {
				h.Add(i, j, -s*cmplx.Conj(v[j]))
			}
		}
	}
}

// qrStep performs one shifted QR sweep on the leading hi×hi Hessenberg block
// using Givens rotations.
func qrStep(h *CDense, hi int, shift complex128) {
	type givens struct {
		c complex128
		s complex128
	}
	rots := make([]givens, hi-1)
	for i := 0; i < hi; i++ {
		h.Add(i, i, -shift)
	}
	// QR factorization by Givens on the subdiagonal.
	for k := 0; k < hi-1; k++ {
		a, b := h.At(k, k), h.At(k+1, k)
		r := math.Hypot(cmplx.Abs(a), cmplx.Abs(b))
		if isExactZero(r) {
			rots[k] = givens{c: 1, s: 0}
			continue
		}
		c := a / complex(r, 0)
		s := b / complex(r, 0)
		rots[k] = givens{c: c, s: s}
		// Apply rotation to rows k, k+1.
		for j := k; j < hi; j++ {
			x, y := h.At(k, j), h.At(k+1, j)
			h.Set(k, j, cmplx.Conj(c)*x+cmplx.Conj(s)*y)
			h.Set(k+1, j, -s*x+c*y)
		}
	}
	// RQ: apply the rotations on the right.
	for k := 0; k < hi-1; k++ {
		c, s := rots[k].c, rots[k].s
		for i := 0; i <= k+1 && i < hi; i++ {
			x, y := h.At(i, k), h.At(i, k+1)
			h.Set(i, k, x*c+y*s)
			h.Set(i, k+1, -x*cmplx.Conj(s)+y*cmplx.Conj(c))
		}
	}
	for i := 0; i < hi; i++ {
		h.Add(i, i, shift)
	}
}
