package mat

// Intentional exact float comparisons are routed through these named guards
// so the intent survives refactors; the floateq rule (cmd/opm-lint) flags raw
// float ==/!= everywhere else.

// isExactZero reports whether v is exactly zero — the pivot-breakdown and
// sparsity-skip checks of the factorizations, never a tolerance test.
// Exact zero is the right test there: a subnormal pivot still divides.
func isExactZero[T float64 | complex128](v T) bool { return v == 0 }

// isExactEq reports whether a and b are identical real values (exact
// tie-breaks in eigenvalue ordering and the like), never a closeness test.
func isExactEq(a, b float64) bool { return a == b }
