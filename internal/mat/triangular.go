package mat

import (
	"fmt"
	"math"
)

// IsUpperTriangular reports whether every element strictly below the diagonal
// is smaller than tol in magnitude.
func IsUpperTriangular(a *Dense, tol float64) bool {
	for i := 1; i < a.rows; i++ {
		row := a.Row(i)
		for j := 0; j < i && j < a.cols; j++ {
			if math.Abs(row[j]) > tol {
				return false
			}
		}
	}
	return true
}

// SolveUpper solves U x = b for an upper triangular U, overwriting b.
func SolveUpper(u *Dense, b []float64) ([]float64, error) {
	n := u.rows
	if u.cols != n || len(b) != n {
		return nil, fmt.Errorf("mat: SolveUpper shape mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		row := u.Row(i)
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		if isExactZero(row[i]) {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
		b[i] = s / row[i]
	}
	return b, nil
}

// TriPow computes Tᵅ for an upper triangular matrix T with positive, pairwise
// distinct diagonal entries, using the Parlett recurrence:
//
//	F_ii = T_ii^α
//	F_ij = (T_ij (F_ii − F_jj) + Σ_{k=i+1}^{j−1} (F_ik T_kj − T_ik F_kj)) / (T_ii − T_jj)
//
// This is the numerically robust form of the "eigendecomposition-based
// method" the paper prescribes for the adaptive-step fractional operational
// matrix D̃ᵅ (eq. 25), whose diagonal 2/h_i is distinct whenever no two time
// steps coincide. TriPow returns an error if T is not upper triangular, has a
// non-positive diagonal entry, or has two equal (or nearly equal) diagonal
// entries, which would make the recurrence unstable.
func TriPow(t *Dense, alpha float64) (*Dense, error) {
	n := t.rows
	if t.cols != n {
		return nil, fmt.Errorf("mat: TriPow of non-square %dx%d matrix", t.rows, t.cols)
	}
	if !IsUpperTriangular(t, 0) {
		return nil, fmt.Errorf("mat: TriPow requires an upper triangular matrix")
	}
	scale := t.MaxAbs()
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = t.At(i, i)
	}
	for i := 0; i < n; i++ {
		if diag[i] <= 0 {
			return nil, fmt.Errorf("mat: TriPow requires positive diagonal, got %g at %d", diag[i], i)
		}
		for j := i + 1; j < n; j++ {
			if math.Abs(diag[i]-diag[j]) <= 1e-12*scale {
				return nil, fmt.Errorf("mat: TriPow requires distinct diagonal entries (entries %d and %d coincide)", i, j)
			}
		}
	}
	f := NewDense(n, n)
	for i := 0; i < n; i++ {
		f.Set(i, i, math.Pow(diag[i], alpha))
	}
	// Fill superdiagonals outward.
	for d := 1; d < n; d++ {
		for i := 0; i+d < n; i++ {
			j := i + d
			ti, fi := t.Row(i), f.Row(i)
			num := ti[j] * (fi[i] - f.Row(j)[j])
			for k := i + 1; k < j; k++ {
				//lint:ignore atset the Parlett recurrence walks column j while row i is in view; per-element access is the algorithm
				num += fi[k]*t.At(k, j) - ti[k]*f.At(k, j)
			}
			fi[j] = num / (diag[i] - diag[j])
		}
	}
	return f, nil
}

// MatPowInt computes Aᵏ for integer k ≥ 0 by repeated squaring.
func MatPowInt(a *Dense, k int) *Dense {
	if a.rows != a.cols {
		panic("mat: MatPowInt of non-square matrix")
	}
	if k < 0 {
		panic("mat: MatPowInt negative exponent")
	}
	result := Eye(a.rows)
	base := a.Clone()
	for k > 0 {
		if k&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		k >>= 1
	}
	return result
}
