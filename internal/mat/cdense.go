package mat

import (
	"fmt"
	"math/cmplx"
)

// CDense is a row-major dense matrix of complex128 values. It backs the
// per-frequency solves of the FFT baseline, where the system matrix
// (jω)^α E − A is complex.
type CDense struct {
	rows, cols int
	data       []complex128
}

// NewCDense returns a zero-initialized r-by-c complex matrix.
func NewCDense(r, c int) *CDense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &CDense{rows: r, cols: c, data: make([]complex128, r*c)}
}

// Rows returns the number of rows.
func (m *CDense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CDense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *CDense) At(i, j int) complex128 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *CDense) Set(i, j int, v complex128) { m.data[i*m.cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *CDense) Add(i, j int, v complex128) { m.data[i*m.cols+j] += v }

// Row returns a view of row i.
func (m *CDense) Row(i int) []complex128 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *CDense) Clone() *CDense {
	c := NewCDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes y = m*x for complex vectors.
func (m *CDense) MulVec(x, y []complex128) []complex128 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: CDense MulVec length %d != cols %d", len(x), m.cols))
	}
	if len(y) != m.rows {
		y = make([]complex128, m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// CLU is a complex LU factorization with partial pivoting.
type CLU struct {
	lu  *CDense
	piv []int
}

// CLUFactor computes a complex LU factorization with partial pivoting. The
// input is not modified.
func CLUFactor(a *CDense) (*CLU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: CLU of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	f := &CLU{lu: a.Clone(), piv: make([]int, n)}
	lu := f.lu
	for k := 0; k < n; k++ {
		p := k
		max := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		f.piv[k] = p
		if isExactZero(max) {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			lik := lu.At(i, k) * inv
			lu.Set(i, k, lik)
			if isExactZero(lik) {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= lik * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b in place, overwriting and returning b.
func (f *CLU) Solve(b []complex128) []complex128 {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: CLU solve length %d != %d", len(b), n))
	}
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := b[i]
		for j := 0; j < i; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
	return b
}
