package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q·R of an m×n matrix with
// m ≥ n, stored compactly: the Householder reflectors (head included) live
// on and below the diagonal of qr, the strict upper triangle of R above it,
// and R's diagonal separately in rdiag.
type QR struct {
	qr    *Dense
	rdiag []float64
	m, n  int
}

// QRFactor computes the QR factorization of a (m ≥ n required). The input is
// not modified.
func QRFactor(a *Dense) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("mat: QR requires rows ≥ cols, got %dx%d", m, n)
	}
	f := &QR{qr: a.Clone(), rdiag: make([]float64, n), m: m, n: n}
	q := f.qr
	for k := 0; k < n; k++ {
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, q.At(i, k))
		}
		if isExactZero(nrm) {
			f.rdiag[k] = 0
			continue
		}
		if q.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			q.Set(i, k, q.At(i, k)/nrm)
		}
		q.Add(k, k, 1)
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += q.At(i, k) * q.At(i, j)
			}
			s = -s / q.At(k, k)
			for i := k; i < m; i++ {
				q.Add(i, j, s*q.At(i, k))
			}
		}
		f.rdiag[k] = -nrm
	}
	return f, nil
}

// R returns the upper-triangular factor (n×n).
func (f *QR) R() *Dense {
	r := NewDense(f.n, f.n)
	for i := 0; i < f.n; i++ {
		r.Set(i, i, f.rdiag[i])
		for j := i + 1; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// FullRank reports whether every R diagonal entry is nonzero.
func (f *QR) FullRank() bool {
	for _, d := range f.rdiag {
		if isExactZero(d) {
			return false
		}
	}
	return true
}

// SolveLeastSquares returns the minimizer x of ‖A·x − b‖₂ (len n). A must
// have full column rank.
func (f *QR) SolveLeastSquares(b []float64) ([]float64, error) {
	if len(b) != f.m {
		return nil, fmt.Errorf("mat: QR solve length %d != %d", len(b), f.m)
	}
	if !f.FullRank() {
		return nil, fmt.Errorf("%w: matrix is rank deficient", ErrSingular)
	}
	y := append([]float64(nil), b...)
	// y ← Qᵀ·y.
	for k := 0; k < f.n; k++ {
		if isExactZero(f.qr.At(k, k)) {
			continue
		}
		s := 0.0
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make([]float64, f.n)
	copy(x, y[:f.n])
	for i := f.n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares is a convenience wrapper: argmin ‖A·x − b‖₂.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := QRFactor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveLeastSquares(b)
}
