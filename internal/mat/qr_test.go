package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSquareSolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 8
	a := randomDense(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	b := randomVec(rng, n)
	viaLU, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	viaQR, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaLU {
		if math.Abs(viaLU[i]-viaQR[i]) > 1e-9*(1+math.Abs(viaLU[i])) {
			t.Fatalf("x[%d]: LU %g vs QR %g", i, viaLU[i], viaQR[i])
		}
	}
}

// Property: the least-squares residual is orthogonal to the column space,
// i.e. Aᵀ(Ax − b) ≈ 0 (the normal equations).
func TestQRNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(8)
		a := randomDense(rng, m, n)
		b := randomVec(rng, m)
		x, err := LeastSquares(a, b)
		if err != nil {
			// Random tall matrices are almost surely full rank; treat a
			// failure as a property violation.
			return false
		}
		r := a.MulVec(x, nil)
		for i := range r {
			r[i] -= b[i]
		}
		atr := a.MulVecT(r, nil)
		return NormInf(atr) <= 1e-8*(1+NormInf(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQRPolynomialFit(t *testing.T) {
	// Fit y = 2 + 3t − t² exactly through a Vandermonde least-squares.
	ts := []float64{-2, -1, 0, 0.5, 1, 2, 3}
	a := NewDense(len(ts), 3)
	b := make([]float64, len(ts))
	for i, tt := range ts {
		a.Set(i, 0, 1)
		a.Set(i, 1, tt)
		a.Set(i, 2, tt*tt)
		b[i] = 2 + 3*tt - tt*tt
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("coef[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestQRRFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomDense(rng, 6, 4)
	f, err := QRFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	if !IsUpperTriangular(r, 0) {
		t.Fatal("R not upper triangular")
	}
	// ‖R column norms‖ relate to A: RᵀR = AᵀA.
	ata := Mul(a.T(), a)
	rtr := Mul(r.T(), r)
	if !Equalf(ata, rtr, 1e-9*(1+ata.MaxAbs())) {
		t.Fatal("RᵀR != AᵀA")
	}
	if !f.FullRank() {
		t.Fatal("random tall matrix reported rank-deficient")
	}
}

func TestQRValidation(t *testing.T) {
	if _, err := QRFactor(NewDense(2, 3)); err == nil {
		t.Fatal("accepted wide matrix")
	}
	// Rank-deficient: a column of zeros.
	a := NewDense(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
	}
	f, err := QRFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.FullRank() {
		t.Fatal("zero column not detected")
	}
	if _, err := f.SolveLeastSquares([]float64{1, 2, 3, 4}); err == nil {
		t.Fatal("solved a rank-deficient system")
	}
	if _, err := f.SolveLeastSquares([]float64{1}); err == nil {
		t.Fatal("accepted wrong-length rhs")
	}
}
