// Package mat provides the dense linear-algebra kernels used throughout the
// OPM simulator: real and complex dense matrices, LU factorization with
// partial pivoting, triangular solves, and fractional powers of triangular
// matrices via the Parlett recurrence.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement: the simulator only ever needs dense kernels for
// moderate sizes (operational matrices of dimension m, per-frequency solves
// of dimension n), while large circuit matrices live in package sparse.
package mat

import (
	"fmt"
	"math"
	"strings"

	"opmsim/internal/vecops"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense returns a zero-initialized r-by-c matrix.
// It panics if r or c is not positive.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds an r-by-c matrix from row-major data. The slice is
// copied, so the caller may reuse it.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m
}

// Eye returns the n-by-n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing row-major slice (a view, not a copy).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	return NewDenseFrom(m.rows, m.cols, m.data)
}

// Zero resets every element to 0, keeping the allocation.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// AddTo returns a + b as a new matrix. Dimensions must match.
func AddTo(a, b *Dense) *Dense {
	checkSameDims(a, b)
	out := NewDense(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b as a new matrix. Dimensions must match.
func Sub(a, b *Dense) *Dense {
	checkSameDims(a, b)
	out := NewDense(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

func checkSameDims(a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: dimension mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product a*b as a new matrix.
func Mul(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	return MulInto(out, a, b)
}

// Tile sizes for MulInto: a mulTileK×mulTileJ tile of b (256 KB) stays
// resident in L2 while it is folded into every row of the output, instead of
// b being streamed in full once per output row.
const (
	mulTileK = 64
	mulTileJ = 512
)

// MulInto computes out = a*b into the caller-owned out (zeroed first) and
// returns it. out must not alias a or b. The inner loops are tiled over b,
// but every out[i][j] still accumulates its products in ascending k order, so
// the result is bitwise-identical to the untiled ikj reference for any tile
// size — callers may switch between Mul and MulInto freely without perturbing
// golden waveforms.
func MulInto(out, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: product dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if out.rows != a.rows || out.cols != b.cols {
		panic(fmt.Sprintf("mat: product output is %dx%d, want %dx%d", out.rows, out.cols, a.rows, b.cols))
	}
	out.Zero()
	for k0 := 0; k0 < a.cols; k0 += mulTileK {
		k1 := k0 + mulTileK
		if k1 > a.cols {
			k1 = a.cols
		}
		for j0 := 0; j0 < b.cols; j0 += mulTileJ {
			j1 := j0 + mulTileJ
			if j1 > b.cols {
				j1 = b.cols
			}
			for i := 0; i < a.rows; i++ {
				arow := a.Row(i)
				orow := out.Row(i)[j0:j1]
				for k := k0; k < k1; k++ {
					aik := arow[k]
					if isExactZero(aik) {
						continue
					}
					vecops.AddMul(orow, b.Row(k)[j0:j1], aik)
				}
			}
		}
	}
	return out
}

// MulVec computes y = m*x. It panics if len(x) != Cols. The result is a new
// slice unless y is provided with the right length, in which case it is
// overwritten and returned.
func (m *Dense) MulVec(x, y []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec length %d != cols %d", len(x), m.cols))
	}
	if len(y) != m.rows {
		y = make([]float64, m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecT computes y = mᵀ*x without forming the transpose.
func (m *Dense) MulVecT(x, y []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("mat: MulVecT length %d != rows %d", len(x), m.rows))
	}
	if len(y) != m.cols {
		y = make([]float64, m.cols)
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if isExactZero(xi) {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// NormFro returns the Frobenius norm.
func (m *Dense) NormFro() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equalf reports whether a and b have the same shape and agree elementwise
// within absolute tolerance tol.
func Equalf(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			//lint:ignore atset,allocsite String renders diagnostic output, not a hot path
			fmt.Fprintf(&sb, "% .6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
