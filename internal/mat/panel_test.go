package mat

import (
	"math"
	"math/rand"
	"testing"
)

// bitsEqual reports exact bit-pattern equality, the contract the panel
// kernels promise against their one-vector counterparts.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Property: every column of SolveMatrixInto is bitwise-identical to a Solve
// call on that column, across widths straddling the panel boundary.
func TestSolveMatrixIntoBitwiseMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 20
	a := randomDense(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, luPanelWidth - 1, luPanelWidth, luPanelWidth + 1, 2*luPanelWidth + 7} {
		b := randomDense(rng, n, k)
		x := f.SolveMatrixInto(NewDense(n, k), b)
		col := make([]float64, n)
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				col[i] = b.At(i, j)
			}
			want := f.Solve(col)
			for i := 0; i < n; i++ {
				if !bitsEqual(x.At(i, j), want[i]) {
					t.Fatalf("k=%d: x[%d,%d] = %x, Solve gives %x",
						k, i, j, math.Float64bits(x.At(i, j)), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// SolveMatrixInto documents x == b as a supported aliasing: the solve runs
// in place.
func TestSolveMatrixIntoAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 12
	a := randomDense(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randomDense(rng, n, 5)
	want := f.SolveMatrix(b)
	got := f.SolveMatrixInto(b, b)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			if !bitsEqual(got.At(i, j), want.At(i, j)) {
				t.Fatalf("aliased x[%d,%d] = %g, want %g", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// Regression: SolveMatrixInto must not allocate — the allocation churn of
// the old SolveMatrix (a fresh column buffer per right-hand side) is what
// it exists to remove.
func TestSolveMatrixIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 16
	a := randomDense(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randomDense(rng, n, 2*luPanelWidth+3)
	x := NewDense(n, 2*luPanelWidth+3)
	allocs := testing.AllocsPerRun(20, func() {
		f.SolveMatrixInto(x, b)
	})
	if allocs != 0 {
		t.Fatalf("SolveMatrixInto allocates %v objects per run, want 0", allocs)
	}
}

// mulNaive is the reference untiled triple loop MulInto must reproduce bit
// for bit (same ascending-k accumulation order, same zero skip).
func mulNaive(a, b *Dense) *Dense {
	out := NewDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		oi := out.Row(i)
		for k := 0; k < a.Cols(); k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += aik * bk[j]
			}
		}
	}
	return out
}

// Property: the cache-tiled MulInto is bitwise-identical to the untiled
// reference across shapes straddling both tile sizes.
func TestMulIntoBitwiseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	cases := []struct{ m, k, n int }{
		{3, 5, 4},
		{17, mulTileK - 1, 9},
		{11, mulTileK + 5, mulTileJ + 13},
		{8, 2*mulTileK + 3, 33},
	}
	for _, c := range cases {
		a := randomDense(rng, c.m, c.k)
		// Sprinkle exact zeros so the skip path is exercised.
		for z := 0; z < c.m*c.k/4; z++ {
			a.Set(rng.Intn(c.m), rng.Intn(c.k), 0)
		}
		b := randomDense(rng, c.k, c.n)
		got := MulInto(NewDense(c.m, c.n), a, b)
		want := mulNaive(a, b)
		for i := 0; i < c.m; i++ {
			for j := 0; j < c.n; j++ {
				if !bitsEqual(got.At(i, j), want.At(i, j)) {
					t.Fatalf("(%dx%dx%d): out[%d,%d] = %x, naive %x",
						c.m, c.k, c.n, i, j,
						math.Float64bits(got.At(i, j)), math.Float64bits(want.At(i, j)))
				}
			}
		}
	}
}
