package mat

import (
	"fmt"
	"math"
	"sort"
)

// SVD computes the thin singular value decomposition A = U·diag(σ)·Vᵀ of an
// m×n matrix with m ≥ n, by one-sided Jacobi rotations (slow but simple and
// very accurate — singular values come out with high relative precision).
// U is m×n with orthonormal columns, V is n×n orthogonal, σ is descending.
func SVD(a *Dense) (u *Dense, sigma []float64, v *Dense, err error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, nil, nil, fmt.Errorf("mat: SVD requires rows ≥ cols, got %dx%d", m, n)
	}
	w := a.Clone()
	v = Eye(n)
	const maxSweeps = 60
	tol := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries of columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					wp, wq := w.At(i, p), w.At(i, q)
					app += wp * wp
					aqq += wq * wq
					apq += wp * wq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || isExactZero(apq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation annihilating the (p,q) Gram entry.
				zeta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp, wq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wp-s*wq)
					w.Set(i, q, s*wp+c*wq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if isExactZero(off) {
			break
		}
	}
	// Extract singular values and left vectors.
	sigma = make([]float64, n)
	u = NewDense(m, n)
	order := make([]int, n)
	for j := range order {
		order[j] = j
		s := 0.0
		for i := 0; i < m; i++ {
			s += w.At(i, j) * w.At(i, j)
		}
		sigma[j] = math.Sqrt(s)
	}
	sort.Slice(order, func(x, y int) bool { return sigma[order[x]] > sigma[order[y]] })
	sortedSigma := make([]float64, n)
	vSorted := NewDense(n, n)
	for newJ, oldJ := range order {
		sortedSigma[newJ] = sigma[oldJ]
		for i := 0; i < m; i++ {
			if sigma[oldJ] > 0 {
				u.Set(i, newJ, w.At(i, oldJ)/sigma[oldJ])
			}
		}
		for i := 0; i < n; i++ {
			vSorted.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return u, sortedSigma, vSorted, nil
}

// Cond2 returns the 2-norm condition number σ_max/σ_min of a (Inf when
// singular).
func Cond2(a *Dense) (float64, error) {
	_, sigma, _, err := SVD(a)
	if err != nil {
		return 0, err
	}
	smin := sigma[len(sigma)-1]
	if isExactZero(smin) {
		return math.Inf(1), nil
	}
	return sigma[0] / smin, nil
}

// Rank returns the numerical rank of a at relative tolerance tol (0 → a
// sensible default of max(m,n)·eps).
func Rank(a *Dense, tol float64) (int, error) {
	_, sigma, _, err := SVD(a)
	if err != nil {
		return 0, err
	}
	if tol <= 0 {
		tol = float64(a.Rows()) * 2.22e-16
	}
	r := 0
	for _, s := range sigma {
		if s > tol*sigma[0] {
			r++
		}
	}
	return r, nil
}
