package mat

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCDense(rng *rand.Rand, n int) *CDense {
	m := NewCDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
		m.Add(i, i, complex(float64(n), 0))
	}
	return m
}

func TestCLUSolveKnown(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1+1i)
	a.Set(0, 1, 2)
	a.Set(1, 0, 0)
	a.Set(1, 1, 3-1i)
	x := []complex128{1 - 1i, 2i}
	b := a.MulVec(x, nil)
	f, err := CLUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Solve(b)
	for i := range x {
		if cmplx.Abs(got[i]-x[i]) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := CLUFactor(a); err == nil {
		t.Fatal("CLUFactor accepted singular matrix")
	}
}

// Property: complex solve leaves a tiny residual.
func TestCLUSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomCDense(rng, n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := a.MulVec(x, nil)
		fa, err := CLUFactor(a)
		if err != nil {
			return false
		}
		got := fa.Solve(append([]complex128(nil), b...))
		for i := range got {
			if cmplx.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
