package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVDKnownDiagonal(t *testing.T) {
	a := NewDenseFrom(3, 3, []float64{
		0, 0, 3,
		-5, 0, 0,
		0, 1, 0,
	})
	_, sigma, _, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i, w := range want {
		if math.Abs(sigma[i]-w) > 1e-12 {
			t.Fatalf("σ = %v, want %v", sigma, want)
		}
	}
}

// Property: U·diag(σ)·Vᵀ reconstructs A, U and V are orthonormal, and σ is
// sorted descending.
func TestSVDReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(6)
		a := randomDense(rng, m, n)
		u, sigma, v, err := SVD(a)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if sigma[i] > sigma[i-1] {
				return false
			}
		}
		// Rebuild A.
		usv := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += u.At(i, k) * sigma[k] * v.At(j, k)
				}
				usv.Set(i, j, s)
			}
		}
		if !Equalf(usv, a, 1e-9*(1+a.MaxAbs())) {
			return false
		}
		// Orthonormality.
		if !Equalf(Mul(u.T(), u), Eye(n), 1e-9) {
			return false
		}
		return Equalf(Mul(v.T(), v), Eye(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: singular values squared are the eigenvalues of AᵀA.
func TestSVDMatchesGramEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomDense(rng, 7, 5)
	_, sigma, _, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Eigenvalues(Mul(a.T(), a))
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues ascend; σ² descend.
	for i := range sigma {
		want := real(ev[len(ev)-1-i])
		if math.Abs(sigma[i]*sigma[i]-want) > 1e-8*(1+want) {
			t.Fatalf("σ²[%d] = %g, eig = %g", i, sigma[i]*sigma[i], want)
		}
	}
}

func TestCond2AndRank(t *testing.T) {
	// diag(10, 1, 0.1): condition 100, rank 3.
	a := NewDenseFrom(3, 3, []float64{10, 0, 0, 0, 1, 0, 0, 0, 0.1})
	c, err := Cond2(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-100) > 1e-9 {
		t.Fatalf("cond = %g, want 100", c)
	}
	r, err := Rank(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 3 {
		t.Fatalf("rank = %d, want 3", r)
	}
	// Rank-deficient.
	b := NewDenseFrom(3, 2, []float64{1, 2, 2, 4, 3, 6})
	rb, err := Rank(b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rb != 1 {
		t.Fatalf("rank = %d, want 1", rb)
	}
	cb, err := Cond2(b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(cb, 1) {
		t.Fatalf("cond of singular matrix = %g, want +Inf", cb)
	}
}

func TestSVDValidation(t *testing.T) {
	if _, _, _, err := SVD(NewDense(2, 3)); err == nil {
		t.Fatal("accepted wide matrix")
	}
}
