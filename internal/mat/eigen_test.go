package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEigenvaluesDiagonal(t *testing.T) {
	a := NewDenseFrom(3, 3, []float64{
		3, 0, 0,
		0, -1, 0,
		0, 0, 7,
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 3, 7}
	for i, w := range want {
		if cmplx.Abs(ev[i]-complex(w, 0)) > 1e-10 {
			t.Fatalf("ev = %v, want %v", ev, want)
		}
	}
}

func TestEigenvaluesTriangular(t *testing.T) {
	a := NewDenseFrom(3, 3, []float64{
		2, 5, -1,
		0, 4, 3,
		0, 0, -6,
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-6, 2, 4}
	for i, w := range want {
		if cmplx.Abs(ev[i]-complex(w, 0)) > 1e-9 {
			t.Fatalf("ev = %v, want %v", ev, want)
		}
	}
}

func TestEigenvaluesComplexPair(t *testing.T) {
	// Rotation-like matrix: eigenvalues a ± bi.
	a := NewDenseFrom(2, 2, []float64{
		1, -2,
		2, 1,
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(ev[0]-complex(1, -2)) > 1e-9 || cmplx.Abs(ev[1]-complex(1, 2)) > 1e-9 {
		t.Fatalf("ev = %v, want 1∓2i", ev)
	}
}

func TestEigenvaluesCompanion(t *testing.T) {
	// Companion matrix of (x−1)(x−2)(x−3) = x³ − 6x² + 11x − 6.
	a := NewDenseFrom(3, 3, []float64{
		6, -11, 6,
		1, 0, 0,
		0, 1, 0,
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if cmplx.Abs(ev[i]-complex(w, 0)) > 1e-8 {
			t.Fatalf("ev = %v, want %v", ev, want)
		}
	}
}

func TestEigenvaluesSymmetricReal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 8
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ev {
		if imag(v) != 0 {
			t.Fatalf("symmetric matrix produced complex eigenvalue %v", v)
		}
	}
}

// Property: Σλ = trace and Πλ = det.
func TestEigenvaluesTraceDetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := randomDense(rng, n, n)
		ev, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		var sum complex128
		prod := complex(1, 0)
		for _, v := range ev {
			sum += v
			prod *= v
		}
		tr := 0.0
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		lu, err := LUFactor(a)
		if err != nil {
			// Singular matrix: determinant zero; accept if prod is tiny.
			return cmplx.Abs(prod) < 1e-6
		}
		det := lu.Det()
		scale := 1 + math.Abs(tr) + math.Abs(det)
		return cmplx.Abs(sum-complex(tr, 0)) < 1e-7*scale &&
			cmplx.Abs(prod-complex(det, 0)) < 1e-6*scale*(1+cmplx.Abs(prod))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenvaluesNonSquare(t *testing.T) {
	if _, err := Eigenvalues(NewDense(2, 3)); err == nil {
		t.Fatal("accepted non-square matrix")
	}
}

func TestEigenvaluesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randomDense(rng, 10, 10)
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(ev, func(i, j int) bool {
		if real(ev[i]) != real(ev[j]) {
			return real(ev[i]) < real(ev[j])
		}
		return imag(ev[i]) < imag(ev[j])
	}) {
		t.Fatalf("eigenvalues not sorted: %v", ev)
	}
}
