package mat

import "math"

// Dot returns the dot product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Axpy computes y += a*x in place. It panics on length mismatch.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}
